// Determinism: the entire stack must produce bit-identical behavior for a
// given seed — the property that makes every anomaly in this repository
// replayable. These tests run complete scenarios twice and compare exact
// event counts, delivery orders, and results.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/shopfloor.h"
#include "src/apps/trading.h"
#include "src/catocs/group.h"

namespace {

std::vector<std::string> RunGroupTraffic(uint64_t seed) {
  sim::Simulator s(seed);
  catocs::FabricConfig cfg;
  cfg.num_members = 6;
  cfg.network.drop_probability = 0.1;
  cfg.network.duplicate_probability = 0.05;
  catocs::GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (int k = 0; k < 60; ++k) {
    const auto when = sim::Duration::Millis(static_cast<int64_t>(1 + s.rng().NextBelow(400)));
    const size_t member = k % 6;
    s.ScheduleAfter(when, [&fabric, member, k] {
      fabric.member(member).Send(k % 3 == 0 ? catocs::OrderingMode::kTotal
                                            : catocs::OrderingMode::kCausal,
                                 std::make_shared<net::BlobPayload>("m" + std::to_string(k), 64));
    });
  }
  s.RunFor(sim::Duration::Seconds(10));
  std::vector<std::string> transcript;
  for (const auto& record : fabric.records()) {
    transcript.push_back(std::to_string(record.at) + ":" + record.delivery.id().ToString() + "@" +
                         std::to_string(record.delivery.delivered_at.nanos()));
  }
  return transcript;
}

uint64_t Fnv1a(uint64_t hash, const std::string& s) {
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t TraceHash(const std::vector<std::string>& transcript) {
  uint64_t hash = 14695981039346656037ull;
  for (const std::string& line : transcript) {
    hash = Fnv1a(hash, line);
  }
  return hash;
}

TEST(DeterminismTest, GroupTrafficIsExactlyReproducible) {
  const auto first = RunGroupTraffic(12345);
  const auto second = RunGroupTraffic(12345);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

// Golden trace hashes, computed from the std::map-based clock implementation
// before the flat-vector representation landed. A change here means the
// simulation itself behaves differently — not just that internals moved
// around — and invalidates every recorded experiment number.
TEST(DeterminismTest, TraceHashMatchesGolden) {
  EXPECT_EQ(TraceHash(RunGroupTraffic(12345)), 601440888793534087ull);
  EXPECT_EQ(TraceHash(RunGroupTraffic(999)), 12391433873660651454ull);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const auto first = RunGroupTraffic(1);
  const auto second = RunGroupTraffic(2);
  EXPECT_NE(first, second);
}

TEST(DeterminismTest, ScenarioResultsAreReproducible) {
  apps::ShopFloorConfig sf;
  sf.rounds = 100;
  sf.seed = 777;
  const auto a = RunShopFloorScenario(sf);
  const auto b = RunShopFloorScenario(sf);
  EXPECT_EQ(a.raw_anomalies, b.raw_anomalies);
  EXPECT_EQ(a.stale_drops, b.stale_drops);
  EXPECT_DOUBLE_EQ(a.mean_delivery_latency_us, b.mean_delivery_latency_us);

  apps::TradingConfig tr;
  tr.price_updates = 200;
  tr.seed = 778;
  const auto c = RunTradingScenario(tr);
  const auto d = RunTradingScenario(tr);
  EXPECT_EQ(c.raw_false_crossings, d.raw_false_crossings);
  EXPECT_EQ(c.raw_inconsistent_displays, d.raw_inconsistent_displays);
}

TEST(DeterminismTest, SimulatorEventCountStable) {
  auto run = [] {
    sim::Simulator s(42);
    catocs::FabricConfig cfg;
    cfg.num_members = 4;
    catocs::GroupFabric fabric(&s, cfg);
    fabric.StartAll();
    for (int i = 0; i < 10; ++i) {
      s.ScheduleAfter(sim::Duration::Millis(i + 1), [&fabric, i] {
        fabric.member(static_cast<size_t>(i % 4))
            .CausalSend(std::make_shared<net::BlobPayload>("x", 10));
      });
    }
    s.RunFor(sim::Duration::Seconds(5));
    return s.events_executed();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
