// Coverage for the remaining network-model and utility surfaces: latency
// models (including the clustered LAN/WAN topology), RNG distribution
// shapes, histogram reservoir behavior, and the GroupFabric harness itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/catocs/group.h"
#include "src/net/latency.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"

namespace {

TEST(LatencyModelTest, FixedIsConstant) {
  sim::Rng rng(1);
  net::FixedLatency model(sim::Duration::Millis(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.SampleDelay(1, 2, rng), sim::Duration::Millis(7));
  }
}

TEST(LatencyModelTest, UniformStaysInBoundsAndCoversThem) {
  sim::Rng rng(2);
  net::UniformLatency model(sim::Duration::Millis(2), sim::Duration::Millis(10));
  sim::Duration lo = sim::Duration::Max();
  sim::Duration hi = sim::Duration::Zero();
  for (int i = 0; i < 5000; ++i) {
    const sim::Duration d = model.SampleDelay(1, 2, rng);
    EXPECT_GE(d, sim::Duration::Millis(2));
    EXPECT_LE(d, sim::Duration::Millis(10));
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, sim::Duration::Millis(3)) << "lower region reachable";
  EXPECT_GT(hi, sim::Duration::Millis(9)) << "upper region reachable";
}

TEST(LatencyModelTest, LogNormalIsHeavyTailedAboveBase) {
  sim::Rng rng(3);
  net::LogNormalLatency model(sim::Duration::Millis(1), /*mu_us=*/6.0, /*sigma=*/1.0);
  double sum_ms = 0;
  double max_ms = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double ms = model.SampleDelay(1, 2, rng).seconds() * 1000.0;
    EXPECT_GE(ms, 1.0);
    sum_ms += ms;
    max_ms = std::max(max_ms, ms);
  }
  const double mean_ms = sum_ms / n;
  EXPECT_GT(max_ms, 4.0 * mean_ms) << "a heavy tail should show extreme samples";
}

TEST(LatencyModelTest, ClusteredSplitsLanAndWan) {
  sim::Rng rng(4);
  net::ClusteredLatency model(
      4, std::make_unique<net::FixedLatency>(sim::Duration::Millis(1)),
      std::make_unique<net::FixedLatency>(sim::Duration::Millis(20)));
  // Nodes 0-3 are cluster 0; nodes 4-7 cluster 1.
  EXPECT_EQ(model.SampleDelay(0, 3, rng), sim::Duration::Millis(1));
  EXPECT_EQ(model.SampleDelay(4, 7, rng), sim::Duration::Millis(1));
  EXPECT_EQ(model.SampleDelay(0, 4, rng), sim::Duration::Millis(20));
  EXPECT_EQ(model.SampleDelay(7, 1, rng), sim::Duration::Millis(20));
}

TEST(RngDistributionTest, LogNormalMedianNearExpMu) {
  sim::Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(rng.NextLogNormal(2.0, 0.5));
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median, std::exp(2.0), 0.35);
}

TEST(RngDistributionTest, DurationSamplingInclusive) {
  sim::Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const sim::Duration d = rng.NextDuration(sim::Duration::Nanos(0), sim::Duration::Nanos(3));
    saw_lo |= d == sim::Duration::Nanos(0);
    saw_hi |= d == sim::Duration::Nanos(3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(HistogramReservoirTest, StatsExactPastReservoirCap) {
  // Count/sum/min/max stay exact beyond the sample cap; quantiles remain
  // sensible estimates.
  sim::Histogram h;
  const int n = (1 << 20) + 50000;  // beyond kMaxSamples
  for (int i = 0; i < n; ++i) {
    h.Record(static_cast<double>(i % 1000));
  }
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 999.0);
  EXPECT_NEAR(h.mean(), 499.5, 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 499.5, 25.0);
}

TEST(GroupFabricTest, DeliveryOrderAtFiltersByMember) {
  sim::Simulator s(7);
  catocs::FabricConfig cfg;
  cfg.num_members = 3;
  catocs::GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(1), [&] {
    fabric.member(0).CausalSend(std::make_shared<net::BlobPayload>("a", 8));
    fabric.member(1).CausalSend(std::make_shared<net::BlobPayload>("b", 8));
  });
  s.RunFor(sim::Duration::Seconds(2));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fabric.DeliveryOrderAt(i).size(), 2u) << "member " << i;
  }
  EXPECT_EQ(fabric.records().size(), 6u);
}

TEST(GroupFabricTest, CrashMemberSilencesItCompletely) {
  sim::Simulator s(8);
  catocs::FabricConfig cfg;
  cfg.num_members = 3;
  catocs::GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  fabric.CrashMember(2);
  s.ScheduleAfter(sim::Duration::Millis(1), [&] {
    fabric.member(0).CausalSend(std::make_shared<net::BlobPayload>("x", 8));
  });
  s.RunFor(sim::Duration::Seconds(2));
  for (const auto& record : fabric.records()) {
    EXPECT_NE(record.at, catocs::GroupFabric::IdOf(2));
  }
}

}  // namespace
