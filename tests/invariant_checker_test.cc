// Meta-tests: the ordering oracles used throughout the suite must actually
// detect violations when fed bad histories, or every "invariant holds" test
// is vacuous.

#include <gtest/gtest.h>

#include <memory>

#include "src/catocs/group.h"

namespace catocs {
namespace {

GroupFabric::Record MakeRecord(MemberId at, MemberId sender, uint64_t seq, OrderingMode mode,
                               uint64_t total_seq, const VectorClock& vt) {
  GroupFabric::Record record;
  record.at = at;
  // Deliveries share the (one) immutable GroupData, so a synthetic record
  // fabricates the message itself.
  record.delivery.data = std::make_shared<GroupData>(
      1, MessageId{sender, seq}, mode, vt, std::make_shared<net::BlobPayload>("x", 8),
      sim::TimePoint::Zero());
  record.delivery.total_seq = total_seq;
  return record;
}

TEST(CheckerTest, CausalCheckerAcceptsGoodHistory) {
  VectorClock vt1;
  vt1.Set(1, 1);
  VectorClock vt2 = vt1;
  vt2.Set(2, 1);
  std::vector<GroupFabric::Record> records{
      MakeRecord(3, 1, 1, OrderingMode::kCausal, 0, vt1),
      MakeRecord(3, 2, 1, OrderingMode::kCausal, 0, vt2),
  };
  EXPECT_EQ(CheckCausalDeliveryInvariant(records), "");
}

TEST(CheckerTest, CausalCheckerDetectsInversion) {
  VectorClock vt1;
  vt1.Set(1, 1);
  VectorClock vt2 = vt1;
  vt2.Set(2, 1);  // message 2 happens-after message 1
  std::vector<GroupFabric::Record> records{
      MakeRecord(3, 2, 1, OrderingMode::kCausal, 0, vt2),  // delivered first: violation
      MakeRecord(3, 1, 1, OrderingMode::kCausal, 0, vt1),
  };
  EXPECT_NE(CheckCausalDeliveryInvariant(records), "");
}

TEST(CheckerTest, CausalCheckerIgnoresConcurrentOrder) {
  VectorClock vta;
  vta.Set(1, 1);
  VectorClock vtb;
  vtb.Set(2, 1);
  std::vector<GroupFabric::Record> either_order{
      MakeRecord(3, 2, 1, OrderingMode::kCausal, 0, vtb),
      MakeRecord(3, 1, 1, OrderingMode::kCausal, 0, vta),
  };
  EXPECT_EQ(CheckCausalDeliveryInvariant(either_order), "");
}

TEST(CheckerTest, FifoCheckerDetectsPerSenderReorder) {
  VectorClock vt1;
  vt1.Set(1, 1);
  VectorClock vt2;
  vt2.Set(1, 2);
  std::vector<GroupFabric::Record> records{
      MakeRecord(3, 1, 2, OrderingMode::kCausal, 0, vt2),
      MakeRecord(3, 1, 1, OrderingMode::kCausal, 0, vt1),
  };
  EXPECT_NE(CheckFifoInvariant(records), "");
}

TEST(CheckerTest, TotalCheckerDetectsDisagreement) {
  VectorClock vt;
  std::vector<GroupFabric::Record> records{
      MakeRecord(1, 1, 1, OrderingMode::kTotal, 1, vt),
      MakeRecord(1, 2, 1, OrderingMode::kTotal, 2, vt),
      // member 2 saw them in the opposite sequence assignment:
      MakeRecord(2, 2, 1, OrderingMode::kTotal, 1, vt),
      MakeRecord(2, 1, 1, OrderingMode::kTotal, 2, vt),
  };
  EXPECT_NE(CheckTotalOrderInvariant(records), "");
}

TEST(CheckerTest, TotalCheckerDetectsNonMonotoneDelivery) {
  VectorClock vt;
  std::vector<GroupFabric::Record> records{
      MakeRecord(1, 1, 1, OrderingMode::kTotal, 2, vt),
      MakeRecord(1, 2, 1, OrderingMode::kTotal, 1, vt),  // delivered later, smaller seq
  };
  EXPECT_NE(CheckTotalOrderInvariant(records), "");
}

TEST(CheckerTest, UnorderedRecordsAreExemptEverywhere) {
  VectorClock vt1;
  vt1.Set(1, 5);
  std::vector<GroupFabric::Record> records{
      MakeRecord(1, 1, 5, OrderingMode::kUnordered, 0, vt1),
      MakeRecord(1, 1, 1, OrderingMode::kUnordered, 0, VectorClock{}),
  };
  EXPECT_EQ(CheckCausalDeliveryInvariant(records), "");
  EXPECT_EQ(CheckFifoInvariant(records), "");
  EXPECT_EQ(CheckTotalOrderInvariant(records), "");
}

}  // namespace
}  // namespace catocs
