// Tests for the §4.5 name service scenario (E14).

#include <gtest/gtest.h>

#include "src/apps/nameservice.h"

namespace apps {
namespace {

TEST(NameServiceTest, OptimisticConvergesWithoutPartition) {
  NameServiceConfig config;
  config.strategy = NameServiceStrategy::kOptimisticAntiEntropy;
  config.bindings = 150;
  config.partition_duration = sim::Duration::Zero();
  config.seed = 1;
  const NameServiceResult result = RunNameServiceScenario(config);
  EXPECT_EQ(result.accepted_immediately, result.bindings_attempted);
  EXPECT_EQ(result.stalled, 0);
  EXPECT_TRUE(result.converged) << result.divergent_names << " divergent names";
}

TEST(NameServiceTest, OptimisticStaysAvailableThroughPartitionAndConverges) {
  NameServiceConfig config;
  config.strategy = NameServiceStrategy::kOptimisticAntiEntropy;
  config.bindings = 200;
  config.partition_start = sim::Duration::Millis(500);
  config.partition_duration = sim::Duration::Seconds(1);
  config.seed = 2;
  const NameServiceResult result = RunNameServiceScenario(config);
  EXPECT_EQ(result.accepted_immediately, result.bindings_attempted)
      << "every site keeps accepting bindings locally";
  EXPECT_TRUE(result.converged) << result.divergent_names << " divergent names after heal";
}

TEST(NameServiceTest, OptimisticResolvesDuplicateBindingsByUndo) {
  NameServiceConfig config;
  config.strategy = NameServiceStrategy::kOptimisticAntiEntropy;
  config.bindings = 300;
  config.conflict_fraction = 0.15;  // plenty of deliberate duplicates
  config.partition_duration = sim::Duration::Zero();
  config.seed = 3;
  const NameServiceResult result = RunNameServiceScenario(config);
  EXPECT_GT(result.conflicts_undone, 0) << "duplicates must actually occur and be undone";
  EXPECT_TRUE(result.converged);
}

TEST(NameServiceTest, CatocsNeverUndoesButStallsDuringPartition) {
  NameServiceConfig config;
  config.strategy = NameServiceStrategy::kCatocsTotalOrder;
  config.bindings = 200;
  config.partition_start = sim::Duration::Millis(500);
  config.partition_duration = sim::Duration::Seconds(1);
  config.seed = 4;
  const NameServiceResult result = RunNameServiceScenario(config);
  EXPECT_EQ(result.conflicts_undone, 0);
  EXPECT_GT(result.stalled, 0) << "sites cut off from the sequencer must stall";
  EXPECT_GT(result.max_stall_ms, 500.0) << "stalls last on the order of the partition";
  EXPECT_TRUE(result.converged) << "after healing everyone agrees";
}

TEST(NameServiceTest, CatocsCommitLatencyReflectsOrderingRoundTrips) {
  NameServiceConfig config;
  config.strategy = NameServiceStrategy::kCatocsTotalOrder;
  config.bindings = 100;
  config.partition_duration = sim::Duration::Zero();
  config.seed = 5;
  const NameServiceResult result = RunNameServiceScenario(config);
  EXPECT_GT(result.mean_commit_latency_ms, 10.0)
      << "total ordering over a WAN cannot be local-speed";
  EXPECT_EQ(result.stalled, 0);
  EXPECT_TRUE(result.converged);
}

}  // namespace
}  // namespace apps
