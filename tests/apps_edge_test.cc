// Edge-case and robustness tests for the application scenarios beyond the
// primary shape checks in apps_test.cc.

#include <gtest/gtest.h>

#include "src/apps/drilling.h"
#include "src/apps/netnews.h"
#include "src/apps/oven.h"
#include "src/apps/rpc_deadlock.h"
#include "src/apps/shopfloor.h"
#include "src/apps/trading.h"

namespace apps {
namespace {

TEST(ShopFloorEdgeTest, WideRequestGapEliminatesAnomalies) {
  // If the semantic gap dwarfs the jitter, even raw CATOCS delivery looks
  // fine — the anomaly is a race, not a constant.
  ShopFloorConfig config;
  config.rounds = 100;
  config.request_gap = sim::Duration::Millis(100);
  config.latency_hi = sim::Duration::Millis(10);
  config.round_gap = sim::Duration::Millis(250);
  config.seed = 91;
  const ShopFloorResult result = RunShopFloorScenario(config);
  EXPECT_EQ(result.raw_anomalies, 0);
}

TEST(TradingEdgeTest, ZeroComputeDelayStillRaces) {
  TradingConfig config;
  config.price_updates = 400;
  config.compute_delay = sim::Duration::Zero();
  config.seed = 92;
  const TradingResult result = RunTradingScenario(config);
  // The theo multicast still departs a network hop behind its base, so
  // inconsistent pairings remain possible...
  EXPECT_GT(result.raw_inconsistent_displays, 0u);
  // ...and the paired display stays clean.
  EXPECT_EQ(result.paired_false_crossings, 0u);
}

TEST(OvenEdgeTest, MoreChatterSensorsMoreFalseCausality) {
  OvenConfig quiet;
  quiet.strategy = OvenStrategy::kCatocsCausal;
  quiet.chatter_sensors = 0;
  quiet.drop_probability = 0.10;
  quiet.duration = sim::Duration::Seconds(10);
  quiet.seed = 93;
  OvenConfig noisy = quiet;
  noisy.chatter_sensors = 8;
  const OvenResult quiet_result = RunOvenScenario(quiet);
  const OvenResult noisy_result = RunOvenScenario(noisy);
  EXPECT_GT(noisy_result.mean_delivery_delay_us, quiet_result.mean_delivery_delay_us)
      << "unrelated sensors' losses delay the oven readings (false causality)";
}

TEST(NetnewsEdgeTest, NoBatchingNoReordering) {
  // With instantaneous forwarding on FIFO links a response can never
  // overtake its inquiry: the inquiry always flooded first on every link.
  NetnewsConfig config;
  config.strategy = NewsStrategy::kFloodingRaw;
  config.inquiries = 80;
  config.forward_delay_max = sim::Duration::Zero();
  config.seed = 94;
  const NetnewsResult result = RunNetnewsScenario(config);
  EXPECT_EQ(result.out_of_order_displays, 0);
}

TEST(NetnewsEdgeTest, LossyCatocsStillOrdersInquiryResponse) {
  NetnewsConfig config;
  config.strategy = NewsStrategy::kCatocsGroup;
  config.inquiries = 60;
  config.drop_probability = 0.1;
  config.seed = 95;
  const NetnewsResult result = RunNetnewsScenario(config);
  EXPECT_EQ(result.out_of_order_displays, 0);
  EXPECT_GT(result.responses, 0);
}

TEST(DrillingEdgeTest, SingleDrillerDegeneratesGracefully) {
  for (DrillStrategy strategy :
       {DrillStrategy::kCatocsDistributed, DrillStrategy::kCentralController}) {
    DrillingConfig config;
    config.strategy = strategy;
    config.drillers = 1;
    config.holes = 10;
    config.seed = 96;
    const DrillingResult result = RunDrillingScenario(config);
    EXPECT_EQ(result.holes_completed, 10) << static_cast<int>(strategy);
    EXPECT_TRUE(result.all_accounted);
  }
}

TEST(DrillingEdgeTest, LateCrashLeavesSmallChecklist) {
  DrillingConfig config;
  config.strategy = DrillStrategy::kCatocsDistributed;
  config.drillers = 4;
  config.holes = 40;
  // Crash near the end: most of the victim's holes are already done.
  config.crash_driller_at = sim::Duration::Millis(350);
  config.seed = 97;
  const DrillingResult result = RunDrillingScenario(config);
  EXPECT_TRUE(result.all_accounted);
  EXPECT_LE(result.checklist_size, 5);
  EXPECT_EQ(result.holes_double_drilled, 0);
}

TEST(RpcDeadlockEdgeTest, NoInjectionsNoDetections) {
  for (DeadlockDetectorKind kind :
       {DeadlockDetectorKind::kVanRenesseCausal, DeadlockDetectorKind::kWaitForMulticast}) {
    RpcDeadlockConfig config;
    config.detector = kind;
    config.processes = 5;
    config.background_calls = 200;
    config.injected_deadlocks = 0;
    config.seed = 98;
    const RpcDeadlockResult result = RunRpcDeadlockScenario(config);
    EXPECT_EQ(result.detected, 0) << static_cast<int>(kind);
    EXPECT_EQ(result.false_positives, 0) << static_cast<int>(kind);
    EXPECT_GT(result.app_calls_completed, 0u);
  }
}

TEST(RpcDeadlockEdgeTest, BackToBackDeadlocksAllDetected) {
  RpcDeadlockConfig config;
  config.detector = DeadlockDetectorKind::kWaitForMulticast;
  config.processes = 6;
  config.background_calls = 100;
  config.injected_deadlocks = 8;
  config.injection_spacing = sim::Duration::Millis(300);
  config.seed = 99;
  const RpcDeadlockResult result = RunRpcDeadlockScenario(config);
  EXPECT_EQ(result.detected, 8);
  EXPECT_EQ(result.false_positives, 0);
}

}  // namespace
}  // namespace apps
