// Scenario tests: each paper figure's anomaly must be reproducible under
// CATOCS and impossible under the corresponding state-level technique, and
// the appendix designs must be correct under both strategies. These are the
// qualitative shape checks behind the benches in bench/.

#include <gtest/gtest.h>

#include "src/apps/drilling.h"
#include "src/apps/firealarm.h"
#include "src/apps/netnews.h"
#include "src/apps/oven.h"
#include "src/apps/rpc_deadlock.h"
#include "src/apps/shopfloor.h"
#include "src/apps/trading.h"

namespace apps {
namespace {

// --- Figure 2 -----------------------------------------------------------------

TEST(ShopFloorTest, HiddenChannelAnomalyUnderCausalMulticast) {
  ShopFloorConfig config;
  config.rounds = 150;
  config.seed = 11;
  const ShopFloorResult result = RunShopFloorScenario(config);
  EXPECT_GT(result.raw_anomalies, 0)
      << "with 1-10ms jitter and a 5ms request gap, some rounds must reorder";
  EXPECT_LT(result.raw_anomalies, result.rounds) << "and some must not";
  EXPECT_EQ(result.filtered_anomalies, 0) << "version numbers repair every case";
  EXPECT_GE(result.stale_drops, static_cast<uint64_t>(result.raw_anomalies))
      << "each raw anomaly corresponds to a stale update the cache dropped";
}

TEST(ShopFloorTest, TotalOrderDoesNotHelp) {
  ShopFloorConfig config;
  config.rounds = 150;
  config.mode = catocs::OrderingMode::kTotal;
  config.seed = 12;
  const ShopFloorResult result = RunShopFloorScenario(config);
  EXPECT_GT(result.raw_anomalies, 0)
      << "total order agrees on *an* order, not the semantically right one";
  EXPECT_EQ(result.filtered_anomalies, 0);
}

TEST(ShopFloorTest, AnomalyRateGrowsWithJitter) {
  ShopFloorConfig calm;
  calm.rounds = 150;
  calm.latency_hi = sim::Duration::Millis(2);
  calm.seed = 13;
  ShopFloorConfig wild = calm;
  wild.latency_hi = sim::Duration::Millis(25);
  const int calm_anomalies = RunShopFloorScenario(calm).raw_anomalies;
  const int wild_anomalies = RunShopFloorScenario(wild).raw_anomalies;
  EXPECT_GT(wild_anomalies, calm_anomalies);
}

// --- Figure 3 -----------------------------------------------------------------

TEST(FireAlarmTest, ExternalChannelAnomalyUnderCausalMulticast) {
  FireAlarmConfig config;
  config.rounds = 150;
  config.seed = 21;
  const FireAlarmResult result = RunFireAlarmScenario(config);
  EXPECT_GT(result.raw_anomalies, 0) << "'fire out' can arrive last";
  EXPECT_EQ(result.timestamp_anomalies, 0)
      << "synchronized timestamps order the reports correctly";
}

TEST(FireAlarmTest, TotalOrderAlsoAnomalous) {
  FireAlarmConfig config;
  config.rounds = 150;
  config.mode = catocs::OrderingMode::kTotal;
  config.seed = 22;
  const FireAlarmResult result = RunFireAlarmScenario(config);
  EXPECT_GT(result.raw_anomalies, 0);
  EXPECT_EQ(result.timestamp_anomalies, 0);
}

TEST(FireAlarmTest, ClockSyncErrorIsBounded) {
  FireAlarmConfig config;
  config.rounds = 50;
  config.seed = 23;
  const FireAlarmResult result = RunFireAlarmScenario(config);
  // Half-RTT bound with <= 15ms one-way latency.
  EXPECT_LT(result.clock_error_bound_us, 16'000.0);
  EXPECT_GT(result.clock_error_bound_us, 0.0);
}

// --- Figure 4 -----------------------------------------------------------------

TEST(TradingTest, FalseCrossingsUnderCausalMulticast) {
  TradingConfig config;
  config.price_updates = 400;
  config.seed = 31;
  const TradingResult result = RunTradingScenario(config);
  EXPECT_GT(result.raw_inconsistent_displays, 0u)
      << "theo(v) delivered after opt(v+1) must occur";
  EXPECT_GT(result.raw_false_crossings, 0u) << "and sometimes invert the displayed relation";
  EXPECT_EQ(result.paired_false_crossings, 0u)
      << "dependency-paired display can never invert the relation";
}

TEST(TradingTest, TotalOrderCannotExpressTheConstraint) {
  TradingConfig config;
  config.price_updates = 400;
  config.mode = catocs::OrderingMode::kTotal;
  config.seed = 32;
  const TradingResult result = RunTradingScenario(config);
  EXPECT_GT(result.raw_inconsistent_displays, 0u);
  EXPECT_EQ(result.paired_false_crossings, 0u);
}

TEST(TradingTest, PairedDisplayLagsButStaysConsistent) {
  TradingConfig config;
  config.price_updates = 300;
  config.seed = 33;
  const TradingResult result = RunTradingScenario(config);
  EXPECT_GT(result.paired_lagging_displays, 0u)
      << "consistency is paid for in staleness, not wrongness";
}

// --- §4.6 oven monitoring -------------------------------------------------------

TEST(OvenTest, TimestampFreshestTracksBetterUnderLoss) {
  OvenConfig catocs_config;
  catocs_config.strategy = OvenStrategy::kCatocsCausal;
  catocs_config.duration = sim::Duration::Seconds(10);
  catocs_config.drop_probability = 0.10;
  catocs_config.seed = 41;
  OvenConfig fresh_config = catocs_config;
  fresh_config.strategy = OvenStrategy::kTimestampFreshest;
  const OvenResult catocs_result = RunOvenScenario(catocs_config);
  const OvenResult fresh_result = RunOvenScenario(fresh_config);
  EXPECT_GT(catocs_result.readings_applied, 0u);
  EXPECT_GT(fresh_result.readings_applied, 0u);
  EXPECT_LT(fresh_result.mean_abs_error, catocs_result.mean_abs_error)
      << "freshest-timestamp delivery tracks the oven better";
  EXPECT_LT(fresh_result.mean_delivery_delay_us, catocs_result.mean_delivery_delay_us);
}

TEST(OvenTest, StrategiesComparableWithoutLoss) {
  OvenConfig catocs_config;
  catocs_config.strategy = OvenStrategy::kCatocsCausal;
  catocs_config.duration = sim::Duration::Seconds(5);
  catocs_config.drop_probability = 0.0;
  catocs_config.seed = 42;
  OvenConfig fresh_config = catocs_config;
  fresh_config.strategy = OvenStrategy::kTimestampFreshest;
  const OvenResult catocs_result = RunOvenScenario(catocs_config);
  const OvenResult fresh_result = RunOvenScenario(fresh_config);
  // Without loss the gap shrinks: CATOCS pays only its ordering machinery.
  EXPECT_LT(catocs_result.mean_abs_error, 3.0 * fresh_result.mean_abs_error + 1.0);
}

// --- §4.1 netnews ---------------------------------------------------------------

TEST(NetnewsTest, FloodingShowsResponsesBeforeInquiries) {
  NetnewsConfig config;
  config.strategy = NewsStrategy::kFloodingRaw;
  config.inquiries = 80;
  config.seed = 51;
  const NetnewsResult result = RunNetnewsScenario(config);
  EXPECT_GT(result.responses, 0);
  EXPECT_GT(result.out_of_order_displays, 0);
}

TEST(NetnewsTest, ReferencesFieldRepairsOrdering) {
  NetnewsConfig config;
  config.strategy = NewsStrategy::kFloodingReferences;
  config.inquiries = 80;
  config.seed = 51;  // same workload as the raw run
  const NetnewsResult result = RunNetnewsScenario(config);
  EXPECT_EQ(result.out_of_order_displays, 0);
  EXPECT_GT(result.gate_holds, 0u) << "the gate must actually have repaired something";
}

TEST(NetnewsTest, CatocsGroupAlsoOrdersButCostsMore) {
  NetnewsConfig flood;
  flood.strategy = NewsStrategy::kFloodingRaw;
  flood.inquiries = 60;
  flood.seed = 52;
  NetnewsConfig group = flood;
  group.strategy = NewsStrategy::kCatocsGroup;
  const NetnewsResult flood_result = RunNetnewsScenario(flood);
  const NetnewsResult group_result = RunNetnewsScenario(group);
  EXPECT_EQ(group_result.out_of_order_displays, 0)
      << "responses causally follow inquiries in the group";
  EXPECT_GT(group_result.network_bytes, 0u);
  EXPECT_GT(flood_result.network_bytes, 0u);
}

// --- Appendix 9.1 drilling --------------------------------------------------------

TEST(DrillingTest, BothStrategiesDrillEveryHoleOnce) {
  for (DrillStrategy strategy :
       {DrillStrategy::kCatocsDistributed, DrillStrategy::kCentralController}) {
    DrillingConfig config;
    config.strategy = strategy;
    config.holes = 60;
    config.drillers = 4;
    config.seed = 61;
    const DrillingResult result = RunDrillingScenario(config);
    EXPECT_EQ(result.holes_completed, 60) << "strategy " << static_cast<int>(strategy);
    EXPECT_EQ(result.holes_double_drilled, 0);
    EXPECT_EQ(result.checklist_size, 0);
    EXPECT_TRUE(result.all_accounted);
  }
}

TEST(DrillingTest, CrashProducesChecklistNotDoubleDrilling) {
  for (DrillStrategy strategy :
       {DrillStrategy::kCatocsDistributed, DrillStrategy::kCentralController}) {
    DrillingConfig config;
    config.strategy = strategy;
    config.holes = 60;
    config.drillers = 4;
    config.crash_driller_at = sim::Duration::Millis(200);
    config.seed = 62;
    const DrillingResult result = RunDrillingScenario(config);
    EXPECT_EQ(result.holes_double_drilled, 0) << "strategy " << static_cast<int>(strategy);
    EXPECT_GT(result.checklist_size, 0);
    EXPECT_TRUE(result.all_accounted)
        << "strategy " << static_cast<int>(strategy) << ": completed " << result.holes_completed
        << " + checklist " << result.checklist_size << " != " << result.holes;
  }
}

TEST(DrillingTest, CatocsTrafficExceedsCentral) {
  DrillingConfig catocs_config;
  catocs_config.strategy = DrillStrategy::kCatocsDistributed;
  catocs_config.holes = 60;
  catocs_config.drillers = 6;
  catocs_config.seed = 63;
  DrillingConfig central_config = catocs_config;
  central_config.strategy = DrillStrategy::kCentralController;
  const DrillingResult catocs_result = RunDrillingScenario(catocs_config);
  const DrillingResult central_result = RunDrillingScenario(central_config);
  EXPECT_GT(catocs_result.app_messages, central_result.app_messages)
      << "completion multicasts fan out to the whole group";
}

// --- Appendix 9.2 RPC deadlock ------------------------------------------------------

TEST(RpcDeadlockTest, BothDetectorsFindAllInjectedDeadlocks) {
  for (DeadlockDetectorKind kind :
       {DeadlockDetectorKind::kVanRenesseCausal, DeadlockDetectorKind::kWaitForMulticast}) {
    RpcDeadlockConfig config;
    config.detector = kind;
    config.processes = 5;
    config.background_calls = 150;
    config.injected_deadlocks = 4;
    config.seed = 71;
    const RpcDeadlockResult result = RunRpcDeadlockScenario(config);
    EXPECT_EQ(result.detected, result.injected) << "detector " << static_cast<int>(kind);
    EXPECT_EQ(result.false_positives, 0) << "detector " << static_cast<int>(kind);
    EXPECT_GT(result.mean_detection_latency_ms, 0.0);
  }
}

TEST(RpcDeadlockTest, VanRenesseCostsMoreThanWaitForReports) {
  RpcDeadlockConfig base;
  base.processes = 5;
  base.background_calls = 150;
  base.injected_deadlocks = 3;
  base.seed = 72;
  RpcDeadlockConfig none = base;
  none.detector = DeadlockDetectorKind::kNone;
  RpcDeadlockConfig vr = base;
  vr.detector = DeadlockDetectorKind::kVanRenesseCausal;
  RpcDeadlockConfig wf = base;
  wf.detector = DeadlockDetectorKind::kWaitForMulticast;
  const RpcDeadlockResult none_result = RunRpcDeadlockScenario(none);
  const RpcDeadlockResult vr_result = RunRpcDeadlockScenario(vr);
  const RpcDeadlockResult wf_result = RunRpcDeadlockScenario(wf);
  const uint64_t vr_cost = vr_result.network_bytes - none_result.network_bytes;
  const uint64_t wf_cost = wf_result.network_bytes - none_result.network_bytes;
  EXPECT_GT(vr_result.network_bytes, none_result.network_bytes);
  EXPECT_GT(wf_result.network_bytes, none_result.network_bytes);
  EXPECT_GT(vr_cost, 2 * wf_cost)
      << "two causal multicasts per RPC dwarf periodic wait-for reports";
}

TEST(RpcDeadlockTest, UndetectedDeadlocksClearOnlyByRescueTimeout) {
  RpcDeadlockConfig config;
  config.detector = DeadlockDetectorKind::kNone;
  config.processes = 4;
  config.background_calls = 50;
  config.injected_deadlocks = 2;
  config.rescue_timeout = sim::Duration::Seconds(1);
  config.seed = 73;
  const RpcDeadlockResult result = RunRpcDeadlockScenario(config);
  EXPECT_EQ(result.detected, 0);
  // All calls still complete eventually (the rescue fired).
  EXPECT_GT(result.app_calls_completed, 50u);
}

}  // namespace
}  // namespace apps
