// Wire-size accounting tests: E12's overhead claims rest on this arithmetic,
// so it is locked down here. Also covers payload plumbing (piggyback
// stripping, describe strings, flush message sizing).

#include <gtest/gtest.h>

#include <memory>

#include "src/catocs/message.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(size_t size) { return std::make_shared<net::BlobPayload>("b", size); }

GroupDataPtr MakeData(MemberId sender, uint64_t seq, size_t vt_entries, size_t ack_entries,
                      size_t payload_bytes) {
  VectorClock vt;
  for (MemberId m = 1; m <= vt_entries; ++m) {
    vt.Set(m, m);
  }
  auto data = std::make_shared<GroupData>(1, MessageId{sender, seq}, OrderingMode::kCausal, vt,
                                          Blob(payload_bytes), sim::TimePoint::Zero());
  VectorClock acks;
  for (MemberId m = 1; m <= ack_entries; ++m) {
    acks.Set(m, m);
  }
  data->set_acks(std::move(acks));
  return data;
}

TEST(MessageSizeTest, GroupDataHeaderGrowsLinearlyWithGroupSize) {
  const auto small = MakeData(1, 1, 4, 4, 100);
  const auto large = MakeData(1, 1, 64, 64, 100);
  EXPECT_EQ(small->HeaderBytes(), 17 + 4 * VectorClock::kEntryBytes + 4 * VectorClock::kEntryBytes);
  EXPECT_EQ(large->HeaderBytes(),
            17 + 64 * VectorClock::kEntryBytes + 64 * VectorClock::kEntryBytes);
  // Payload is unaffected by group size.
  EXPECT_EQ(small->SizeBytes(), large->SizeBytes());
}

TEST(MessageSizeTest, PiggybackCountsTowardSizeNotHeader) {
  auto main_msg = MakeData(1, 2, 2, 0, 100);
  auto predecessor = MakeData(2, 1, 2, 0, 50);
  auto carrying = std::make_shared<GroupData>(*main_msg);
  carrying->set_piggyback({predecessor});
  EXPECT_EQ(carrying->SizeBytes(),
            100 + 50 + predecessor->HeaderBytes());
  EXPECT_EQ(carrying->HeaderBytes(), main_msg->HeaderBytes());
}

TEST(MessageSizeTest, StripPiggybackPreservesEverythingElse) {
  auto main_msg = MakeData(1, 2, 3, 2, 100);
  auto predecessor = MakeData(2, 1, 1, 0, 50);
  auto carrying = std::make_shared<GroupData>(*main_msg);
  carrying->set_piggyback({predecessor});
  GroupDataPtr stripped = StripPiggyback(carrying);
  EXPECT_TRUE(stripped->piggyback().empty());
  EXPECT_EQ(stripped->id(), main_msg->id());
  EXPECT_EQ(stripped->SizeBytes(), 100u);
  EXPECT_EQ(stripped->HeaderBytes(), main_msg->HeaderBytes());
  EXPECT_EQ(stripped->acks().entry_count(), 2u);
  // No piggyback -> same object comes back (no needless copies).
  GroupDataPtr plain = StripPiggyback(stripped);
  EXPECT_EQ(plain.get(), stripped.get());
}

TEST(MessageSizeTest, FlushStateChargesUnstableMessagesInFull) {
  std::vector<GroupDataPtr> unstable{MakeData(1, 1, 2, 0, 100), MakeData(2, 1, 2, 0, 200)};
  const size_t msg_cost = (100 + unstable[0]->HeaderBytes()) + (200 + unstable[1]->HeaderBytes());
  FlushState state(1, 2, {{1, 1}, {2, 1}}, unstable, {{MessageId{1, 1}, 1}}, 1);
  EXPECT_EQ(state.SizeBytes(), 2 * VectorClock::kEntryBytes + 1 * 20 + 8 + msg_cost);
}

TEST(MessageSizeTest, ViewInstallChargesMissingAndAssignments) {
  std::vector<GroupDataPtr> missing{MakeData(1, 1, 1, 0, 64)};
  ViewInstall install(1, 2, {1, 2, 3}, missing, {{MessageId{1, 1}, 1}, {MessageId{2, 1}, 2}}, 3,
                      {{1, 1}});
  EXPECT_EQ(install.SizeBytes(),
            20 + 3 * 4 + 2 * 20 + (64 + missing[0]->HeaderBytes()));
}

TEST(MessageSizeTest, OrderTokenGrowsWithCarriedAssignments) {
  OrderToken empty(1, 5, {});
  EXPECT_EQ(empty.SizeBytes(), 12u);
  std::vector<std::pair<MessageId, uint64_t>> assignments;
  for (uint64_t i = 1; i <= 10; ++i) {
    assignments.emplace_back(MessageId{1, i}, i);
  }
  OrderToken loaded(1, 11, std::move(assignments));
  EXPECT_EQ(loaded.SizeBytes(), 12u + 10 * 20);
  EXPECT_EQ(loaded.assignments().size(), 10u);
  EXPECT_EQ(loaded.assignments().front().first, (MessageId{1, 1}));
}

// --- GroupBatch wire accounting -------------------------------------------

// A constituent the way the batcher produces it: same sender, contiguous
// seqs, an explicit clock, optionally acks.
std::shared_ptr<GroupData> BatchEntry(uint64_t seq,
                                      std::vector<std::pair<MemberId, uint64_t>> vt_entries,
                                      size_t payload_bytes,
                                      std::vector<std::pair<MemberId, uint64_t>> ack_entries = {}) {
  VectorClock vt;
  for (const auto& [m, v] : vt_entries) {
    vt.Set(m, v);
  }
  auto data = std::make_shared<GroupData>(1, MessageId{1, seq}, OrderingMode::kCausal,
                                          std::move(vt), Blob(payload_bytes),
                                          sim::TimePoint::Zero());
  VectorClock acks;
  for (const auto& [m, v] : ack_entries) {
    acks.Set(m, v);
  }
  data->set_acks(std::move(acks));
  return data;
}

TEST(MessageSizeTest, GroupBatchHeaderBytesPinnedHandComputed) {
  // Three constituents; the third delivered something from member 2 between
  // sends, so its vt delta has two changed entries.
  GroupBatch batch(1, {BatchEntry(1, {{1, 1}}, 100),
                       BatchEntry(2, {{1, 2}}, 50),
                       BatchEntry(3, {{1, 3}, {2, 5}}, 25)});
  // Base frame: group(4) + sender(4) + first_seq(8) + count(2) = 18.
  // e1: 5 + (1 + 1*12) vt-full + (1 + 0) acks-empty             = 19
  // e2: 5 + (1 + 1*12) one changed vt entry + (1 + 0)           = 19
  // e3: 5 + (1 + 2*12) two changed vt entries + (1 + 0)         = 31
  EXPECT_EQ(batch.HeaderBytes(), 18u + 19u + 19u + 31u);
  EXPECT_EQ(GroupBatch::kBaseFrameBytes, 18u);
  EXPECT_EQ(batch.sender(), 1u);
  EXPECT_EQ(batch.first_seq(), 1u);
}

TEST(MessageSizeTest, GroupBatchAckDeltasChargeOnlyChanges) {
  // Acks appear on e2 and are unchanged on e3: one 2-entry delta, then none.
  GroupBatch batch(1, {BatchEntry(1, {{1, 1}}, 10),
                       BatchEntry(2, {{1, 2}}, 10, {{1, 1}, {2, 1}}),
                       BatchEntry(3, {{1, 3}}, 10, {{1, 1}, {2, 1}})});
  GroupBatch no_acks(1, {BatchEntry(1, {{1, 1}}, 10),
                         BatchEntry(2, {{1, 2}}, 10),
                         BatchEntry(3, {{1, 3}}, 10)});
  EXPECT_EQ(batch.HeaderBytes(), no_acks.HeaderBytes() + 2 * VectorClock::kEntryBytes);
}

TEST(MessageSizeTest, GroupBatchSizeBytesIsPayloadSum) {
  GroupBatch batch(1, {BatchEntry(1, {{1, 1}}, 100),
                       BatchEntry(2, {{1, 2}}, 50),
                       BatchEntry(3, {{1, 3}}, 25)});
  EXPECT_EQ(batch.SizeBytes(), 175u);
  // Header sections split base frame from per-entry metadata.
  const auto sections = batch.HeaderSections();
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].bytes + sections[1].bytes, batch.HeaderBytes());
}

TEST(MessageSizeTest, StripPiggybackOnBatchConstituents) {
  auto entry = BatchEntry(2, {{1, 2}}, 40);
  auto predecessor = BatchEntry(1, {{1, 1}}, 30);
  auto carrying = std::make_shared<GroupData>(*entry);
  carrying->set_piggyback({predecessor});
  GroupBatch batch(1, {carrying});
  // The constituent's piggyback rides in the batch's payload accounting...
  EXPECT_EQ(batch.SizeBytes(), 40u + 30u + predecessor->HeaderBytes());
  // ...and stripping it for retention keeps identity and header intact.
  GroupDataPtr stripped = StripPiggyback(batch.entries().front());
  EXPECT_TRUE(stripped->piggyback().empty());
  EXPECT_EQ(stripped->id(), entry->id());
  EXPECT_EQ(stripped->SizeBytes(), 40u);
  EXPECT_EQ(stripped->HeaderBytes(), entry->HeaderBytes());
}

TEST(MessageSizeTest, StrippedCopiesDropTheWireDelta) {
  // A stripped (retention/retransmission) copy must not carry the delta
  // stamp: it can reach receivers out of band, where no reference clock is
  // valid — the full vt travels with it and the full-scan gate applies.
  auto entry = BatchEntry(2, {{1, 2}}, 40);
  entry->set_wire_vt(WireVt{false, {{1, 2}}});
  auto carrying = std::make_shared<GroupData>(*entry);
  carrying->set_piggyback({BatchEntry(1, {{1, 1}}, 30)});
  ASSERT_NE(carrying->wire_vt(), nullptr);
  GroupDataPtr stripped = StripPiggyback(carrying);
  EXPECT_EQ(stripped->wire_vt(), nullptr);
  EXPECT_EQ(stripped->vt(), entry->vt());
}

TEST(MessageSizeTest, GroupDataHeaderUsesWireDeltaWhenPresent) {
  std::vector<std::pair<MemberId, uint64_t>> clock;
  for (MemberId m = 1; m <= 8; ++m) {
    clock.emplace_back(m, m);
  }
  auto full = BatchEntry(5, clock, 10);
  auto delta = BatchEntry(5, clock, 10);
  delta->set_wire_vt(WireVt{false, {{1, 5}}});
  EXPECT_EQ(full->HeaderBytes(), 17u + 8 * VectorClock::kEntryBytes);
  EXPECT_EQ(delta->HeaderBytes(), 17u + (1 + 1 * VectorClock::kEntryBytes));
  EXPECT_LT(delta->HeaderBytes(), full->HeaderBytes());
}

TEST(MessageDescribeTest, HumanReadableForms) {
  EXPECT_EQ((MessageId{3, 7}).ToString(), "3#7");
  auto data = MakeData(3, 7, 1, 0, 10);
  EXPECT_NE(data->Describe().find("causal"), std::string::npos);
  EXPECT_NE(data->Describe().find("3#7"), std::string::npos);
  EXPECT_STREQ(ToString(OrderingMode::kTotal), "total");
  EXPECT_STREQ(ToString(OrderingMode::kUnordered), "unordered");
}

}  // namespace
}  // namespace catocs
