// Wire-size accounting tests: E12's overhead claims rest on this arithmetic,
// so it is locked down here. Also covers payload plumbing (piggyback
// stripping, describe strings, flush message sizing).

#include <gtest/gtest.h>

#include <memory>

#include "src/catocs/message.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(size_t size) { return std::make_shared<net::BlobPayload>("b", size); }

GroupDataPtr MakeData(MemberId sender, uint64_t seq, size_t vt_entries, size_t ack_entries,
                      size_t payload_bytes) {
  VectorClock vt;
  for (MemberId m = 1; m <= vt_entries; ++m) {
    vt.Set(m, m);
  }
  auto data = std::make_shared<GroupData>(1, MessageId{sender, seq}, OrderingMode::kCausal, vt,
                                          Blob(payload_bytes), sim::TimePoint::Zero());
  VectorClock acks;
  for (MemberId m = 1; m <= ack_entries; ++m) {
    acks.Set(m, m);
  }
  data->set_acks(std::move(acks));
  return data;
}

TEST(MessageSizeTest, GroupDataHeaderGrowsLinearlyWithGroupSize) {
  const auto small = MakeData(1, 1, 4, 4, 100);
  const auto large = MakeData(1, 1, 64, 64, 100);
  EXPECT_EQ(small->HeaderBytes(), 17 + 4 * VectorClock::kEntryBytes + 4 * VectorClock::kEntryBytes);
  EXPECT_EQ(large->HeaderBytes(),
            17 + 64 * VectorClock::kEntryBytes + 64 * VectorClock::kEntryBytes);
  // Payload is unaffected by group size.
  EXPECT_EQ(small->SizeBytes(), large->SizeBytes());
}

TEST(MessageSizeTest, PiggybackCountsTowardSizeNotHeader) {
  auto main_msg = MakeData(1, 2, 2, 0, 100);
  auto predecessor = MakeData(2, 1, 2, 0, 50);
  auto carrying = std::make_shared<GroupData>(*main_msg);
  carrying->set_piggyback({predecessor});
  EXPECT_EQ(carrying->SizeBytes(),
            100 + 50 + predecessor->HeaderBytes());
  EXPECT_EQ(carrying->HeaderBytes(), main_msg->HeaderBytes());
}

TEST(MessageSizeTest, StripPiggybackPreservesEverythingElse) {
  auto main_msg = MakeData(1, 2, 3, 2, 100);
  auto predecessor = MakeData(2, 1, 1, 0, 50);
  auto carrying = std::make_shared<GroupData>(*main_msg);
  carrying->set_piggyback({predecessor});
  GroupDataPtr stripped = StripPiggyback(carrying);
  EXPECT_TRUE(stripped->piggyback().empty());
  EXPECT_EQ(stripped->id(), main_msg->id());
  EXPECT_EQ(stripped->SizeBytes(), 100u);
  EXPECT_EQ(stripped->HeaderBytes(), main_msg->HeaderBytes());
  EXPECT_EQ(stripped->acks().entry_count(), 2u);
  // No piggyback -> same object comes back (no needless copies).
  GroupDataPtr plain = StripPiggyback(stripped);
  EXPECT_EQ(plain.get(), stripped.get());
}

TEST(MessageSizeTest, FlushStateChargesUnstableMessagesInFull) {
  std::vector<GroupDataPtr> unstable{MakeData(1, 1, 2, 0, 100), MakeData(2, 1, 2, 0, 200)};
  const size_t msg_cost = (100 + unstable[0]->HeaderBytes()) + (200 + unstable[1]->HeaderBytes());
  FlushState state(1, 2, {{1, 1}, {2, 1}}, unstable, {{MessageId{1, 1}, 1}}, 1);
  EXPECT_EQ(state.SizeBytes(), 2 * VectorClock::kEntryBytes + 1 * 20 + 8 + msg_cost);
}

TEST(MessageSizeTest, ViewInstallChargesMissingAndAssignments) {
  std::vector<GroupDataPtr> missing{MakeData(1, 1, 1, 0, 64)};
  ViewInstall install(1, 2, {1, 2, 3}, missing, {{MessageId{1, 1}, 1}, {MessageId{2, 1}, 2}}, 3,
                      {{1, 1}});
  EXPECT_EQ(install.SizeBytes(),
            20 + 3 * 4 + 2 * 20 + (64 + missing[0]->HeaderBytes()));
}

TEST(MessageSizeTest, OrderTokenGrowsWithCarriedAssignments) {
  OrderToken empty(1, 5, {});
  EXPECT_EQ(empty.SizeBytes(), 12u);
  std::map<MessageId, uint64_t> assignments;
  for (uint64_t i = 1; i <= 10; ++i) {
    assignments[MessageId{1, i}] = i;
  }
  OrderToken loaded(1, 11, assignments);
  EXPECT_EQ(loaded.SizeBytes(), 12u + 10 * 20);
}

TEST(MessageDescribeTest, HumanReadableForms) {
  EXPECT_EQ((MessageId{3, 7}).ToString(), "3#7");
  auto data = MakeData(3, 7, 1, 0, 10);
  EXPECT_NE(data->Describe().find("causal"), std::string::npos);
  EXPECT_NE(data->Describe().find("3#7"), std::string::npos);
  EXPECT_STREQ(ToString(OrderingMode::kTotal), "total");
  EXPECT_STREQ(ToString(OrderingMode::kUnordered), "unordered");
}

}  // namespace
}  // namespace catocs
