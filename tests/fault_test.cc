// Tests for the chaos harness: schedule generation determinism, injector
// timing and burst reverts, the crash/recover/rejoin cycle on a live rig,
// and — crucially — that the InvariantOracle *detects* violations when fed
// hand-built bad traces. A clean fuzzer run means nothing if the oracle
// cannot fire.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fault/chaos_rig.h"
#include "src/fault/fault_plan.h"
#include "src/fault/injector.h"
#include "src/fault/oracle.h"
#include "src/sim/simulator.h"

namespace fault {
namespace {

// --- schedule generation -----------------------------------------------------

TEST(FaultPlanTest, SameSeedSamePlan) {
  FaultScheduleGenerator gen(GeneratorConfig{});
  sim::Rng a(42);
  sim::Rng b(42);
  const FaultPlan plan_a = gen.Generate(a);
  const FaultPlan plan_b = gen.Generate(b);
  EXPECT_EQ(plan_a.Describe(), plan_b.Describe());
}

TEST(FaultPlanTest, SeedsProduceDifferentPlans) {
  FaultScheduleGenerator gen(GeneratorConfig{});
  std::set<std::string> distinct;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Rng rng(seed);
    distinct.insert(gen.Generate(rng).Describe());
  }
  EXPECT_GT(distinct.size(), 1u) << "eight seeds, one plan: the generator ignores its RNG";
}

TEST(FaultPlanTest, PlansAreWellFormed) {
  GeneratorConfig cfg;
  FaultScheduleGenerator gen(cfg);
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    sim::Rng rng(seed);
    const FaultPlan plan = gen.Generate(rng);
    sim::TimePoint prev = sim::TimePoint::Zero();
    int crash_depth = 0;
    for (const FaultEvent& event : plan.events) {
      EXPECT_GE(event.at, prev) << "seed " << seed << ": events must be time-sorted";
      prev = event.at;
      EXPECT_LT(event.at, sim::TimePoint::Zero() + plan.horizon) << "seed " << seed;
      switch (event.kind) {
        case FaultKind::kCrash:
          EXPECT_NE(event.slot, 0u) << "seed " << seed << ": slot 0 is the anchor";
          ++crash_depth;
          EXPECT_LE(crash_depth, 1) << "seed " << seed << ": crash windows must not overlap";
          break;
        case FaultKind::kRecover:
          --crash_depth;
          break;
        case FaultKind::kPartition: {
          ASSERT_EQ(event.components.size(), 2u) << "seed " << seed;
          EXPECT_FALSE(event.components[0].empty()) << "seed " << seed;
          EXPECT_FALSE(event.components[1].empty()) << "seed " << seed;
          break;
        }
        case FaultKind::kHeal:
          break;
        case FaultKind::kDropBurst:
        case FaultKind::kDuplicateBurst:
          EXPECT_GT(event.value, 0.0) << "seed " << seed;
          EXPECT_LE(event.value, cfg.max_burst_probability) << "seed " << seed;
          break;
        case FaultKind::kLatencySpike:
          EXPECT_GE(event.value, 2.0) << "seed " << seed;
          EXPECT_LE(event.value, cfg.max_latency_scale) << "seed " << seed;
          break;
        case FaultKind::kSlowReceiver:
        case FaultKind::kOverloadBurst:
          // Overload adversity is off by default (see GeneratorConfig); the
          // default-config plans this test sweeps never contain these.
          ADD_FAILURE() << "seed " << seed << ": overload event in a default plan";
          break;
        case FaultKind::kLongPartition:
          ADD_FAILURE() << "seed " << seed << ": long partition in a default plan";
          break;
      }
    }
    EXPECT_EQ(crash_depth, 0) << "seed " << seed << ": every crash needs its recover";
  }
}

// --- injector ----------------------------------------------------------------

TEST(FaultInjectorTest, BurstRaisesAndRevertsDropProbability) {
  sim::Simulator s(1);
  ChaosRig rig(&s, ChaosRigConfig{});
  FaultInjector injector(&s, &rig);
  FaultPlan plan;
  plan.horizon = sim::Duration::Seconds(1);
  FaultEvent burst;
  burst.at = sim::TimePoint::Zero() + sim::Duration::Millis(100);
  burst.kind = FaultKind::kDropBurst;
  burst.value = 0.5;
  burst.duration = sim::Duration::Millis(50);
  plan.events.push_back(burst);
  injector.Install(plan);

  double during = -1.0;
  double after = -1.0;
  s.ScheduleAfter(sim::Duration::Millis(120), [&] { during = rig.network().drop_probability(); });
  s.ScheduleAfter(sim::Duration::Millis(200), [&] { after = rig.network().drop_probability(); });
  s.RunFor(sim::Duration::Millis(300));
  EXPECT_EQ(injector.events_applied(), 1u);
  EXPECT_DOUBLE_EQ(during, 0.5);
  EXPECT_DOUBLE_EQ(after, 0.0) << "the revert must restore the pre-burst baseline";
}

TEST(FaultInjectorTest, LatencySpikeReverts) {
  sim::Simulator s(2);
  ChaosRig rig(&s, ChaosRigConfig{});
  FaultInjector injector(&s, &rig);
  FaultPlan plan;
  FaultEvent spike;
  spike.at = sim::TimePoint::Zero() + sim::Duration::Millis(10);
  spike.kind = FaultKind::kLatencySpike;
  spike.value = 4.0;
  spike.duration = sim::Duration::Millis(30);
  plan.events.push_back(spike);
  injector.Install(plan);
  double during = -1.0;
  s.ScheduleAfter(sim::Duration::Millis(20), [&] { during = rig.network().latency_scale(); });
  s.RunFor(sim::Duration::Millis(100));
  EXPECT_DOUBLE_EQ(during, 4.0);
  EXPECT_DOUBLE_EQ(rig.network().latency_scale(), 1.0);
}

TEST(FaultInjectorTest, PartitionResolvesSlotsAndSkipsDegenerate) {
  sim::Simulator s(3);
  ChaosRig rig(&s, ChaosRigConfig{});
  FaultInjector injector(&s, &rig);
  FaultPlan plan;
  FaultEvent part;
  part.at = sim::TimePoint::Zero() + sim::Duration::Millis(10);
  part.kind = FaultKind::kPartition;
  part.components = {{0, 1}, {2, 3}};
  plan.events.push_back(part);
  FaultEvent heal;
  heal.at = sim::TimePoint::Zero() + sim::Duration::Millis(40);
  heal.kind = FaultKind::kHeal;
  plan.events.push_back(heal);
  injector.Install(plan);
  bool split = false;
  s.ScheduleAfter(sim::Duration::Millis(20), [&] {
    // Founding ids are slot+1: slots {0,1}|{2,3} => nodes {1,2}|{3,4}.
    split = !rig.network().Reachable(1, 3) && rig.network().Reachable(1, 2) &&
            rig.network().Reachable(3, 4);
  });
  s.RunFor(sim::Duration::Millis(100));
  EXPECT_TRUE(split);
  EXPECT_TRUE(rig.network().Reachable(1, 3)) << "healed";
}

// --- the crash/recover/rejoin cycle on a live rig ----------------------------

TEST(ChaosRigTest, ScriptedCrashRecoverCycleRejoinsWithState) {
  sim::Simulator s(7);
  ChaosRigConfig cfg;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(100);
  ChaosRig rig(&s, cfg);
  FaultInjector injector(&s, &rig);
  FaultPlan plan;
  FaultEvent crash;
  crash.at = sim::TimePoint::Zero() + sim::Duration::Millis(400);
  crash.kind = FaultKind::kCrash;
  crash.slot = 2;
  plan.events.push_back(crash);
  FaultEvent recover = crash;
  recover.at = sim::TimePoint::Zero() + sim::Duration::Millis(900);
  recover.kind = FaultKind::kRecover;
  plan.events.push_back(recover);
  injector.Install(plan);

  rig.Start();
  s.ScheduleAfter(sim::Duration::Seconds(3), [&] { rig.StopWorkload(); });
  s.RunFor(sim::Duration::Seconds(5));

  ASSERT_EQ(rig.recoveries().size(), 1u);
  const auto& stat = rig.recoveries()[0];
  EXPECT_TRUE(stat.rejoined) << "the fresh incarnation never installed a view with itself";
  EXPECT_EQ(stat.slot, 2u);
  EXPECT_EQ(stat.old_id, 3u);
  EXPECT_EQ(stat.new_id, 5u) << "first fresh id after founding ids 1..4";
  EXPECT_GT(stat.rejoined_at, stat.recover_started);

  InvariantOracle oracle;
  const OracleReport report = oracle.Audit(rig);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.deliveries_audited, 0u);
  // State agreement is part of the audit, but assert it directly too.
  const auto stores = rig.LiveStores();
  ASSERT_EQ(stores.size(), 4u);
  for (const auto& [member, store] : stores) {
    EXPECT_EQ(store, stores.begin()->second) << "member " << member;
  }
}

// Primary-partition rule: a member isolated past the failure timeout gets
// evicted by the majority, suspects everyone itself — and then wedges in its
// own flush (1 of 4 is no quorum) instead of installing a rival solo view.
// Before the rule, this exact scenario was a split brain: the fuzzer's wider
// seed range caught the evicted-but-live member seceding and diverging.
TEST(ChaosRigTest, IsolatedMinorityWedgesInsteadOfSeceding) {
  sim::Simulator s(11);
  ChaosRigConfig cfg;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(100);
  ChaosRig rig(&s, cfg);
  FaultInjector injector(&s, &rig);
  FaultPlan plan;
  FaultEvent part;
  part.at = sim::TimePoint::Zero() + sim::Duration::Millis(500);
  part.kind = FaultKind::kPartition;
  part.components = {{0, 1, 2}, {3}};
  plan.events.push_back(part);
  FaultEvent heal;
  heal.at = sim::TimePoint::Zero() + sim::Duration::Millis(900);
  heal.kind = FaultKind::kHeal;
  plan.events.push_back(heal);
  injector.Install(plan);

  rig.Start();
  s.ScheduleAfter(sim::Duration::Seconds(2), [&] { rig.StopWorkload(); });
  s.RunFor(sim::Duration::Seconds(4));

  // The majority evicted member 4; the minority installed nothing.
  ASSERT_FALSE(rig.views().empty());
  std::vector<catocs::MemberId> majority{1, 2, 3};
  for (const auto& record : rig.views()) {
    EXPECT_EQ(record.view.members, majority);
    EXPECT_NE(record.at, 4u) << "the isolated member must not install any view";
  }
  EXPECT_GE(rig.MemberOfSlot(3).stats().flushes_blocked_no_quorum, 1u)
      << "the isolated member should have tried to flush and been refused quorum";
  // The full audit passes: member 4 is alive but outside the final view, so
  // completeness and state agreement are judged among {1,2,3} only.
  const OracleReport report = InvariantOracle().Audit(rig);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ChaosRigTest, SameSeedSameTraceHash) {
  auto run = [](uint64_t seed) {
    sim::Simulator s(seed);
    ChaosRigConfig cfg;
    cfg.group.heartbeat_interval = sim::Duration::Millis(20);
    cfg.group.failure_timeout = sim::Duration::Millis(100);
    ChaosRig rig(&s, cfg);
    FaultInjector injector(&s, &rig);
    GeneratorConfig gen_cfg;
    gen_cfg.horizon = sim::Duration::Seconds(2);
    gen_cfg.failure_timeout = cfg.group.failure_timeout;
    sim::Rng plan_rng(seed ^ 0x9e3779b97f4a7c15ull);
    const FaultPlan plan = FaultScheduleGenerator(gen_cfg).Generate(plan_rng);
    injector.Install(plan);
    rig.Start();
    s.ScheduleAfter(sim::Duration::Seconds(2), [&] { rig.StopWorkload(); });
    s.RunFor(sim::Duration::Seconds(4));
    return rig.TraceHash();
  };
  EXPECT_EQ(run(11), run(11)) << "replaying a seed must be bit-identical";
  EXPECT_NE(run(11), run(12)) << "different seeds should not collide on this workload";
}

// --- oracle negative detection ----------------------------------------------

catocs::Delivery MakeDelivery(catocs::MemberId sender, uint64_t seq, catocs::OrderingMode mode,
                              uint64_t total_seq, int64_t at_ms,
                              catocs::VectorClock vt = catocs::VectorClock()) {
  catocs::Delivery d;
  d.data = std::make_shared<catocs::GroupData>(
      /*group=*/1, catocs::MessageId{sender, seq}, mode, std::move(vt), nullptr,
      sim::TimePoint::Zero() + sim::Duration::Millis(at_ms - 1));
  d.total_seq = total_seq;
  d.delivered_at = sim::TimePoint::Zero() + sim::Duration::Millis(at_ms);
  return d;
}

bool AnyViolationContains(const OracleReport& report, const std::string& needle) {
  for (const auto& violation : report.violations) {
    if (violation.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(OracleTest, CleanTraceIsClean) {
  TraceObservations trace;
  trace.always_live = {1, 2};
  for (catocs::MemberId at : {1u, 2u}) {
    trace.deliveries.push_back(
        {at, 0, MakeDelivery(1, 1, catocs::OrderingMode::kCausal, 0, 10 + at)});
  }
  trace.live_stores = {{1, {{7, 7}}}, {2, {{7, 7}}}};
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(OracleTest, DetectsDuplicateDelivery) {
  TraceObservations trace;
  trace.always_live = {1};
  trace.deliveries.push_back(
      {1, 0, MakeDelivery(1, 1, catocs::OrderingMode::kCausal, 0, 10)});
  trace.deliveries.push_back(
      {1, 0, MakeDelivery(1, 1, catocs::OrderingMode::kCausal, 0, 20)});
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(AnyViolationContains(report, "duplicate-delivery")) << report.Summary();
}

TEST(OracleTest, DetectsLostDelivery) {
  TraceObservations trace;
  trace.always_live = {1, 2};
  trace.deliveries.push_back(
      {1, 0, MakeDelivery(1, 1, catocs::OrderingMode::kCausal, 0, 10)});
  // Member 2 never delivers (1,1).
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(AnyViolationContains(report, "lost-delivery")) << report.Summary();
}

TEST(OracleTest, DetectsTotalOrderDisagreement) {
  TraceObservations trace;
  trace.always_live = {1, 2};
  // Same total_seq, different messages at the two observers.
  trace.deliveries.push_back(
      {1, 0, MakeDelivery(1, 1, catocs::OrderingMode::kTotal, 1, 10)});
  trace.deliveries.push_back(
      {1, 0, MakeDelivery(2, 1, catocs::OrderingMode::kTotal, 2, 20)});
  trace.deliveries.push_back(
      {2, 1, MakeDelivery(2, 1, catocs::OrderingMode::kTotal, 1, 10)});
  trace.deliveries.push_back(
      {2, 1, MakeDelivery(1, 1, catocs::OrderingMode::kTotal, 2, 20)});
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(AnyViolationContains(report, "total-order")) << report.Summary();
}

TEST(OracleTest, DetectsCausalViolation) {
  catocs::VectorClock first;
  first.Increment(1);  // {1:1}
  catocs::VectorClock second = first;
  second.Increment(2);  // {1:1, 2:1} — causally after `first`
  TraceObservations trace;
  trace.always_live = {1, 2};
  for (catocs::MemberId at : {1u, 2u}) {
    if (at == 2) {
      // Member 2 delivers the successor before its cause.
      trace.deliveries.push_back(
          {at, 0, MakeDelivery(2, 1, catocs::OrderingMode::kCausal, 0, 10, second)});
      trace.deliveries.push_back(
          {at, 0, MakeDelivery(1, 1, catocs::OrderingMode::kCausal, 0, 20, first)});
    } else {
      trace.deliveries.push_back(
          {at, 0, MakeDelivery(1, 1, catocs::OrderingMode::kCausal, 0, 10, first)});
      trace.deliveries.push_back(
          {at, 0, MakeDelivery(2, 1, catocs::OrderingMode::kCausal, 0, 20, second)});
    }
  }
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(AnyViolationContains(report, "causal-order")) << report.Summary();
}

TEST(OracleTest, DetectsViewDisagreement) {
  TraceObservations trace;
  trace.views.push_back({1, sim::TimePoint::Zero(), catocs::View{2, {1, 2, 3}}});
  trace.views.push_back({2, sim::TimePoint::Zero(), catocs::View{2, {1, 2}}});
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(AnyViolationContains(report, "view-synchrony")) << report.Summary();
}

TEST(OracleTest, DetectsStateDivergence) {
  TraceObservations trace;
  trace.live_stores = {{1, {{7, 7}}}, {2, {{7, 8}}}};
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(AnyViolationContains(report, "state-divergence")) << report.Summary();
}

TEST(OracleTest, DetectsWedgedRejoin) {
  TraceObservations trace;
  ChaosRig::RecoveryStat stat;
  stat.slot = 1;
  stat.old_id = 2;
  stat.new_id = 5;
  stat.rejoined = false;
  trace.recoveries.push_back(stat);
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(AnyViolationContains(report, "wedged-rejoin")) << report.Summary();
}

TEST(OracleTest, DetectsBudgetExceededAndPressureRegression) {
  auto sample = [](uint64_t epoch, catocs::MemoryPressure level, size_t used_bytes) {
    ChaosRig::BudgetSample s;
    s.at = 1;
    s.when = sim::TimePoint::Zero() + sim::Duration::Millis(epoch * 10 + used_bytes / 100);
    s.epoch = epoch;
    s.level = level;
    s.used_bytes = used_bytes;
    s.max_bytes = 1000;
    return s;
  };

  // Occupancy above the configured cap is a violation on its own.
  {
    TraceObservations trace;
    trace.budget_samples.push_back(sample(0, catocs::MemoryPressure::kCritical, 1500));
    const OracleReport report = InvariantOracle().Audit(trace);
    EXPECT_TRUE(AnyViolationContains(report, "budget-exceeded")) << report.Summary();
  }
  // Within one epoch the pressure level must be monotone non-decreasing:
  // de-escalation without a new epoch breaks the hysteresis contract.
  {
    TraceObservations trace;
    trace.budget_samples.push_back(sample(0, catocs::MemoryPressure::kCritical, 950));
    trace.budget_samples.push_back(sample(0, catocs::MemoryPressure::kHigh, 750));
    const OracleReport report = InvariantOracle().Audit(trace);
    EXPECT_TRUE(AnyViolationContains(report, "pressure-regression")) << report.Summary();
  }
  // The epoch counter itself may never run backwards at a member.
  {
    TraceObservations trace;
    trace.budget_samples.push_back(sample(2, catocs::MemoryPressure::kNone, 100));
    trace.budget_samples.push_back(sample(1, catocs::MemoryPressure::kNone, 100));
    const OracleReport report = InvariantOracle().Audit(trace);
    EXPECT_TRUE(AnyViolationContains(report, "pressure-epoch-regression")) << report.Summary();
  }
  // The documented legal shape — escalate within an epoch, de-escalate only
  // by opening a new one — is clean.
  {
    TraceObservations trace;
    trace.budget_samples.push_back(sample(0, catocs::MemoryPressure::kNone, 100));
    trace.budget_samples.push_back(sample(0, catocs::MemoryPressure::kHigh, 750));
    trace.budget_samples.push_back(sample(0, catocs::MemoryPressure::kCritical, 950));
    trace.budget_samples.push_back(sample(1, catocs::MemoryPressure::kNone, 100));
    const OracleReport report = InvariantOracle().Audit(trace);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(OracleTest, DetectsStabilityRegression) {
  catocs::VectorClock high;
  high.Increment(1);
  high.Increment(1);  // {1:2}
  catocs::VectorClock low;
  low.Increment(1);  // {1:1}
  TraceObservations trace;
  trace.stability_samples.push_back({1, 3, high});
  trace.stability_samples.push_back({1, 3, low});  // same view, floor fell
  const OracleReport report = InvariantOracle().Audit(trace);
  EXPECT_TRUE(AnyViolationContains(report, "stability-regression")) << report.Summary();
}

}  // namespace
}  // namespace fault
