// Tests for the transaction substrate: 2PL lock manager, wait-for graph,
// OCC, WAL, and the distributed wait-for-multicast deadlock detector.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/txn/deadlock_detector.h"
#include "src/txn/lock_manager.h"
#include "src/txn/occ.h"
#include "src/txn/wait_for_graph.h"
#include "src/txn/wal.h"

namespace txn {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "x", LockMode::kShared, nullptr));
  EXPECT_TRUE(lm.Acquire(2, "x", LockMode::kShared, nullptr));
  EXPECT_TRUE(lm.Holds(1, "x", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, "x", LockMode::kShared));
}

TEST(LockManagerTest, ExclusiveExcludes) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "x", LockMode::kExclusive, nullptr));
  bool granted = false;
  EXPECT_FALSE(lm.Acquire(2, "x", LockMode::kExclusive, [&] { granted = true; }));
  EXPECT_FALSE(granted);
  lm.ReleaseAll(1);
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.Holds(2, "x", LockMode::kExclusive));
}

TEST(LockManagerTest, SharedBlocksExclusive) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kShared, nullptr);
  bool granted = false;
  EXPECT_FALSE(lm.Acquire(2, "x", LockMode::kExclusive, [&] { granted = true; }));
  lm.ReleaseAll(1);
  EXPECT_TRUE(granted);
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kShared, nullptr);
  EXPECT_TRUE(lm.Acquire(1, "x", LockMode::kExclusive, nullptr));
  EXPECT_TRUE(lm.Holds(1, "x", LockMode::kExclusive));
  EXPECT_EQ(lm.stats().upgrades, 1u);
}

TEST(LockManagerTest, UpgradeWaitsForOtherSharers) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kShared, nullptr);
  lm.Acquire(2, "x", LockMode::kShared, nullptr);
  bool upgraded = false;
  EXPECT_FALSE(lm.Acquire(1, "x", LockMode::kExclusive, [&] { upgraded = true; }));
  lm.ReleaseAll(2);
  EXPECT_TRUE(upgraded);
}

TEST(LockManagerTest, FifoNoStarvationOfExclusive) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kShared, nullptr);
  bool x_granted = false;
  lm.Acquire(2, "x", LockMode::kExclusive, [&] { x_granted = true; });
  // A later shared request must not jump the queued exclusive.
  bool s_granted_immediately = lm.Acquire(3, "x", LockMode::kShared, nullptr);
  EXPECT_FALSE(s_granted_immediately);
  lm.ReleaseAll(1);
  EXPECT_TRUE(x_granted);
}

TEST(LockManagerTest, WaitForEdgesReflectQueue) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(2, "x", LockMode::kExclusive, nullptr);
  auto edges = lm.WaitForEdges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (std::pair<TxnId, TxnId>{2, 1}));
}

TEST(LockManagerTest, ReleaseAllCleansUp) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(1, "y", LockMode::kShared, nullptr);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.locked_resources(), 0u);
}

TEST(LockManagerTest, ReacquireHeldIsIdempotent) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kExclusive, nullptr);
  EXPECT_TRUE(lm.Acquire(1, "x", LockMode::kShared, nullptr));
  EXPECT_TRUE(lm.Acquire(1, "x", LockMode::kExclusive, nullptr));
}

// --- wait-for graph ------------------------------------------------------------

TEST(WaitForGraphTest, NoCycleInDag) {
  WaitForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(1, 3);
  EXPECT_FALSE(g.FindCycle().has_value());
}

TEST(WaitForGraphTest, DetectsTwoCycle) {
  WaitForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);
}

TEST(WaitForGraphTest, DetectsLongCycle) {
  WaitForGraph g;
  for (uint64_t i = 1; i < 6; ++i) {
    g.AddEdge(i, i + 1);
  }
  g.AddEdge(6, 1);
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 6u);
}

TEST(WaitForGraphTest, RemoveNodeBreaksCycle) {
  WaitForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  ASSERT_TRUE(g.FindCycle().has_value());
  g.RemoveNode(2);
  EXPECT_FALSE(g.FindCycle().has_value());
}

TEST(WaitForGraphTest, ReplaceOutEdges) {
  WaitForGraph g;
  g.AddEdge(1, 2);
  g.ReplaceOutEdges(1, {3, 4});
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_TRUE(g.HasEdge(1, 4));
}

TEST(WaitForGraphTest, SelfEdgeIgnored) {
  WaitForGraph g;
  g.AddEdge(1, 1);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.FindCycle().has_value());
}

// Property test: a graph built as a random DAG never reports a cycle; adding
// a back edge along a path always creates one.
TEST(WaitForGraphPropertyTest, RandomDagsAcyclic) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    WaitForGraph g;
    const uint64_t n = 4 + rng.NextBelow(10);
    // Edges only from lower to higher ids: a DAG by construction.
    for (uint64_t a = 1; a <= n; ++a) {
      for (uint64_t b = a + 1; b <= n; ++b) {
        if (rng.NextBool(0.3)) {
          g.AddEdge(a, b);
        }
      }
    }
    EXPECT_FALSE(g.FindCycle().has_value());
    // Close a cycle along some existing edge, if any.
    if (g.edge_count() > 0 && g.HasEdge(1, 2)) {
      g.AddEdge(2, 1);
      EXPECT_TRUE(g.FindCycle().has_value());
    }
  }
}

// --- OCC -------------------------------------------------------------------------

TEST(OccTest, CommitAppliesWrites) {
  OccManager occ;
  TxnId t = occ.Begin();
  occ.Write(t, "x", 1.0);
  EXPECT_TRUE(occ.Commit(t));
  EXPECT_EQ(occ.CommittedValue("x"), 1.0);
}

TEST(OccTest, ReadYourOwnWrites) {
  OccManager occ;
  TxnId t = occ.Begin();
  occ.Write(t, "x", 2.0);
  EXPECT_EQ(occ.Read(t, "x"), 2.0);
}

TEST(OccTest, ConflictAborts) {
  OccManager occ;
  TxnId t1 = occ.Begin();
  TxnId t2 = occ.Begin();
  occ.Read(t1, "x");
  occ.Write(t2, "x", 5.0);
  EXPECT_TRUE(occ.Commit(t2));
  occ.Write(t1, "y", 1.0);
  EXPECT_FALSE(occ.Commit(t1)) << "t1 read x before t2's committed write";
  EXPECT_EQ(occ.stats().validation_failures, 1u);
}

TEST(OccTest, DisjointTransactionsBothCommit) {
  OccManager occ;
  TxnId t1 = occ.Begin();
  TxnId t2 = occ.Begin();
  occ.Write(t1, "x", 1.0);
  occ.Write(t2, "y", 2.0);
  EXPECT_TRUE(occ.Commit(t1));
  EXPECT_TRUE(occ.Commit(t2));
}

TEST(OccTest, WriteWriteWithoutReadCommits) {
  // Blind writes do not conflict under backward validation on read sets.
  OccManager occ;
  TxnId t1 = occ.Begin();
  TxnId t2 = occ.Begin();
  occ.Write(t1, "x", 1.0);
  occ.Write(t2, "x", 2.0);
  EXPECT_TRUE(occ.Commit(t1));
  EXPECT_TRUE(occ.Commit(t2));
  EXPECT_EQ(occ.CommittedValue("x"), 2.0);
}

TEST(OccTest, AbortDiscardsWrites) {
  OccManager occ;
  TxnId t = occ.Begin();
  occ.Write(t, "x", 9.0);
  occ.Abort(t);
  EXPECT_FALSE(occ.CommittedValue("x").has_value());
}

// --- WAL ---------------------------------------------------------------------------

TEST(WalTest, DurabilityAfterFlushDelay) {
  sim::Simulator s(1);
  WriteAheadLog wal(&s, sim::Duration::Millis(2));
  bool durable = false;
  wal.Append("r1", [&] { durable = true; });
  s.RunFor(sim::Duration::Millis(1));
  EXPECT_FALSE(durable);
  s.RunFor(sim::Duration::Millis(2));
  EXPECT_TRUE(durable);
}

TEST(WalTest, DurableRecordsAtCrashPoint) {
  sim::Simulator s(2);
  WriteAheadLog wal(&s, sim::Duration::Millis(5));
  wal.Append("early", nullptr);
  s.RunFor(sim::Duration::Millis(10));
  wal.Append("late", nullptr);
  // Crash "now": the late record's flush has not completed.
  auto durable = wal.DurableRecordsAt(s.now());
  ASSERT_EQ(durable.size(), 1u);
  EXPECT_EQ(durable[0].payload, "early");
}

// --- distributed deadlock detection -------------------------------------------------

TEST(DeadlockDetectorTest, DetectsCrossProcessCycle) {
  sim::Simulator s(3);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  net::Transport ta(&s, &network, 1);
  net::Transport tb(&s, &network, 2);
  net::Transport tm(&s, &network, 9);

  // Process A's instance 15 waits for B's 37; B's 37 waits for A's 15.
  std::vector<WaitEdge> a_edges{{1015, 2037}};
  std::vector<WaitEdge> b_edges{{2037, 1015}};
  WaitForReporter ra(&s, &ta, {9}, sim::Duration::Millis(20), [&] { return a_edges; });
  WaitForReporter rb(&s, &tb, {9}, sim::Duration::Millis(20), [&] { return b_edges; });
  DeadlockMonitor monitor(&s, &tm);
  std::vector<uint64_t> detected;
  monitor.SetDeadlockHandler([&](const std::vector<uint64_t>& cycle) { detected = cycle; });
  ra.Start();
  rb.Start();
  s.RunFor(sim::Duration::Millis(100));
  ra.Stop();
  rb.Stop();
  ASSERT_FALSE(detected.empty());
  EXPECT_EQ(detected.size(), 2u);
  EXPECT_GT(monitor.detections(), 0u);
}

TEST(DeadlockDetectorTest, NoFalseDeadlockAfterEdgeClears) {
  sim::Simulator s(4);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(2)));
  net::Transport ta(&s, &network, 1);
  net::Transport tm(&s, &network, 9);
  std::vector<WaitEdge> edges{{101, 202}};
  WaitForReporter reporter(&s, &ta, {9}, sim::Duration::Millis(10), [&] { return edges; });
  DeadlockMonitor monitor(&s, &tm);
  reporter.Start();
  s.RunFor(sim::Duration::Millis(50));
  edges.clear();  // the wait resolved
  s.RunFor(sim::Duration::Millis(50));
  EXPECT_EQ(monitor.detections(), 0u);
  EXPECT_EQ(monitor.graph().edge_count(), 0u);
}

TEST(DeadlockDetectorTest, StaleOutOfOrderReportsIgnored) {
  sim::Simulator s(5);
  // Heavy jitter: unreliable reports may arrive out of order; sequence
  // numbers must keep the monitor's view at the freshest report.
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(40)));
  net::Transport ta(&s, &network, 1);
  net::Transport tm(&s, &network, 9);
  std::vector<WaitEdge> edges{{101, 202}};
  WaitForReporter reporter(&s, &ta, {9}, sim::Duration::Millis(10), [&] { return edges; });
  DeadlockMonitor monitor(&s, &tm);
  reporter.Start();
  s.RunFor(sim::Duration::Millis(100));
  edges.clear();
  reporter.ReportNow();  // freshest state: no waits
  reporter.Stop();
  s.RunFor(sim::Duration::Seconds(1));
  EXPECT_EQ(monitor.graph().edge_count(), 0u)
      << "a late stale report must not resurrect cleared edges";
}

// Integration: drive the lock manager into a real deadlock, feed its
// WaitForEdges through reporters, and confirm detection end to end (§4.2's
// 2PL claim: order of receipt cannot matter).
TEST(DeadlockDetectorTest, LockManagerCycleDetectedEndToEnd) {
  sim::Simulator s(6);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  net::Transport ta(&s, &network, 1);
  net::Transport tm(&s, &network, 9);
  LockManager lm;
  // T1 holds x, T2 holds y; then each requests the other's resource.
  lm.Acquire(1, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(2, "y", LockMode::kExclusive, nullptr);
  lm.Acquire(1, "y", LockMode::kExclusive, nullptr);
  lm.Acquire(2, "x", LockMode::kExclusive, nullptr);
  WaitForReporter reporter(&s, &ta, {9}, sim::Duration::Millis(10),
                           [&] { return lm.WaitForEdges(); });
  DeadlockMonitor monitor(&s, &tm);
  bool found = false;
  monitor.SetDeadlockHandler([&](const std::vector<uint64_t>&) { found = true; });
  reporter.Start();
  s.RunFor(sim::Duration::Millis(100));
  reporter.Stop();
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace txn
