// Tests for the constant-metadata overlay path (DESIGN.md §11): the
// deterministic spanning tree, the tree-shaped stability strategy, the
// linear causal checker, end-to-end dissemination with O(1) control bytes,
// and churn (crash + rejoin) under the invariant oracle. Also the
// keyframe-resync regression: a view change must force the delta codec's
// next frame to be a keyframe.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/catocs/overlay_buffer.h"
#include "src/fault/chaos_rig.h"
#include "src/fault/fault_plan.h"
#include "src/fault/injector.h"
#include "src/fault/oracle.h"
#include "src/net/overlay.h"
#include "src/sim/simulator.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(const std::string& tag) {
  return std::make_shared<net::BlobPayload>(tag, 32);
}

// --- spanning tree shape -----------------------------------------------------

std::vector<net::NodeId> Ids(size_t n) {
  std::vector<net::NodeId> ids;
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
  }
  return ids;
}

TEST(SpanningOverlayTest, RootHasNoParentAndFirstKChildren) {
  net::SpanningOverlay overlay;
  overlay.Rebuild(Ids(10), 1);
  EXPECT_TRUE(overlay.is_root());
  EXPECT_EQ(overlay.parent(), 0u);
  EXPECT_EQ(overlay.depth(), 0u);
  EXPECT_EQ(overlay.children(), (std::vector<net::NodeId>{2, 3, 4, 5}));
  EXPECT_EQ(overlay.neighbors(), (std::vector<net::NodeId>{2, 3, 4, 5}));
}

TEST(SpanningOverlayTest, InteriorNodeLinksMatchKAryFormula) {
  net::SpanningOverlay overlay;
  // index(id=3) = 2; parent index (2-1)/4 = 0 -> id 1.
  // children indices 2*4+1..2*4+4 = 9..12 -> ids 10, 11, 12 (13 absent: N=12).
  overlay.Rebuild(Ids(12), 3);
  EXPECT_FALSE(overlay.is_root());
  EXPECT_EQ(overlay.parent(), 1u);
  EXPECT_EQ(overlay.depth(), 1u);
  EXPECT_EQ(overlay.children(), (std::vector<net::NodeId>{10, 11, 12}));
  EXPECT_TRUE(overlay.IsNeighbor(1));
  EXPECT_TRUE(overlay.IsNeighbor(11));
  EXPECT_FALSE(overlay.IsNeighbor(2));
}

TEST(SpanningOverlayTest, SelfAbsentMeansNotInOverlay) {
  net::SpanningOverlay overlay;
  overlay.Rebuild(Ids(8), 42);
  EXPECT_FALSE(overlay.in_overlay());
  EXPECT_FALSE(overlay.is_root());
  EXPECT_TRUE(overlay.neighbors().empty());
}

TEST(SpanningOverlayTest, JoinAppendsLeafWithoutMovingInterior) {
  // A fresh joiner takes an id above every existing one, so the sorted index
  // of every current member is unchanged — only the joiner's parent gains a
  // link. That is the property that makes a join a cheap rewire.
  net::SpanningOverlay before;
  net::SpanningOverlay after;
  std::vector<net::NodeId> ids = Ids(9);
  before.Rebuild(ids, 3);
  ids.push_back(50);  // joiner: index 9, parent index (9-1)/4 = 2 -> id 3
  after.Rebuild(ids, 3);
  EXPECT_EQ(before.parent(), after.parent());
  EXPECT_EQ(after.children(), (std::vector<net::NodeId>{50}));
  net::SpanningOverlay joiner;
  joiner.Rebuild(ids, 50);
  EXPECT_EQ(joiner.parent(), 3u);
  EXPECT_TRUE(joiner.children().empty());
}

TEST(SpanningOverlayTest, DepthIsLogarithmic) {
  net::SpanningOverlay overlay;
  overlay.Rebuild(Ids(1024), 1024);
  EXPECT_LE(overlay.depth(), 5u);  // ceil(log4 1024) = 5
}

// --- overlay stability strategy ---------------------------------------------

GroupDataPtr Msg(MemberId sender, uint64_t seq) {
  VectorClock vt;
  vt.Set(sender, seq);
  auto data = std::make_shared<GroupData>(/*group=*/1, MessageId{sender, seq},
                                          OrderingMode::kCausal, std::move(vt), Blob("m"),
                                          sim::TimePoint::Zero());
  data->set_overlay_view(1);
  return data;
}

VectorClock Clock(std::vector<std::pair<MemberId, uint64_t>> entries) {
  VectorClock vc;
  for (const auto& [member, value] : entries) {
    vc.Set(member, value);
  }
  return vc;
}

TEST(OverlayBufferTest, SubtreeFloorEmptyUntilEveryReporterReports) {
  OverlayCausalStrategy strategy;
  strategy.SetMembers({1, 2, 3});
  strategy.SetReportSet(/*self=*/1, /*children=*/{2, 3});
  strategy.UpdateMemberVector(1, Clock({{1, 5}, {2, 4}}));
  strategy.UpdateMemberVector(2, Clock({{1, 3}, {2, 4}}));
  // Child 3 has not reported under this tree: nothing is provable yet.
  EXPECT_EQ(strategy.SubtreeFloor().entry_count(), 0u);
  strategy.UpdateMemberVector(3, Clock({{1, 4}, {2, 6}}));
  const VectorClock floor = strategy.SubtreeFloor();
  EXPECT_EQ(floor.Get(1), 3u);
  EXPECT_EQ(floor.Get(2), 4u);
}

TEST(OverlayBufferTest, AdoptFloorReleasesCoveredMessages) {
  OverlayCausalStrategy strategy;
  strategy.SetMembers({1, 2});
  strategy.SetReportSet(1, {});
  strategy.AddToBuffer(Msg(2, 1));
  strategy.AddToBuffer(Msg(2, 2));
  strategy.AddToBuffer(Msg(2, 3));
  EXPECT_EQ(strategy.buffered_count(), 3u);
  EXPECT_TRUE(strategy.AdoptFloor(Clock({{2, 2}})));
  EXPECT_EQ(strategy.buffered_count(), 1u);
  EXPECT_EQ(strategy.StableFloorFor(2), 2u);
  // A floor never retreats; re-announcing an older one is a no-op.
  EXPECT_FALSE(strategy.AdoptFloor(Clock({{2, 1}})));
  EXPECT_EQ(strategy.StableFloorFor(2), 2u);
}

TEST(OverlayBufferTest, RewireForgetsChildReportsButKeepsFloor) {
  OverlayCausalStrategy strategy;
  strategy.SetMembers({1, 2, 3});
  strategy.SetReportSet(1, {2});
  strategy.UpdateMemberVector(1, Clock({{3, 9}}));
  strategy.UpdateMemberVector(2, Clock({{3, 7}}));
  EXPECT_EQ(strategy.SubtreeFloor().Get(3), 7u);
  ASSERT_TRUE(strategy.AdoptFloor(Clock({{3, 5}})));
  // Rewire: same child set shape, but the old report must not survive — it
  // described the old tree's subtree, not the new one's.
  strategy.SetReportSet(1, {3});
  EXPECT_EQ(strategy.SubtreeFloor().entry_count(), 0u) << "child 3 has not reported yet";
  EXPECT_EQ(strategy.StableFloorFor(3), 5u) << "the adopted release floor survives rewires";
}

// --- linear causal checker ---------------------------------------------------

GroupFabric::Record Rec(MemberId at, MemberId sender, uint64_t seq, VectorClock vt) {
  Delivery d;
  d.data = std::make_shared<GroupData>(/*group=*/1, MessageId{sender, seq},
                                       OrderingMode::kCausal, std::move(vt), nullptr,
                                       sim::TimePoint::Zero());
  d.delivered_at = sim::TimePoint::Zero();
  return GroupFabric::Record{at, std::move(d)};
}

TEST(CausalOrderLinearTest, CleanTracePasses) {
  std::vector<GroupFabric::Record> records;
  records.push_back(Rec(1, 1, 1, Clock({{1, 1}})));
  records.push_back(Rec(1, 2, 1, Clock({{1, 1}, {2, 1}})));
  records.push_back(Rec(2, 1, 1, Clock({{1, 1}})));
  records.push_back(Rec(2, 2, 1, Clock({{1, 1}, {2, 1}})));
  EXPECT_EQ(CheckCausalOrderLinear(records), "");
  EXPECT_EQ(CheckCausalDeliveryInvariant(records), "");
}

TEST(CausalOrderLinearTest, FlagsInversionTheQuadraticCheckerFlags) {
  // Member 2 delivers (2,1) — which counts (1,1) in its past — before (1,1).
  std::vector<GroupFabric::Record> records;
  records.push_back(Rec(2, 2, 1, Clock({{1, 1}, {2, 1}})));
  records.push_back(Rec(2, 1, 1, Clock({{1, 1}})));
  EXPECT_NE(CheckCausalOrderLinear(records), "");
  EXPECT_NE(CheckCausalDeliveryInvariant(records), "");
}

TEST(CausalOrderLinearTest, FlagsDuplicateDelivery) {
  std::vector<GroupFabric::Record> records;
  records.push_back(Rec(1, 1, 1, Clock({{1, 1}})));
  records.push_back(Rec(1, 1, 1, Clock({{1, 1}})));
  EXPECT_NE(CheckCausalOrderLinear(records), "");
}

// --- end-to-end overlay dissemination ---------------------------------------

FabricConfig OverlayConfig(uint32_t n) {
  FabricConfig cfg;
  cfg.num_members = n;
  cfg.group.causal_buffer = CausalBufferKind::kOverlay;
  return cfg;
}

TEST(OverlayFabricTest, EveryMemberDeliversEverythingInCausalOrder) {
  sim::Simulator s(7);
  GroupFabric fabric(&s, OverlayConfig(16));
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (int k = 0; k < 20; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(5 * k + 3),
                    [&fabric, k] { fabric.member(k % 16).CausalSend(Blob("m")); });
  }
  s.RunFor(sim::Duration::Seconds(3));
  EXPECT_EQ(fabric.records().size(), 20u * 16u) << "tree flooding must reach every member";
  EXPECT_EQ(CheckCausalOrderLinear(fabric.records()), "");
  EXPECT_EQ(CheckCausalDeliveryInvariant(fabric.records()), "");
  EXPECT_EQ(CheckFifoInvariant(fabric.records()), "");
}

TEST(OverlayFabricTest, ControlBytesPerTransmissionAreConstantInN) {
  auto metadata_per_transmission = [](uint32_t n) {
    sim::Simulator s(9);
    GroupFabric fabric(&s, OverlayConfig(n));
    fabric.RecordDeliveries();
    fabric.StartAll();
    for (int k = 0; k < 10; ++k) {
      s.ScheduleAfter(sim::Duration::Millis(7 * k + 3),
                      [&fabric, k, n] { fabric.member(k % n).CausalSend(Blob("m")); });
    }
    s.RunFor(sim::Duration::Seconds(3));
    uint64_t header_bytes = 0;
    uint64_t transmissions = 0;
    for (size_t i = 0; i < fabric.size(); ++i) {
      header_bytes += fabric.member(i).stats().ordering_header_bytes;
      transmissions += fabric.member(i).stats().data_transmissions;
    }
    EXPECT_GT(transmissions, 0u);
    return static_cast<double>(header_bytes) / static_cast<double>(transmissions);
  };
  const double at_8 = metadata_per_transmission(8);
  const double at_32 = metadata_per_transmission(32);
  EXPECT_DOUBLE_EQ(at_8, at_32) << "overlay control bytes must not grow with N";
  EXPECT_LE(at_8, 32.0) << "17-byte envelope + 9-byte overlay section, no piggyback";
}

TEST(OverlayFabricTest, TreeStabilityDrainsRetentionBuffers) {
  sim::Simulator s(11);
  GroupFabric fabric(&s, OverlayConfig(16));
  fabric.StartAll();
  for (int k = 0; k < 12; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(5 * k + 3),
                    [&fabric, k] { fabric.member(k % 16).CausalSend(Blob("m")); });
  }
  // Floor lag is ~2·depth gossip rounds; give it a comfortable multiple.
  s.RunFor(sim::Duration::Seconds(5));
  for (size_t i = 0; i < fabric.size(); ++i) {
    EXPECT_EQ(fabric.member(i).buffered_messages(), 0u)
        << "member " << i << " still retains copies: the up-report/announce "
        << "cycle failed to prove group-wide stability";
  }
}

// --- churn under the oracle --------------------------------------------------

TEST(OverlayChurnTest, SeededCrashRejoinPlansKeepAllInvariants) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Simulator s(seed);
    fault::ChaosRigConfig cfg;
    cfg.group.heartbeat_interval = sim::Duration::Millis(20);
    cfg.group.failure_timeout = sim::Duration::Millis(100);
    cfg.group.causal_buffer = CausalBufferKind::kOverlay;
    fault::ChaosRig rig(&s, cfg);
    fault::FaultInjector injector(&s, &rig);
    fault::GeneratorConfig gen_cfg;
    gen_cfg.horizon = sim::Duration::Seconds(2);
    gen_cfg.failure_timeout = cfg.group.failure_timeout;
    sim::Rng plan_rng(seed ^ 0x9e3779b97f4a7c15ull);
    const fault::FaultPlan plan = fault::FaultScheduleGenerator(gen_cfg).Generate(plan_rng);
    injector.Install(plan);
    rig.Start();
    s.ScheduleAfter(sim::Duration::Seconds(2), [&rig] { rig.StopWorkload(); });
    s.RunFor(sim::Duration::Seconds(4));
    const fault::OracleReport report = fault::InvariantOracle().Audit(rig);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.Summary();
    EXPECT_GT(report.deliveries_audited, 0u) << "seed " << seed;
  }
}

TEST(OverlayChurnTest, ExplicitJoinMidTrafficRewiresAndKeepsOrder) {
  sim::Simulator s(21);
  FabricConfig cfg = OverlayConfig(8);
  cfg.group.enable_membership = true;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(120);
  GroupFabric fabric(&s, cfg);
  net::Transport joiner_transport(&s, &fabric.network(), 30);
  GroupMember joiner(&s, &joiner_transport, cfg.group, 30, {30});
  std::vector<GroupFabric::Record> records;
  for (size_t i = 0; i < 8; ++i) {
    fabric.member(i).SetDeliveryHandler([&records, i](const Delivery& d) {
      records.push_back({GroupFabric::IdOf(i), d});
    });
  }
  joiner.SetDeliveryHandler([&records](const Delivery& d) { records.push_back({30, d}); });
  fabric.StartAll();
  joiner.Start();
  for (int k = 0; k < 40; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(20 * k + 5),
                    [&fabric, k] { fabric.member(k % 8).CausalSend(Blob("m")); });
  }
  s.ScheduleAfter(sim::Duration::Millis(300), [&joiner] { joiner.JoinGroup(1); });
  s.RunFor(sim::Duration::Seconds(4));
  EXPECT_EQ(joiner.view().members.size(), 9u);
  // The joiner appends as a leaf of member 3 (index 8 -> parent index 1... no:
  // (8-1)/4 = 1 -> id 2); what matters here is only that it is wired in.
  EXPECT_EQ(CheckCausalOrderLinear(records), "");
  EXPECT_EQ(CheckFifoInvariant(records), "");
  // Everyone (joiner included) keeps delivering post-join traffic.
  size_t at_joiner = 0;
  for (const auto& record : records) {
    if (record.at == 30 && record.delivery.id().sender <= 8) {
      ++at_joiner;
    }
  }
  EXPECT_GT(at_joiner, 0u) << "post-join traffic must reach the new leaf";
}

TEST(OverlayChurnTest, MemberFailureRewiresSubtreeOntoSurvivors) {
  sim::Simulator s(22);
  FabricConfig cfg = OverlayConfig(13);  // member 2 (index 1) has children 6..9
  cfg.group.enable_membership = true;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(120);
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (int k = 0; k < 40; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(25 * k + 5), [&fabric, k] {
      const size_t sender = static_cast<size_t>(k) % 13;
      if (sender != 1) {  // a stopped member's sends would just count as drops
        fabric.member(sender).CausalSend(Blob("m"));
      }
    });
  }
  s.ScheduleAfter(sim::Duration::Millis(400), [&fabric] { fabric.CrashMember(1); });
  s.RunFor(sim::Duration::Seconds(5));
  // The survivors converge on a 12-member view and traffic keeps flowing
  // through the rewired tree (members 6..9 re-parent when index shifts).
  for (size_t i : {size_t{0}, size_t{5}, size_t{12}}) {
    EXPECT_EQ(fabric.member(i).view().members.size(), 12u) << "member " << i;
  }
  EXPECT_EQ(CheckCausalOrderLinear(fabric.records()), "");
  EXPECT_EQ(CheckFifoInvariant(fabric.records()), "");
  // Post-view-change sends still reach every survivor.
  std::vector<MessageId> at_last = fabric.DeliveryOrderAt(12);
  EXPECT_FALSE(at_last.empty());
}

// --- keyframe resync regression ----------------------------------------------

TEST(DeltaCodecViewChangeTest, ViewChangeForcesKeyframeResync) {
  // Regression: CausalLayer::OnViewChange was never invoked by the view
  // install sequence, so the delta encoder kept emitting deltas across a
  // membership change and receivers kept decoding against stale references.
  sim::Simulator s(31);
  FabricConfig cfg;
  cfg.num_members = 4;
  cfg.group.enable_membership = true;
  cfg.group.delta_timestamps = true;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(120);
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(10), [&fabric] { fabric.member(0).CausalSend(Blob("a")); });
  s.ScheduleAfter(sim::Duration::Millis(50), [&fabric] { fabric.member(0).CausalSend(Blob("b")); });
  s.ScheduleAfter(sim::Duration::Millis(300), [&fabric] { fabric.CrashMember(3); });
  s.ScheduleAfter(sim::Duration::Seconds(2), [&fabric] { fabric.member(0).CausalSend(Blob("c")); });
  s.RunFor(sim::Duration::Seconds(3));
  ASSERT_EQ(fabric.member(0).view().members.size(), 3u) << "view change did not happen";
  const GroupStats& stats = fabric.member(0).stats();
  EXPECT_EQ(stats.delta_keyframes_sent, 2u)
      << "the first post-view-change frame must be a keyframe";
  EXPECT_EQ(stats.delta_frames_sent, 1u);
  // And the survivors decode it cleanly.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fabric.member(i).stats().delta_decode_mismatches, 0u) << "member " << i;
  }
}

}  // namespace
}  // namespace catocs
