// Extended randomized property sweeps for the CATOCS stack: every
// combination of protocol variant and network hostility must preserve the
// ordering invariants, drain its buffers at quiescence, and (with
// membership) survive crashes injected at random points.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/catocs/group.h"
#include "src/sim/simulator.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(const std::string& tag) {
  return std::make_shared<net::BlobPayload>(tag, 48);
}

struct HostileParams {
  uint32_t members;
  double drop;
  double duplicate;
  bool piggyback;
  TotalOrderMode total_mode;
  uint64_t seed;
};

class HostileNetworkTest : public ::testing::TestWithParam<HostileParams> {};

TEST_P(HostileNetworkTest, InvariantsAndQuiescence) {
  const HostileParams param = GetParam();
  sim::Simulator s(param.seed);
  FabricConfig cfg;
  cfg.num_members = param.members;
  cfg.network.drop_probability = param.drop;
  cfg.network.duplicate_probability = param.duplicate;
  cfg.group.piggyback_causal = param.piggyback;
  cfg.group.total_order_mode = param.total_mode;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();

  const int sends_per_member = 15;
  for (uint32_t m = 0; m < param.members; ++m) {
    for (int k = 0; k < sends_per_member; ++k) {
      const auto when = sim::Duration::Millis(static_cast<int64_t>(1 + s.rng().NextBelow(300)));
      const OrderingMode mode = k % 2 == 0 ? OrderingMode::kCausal : OrderingMode::kTotal;
      s.ScheduleAfter(when, [&fabric, m, mode] { fabric.member(m).Send(mode, Blob("p")); });
    }
  }
  s.RunFor(sim::Duration::Seconds(30));

  // Completeness: every ordered message delivered at every member.
  const size_t expected = param.members * sends_per_member * param.members;
  EXPECT_EQ(fabric.records().size(), expected);
  // Safety.
  EXPECT_EQ(CheckCausalDeliveryInvariant(fabric.records()), "");
  EXPECT_EQ(CheckFifoInvariant(fabric.records()), "");
  EXPECT_EQ(CheckTotalOrderInvariant(fabric.records()), "");
  // Buffer drain: after quiescence + gossip rounds, nothing is retained.
  for (size_t i = 0; i < fabric.size(); ++i) {
    EXPECT_EQ(fabric.member(i).buffered_messages(), 0u) << "member " << i;
    EXPECT_EQ(fabric.member(i).delay_queue_length(), 0u) << "member " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HostileNetworkTest,
    ::testing::Values(HostileParams{4, 0.0, 0.0, false, TotalOrderMode::kSequencer, 1},
                      HostileParams{4, 0.3, 0.0, false, TotalOrderMode::kSequencer, 2},
                      HostileParams{4, 0.0, 0.3, false, TotalOrderMode::kSequencer, 3},
                      HostileParams{4, 0.2, 0.2, false, TotalOrderMode::kSequencer, 4},
                      HostileParams{6, 0.1, 0.1, true, TotalOrderMode::kSequencer, 5},
                      HostileParams{6, 0.2, 0.0, true, TotalOrderMode::kSequencer, 6},
                      HostileParams{4, 0.1, 0.1, false, TotalOrderMode::kToken, 7},
                      HostileParams{6, 0.2, 0.1, false, TotalOrderMode::kToken, 8},
                      HostileParams{10, 0.15, 0.05, false, TotalOrderMode::kSequencer, 9},
                      HostileParams{10, 0.1, 0.0, false, TotalOrderMode::kToken, 10}));

// Crash at a random instant mid-traffic; survivors must converge on a view,
// deliver identically-ordered totals, and keep all invariants.
class CrashSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashSweepTest, SurvivorsStayConsistent) {
  const uint64_t seed = GetParam();
  sim::Simulator s(seed);
  FabricConfig cfg;
  cfg.num_members = 5;
  cfg.group.enable_membership = true;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(100);
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();

  // Random victim (never member 0, so the check below can use it), random
  // crash time inside the traffic window.
  const size_t victim = 1 + s.rng().NextBelow(4);
  const auto crash_at = sim::Duration::Millis(static_cast<int64_t>(50 + s.rng().NextBelow(400)));
  for (uint32_t m = 0; m < 5; ++m) {
    for (int k = 0; k < 12; ++k) {
      const auto when = sim::Duration::Millis(static_cast<int64_t>(1 + s.rng().NextBelow(500)));
      const OrderingMode mode = k % 2 == 0 ? OrderingMode::kCausal : OrderingMode::kTotal;
      s.ScheduleAfter(when, [&fabric, m, mode] { fabric.member(m).Send(mode, Blob("c")); });
    }
  }
  s.ScheduleAfter(crash_at, [&fabric, victim] { fabric.CrashMember(victim); });
  s.RunFor(sim::Duration::Seconds(10));

  // Survivor records only.
  std::vector<GroupFabric::Record> survivor_records;
  for (const auto& record : fabric.records()) {
    if (record.at != GroupFabric::IdOf(victim)) {
      survivor_records.push_back(record);
    }
  }
  EXPECT_EQ(CheckCausalDeliveryInvariant(survivor_records), "");
  EXPECT_EQ(CheckFifoInvariant(survivor_records), "");
  EXPECT_EQ(CheckTotalOrderInvariant(survivor_records), "");
  // All survivors installed a view excluding the victim.
  for (size_t i = 0; i < 5; ++i) {
    if (i == victim) {
      continue;
    }
    const auto& members = fabric.member(i).view().members;
    EXPECT_EQ(members.size(), 4u) << "member " << i;
    EXPECT_EQ(std::count(members.begin(), members.end(), GroupFabric::IdOf(victim)), 0)
        << "member " << i;
  }
  // Atomic delivery across the failure: survivors delivered identical
  // message sets (delivery atomicity, not just ordering).
  std::vector<std::set<std::pair<MemberId, uint64_t>>> delivered_sets(5);
  for (const auto& record : survivor_records) {
    delivered_sets[record.at - 1].insert({record.delivery.id().sender, record.delivery.id().seq});
  }
  for (size_t i = 1; i < 5; ++i) {
    if (i == victim) {
      continue;
    }
    EXPECT_EQ(delivered_sets[i], delivered_sets[0]) << "member " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweepTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// Several groups share the same transports; traffic must not leak across
// group boundaries and each group's invariants hold independently.
TEST(MultiGroupTest, GroupsAreIsolatedOnSharedTransports) {
  sim::Simulator s(5);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(8)));
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<MemberId> ids{1, 2, 3};
  for (MemberId id : ids) {
    transports.push_back(std::make_unique<net::Transport>(&s, &network, id));
  }
  GroupConfig g1;
  g1.group_id = 1;
  GroupConfig g2;
  g2.group_id = 2;
  std::vector<std::unique_ptr<GroupMember>> group1;
  std::vector<std::unique_ptr<GroupMember>> group2;
  std::vector<std::pair<int, Delivery>> deliveries1;
  std::vector<std::pair<int, Delivery>> deliveries2;
  for (size_t i = 0; i < 3; ++i) {
    group1.push_back(std::make_unique<GroupMember>(&s, transports[i].get(), g1, ids[i], ids));
    group2.push_back(std::make_unique<GroupMember>(&s, transports[i].get(), g2, ids[i], ids));
    group1.back()->SetDeliveryHandler(
        [&deliveries1, i](const Delivery& d) { deliveries1.emplace_back(i, d); });
    group2.back()->SetDeliveryHandler(
        [&deliveries2, i](const Delivery& d) { deliveries2.emplace_back(i, d); });
    group1.back()->Start();
    group2.back()->Start();
  }
  for (int k = 0; k < 10; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + k), [&group1, &group2, k] {
      group1[k % 3]->CausalSend(Blob("g1"));
      group2[(k + 1) % 3]->TotalSend(Blob("g2"));
    });
  }
  s.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(deliveries1.size(), 30u);
  EXPECT_EQ(deliveries2.size(), 30u);
  for (const auto& [member, delivery] : deliveries1) {
    EXPECT_EQ(net::PayloadCast<net::BlobPayload>(delivery.payload())->tag(), "g1");
  }
  for (const auto& [member, delivery] : deliveries2) {
    EXPECT_EQ(net::PayloadCast<net::BlobPayload>(delivery.payload())->tag(), "g2");
    EXPECT_GT(delivery.total_seq, 0u);
  }
}

// Causal order must hold even when traffic mixes ordered and unordered
// sends: the unordered ones are invisible to the vector clocks.
TEST(MixedModeTest, UnorderedTrafficDoesNotPerturbCausalState) {
  sim::Simulator s(6);
  FabricConfig cfg;
  cfg.num_members = 4;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (int k = 0; k < 20; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + 2 * k), [&fabric, k] {
      fabric.member(k % 4).Send(k % 2 == 0 ? OrderingMode::kUnordered : OrderingMode::kCausal,
                                Blob(k % 2 == 0 ? "noise" : "ordered"));
    });
  }
  s.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(CheckCausalDeliveryInvariant(fabric.records()), "");
  // The 10 causal sends delivered everywhere; unordered best-effort (no loss
  // configured, so also everywhere).
  EXPECT_EQ(fabric.records().size(), 20u * 4u);
}

}  // namespace
}  // namespace catocs
