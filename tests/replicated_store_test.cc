// Tests for the two replicated stores of §4.4: transactional (HARP-like,
// 2PC + WAL + write-all-available) and CATOCS-based (Deceit-like, primary
// updater with write-safety levels).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/sim/simulator.h"
#include "src/txn/deadlock_detector.h"
#include "src/txn/replicated_store.h"

namespace txn {
namespace {

// Rig for the transactional store: N replica nodes plus the coordinator
// co-located with replica node 1.
struct TxnRig {
  sim::Simulator s;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<TxnReplica>> replicas;
  std::unique_ptr<TxnCoordinator> coordinator;

  explicit TxnRig(size_t n, uint64_t seed = 1) : s(seed) {
    network = std::make_unique<net::Network>(
        &s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                  sim::Duration::Millis(5)));
    std::vector<net::NodeId> ids;
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(static_cast<net::NodeId>(i + 1));
      transports.push_back(std::make_unique<net::Transport>(&s, network.get(), ids.back()));
      replicas.push_back(std::make_unique<TxnReplica>(&s, transports.back().get()));
    }
    coordinator = std::make_unique<TxnCoordinator>(&s, transports[0].get(), ids);
  }
};

TEST(TxnStoreTest, WriteReachesAllReplicas) {
  TxnRig rig(3);
  bool committed = false;
  rig.coordinator->Write("x", 42.0, [&](bool ok) { committed = ok; });
  rig.s.RunFor(sim::Duration::Seconds(2));
  EXPECT_TRUE(committed);
  for (auto& replica : rig.replicas) {
    EXPECT_EQ(replica->Read("x"), 42.0);
  }
  EXPECT_EQ(rig.coordinator->stats().committed, 1u);
}

TEST(TxnStoreTest, GroupedWritesAreAtomic) {
  TxnRig rig(3);
  bool committed = false;
  rig.coordinator->WriteMany({{"a", 1.0}, {"b", 2.0}, {"c", 3.0}},
                             [&](bool ok) { committed = ok; });
  rig.s.RunFor(sim::Duration::Seconds(2));
  EXPECT_TRUE(committed);
  for (auto& replica : rig.replicas) {
    EXPECT_EQ(replica->Read("a"), 1.0);
    EXPECT_EQ(replica->Read("b"), 2.0);
    EXPECT_EQ(replica->Read("c"), 3.0);
  }
}

TEST(TxnStoreTest, ReplicaVetoAbortsEverywhere) {
  // Limitation 2 ("can't say together"): a replica rejecting for state-level
  // reasons aborts the whole group atomically — something CATOCS delivery
  // order cannot express.
  TxnRig rig(3);
  rig.replicas[2]->SetVoteHook([](const std::string& key) { return key != "forbidden"; });
  bool result = true;
  rig.coordinator->WriteMany({{"ok", 1.0}, {"forbidden", 2.0}}, [&](bool ok) { result = ok; });
  rig.s.RunFor(sim::Duration::Seconds(2));
  EXPECT_FALSE(result);
  for (auto& replica : rig.replicas) {
    EXPECT_FALSE(replica->Read("ok").has_value()) << "no partial application";
    EXPECT_FALSE(replica->Read("forbidden").has_value());
  }
  EXPECT_EQ(rig.coordinator->stats().aborted, 1u);
}

TEST(TxnStoreTest, FailedReplicaDroppedFromAvailabilityList) {
  TxnRig rig(3);
  rig.network->SetNodeUp(3, false);
  bool committed = false;
  rig.coordinator->Write("x", 7.0, [&](bool ok) { committed = ok; });
  rig.s.RunFor(sim::Duration::Seconds(2));
  EXPECT_TRUE(committed) << "write-all-available commits with the survivors";
  EXPECT_EQ(rig.coordinator->stats().replicas_dropped, 1u);
  EXPECT_EQ(rig.coordinator->availability_list(), (std::vector<net::NodeId>{1, 2}));
  EXPECT_EQ(rig.replicas[0]->Read("x"), 7.0);
  EXPECT_EQ(rig.replicas[1]->Read("x"), 7.0);
  // Subsequent writes skip the dead replica entirely (no timeout stall).
  bool second = false;
  rig.coordinator->Write("y", 8.0, [&](bool ok) { second = ok; });
  rig.s.RunFor(sim::Duration::Seconds(1));
  EXPECT_TRUE(second);
}

TEST(TxnStoreTest, CommittedWritesAreDurableInWal) {
  TxnRig rig(2);
  bool committed = false;
  rig.coordinator->Write("x", 1.0, [&](bool ok) { committed = ok; });
  rig.s.RunFor(sim::Duration::Seconds(1));
  ASSERT_TRUE(committed);
  // Every replica forced a prepare record before voting.
  for (auto& replica : rig.replicas) {
    EXPECT_GE(replica->wal().appended(), 1u);
  }
}

TEST(TxnStoreTest, SequentialWritesLastValueWins) {
  TxnRig rig(3);
  int done = 0;
  for (int i = 1; i <= 5; ++i) {
    rig.s.ScheduleAfter(sim::Duration::Millis(50 * i), [&rig, &done, i] {
      rig.coordinator->Write("x", static_cast<double>(i), [&done](bool) { ++done; });
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(3));
  EXPECT_EQ(done, 5);
  for (auto& replica : rig.replicas) {
    EXPECT_EQ(replica->Read("x"), 5.0);
  }
}

// --- contention: policies, abort/restart, distributed deadlocks (DESIGN §12) -------

// Rig with several coordinators on distinct client nodes, all writing through
// the same replica group — the cross-coordinator conflicts the single-client
// TxnRig can never produce.
struct ContentionRig {
  sim::Simulator s;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<TxnReplica>> replicas;
  std::vector<std::unique_ptr<net::Transport>> client_transports;
  std::vector<std::unique_ptr<TxnCoordinator>> coordinators;
  std::vector<std::shared_ptr<std::function<void(int)>>> issue_loops;

  ContentionRig(size_t n_replicas, size_t n_coordinators, DeadlockPolicy policy,
                uint64_t seed = 1)
      : s(seed) {
    network = std::make_unique<net::Network>(
        &s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                  sim::Duration::Millis(5)));
    std::vector<net::NodeId> ids;
    for (size_t i = 0; i < n_replicas; ++i) {
      ids.push_back(static_cast<net::NodeId>(i + 1));
      transports.push_back(std::make_unique<net::Transport>(&s, network.get(), ids.back()));
      replicas.push_back(std::make_unique<TxnReplica>(&s, transports.back().get(),
                                                      TxnReplicaConfig{policy}));
    }
    for (size_t i = 0; i < n_coordinators; ++i) {
      client_transports.push_back(std::make_unique<net::Transport>(
          &s, network.get(), static_cast<net::NodeId>(100 + i)));
      CoordinatorConfig config;
      config.id_namespace = i + 1;  // uid = namespace<<40 | seq: no collisions
      config.prepare_timeout = sim::Duration::Seconds(2);
      config.drop_slow_on_timeout = false;  // slow vote == lock wait, not crash
      config.max_attempts = 20;
      config.retry_backoff = sim::Duration::Millis(3);
      coordinators.push_back(
          std::make_unique<TxnCoordinator>(&s, client_transports.back().get(), ids, config));
    }
  }

  // Closed loop: each coordinator writes the SAME two keys `count` times,
  // each write waiting for the previous one's final outcome. The recursive
  // issue closures are owned by the rig (capturing the shared_ptr in the
  // lambda itself would be a reference cycle and leak).
  void RunConflictingLoad(int count, std::vector<int>* completed) {
    completed->assign(coordinators.size(), 0);
    for (size_t c = 0; c < coordinators.size(); ++c) {
      issue_loops.push_back(std::make_shared<std::function<void(int)>>());
      std::function<void(int)>* issue = issue_loops.back().get();
      *issue = [this, c, count, completed, issue](int i) {
        if (i > count) {
          return;
        }
        coordinators[c]->WriteMany(
            {{"a", static_cast<double>(100 * (c + 1) + i)},
             {"b", static_cast<double>(100 * (c + 1) + i)}},
            [this, c, count, completed, issue, i](bool ok) {
              if (ok) {
                ++(*completed)[c];
              }
              (*issue)(i + 1);
            });
      };
      (*issue)(1);
    }
  }

  bool Converged() const {
    for (size_t i = 1; i < replicas.size(); ++i) {
      if (!DivergentKeys(replicas[0]->store(), replicas[i]->store()).empty()) {
        return false;
      }
    }
    return true;
  }
};

TEST(ContentionTest, WaitDieRetriesUntilEveryTxnCommits) {
  ContentionRig rig(2, 2, DeadlockPolicy::kWaitDie, 3);
  std::vector<int> completed;
  rig.RunConflictingLoad(10, &completed);
  rig.s.RunFor(sim::Duration::Seconds(20));
  EXPECT_EQ(completed, (std::vector<int>{10, 10}))
      << "every logical txn must commit (no starvation, retained timestamps)";
  EXPECT_TRUE(rig.Converged());
  uint64_t failed = 0, aborted = 0;
  for (auto& c : rig.coordinators) {
    failed += c->stats().failed;
    aborted += c->stats().aborted;
  }
  EXPECT_EQ(failed, 0u);
  EXPECT_GT(aborted, 0u) << "conflicting closed loops should produce wait-die deaths";
  uint64_t deaths = 0;
  for (auto& r : rig.replicas) {
    deaths += r->lock_manager().stats().wait_die_aborts;
  }
  EXPECT_GT(deaths, 0u);
}

TEST(ContentionTest, StarvationFreeWoundsAndEveryTxnCommits) {
  ContentionRig rig(2, 2, DeadlockPolicy::kStarvationFree, 3);
  std::vector<int> completed;
  rig.RunConflictingLoad(10, &completed);
  rig.s.RunFor(sim::Duration::Seconds(20));
  EXPECT_EQ(completed, (std::vector<int>{10, 10}));
  EXPECT_TRUE(rig.Converged());
  uint64_t failed = 0;
  for (auto& c : rig.coordinators) {
    failed += c->stats().failed;
  }
  EXPECT_EQ(failed, 0u);
  uint64_t wounds = 0, deaths = 0, local_aborts = 0;
  for (auto& r : rig.replicas) {
    wounds += r->lock_manager().stats().wounds;
    deaths += r->lock_manager().stats().wait_die_aborts;
    local_aborts += r->local_aborts();
  }
  EXPECT_GT(wounds, 0u) << "older txns should wound younger holders under conflict";
  EXPECT_EQ(wounds + deaths, local_aborts)
      << "every wound and every pinned-holder refusal must surface as a NO vote";
}

// Detect policy end to end: cross-replica deadlocks (A holds both keys at
// replica 1 and queues at replica 2; B vice versa) are invisible to either
// replica alone, found by the monitor over the union of reported edges, and
// broken by AbortInFlight at the victim's coordinator; the victim retries
// with its retained timestamp.
TEST(ContentionTest, DetectPolicyMonitorBreaksCrossReplicaDeadlock) {
  ContentionRig rig(2, 2, DeadlockPolicy::kDetect, 4);
  net::Transport monitor_transport(&rig.s, rig.network.get(), 50);
  DeadlockMonitor monitor(&rig.s, &monitor_transport);
  std::vector<std::unique_ptr<WaitForReporter>> reporters;
  for (size_t i = 0; i < rig.replicas.size(); ++i) {
    TxnReplica* replica = rig.replicas[i].get();
    reporters.push_back(std::make_unique<WaitForReporter>(
        &rig.s, rig.transports[i].get(), std::vector<net::NodeId>{50},
        sim::Duration::Millis(15),
        [replica] { return replica->lock_manager().WaitForEdges(); }));
    reporters.back()->Start();
  }
  monitor.SetDeadlockHandler([&](const std::vector<uint64_t>& cycle) {
    // Victim = youngest (max uid within the cycle); its namespace bits say
    // which coordinator owns it.
    std::vector<uint64_t> by_age(cycle);
    std::sort(by_age.begin(), by_age.end(), std::greater<uint64_t>());
    for (uint64_t uid : by_age) {
      const size_t owner = static_cast<size_t>(uid >> 40);
      if (owner >= 1 && owner <= rig.coordinators.size() &&
          rig.coordinators[owner - 1]->AbortInFlight(uid)) {
        break;
      }
    }
  });
  std::vector<int> completed;
  rig.RunConflictingLoad(10, &completed);
  rig.s.RunFor(sim::Duration::Seconds(30));
  for (auto& reporter : reporters) {
    reporter->Stop();
  }
  EXPECT_EQ(completed, (std::vector<int>{10, 10}))
      << "victim kill + retry must drive every logical txn to commit";
  EXPECT_TRUE(rig.Converged());
  EXPECT_GT(monitor.detections(), 0u)
      << "conflicting closed loops across two replicas should deadlock";
}

TEST(ContentionTest, PoliciesAgreeOnFinalStateForSerialLoad) {
  // Uncontended serial writes must be policy-invariant (the E8 rerun claim).
  std::map<std::string, double> stores[3];
  int p = 0;
  for (DeadlockPolicy policy : {DeadlockPolicy::kDetect, DeadlockPolicy::kWaitDie,
                                DeadlockPolicy::kStarvationFree}) {
    ContentionRig rig(3, 1, policy, 9);
    int done = 0;
    for (int i = 1; i <= 6; ++i) {
      rig.s.ScheduleAfter(sim::Duration::Millis(40 * i), [&rig, &done, i] {
        rig.coordinators[0]->Write("k" + std::to_string(i % 3), static_cast<double>(i),
                                   [&done](bool ok) { done += ok ? 1 : 0; });
      });
    }
    rig.s.RunFor(sim::Duration::Seconds(3));
    EXPECT_EQ(done, 6);
    EXPECT_TRUE(rig.Converged());
    stores[p++] = rig.replicas[0]->store();
  }
  EXPECT_EQ(stores[0], stores[1]);
  EXPECT_EQ(stores[0], stores[2]);
}

// --- CATOCS store -----------------------------------------------------------------

struct CatocsRig {
  sim::Simulator s;
  std::unique_ptr<catocs::GroupFabric> fabric;
  std::vector<std::unique_ptr<CatocsReplica>> replicas;
  std::unique_ptr<CatocsPrimary> primary;

  CatocsRig(size_t n, int write_safety, uint64_t seed = 1) : s(seed) {
    catocs::FabricConfig cfg;
    cfg.num_members = static_cast<uint32_t>(n);
    fabric = std::make_unique<catocs::GroupFabric>(&s, cfg);
    for (size_t i = 0; i < n; ++i) {
      replicas.push_back(
          std::make_unique<CatocsReplica>(&s, &fabric->transport(i), &fabric->member(i)));
    }
    primary = std::make_unique<CatocsPrimary>(&s, &fabric->transport(0), &fabric->member(0),
                                              write_safety);
    fabric->StartAll();
  }
};

TEST(CatocsStoreTest, UpdatePropagatesToAllReplicas) {
  CatocsRig rig(3, /*write_safety=*/1);
  bool acked = false;
  rig.s.ScheduleAfter(sim::Duration::Millis(1), [&] {
    rig.primary->Write("x", 5.0, [&] { acked = true; });
  });
  rig.s.RunFor(sim::Duration::Seconds(2));
  EXPECT_TRUE(acked);
  for (auto& replica : rig.replicas) {
    EXPECT_EQ(replica->Read("x"), 5.0);
  }
}

TEST(CatocsStoreTest, WriteSafetyZeroAcksImmediately) {
  CatocsRig rig(3, /*write_safety=*/0);
  bool acked = false;
  rig.s.ScheduleAfter(sim::Duration::Millis(1), [&] {
    rig.primary->Write("x", 5.0, [&] { acked = true; });
    EXPECT_TRUE(acked) << "level 0 completes synchronously at the send";
  });
  rig.s.RunFor(sim::Duration::Millis(2));
}

TEST(CatocsStoreTest, HigherSafetyLevelWaitsLonger) {
  sim::Duration t1;
  {
    CatocsRig rig(4, 1, 7);
    rig.s.ScheduleAfter(sim::Duration::Millis(1), [&] {
      rig.primary->Write("x", 1.0, [&] { t1 = rig.s.now() - sim::TimePoint::Zero(); });
    });
    rig.s.RunFor(sim::Duration::Seconds(2));
  }
  sim::Duration t3;
  {
    CatocsRig rig(4, 3, 7);
    rig.s.ScheduleAfter(sim::Duration::Millis(1), [&] {
      rig.primary->Write("x", 1.0, [&] { t3 = rig.s.now() - sim::TimePoint::Zero(); });
    });
    rig.s.RunFor(sim::Duration::Seconds(2));
  }
  EXPECT_GT(t3, t1) << "waiting for 3 acks takes longer than for 1";
}

TEST(CatocsStoreTest, PrimaryCrashWithSafetyZeroLosesUpdate) {
  // The §2/§4.4 durability hole: ws=0 acknowledges the client, then the
  // primary dies before any replica received the update.
  CatocsRig rig(3, /*write_safety=*/0);
  bool acked = false;
  rig.s.ScheduleAfter(sim::Duration::Millis(5), [&] {
    rig.fabric->network().SetNodeUp(1, false);  // isolate the primary first
    rig.primary->Write("doomed", 9.0, [&] { acked = true; });
    rig.fabric->CrashMember(0);
  });
  rig.s.RunFor(sim::Duration::Seconds(2));
  EXPECT_TRUE(acked) << "the client was told the write succeeded";
  EXPECT_FALSE(rig.replicas[1]->Read("doomed").has_value()) << "but the data is gone";
  EXPECT_FALSE(rig.replicas[2]->Read("doomed").has_value());
}

TEST(CatocsStoreTest, CausalOrderKeepsReplicasConvergent) {
  CatocsRig rig(3, 1);
  int done = 0;
  for (int i = 1; i <= 20; ++i) {
    rig.s.ScheduleAfter(sim::Duration::Millis(5 * i), [&rig, &done, i] {
      rig.primary->Write("k" + std::to_string(i % 4), static_cast<double>(i),
                         [&done] { ++done; });
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(3));
  EXPECT_EQ(done, 20);
  EXPECT_TRUE(DivergentKeys(rig.replicas[0]->store(), rig.replicas[1]->store()).empty());
  EXPECT_TRUE(DivergentKeys(rig.replicas[0]->store(), rig.replicas[2]->store()).empty());
}

TEST(CatocsStoreTest, WalReplayRebuildsStoreAfterCrash) {
  CatocsRig rig(3, 1);
  WriteAheadLog wal(&rig.s, sim::Duration::Micros(500));
  rig.replicas[1]->AttachWal(&wal);
  int done = 0;
  for (int i = 1; i <= 12; ++i) {
    rig.s.ScheduleAfter(sim::Duration::Millis(5 * i), [&rig, &done, i] {
      rig.primary->Write("k" + std::to_string(i), 0.5 * i, [&done] { ++done; });
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(2));
  ASSERT_EQ(done, 12);
  const auto before = rig.replicas[1]->store();
  ASSERT_EQ(before.size(), 12u);
  // Restart after a quiescent crash: every appended record is durable, so
  // replay reproduces the pre-crash store exactly.
  const uint64_t replayed = rig.replicas[1]->RecoverFromWal(wal, rig.s.now());
  EXPECT_EQ(replayed, 12u);
  EXPECT_EQ(rig.replicas[1]->store(), before);
}

TEST(CatocsStoreTest, WalReplayStopsAtCrashInstant) {
  CatocsRig rig(3, 1);
  WriteAheadLog wal(&rig.s, sim::Duration::Micros(500));
  rig.replicas[1]->AttachWal(&wal);
  for (int i = 1; i <= 12; ++i) {
    rig.s.ScheduleAfter(sim::Duration::Millis(5 * i), [&rig, i] {
      rig.primary->Write("k" + std::to_string(i), 0.5 * i, nullptr);
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(2));
  const auto final_store = rig.replicas[1]->store();
  ASSERT_EQ(final_store.size(), 12u);
  // A crash mid-run only keeps the records whose flush completed by then; the
  // tail is lost but everything recovered matches what was applied.
  const sim::TimePoint crash = sim::TimePoint::Zero() + sim::Duration::Millis(31);
  const uint64_t replayed = rig.replicas[1]->RecoverFromWal(wal, crash);
  EXPECT_GE(replayed, 1u);
  EXPECT_LT(replayed, 12u) << "flushes past the crash instant must not replay";
  for (const auto& [key, value] : rig.replicas[1]->store()) {
    auto it = final_store.find(key);
    ASSERT_NE(it, final_store.end());
    EXPECT_EQ(it->second, value);
  }
}

TEST(DivergentKeysTest, ReportsDifferencesAndMissing) {
  std::map<std::string, double> a{{"x", 1.0}, {"y", 2.0}, {"z", 3.0}};
  std::map<std::string, double> b{{"x", 1.0}, {"y", 9.0}, {"w", 4.0}};
  auto diff = DivergentKeys(a, b);
  EXPECT_EQ(diff, (std::vector<std::string>{"w", "y", "z"}));
}

}  // namespace
}  // namespace txn
