// Edge cases of the retention-buffer strategies (causal_buffer.h), run
// against both implementations: the degenerate single-member group, the
// stability jump when a lagging member is evicted, and the ack "wraparound"
// hazard on crash-recovery rejoin — a rejoining process must come back under
// a fresh member id, and stale acks from its dead id must not advance the
// floor while the fresh id has yet to report.

#include <gtest/gtest.h>

#include <memory>

#include "src/catocs/causal_buffer.h"
#include "src/net/payload.h"

namespace catocs {
namespace {

GroupDataPtr Msg(MemberId sender, uint64_t seq) {
  VectorClock vt;
  vt.Set(sender, seq);
  return std::make_shared<GroupData>(1, MessageId{sender, seq}, OrderingMode::kCausal,
                                     std::move(vt), std::make_shared<net::BlobPayload>("t", 64),
                                     sim::TimePoint::Zero());
}

class CausalBufferTest : public ::testing::TestWithParam<CausalBufferKind> {
 protected:
  CausalBufferTest() : buffer_(MakeCausalBuffer(GetParam())) {}
  std::unique_ptr<CausalBufferStrategy> buffer_;
};

TEST_P(CausalBufferTest, FactoryProducesNamedStrategy) {
  EXPECT_STREQ(GetParam() == CausalBufferKind::kFullVector ? "full-vector" : "hybrid",
               buffer_->name());
  EXPECT_STREQ(GetParam() == CausalBufferKind::kFullVector ? "full-vector" : "hybrid",
               ToString(GetParam()));
}

TEST_P(CausalBufferTest, SingleMemberGroup) {
  buffer_->SetMembers({1});
  buffer_->AddToBuffer(Msg(1, 1));
  EXPECT_EQ(1u, buffer_->buffered_count());
  // Even a sole member must report before anything is stable.
  EXPECT_TRUE(buffer_->StableVector().empty());
  buffer_->Prune();
  EXPECT_EQ(1u, buffer_->buffered_count());

  buffer_->UpdateMemberEntry(1, 1, 1);
  EXPECT_EQ(1u, buffer_->StableVector().Get(1));
  buffer_->Prune();
  EXPECT_EQ(0u, buffer_->buffered_count());
  EXPECT_EQ(0u, buffer_->buffered_bytes());
  EXPECT_EQ(nullptr, buffer_->Find(MessageId{1, 1}));
  EXPECT_EQ(1u, buffer_->peak_buffered_count());
}

TEST_P(CausalBufferTest, StabilityAfterMemberEviction) {
  buffer_->SetMembers({1, 2, 3});
  buffer_->AddToBuffer(Msg(1, 1));
  buffer_->UpdateMemberEntry(1, 1, 1);
  buffer_->UpdateMemberEntry(2, 1, 1);
  // Member 3 has reported (an empty ack vector) but delivered nothing, so it
  // holds the floor at zero.
  buffer_->UpdateMemberVector(3, VectorClock{});
  EXPECT_EQ(0u, buffer_->StableVector().Get(1));
  buffer_->Prune();
  EXPECT_EQ(1u, buffer_->buffered_count());
  ASSERT_EQ(1u, buffer_->UnstableMessages().size());

  // Evicting the laggard can only make more messages stable: the floor is
  // now the minimum over the survivors.
  buffer_->SetMembers({1, 2});
  EXPECT_EQ(1u, buffer_->StableVector().Get(1));
  buffer_->Prune();
  EXPECT_EQ(0u, buffer_->buffered_count());
  EXPECT_TRUE(buffer_->UnstableMessages().empty());
}

TEST_P(CausalBufferTest, AckWraparoundOnRejoinUnderFreshId) {
  buffer_->SetMembers({1, 2, 3});
  buffer_->AddToBuffer(Msg(1, 1));
  buffer_->AddToBuffer(Msg(1, 2));
  buffer_->UpdateMemberEntry(1, 1, 2);
  buffer_->UpdateMemberEntry(2, 1, 2);
  buffer_->UpdateMemberEntry(3, 1, 1);
  EXPECT_EQ(1u, buffer_->StableVector().Get(1));
  buffer_->Prune();
  EXPECT_EQ(1u, buffer_->buffered_count());

  // Member 3 crashes and rejoins under a fresh id (4) — the protocol's rule
  // for crash recovery, precisely so its old delivery counters cannot be
  // mistaken for the new incarnation's.
  buffer_->SetMembers({1, 2, 4});
  EXPECT_TRUE(buffer_->StableVector().empty());

  // A stale ack from the dead id, claiming everything was delivered, must
  // not advance the floor: id 3 is no longer a member, and id 4 has not
  // reported.
  VectorClock stale;
  stale.Set(1, 2);
  buffer_->UpdateMemberVector(3, stale);
  EXPECT_TRUE(buffer_->StableVector().empty());
  buffer_->Prune();
  EXPECT_EQ(1u, buffer_->buffered_count());
  EXPECT_NE(nullptr, buffer_->Find(MessageId{1, 2}));

  // Only the fresh incarnation's own report completes the member set.
  VectorClock fresh;
  fresh.Set(1, 2);
  buffer_->UpdateMemberVector(4, fresh);
  EXPECT_EQ(2u, buffer_->StableVector().Get(1));
  buffer_->Prune();
  EXPECT_EQ(0u, buffer_->buffered_count());
}

TEST_P(CausalBufferTest, EvictedSenderOverflowStraysPurgedOnMemberChange) {
  buffer_->SetMembers({1, 2, 3});
  buffer_->AddToBuffer(Msg(3, 1));
  buffer_->AddToBuffer(Msg(3, 2));
  // Sequence gap: lands in the retention ring's overflow map (possible only
  // through direct strategy use, which is exactly what this test is).
  buffer_->AddToBuffer(Msg(3, 5));

  // Everyone delivered the contiguous prefix; the stray stays retained.
  VectorClock acked;
  acked.Set(3, 2);
  buffer_->UpdateMemberVector(1, acked);
  buffer_->UpdateMemberVector(2, acked);
  buffer_->UpdateMemberVector(3, acked);
  buffer_->Prune();
  ASSERT_EQ(1u, buffer_->buffered_count());

  // Member 3 is evicted and rejoins under fresh id 4. The old id's floor row
  // is gone for good (MeetMin drops departed rows; the rejoiner reports under
  // 4), so without the eviction purge the {3,5} stray would be retained
  // forever — and its bytes would stay charged against the resource budget.
  std::vector<std::string> causes;
  buffer_->SetReleaseObserver(
      [&causes](const GroupDataPtr&, const char* cause) { causes.emplace_back(cause); });
  buffer_->SetMembers({1, 2, 4});
  EXPECT_EQ(0u, buffer_->buffered_count());
  EXPECT_EQ(0u, buffer_->buffered_bytes());
  EXPECT_EQ(nullptr, buffer_->Find(MessageId{3, 5}));
  ASSERT_EQ(1u, causes.size());
  EXPECT_EQ("evicted-sender", causes[0]);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, CausalBufferTest,
                         ::testing::Values(CausalBufferKind::kFullVector,
                                           CausalBufferKind::kHybrid),
                         [](const ::testing::TestParamInfo<CausalBufferKind>& info) {
                           return info.param == CausalBufferKind::kFullVector ? "FullVector"
                                                                              : "Hybrid";
                         });

}  // namespace
}  // namespace catocs
