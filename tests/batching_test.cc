// Sender-side batching and delta-encoded timestamps (the raw-speed layer):
// batching defers only the broadcast — constituents keep their identity and
// delivery obligations — and the delta codec must reconstruct every clock
// exactly, across view changes and fresh-id rejoins included.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/catocs/pipeline_stats.h"
#include "src/catocs/wire_codec.h"
#include "src/sim/simulator.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(size_t size = 32) { return std::make_shared<net::BlobPayload>("b", size); }

FabricConfig BatchedConfig(uint32_t batching, bool delta = false) {
  FabricConfig cfg;
  cfg.num_members = 4;
  cfg.group.batching = batching;
  cfg.group.delta_timestamps = delta;
  return cfg;
}

TEST(BatchingTest, BatchedTrafficDeliversEverywhereInOrder) {
  sim::Simulator s(41);
  GroupFabric fabric(&s, BatchedConfig(4));
  fabric.RecordDeliveries();
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(10), [&fabric] {
    for (int k = 0; k < 16; ++k) {
      fabric.member(0).CausalSend(Blob());
    }
  });
  s.RunFor(sim::Duration::Seconds(2));

  const auto& stats = fabric.member(0).stats();
  EXPECT_EQ(stats.sent, 16u);
  EXPECT_EQ(stats.batches_sent, 4u) << "16 sends at batching=4 = 4 full frames";
  EXPECT_EQ(stats.batched_data_msgs, 16u);
  for (size_t i = 0; i < fabric.size(); ++i) {
    const auto order = fabric.DeliveryOrderAt(i);
    ASSERT_EQ(order.size(), 16u) << "member " << i;
    for (size_t k = 0; k < order.size(); ++k) {
      EXPECT_EQ(order[k], (MessageId{1, k + 1})) << "member " << i << " position " << k;
    }
  }
}

TEST(BatchingTest, PartialBatchFlushesOnTimer) {
  sim::Simulator s(42);
  GroupFabric fabric(&s, BatchedConfig(8));
  fabric.RecordDeliveries();
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(10), [&fabric] {
    for (int k = 0; k < 3; ++k) {
      fabric.member(0).CausalSend(Blob());
    }
  });
  s.RunFor(sim::Duration::Seconds(1));

  const auto& stats = fabric.member(0).stats();
  EXPECT_EQ(stats.batches_sent, 1u) << "flush timer drains the partial batch";
  EXPECT_EQ(stats.batched_data_msgs, 3u);
  for (size_t i = 0; i < fabric.size(); ++i) {
    EXPECT_EQ(fabric.member(i).stats().app_delivered, 3u) << "member " << i;
  }
}

TEST(BatchingTest, BatchingReducesHeaderBytesForSameDeliveries) {
  // Every member sends bursts, so clocks carry all four entries: unbatched
  // frames each pay the full 4-entry vt, while within a batch only the
  // first constituent does (the rest delta against it).
  auto run = [](uint32_t batching, bool delta) {
    sim::Simulator s(43);
    GroupFabric fabric(&s, BatchedConfig(batching, delta));
    fabric.StartAll();
    for (int round = 0; round < 3; ++round) {
      for (int m = 0; m < 4; ++m) {
        s.ScheduleAfter(sim::Duration::Millis(10 + 20 * round + 2 * m), [&fabric, m] {
          for (int k = 0; k < 8; ++k) {
            fabric.member(m).CausalSend(Blob());
          }
        });
      }
    }
    s.RunFor(sim::Duration::Seconds(2));
    uint64_t header_bytes = 0;
    for (size_t i = 0; i < fabric.size(); ++i) {
      header_bytes += fabric.member(i).stats().ordering_header_bytes;
    }
    return std::pair<uint64_t, uint64_t>{header_bytes, fabric.member(3).stats().app_delivered};
  };
  const auto [unbatched_bytes, unbatched_delivered] = run(1, false);
  const auto [batched_bytes, batched_delivered] = run(8, true);
  EXPECT_EQ(batched_delivered, unbatched_delivered) << "batching must not change what arrives";
  EXPECT_LT(batched_bytes, unbatched_bytes / 2)
      << "one delta-encoded frame per 8 sends must cost far less than 8 full headers";
}

// The membership layer flushes the pending batch before blocking the group:
// a batch is broadcast whole into the old view, never split across one.
TEST(BatchingTest, BatchNeverSpansViewChange) {
  sim::Simulator s(44);
  FabricConfig cfg = BatchedConfig(8);
  cfg.num_members = 3;
  cfg.group.enable_membership = true;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(120);
  // Long timer so the partial batch is still pending when the flush starts.
  cfg.group.batch_flush_delay = sim::Duration::Millis(500);
  GroupFabric fabric(&s, cfg);
  net::Transport joiner_transport(&s, &fabric.network(), 9);
  GroupMember joiner(&s, &joiner_transport, cfg.group, 9, {9});
  fabric.RecordDeliveries();
  fabric.StartAll();
  joiner.Start();

  s.ScheduleAfter(sim::Duration::Millis(100), [&fabric] {
    for (int k = 0; k < 3; ++k) {
      fabric.member(0).CausalSend(Blob());
    }
  });
  s.ScheduleAfter(sim::Duration::Millis(102), [&joiner] { joiner.JoinGroup(2); });
  s.RunFor(sim::Duration::Seconds(3));

  EXPECT_EQ(joiner.view().members, (std::vector<MemberId>{1, 2, 3, 9}));
  const auto& stats = fabric.member(0).stats();
  EXPECT_EQ(stats.batches_sent, 1u) << "the flush broadcast the pending batch, whole";
  EXPECT_EQ(stats.batched_data_msgs, 3u);
  for (size_t i = 0; i < 3; ++i) {
    const auto order = fabric.DeliveryOrderAt(i);
    ASSERT_EQ(order.size(), 3u) << "member " << i << ": every constituent survives the flush";
    for (size_t k = 0; k < order.size(); ++k) {
      EXPECT_EQ(order[k], (MessageId{1, k + 1}));
    }
  }
}

TEST(BatchingTest, DeltaTimestampsReconstructExactly) {
  sim::Simulator s(45);
  FabricConfig cfg = BatchedConfig(1, /*delta=*/true);
  GroupFabric fabric(&s, cfg);
  fabric.StartAll();
  // Interleaved senders so clocks pick up entries from everyone; each turn
  // sends a back-to-back pair, whose second frame deltas only the sender's
  // own entry — the case the encoding exists for.
  for (int k = 0; k < 12; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(10 + 10 * k), [&fabric, k] {
      fabric.member(k % 4).CausalSend(Blob());
      fabric.member(k % 4).CausalSend(Blob());
    });
  }
  s.RunFor(sim::Duration::Seconds(2));

  for (size_t i = 0; i < fabric.size(); ++i) {
    const auto& stats = fabric.member(i).stats();
    EXPECT_EQ(stats.delta_decode_mismatches, 0u) << "member " << i;
    EXPECT_EQ(stats.app_delivered, 24u) << "member " << i;
    EXPECT_EQ(stats.delta_keyframes_sent, 1u) << "member " << i << ": stream-start keyframe only";
    EXPECT_GT(stats.delta_frames_sent, 0u) << "member " << i;
    EXPECT_GT(stats.delta_header_bytes_saved, 0u) << "member " << i;
  }
  // The fast path answered deliverability checks somewhere in the run.
  uint64_t fast_hits = 0;
  for (size_t i = 0; i < fabric.size(); ++i) {
    fast_hits += fabric.member(i).stats().delta_fast_path_hits;
  }
  EXPECT_GT(fast_hits, 0u);
}

// A crashed member rejoins under a fresh id; its first frame is naturally a
// keyframe (no prior stream), and survivors' references for the dead id are
// dropped at the view change — reconstruction must stay exact throughout.
TEST(BatchingTest, DeltaReconstructionSurvivesFreshIdRejoin) {
  sim::Simulator s(46);
  FabricConfig cfg = BatchedConfig(2, /*delta=*/true);
  cfg.num_members = 3;
  cfg.group.enable_membership = true;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(120);
  GroupFabric fabric(&s, cfg);
  net::Transport joiner_transport(&s, &fabric.network(), 9);
  GroupMember joiner(&s, &joiner_transport, cfg.group, 9, {9});
  std::map<MemberId, uint64_t> delivered_from_9;
  for (size_t i = 0; i < 3; ++i) {
    const MemberId at = fabric.member(i).self();
    fabric.member(i).SetDeliveryHandler([&delivered_from_9, at](const Delivery& d) {
      if (d.id().sender == 9) {
        ++delivered_from_9[at];
      }
    });
  }
  fabric.StartAll();

  for (int k = 0; k < 6; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(20 + 10 * k),
                    [&fabric, k] { fabric.member(k % 3).CausalSend(Blob()); });
  }
  s.ScheduleAfter(sim::Duration::Millis(200), [&fabric] { fabric.CrashMember(2); });
  for (int k = 0; k < 6; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(600 + 10 * k),
                    [&fabric, k] { fabric.member(k % 2).CausalSend(Blob()); });
  }
  s.ScheduleAfter(sim::Duration::Millis(900), [&joiner] {
    joiner.Start();
    joiner.JoinGroup(1);
  });
  s.ScheduleAfter(sim::Duration::Millis(2000), [&joiner] {
    for (int k = 0; k < 4; ++k) {
      joiner.CausalSend(Blob());
    }
  });
  s.RunFor(sim::Duration::Seconds(4));

  EXPECT_EQ(joiner.view().members, (std::vector<MemberId>{1, 2, 9}));
  EXPECT_EQ(joiner.stats().delta_decode_mismatches, 0u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(fabric.member(i).stats().delta_decode_mismatches, 0u) << "member " << i;
    EXPECT_EQ(delivered_from_9[fabric.member(i).self()], 4u) << "member " << i;
  }
}

// Footnote-4 piggybacking under batching: constituents carry predecessor
// copies, receivers ingest them first, and buffered/retransmitted copies are
// stripped — the combination must deliver exactly the sent traffic.
TEST(BatchingTest, PiggybackVariantComposesWithBatching) {
  sim::Simulator s(47);
  FabricConfig cfg = BatchedConfig(4);
  cfg.group.piggyback_causal = true;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (int k = 0; k < 12; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(10 + 5 * k),
                    [&fabric, k] { fabric.member(k % 2).CausalSend(Blob()); });
  }
  s.RunFor(sim::Duration::Seconds(2));
  for (size_t i = 0; i < fabric.size(); ++i) {
    EXPECT_EQ(fabric.member(i).stats().app_delivered, 12u) << "member " << i;
  }
}

// Every batched constituent carries its own full lifecycle span — send,
// batch hold (enter -> deliver with the flush size), causal delivery — not
// just the frame's first message. Delta timestamps ride along to cover the
// full raw-speed wire path.
TEST(BatchingTest, BatchedConstituentsEachCarryFullLifecycleSpans) {
  sim::Simulator s(49);
  FabricConfig cfg = BatchedConfig(4, /*delta=*/true);
  cfg.group.observability = true;
  s.spans().set_enabled(true);
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(10), [&fabric] {
    for (int k = 0; k < 8; ++k) {
      fabric.member(0).CausalSend(Blob());
    }
  });
  s.RunFor(sim::Duration::Seconds(1));
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    const uint64_t key = SpanKey(MessageId{1, seq});
    const auto timeline = s.spans().ForKey(key);
    ASSERT_FALSE(timeline.empty()) << "constituent seq " << seq << " left no spans";
    bool batch_entered = false;
    bool batch_flushed = false;
    size_t causal_delivers = 0;
    for (const auto& record : timeline) {
      if (std::string(record.layer) == "batch") {
        if (record.event == sim::SpanEvent::kEnter) {
          batch_entered = true;
        }
        if (record.event == sim::SpanEvent::kDeliver) {
          batch_flushed = true;
          EXPECT_EQ(record.note, "flush n=4") << "seq " << seq;
        }
      }
      if (std::string(record.layer) == "causal" && record.event == sim::SpanEvent::kDeliver) {
        ++causal_delivers;
      }
    }
    EXPECT_TRUE(batch_entered) << "seq " << seq << " has no batch-hold entry";
    EXPECT_TRUE(batch_flushed) << "seq " << seq << " has no batch flush";
    EXPECT_EQ(causal_delivers, fabric.size()) << "seq " << seq;
  }
}

// A partial batch flushed by the timer closes each parked constituent's
// batch-hold span with the actual (smaller) flush size.
TEST(BatchingTest, PartialBatchFlushSpansRecordActualSize) {
  sim::Simulator s(50);
  FabricConfig cfg = BatchedConfig(4, /*delta=*/true);
  cfg.group.observability = true;
  s.spans().set_enabled(true);
  GroupFabric fabric(&s, cfg);
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(10), [&fabric] {
    for (int k = 0; k < 3; ++k) {
      fabric.member(0).CausalSend(Blob());
    }
  });
  s.RunFor(sim::Duration::Seconds(1));
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    const uint64_t key = SpanKey(MessageId{1, seq});
    bool batch_flushed = false;
    for (const auto& record : s.spans().ForKey(key)) {
      if (std::string(record.layer) == "batch" && record.event == sim::SpanEvent::kDeliver) {
        batch_flushed = true;
        EXPECT_EQ(record.note, "flush n=3") << "seq " << seq;
      }
    }
    EXPECT_TRUE(batch_flushed) << "seq " << seq;
  }
}

// The sanity anchor for byte-identity: batching=1 with delta off IS the
// pre-raw-speed stack — same stats, same deliveries, same header accounting
// as a default-constructed config (this is also enforced end-to-end by
// diffing the bench outputs).
TEST(BatchingTest, DefaultConfigBypassesBatcherEntirely) {
  sim::Simulator s(48);
  GroupFabric fabric(&s, BatchedConfig(1));
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(10), [&fabric] {
    for (int k = 0; k < 4; ++k) {
      fabric.member(0).CausalSend(Blob());
    }
  });
  s.RunFor(sim::Duration::Seconds(1));
  const auto& stats = fabric.member(0).stats();
  EXPECT_EQ(stats.batches_sent, 0u);
  EXPECT_EQ(stats.batched_data_msgs, 0u);
  EXPECT_EQ(stats.delta_frames_sent, 0u);
  EXPECT_EQ(stats.delta_keyframes_sent, 0u);
  EXPECT_EQ(fabric.member(2).stats().app_delivered, 4u);
}

}  // namespace
}  // namespace catocs
