// Raw-speed allocation primitives: the size-class pool, the bump arena, and
// the inline event closure. The pool is process-global, so every stats
// assertion works in deltas; pooled behaviour is skipped in passthrough mode
// (ASan or REPRO_MEM_PASSTHROUGH=1) where every call is operator new.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/mem/arena.h"
#include "src/mem/pool.h"
#include "src/sim/inline_fn.h"

namespace mem {
namespace {

TEST(PoolTest, RecyclesBlocksThroughFreeLists) {
  if (SizeClassPool::passthrough()) {
    GTEST_SKIP() << "pool disabled (ASan / REPRO_MEM_PASSTHROUGH)";
  }
  SizeClassPool& pool = SizeClassPool::Instance();
  const PoolStats before = pool.stats();

  void* a = pool.Allocate(100);  // 128-byte class
  pool.Deallocate(a, 100);
  void* b = pool.Allocate(90);  // same class: must pop the parked block
  EXPECT_EQ(b, a) << "LIFO reuse of the freshly freed block";
  pool.Deallocate(b, 90);

  const PoolStats after = pool.stats();
  EXPECT_EQ(after.allocations - before.allocations, 2u);
  EXPECT_GE(after.pool_hits - before.pool_hits, 1u);
  EXPECT_EQ(after.frees - before.frees, 2u);
  EXPECT_EQ(after.live_blocks, before.live_blocks);
}

TEST(PoolTest, OversizedBlocksBypassTheFreeLists) {
  SizeClassPool& pool = SizeClassPool::Instance();
  const PoolStats before = pool.stats();
  const size_t big = SizeClassPool::kMaxPooledBytes + 1;

  void* p = pool.Allocate(big);
  ASSERT_NE(p, nullptr);
  pool.Deallocate(p, big);

  if (!SizeClassPool::passthrough()) {
    const PoolStats after = pool.stats();
    EXPECT_EQ(after.fresh_blocks - before.fresh_blocks, 1u)
        << "above kMaxPooledBytes every allocation is fresh";
    EXPECT_EQ(after.free_bytes, before.free_bytes) << "oversized frees are not parked";
  }
}

TEST(PoolTest, TrimFreeListsReleasesParkedBytes) {
  if (SizeClassPool::passthrough()) {
    GTEST_SKIP() << "pool disabled (ASan / REPRO_MEM_PASSTHROUGH)";
  }
  SizeClassPool& pool = SizeClassPool::Instance();
  void* p = pool.Allocate(64);
  pool.Deallocate(p, 64);
  EXPECT_GT(pool.stats().free_bytes, 0u);
  pool.TrimFreeLists();
  EXPECT_EQ(pool.stats().free_bytes, 0u);
}

TEST(PoolTest, MakePooledBehavesLikeMakeShared) {
  struct Payload {
    uint64_t a;
    uint64_t b;
  };
  std::shared_ptr<Payload> p = MakePooled<Payload>(Payload{7, 9});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->a, 7u);
  EXPECT_EQ(p->b, 9u);
  std::weak_ptr<Payload> w = p;
  p.reset();
  EXPECT_TRUE(w.expired());
}

TEST(ArenaTest, BumpAllocatesAndResetsWithoutReleasingChunks) {
  Arena arena(256);
  uint64_t* a = arena.New<uint64_t>(11);
  uint64_t* b = arena.New<uint64_t>(22);
  EXPECT_EQ(*a, 11u);
  EXPECT_EQ(*b, 22u);
  EXPECT_EQ(reinterpret_cast<char*>(b) - reinterpret_cast<char*>(a),
            static_cast<ptrdiff_t>(sizeof(uint64_t)))
      << "consecutive same-type allocations are a pure bump";
  EXPECT_EQ(arena.chunk_count(), 1u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  uint64_t* c = arena.New<uint64_t>(33);
  EXPECT_EQ(c, a) << "Reset rewinds to the first chunk; no new system allocation";
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(ArenaTest, GrowsByChunksAndReachesSteadyState) {
  Arena arena(128);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 64; ++i) {
      arena.New<uint64_t>(static_cast<uint64_t>(i));
    }
    arena.Reset();
  }
  const size_t high_water = arena.chunk_count();
  EXPECT_GE(high_water, 4u) << "64 x 8 bytes cannot fit one 128-byte chunk";
  for (int i = 0; i < 64; ++i) {
    arena.New<uint64_t>(static_cast<uint64_t>(i));
  }
  EXPECT_EQ(arena.chunk_count(), high_water) << "steady state: chunks are reused, not grown";
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  void* p = arena.Allocate(1000);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 1000u);
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  arena.Allocate(1, 1);
  void* p = arena.Allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
}

TEST(InlineFnTest, SmallClosureStaysInline) {
  int hits = 0;
  sim::InlineFn fn([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFnTest, MovePreservesTheClosure) {
  int hits = 0;
  sim::InlineFn a([&hits] { ++hits; });
  sim::InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): moved-from is empty
  b();
  sim::InlineFn c;
  EXPECT_FALSE(static_cast<bool>(c));
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFnTest, OutsizedCaptureFallsBackToHeap) {
  // > kInlineBytes of capture: four shared_ptrs plus an array.
  auto big = std::make_shared<std::vector<int>>(32, 5);
  uint64_t pad[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint64_t sum = 0;
  sim::InlineFn fn([big, pad, &sum] {
    for (uint64_t v : pad) {
      sum += v;
    }
    sum += static_cast<uint64_t>(big->at(0));
  });
  static_assert(sizeof(pad) + sizeof(big) + sizeof(&sum) > 64, "capture must exceed inline storage");
  sim::InlineFn moved(std::move(fn));
  moved();
  EXPECT_EQ(sum, 36u + 5u);
  EXPECT_EQ(big.use_count(), 2) << "heap closure owns one reference until destroyed";
  moved = sim::InlineFn{};
  EXPECT_EQ(big.use_count(), 1) << "destroying the closure releases the capture";
}

TEST(InlineFnTest, DestructionRunsCaptureDestructors) {
  auto token = std::make_shared<int>(1);
  {
    sim::InlineFn fn([token] { (void)token; });
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace mem
