// Unit tests for the network model, reliable transport, and clock sync.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/clock.h"
#include "src/net/network.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace net {
namespace {

constexpr uint32_t kPort = 7;

std::unique_ptr<Network> MakeNetwork(sim::Simulator* s, NetworkConfig cfg = {}) {
  return std::make_unique<Network>(
      s, std::make_unique<UniformLatency>(sim::Duration::Millis(1), sim::Duration::Millis(5)),
      cfg);
}

PayloadPtr Blob(const std::string& tag, size_t size = 100) {
  return std::make_shared<BlobPayload>(tag, size);
}

TEST(NetworkTest, DeliversToRegisteredHandler) {
  sim::Simulator s(1);
  auto network = MakeNetwork(&s);
  std::vector<std::string> got;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet& p) { got.push_back(p.payload->Describe()); });
  network->Send(1, 2, kPort, Blob("hello"));
  s.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hello");
}

TEST(NetworkTest, DelayWithinModelBounds) {
  sim::Simulator s(2);
  auto network = MakeNetwork(&s);
  sim::TimePoint delivered_at;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { delivered_at = s.now(); });
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  EXPECT_GE(delivered_at, sim::TimePoint::Zero() + sim::Duration::Millis(1));
  EXPECT_LE(delivered_at, sim::TimePoint::Zero() + sim::Duration::Millis(5));
}

TEST(NetworkTest, DropsWithProbabilityOne) {
  sim::Simulator s(3);
  NetworkConfig cfg;
  cfg.drop_probability = 1.0;
  auto network = MakeNetwork(&s, cfg);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    network->Send(1, 2, kPort, Blob("x"));
  }
  s.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(network->packets_dropped(), 10u);
}

TEST(NetworkTest, DuplicationDeliversTwice) {
  sim::Simulator s(4);
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  auto network = MakeNetwork(&s, cfg);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got, 2);
}

TEST(NetworkTest, DownNodeCannotSendOrReceive) {
  sim::Simulator s(5);
  auto network = MakeNetwork(&s);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  network->SetNodeUp(2, false);
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got, 0);
  network->SetNodeUp(1, false);
  EXPECT_FALSE(network->Send(1, 2, kPort, Blob("x")));
}

TEST(NetworkTest, PartitionBlocksAcrossComponents) {
  sim::Simulator s(6);
  auto network = MakeNetwork(&s);
  int got12 = 0;
  int got13 = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got12; });
  network->RegisterHandler(3, kPort, [&](const Packet&) { ++got13; });
  network->Partition({{1, 2}, {3}});
  network->Send(1, 2, kPort, Blob("x"));
  network->Send(1, 3, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got12, 1);
  EXPECT_EQ(got13, 0);
  network->HealPartition();
  network->Send(1, 3, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got13, 1);
}

TEST(NetworkTest, PartitionDropsPacketsAlreadyInFlight) {
  sim::Simulator s(30);
  auto network = MakeNetwork(&s);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  EXPECT_TRUE(network->Send(1, 2, kPort, Blob("x")));
  // The partition forms while the packet is still in flight (earliest
  // delivery is 1ms away): the cable is cut under it.
  network->Partition({{1}, {2}});
  s.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(network->packets_dropped(), 1u);
  EXPECT_EQ(network->packets_delivered(), 0u);
}

TEST(NetworkTest, HealBeforeDeliveryLetsInFlightPacketThrough) {
  sim::Simulator s(31);
  auto network = MakeNetwork(&s);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  network->Send(1, 2, kPort, Blob("x"));
  network->Partition({{1}, {2}});
  // Healed before the earliest possible delivery instant: the transient
  // partition is invisible to the in-flight packet.
  s.ScheduleAfter(sim::Duration::Micros(500), [&] { network->HealPartition(); });
  s.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(network->packets_dropped(), 0u);
}

TEST(NetworkTest, HealDoesNotResurrectPacketSentWhilePartitioned) {
  sim::Simulator s(32);
  auto network = MakeNetwork(&s);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  network->Partition({{1}, {2}});
  // Dropped at send time (the sender can't tell: Send still returns true)...
  EXPECT_TRUE(network->Send(1, 2, kPort, Blob("x")));
  EXPECT_EQ(network->packets_dropped(), 1u);
  // ...so healing before the would-have-been delivery resurrects nothing.
  s.ScheduleAfter(sim::Duration::Micros(100), [&] { network->HealPartition(); });
  s.Run();
  EXPECT_EQ(got, 0);
}

TEST(NetworkTest, DuplicateAccountingCountsOneSendTwoDeliveries) {
  sim::Simulator s(33);
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  auto network = MakeNetwork(&s, cfg);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    network->Send(1, 2, kPort, Blob("x"));
  }
  s.Run();
  EXPECT_EQ(got, 20);
  EXPECT_EQ(network->packets_sent(), 10u);
  EXPECT_EQ(network->packets_delivered(), 20u);
  EXPECT_EQ(network->packets_dropped(), 0u);
}

TEST(NetworkTest, DuplicatesSharePacketIdAndSetterTakesEffectMidRun) {
  sim::Simulator s(34);
  auto network = MakeNetwork(&s);
  std::vector<uint64_t> ids;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet& p) { ids.push_back(p.packet_id); });
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  ASSERT_EQ(ids.size(), 1u);
  network->set_duplicate_probability(1.0);
  network->Send(1, 2, kPort, Blob("y"));
  s.Run();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[1], ids[2]) << "duplicate copies share one transmission id";
  EXPECT_NE(ids[0], ids[1]);
}

TEST(NetworkTest, DropAccountingTracksEverySend) {
  sim::Simulator s(35);
  auto network = MakeNetwork(&s);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  network->set_drop_probability(1.0);
  for (int i = 0; i < 7; ++i) {
    network->Send(1, 2, kPort, Blob("x"));
  }
  EXPECT_EQ(network->packets_sent(), 7u);
  EXPECT_EQ(network->packets_dropped(), 7u) << "p=1 drops are counted at send time";
  network->set_drop_probability(0.0);
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(network->packets_dropped(), 7u);
  EXPECT_EQ(network->packets_delivered(), 1u);
}

TEST(NetworkTest, LatencySpikeScalesSampledDelays) {
  sim::Simulator s(36);
  auto network = MakeNetwork(&s);  // base delay uniform in [1ms, 5ms]
  sim::TimePoint delivered_at;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { delivered_at = s.now(); });
  network->set_latency_scale(10.0);
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  EXPECT_GE(delivered_at - sim::TimePoint::Zero(), sim::Duration::Millis(10));
  EXPECT_LE(delivered_at - sim::TimePoint::Zero(), sim::Duration::Millis(50));
}

TEST(NetworkTest, ByteAccounting) {
  sim::Simulator s(7);
  auto network = MakeNetwork(&s);
  network->Attach(1);
  network->Attach(2);
  network->Send(1, 2, kPort, Blob("x", 100), /*header_bytes=*/10);
  EXPECT_EQ(network->payload_bytes_sent(), 100u);
  EXPECT_EQ(network->header_bytes_sent(), 10u + 28u);  // +base header
  EXPECT_EQ(network->bytes_sent(), 138u);
}

TEST(NetworkTest, MulticastSkipsSelf) {
  sim::Simulator s(8);
  auto network = MakeNetwork(&s);
  int got = 0;
  for (NodeId n = 1; n <= 4; ++n) {
    network->RegisterHandler(n, kPort, [&](const Packet&) { ++got; });
  }
  network->Multicast(1, {1, 2, 3, 4}, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got, 3);
}

// --- transport -------------------------------------------------------------

struct TransportPair {
  std::unique_ptr<Network> network;
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;
};

TransportPair MakePair(sim::Simulator* s, NetworkConfig cfg = {}, TransportConfig tcfg = {}) {
  TransportPair pair;
  pair.network = MakeNetwork(s, cfg);
  pair.a = std::make_unique<Transport>(s, pair.network.get(), 1, tcfg);
  pair.b = std::make_unique<Transport>(s, pair.network.get(), 2, tcfg);
  return pair;
}

TEST(TransportTest, ReliableDeliversInFifoOrderDespiteReordering) {
  sim::Simulator s(9);
  auto pair = MakePair(&s);
  std::vector<std::string> got;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr& p) {
    got.push_back(p->Describe());
  });
  for (int i = 0; i < 50; ++i) {
    pair.a->SendReliable(2, kPort, Blob("m" + std::to_string(i)));
  }
  s.Run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(got[i], "m" + std::to_string(i));
  }
}

TEST(TransportTest, ReliableSurvivesHeavyLoss) {
  sim::Simulator s(10);
  NetworkConfig cfg;
  cfg.drop_probability = 0.4;
  auto pair = MakePair(&s, cfg);
  std::vector<std::string> got;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr& p) {
    got.push_back(p->Describe());
  });
  for (int i = 0; i < 100; ++i) {
    pair.a->SendReliable(2, kPort, Blob("m" + std::to_string(i)));
  }
  s.RunFor(sim::Duration::Seconds(30));
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(got[i], "m" + std::to_string(i));
  }
  EXPECT_GT(pair.a->retransmissions(), 0u);
}

TEST(TransportTest, ReliableSuppressesDuplicates) {
  sim::Simulator s(11);
  NetworkConfig cfg;
  cfg.duplicate_probability = 0.5;
  auto pair = MakePair(&s, cfg);
  int got = 0;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr&) { ++got; });
  for (int i = 0; i < 50; ++i) {
    pair.a->SendReliable(2, kPort, Blob("x"));
  }
  s.RunFor(sim::Duration::Seconds(10));
  EXPECT_EQ(got, 50);
}

TEST(TransportTest, UnreliableMayReorder) {
  sim::Simulator s(12);
  auto pair = MakePair(&s);
  std::vector<std::string> got;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr& p) {
    got.push_back(p->Describe());
  });
  for (int i = 0; i < 200; ++i) {
    pair.a->SendUnreliable(2, kPort, Blob("m" + std::to_string(i)));
  }
  s.Run();
  ASSERT_EQ(got.size(), 200u);
  bool reordered = false;
  for (size_t i = 1; i < got.size(); ++i) {
    if (got[i] < got[i - 1]) {
      reordered = true;
    }
  }
  EXPECT_TRUE(reordered) << "with 1-5ms jitter, 200 datagrams should reorder";
}

TEST(TransportTest, GivesUpAfterMaxRetries) {
  sim::Simulator s(13);
  TransportConfig tcfg;
  tcfg.max_retries = 3;
  auto pair = MakePair(&s, {}, tcfg);
  pair.network->SetNodeUp(2, false);
  pair.a->SendReliable(2, kPort, Blob("x"));
  s.RunFor(sim::Duration::Seconds(5));
  // All events quiesce: the retransmit timer must have given up.
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_LE(pair.a->retransmissions(), 3u);
}

TEST(TransportTest, GiveUpNotifiesHandlerAndDropsWholeQueue) {
  sim::Simulator s(17);
  TransportConfig tcfg;
  tcfg.max_retries = 3;
  auto pair = MakePair(&s, {}, tcfg);
  std::vector<NodeId> failed;
  pair.a->SetFailureHandler([&](NodeId peer) { failed.push_back(peer); });
  int got = 0;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr&) { ++got; });
  pair.network->SetNodeUp(2, false);
  for (int i = 0; i < 5; ++i) {
    pair.a->SendReliable(2, kPort, Blob("m" + std::to_string(i)));
  }
  s.RunFor(sim::Duration::Seconds(5));
  // One ordered failure for the peer, not one per queued segment.
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], NodeId{2});
  EXPECT_EQ(pair.a->peer_failures(), 1u);
  EXPECT_EQ(s.pending_events(), 0u) << "retransmit timer must quiesce after give-up";

  // The old stream is dead: a post-failure send must never let the receiver
  // observe data past the gap the dropped queue left.
  pair.network->SetNodeUp(2, true);
  pair.a->SendReliable(2, kPort, Blob("after-gap"));
  s.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(got, 0);
  // An explicit reset (what crash handling does) starts a clean stream.
  pair.a->ResetPeerState();
  pair.b->ResetPeerState();
  pair.a->SendReliable(2, kPort, Blob("fresh"));
  s.RunFor(sim::Duration::Seconds(1));
  EXPECT_EQ(got, 1);
}

TEST(TransportTest, ExponentialBackoffSpacesRetransmits) {
  sim::Simulator s(18);
  TransportConfig tcfg;
  tcfg.backoff_factor = 2.0;
  tcfg.max_retries = 20;
  auto pair = MakePair(&s, {}, tcfg);
  pair.network->SetNodeUp(2, false);
  pair.a->SendReliable(2, kPort, Blob("x"));
  s.RunFor(sim::Duration::Millis(300));
  // Doubling waits (20, 40, 80, 160ms...) allow only ~4 attempts by 300ms
  // where the fixed 20ms schedule would have made ~14.
  const uint64_t early = pair.a->retransmissions();
  EXPECT_GE(early, 3u);
  EXPECT_LE(early, 5u);
  // The 500ms cap keeps the schedule finite: all retries are eventually spent.
  s.RunFor(sim::Duration::Seconds(20));
  EXPECT_EQ(pair.a->retransmissions(), 20u);
}

TEST(TransportTest, AckProgressRestartsBackoffForQueuedSegments) {
  sim::Simulator s(21);
  TransportConfig tcfg;
  tcfg.backoff_factor = 2.0;
  tcfg.max_retransmit_timeout = sim::Duration::Seconds(10);
  auto pair = MakePair(&s, {}, tcfg);
  int got = 0;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr&) { ++got; });

  // Two segments queued during one long outage, 2.5s apart, so their doubled
  // schedules drift out of phase: by 8s "one" is next due near 10.2s while
  // "two" has just missed at ~7.6s and would not try again until ~12.7s.
  pair.network->SetNodeUp(2, false);
  pair.a->SendReliable(2, kPort, Blob("one"));
  s.RunFor(sim::Duration::Millis(2500));
  pair.a->SendReliable(2, kPort, Blob("two"));
  s.RunFor(sim::Duration::Millis(5500));

  // The link heals, but neither stale schedule has an attempt due before
  // ~10.2s — nothing is delivered for the next two seconds.
  pair.network->SetNodeUp(2, true);
  s.RunFor(sim::Duration::Seconds(2));
  EXPECT_EQ(got, 0);

  // "one"'s ~10.2s attempt lands and its ack proves the peer is draining
  // again. That progress must restart "two" on the 20ms base schedule so it
  // delivers within milliseconds — not sleep out the rest of its stale ~5s
  // doubled wait (which would push delivery past 12.7s).
  s.RunFor(sim::Duration::Seconds(1));
  EXPECT_EQ(got, 2);
  s.Run();
  EXPECT_EQ(s.pending_events(), 0u) << "queue drained and timer quiesced";
}

TEST(TransportTest, JitterIsDeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    sim::Simulator s(seed);
    TransportConfig tcfg;
    tcfg.jitter = 0.5;
    tcfg.max_retries = 10;
    auto pair = MakePair(&s, {}, tcfg);
    pair.network->SetNodeUp(2, false);
    pair.a->SendReliable(2, kPort, Blob("x"));
    s.RunFor(sim::Duration::Millis(200));
    return pair.a->retransmissions();
  };
  // Identical seeds give identical jittered schedules.
  EXPECT_EQ(run(21), run(21));
  // Jitter only ever stretches the wait, so it can't beat the base schedule
  // (which fits at most ~9 attempts into 200ms).
  EXPECT_LE(run(21), 9u);
  EXPECT_GE(run(21), 5u);
}

TEST(TransportTest, SeparatePortsDemultiplex) {
  sim::Simulator s(14);
  auto pair = MakePair(&s);
  int on7 = 0;
  int on8 = 0;
  pair.b->RegisterReceiver(7, [&](NodeId, uint32_t, const PayloadPtr&) { ++on7; });
  pair.b->RegisterReceiver(8, [&](NodeId, uint32_t, const PayloadPtr&) { ++on8; });
  pair.a->SendReliable(2, 7, Blob("x"));
  pair.a->SendReliable(2, 8, Blob("x"));
  pair.a->SendReliable(2, 8, Blob("x"));
  s.Run();
  EXPECT_EQ(on7, 1);
  EXPECT_EQ(on8, 2);
}

// --- clocks ------------------------------------------------------------------

TEST(ClockTest, HardwareClockOffsetAndDrift) {
  sim::Simulator s(15);
  HardwareClock clock(&s, sim::Duration::Millis(10), /*drift_ppm=*/100.0);
  s.RunFor(sim::Duration::Seconds(10));
  // offset 10ms + drift 100ppm * 10s = 1ms.
  const sim::Duration error = clock.Now() - s.now();
  EXPECT_EQ(error, sim::Duration::Millis(11));
}

TEST(ClockTest, CristianSyncBoundsError) {
  sim::Simulator s(16);
  auto network = MakeNetwork(&s);
  Transport server_t(&s, network.get(), 1);
  Transport client_t(&s, network.get(), 2);
  ClockSyncServer server(&s, &server_t);
  HardwareClock hw(&s, sim::Duration::Millis(500), /*drift_ppm=*/200.0);
  SyncedClock synced(&hw);
  ClockSyncClient client(&s, &client_t, 1, &hw, &synced, sim::Duration::Seconds(1));
  client.Start();
  s.RunUntil(sim::TimePoint::Zero() + sim::Duration::Seconds(10));
  client.Stop();
  s.Run();
  EXPECT_GE(client.rounds_completed(), 9);
  // After sync, the corrected clock is within half-RTT (<= 2.5ms) + drift
  // accumulated over one period of true time.
  const sim::Duration error = synced.Now() - s.now();
  EXPECT_LE(error.nanos() < 0 ? -error.nanos() : error.nanos(),
            sim::Duration::Millis(4).nanos());
}

}  // namespace
}  // namespace net
