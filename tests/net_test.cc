// Unit tests for the network model, reliable transport, and clock sync.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/clock.h"
#include "src/net/network.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace net {
namespace {

constexpr uint32_t kPort = 7;

std::unique_ptr<Network> MakeNetwork(sim::Simulator* s, NetworkConfig cfg = {}) {
  return std::make_unique<Network>(
      s, std::make_unique<UniformLatency>(sim::Duration::Millis(1), sim::Duration::Millis(5)),
      cfg);
}

PayloadPtr Blob(const std::string& tag, size_t size = 100) {
  return std::make_shared<BlobPayload>(tag, size);
}

TEST(NetworkTest, DeliversToRegisteredHandler) {
  sim::Simulator s(1);
  auto network = MakeNetwork(&s);
  std::vector<std::string> got;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet& p) { got.push_back(p.payload->Describe()); });
  network->Send(1, 2, kPort, Blob("hello"));
  s.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hello");
}

TEST(NetworkTest, DelayWithinModelBounds) {
  sim::Simulator s(2);
  auto network = MakeNetwork(&s);
  sim::TimePoint delivered_at;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { delivered_at = s.now(); });
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  EXPECT_GE(delivered_at, sim::TimePoint::Zero() + sim::Duration::Millis(1));
  EXPECT_LE(delivered_at, sim::TimePoint::Zero() + sim::Duration::Millis(5));
}

TEST(NetworkTest, DropsWithProbabilityOne) {
  sim::Simulator s(3);
  NetworkConfig cfg;
  cfg.drop_probability = 1.0;
  auto network = MakeNetwork(&s, cfg);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    network->Send(1, 2, kPort, Blob("x"));
  }
  s.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(network->packets_dropped(), 10u);
}

TEST(NetworkTest, DuplicationDeliversTwice) {
  sim::Simulator s(4);
  NetworkConfig cfg;
  cfg.duplicate_probability = 1.0;
  auto network = MakeNetwork(&s, cfg);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got, 2);
}

TEST(NetworkTest, DownNodeCannotSendOrReceive) {
  sim::Simulator s(5);
  auto network = MakeNetwork(&s);
  int got = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got; });
  network->SetNodeUp(2, false);
  network->Send(1, 2, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got, 0);
  network->SetNodeUp(1, false);
  EXPECT_FALSE(network->Send(1, 2, kPort, Blob("x")));
}

TEST(NetworkTest, PartitionBlocksAcrossComponents) {
  sim::Simulator s(6);
  auto network = MakeNetwork(&s);
  int got12 = 0;
  int got13 = 0;
  network->Attach(1);
  network->RegisterHandler(2, kPort, [&](const Packet&) { ++got12; });
  network->RegisterHandler(3, kPort, [&](const Packet&) { ++got13; });
  network->Partition({{1, 2}, {3}});
  network->Send(1, 2, kPort, Blob("x"));
  network->Send(1, 3, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got12, 1);
  EXPECT_EQ(got13, 0);
  network->HealPartition();
  network->Send(1, 3, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got13, 1);
}

TEST(NetworkTest, ByteAccounting) {
  sim::Simulator s(7);
  auto network = MakeNetwork(&s);
  network->Attach(1);
  network->Attach(2);
  network->Send(1, 2, kPort, Blob("x", 100), /*header_bytes=*/10);
  EXPECT_EQ(network->payload_bytes_sent(), 100u);
  EXPECT_EQ(network->header_bytes_sent(), 10u + 28u);  // +base header
  EXPECT_EQ(network->bytes_sent(), 138u);
}

TEST(NetworkTest, MulticastSkipsSelf) {
  sim::Simulator s(8);
  auto network = MakeNetwork(&s);
  int got = 0;
  for (NodeId n = 1; n <= 4; ++n) {
    network->RegisterHandler(n, kPort, [&](const Packet&) { ++got; });
  }
  network->Multicast(1, {1, 2, 3, 4}, kPort, Blob("x"));
  s.Run();
  EXPECT_EQ(got, 3);
}

// --- transport -------------------------------------------------------------

struct TransportPair {
  std::unique_ptr<Network> network;
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;
};

TransportPair MakePair(sim::Simulator* s, NetworkConfig cfg = {}, TransportConfig tcfg = {}) {
  TransportPair pair;
  pair.network = MakeNetwork(s, cfg);
  pair.a = std::make_unique<Transport>(s, pair.network.get(), 1, tcfg);
  pair.b = std::make_unique<Transport>(s, pair.network.get(), 2, tcfg);
  return pair;
}

TEST(TransportTest, ReliableDeliversInFifoOrderDespiteReordering) {
  sim::Simulator s(9);
  auto pair = MakePair(&s);
  std::vector<std::string> got;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr& p) {
    got.push_back(p->Describe());
  });
  for (int i = 0; i < 50; ++i) {
    pair.a->SendReliable(2, kPort, Blob("m" + std::to_string(i)));
  }
  s.Run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(got[i], "m" + std::to_string(i));
  }
}

TEST(TransportTest, ReliableSurvivesHeavyLoss) {
  sim::Simulator s(10);
  NetworkConfig cfg;
  cfg.drop_probability = 0.4;
  auto pair = MakePair(&s, cfg);
  std::vector<std::string> got;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr& p) {
    got.push_back(p->Describe());
  });
  for (int i = 0; i < 100; ++i) {
    pair.a->SendReliable(2, kPort, Blob("m" + std::to_string(i)));
  }
  s.RunFor(sim::Duration::Seconds(30));
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(got[i], "m" + std::to_string(i));
  }
  EXPECT_GT(pair.a->retransmissions(), 0u);
}

TEST(TransportTest, ReliableSuppressesDuplicates) {
  sim::Simulator s(11);
  NetworkConfig cfg;
  cfg.duplicate_probability = 0.5;
  auto pair = MakePair(&s, cfg);
  int got = 0;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr&) { ++got; });
  for (int i = 0; i < 50; ++i) {
    pair.a->SendReliable(2, kPort, Blob("x"));
  }
  s.RunFor(sim::Duration::Seconds(10));
  EXPECT_EQ(got, 50);
}

TEST(TransportTest, UnreliableMayReorder) {
  sim::Simulator s(12);
  auto pair = MakePair(&s);
  std::vector<std::string> got;
  pair.b->RegisterReceiver(kPort, [&](NodeId, uint32_t, const PayloadPtr& p) {
    got.push_back(p->Describe());
  });
  for (int i = 0; i < 200; ++i) {
    pair.a->SendUnreliable(2, kPort, Blob("m" + std::to_string(i)));
  }
  s.Run();
  ASSERT_EQ(got.size(), 200u);
  bool reordered = false;
  for (size_t i = 1; i < got.size(); ++i) {
    if (got[i] < got[i - 1]) {
      reordered = true;
    }
  }
  EXPECT_TRUE(reordered) << "with 1-5ms jitter, 200 datagrams should reorder";
}

TEST(TransportTest, GivesUpAfterMaxRetries) {
  sim::Simulator s(13);
  TransportConfig tcfg;
  tcfg.max_retries = 3;
  auto pair = MakePair(&s, {}, tcfg);
  pair.network->SetNodeUp(2, false);
  pair.a->SendReliable(2, kPort, Blob("x"));
  s.RunFor(sim::Duration::Seconds(5));
  // All events quiesce: the retransmit timer must have given up.
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_LE(pair.a->retransmissions(), 3u);
}

TEST(TransportTest, SeparatePortsDemultiplex) {
  sim::Simulator s(14);
  auto pair = MakePair(&s);
  int on7 = 0;
  int on8 = 0;
  pair.b->RegisterReceiver(7, [&](NodeId, uint32_t, const PayloadPtr&) { ++on7; });
  pair.b->RegisterReceiver(8, [&](NodeId, uint32_t, const PayloadPtr&) { ++on8; });
  pair.a->SendReliable(2, 7, Blob("x"));
  pair.a->SendReliable(2, 8, Blob("x"));
  pair.a->SendReliable(2, 8, Blob("x"));
  s.Run();
  EXPECT_EQ(on7, 1);
  EXPECT_EQ(on8, 2);
}

// --- clocks ------------------------------------------------------------------

TEST(ClockTest, HardwareClockOffsetAndDrift) {
  sim::Simulator s(15);
  HardwareClock clock(&s, sim::Duration::Millis(10), /*drift_ppm=*/100.0);
  s.RunFor(sim::Duration::Seconds(10));
  // offset 10ms + drift 100ppm * 10s = 1ms.
  const sim::Duration error = clock.Now() - s.now();
  EXPECT_EQ(error, sim::Duration::Millis(11));
}

TEST(ClockTest, CristianSyncBoundsError) {
  sim::Simulator s(16);
  auto network = MakeNetwork(&s);
  Transport server_t(&s, network.get(), 1);
  Transport client_t(&s, network.get(), 2);
  ClockSyncServer server(&s, &server_t);
  HardwareClock hw(&s, sim::Duration::Millis(500), /*drift_ppm=*/200.0);
  SyncedClock synced(&hw);
  ClockSyncClient client(&s, &client_t, 1, &hw, &synced, sim::Duration::Seconds(1));
  client.Start();
  s.RunUntil(sim::TimePoint::Zero() + sim::Duration::Seconds(10));
  client.Stop();
  s.Run();
  EXPECT_GE(client.rounds_completed(), 9);
  // After sync, the corrected clock is within half-RTT (<= 2.5ms) + drift
  // accumulated over one period of true time.
  const sim::Duration error = synced.Now() - s.now();
  EXPECT_LE(error.nanos() < 0 ? -error.nanos() : error.nanos(),
            sim::Duration::Millis(4).nanos());
}

}  // namespace
}  // namespace net
