// Bounded resources and sender-side flow control (DESIGN.md §10): the
// ResourceBudget's watermark/hysteresis/epoch machinery, the credit-window
// admission path, and the three overload-policy edge cases the design calls
// out — zero credits at a view-change flush boundary, shed-new refusing part
// of a batch, and a laggard eviction racing a partition heal. The end-to-end
// scenarios run twice from the same seed and must produce bit-identical
// observable traces: flow control is part of the deterministic pipeline, not
// a source of nondeterminism.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/catocs/resource_budget.h"
#include "src/net/payload.h"
#include "src/sim/simulator.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(const std::string& tag, size_t size = 64) {
  return std::make_shared<net::BlobPayload>(tag, size);
}

std::string TagOf(const Delivery& d) {
  const auto* blob = net::PayloadCast<net::BlobPayload>(d.payload());
  return blob ? blob->tag() : "?";
}

char StatusChar(SendStatus status) {
  switch (status) {
    case SendStatus::kSent:
      return 'S';
    case SendStatus::kQueuedBehindFlush:
      return 'Q';
    case SendStatus::kBackpressured:
      return 'B';
    case SendStatus::kShed:
      return 'D';
    case SendStatus::kStopped:
      return 'X';
  }
  return '?';
}

// --- ResourceBudget unit tests ---------------------------------------------

TEST(ResourceBudgetTest, UnboundedByDefault) {
  ResourceBudget budget;
  EXPECT_FALSE(budget.bounded());
  EXPECT_EQ(budget.pressure(), MemoryPressure::kNone);
  EXPECT_EQ(budget.utilization(), 0.0);
  EXPECT_FALSE(budget.WouldExceed(1 << 30, 1 << 20));
}

TEST(ResourceBudgetTest, WatermarkEscalationHysteresisAndEpochs) {
  ResourceBudget budget;
  BudgetConfig cfg;
  cfg.max_bytes = 1000;
  budget.Configure(cfg);

  budget.Set(ResourceBudget::kRetention, 600, 3);
  EXPECT_EQ(budget.pressure(), MemoryPressure::kNone);
  budget.Set(ResourceBudget::kRetention, 750, 4);  // >= high (0.70)
  EXPECT_EQ(budget.pressure(), MemoryPressure::kHigh);
  budget.Set(ResourceBudget::kRetention, 950, 5);  // >= critical (0.90)
  EXPECT_EQ(budget.pressure(), MemoryPressure::kCritical);
  const uint64_t epoch = budget.pressure_epoch();

  // Hysteresis: draining below the escalation watermarks but above low keeps
  // both the level and the epoch — the level is monotone within an epoch.
  budget.Set(ResourceBudget::kRetention, 600, 3);
  EXPECT_EQ(budget.pressure(), MemoryPressure::kCritical);
  EXPECT_EQ(budget.pressure_epoch(), epoch);

  // Below low (0.50): pressure clears and a new epoch begins.
  budget.Set(ResourceBudget::kRetention, 400, 2);
  EXPECT_EQ(budget.pressure(), MemoryPressure::kNone);
  EXPECT_EQ(budget.pressure_epoch(), epoch + 1);
  EXPECT_EQ(budget.peak_bytes(), 950u);
  EXPECT_EQ(budget.peak_messages(), 5u);
}

TEST(ResourceBudgetTest, ComponentsReportAbsoluteOccupancy) {
  ResourceBudget budget;
  BudgetConfig cfg;
  cfg.max_bytes = 1000;
  cfg.max_messages = 10;
  budget.Configure(cfg);

  budget.Set(ResourceBudget::kRetention, 100, 1);
  budget.Set(ResourceBudget::kBatcher, 200, 2);
  EXPECT_EQ(budget.used_bytes(), 300u);
  EXPECT_EQ(budget.used_messages(), 3u);

  // Absolute reports, not deltas: re-reporting a component replaces its
  // contribution, so a component can never leak the totals out of sync.
  budget.Set(ResourceBudget::kRetention, 50, 1);
  EXPECT_EQ(budget.used_bytes(), 250u);
  EXPECT_EQ(budget.used_messages(), 3u);
  EXPECT_EQ(budget.component_bytes(ResourceBudget::kRetention), 50u);

  EXPECT_TRUE(budget.WouldExceed(800, 0));  // bytes axis
  EXPECT_TRUE(budget.WouldExceed(0, 8));    // messages axis
  EXPECT_FALSE(budget.WouldExceed(100, 1));
}

// --- GroupMember flow-control defaults -------------------------------------

TEST(FlowControlTest, DefaultConfigHasNoFlowControl) {
  sim::Simulator s(40);
  GroupFabric fabric(&s, {});
  fabric.StartAll();
  s.RunFor(sim::Duration::Millis(100));
  EXPECT_EQ(fabric.member(0).send_credits(), UINT64_MAX);
  EXPECT_FALSE(fabric.member(0).backpressured());
  EXPECT_FALSE(fabric.member(0).budget().bounded());
  const SendResult result = fabric.member(0).TrySend(OrderingMode::kCausal, Blob("free"));
  EXPECT_EQ(result.status, SendStatus::kSent);
  s.RunFor(sim::Duration::Seconds(1));
  EXPECT_EQ(fabric.member(0).stats().sends_backpressured, 0u);
}

// --- Edge case 1: zero credits at a view-change flush boundary --------------
//
// A slow (here: partitioned) receiver pins the sender's window shut; the
// failure detector then evicts it, which starts a flush. A send issued while
// the flush runs AND credits are zero must be refused by admission
// (kBackpressured) — never silently accepted into the flush-blocked queue,
// which would grow without bound exactly when memory is scarcest. Once the
// new view installs, the stability floor is recomputed over the survivors,
// the window reopens, and throttled sends resume.
TEST(FlowControlTest, ZeroCreditsAtViewChangeFlushRefusesNotQueues) {
  auto run = [] {
    sim::Simulator s(41);
    FabricConfig cfg;
    cfg.num_members = 3;
    cfg.group.enable_membership = true;
    cfg.group.heartbeat_interval = sim::Duration::Millis(20);
    cfg.group.failure_timeout = sim::Duration::Millis(100);
    cfg.group.ack_gossip_interval = sim::Duration::Millis(10);
    cfg.group.send_window = 4;
    GroupFabric fabric(&s, cfg);

    std::ostringstream trace;
    std::vector<SendStatus> statuses;
    for (size_t i = 0; i < 2; ++i) {
      const MemberId id = GroupFabric::IdOf(i);
      fabric.member(i).SetDeliveryHandler(
          [&trace, id](const Delivery& d) { trace << id << ":" << TagOf(d) << " "; });
    }
    fabric.StartAll();

    int n = 0;
    std::function<void()> tick = [&] {
      if (s.now() >= sim::TimePoint::Zero() + sim::Duration::Millis(1500)) {
        return;
      }
      statuses.push_back(
          fabric.member(0).TrySend(OrderingMode::kCausal, Blob("m" + std::to_string(n++)))
              .status);
      s.ScheduleAfter(sim::Duration::Millis(20), tick);
    };
    s.ScheduleAfter(sim::Duration::Millis(100), tick);
    s.ScheduleAfter(sim::Duration::Millis(300),
                    [&] { fabric.network().Partition({{1, 2}, {3}}); });
    s.RunFor(sim::Duration::Seconds(3));

    size_t sent = 0;
    size_t backpressured = 0;
    for (SendStatus status : statuses) {
      trace << StatusChar(status);
      sent += status == SendStatus::kSent;
      backpressured += status == SendStatus::kBackpressured;
      // The heart of the edge case: with the window pinned shut for the whole
      // detection + flush episode, no send may slip into the flush queue.
      EXPECT_NE(status, SendStatus::kQueuedBehindFlush);
    }
    EXPECT_GT(sent, 0u);
    EXPECT_GT(backpressured, 0u);
    // The refusals were counted, the window reopened on the view change, and
    // the sender finished unblocked in the survivor view {1, 2}.
    EXPECT_EQ(fabric.member(0).stats().sends_backpressured, backpressured);
    EXPECT_GE(fabric.member(0).stats().flow_reopen_wakeups, 1u);
    EXPECT_EQ(statuses.back(), SendStatus::kSent);
    EXPECT_FALSE(fabric.member(0).backpressured());
    EXPECT_EQ(fabric.member(0).view().members, (std::vector<MemberId>{1, 2}));
    EXPECT_EQ(fabric.member(1).view().members, (std::vector<MemberId>{1, 2}));
    trace << "|view=" << fabric.member(0).view().id;
    return trace.str();
  };
  // Replay determinism: flow control must not perturb the simulation.
  EXPECT_EQ(run(), run());
}

// --- Edge case 2: shed-new refuses admission mid-batch ----------------------
//
// With batching on, an admitted send joins the batcher's partial batch; a
// shed send must never reach the batcher at all. The partial batch still
// flushes complete — shedding affects only the refused messages.
TEST(FlowControlTest, ShedNewDropsDuringPartialBatch) {
  auto run = [] {
    sim::Simulator s(42);
    FabricConfig cfg;
    cfg.num_members = 2;
    cfg.group.batching = 4;
    cfg.group.send_window = 3;
    cfg.group.overload_policy = OverloadPolicy::kShedNew;
    GroupFabric fabric(&s, cfg);

    std::ostringstream trace;
    fabric.member(1).SetDeliveryHandler(
        [&trace](const Delivery& d) { trace << "2:" << TagOf(d) << " "; });
    fabric.StartAll();

    std::vector<SendStatus> statuses;
    s.ScheduleAfter(sim::Duration::Millis(200),
                    [&] { fabric.network().Partition({{1}, {2}}); });
    // Five back-to-back sends against a window of 3: the first three join
    // the batcher (a partial batch — 3 of 4 slots), the last two are shed.
    s.ScheduleAfter(sim::Duration::Millis(210), [&] {
      for (int i = 1; i <= 5; ++i) {
        statuses.push_back(
            fabric.member(0).TrySend(OrderingMode::kCausal, Blob("m" + std::to_string(i)))
                .status);
      }
    });
    s.ScheduleAfter(sim::Duration::Millis(300), [&] { fabric.network().HealPartition(); });
    s.RunFor(sim::Duration::Seconds(2));

    EXPECT_EQ(statuses.size(), 5u);
    if (statuses.size() == 5u) {
      EXPECT_EQ(statuses[0], SendStatus::kSent);
      EXPECT_EQ(statuses[1], SendStatus::kSent);
      EXPECT_EQ(statuses[2], SendStatus::kSent);
      EXPECT_EQ(statuses[3], SendStatus::kShed);
      EXPECT_EQ(statuses[4], SendStatus::kShed);
    }
    EXPECT_EQ(fabric.member(0).stats().sends_shed, 2u);
    // The receiver got exactly the admitted prefix — the flushed partial
    // batch carries m1..m3 and nothing of the shed tail.
    const std::string delivered = trace.str();
    EXPECT_NE(delivered.find("2:m1"), std::string::npos);
    EXPECT_NE(delivered.find("2:m2"), std::string::npos);
    EXPECT_NE(delivered.find("2:m3"), std::string::npos);
    EXPECT_EQ(delivered.find("2:m4"), std::string::npos);
    EXPECT_EQ(delivered.find("2:m5"), std::string::npos);
    for (SendStatus status : statuses) {
      trace << StatusChar(status);
    }
    return trace.str();
  };
  EXPECT_EQ(run(), run());
}

// --- Edge case 3: laggard eviction racing a partition heal ------------------
//
// Under evict-laggard, a receiver that pins the window shut for
// laggard_patience consecutive retry ticks is handed to membership as a
// suspect. Here the partition heals while the resulting flush is still in
// flight: the eviction must win deterministically (the suspicion was already
// fed to membership), the survivors install {1, 2}, and the sender's window
// reopens against the survivor floor. The heartbeat detector is parked at 5s
// so only the laggard path can evict — this isolates the policy under test.
TEST(FlowControlTest, LaggardEvictionRacesHeal) {
  auto run = [] {
    sim::Simulator s(43);
    FabricConfig cfg;
    cfg.num_members = 3;
    cfg.group.enable_membership = true;
    cfg.group.heartbeat_interval = sim::Duration::Millis(20);
    cfg.group.failure_timeout = sim::Duration::Seconds(5);
    cfg.group.ack_gossip_interval = sim::Duration::Millis(10);
    cfg.group.send_window = 4;
    cfg.group.overload_policy = OverloadPolicy::kEvictLaggard;
    cfg.group.flow_retry_interval = sim::Duration::Millis(5);
    cfg.group.laggard_patience = 20;
    GroupFabric fabric(&s, cfg);

    std::ostringstream trace;
    for (size_t i = 0; i < 2; ++i) {
      const MemberId id = GroupFabric::IdOf(i);
      fabric.member(i).SetDeliveryHandler(
          [&trace, id](const Delivery& d) { trace << id << ":" << TagOf(d) << " "; });
    }
    fabric.StartAll();

    int n = 0;
    std::vector<SendStatus> statuses;
    std::function<void()> tick = [&] {
      if (s.now() >= sim::TimePoint::Zero() + sim::Duration::Millis(2000)) {
        return;
      }
      statuses.push_back(
          fabric.member(0).TrySend(OrderingMode::kCausal, Blob("m" + std::to_string(n++)))
              .status);
      s.ScheduleAfter(sim::Duration::Millis(25), tick);
    };
    s.ScheduleAfter(sim::Duration::Millis(100), tick);
    s.ScheduleAfter(sim::Duration::Millis(500),
                    [&] { fabric.network().Partition({{1, 2}, {3}}); });
    // ~20 credits-shut retry ticks land around 700ms; the heal arrives while
    // the eviction flush is settling.
    s.ScheduleAfter(sim::Duration::Millis(750), [&] { fabric.network().HealPartition(); });
    s.RunFor(sim::Duration::Seconds(3));

    EXPECT_EQ(fabric.member(0).stats().laggards_reported, 1u);
    EXPECT_GE(fabric.member(0).stats().sends_backpressured, 1u);
    EXPECT_GE(fabric.member(0).stats().flow_reopen_wakeups, 1u);
    // The eviction won the race: survivors agree on {1, 2} and the sender
    // finished unblocked (the evicted-but-alive member wedges under the
    // primary-partition rule, exactly like any false suspicion).
    EXPECT_EQ(fabric.member(0).view().members, (std::vector<MemberId>{1, 2}));
    EXPECT_EQ(fabric.member(1).view().members, (std::vector<MemberId>{1, 2}));
    EXPECT_EQ(statuses.back(), SendStatus::kSent);
    EXPECT_FALSE(fabric.member(0).backpressured());
    for (SendStatus status : statuses) {
      trace << StatusChar(status);
    }
    trace << "|view=" << fabric.member(0).view().id
          << "|laggards=" << fabric.member(0).stats().laggards_reported;
    return trace.str();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace catocs
