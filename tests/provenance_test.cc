// Tests for the provenance subsystem (DESIGN.md §8): recorder edge
// classification and hold accounting in isolation, then cross-checks against
// the instrumented scenarios — trading (declared deps), shopfloor (hidden
// database channel vs the app's own anomaly count), the chaos-rig probe
// (recorder vs an independent recount over the delivery record), and the
// prescriptive gate's provenance tap. Plus the acceptance property that
// matters most: attaching a recorder never changes what a scenario computes.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/apps/shopfloor.h"
#include "src/apps/trading.h"
#include "src/fault/chaos_rig.h"
#include "src/fault/hidden_probe.h"
#include "src/net/payload.h"
#include "src/obs/provenance.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/statelevel/prescriptive.h"

namespace obs {
namespace {

sim::TimePoint At(int64_t ms) { return sim::TimePoint::Zero() + sim::Duration::Millis(ms); }

// --- recorder unit tests -----------------------------------------------------

TEST(ProvenanceRecorderTest, DisabledRecorderIsInert) {
  ProvenanceRecorder rec;  // enabled defaults to false
  rec.DeclareSemanticDep(2, 1);
  rec.InjectHiddenEdge(3, 1);
  rec.RecordDelivery(2, 0, At(5), {1});
  rec.RecordHold(2, 0, "causal", At(1), At(5));
  EXPECT_EQ(rec.totals().deliveries, 0u);
  EXPECT_EQ(rec.totals().semantic_edges, 0u);
  EXPECT_EQ(rec.totals().hidden_edges, 0u);
  EXPECT_EQ(rec.totals().potential_edges, 0u);
  EXPECT_EQ(rec.totals().gating_holds, 0u);
  EXPECT_TRUE(rec.layers().empty());
}

TEST(ProvenanceRecorderTest, FrontierSplitsIntoMatchedAndSpurious) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  rec.DeclareSemanticDep(2, 1);
  // Frontier {1, 3}: edge 2->1 is declared, edge 2->3 is pure happens-before.
  rec.RecordDelivery(2, /*actor=*/0, At(10), {1, 3});
  EXPECT_EQ(rec.totals().potential_edges, 2u);
  EXPECT_EQ(rec.totals().matched_edges, 1u);
  EXPECT_EQ(rec.totals().spurious_edges, 1u);
  EXPECT_DOUBLE_EQ(rec.SpuriousEdgeRatio(), 0.5);

  // The frontier is a property of the message: a second member delivering the
  // same message must not classify it again.
  rec.RecordDelivery(2, /*actor=*/1, At(12), {1, 3});
  EXPECT_EQ(rec.totals().deliveries, 2u);
  EXPECT_EQ(rec.totals().potential_edges, 2u);

  // Self-edges and null keys never count.
  rec.RecordDelivery(4, 0, At(14), {4, 0});
  EXPECT_EQ(rec.totals().potential_edges, 2u);
}

TEST(ProvenanceRecorderTest, SemanticRequirementIsTransitive) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  rec.DeclareSemanticDep(3, 2);
  rec.DeclareSemanticDep(2, 1);
  EXPECT_TRUE(rec.SemanticallyRequires(3, 1));
  EXPECT_FALSE(rec.SemanticallyRequires(1, 3)) << "edges are directed";
  // A frontier edge backed only transitively still counts as matched.
  rec.RecordDelivery(3, 0, At(10), {1});
  EXPECT_EQ(rec.totals().matched_edges, 1u);
  EXPECT_EQ(rec.totals().spurious_edges, 0u);
}

TEST(ProvenanceRecorderTest, HoldIsFalseWithoutASemanticArrivalInWindow) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  rec.DeclareSemanticDep(2, 1);
  // Dep 1 delivered at this actor *before* the wait began: the hold bought
  // nothing the application asked for.
  rec.RecordDelivery(1, 0, At(1), {});
  rec.RecordHold(2, 0, "causal", At(5), At(9));
  ASSERT_EQ(rec.layers().count("causal"), 1u);
  const auto& causal = rec.layers().at("causal");
  EXPECT_EQ(causal.holds, 1u);
  EXPECT_EQ(causal.false_holds, 1u);
  EXPECT_EQ(causal.necessary_holds, 0u);
  EXPECT_EQ(rec.totals().false_hold_total, sim::Duration::Millis(4));
  EXPECT_DOUBLE_EQ(rec.FalseDelayFraction(), 1.0);
}

TEST(ProvenanceRecorderTest, HoldIsNecessaryWhenDepArrivesDuringWait) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  rec.DeclareSemanticDep(2, 1);
  rec.RecordDelivery(1, 0, At(7), {});  // inside (5, 9]
  rec.RecordHold(2, 0, "causal", At(5), At(9));
  const auto& causal = rec.layers().at("causal");
  EXPECT_EQ(causal.necessary_holds, 1u);
  EXPECT_EQ(causal.false_holds, 0u);
  EXPECT_DOUBLE_EQ(rec.FalseDelayFraction(), 0.0);
}

TEST(ProvenanceRecorderTest, CausalStageArrivalAloneJustifiesAHold) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  rec.DeclareSemanticDep(2, 1);
  // The predecessor reached stage-1 causal delivery during the wait but is
  // still gated downstream (no app delivery): the wait was still necessary.
  rec.RecordCausalDelivery(1, 0, At(6));
  rec.RecordHold(2, 0, "causal", At(5), At(9));
  EXPECT_EQ(rec.layers().at("causal").necessary_holds, 1u);
  EXPECT_EQ(rec.totals().false_holds, 0u);
}

TEST(ProvenanceRecorderTest, RetentionHoldsNeverCountAsFalseCausality) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  rec.RecordHold(2, 0, "stability", At(5), At(50), /*gates_delivery=*/false);
  const auto& stab = rec.layers().at("stability");
  EXPECT_EQ(stab.holds, 1u);
  EXPECT_EQ(stab.false_holds, 0u);
  EXPECT_EQ(rec.totals().gating_holds, 0u);
  EXPECT_EQ(rec.totals().gating_hold_total, sim::Duration::Zero());
  // Zero-length waits are not holds at all.
  rec.RecordHold(3, 0, "causal", At(5), At(5));
  EXPECT_EQ(rec.layers().count("causal"), 0u);
}

TEST(ProvenanceRecorderTest, HiddenMissCountedPerActorDeliveryOrder) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  rec.InjectHiddenEdge(2, 1);
  // Actor 0 sees the dependent before its out-of-band predecessor: miss.
  rec.RecordDelivery(2, 0, At(10), {});
  // Actor 1 sees them in the real causal order: checked, not missed.
  rec.RecordDelivery(1, 1, At(11), {});
  rec.RecordDelivery(2, 1, At(12), {});
  EXPECT_EQ(rec.totals().hidden_checked, 2u);
  EXPECT_EQ(rec.totals().hidden_missed, 1u);
  EXPECT_EQ(rec.HiddenMissesAt(0), 1u);
  EXPECT_EQ(rec.HiddenMissesAt(1), 0u);
  // Hidden edges join the semantic graph.
  EXPECT_TRUE(rec.SemanticallyRequires(2, 1));
  EXPECT_EQ(rec.totals().semantic_edges, 1u);
}

TEST(ProvenanceRecorderTest, RetroactiveHiddenInjectionChecksPastDeliveries) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  // The dependent's sender self-delivers inside Send, before the caller can
  // inject the edge — the recorder must recheck past deliveries on inject.
  rec.RecordDelivery(2, 0, At(10), {});
  rec.RecordDelivery(1, 1, At(9), {});
  rec.RecordDelivery(2, 1, At(12), {});
  rec.InjectHiddenEdge(2, 1);
  EXPECT_EQ(rec.totals().hidden_checked, 2u) << "one check per actor that delivered the dependent";
  EXPECT_EQ(rec.totals().hidden_missed, 1u);
  EXPECT_EQ(rec.HiddenMissesAt(0), 1u);
  EXPECT_EQ(rec.HiddenMissesAt(1), 0u);
  // Duplicate injection leaves every total unchanged.
  rec.InjectHiddenEdge(2, 1);
  EXPECT_EQ(rec.totals().hidden_edges, 1u);
  EXPECT_EQ(rec.totals().hidden_checked, 2u);
}

TEST(ProvenanceRecorderTest, FlowEdgesAndClear) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  rec.DeclareSemanticDep(3, 2);
  rec.InjectHiddenEdge(4, 1);
  rec.RecordDelivery(5, 0, At(1), {2});  // spurious: nothing declared for 5
  const std::vector<sim::FlowEdge> edges = rec.FlowEdges();
  ASSERT_EQ(edges.size(), 3u);
  std::map<std::string, int> by_kind;
  for (const auto& e : edges) {
    ++by_kind[e.kind];
  }
  EXPECT_EQ(by_kind["semantic"], 1);
  EXPECT_EQ(by_kind["hidden"], 1);
  EXPECT_EQ(by_kind["spurious"], 1);

  sim::MetricsRegistry registry;
  rec.ExportTo(registry);
  const sim::Counter* spurious =
      registry.FindCounter(sim::MetricsRegistry::LabeledName("provenance_edges", {{"kind", "spurious"}}));
  ASSERT_NE(spurious, nullptr);
  EXPECT_EQ(spurious->value(), 1);

  rec.Clear();
  EXPECT_EQ(rec.totals().deliveries, 0u);
  EXPECT_EQ(rec.totals().semantic_edges, 0u);
  EXPECT_TRUE(rec.FlowEdges().empty());
  EXPECT_TRUE(rec.enabled()) << "Clear drops data, not the enable bit";
}

// --- trading: declared dependencies ------------------------------------------

TEST(ProvenanceScenarioTest, TradingAccountsEveryPotentialEdge) {
  ProvenanceRecorder rec;
  apps::TradingConfig config;
  config.price_updates = 150;
  config.seed = 11;
  config.provenance = &rec;
  const apps::TradingResult result = apps::RunTradingScenario(config);
  EXPECT_EQ(result.price_updates, 150);
  const auto& t = rec.totals();
  EXPECT_GT(t.deliveries, 0u);
  EXPECT_EQ(t.matched_edges + t.spurious_edges, t.potential_edges);
  EXPECT_GT(t.matched_edges, 0u) << "every theoretical price declares its base";
  EXPECT_GT(t.spurious_edges, 0u) << "independent price updates still stamp each other";
  EXPECT_GE(rec.FalseDelayFraction(), 0.0);
  EXPECT_LE(rec.FalseDelayFraction(), 1.0);
}

TEST(ProvenanceScenarioTest, TradingReplaysIdenticallyWithRecorderAttached) {
  apps::TradingConfig config;
  config.price_updates = 120;
  config.seed = 23;
  const apps::TradingResult plain = apps::RunTradingScenario(config);

  ProvenanceRecorder rec;
  config.provenance = &rec;
  const apps::TradingResult instrumented = apps::RunTradingScenario(config);

  EXPECT_EQ(plain.raw_inconsistent_displays, instrumented.raw_inconsistent_displays);
  EXPECT_EQ(plain.raw_false_crossings, instrumented.raw_false_crossings);
  EXPECT_EQ(plain.paired_inconsistent_displays, instrumented.paired_inconsistent_displays);
  EXPECT_EQ(plain.paired_false_crossings, instrumented.paired_false_crossings);
  EXPECT_EQ(plain.paired_lagging_displays, instrumented.paired_lagging_displays);
  EXPECT_GT(rec.totals().deliveries, 0u) << "the recorder did observe the instrumented run";
}

// --- shopfloor: the hidden database channel ----------------------------------

TEST(ProvenanceScenarioTest, ShopFloorHiddenMissesEqualRawAnomalies) {
  ProvenanceRecorder rec;
  apps::ShopFloorConfig config;
  config.rounds = 120;
  config.seed = 5;
  config.provenance = &rec;
  const apps::ShopFloorResult result = apps::RunShopFloorScenario(config);
  EXPECT_EQ(result.rounds, 120);
  EXPECT_GT(rec.totals().hidden_edges, 0u);
  // Member 1 is the observer; a hidden miss there is exactly a raw anomaly.
  EXPECT_EQ(rec.HiddenMissesAt(1), static_cast<uint64_t>(result.raw_anomalies));
  EXPECT_GT(result.raw_anomalies, 0) << "seed 5 should reorder at least one round";
  EXPECT_EQ(rec.totals().semantic_edges, rec.totals().hidden_edges)
      << "the app declares nothing — the database channel is invisible to it";
}

// --- chaos rig + probe: recorder vs independent recount ----------------------

TEST(ProvenanceScenarioTest, ProbeMissesMatchDeliveryRecordRecount) {
  sim::Simulator s(101);
  fault::ChaosRigConfig cfg;
  cfg.group.observability = true;
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  cfg.group.provenance = &rec;
  fault::ChaosRig rig(&s, cfg);
  fault::HiddenChannelProbe::Config probe_cfg;
  probe_cfg.interval = sim::Duration::Millis(25);
  fault::HiddenChannelProbe probe(&rig, &rec, probe_cfg);
  rig.Start();
  probe.Start();
  s.ScheduleAfter(sim::Duration::Seconds(4), [&] {
    probe.Stop();
    rig.StopWorkload();
  });
  s.RunFor(sim::Duration::Seconds(6));

  EXPECT_GT(probe.rounds(), 0u);
  EXPECT_GT(probe.edges_injected(), 0u) << "tokens never completed a round";
  EXPECT_EQ(probe.edges_injected(), rec.totals().hidden_edges);
  // The ground truth: recount misses directly from the rig's delivery record.
  const uint64_t oracle = fault::CountHiddenMisses(rig.deliveries(), probe.edges());
  EXPECT_EQ(oracle, rec.totals().hidden_missed)
      << "recorder and delivery-record recount disagree on hidden misses";
}

// --- prescriptive gate: the provenance tap -----------------------------------

TEST(ProvenanceScenarioTest, PrescriptiveGateDeclaresItsPrerequisites) {
  ProvenanceRecorder rec;
  rec.set_enabled(true);
  std::vector<statelv::StreamKey> delivered;
  statelv::PrescriptiveGate gate(
      [&delivered](const statelv::StreamKey& key, const net::PayloadPtr&) {
        delivered.push_back(key);
      });
  const auto mapper = [](const statelv::StreamKey& key) -> MsgKey {
    return key.stream * 1000 + key.seq;
  };
  gate.SetProvenance(&rec, mapper);

  auto payload = std::make_shared<net::BlobPayload>("gate-msg", 8);
  // {1,2} requires {1,1}: submitted out of order, so the gate delays it.
  EXPECT_FALSE(gate.Submit({1, 2}, {{1, 1}}, payload));
  EXPECT_TRUE(gate.Submit({1, 1}, {}, payload));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], (statelv::StreamKey{1, 1}));
  EXPECT_EQ(delivered[1], (statelv::StreamKey{1, 2}));

  // The stated prerequisite is on the semantic graph under the mapped keys.
  EXPECT_TRUE(rec.SemanticallyRequires(mapper({1, 2}), mapper({1, 1})));
  EXPECT_EQ(rec.totals().semantic_edges, 1u);
}

}  // namespace
}  // namespace obs
