// Tests for dynamic group join: a new member joins through the flush
// protocol, adopts the delivery cut, and participates fully afterwards.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/sim/simulator.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(const std::string& tag) {
  return std::make_shared<net::BlobPayload>(tag, 32);
}

std::string TagOf(const Delivery& d) {
  const auto* blob = net::PayloadCast<net::BlobPayload>(d.payload());
  return blob ? blob->tag() : "?";
}

// Harness: a 3-member fabric plus a joiner (id 9) on the same network.
struct JoinRig {
  sim::Simulator s;
  GroupFabric fabric;
  net::Transport joiner_transport;
  GroupMember joiner;

  static FabricConfig Config() {
    FabricConfig cfg;
    cfg.num_members = 3;
    cfg.group.enable_membership = true;
    cfg.group.heartbeat_interval = sim::Duration::Millis(20);
    cfg.group.failure_timeout = sim::Duration::Millis(120);
    return cfg;
  }

  explicit JoinRig(uint64_t seed)
      : s(seed),
        fabric(&s, Config()),
        joiner_transport(&s, &fabric.network(), 9),
        joiner(&s, &joiner_transport, Config().group, 9, {9}) {}
};

TEST(JoinTest, JoinerInstallsViewWithEveryone) {
  JoinRig rig(1);
  rig.fabric.StartAll();
  rig.joiner.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  rig.s.RunFor(sim::Duration::Seconds(3));
  EXPECT_EQ(rig.joiner.view().members, (std::vector<MemberId>{1, 2, 3, 9}));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.fabric.member(i).view().members, (std::vector<MemberId>{1, 2, 3, 9}))
        << "member " << i;
  }
}

TEST(JoinTest, JoinerReceivesPostJoinTrafficOnly) {
  JoinRig rig(2);
  std::vector<std::string> at_joiner;
  rig.joiner.SetDeliveryHandler([&](const Delivery& d) { at_joiner.push_back(TagOf(d)); });
  rig.fabric.StartAll();
  rig.joiner.Start();
  // Pre-join traffic: history the joiner must never see.
  for (int k = 0; k < 5; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(10 + k), [&rig, k] {
      rig.fabric.member(k % 3).CausalSend(Blob("old"));
    });
  }
  rig.s.ScheduleAfter(sim::Duration::Millis(300), [&] { rig.joiner.JoinGroup(2); });
  // Post-join traffic.
  for (int k = 0; k < 5; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(900 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 3).CausalSend(Blob("new"));
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(5));
  int old_count = 0;
  int new_count = 0;
  for (const auto& tag : at_joiner) {
    (tag == "old" ? old_count : new_count)++;
  }
  EXPECT_EQ(old_count, 0) << "the joiner adopts the cut; history is the app's problem";
  EXPECT_EQ(new_count, 5);
}

TEST(JoinTest, JoinerCanSendAfterJoin) {
  JoinRig rig(3);
  std::vector<std::string> at_member0;
  rig.fabric.member(0).SetDeliveryHandler([&](const Delivery& d) {
    at_member0.push_back(TagOf(d));
  });
  rig.fabric.StartAll();
  rig.joiner.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  // Send while still joining: must queue, then flow after the view installs.
  rig.s.ScheduleAfter(sim::Duration::Millis(120), [&] { rig.joiner.CausalSend(Blob("hello")); });
  rig.s.RunFor(sim::Duration::Seconds(3));
  ASSERT_EQ(at_member0.size(), 1u);
  EXPECT_EQ(at_member0[0], "hello");
}

TEST(JoinTest, InvariantsHoldAcrossJoinMidTraffic) {
  JoinRig rig(4);
  std::vector<GroupFabric::Record> records;
  for (size_t i = 0; i < 3; ++i) {
    rig.fabric.member(i).SetDeliveryHandler([&records, i](const Delivery& d) {
      records.push_back({GroupFabric::IdOf(i), d});
    });
  }
  rig.joiner.SetDeliveryHandler([&records](const Delivery& d) { records.push_back({9, d}); });
  rig.fabric.StartAll();
  rig.joiner.Start();
  for (int k = 0; k < 30; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(10 * k + 5), [&rig, k] {
      rig.fabric.member(k % 3).Send(k % 2 == 0 ? OrderingMode::kCausal : OrderingMode::kTotal,
                                    Blob("t" + std::to_string(k)));
    });
  }
  rig.s.ScheduleAfter(sim::Duration::Millis(150), [&] { rig.joiner.JoinGroup(1); });
  rig.s.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(CheckCausalDeliveryInvariant(records), "");
  EXPECT_EQ(CheckFifoInvariant(records), "");
  EXPECT_EQ(CheckTotalOrderInvariant(records), "");
}

TEST(JoinTest, StabilityDrainsWithJoinerInTheLoop) {
  JoinRig rig(5);
  rig.fabric.StartAll();
  rig.joiner.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  for (int k = 0; k < 10; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(800 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 3).CausalSend(Blob("m"));
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(5));
  // With the joiner acking, everything becomes stable and buffers drain.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.fabric.member(i).buffered_messages(), 0u) << "member " << i;
  }
  EXPECT_EQ(rig.joiner.buffered_messages(), 0u);
}

TEST(JoinTest, TwoJoinersBothEndUpInTheView) {
  JoinRig rig(6);
  net::Transport second_transport(&rig.s, &rig.fabric.network(), 10);
  GroupMember second(&rig.s, &second_transport, JoinRig::Config().group, 10, {10});
  rig.fabric.StartAll();
  rig.joiner.Start();
  second.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  rig.s.ScheduleAfter(sim::Duration::Millis(600), [&] { second.JoinGroup(2); });
  rig.s.RunFor(sim::Duration::Seconds(4));
  EXPECT_EQ(rig.fabric.member(0).view().members, (std::vector<MemberId>{1, 2, 3, 9, 10}));
  EXPECT_EQ(rig.joiner.view().members, (std::vector<MemberId>{1, 2, 3, 9, 10}));
  EXPECT_EQ(second.view().members, (std::vector<MemberId>{1, 2, 3, 9, 10}));
}

TEST(JoinTest, JoinAndCrashInterleaved) {
  JoinRig rig(7);
  rig.fabric.StartAll();
  rig.joiner.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  rig.s.ScheduleAfter(sim::Duration::Millis(800), [&] { rig.fabric.CrashMember(2); });
  rig.s.RunFor(sim::Duration::Seconds(4));
  EXPECT_EQ(rig.fabric.member(0).view().members, (std::vector<MemberId>{1, 2, 9}));
  EXPECT_EQ(rig.joiner.view().members, (std::vector<MemberId>{1, 2, 9}));
}

}  // namespace
}  // namespace catocs
