// Tests for dynamic group join: a new member joins through the flush
// protocol, adopts the delivery cut, and participates fully afterwards.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/sim/simulator.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(const std::string& tag) {
  return std::make_shared<net::BlobPayload>(tag, 32);
}

std::string TagOf(const Delivery& d) {
  const auto* blob = net::PayloadCast<net::BlobPayload>(d.payload());
  return blob ? blob->tag() : "?";
}

// Harness: a 3-member fabric plus a joiner (id 9) on the same network.
struct JoinRig {
  sim::Simulator s;
  GroupFabric fabric;
  net::Transport joiner_transport;
  GroupMember joiner;

  static FabricConfig Config() {
    FabricConfig cfg;
    cfg.num_members = 3;
    cfg.group.enable_membership = true;
    cfg.group.heartbeat_interval = sim::Duration::Millis(20);
    cfg.group.failure_timeout = sim::Duration::Millis(120);
    return cfg;
  }

  explicit JoinRig(uint64_t seed)
      : s(seed),
        fabric(&s, Config()),
        joiner_transport(&s, &fabric.network(), 9),
        joiner(&s, &joiner_transport, Config().group, 9, {9}) {}
};

TEST(JoinTest, JoinerInstallsViewWithEveryone) {
  JoinRig rig(1);
  rig.fabric.StartAll();
  rig.joiner.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  rig.s.RunFor(sim::Duration::Seconds(3));
  EXPECT_EQ(rig.joiner.view().members, (std::vector<MemberId>{1, 2, 3, 9}));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.fabric.member(i).view().members, (std::vector<MemberId>{1, 2, 3, 9}))
        << "member " << i;
  }
}

TEST(JoinTest, JoinerReceivesPostJoinTrafficOnly) {
  JoinRig rig(2);
  std::vector<std::string> at_joiner;
  rig.joiner.SetDeliveryHandler([&](const Delivery& d) { at_joiner.push_back(TagOf(d)); });
  rig.fabric.StartAll();
  rig.joiner.Start();
  // Pre-join traffic: history the joiner must never see.
  for (int k = 0; k < 5; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(10 + k), [&rig, k] {
      rig.fabric.member(k % 3).CausalSend(Blob("old"));
    });
  }
  rig.s.ScheduleAfter(sim::Duration::Millis(300), [&] { rig.joiner.JoinGroup(2); });
  // Post-join traffic.
  for (int k = 0; k < 5; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(900 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 3).CausalSend(Blob("new"));
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(5));
  int old_count = 0;
  int new_count = 0;
  for (const auto& tag : at_joiner) {
    (tag == "old" ? old_count : new_count)++;
  }
  EXPECT_EQ(old_count, 0) << "the joiner adopts the cut; history is the app's problem";
  EXPECT_EQ(new_count, 5);
}

TEST(JoinTest, JoinerCanSendAfterJoin) {
  JoinRig rig(3);
  std::vector<std::string> at_member0;
  rig.fabric.member(0).SetDeliveryHandler([&](const Delivery& d) {
    at_member0.push_back(TagOf(d));
  });
  rig.fabric.StartAll();
  rig.joiner.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  // Send while still joining: must queue, then flow after the view installs.
  rig.s.ScheduleAfter(sim::Duration::Millis(120), [&] { rig.joiner.CausalSend(Blob("hello")); });
  rig.s.RunFor(sim::Duration::Seconds(3));
  ASSERT_EQ(at_member0.size(), 1u);
  EXPECT_EQ(at_member0[0], "hello");
}

TEST(JoinTest, InvariantsHoldAcrossJoinMidTraffic) {
  JoinRig rig(4);
  std::vector<GroupFabric::Record> records;
  for (size_t i = 0; i < 3; ++i) {
    rig.fabric.member(i).SetDeliveryHandler([&records, i](const Delivery& d) {
      records.push_back({GroupFabric::IdOf(i), d});
    });
  }
  rig.joiner.SetDeliveryHandler([&records](const Delivery& d) { records.push_back({9, d}); });
  rig.fabric.StartAll();
  rig.joiner.Start();
  for (int k = 0; k < 30; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(10 * k + 5), [&rig, k] {
      rig.fabric.member(k % 3).Send(k % 2 == 0 ? OrderingMode::kCausal : OrderingMode::kTotal,
                                    Blob("t" + std::to_string(k)));
    });
  }
  rig.s.ScheduleAfter(sim::Duration::Millis(150), [&] { rig.joiner.JoinGroup(1); });
  rig.s.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(CheckCausalDeliveryInvariant(records), "");
  EXPECT_EQ(CheckFifoInvariant(records), "");
  EXPECT_EQ(CheckTotalOrderInvariant(records), "");
}

TEST(JoinTest, StabilityDrainsWithJoinerInTheLoop) {
  JoinRig rig(5);
  rig.fabric.StartAll();
  rig.joiner.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  for (int k = 0; k < 10; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(800 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 3).CausalSend(Blob("m"));
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(5));
  // With the joiner acking, everything becomes stable and buffers drain.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.fabric.member(i).buffered_messages(), 0u) << "member " << i;
  }
  EXPECT_EQ(rig.joiner.buffered_messages(), 0u);
}

TEST(JoinTest, TwoJoinersBothEndUpInTheView) {
  JoinRig rig(6);
  net::Transport second_transport(&rig.s, &rig.fabric.network(), 10);
  GroupMember second(&rig.s, &second_transport, JoinRig::Config().group, 10, {10});
  rig.fabric.StartAll();
  rig.joiner.Start();
  second.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  rig.s.ScheduleAfter(sim::Duration::Millis(600), [&] { second.JoinGroup(2); });
  rig.s.RunFor(sim::Duration::Seconds(4));
  EXPECT_EQ(rig.fabric.member(0).view().members, (std::vector<MemberId>{1, 2, 3, 9, 10}));
  EXPECT_EQ(rig.joiner.view().members, (std::vector<MemberId>{1, 2, 3, 9, 10}));
  EXPECT_EQ(second.view().members, (std::vector<MemberId>{1, 2, 3, 9, 10}));
}

// --- crash-recovery with state transfer --------------------------------------

// The workload payload for the state-transfer tests: a unique key mapping to
// a value, so replica stores are order-insensitive and directly comparable.
class KvUpdate : public net::Payload {
 public:
  KvUpdate(uint64_t key, uint64_t value) : key_(key), value_(value) {}
  size_t SizeBytes() const override { return 48; }
  std::string Describe() const override { return "kv-update"; }
  uint64_t key() const { return key_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t key_;
  uint64_t value_;
};

class KvSnapshot : public net::Payload {
 public:
  explicit KvSnapshot(std::map<uint64_t, uint64_t> store) : store_(std::move(store)) {}
  size_t SizeBytes() const override { return 16 * store_.size(); }
  std::string Describe() const override { return "kv-snapshot"; }
  const std::map<uint64_t, uint64_t>& store() const { return store_; }

 private:
  std::map<uint64_t, uint64_t> store_;
};

// Wires a member to a per-id replicated store with snapshot provider/applier.
void WireStore(GroupMember& member, std::map<MemberId, std::map<uint64_t, uint64_t>>* stores) {
  const MemberId id = member.self();
  member.SetDeliveryHandler([stores, id](const Delivery& d) {
    if (const auto* update = net::PayloadCast<KvUpdate>(d.payload())) {
      (*stores)[id][update->key()] = update->value();
    }
  });
  member.SetStateProvider([stores, id]() -> net::PayloadPtr {
    return std::make_shared<KvSnapshot>((*stores)[id]);
  });
  member.SetStateApplier([stores, id](const net::PayloadPtr& payload) {
    if (const auto* snapshot = net::PayloadCast<KvSnapshot>(payload)) {
      (*stores)[id] = snapshot->store();
    }
  });
}

// The acceptance scenario for crash recovery: member 3 crashes mid-run, the
// survivors keep updating, and the crashed slot rejoins under the fresh id 9.
// The rejoiner must receive a state snapshot covering everything it missed,
// then track all subsequent updates — ending byte-identical to the survivors.
TEST(JoinTest, CrashedMemberRejoinsWithStateTransfer) {
  JoinRig rig(8);
  std::map<MemberId, std::map<uint64_t, uint64_t>> stores;
  for (size_t i = 0; i < 3; ++i) {
    WireStore(rig.fabric.member(i), &stores);
  }
  WireStore(rig.joiner, &stores);
  rig.fabric.StartAll();

  // Phase 1: traffic the whole founding group applies.
  for (int k = 0; k < 6; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(20 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 3).CausalSend(std::make_shared<KvUpdate>(100 + k, k));
    });
  }
  // Member 3 (index 2) crashes; the survivors evict it.
  rig.s.ScheduleAfter(sim::Duration::Millis(200), [&] { rig.fabric.CrashMember(2); });
  // Phase 2: history only the survivors see — the rejoiner must get these
  // keys via the snapshot, never as deliveries.
  for (int k = 0; k < 6; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(600 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 2).CausalSend(std::make_shared<KvUpdate>(200 + k, 10 + k));
    });
  }
  // The crashed slot comes back as fresh member 9 and joins through member 1.
  rig.s.ScheduleAfter(sim::Duration::Millis(900), [&] {
    rig.joiner.Start();
    rig.joiner.JoinGroup(1);
  });
  // Phase 3: post-rejoin traffic, including sends from the rejoiner itself.
  for (int k = 0; k < 6; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(2000 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 2).Send(k % 2 == 0 ? OrderingMode::kCausal : OrderingMode::kTotal,
                                    std::make_shared<KvUpdate>(300 + k, 20 + k));
    });
  }
  rig.s.ScheduleAfter(sim::Duration::Millis(2100), [&] {
    rig.joiner.CausalSend(std::make_shared<KvUpdate>(400, 30));
  });
  rig.s.RunFor(sim::Duration::Seconds(5));

  EXPECT_EQ(rig.joiner.view().members, (std::vector<MemberId>{1, 2, 9}));
  ASSERT_EQ(stores[1].size(), 19u) << "6 + 6 + 6 + 1 unique keys at a survivor";
  EXPECT_EQ(stores[2], stores[1]);
  EXPECT_EQ(stores[9], stores[1])
      << "the rejoiner's snapshot + post-join deliveries must reproduce the survivors' state";
}

// Without a state provider the rejoiner still joins cleanly but sees no
// history — state transfer is opt-in, matching the documented contract.
TEST(JoinTest, RejoinWithoutProviderAdoptsCutOnly) {
  JoinRig rig(9);
  std::map<MemberId, std::map<uint64_t, uint64_t>> stores;
  // Delivery recording only — no provider/applier anywhere.
  for (size_t i = 0; i < 3; ++i) {
    GroupMember& member = rig.fabric.member(i);
    const MemberId id = member.self();
    member.SetDeliveryHandler([&stores, id](const Delivery& d) {
      if (const auto* update = net::PayloadCast<KvUpdate>(d.payload())) {
        stores[id][update->key()] = update->value();
      }
    });
  }
  const MemberId joiner_id = rig.joiner.self();
  rig.joiner.SetDeliveryHandler([&stores, joiner_id](const Delivery& d) {
    if (const auto* update = net::PayloadCast<KvUpdate>(d.payload())) {
      stores[joiner_id][update->key()] = update->value();
    }
  });
  rig.fabric.StartAll();
  for (int k = 0; k < 4; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(20 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 3).CausalSend(std::make_shared<KvUpdate>(k, k));
    });
  }
  rig.s.ScheduleAfter(sim::Duration::Millis(150), [&] { rig.fabric.CrashMember(2); });
  rig.s.ScheduleAfter(sim::Duration::Millis(700), [&] {
    rig.joiner.Start();
    rig.joiner.JoinGroup(1);
  });
  for (int k = 0; k < 4; ++k) {
    rig.s.ScheduleAfter(sim::Duration::Millis(1800 + 10 * k), [&rig, k] {
      rig.fabric.member(k % 2).CausalSend(std::make_shared<KvUpdate>(50 + k, k));
    });
  }
  rig.s.RunFor(sim::Duration::Seconds(4));
  EXPECT_EQ(rig.joiner.view().members, (std::vector<MemberId>{1, 2, 9}));
  EXPECT_EQ(stores[9].size(), 4u) << "post-join keys only; pre-crash history never arrives";
  EXPECT_EQ(stores[1].size(), 8u);
}

TEST(JoinTest, JoinAndCrashInterleaved) {
  JoinRig rig(7);
  rig.fabric.StartAll();
  rig.joiner.Start();
  rig.s.ScheduleAfter(sim::Duration::Millis(100), [&] { rig.joiner.JoinGroup(1); });
  rig.s.ScheduleAfter(sim::Duration::Millis(800), [&] { rig.fabric.CrashMember(2); });
  rig.s.RunFor(sim::Duration::Seconds(4));
  EXPECT_EQ(rig.fabric.member(0).view().members, (std::vector<MemberId>{1, 2, 9}));
  EXPECT_EQ(rig.joiner.view().members, (std::vector<MemberId>{1, 2, 9}));
}

}  // namespace
}  // namespace catocs
