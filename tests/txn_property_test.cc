// Randomized property tests for the transaction substrate: lock-manager
// invariants under arbitrary acquire/release interleavings, OCC
// serializability (results must equal *some* serial execution), and the
// replicated store's safety under hostile networks.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/txn/lock_manager.h"
#include "src/txn/occ.h"
#include "src/txn/replicated_store.h"

namespace txn {
namespace {

// Invariant: at no point do incompatible lock holders coexist, and releasing
// everything always drains every queue.
TEST(LockManagerPropertyTest, RandomScheduleNeverViolatesCompatibility) {
  sim::Rng rng(424242);
  for (int trial = 0; trial < 200; ++trial) {
    LockManager lm;
    constexpr int kTxns = 6;
    constexpr int kResources = 3;
    std::set<TxnId> live;
    // Shadow state rebuilt from Holds() to validate compatibility.
    auto check = [&] {
      for (int r = 0; r < kResources; ++r) {
        const std::string name = "r" + std::to_string(r);
        int exclusive = 0;
        int shared = 0;
        for (TxnId t = 1; t <= kTxns; ++t) {
          if (lm.Holds(t, name, LockMode::kExclusive)) {
            ++exclusive;
          } else if (lm.Holds(t, name, LockMode::kShared)) {
            ++shared;
          }
        }
        EXPECT_LE(exclusive, 1) << name;
        if (exclusive == 1) {
          EXPECT_EQ(shared, 0) << name << ": shared+exclusive coexist";
        }
      }
    };
    for (int step = 0; step < 60; ++step) {
      const TxnId txn = 1 + rng.NextBelow(kTxns);
      if (rng.NextBool(0.3) && live.count(txn)) {
        lm.ReleaseAll(txn);
        live.erase(txn);
      } else {
        const std::string name = "r" + std::to_string(rng.NextBelow(kResources));
        const LockMode mode = rng.NextBool(0.5) ? LockMode::kShared : LockMode::kExclusive;
        lm.Acquire(txn, name, mode, nullptr);
        live.insert(txn);
      }
      check();
    }
    for (TxnId t = 1; t <= kTxns; ++t) {
      lm.ReleaseAll(t);
    }
    EXPECT_EQ(lm.locked_resources(), 0u);
  }
}

// Serializability oracle: run random transactions through OCC, then replay
// the *committed* ones serially in commit order against a reference store.
// Final states must match exactly.
TEST(OccPropertyTest, CommittedHistoryEqualsSerialReplay) {
  sim::Rng rng(515151);
  for (int trial = 0; trial < 200; ++trial) {
    OccManager occ;
    constexpr int kKeys = 4;
    struct Op {
      bool is_write;
      std::string key;
      double value;
    };
    struct TxnScript {
      std::vector<Op> ops;
      TxnId id = 0;
      bool committed = false;
      uint64_t commit_position = 0;
    };
    // Interleave 5 transactions' operations randomly.
    std::vector<TxnScript> scripts(5);
    for (size_t t = 0; t < scripts.size(); ++t) {
      const int op_count = 2 + static_cast<int>(rng.NextBelow(4));
      for (int o = 0; o < op_count; ++o) {
        Op op;
        op.is_write = rng.NextBool(0.5);
        op.key = "k" + std::to_string(rng.NextBelow(kKeys));
        op.value = static_cast<double>(trial * 1000 + t * 100 + o);
        scripts[t].ops.push_back(op);
      }
      scripts[t].id = occ.Begin();
    }
    // Random interleaving: pick a txn with remaining ops, run its next op;
    // when a txn finishes its ops, try to commit.
    std::vector<size_t> cursor(scripts.size(), 0);
    uint64_t commit_counter = 0;
    bool work_left = true;
    while (work_left) {
      work_left = false;
      // random order sweep
      std::vector<size_t> idx(scripts.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        idx[i] = i;
      }
      rng.Shuffle(idx);
      for (size_t i : idx) {
        TxnScript& script = scripts[i];
        if (cursor[i] > script.ops.size()) {
          continue;  // finished (committed or aborted)
        }
        work_left = true;
        if (cursor[i] == script.ops.size()) {
          script.committed = occ.Commit(script.id);
          script.commit_position = ++commit_counter;
          cursor[i] = script.ops.size() + 1;
          continue;
        }
        const Op& op = script.ops[cursor[i]++];
        if (op.is_write) {
          occ.Write(script.id, op.key, op.value);
        } else {
          occ.Read(script.id, op.key);
        }
        break;  // one op per sweep round: a genuine interleaving
      }
    }
    // Serial replay of committed transactions in commit order.
    std::vector<const TxnScript*> committed;
    for (const auto& script : scripts) {
      if (script.committed) {
        committed.push_back(&script);
      }
    }
    std::sort(committed.begin(), committed.end(),
              [](const TxnScript* a, const TxnScript* b) {
                return a->commit_position < b->commit_position;
              });
    std::map<std::string, double> reference;
    for (const TxnScript* script : committed) {
      for (const Op& op : script->ops) {
        if (op.is_write) {
          reference[op.key] = op.value;
        }
      }
    }
    for (int k = 0; k < kKeys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const auto occ_value = occ.CommittedValue(key);
      auto ref = reference.find(key);
      if (ref == reference.end()) {
        EXPECT_FALSE(occ_value.has_value()) << key;
      } else {
        ASSERT_TRUE(occ_value.has_value()) << key;
        EXPECT_EQ(*occ_value, ref->second) << key;
      }
    }
  }
}

// The transactional store under loss and duplication: every acknowledged
// commit must be present and identical at all (available) replicas.
class TxnStoreHostileTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxnStoreHostileTest, AckedWritesPresentEverywhere) {
  sim::Simulator s(GetParam());
  net::NetworkConfig net_config;
  net_config.drop_probability = 0.10;
  net_config.duplicate_probability = 0.10;
  net::Network network(&s,
                       std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                             sim::Duration::Millis(5)),
                       net_config);
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<TxnReplica>> replicas;
  std::vector<net::NodeId> ids{1, 2, 3};
  net::TransportConfig tcfg;
  tcfg.max_retries = 500;
  for (net::NodeId id : ids) {
    transports.push_back(std::make_unique<net::Transport>(&s, &network, id, tcfg));
    replicas.push_back(std::make_unique<TxnReplica>(&s, transports.back().get()));
  }
  TxnCoordinator coordinator(&s, transports[0].get(), ids, sim::Duration::Millis(500));

  std::map<std::string, double> acked;
  int done = 0;
  std::function<void(int)> issue = [&](int k) {
    if (k >= 30) {
      return;
    }
    const std::string key = "k" + std::to_string(k % 7);
    const double value = 1000.0 + k;
    coordinator.Write(key, value, [&, key, value, k](bool ok) {
      if (ok) {
        acked[key] = value;
      }
      ++done;
      issue(k + 1);
    });
  };
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { issue(0); });
  s.RunFor(sim::Duration::Seconds(120));
  EXPECT_EQ(done, 30);
  for (const auto& [key, value] : acked) {
    for (size_t r = 0; r < replicas.size(); ++r) {
      ASSERT_TRUE(replicas[r]->Read(key).has_value()) << key << " at replica " << r;
      EXPECT_EQ(*replicas[r]->Read(key), value) << key << " at replica " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnStoreHostileTest, ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace txn
