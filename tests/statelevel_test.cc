// Tests for the state-level ordering library: versioned updates, the
// order-preserving cache, the prescriptive gate, and Chandy–Lamport
// snapshots.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/statelevel/ordered_cache.h"
#include "src/statelevel/prescriptive.h"
#include "src/statelevel/snapshot.h"
#include "src/statelevel/version.h"

namespace statelv {
namespace {

VersionedUpdate Update(const std::string& object, uint64_t version, double value) {
  VersionedUpdate u;
  u.object = object;
  u.version = version;
  u.value = value;
  return u;
}

VersionedUpdate Derived(const std::string& object, uint64_t version, double value,
                        const std::string& base, uint64_t base_version) {
  VersionedUpdate u = Update(object, version, value);
  u.dependency = Dependency{base, base_version};
  return u;
}

TEST(OrderedCacheTest, AppliesFreshUpdate) {
  OrderedCache cache;
  EXPECT_EQ(cache.Apply(Update("ibm", 1, 100.0)), ApplyResult::kApplied);
  ASSERT_NE(cache.Get("ibm"), nullptr);
  EXPECT_EQ(cache.Get("ibm")->value, 100.0);
}

TEST(OrderedCacheTest, DropsStaleVersions) {
  OrderedCache cache;
  cache.Apply(Update("ibm", 5, 105.0));
  EXPECT_EQ(cache.Apply(Update("ibm", 3, 103.0)), ApplyResult::kStale);
  EXPECT_EQ(cache.Apply(Update("ibm", 5, 105.0)), ApplyResult::kStale);
  EXPECT_EQ(cache.Get("ibm")->value, 105.0);
  EXPECT_EQ(cache.stats().stale_dropped, 2u);
}

TEST(OrderedCacheTest, ReorderedArrivalsConvergeToNewest) {
  // The Figure 2/3 fix: version numbers make arrival order irrelevant.
  OrderedCache cache;
  cache.Apply(Update("lot-a", 2, 0.0));  // "stop" arrives first
  cache.Apply(Update("lot-a", 1, 1.0));  // "start" arrives late -> dropped
  EXPECT_EQ(cache.Get("lot-a")->version, 2u);
  EXPECT_EQ(cache.Get("lot-a")->value, 0.0);
}

TEST(OrderedCacheTest, HoldsDerivedUntilBaseArrives) {
  // The Figure 4 fix: a theoretical price is never visible without the
  // option price it was computed from.
  OrderedCache cache;
  EXPECT_EQ(cache.Apply(Derived("theo", 1, 26.75, "opt", 2)), ApplyResult::kHeld);
  EXPECT_EQ(cache.Get("theo"), nullptr);
  cache.Apply(Update("opt", 1, 25.5));
  EXPECT_EQ(cache.Get("theo"), nullptr) << "base version 1 < required 2";
  cache.Apply(Update("opt", 2, 26.0));
  ASSERT_NE(cache.Get("theo"), nullptr);
  EXPECT_EQ(cache.Get("theo")->value, 26.75);
  EXPECT_EQ(cache.stats().released, 1u);
}

TEST(OrderedCacheTest, ChainedReleases) {
  OrderedCache cache;
  cache.Apply(Derived("c", 1, 3.0, "b", 1));
  cache.Apply(Derived("b", 1, 2.0, "a", 1));
  EXPECT_EQ(cache.stats().held_now, 2u);
  cache.Apply(Update("a", 1, 1.0));
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().held_now, 0u);
}

TEST(OrderedCacheTest, HeldUpdateSupersededWhileWaiting) {
  OrderedCache cache;
  cache.Apply(Derived("theo", 1, 26.75, "opt", 1));
  cache.Apply(Derived("theo", 2, 27.00, "opt", 1));  // also waiting
  cache.Apply(Update("theo", 3, 27.50));             // direct newer version
  cache.Apply(Update("opt", 1, 26.0));
  // Both held updates are now stale relative to version 3.
  EXPECT_EQ(cache.Get("theo")->version, 3u);
}

TEST(OrderedCacheTest, InstallHandlerFiresInOrder) {
  OrderedCache cache;
  std::vector<std::string> installed;
  cache.SetInstallHandler([&](const VersionedUpdate& u) { installed.push_back(u.object); });
  cache.Apply(Derived("theo", 1, 1.0, "opt", 1));
  cache.Apply(Update("opt", 1, 1.0));
  EXPECT_EQ(installed, (std::vector<std::string>{"opt", "theo"}));
}

TEST(OrderedCacheTest, OrderingFieldBytes) {
  EXPECT_EQ(Update("x", 1, 0.0).OrderingFieldBytes(), 8u);
  EXPECT_EQ(Derived("x", 1, 0.0, "y", 1).OrderingFieldBytes(), 24u);
}

// --- prescriptive gate --------------------------------------------------------

net::PayloadPtr Blob(const std::string& tag) {
  return std::make_shared<net::BlobPayload>(tag, 16);
}

TEST(PrescriptiveGateTest, NoPrereqsDeliversImmediately) {
  std::vector<uint64_t> got;
  PrescriptiveGate gate([&](const StreamKey& k, const net::PayloadPtr&) { got.push_back(k.seq); });
  EXPECT_TRUE(gate.Submit({1, 1}, {}, Blob("a")));
  EXPECT_EQ(got, (std::vector<uint64_t>{1}));
}

TEST(PrescriptiveGateTest, WaitsForStatedPrerequisite) {
  std::vector<uint64_t> got;
  PrescriptiveGate gate([&](const StreamKey& k, const net::PayloadPtr&) { got.push_back(k.seq); });
  EXPECT_FALSE(gate.Submit({1, 2}, {{1, 1}}, Blob("response")));
  EXPECT_TRUE(got.empty());
  gate.Submit({1, 1}, {}, Blob("inquiry"));
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(gate.stats().delayed, 1u);
}

TEST(PrescriptiveGateTest, MultiplePrereqsAllRequired) {
  std::vector<uint64_t> got;
  PrescriptiveGate gate([&](const StreamKey& k, const net::PayloadPtr&) { got.push_back(k.stream); });
  gate.Submit({9, 1}, {{1, 1}, {2, 1}}, Blob("joint"));
  gate.Submit({1, 1}, {}, Blob("a"));
  EXPECT_EQ(got.size(), 1u);
  gate.Submit({2, 1}, {}, Blob("b"));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got.back(), 9u);
}

TEST(PrescriptiveGateTest, ChainsRelease) {
  std::vector<uint64_t> got;
  PrescriptiveGate gate([&](const StreamKey& k, const net::PayloadPtr&) { got.push_back(k.seq); });
  gate.Submit({1, 3}, {{1, 2}}, Blob("c"));
  gate.Submit({1, 2}, {{1, 1}}, Blob("b"));
  gate.Submit({1, 1}, {}, Blob("a"));
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(PrescriptiveGateTest, DuplicateSuppressed) {
  int delivered = 0;
  PrescriptiveGate gate([&](const StreamKey&, const net::PayloadPtr&) { ++delivered; });
  gate.Submit({1, 1}, {}, Blob("a"));
  gate.Submit({1, 1}, {}, Blob("a"));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(gate.stats().duplicates, 1u);
}

TEST(PrescriptiveGateTest, OnlyStatedDependenciesDelay) {
  // Messages with no semantic relation are never held back — no false
  // causality by construction.
  int delivered = 0;
  PrescriptiveGate gate([&](const StreamKey&, const net::PayloadPtr&) { ++delivered; });
  for (uint64_t i = 1; i <= 100; ++i) {
    EXPECT_TRUE(gate.Submit({i, 1}, {}, Blob("independent")));
  }
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(gate.stats().delayed, 0u);
}

// --- snapshots -----------------------------------------------------------------

struct SnapshotRig {
  sim::Simulator s{99};
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<SnapshotNode>> nodes;
  std::vector<int64_t> tokens;  // app state: token count per node

  explicit SnapshotRig(size_t n) {
    network = std::make_unique<net::Network>(
        &s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                  sim::Duration::Millis(5)));
    tokens.assign(n, 0);
    std::vector<net::NodeId> ids;
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(static_cast<net::NodeId>(i + 1));
    }
    for (size_t i = 0; i < n; ++i) {
      transports.push_back(std::make_unique<net::Transport>(&s, network.get(), ids[i]));
      nodes.push_back(std::make_unique<SnapshotNode>(
          &s, transports[i].get(), ids,
          [this, i] { return tokens[i]; },
          [this, i](net::NodeId, const net::PayloadPtr&) { ++tokens[i]; }));
    }
  }

  void PassToken(size_t from, size_t to) {
    --tokens[from];
    nodes[from]->SendApp(static_cast<net::NodeId>(to + 1),
                         std::make_shared<net::BlobPayload>("token", 8));
  }
};

TEST(SnapshotTest, QuiescentSystemSnapshotsExactState) {
  SnapshotRig rig(3);
  rig.tokens = {1, 0, 0};
  std::vector<LocalSnapshot> locals;
  for (auto& node : rig.nodes) {
    node->SetCompleteHandler([&](const LocalSnapshot& snap) { locals.push_back(snap); });
  }
  rig.nodes[0]->Initiate(1);
  rig.s.RunFor(sim::Duration::Seconds(2));
  ASSERT_EQ(locals.size(), 3u);
  int64_t total = 0;
  size_t in_flight = 0;
  for (const auto& snap : locals) {
    total += snap.state;
    for (const auto& [channel, msgs] : snap.channel_messages) {
      in_flight += msgs.size();
    }
  }
  EXPECT_EQ(total, 1);
  EXPECT_EQ(in_flight, 0u);
}

TEST(SnapshotTest, CutIsConsistentWhileTokenMoves) {
  // Token conservation: state sum + in-flight tokens == 1 in every snapshot,
  // no matter when the cut is taken relative to token motion.
  SnapshotRig rig(4);
  rig.tokens = {1, 0, 0, 0};
  std::vector<LocalSnapshot> locals;
  for (auto& node : rig.nodes) {
    node->SetCompleteHandler([&](const LocalSnapshot& snap) { locals.push_back(snap); });
  }
  // Keep the token circulating.
  size_t holder = 0;
  sim::PeriodicTimer mover(&rig.s, sim::Duration::Millis(3), [&] {
    if (rig.tokens[holder] > 0) {
      const size_t next = (holder + 1) % 4;
      rig.PassToken(holder, next);
      holder = next;
    }
  });
  mover.Start(sim::Duration::Millis(3));
  rig.s.ScheduleAfter(sim::Duration::Millis(10), [&] { rig.nodes[2]->Initiate(7); });
  rig.s.RunFor(sim::Duration::Seconds(2));
  mover.Stop();

  ASSERT_EQ(locals.size(), 4u);
  int64_t total = 0;
  for (const auto& snap : locals) {
    total += snap.state;
    for (const auto& [channel, msgs] : snap.channel_messages) {
      total += static_cast<int64_t>(msgs.size());
    }
  }
  EXPECT_EQ(total, 1) << "consistent cut must conserve the token";
}

TEST(SnapshotTest, MarkerCostIsQuadraticInNodesPerSnapshot) {
  SnapshotRig rig(5);
  rig.nodes[0]->Initiate(1);
  rig.s.RunFor(sim::Duration::Seconds(2));
  uint64_t markers = 0;
  for (auto& node : rig.nodes) {
    markers += node->markers_sent();
  }
  // Each of 5 nodes sends a marker on each of its 4 outgoing channels.
  EXPECT_EQ(markers, 20u);
}

TEST(SnapshotTest, CollectorAssemblesGlobalCut) {
  SnapshotRig rig(3);
  rig.tokens = {1, 0, 0};
  bool got_global = false;
  SnapshotCollector collector(rig.transports[0].get(), 3, [&](const std::vector<LocalSnapshot>& all) {
    got_global = true;
    EXPECT_EQ(all.size(), 3u);
  });
  for (size_t i = 0; i < 3; ++i) {
    auto* transport = rig.transports[i].get();
    rig.nodes[i]->SetCompleteHandler([transport](const LocalSnapshot& snap) {
      SnapshotCollector::Report(transport, 1, snap);
    });
  }
  rig.nodes[1]->Initiate(2);
  rig.s.RunFor(sim::Duration::Seconds(2));
  EXPECT_TRUE(got_global);
}

}  // namespace
}  // namespace statelv
