// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(TimeTest, DurationArithmetic) {
  EXPECT_EQ(Duration::Millis(3).nanos(), 3'000'000);
  EXPECT_EQ(Duration::Seconds(2) + Duration::Millis(500), Duration::Millis(2500));
  EXPECT_EQ(Duration::Millis(10) - Duration::Millis(4), Duration::Millis(6));
  EXPECT_EQ(Duration::Millis(10) * 3, Duration::Millis(30));
  EXPECT_EQ(Duration::Millis(10) / 2, Duration::Millis(5));
  EXPECT_LT(Duration::Micros(999), Duration::Millis(1));
  EXPECT_DOUBLE_EQ(Duration::Millis(1500).seconds(), 1.5);
}

TEST(TimeTest, TimePointArithmetic) {
  TimePoint t = TimePoint::Zero() + Duration::Seconds(1);
  EXPECT_EQ(t.nanos(), 1'000'000'000);
  EXPECT_EQ(t - TimePoint::Zero(), Duration::Seconds(1));
  EXPECT_EQ((t + Duration::Millis(1)) - t, Duration::Millis(1));
}

TEST(TimeTest, Formatting) {
  EXPECT_EQ(Duration::Seconds(3).ToString(), "3s");
  EXPECT_EQ(Duration::Millis(42).ToString(), "42ms");
  EXPECT_EQ(Duration::Micros(7).ToString(), "7us");
  EXPECT_EQ(Duration::Nanos(5).ToString(), "5ns");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, BoolProbabilityApprox) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child stream differs from parent's subsequent stream.
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(TimePoint(30), [&] { fired.push_back(3); });
  q.Schedule(TimePoint(10), [&] { fired.push_back(1); });
  q.Schedule(TimePoint(20), [&] { fired.push_back(2); });
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeFifoBySchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(TimePoint(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.Empty()) {
    q.PopNext().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(TimePoint(1), [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventId id = q.Schedule(TimePoint(1), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidId) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventId{}));
  EXPECT_FALSE(q.Cancel(EventId{999}));
}

TEST(EventQueueTest, CompactionBoundsHeapUnderCancelChurn) {
  EventQueue q;
  // Retransmit-timer pattern: nearly every scheduled event is cancelled
  // before it fires. The physical heap must stay bounded by the live count,
  // not by the total ever scheduled.
  std::vector<EventId> pending;
  for (int i = 0; i < 100000; ++i) {
    pending.push_back(q.Schedule(TimePoint(i + 1), [] {}));
    if (i % 100 != 0) {
      q.Cancel(pending.back());
    }
  }
  EXPECT_EQ(q.size(), 1000u);
  EXPECT_LT(q.heap_size(), 10000u);
  // Surviving events still fire in time order despite the sweeps.
  TimePoint last = TimePoint::Zero();
  while (!q.Empty()) {
    auto fired = q.PopNext();
    EXPECT_GT(fired.when, last);
    last = fired.when;
  }
}

TEST(EventQueueTest, CancelOfFiredEventIsNoOp) {
  EventQueue q;
  EventId id = q.Schedule(TimePoint(1), [] {});
  q.Schedule(TimePoint(2), [] {});
  (void)q.PopNext();  // fires `id`
  // Cancelling the fired event must not eat the remaining live entry.
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.PopNext().when, TimePoint(2));
}

TEST(SimulatorTest, SelfCancellingTimeoutDoesNotLoseLaterEvents) {
  // Regression: a timeout that fires and then cancels its own handle (the
  // 2PC coordinator's decide path) used to corrupt the live-event count,
  // making the queue report empty while events remained — and a later run
  // would then pop an event scheduled before the artificially advanced
  // clock.
  Simulator s;
  EventId timeout{};
  int fired = 0;
  timeout = s.ScheduleAfter(Duration::Millis(1), [&] { s.Cancel(timeout); });
  s.ScheduleAfter(Duration::Millis(5), [&] { ++fired; });
  s.RunFor(Duration::Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 0u);
  // A second run must start from a consistent clock/queue.
  s.ScheduleAfter(Duration::Millis(1), [&] { ++fired; });
  s.RunFor(Duration::Millis(10));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelAllLeavesEmptyQueue) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.Schedule(TimePoint(i + 1), [] {}));
  }
  for (EventId id : ids) {
    EXPECT_TRUE(q.Cancel(id));
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator s;
  TimePoint seen = TimePoint::Zero();
  s.ScheduleAfter(Duration::Millis(5), [&] { seen = s.now(); });
  s.Run();
  EXPECT_EQ(seen, TimePoint::Zero() + Duration::Millis(5));
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.ScheduleAfter(Duration::Millis(i), [&] { ++count; });
  }
  s.RunUntil(TimePoint::Zero() + Duration::Millis(5));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), TimePoint::Zero() + Duration::Millis(5));
  s.Run();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, RunForAdvancesClockEvenWhenIdle) {
  Simulator s;
  s.RunFor(Duration::Seconds(3));
  EXPECT_EQ(s.now(), TimePoint::Zero() + Duration::Seconds(3));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator s;
  std::vector<int64_t> times;
  s.ScheduleAfter(Duration::Millis(1), [&] {
    times.push_back(s.now().nanos());
    s.ScheduleAfter(Duration::Millis(1), [&] { times.push_back(s.now().nanos()); });
  });
  s.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[1] - times[0], Duration::Millis(1).nanos());
}

TEST(SimulatorTest, RequestStopEndsRun) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.ScheduleAfter(Duration::Millis(i), [&] {
      if (++count == 3) {
        s.RequestStop();
      }
    });
  }
  s.Run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending_events(), 7u);
}

TEST(SimulatorTest, EventLimitGuards) {
  Simulator s;
  s.set_event_limit(100);
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { s.ScheduleAfter(Duration::Millis(1), loop); };
  s.ScheduleAfter(Duration::Millis(1), loop);
  s.Run();
  EXPECT_EQ(s.events_executed(), 100u);
}

TEST(PeriodicTimerTest, FiresRepeatedly) {
  Simulator s;
  int fires = 0;
  PeriodicTimer timer(&s, Duration::Millis(10), [&] { ++fires; });
  timer.Start(Duration::Millis(10));
  s.RunUntil(TimePoint::Zero() + Duration::Millis(55));
  EXPECT_EQ(fires, 5);
  timer.Stop();
  s.Run();
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimerTest, StopFromCallback) {
  Simulator s;
  int fires = 0;
  PeriodicTimer timer(&s, Duration::Millis(10), [&] {
    if (++fires == 3) {
      timer.Stop();
    }
  });
  timer.Start(Duration::Zero());
  s.Run();
  EXPECT_EQ(fires, 3);
}

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry registry;
  registry.GetCounter("x").Add(3);
  registry.GetCounter("x").Add(4);
  EXPECT_EQ(registry.GetCounter("x").value(), 7);
  EXPECT_NE(registry.FindCounter("x"), nullptr);
  EXPECT_EQ(registry.FindCounter("y"), nullptr);
}

TEST(MetricsTest, GaugeTracksPeak) {
  Gauge g;
  g.Set(5);
  g.Add(10);
  g.Add(-12);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 15);
}

TEST(MetricsTest, HistogramStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_NEAR(h.Quantile(0.5), 50.5, 1.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.1);
  EXPECT_NEAR(h.stddev(), 29.0, 0.5);
}

TEST(MetricsTest, HistogramEmpty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace sim
