// Tests for the metrics registry (counters, gauges, histograms, labeled
// lookup, Report/ReportJson), the trace filter, and the span recorder — the
// observability surface the benches and fuzz_chaos --trace rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/span.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace sim {
namespace {

TEST(HistogramTest, EmptyHistogramSentinels) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, ExactQuantilesBelowReservoirBound) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.0);
}

// The quantile cache must be invalidated by Record: a quantile read between
// records may not pin later reads to the stale sorted view.
TEST(HistogramTest, QuantileCacheInvalidatedByRecord) {
  Histogram h;
  h.Record(1.0);
  h.Record(2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);  // populates the cache
  h.Record(1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
}

// Welford regression: mean around 1e9 with unit-scale deviations. The old
// sum-of-squares formula loses all significant digits here (sum_sq and
// sum^2/n agree to ~18 digits) and returned garbage, often 0 or NaN.
TEST(HistogramTest, StddevStableForLargeMeanSmallVariance) {
  Histogram h;
  const double base = 1e9;
  // 1000 samples alternating base-1, base+1: mean = base, stddev ~ 1.0005
  // (sample stddev of a +-1 series).
  for (int i = 0; i < 1000; ++i) {
    h.Record(base + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  EXPECT_DOUBLE_EQ(h.mean(), base);
  EXPECT_NEAR(h.stddev(), 1.0, 1e-3);
  EXPECT_FALSE(std::isnan(h.stddev()));
}

TEST(HistogramTest, ReservoirPathPastMaxSamples) {
  // kMaxSamples is 1<<20; push well past it. Count/sum/min/max stay exact;
  // quantiles come from the reservoir and must stay within the value range
  // and roughly ordered.
  Histogram h;
  const int n = (1 << 20) + (1 << 18);
  for (int i = 0; i < n; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), n);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(n - 1));
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(n - 1) / 2.0);
  const double p10 = h.Quantile(0.10);
  const double p50 = h.Quantile(0.50);
  const double p90 = h.Quantile(0.90);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p90);
  // Uniform input: each quantile should land near its exact position. The
  // reservoir holds 2^20 of 1.25*2^20 samples, so sampling error is small.
  EXPECT_NEAR(p50 / static_cast<double>(n), 0.50, 0.02);
  EXPECT_NEAR(p90 / static_cast<double>(n), 0.90, 0.02);
}

TEST(GaugeTest, TimedMeanCoversFinalInterval) {
  // Level 10 for 1s, then 20 for 3s: time-weighted mean = (10*1 + 20*3)/4.
  Gauge g;
  g.SetAt(10, TimePoint(0));
  g.SetAt(20, TimePoint(Duration::Seconds(1).nanos()));
  g.FinalizeAt(TimePoint(Duration::Seconds(4).nanos()));
  EXPECT_DOUBLE_EQ(g.weighted_mean(), 17.5);
  EXPECT_EQ(g.value(), 20);
  EXPECT_EQ(g.peak(), 20);
}

TEST(GaugeTest, MissingFinalizeDropsTailInterval) {
  // Without FinalizeAt the 3s tail at level 20 is silently dropped and the
  // mean reports only the closed 1s interval — the bug FinalizeAt fixes.
  Gauge g;
  g.SetAt(10, TimePoint(0));
  g.SetAt(20, TimePoint(Duration::Seconds(1).nanos()));
  EXPECT_DOUBLE_EQ(g.weighted_mean(), 10.0);
}

TEST(GaugeTest, FinalizeIsIdempotentAndExtendsTail) {
  Gauge g;
  g.SetAt(10, TimePoint(0));
  g.FinalizeAt(TimePoint(Duration::Seconds(1).nanos()));
  EXPECT_DOUBLE_EQ(g.weighted_mean(), 10.0);
  // A later finalize extends the tail at the current level.
  g.FinalizeAt(TimePoint(Duration::Seconds(2).nanos()));
  EXPECT_DOUBLE_EQ(g.weighted_mean(), 10.0);
}

TEST(RegistryTest, LabeledNameCanonicalizesKeyOrder) {
  const std::string a =
      MetricsRegistry::LabeledName("m", {{"b", "2"}, {"a", "1"}});
  const std::string b =
      MetricsRegistry::LabeledName("m", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, "m{a=1,b=2}");
  EXPECT_EQ(a, b);
  EXPECT_EQ(MetricsRegistry::LabeledName("m", {}), "m");

  MetricsRegistry registry;
  registry.GetCounter("hits", {{"node", "3"}, {"layer", "causal"}}).Add(7);
  const Counter* found = registry.FindCounter("hits{layer=causal,node=3}");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 7);
}

TEST(RegistryTest, ReportRendersLongNamesInFull) {
  // The old fixed 256-byte snprintf buffer truncated long (labeled) names;
  // stream formatting must render them completely.
  MetricsRegistry registry;
  const std::string long_name(300, 'x');
  registry.GetCounter(long_name).Add(1);
  const std::string report = registry.Report();
  EXPECT_NE(report.find(long_name), std::string::npos);
}

TEST(RegistryTest, ReportJsonIsDeterministicAndComplete) {
  auto build = [] {
    MetricsRegistry registry;
    registry.GetCounter("sends", {{"node", "0"}}).Add(3);
    Gauge& g = registry.GetGauge("occupancy");
    g.SetAt(5, TimePoint(0));
    g.FinalizeAt(TimePoint(Duration::Seconds(2).nanos()));
    Histogram& h = registry.GetHistogram("delay_ms");
    h.Record(1.5);
    h.Record(2.5);
    return registry.ReportJson();
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"sends{node=0}\""), std::string::npos);
  EXPECT_NE(a.find("\"gauges\""), std::string::npos);
  EXPECT_NE(a.find("\"occupancy\""), std::string::npos);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
  EXPECT_NE(a.find("\"delay_ms\""), std::string::npos);
}

TEST(RegistryTest, ReportJsonEscapesMetricNames) {
  // Quotes and backslashes were always escaped; control characters must come
  // out as their short escapes (or \u00XX), never raw — a raw newline or tab
  // in a label makes the whole document unparseable.
  MetricsRegistry registry;
  registry.GetCounter("quote\"and\\slash").Add(1);
  registry.GetCounter(std::string("tab\tnl\ncr\rbs\bff\f")).Add(2);
  registry.GetCounter(std::string("nul") + '\x01' + "unit" + '\x1f').Add(3);
  const std::string json = registry.ReportJson();
  EXPECT_NE(json.find("\"quote\\\"and\\\\slash\""), std::string::npos);
  EXPECT_NE(json.find("\"tab\\tnl\\ncr\\rbs\\bff\\f\""), std::string::npos);
  EXPECT_NE(json.find("\"nul\\u0001unit\\u001f\""), std::string::npos);
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20) << "raw control character in JSON output";
  }
}

TEST(TraceTest, FilterByCategoryAndActor) {
  Trace trace;
  trace.set_enabled(true);
  trace.Record(TimePoint(1), 0, "deliver", "a");
  trace.Record(TimePoint(2), 1, "deliver", "b");
  trace.Record(TimePoint(3), 0, "send", "c");
  trace.Record(TimePoint(4), 0, "deliver", "d");

  const auto all_deliver = trace.Filter("deliver");
  ASSERT_EQ(all_deliver.size(), 3u);
  EXPECT_EQ(all_deliver[0].detail, "a");
  EXPECT_EQ(all_deliver[2].detail, "d");

  const auto actor0 = trace.Filter("deliver", 0);
  ASSERT_EQ(actor0.size(), 2u);
  EXPECT_EQ(actor0[0].detail, "a");
  EXPECT_EQ(actor0[1].detail, "d");

  EXPECT_TRUE(trace.Filter("deliver", 9).empty());
  EXPECT_TRUE(trace.Filter("nope").empty());
}

TEST(SpanRecorderTest, DisabledRecorderIsNoOp) {
  SpanRecorder spans;
  spans.Record(1, 0, TimePoint(0), SpanEvent::kSend, "member");
  EXPECT_EQ(spans.total_recorded(), 0u);
  EXPECT_TRUE(spans.records().empty());
}

TEST(SpanRecorderTest, LifecycleOrderingForOneKey) {
  SpanRecorder spans;
  spans.set_enabled(true);
  const uint64_t key = 42;
  spans.Record(key, 0, TimePoint(1), SpanEvent::kSend, "member", "causal");
  spans.Record(key, 0, TimePoint(2), SpanEvent::kStamp, "causal");
  spans.Record(7, 1, TimePoint(3), SpanEvent::kSend, "member");  // other key
  spans.Record(key, 1, TimePoint(4), SpanEvent::kEnter, "causal", "causal-gap");
  spans.Record(key, 1, TimePoint(5), SpanEvent::kDeliver, "causal");
  spans.Record(key, 1, TimePoint(6), SpanEvent::kStable, "stability");

  const auto timeline = spans.ForKey(key);
  ASSERT_EQ(timeline.size(), 5u);
  EXPECT_EQ(timeline[0].event, SpanEvent::kSend);
  EXPECT_EQ(timeline[1].event, SpanEvent::kStamp);
  EXPECT_EQ(timeline[2].event, SpanEvent::kEnter);
  EXPECT_EQ(timeline[3].event, SpanEvent::kDeliver);
  EXPECT_EQ(timeline[4].event, SpanEvent::kStable);
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].when.nanos(), timeline[i].when.nanos());
  }

  // max_events keeps the most recent tail.
  const auto tail = spans.ForKey(key, 2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].event, SpanEvent::kDeliver);
  EXPECT_EQ(tail[1].event, SpanEvent::kStable);

  const std::string rendered = SpanRecorder::Render(timeline);
  EXPECT_NE(rendered.find("send"), std::string::npos);
  EXPECT_NE(rendered.find("causal-gap"), std::string::npos);
}

TEST(SpanRecorderTest, RingEvictsOldestAtCapacity) {
  SpanRecorder spans;
  spans.set_enabled(true);
  spans.set_capacity(4);
  for (uint64_t i = 0; i < 10; ++i) {
    spans.Record(i, 0, TimePoint(static_cast<int64_t>(i)), SpanEvent::kSend, "member");
  }
  EXPECT_EQ(spans.total_recorded(), 10u);
  EXPECT_EQ(spans.records().size(), 4u);
  EXPECT_EQ(spans.evicted(), 6u);
  EXPECT_TRUE(spans.ForKey(0).empty());   // evicted
  EXPECT_EQ(spans.ForKey(9).size(), 1u);  // newest retained
}

}  // namespace
}  // namespace sim
