// Protocol tests for the CATOCS stack: causal delivery (including the
// paper's Figure 1 pattern), total order (sequencer and token), stability
// and buffering, the footnote-4 piggyback variant, and randomized property
// sweeps over group size / jitter / traffic.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/catocs/causal_buffer.h"
#include "src/catocs/group.h"
#include "src/catocs/pipeline_stats.h"
#include "src/catocs/stability.h"
#include "src/net/payload.h"
#include "src/sim/simulator.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(const std::string& tag, size_t size = 64) {
  return std::make_shared<net::BlobPayload>(tag, size);
}

std::string TagOf(const Delivery& d) {
  const auto* blob = net::PayloadCast<net::BlobPayload>(d.payload());
  return blob ? blob->tag() : "?";
}

// --- Figure 1: basic causal delivery ----------------------------------------

// Q sends m1; P receives m1 and then sends m2; m1 must precede m2 at every
// member. m3/m4 sent concurrently by R and Q have no constraint.
TEST(CausalMulticastTest, Figure1HappensBeforeRespected) {
  sim::Simulator s(42);
  FabricConfig cfg;
  cfg.num_members = 3;  // ids: 1=P, 2=Q, 3=R
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();

  // P resends as a *reaction* to m1 (true causal dependency).
  fabric.member(0).SetDeliveryHandler([&](const Delivery& d) {
    static bool sent_m2 = false;
    fabric.records();  // keep linkage simple; recording replaced below
    if (TagOf(d) == "m1" && !sent_m2) {
      sent_m2 = true;
      fabric.member(0).CausalSend(Blob("m2"));
    }
  });
  // Re-install recording on members 1 and 2 only; member 0 got the reactive
  // handler above, so collect deliveries at members 1 and 2.
  std::vector<std::pair<MemberId, std::string>> got;
  for (size_t i = 1; i < 3; ++i) {
    const MemberId id = GroupFabric::IdOf(i);
    fabric.member(i).SetDeliveryHandler(
        [&got, id](const Delivery& d) { got.emplace_back(id, TagOf(d)); });
  }
  fabric.StartAll();

  s.ScheduleAfter(sim::Duration::Millis(1), [&] { fabric.member(1).CausalSend(Blob("m1")); });
  s.RunFor(sim::Duration::Seconds(2));

  // At member 3 (R): m1 before m2.
  std::vector<std::string> at_r;
  for (const auto& [member, tag] : got) {
    if (member == 3) {
      at_r.push_back(tag);
    }
  }
  ASSERT_EQ(at_r.size(), 2u);
  EXPECT_EQ(at_r[0], "m1");
  EXPECT_EQ(at_r[1], "m2");
}

TEST(CausalMulticastTest, SelfDeliveryIsImmediate) {
  sim::Simulator s(1);
  FabricConfig cfg;
  cfg.num_members = 3;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { fabric.member(0).CausalSend(Blob("a")); });
  s.RunFor(sim::Duration::Millis(1));
  // At t=1ms the sender itself has delivered; nobody else can have.
  ASSERT_EQ(fabric.records().size(), 1u);
  EXPECT_EQ(fabric.records()[0].at, 1u);
}

TEST(CausalMulticastTest, ChainAcrossThreeMembers) {
  // m1 (member 0) -> m2 (member 1, after m1) -> m3 (member 2, after m2).
  sim::Simulator s(7);
  FabricConfig cfg;
  cfg.num_members = 4;
  GroupFabric fabric(&s, cfg);
  std::vector<std::string> at_last;
  fabric.member(1).SetDeliveryHandler([&](const Delivery& d) {
    if (TagOf(d) == "m1") {
      fabric.member(1).CausalSend(Blob("m2"));
    }
  });
  fabric.member(2).SetDeliveryHandler([&](const Delivery& d) {
    if (TagOf(d) == "m2") {
      fabric.member(2).CausalSend(Blob("m3"));
    }
  });
  fabric.member(3).SetDeliveryHandler([&](const Delivery& d) { at_last.push_back(TagOf(d)); });
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { fabric.member(0).CausalSend(Blob("m1")); });
  s.RunFor(sim::Duration::Seconds(2));
  ASSERT_EQ(at_last.size(), 3u);
  EXPECT_EQ(at_last, (std::vector<std::string>{"m1", "m2", "m3"}));
}

// Randomized property: under reactive traffic with jitter and loss, causal
// delivery, FIFO, and (for total mode) agreement always hold.
struct PropertyParams {
  uint32_t members;
  double drop;
  OrderingMode mode;
  TotalOrderMode total_mode;
  uint64_t seed;
};

class OrderingPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(OrderingPropertyTest, InvariantsHold) {
  const PropertyParams param = GetParam();
  sim::Simulator s(param.seed);
  FabricConfig cfg;
  cfg.num_members = param.members;
  cfg.network.drop_probability = param.drop;
  cfg.group.total_order_mode = param.total_mode;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();

  // Drive random traffic: each member sends on a random schedule; some sends
  // are reactions to deliveries (creating causal chains).
  for (size_t i = 0; i < fabric.size(); ++i) {
    for (int k = 0; k < 10; ++k) {
      const auto delay = sim::Duration::Millis(static_cast<int64_t>(1 + s.rng().NextBelow(200)));
      s.ScheduleAfter(delay, [&fabric, i, param] {
        fabric.member(i).Send(param.mode, Blob("t"));
      });
    }
  }
  s.RunFor(sim::Duration::Seconds(20));

  const auto& records = fabric.records();
  const size_t expected = fabric.size() * 10 * fabric.size();  // every member delivers every send
  EXPECT_EQ(records.size(), expected);
  EXPECT_EQ(CheckCausalDeliveryInvariant(records), "");
  EXPECT_EQ(CheckFifoInvariant(records), "");
  if (param.mode == OrderingMode::kTotal) {
    EXPECT_EQ(CheckTotalOrderInvariant(records), "");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderingPropertyTest,
    ::testing::Values(
        PropertyParams{3, 0.0, OrderingMode::kCausal, TotalOrderMode::kSequencer, 101},
        PropertyParams{5, 0.0, OrderingMode::kCausal, TotalOrderMode::kSequencer, 102},
        PropertyParams{8, 0.1, OrderingMode::kCausal, TotalOrderMode::kSequencer, 103},
        PropertyParams{12, 0.2, OrderingMode::kCausal, TotalOrderMode::kSequencer, 104},
        PropertyParams{3, 0.0, OrderingMode::kTotal, TotalOrderMode::kSequencer, 105},
        PropertyParams{6, 0.1, OrderingMode::kTotal, TotalOrderMode::kSequencer, 106},
        PropertyParams{4, 0.0, OrderingMode::kTotal, TotalOrderMode::kToken, 107},
        PropertyParams{6, 0.1, OrderingMode::kTotal, TotalOrderMode::kToken, 108}));

// Reactive-chain property: every delivery triggers a reply with small
// probability, generating deep causal chains; invariants must still hold.
TEST(CausalMulticastTest, ReactiveChainsPreserveCausality) {
  sim::Simulator s(555);
  FabricConfig cfg;
  cfg.num_members = 6;
  cfg.network.drop_probability = 0.05;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  int budget = 200;  // cap total reactive sends
  std::vector<GroupFabric::Record> records;
  for (size_t i = 0; i < fabric.size(); ++i) {
    fabric.member(i).SetDeliveryHandler([&, i](const Delivery& d) {
      records.push_back({GroupFabric::IdOf(i), d});
      if (budget > 0 && s.rng().NextBool(0.3)) {
        --budget;
        fabric.member(i).CausalSend(Blob("r"));
      }
    });
  }
  fabric.StartAll();
  for (int k = 0; k < 10; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + k), [&fabric, k] {
      fabric.member(k % 6).CausalSend(Blob("seed"));
    });
  }
  s.RunFor(sim::Duration::Seconds(30));
  EXPECT_EQ(CheckCausalDeliveryInvariant(records), "");
  EXPECT_EQ(CheckFifoInvariant(records), "");
}

// --- total order -------------------------------------------------------------

TEST(TotalOrderTest, ConcurrentSendsAgreeEverywhere) {
  sim::Simulator s(11);
  FabricConfig cfg;
  cfg.num_members = 5;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  // All five members send "simultaneously" — concurrent messages, which
  // causal multicast would not order but abcast must.
  for (size_t i = 0; i < 5; ++i) {
    s.ScheduleAfter(sim::Duration::Millis(1), [&fabric, i] {
      fabric.member(i).TotalSend(Blob("c" + std::to_string(i)));
    });
  }
  s.RunFor(sim::Duration::Seconds(5));
  const auto& records = fabric.records();
  EXPECT_EQ(records.size(), 25u);
  EXPECT_EQ(CheckTotalOrderInvariant(records), "");
  // Identical delivery sequence at each member.
  auto reference = fabric.DeliveryOrderAt(0);
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(fabric.DeliveryOrderAt(i), reference) << "member " << i;
  }
}

TEST(TotalOrderTest, TokenModeAgreesEverywhere) {
  sim::Simulator s(13);
  FabricConfig cfg;
  cfg.num_members = 4;
  cfg.group.total_order_mode = TotalOrderMode::kToken;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (size_t i = 0; i < 4; ++i) {
    for (int k = 0; k < 5; ++k) {
      s.ScheduleAfter(sim::Duration::Millis(1 + 7 * k), [&fabric, i] {
        fabric.member(i).TotalSend(Blob("x"));
      });
    }
  }
  s.RunFor(sim::Duration::Seconds(10));
  EXPECT_EQ(fabric.records().size(), 4u * 5u * 4u);
  EXPECT_EQ(CheckTotalOrderInvariant(fabric.records()), "");
  auto reference = fabric.DeliveryOrderAt(0);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(fabric.DeliveryOrderAt(i), reference);
  }
}

TEST(TotalOrderTest, TotalIsAlsoCausal) {
  sim::Simulator s(17);
  FabricConfig cfg;
  cfg.num_members = 4;
  GroupFabric fabric(&s, cfg);
  std::vector<GroupFabric::Record> records;
  for (size_t i = 0; i < fabric.size(); ++i) {
    fabric.member(i).SetDeliveryHandler([&records, i](const Delivery& d) {
      records.push_back({GroupFabric::IdOf(i), d});
    });
  }
  // Member 1 reacts to member 0's message.
  auto base = fabric.member(1).stats().app_delivered;
  (void)base;
  fabric.member(1).SetDeliveryHandler([&](const Delivery& d) {
    records.push_back({2, d});
    if (TagOf(d) == "first") {
      fabric.member(1).TotalSend(Blob("second"));
    }
  });
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { fabric.member(0).TotalSend(Blob("first")); });
  s.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(CheckCausalDeliveryInvariant(records), "");
  EXPECT_EQ(CheckTotalOrderInvariant(records), "");
  // "first" precedes "second" at every member.
  for (size_t i = 0; i < 4; ++i) {
    std::vector<std::string> tags;
    for (const auto& r : records) {
      if (r.at == GroupFabric::IdOf(i)) {
        tags.push_back(TagOf(r.delivery));
      }
    }
    ASSERT_EQ(tags.size(), 2u) << "member " << i;
    EXPECT_EQ(tags[0], "first");
    EXPECT_EQ(tags[1], "second");
  }
}

// --- unordered mode ----------------------------------------------------------

TEST(UnorderedTest, DeliversWithoutGuarantees) {
  sim::Simulator s(19);
  FabricConfig cfg;
  cfg.num_members = 3;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (int k = 0; k < 20; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1), [&] {
      fabric.member(0).Send(OrderingMode::kUnordered, Blob("u"));
    });
  }
  s.RunFor(sim::Duration::Seconds(2));
  EXPECT_EQ(fabric.records().size(), 60u);
  // Unordered messages are not buffered for stability.
  EXPECT_EQ(fabric.member(0).buffered_messages(), 0u);
}

// --- stability / buffering ----------------------------------------------------

TEST(StabilityTest, BuffersDrainOnceStable) {
  sim::Simulator s(23);
  FabricConfig cfg;
  cfg.num_members = 4;
  cfg.group.ack_gossip_interval = sim::Duration::Millis(20);
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (int k = 0; k < 10; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + k), [&fabric, k] {
      fabric.member(k % 4).CausalSend(Blob("m"));
    });
  }
  s.RunFor(sim::Duration::Seconds(5));
  // All messages delivered everywhere and gossip has run: buffers empty.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fabric.member(i).buffered_messages(), 0u) << "member " << i;
    EXPECT_GT(fabric.member(i).peak_buffered_messages(), 0u);
  }
}

TEST(StabilityTest, BuffersGrowWhileAMemberLags) {
  sim::Simulator s(29);
  FabricConfig cfg;
  cfg.num_members = 3;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  // Member 2 is unreachable (down): messages cannot become stable.
  fabric.network().SetNodeUp(GroupFabric::IdOf(2), false);
  for (int k = 0; k < 20; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + k), [&fabric] {
      fabric.member(0).CausalSend(Blob("m"));
    });
  }
  s.RunFor(sim::Duration::Seconds(2));
  EXPECT_EQ(fabric.member(0).buffered_messages(), 20u);
  EXPECT_EQ(fabric.member(1).buffered_messages(), 20u);
}

TEST(StabilityTest, TrackerMinimumSemantics) {
  StabilityTracker tracker;
  tracker.SetMembers({1, 2, 3});
  auto msg = std::make_shared<GroupData>(1, MessageId{1, 1}, OrderingMode::kCausal, VectorClock{},
                                         Blob("x"), sim::TimePoint::Zero());
  tracker.AddToBuffer(msg);
  EXPECT_EQ(tracker.buffered_count(), 1u);
  // Only two of three members reported: nothing stable.
  tracker.UpdateMemberVector(1, {{1, 1}});
  tracker.UpdateMemberVector(2, {{1, 1}});
  tracker.Prune();
  EXPECT_EQ(tracker.buffered_count(), 1u);
  tracker.UpdateMemberVector(3, {{1, 1}});
  tracker.Prune();
  EXPECT_EQ(tracker.buffered_count(), 0u);
}

TEST(StabilityTest, RemovingMemberUnblocksStability) {
  StabilityTracker tracker;
  tracker.SetMembers({1, 2, 3});
  auto msg = std::make_shared<GroupData>(1, MessageId{1, 1}, OrderingMode::kCausal, VectorClock{},
                                         Blob("x"), sim::TimePoint::Zero());
  tracker.AddToBuffer(msg);
  tracker.UpdateMemberVector(1, {{1, 1}});
  tracker.UpdateMemberVector(2, {{1, 1}});
  tracker.Prune();
  EXPECT_EQ(tracker.buffered_count(), 1u);  // member 3 silent
  tracker.SetMembers({1, 2});               // member 3 failed
  tracker.Prune();
  EXPECT_EQ(tracker.buffered_count(), 0u);
}

// --- footnote-4 piggyback variant ---------------------------------------------

TEST(PiggybackTest, DeliversCausallyAndCarriesPredecessors) {
  sim::Simulator s(31);
  FabricConfig cfg;
  cfg.num_members = 4;
  cfg.group.piggyback_causal = true;
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();
  for (int k = 0; k < 12; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + 3 * k), [&fabric, k] {
      fabric.member(k % 4).CausalSend(Blob("m"));
    });
  }
  s.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(fabric.records().size(), 12u * 4u);
  EXPECT_EQ(CheckCausalDeliveryInvariant(fabric.records()), "");
  uint64_t carried = 0;
  for (size_t i = 0; i < 4; ++i) {
    carried += fabric.member(i).stats().piggyback_msgs_carried;
  }
  EXPECT_GT(carried, 0u) << "the variant should actually piggyback something";
}

// --- stats -------------------------------------------------------------------

TEST(StatsTest, DelayedDeliveriesCounted) {
  sim::Simulator s(37);
  FabricConfig cfg;
  cfg.num_members = 3;
  // Strong jitter: reordering between two causally related messages is
  // nearly certain across many trials.
  cfg.latency_lo = sim::Duration::Millis(1);
  cfg.latency_hi = sim::Duration::Millis(50);
  GroupFabric fabric(&s, cfg);
  fabric.member(1).SetDeliveryHandler([&](const Delivery& d) {
    if (TagOf(d) == "a") {
      fabric.member(1).CausalSend(Blob("b"));
    }
  });
  fabric.StartAll();
  for (int k = 0; k < 30; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + 100 * k), [&fabric] {
      fabric.member(0).CausalSend(Blob("a"));
    });
  }
  s.RunFor(sim::Duration::Seconds(10));
  // Member 2 should have seen at least one delayed (held-back) delivery.
  EXPECT_GT(fabric.member(2).stats().delayed_deliveries, 0u);
  EXPECT_GT(fabric.member(2).stats().total_causal_delay, sim::Duration::Zero());
}

TEST(StatsTest, HeaderBytesAccounted) {
  sim::Simulator s(41);
  FabricConfig cfg;
  cfg.num_members = 5;
  GroupFabric fabric(&s, cfg);
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { fabric.member(0).CausalSend(Blob("m")); });
  s.RunFor(sim::Duration::Seconds(1));
  // One causal send to 4 peers, each copy carrying VT + acks headers.
  EXPECT_GT(fabric.member(0).stats().ordering_header_bytes, 4u * VectorClock::kEntryBytes);
}

// Observability: with the flag on, every wait point a message crosses is
// attributed in PipelineStats and the span recorder sees the lifecycle; with
// the flag off (default) the same run records nothing.
class ObservabilityTest : public ::testing::TestWithParam<CausalBufferKind> {};

TEST_P(ObservabilityTest, PipelineStatsAttributeHolds) {
  sim::Simulator s(77);
  FabricConfig cfg;
  cfg.num_members = 4;
  cfg.group.causal_buffer = GetParam();
  cfg.group.observability = true;
  GroupFabric fabric(&s, cfg);
  fabric.StartAll();
  s.spans().set_enabled(true);
  for (int k = 0; k < 20; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + 5 * k), [&fabric, k] {
      fabric.member(static_cast<size_t>(k) % 4).Send(
          k % 3 == 0 ? OrderingMode::kTotal : OrderingMode::kCausal, Blob("m"));
    });
  }
  s.RunFor(sim::Duration::Seconds(5));

  PipelineStats merged;
  for (size_t i = 0; i < fabric.size(); ++i) {
    merged.Merge(fabric.member(i).pipeline_stats());
  }
  // Every ordered message enters the causal layer and the retention buffer
  // at every member; at quiescence everything has been released again.
  EXPECT_GT(merged.reason(HoldReason::kCausalGap).entered, 0u);
  EXPECT_GT(merged.reason(HoldReason::kStability).entered, 0u);
  EXPECT_GT(merged.reason(HoldReason::kOrderAssign).entered, 0u);
  EXPECT_EQ(merged.TotalEntered(), merged.TotalReleased());
  EXPECT_GT(merged.TotalHold(), sim::Duration::Zero());
  EXPECT_FALSE(merged.Summary().empty());

  // The span recorder saw sends, layer entries, and stability releases.
  EXPECT_GT(s.spans().total_recorded(), 0u);
  bool saw_stable = false;
  for (const auto& record : s.spans().records()) {
    if (record.event == sim::SpanEvent::kStable) {
      saw_stable = true;
      break;
    }
  }
  EXPECT_TRUE(saw_stable);

  // Labeled export lands under the member's node label.
  merged.ExportTo(s.metrics(), "all");
  const sim::Counter* entered = s.metrics().FindCounter(
      sim::MetricsRegistry::LabeledName("pipeline_entered", {{"layer", "causal"},
                                                             {"node", "all"},
                                                             {"reason", "causal-gap"}}));
  ASSERT_NE(entered, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(entered->value()),
            merged.reason(HoldReason::kCausalGap).entered);
}

TEST_P(ObservabilityTest, DisabledByDefaultRecordsNothing) {
  sim::Simulator s(77);
  FabricConfig cfg;
  cfg.num_members = 4;
  cfg.group.causal_buffer = GetParam();
  GroupFabric fabric(&s, cfg);
  fabric.StartAll();
  for (int k = 0; k < 20; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(1 + 5 * k), [&fabric, k] {
      fabric.member(static_cast<size_t>(k) % 4).Send(
          k % 3 == 0 ? OrderingMode::kTotal : OrderingMode::kCausal, Blob("m"));
    });
  }
  s.RunFor(sim::Duration::Seconds(5));
  for (size_t i = 0; i < fabric.size(); ++i) {
    EXPECT_EQ(fabric.member(i).pipeline_stats().TotalEntered(), 0u);
  }
  EXPECT_EQ(s.spans().total_recorded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BufferStrategies, ObservabilityTest,
                         ::testing::Values(CausalBufferKind::kFullVector,
                                           CausalBufferKind::kHybrid));

}  // namespace
}  // namespace catocs
