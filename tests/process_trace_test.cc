// Tests for the Process abstraction (crash/recover semantics, stale-closure
// suppression), the Trace recorder, and transport behavior across partitions
// and node restarts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/net/transport.h"
#include "src/sim/process.h"
#include "src/sim/simulator.h"

namespace {

class CountingProcess : public sim::Process {
 public:
  CountingProcess(sim::Simulator* s, sim::ProcessId id) : Process(s, id, "counter") {}

  void ScheduleTick(sim::Duration delay) {
    ScheduleIfAlive(delay, [this] { ++ticks; });
  }

  int ticks = 0;
  int crashes_seen = 0;
  int recoveries_seen = 0;

 protected:
  void OnCrash() override { ++crashes_seen; }
  void OnRecover() override { ++recoveries_seen; }
};

TEST(ProcessTest, ScheduledWorkRunsWhileAlive) {
  sim::Simulator s(1);
  CountingProcess p(&s, 1);
  p.ScheduleTick(sim::Duration::Millis(1));
  p.ScheduleTick(sim::Duration::Millis(2));
  s.Run();
  EXPECT_EQ(p.ticks, 2);
}

TEST(ProcessTest, CrashSuppressesPendingWork) {
  sim::Simulator s(2);
  CountingProcess p(&s, 1);
  p.ScheduleTick(sim::Duration::Millis(10));
  s.ScheduleAfter(sim::Duration::Millis(5), [&] { p.Crash(); });
  s.Run();
  EXPECT_EQ(p.ticks, 0);
  EXPECT_TRUE(p.crashed());
  EXPECT_EQ(p.crashes_seen, 1);
}

TEST(ProcessTest, WorkScheduledBeforeCrashStaysDeadAfterRecovery) {
  // A closure from a previous incarnation must not fire after recovery: the
  // process restarted with fresh state.
  sim::Simulator s(3);
  CountingProcess p(&s, 1);
  p.ScheduleTick(sim::Duration::Millis(10));
  s.ScheduleAfter(sim::Duration::Millis(2), [&] { p.Crash(); });
  s.ScheduleAfter(sim::Duration::Millis(5), [&] { p.Recover(); });
  s.Run();
  EXPECT_EQ(p.ticks, 0) << "stale incarnation closure must not run";
  EXPECT_FALSE(p.crashed());
  EXPECT_EQ(p.recoveries_seen, 1);
  // New incarnation schedules work normally.
  p.ScheduleTick(sim::Duration::Millis(1));
  s.Run();
  EXPECT_EQ(p.ticks, 1);
}

TEST(ProcessTest, EpochSeparatesIncarnationsAcrossRepeatedCrashes) {
  // Interleave stale and fresh closures across two crash/recover cycles: only
  // closures scheduled by the incarnation that is alive when they fire run.
  sim::Simulator s(5);
  CountingProcess p(&s, 1);
  p.ScheduleTick(sim::Duration::Millis(10));  // incarnation 0 — stale
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { p.Crash(); });
  s.ScheduleAfter(sim::Duration::Millis(2), [&] {
    p.Recover();
    p.ScheduleTick(sim::Duration::Millis(10));  // incarnation 1 — stale too
    p.ScheduleTick(sim::Duration::Millis(1));   // incarnation 1 — fires at 3ms
  });
  s.ScheduleAfter(sim::Duration::Millis(4), [&] { p.Crash(); });
  s.ScheduleAfter(sim::Duration::Millis(6), [&] {
    p.Recover();
    p.ScheduleTick(sim::Duration::Millis(1));  // incarnation 2 — fires at 7ms
  });
  s.Run();
  EXPECT_EQ(p.ticks, 2) << "both 10ms closures straddle a crash and must stay dead";
  EXPECT_EQ(p.crashes_seen, 2);
  EXPECT_EQ(p.recoveries_seen, 2);
}

TEST(ProcessTest, DoubleCrashIsIdempotent) {
  sim::Simulator s(4);
  CountingProcess p(&s, 1);
  p.Crash();
  p.Crash();
  EXPECT_EQ(p.crashes_seen, 1);
  p.Recover();
  p.Recover();
  EXPECT_EQ(p.recoveries_seen, 1);
}

TEST(TraceTest, RecordsOnlyWhenEnabled) {
  sim::Simulator s(5);
  s.trace().Record(s.now(), 1, "cat", "ignored: disabled");
  EXPECT_TRUE(s.trace().entries().empty());
  s.trace().set_enabled(true);
  s.trace().Record(s.now(), 1, "deliver", "m1");
  s.trace().Record(s.now(), 2, "deliver", "m2");
  s.trace().Record(s.now(), 1, "send", "m3");
  EXPECT_EQ(s.trace().entries().size(), 3u);
  EXPECT_EQ(s.trace().Filter("deliver").size(), 2u);
  EXPECT_EQ(s.trace().Filter("deliver", 1).size(), 1u);
  EXPECT_NE(s.trace().ToString().find("m3"), std::string::npos);
}

TEST(TraceTest, ProcessEventsLandInTrace) {
  sim::Simulator s(6);
  s.trace().set_enabled(true);
  CountingProcess p(&s, 7);
  p.Crash();
  p.Recover();
  EXPECT_EQ(s.trace().Filter("crash", 7).size(), 1u);
  EXPECT_EQ(s.trace().Filter("recover", 7).size(), 1u);
}

// --- transport across partitions -------------------------------------------------

TEST(TransportPartitionTest, ReliableTransferResumesAfterHeal) {
  sim::Simulator s(7);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(3)));
  net::TransportConfig cfg;
  cfg.max_retries = 500;
  net::Transport a(&s, &network, 1, cfg);
  net::Transport b(&s, &network, 2, cfg);
  std::vector<std::string> got;
  b.RegisterReceiver(4, [&](net::NodeId, uint32_t, const net::PayloadPtr& p) {
    got.push_back(p->Describe());
  });
  network.Partition({{1}, {2}});
  for (int i = 0; i < 10; ++i) {
    a.SendReliable(2, 4, std::make_shared<net::BlobPayload>("m" + std::to_string(i), 16));
  }
  s.RunFor(sim::Duration::Seconds(1));
  EXPECT_TRUE(got.empty());
  network.HealPartition();
  s.RunFor(sim::Duration::Seconds(5));
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], "m" + std::to_string(i)) << "FIFO across the heal";
  }
}

TEST(TransportPartitionTest, TrafficWithinComponentUnaffected) {
  sim::Simulator s(8);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(3)));
  net::Transport a(&s, &network, 1);
  net::Transport b(&s, &network, 2);
  net::Transport c(&s, &network, 3);
  int at_b = 0;
  b.RegisterReceiver(4, [&](net::NodeId, uint32_t, const net::PayloadPtr&) { ++at_b; });
  network.Partition({{1, 2}, {3}});
  for (int i = 0; i < 5; ++i) {
    a.SendReliable(2, 4, std::make_shared<net::BlobPayload>("x", 8));
  }
  s.RunFor(sim::Duration::Seconds(2));
  EXPECT_EQ(at_b, 5);
}

TEST(TransportPartitionTest, NodeRestartWithResetStateDoesNotReplayOldSeqs) {
  sim::Simulator s(9);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(2)));
  net::Transport a(&s, &network, 1);
  net::Transport b(&s, &network, 2);
  int got = 0;
  b.RegisterReceiver(4, [&](net::NodeId, uint32_t, const net::PayloadPtr&) { ++got; });
  a.SendReliable(2, 4, std::make_shared<net::BlobPayload>("one", 8));
  s.RunFor(sim::Duration::Seconds(1));
  EXPECT_EQ(got, 1);
  // a "restarts" amnesiac: sequence numbers reset. The receiver must also be
  // reset (an amnesiac peer pair), else old state would discard new traffic.
  a.ResetPeerState();
  b.ResetPeerState();
  a.SendReliable(2, 4, std::make_shared<net::BlobPayload>("two", 8));
  s.RunFor(sim::Duration::Seconds(1));
  EXPECT_EQ(got, 2);
}

}  // namespace
