// Randomized property tests for the state-level library: the ordered cache
// under arbitrary interleavings, the prescriptive gate over random dependency
// DAGs, and Chandy–Lamport snapshots under packet loss and duplication.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/statelevel/ordered_cache.h"
#include "src/statelevel/prescriptive.h"
#include "src/statelevel/snapshot.h"

namespace statelv {
namespace {

// Property: for any arrival order of any update set, the cache (a) never
// regresses an object's version, (b) never installs a derived value whose
// base is missing or older than required, and (c) ends at the maximum
// version of every object whose dependency chain is satisfiable.
TEST(OrderedCachePropertyTest, RandomInterleavingsConverge) {
  sim::Rng rng(2718);
  for (int trial = 0; trial < 300; ++trial) {
    // Build a ground-truth update set: 3 base objects x versions 1..5, plus
    // derived objects referencing random base versions.
    std::vector<VersionedUpdate> updates;
    for (int object = 0; object < 3; ++object) {
      for (uint64_t version = 1; version <= 5; ++version) {
        VersionedUpdate u;
        u.object = "base" + std::to_string(object);
        u.version = version;
        u.value = static_cast<double>(version);
        updates.push_back(u);
      }
    }
    for (int k = 0; k < 6; ++k) {
      VersionedUpdate u;
      u.object = "derived" + std::to_string(k % 3);
      u.version = static_cast<uint64_t>(k / 3 + 1);
      u.value = 100.0 + k;
      u.dependency = Dependency{"base" + std::to_string(rng.NextBelow(3)),
                                1 + rng.NextBelow(5)};
      updates.push_back(u);
    }
    rng.Shuffle(updates);

    OrderedCache cache;
    std::map<std::string, uint64_t> last_seen_version;
    cache.SetInstallHandler([&](const VersionedUpdate& u) {
      // (a) monotone versions per object.
      EXPECT_GT(u.version, last_seen_version[u.object]);
      last_seen_version[u.object] = u.version;
      // (b) dependency satisfied at install time.
      if (u.dependency) {
        const VersionedUpdate* base = cache.Get(u.dependency->object);
        ASSERT_NE(base, nullptr);
        EXPECT_GE(base->version, u.dependency->version);
      }
    });
    for (const auto& u : updates) {
      cache.Apply(u);
    }
    // (c) bases converge to version 5; derived objects to their max version.
    for (int object = 0; object < 3; ++object) {
      const VersionedUpdate* entry = cache.Get("base" + std::to_string(object));
      ASSERT_NE(entry, nullptr);
      EXPECT_EQ(entry->version, 5u);
    }
    for (int d = 0; d < 3; ++d) {
      const VersionedUpdate* entry = cache.Get("derived" + std::to_string(d));
      ASSERT_NE(entry, nullptr) << "all dependencies are on base versions <= 5, so every "
                                   "derived update must eventually install";
      EXPECT_EQ(entry->version, 2u);
    }
    EXPECT_EQ(cache.stats().held_now, 0u);
  }
}

// Property: the gate delivers a random DAG's messages in a topological order
// regardless of submission order, and delivers all of them.
TEST(PrescriptiveGatePropertyTest, RandomDagsDeliverTopologically) {
  sim::Rng rng(3141);
  for (int trial = 0; trial < 300; ++trial) {
    const uint64_t n = 5 + rng.NextBelow(15);
    // Edges only from lower to higher ids: prerequisites are lower ids.
    std::vector<std::vector<StreamKey>> prereqs(n);
    for (uint64_t node = 1; node < n; ++node) {
      const uint64_t count = rng.NextBelow(std::min<uint64_t>(3, node) + 1);
      std::set<uint64_t> chosen;
      for (uint64_t c = 0; c < count; ++c) {
        chosen.insert(rng.NextBelow(node));
      }
      for (uint64_t p : chosen) {
        prereqs[node].push_back(StreamKey{1, p});
      }
    }
    std::vector<uint64_t> order(n);
    for (uint64_t i = 0; i < n; ++i) {
      order[i] = i;
    }
    rng.Shuffle(order);

    std::set<uint64_t> delivered;
    PrescriptiveGate gate([&](const StreamKey& key, const net::PayloadPtr&) {
      for (const StreamKey& p : prereqs[key.seq]) {
        EXPECT_TRUE(delivered.count(p.seq))
            << "node " << key.seq << " delivered before prerequisite " << p.seq;
      }
      delivered.insert(key.seq);
    });
    for (uint64_t node : order) {
      gate.Submit(StreamKey{1, node}, prereqs[node],
                  std::make_shared<net::BlobPayload>("n", 8));
    }
    EXPECT_EQ(delivered.size(), n);
    EXPECT_EQ(gate.stats().pending_now, 0u);
  }
}

// Property: Chandy–Lamport cuts conserve tokens under loss and duplication
// (the reliable transport absorbs both), for random snapshot timings.
class SnapshotHostileTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotHostileTest, CutsConserveTokens) {
  const uint64_t seed = GetParam();
  sim::Simulator s(seed);
  net::NetworkConfig net_config;
  net_config.drop_probability = 0.15;
  net_config.duplicate_probability = 0.10;
  net::Network network(&s,
                       std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                             sim::Duration::Millis(6)),
                       net_config);
  constexpr int kNodes = 5;
  constexpr int kTokens = 2;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<SnapshotNode>> nodes;
  std::vector<int64_t> tokens(kNodes, 0);
  for (int t = 0; t < kTokens; ++t) {
    tokens[t] = 1;
  }
  std::vector<net::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
  }
  for (int i = 0; i < kNodes; ++i) {
    transports.push_back(std::make_unique<net::Transport>(&s, &network, ids[i]));
    nodes.push_back(std::make_unique<SnapshotNode>(
        &s, transports[i].get(), ids, [&tokens, i] { return tokens[i]; },
        [&tokens, i](net::NodeId, const net::PayloadPtr&) { ++tokens[i]; }));
  }
  int cuts = 0;
  for (auto& node : nodes) {
    node->SetCompleteHandler([](const LocalSnapshot&) {});
  }
  // Aggregate at completion via a shared collector-like map.
  std::map<uint64_t, std::pair<int, int64_t>> sums;
  for (int i = 0; i < kNodes; ++i) {
    nodes[static_cast<size_t>(i)]->SetCompleteHandler([&, i](const LocalSnapshot& snap) {
      auto& [count, sum] = sums[snap.snapshot_id];
      ++count;
      sum += snap.state;
      for (const auto& [channel, msgs] : snap.channel_messages) {
        sum += static_cast<int64_t>(msgs.size());
      }
      if (count == kNodes) {
        ++cuts;
        EXPECT_EQ(sum, kTokens) << "snapshot " << snap.snapshot_id;
      }
    });
  }

  // Token movers + randomized snapshot initiations.
  sim::Rng mover_rng = s.rng().Fork();
  std::vector<std::unique_ptr<sim::PeriodicTimer>> movers;
  for (int i = 0; i < kNodes; ++i) {
    movers.push_back(std::make_unique<sim::PeriodicTimer>(&s, sim::Duration::Millis(7), [&, i] {
      if (tokens[static_cast<size_t>(i)] > 0) {
        int to = static_cast<int>(mover_rng.NextBelow(kNodes));
        if (to == i) {
          to = (to + 1) % kNodes;
        }
        --tokens[static_cast<size_t>(i)];
        nodes[static_cast<size_t>(i)]->SendApp(static_cast<net::NodeId>(to + 1),
                                               std::make_shared<net::BlobPayload>("tok", 8));
      }
    }));
    movers.back()->Start(sim::Duration::Micros(900 * (i + 1)));
  }
  for (uint64_t id = 1; id <= 5; ++id) {
    const auto when = sim::Duration::Millis(static_cast<int64_t>(50 + s.rng().NextBelow(800)));
    const size_t initiator = s.rng().NextBelow(kNodes);
    s.ScheduleAfter(when, [&nodes, initiator, id] { nodes[initiator]->Initiate(id); });
  }
  s.RunFor(sim::Duration::Seconds(20));
  for (auto& mover : movers) {
    mover->Stop();
  }
  EXPECT_EQ(cuts, 5) << "all snapshots must complete despite loss";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotHostileTest, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace statelv
