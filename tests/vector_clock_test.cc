// Unit and property tests for vector clocks and the Lamport clock.

#include <gtest/gtest.h>

#include <map>

#include "src/catocs/vector_clock.h"
#include "src/sim/rng.h"

namespace catocs {
namespace {

TEST(VectorClockTest, DefaultIsZero) {
  VectorClock vc;
  EXPECT_EQ(vc.Get(1), 0u);
  EXPECT_EQ(vc.entry_count(), 0u);
  EXPECT_EQ(vc.SizeBytes(), 0u);
}

TEST(VectorClockTest, IncrementAndGet) {
  VectorClock vc;
  EXPECT_EQ(vc.Increment(3), 1u);
  EXPECT_EQ(vc.Increment(3), 2u);
  EXPECT_EQ(vc.Get(3), 2u);
  EXPECT_EQ(vc.Get(4), 0u);
}

TEST(VectorClockTest, SetZeroErasesEntry) {
  VectorClock vc;
  vc.Set(1, 5);
  EXPECT_EQ(vc.entry_count(), 1u);
  vc.Set(1, 0);
  EXPECT_EQ(vc.entry_count(), 0u);
}

TEST(VectorClockTest, MergeTakesPointwiseMax) {
  VectorClock a;
  a.Set(1, 5);
  a.Set(2, 1);
  VectorClock b;
  b.Set(1, 3);
  b.Set(2, 7);
  b.Set(3, 2);
  a.Merge(b);
  EXPECT_EQ(a.Get(1), 5u);
  EXPECT_EQ(a.Get(2), 7u);
  EXPECT_EQ(a.Get(3), 2u);
}

TEST(VectorClockTest, CompareEqual) {
  VectorClock a;
  a.Set(1, 2);
  VectorClock b;
  b.Set(1, 2);
  EXPECT_EQ(a.Compare(b), CausalOrder::kEqual);
  EXPECT_TRUE(a == b);
}

TEST(VectorClockTest, CompareBeforeAfter) {
  VectorClock a;
  a.Set(1, 1);
  VectorClock b;
  b.Set(1, 1);
  b.Set(2, 1);
  EXPECT_EQ(a.Compare(b), CausalOrder::kBefore);
  EXPECT_EQ(b.Compare(a), CausalOrder::kAfter);
  EXPECT_TRUE(b.Dominates(a));
  EXPECT_FALSE(a.Dominates(b));
}

TEST(VectorClockTest, CompareConcurrent) {
  VectorClock a;
  a.Set(1, 2);
  a.Set(2, 1);
  VectorClock b;
  b.Set(1, 1);
  b.Set(2, 2);
  EXPECT_EQ(a.Compare(b), CausalOrder::kConcurrent);
  EXPECT_EQ(b.Compare(a), CausalOrder::kConcurrent);
}

TEST(VectorClockTest, MissingEntriesTreatedAsZero) {
  VectorClock a;  // empty
  VectorClock b;
  b.Set(5, 1);
  EXPECT_EQ(a.Compare(b), CausalOrder::kBefore);
  EXPECT_TRUE(b.Dominates(a));
  EXPECT_TRUE(a.Dominates(a));
}

TEST(VectorClockTest, SizeBytesPerEntry) {
  VectorClock vc;
  vc.Set(1, 1);
  vc.Set(2, 1);
  vc.Set(3, 1);
  EXPECT_EQ(vc.SizeBytes(), 3 * VectorClock::kEntryBytes);
}

TEST(VectorClockTest, ToStringFormat) {
  VectorClock vc;
  vc.Set(2, 3);
  vc.Set(1, 1);
  EXPECT_EQ(vc.ToString(), "{1:1,2:3}");
}

// Property: Compare is antisymmetric and consistent with Merge, over random
// clocks.
TEST(VectorClockPropertyTest, CompareAntisymmetricRandomized) {
  sim::Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    VectorClock a;
    VectorClock b;
    for (MemberId m = 1; m <= 4; ++m) {
      a.Set(m, rng.NextBelow(4));
      b.Set(m, rng.NextBelow(4));
    }
    const CausalOrder ab = a.Compare(b);
    const CausalOrder ba = b.Compare(a);
    switch (ab) {
      case CausalOrder::kEqual:
        EXPECT_EQ(ba, CausalOrder::kEqual);
        break;
      case CausalOrder::kBefore:
        EXPECT_EQ(ba, CausalOrder::kAfter);
        break;
      case CausalOrder::kAfter:
        EXPECT_EQ(ba, CausalOrder::kBefore);
        break;
      case CausalOrder::kConcurrent:
        EXPECT_EQ(ba, CausalOrder::kConcurrent);
        break;
    }
    // Merge result dominates both inputs.
    VectorClock merged = a;
    merged.Merge(b);
    EXPECT_TRUE(merged.Dominates(a));
    EXPECT_TRUE(merged.Dominates(b));
  }
}

// Property: transitivity of happens-before on random chains.
TEST(VectorClockPropertyTest, TransitivityRandomized) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    VectorClock a;
    for (MemberId m = 1; m <= 3; ++m) {
      a.Set(m, rng.NextBelow(3));
    }
    VectorClock b = a;
    b.Increment(static_cast<MemberId>(1 + rng.NextBelow(3)));
    VectorClock c = b;
    c.Increment(static_cast<MemberId>(1 + rng.NextBelow(3)));
    EXPECT_EQ(a.Compare(b), CausalOrder::kBefore);
    EXPECT_EQ(b.Compare(c), CausalOrder::kBefore);
    EXPECT_EQ(a.Compare(c), CausalOrder::kBefore);
  }
}

// --- flat representation vs. naive map reference --------------------------
//
// The flat sorted-vector clock must agree operation-for-operation with the
// obvious std::map implementation it replaced. The reference deliberately
// mirrors the old code (map, per-key lookups), and the check runs over
// thousands of randomized clock pairs including sparse clocks, shared and
// disjoint member sets, and zero writes.

struct MapClock {
  std::map<MemberId, uint64_t> entries;

  void Set(MemberId m, uint64_t v) {
    if (v == 0) {
      entries.erase(m);
    } else {
      entries[m] = v;
    }
  }
  uint64_t Get(MemberId m) const {
    auto it = entries.find(m);
    return it == entries.end() ? 0 : it->second;
  }
  void Merge(const MapClock& other) {
    for (const auto& [m, v] : other.entries) {
      if (v > Get(m)) {
        entries[m] = v;
      }
    }
  }
  CausalOrder Compare(const MapClock& other) const {
    bool less = false;
    bool greater = false;
    for (const auto& [m, v] : entries) {
      const uint64_t ov = other.Get(m);
      less |= v < ov;
      greater |= v > ov;
    }
    for (const auto& [m, ov] : other.entries) {
      const uint64_t v = Get(m);
      less |= v < ov;
      greater |= v > ov;
    }
    if (less && greater) return CausalOrder::kConcurrent;
    if (less) return CausalOrder::kBefore;
    if (greater) return CausalOrder::kAfter;
    return CausalOrder::kEqual;
  }
  bool Dominates(const MapClock& other) const {
    for (const auto& [m, ov] : other.entries) {
      if (Get(m) < ov) {
        return false;
      }
    }
    return true;
  }
};

TEST(VectorClockCrossCheckTest, AgreesWithMapReferenceRandomized) {
  sim::Rng rng(777);
  for (int trial = 0; trial < 10000; ++trial) {
    VectorClock fa;
    VectorClock fb;
    MapClock ma;
    MapClock mb;
    // Sparse clocks over a 12-member universe; ~1/4 of writes are zeros so
    // the erase path is exercised too.
    const int writes = 1 + static_cast<int>(rng.NextBelow(12));
    for (int w = 0; w < writes; ++w) {
      const MemberId m = static_cast<MemberId>(1 + rng.NextBelow(12));
      const uint64_t v = rng.NextBelow(8);
      if (rng.NextBelow(2) == 0) {
        fa.Set(m, v);
        ma.Set(m, v);
      } else {
        fb.Set(m, v);
        mb.Set(m, v);
      }
    }
    ASSERT_EQ(fa.Compare(fb), ma.Compare(mb)) << fa.ToString() << " vs " << fb.ToString();
    ASSERT_EQ(fa.Dominates(fb), ma.Dominates(mb)) << fa.ToString() << " vs " << fb.ToString();
    ASSERT_EQ(fb.Dominates(fa), mb.Dominates(ma)) << fb.ToString() << " vs " << fa.ToString();

    VectorClock fmerged = fa;
    fmerged.Merge(fb);
    MapClock mmerged = ma;
    mmerged.Merge(mb);
    ASSERT_EQ(fmerged.entry_count(), mmerged.entries.size());
    for (const auto& [m, v] : mmerged.entries) {
      ASSERT_EQ(fmerged.Get(m), v) << "member " << m << " in " << fmerged.ToString();
    }
  }
}

TEST(LamportClockTest, TickIncreases) {
  LamportClock clock;
  EXPECT_EQ(clock.Tick(), 1u);
  EXPECT_EQ(clock.Tick(), 2u);
}

TEST(LamportClockTest, WitnessJumpsAhead) {
  LamportClock clock;
  clock.Tick();
  EXPECT_EQ(clock.Witness(10), 11u);
  EXPECT_EQ(clock.Witness(5), 12u);  // lower observation still advances
}

}  // namespace
}  // namespace catocs
