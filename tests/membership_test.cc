// Tests for view-synchronous membership: failure detection, the flush
// protocol, message re-forwarding at view changes, sequencer fail-over, and
// the paper's "atomic but not durable" behavior (§2) where a sender's crash
// mid-multicast can lose the message entirely.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/net/payload.h"
#include "src/sim/simulator.h"

namespace catocs {
namespace {

net::PayloadPtr Blob(const std::string& tag, size_t size = 64) {
  return std::make_shared<net::BlobPayload>(tag, size);
}

std::string TagOf(const Delivery& d) {
  const auto* blob = net::PayloadCast<net::BlobPayload>(d.payload());
  return blob ? blob->tag() : "?";
}

FabricConfig MembershipConfig(uint32_t n) {
  FabricConfig cfg;
  cfg.num_members = n;
  cfg.group.enable_membership = true;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(100);
  return cfg;
}

TEST(MembershipTest, CrashInstallsNewViewAtSurvivors) {
  sim::Simulator s(1);
  GroupFabric fabric(&s, MembershipConfig(4));
  std::vector<std::pair<MemberId, View>> views;
  for (size_t i = 0; i < 4; ++i) {
    const MemberId id = GroupFabric::IdOf(i);
    fabric.member(i).SetViewHandler([&views, id](const View& v) { views.emplace_back(id, v); });
  }
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(200), [&] { fabric.CrashMember(3); });
  s.RunFor(sim::Duration::Seconds(3));

  // All three survivors installed view 2 with members {1,2,3}.
  int installs = 0;
  for (const auto& [member, view] : views) {
    if (view.id == 2) {
      ++installs;
      EXPECT_EQ(view.members, (std::vector<MemberId>{1, 2, 3}));
    }
  }
  EXPECT_EQ(installs, 3);
}

TEST(MembershipTest, TrafficContinuesAfterViewChange) {
  sim::Simulator s(2);
  GroupFabric fabric(&s, MembershipConfig(4));
  fabric.RecordDeliveries();
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(100), [&] { fabric.CrashMember(3); });
  // Sends continue throughout, including during the flush window.
  for (int k = 0; k < 40; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(10 * k), [&fabric, k] {
      fabric.member(k % 3).CausalSend(Blob("m" + std::to_string(k)));
    });
  }
  s.RunFor(sim::Duration::Seconds(5));

  // Each of the 40 messages reached all 3 survivors.
  int at_survivors = 0;
  for (const auto& record : fabric.records()) {
    if (record.at <= 3) {
      ++at_survivors;
    }
  }
  EXPECT_EQ(at_survivors, 40 * 3);
  EXPECT_EQ(CheckCausalDeliveryInvariant(fabric.records()), "");
  // Flush happened and blocked sending for a measurable interval.
  uint64_t flushes = 0;
  for (size_t i = 0; i < 3; ++i) {
    flushes += fabric.member(i).stats().flushes_completed;
  }
  EXPECT_GE(flushes, 3u);
}

TEST(MembershipTest, FlushReforwardsMessagesTheCrashedSenderLeftBehind) {
  sim::Simulator s(3);
  GroupFabric fabric(&s, MembershipConfig(3));  // 1=sender, 2=B, 3=C
  fabric.RecordDeliveries();
  fabric.StartAll();

  // Briefly partition C away so only B receives the multicast, then crash
  // the sender before the partition heals: atomic delivery obliges B to
  // bring C up to date during the flush.
  s.ScheduleAfter(sim::Duration::Millis(50), [&] { fabric.network().Partition({{1, 2}, {3}}); });
  s.ScheduleAfter(sim::Duration::Millis(51), [&] { fabric.member(0).CausalSend(Blob("orphan")); });
  s.ScheduleAfter(sim::Duration::Millis(60), [&] { fabric.CrashMember(0); });
  s.ScheduleAfter(sim::Duration::Millis(70), [&] { fabric.network().HealPartition(); });
  s.RunFor(sim::Duration::Seconds(5));

  bool b_got = false;
  bool c_got = false;
  for (const auto& record : fabric.records()) {
    if (TagOf(record.delivery) == "orphan") {
      b_got |= record.at == 2;
      c_got |= record.at == 3;
    }
  }
  EXPECT_TRUE(b_got);
  EXPECT_TRUE(c_got) << "flush must re-forward the unstable message to C";
}

TEST(MembershipTest, AtomicButNotDurable) {
  // The sender crashes before any copy escapes: the message is lost at every
  // survivor — consistently. This is the §2 deficiency for replicated data.
  sim::Simulator s(4);
  auto cfg = MembershipConfig(3);
  cfg.latency_lo = sim::Duration::Millis(5);
  cfg.latency_hi = sim::Duration::Millis(10);
  GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  fabric.StartAll();

  s.ScheduleAfter(sim::Duration::Millis(50), [&] {
    // The failure hits between the local (self) delivery and the network
    // transmission: the process delivers its own message, acts on it, and
    // dies before a single copy escapes. Model it by cutting the node's
    // network link first, then issuing the send (which self-delivers but
    // whose fan-out is refused), then halting the process.
    fabric.network().SetNodeUp(GroupFabric::IdOf(0), false);
    fabric.member(0).CausalSend(Blob("doomed"));
    fabric.CrashMember(0);
  });
  s.RunFor(sim::Duration::Seconds(5));

  // The sender delivered to itself (and acted on it); no survivor ever sees
  // it — the inconsistency the paper warns about.
  int survivor_got = 0;
  bool sender_got = false;
  for (const auto& record : fabric.records()) {
    if (TagOf(record.delivery) == "doomed") {
      if (record.at == 1) {
        sender_got = true;
      } else {
        ++survivor_got;
      }
    }
  }
  EXPECT_TRUE(sender_got);
  EXPECT_EQ(survivor_got, 0);
  // Survivors still installed the new view (they did not hang waiting).
  EXPECT_GE(fabric.member(1).view().id, 2u);
  EXPECT_GE(fabric.member(2).view().id, 2u);
}

TEST(MembershipTest, SequencerFailoverKeepsTotalOrderConsistent) {
  sim::Simulator s(5);
  GroupFabric fabric(&s, MembershipConfig(4));
  fabric.RecordDeliveries();
  fabric.StartAll();
  // Member 0 (id 1) is the sequencer. Kill it mid-stream.
  for (int k = 0; k < 30; ++k) {
    s.ScheduleAfter(sim::Duration::Millis(10 * k), [&fabric, k] {
      fabric.member(1 + k % 3).TotalSend(Blob("t" + std::to_string(k)));
    });
  }
  s.ScheduleAfter(sim::Duration::Millis(150), [&] { fabric.CrashMember(0); });
  s.RunFor(sim::Duration::Seconds(5));

  // Filter records to survivors and check agreement.
  std::vector<GroupFabric::Record> survivor_records;
  for (const auto& record : fabric.records()) {
    if (record.at != 1) {
      survivor_records.push_back(record);
    }
  }
  EXPECT_EQ(CheckTotalOrderInvariant(survivor_records), "");
  // All 30 messages eventually delivered at all 3 survivors.
  int count = 0;
  for (const auto& record : survivor_records) {
    if (TagOf(record.delivery)[0] == 't') {
      ++count;
    }
  }
  EXPECT_EQ(count, 30 * 3);
}

TEST(MembershipTest, BlockedTimeIsMeasured) {
  sim::Simulator s(6);
  GroupFabric fabric(&s, MembershipConfig(4));
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(100), [&] { fabric.CrashMember(3); });
  s.RunFor(sim::Duration::Seconds(3));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fabric.member(i).stats().flushes_completed, 1u) << "member " << i;
    EXPECT_GT(fabric.member(i).stats().blocked_time, sim::Duration::Zero()) << "member " << i;
    EXPECT_GT(fabric.member(i).stats().flush_control_msgs, 0u) << "member " << i;
  }
}

TEST(MembershipTest, SendsDuringFlushAreQueuedNotLost) {
  sim::Simulator s(7);
  GroupFabric fabric(&s, MembershipConfig(3));
  fabric.RecordDeliveries();
  fabric.StartAll();
  fabric.network().SetNodeUp(GroupFabric::IdOf(2), false);
  // Wait for suspicion, then send while the flush is running.
  bool sent = false;
  sim::PeriodicTimer probe(&s, sim::Duration::Millis(5), [&] {
    if (!sent && fabric.member(0).flush_in_progress()) {
      sent = true;
      fabric.member(0).CausalSend(Blob("queued"));
      EXPECT_GT(fabric.member(0).stats().sent + 1, 0u);  // send accepted, queued
    }
  });
  probe.Start(sim::Duration::Millis(5));
  s.RunFor(sim::Duration::Seconds(5));
  probe.Stop();
  ASSERT_TRUE(sent) << "test needs to observe an in-progress flush";
  int delivered_at_survivor = 0;
  for (const auto& record : fabric.records()) {
    if (TagOf(record.delivery) == "queued" && record.at == 2) {
      ++delivered_at_survivor;
    }
  }
  EXPECT_EQ(delivered_at_survivor, 1);
}

TEST(MembershipTest, DoubleCrashConvergesToFinalView) {
  sim::Simulator s(8);
  GroupFabric fabric(&s, MembershipConfig(5));
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(100), [&] { fabric.CrashMember(4); });
  s.ScheduleAfter(sim::Duration::Millis(600), [&] { fabric.CrashMember(3); });
  s.RunFor(sim::Duration::Seconds(5));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fabric.member(i).view().members, (std::vector<MemberId>{1, 2, 3})) << "member " << i;
  }
}

TEST(MembershipTest, CoordinatorCrashDuringStableOperationPromotesNext) {
  sim::Simulator s(9);
  GroupFabric fabric(&s, MembershipConfig(3));
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(100), [&] { fabric.CrashMember(0); });
  s.RunFor(sim::Duration::Seconds(3));
  EXPECT_EQ(fabric.member(1).view().members, (std::vector<MemberId>{2, 3}));
  EXPECT_EQ(fabric.member(2).view().members, (std::vector<MemberId>{2, 3}));
}

}  // namespace
}  // namespace catocs
