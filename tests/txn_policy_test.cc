// Tests for the concurrency-control policy seam (DESIGN §12): the
// upgrade-stall and missing-edge regressions, wait-die and starvation-free
// (wound-wait) unit semantics, a randomized cross-check of all three
// policies against a reference model, and the shared contention workload
// generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/txn/deadlock_detector.h"
#include "src/txn/lock_manager.h"
#include "src/txn/txn_policy.h"
#include "src/txn/workload.h"

namespace txn {
namespace {

// --- upgrade-stall regressions (satellite 1) ---------------------------------------

// The ISSUE's two-transaction form: a sole-holder upgrade must be granted
// immediately even with an exclusive waiter queued (the waiter could never
// have been granted while our shared lock stands).
TEST(UpgradeRegressionTest, SoleHolderUpgradeGrantsAheadOfQueuedExclusive) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kShared, nullptr);
  bool t2_granted = false;
  lm.Acquire(2, "x", LockMode::kExclusive, [&] { t2_granted = true; });
  EXPECT_TRUE(lm.Acquire(1, "x", LockMode::kExclusive, nullptr))
      << "sole-holder upgrade must not queue behind an exclusive waiter";
  EXPECT_TRUE(lm.Holds(1, "x", LockMode::kExclusive));
  EXPECT_FALSE(t2_granted);
  lm.ReleaseAll(1);
  EXPECT_TRUE(t2_granted);
}

// The eternal-stall wedge the seed actually produced: two sharers, a queued
// exclusive, then one sharer upgrades. The seed queued the upgrade at the
// BACK; when the other sharer released, the front-only grant scan stopped at
// the incompatible exclusive (the upgrader still holds shared), the upgrade
// stayed unreachable behind it, and — since the upgrader's only blocker was
// a fellow WAITER — WaitForEdges showed no cycle: wedged forever, invisible
// to the monitor.
TEST(UpgradeRegressionTest, UpgradeBehindQueuedExclusiveIsNotWedged) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kShared, nullptr);
  lm.Acquire(2, "x", LockMode::kShared, nullptr);
  bool t3_granted = false;
  lm.Acquire(3, "x", LockMode::kExclusive, [&] { t3_granted = true; });
  bool t1_upgraded = false;
  EXPECT_FALSE(lm.Acquire(1, "x", LockMode::kExclusive, [&] { t1_upgraded = true; }));
  lm.ReleaseAll(2);
  EXPECT_TRUE(t1_upgraded) << "upgrade must be scanned ahead of front-of-queue grants";
  EXPECT_TRUE(lm.Holds(1, "x", LockMode::kExclusive));
  EXPECT_FALSE(t3_granted);
  lm.ReleaseAll(1);
  EXPECT_TRUE(t3_granted);
}

// --- missing wait-for edges (satellite 2) ------------------------------------------

TEST(WaitForEdgeTest, QueuedAheadIncompatibleWaitersProduceEdges) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(2, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(3, "x", LockMode::kExclusive, nullptr);
  auto edges = lm.WaitForEdges();
  auto has = [&](TxnId w, TxnId b) {
    return std::find(edges.begin(), edges.end(), std::make_pair(w, b)) != edges.end();
  };
  EXPECT_TRUE(has(2, 1));
  EXPECT_TRUE(has(3, 1));
  EXPECT_TRUE(has(3, 2)) << "T3 may not overtake T2: that dependency must be visible";
}

TEST(WaitForEdgeTest, CompatibleQueuedAheadWaitersProduceNoEdge) {
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(2, "x", LockMode::kShared, nullptr);
  lm.Acquire(3, "x", LockMode::kShared, nullptr);
  // T3 is not blocked by T2 (both shared): no false edge, no false deadlock.
  auto edges = lm.WaitForEdges();
  EXPECT_EQ(std::count(edges.begin(), edges.end(), std::make_pair(TxnId{3}, TxnId{2})), 0);
}

// A genuine deadlock whose only cycle runs through a waiter→waiter edge:
// T2 and T3 both wait for x (T3 queued behind T2), T3 holds y, and T2 then
// requests y. T2→T3 (holder edge) plus T3→T2 (queue-order edge) is a cycle
// RIGHT NOW — but the seed emitted holder edges only (T2→T1, T3→T1, T2→T3,
// no T3→T2), so as long as T1 kept x the monitor saw no cycle and the victim
// kill never fired. The detector must see it without T1 releasing anything.
TEST(WaitForEdgeTest, DetectorFindsWaiterWaiterCycleEndToEnd) {
  sim::Simulator s(7);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  net::Transport ta(&s, &network, 1);
  net::Transport tm(&s, &network, 9);
  LockManager lm;
  lm.Acquire(1, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(3, "y", LockMode::kExclusive, nullptr);
  lm.Acquire(2, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(3, "x", LockMode::kExclusive, nullptr);
  lm.Acquire(2, "y", LockMode::kExclusive, nullptr);
  WaitForReporter reporter(&s, &ta, {9}, sim::Duration::Millis(10),
                           [&] { return lm.WaitForEdges(); });
  DeadlockMonitor monitor(&s, &tm);
  std::vector<uint64_t> cycle;
  monitor.SetDeadlockHandler([&](const std::vector<uint64_t>& c) { cycle = c; });
  reporter.Start();
  s.RunFor(sim::Duration::Millis(100));
  reporter.Stop();
  ASSERT_FALSE(cycle.empty()) << "deadlock through a queue-order dependency went undetected";
  EXPECT_TRUE(std::find(cycle.begin(), cycle.end(), 2u) != cycle.end());
  EXPECT_TRUE(std::find(cycle.begin(), cycle.end(), 3u) != cycle.end());
}

// --- ReleaseAll index (satellite 3) ------------------------------------------------

TEST(ReleaseIndexTest, ReleaseOnlyTouchesOwnResources) {
  LockManager lm;
  // Another transaction's wait must survive an unrelated txn's ReleaseAll.
  lm.Acquire(1, "a", LockMode::kExclusive, nullptr);
  bool granted = false;
  lm.Acquire(2, "a", LockMode::kExclusive, [&] { granted = true; });
  lm.Acquire(3, "b", LockMode::kExclusive, nullptr);
  lm.ReleaseAll(3);
  EXPECT_FALSE(granted);
  EXPECT_TRUE(lm.Holds(1, "a", LockMode::kExclusive));
  lm.ReleaseAll(1);
  EXPECT_TRUE(granted);
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.locked_resources(), 0u);
}

// --- wait-die (satellite 4) --------------------------------------------------------

TEST(WaitDieTest, OlderRequesterWaits) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  lm.BeginTxn(1, 100);  // older (smaller timestamp)
  lm.BeginTxn(2, 200);  // younger
  EXPECT_EQ(lm.AcquireEx(2, "x", LockMode::kExclusive, nullptr), AcquireResult::kGranted);
  bool granted = false;
  EXPECT_EQ(lm.AcquireEx(1, "x", LockMode::kExclusive, [&] { granted = true; }),
            AcquireResult::kQueued);
  EXPECT_FALSE(granted);
  lm.ReleaseAll(2);
  EXPECT_TRUE(granted);
}

TEST(WaitDieTest, YoungerRequesterDies) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  lm.BeginTxn(1, 100);
  lm.BeginTxn(2, 200);
  EXPECT_EQ(lm.AcquireEx(1, "x", LockMode::kExclusive, nullptr), AcquireResult::kGranted);
  EXPECT_EQ(lm.AcquireEx(2, "x", LockMode::kExclusive, nullptr), AcquireResult::kAborted);
  EXPECT_EQ(lm.stats().wait_die_aborts, 1u);
  // The holder is untouched; the dead transaction holds nothing.
  EXPECT_TRUE(lm.Holds(1, "x", LockMode::kExclusive));
  EXPECT_FALSE(lm.Holds(2, "x", LockMode::kExclusive));
}

TEST(WaitDieTest, RetainedTimestampOutranksFreshTransactions) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  lm.BeginTxn(1, 100);
  lm.BeginTxn(2, 200);
  lm.AcquireEx(1, "x", LockMode::kExclusive, nullptr);
  ASSERT_EQ(lm.AcquireEx(2, "x", LockMode::kExclusive, nullptr), AcquireResult::kAborted);
  lm.ReleaseAll(2);
  lm.ReleaseAll(1);
  // The victim restarts (fresh uid, SAME timestamp) and meets a fresh,
  // younger transaction: now it is the older one and waits instead of dying
  // — retained age is the no-starvation mechanism.
  lm.BeginTxn(3, 300);
  lm.BeginTxn(22, 200);  // txn 2 reborn
  lm.AcquireEx(3, "x", LockMode::kExclusive, nullptr);
  bool granted = false;
  EXPECT_EQ(lm.AcquireEx(22, "x", LockMode::kExclusive, [&] { granted = true; }),
            AcquireResult::kQueued);
  lm.ReleaseAll(3);
  EXPECT_TRUE(granted);
}

TEST(WaitDieTest, YoungerUpgraderDiesOlderUpgraderWaits) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  lm.BeginTxn(1, 100);
  lm.BeginTxn(2, 200);
  lm.AcquireEx(1, "x", LockMode::kShared, nullptr);
  lm.AcquireEx(2, "x", LockMode::kShared, nullptr);
  // The classic upgrade deadlock, settled by age: the younger upgrader dies
  // on the spot, the older one waits and gets the lock.
  bool upgraded = false;
  EXPECT_EQ(lm.AcquireEx(1, "x", LockMode::kExclusive, [&] { upgraded = true; }),
            AcquireResult::kQueued);
  EXPECT_EQ(lm.AcquireEx(2, "x", LockMode::kExclusive, nullptr), AcquireResult::kAborted);
  lm.ReleaseAll(2);
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(lm.Holds(1, "x", LockMode::kExclusive));
}

TEST(WaitDieTest, NoTimestampReuseByAuthority) {
  TimestampAuthority authority(3);
  std::set<uint64_t> seen;
  // Same instant, repeated issues: every timestamp distinct, monotone, and
  // namespace-tagged (no cross-coordinator collision).
  for (int i = 0; i < 100; ++i) {
    uint64_t ts = authority.Issue(sim::TimePoint::Zero() + sim::Duration::Micros(5));
    EXPECT_TRUE(seen.insert(ts).second) << "timestamp reused";
    EXPECT_EQ(ts & 0xFF, 3u);
  }
  TimestampAuthority other(4);
  uint64_t ts_other = other.Issue(sim::TimePoint::Zero() + sim::Duration::Micros(5));
  EXPECT_EQ(seen.count(ts_other), 0u);
}

// --- starvation-free / wound-wait (tentpole) ---------------------------------------

TEST(StarvationFreeTest, OlderRequesterWoundsYoungerHolder) {
  LockManager lm(DeadlockPolicy::kStarvationFree);
  std::vector<TxnId> wounded;
  lm.SetAbortHandler([&](TxnId t) { wounded.push_back(t); });
  lm.BeginTxn(1, 100);
  lm.BeginTxn(2, 200);
  lm.AcquireEx(2, "x", LockMode::kExclusive, nullptr);
  bool granted = false;
  // The wound releases the victim synchronously; our grant callback fires
  // before AcquireEx returns (kQueued + callback-already-fired convention).
  EXPECT_EQ(lm.AcquireEx(1, "x", LockMode::kExclusive, [&] { granted = true; }),
            AcquireResult::kQueued);
  EXPECT_TRUE(granted);
  ASSERT_EQ(wounded.size(), 1u);
  EXPECT_EQ(wounded[0], 2u);
  EXPECT_EQ(lm.stats().wounds, 1u);
  EXPECT_TRUE(lm.Holds(1, "x", LockMode::kExclusive));
  EXPECT_FALSE(lm.Holds(2, "x", LockMode::kExclusive));
}

TEST(StarvationFreeTest, YoungerRequesterWaits) {
  LockManager lm(DeadlockPolicy::kStarvationFree);
  std::vector<TxnId> wounded;
  lm.SetAbortHandler([&](TxnId t) { wounded.push_back(t); });
  lm.BeginTxn(1, 100);
  lm.BeginTxn(2, 200);
  lm.AcquireEx(1, "x", LockMode::kExclusive, nullptr);
  bool granted = false;
  EXPECT_EQ(lm.AcquireEx(2, "x", LockMode::kExclusive, [&] { granted = true; }),
            AcquireResult::kQueued);
  EXPECT_TRUE(wounded.empty());
  EXPECT_FALSE(granted);
  lm.ReleaseAll(1);
  EXPECT_TRUE(granted);
}

TEST(StarvationFreeTest, PinnedHolderIsNotWounded) {
  // An older requester meeting a pinned (YES-voted) younger holder can
  // neither wound it nor wait on it (an old→young wait edge deadlocks across
  // replicas): it dies and retries with its retained timestamp.
  LockManager lm(DeadlockPolicy::kStarvationFree);
  std::vector<TxnId> wounded;
  lm.SetAbortHandler([&](TxnId t) { wounded.push_back(t); });
  lm.BeginTxn(1, 100);
  lm.BeginTxn(2, 200);
  lm.AcquireEx(2, "x", LockMode::kExclusive, nullptr);
  lm.Pin(2);  // voted YES in 2PC: no longer allowed to abort unilaterally
  EXPECT_EQ(lm.AcquireEx(1, "x", LockMode::kExclusive, nullptr), AcquireResult::kAborted);
  EXPECT_TRUE(wounded.empty());
  EXPECT_TRUE(lm.Holds(2, "x", LockMode::kExclusive));
  EXPECT_EQ(lm.stats().wait_die_aborts, 1u);
}

TEST(StarvationFreeTest, YoungerRequesterWaitsOnPinnedOlderHolder) {
  // The invariant direction: a young→old wait edge is always safe, pinned
  // holder or not.
  LockManager lm(DeadlockPolicy::kStarvationFree);
  std::vector<TxnId> wounded;
  lm.SetAbortHandler([&](TxnId t) { wounded.push_back(t); });
  lm.BeginTxn(1, 100);
  lm.BeginTxn(2, 200);
  lm.AcquireEx(1, "x", LockMode::kExclusive, nullptr);
  lm.Pin(1);
  bool granted = false;
  EXPECT_EQ(lm.AcquireEx(2, "x", LockMode::kExclusive, [&] { granted = true; }),
            AcquireResult::kQueued);
  EXPECT_TRUE(wounded.empty());
  EXPECT_FALSE(granted);
  lm.ReleaseAll(1);  // the coordinator's decision arrives
  EXPECT_TRUE(granted);
}

TEST(StarvationFreeTest, WoundReleasesVictimEverywhere) {
  LockManager lm(DeadlockPolicy::kStarvationFree);
  std::vector<TxnId> wounded;
  lm.SetAbortHandler([&](TxnId t) { wounded.push_back(t); });
  lm.BeginTxn(1, 100);
  lm.BeginTxn(2, 200);
  lm.BeginTxn(3, 300);
  lm.AcquireEx(2, "x", LockMode::kExclusive, nullptr);
  lm.AcquireEx(2, "y", LockMode::kExclusive, nullptr);
  bool t3_granted = false;
  lm.AcquireEx(3, "y", LockMode::kExclusive, [&] { t3_granted = true; });
  // Wounding 2 on "x" must free "y" too (transaction-granular abort), which
  // unblocks the unrelated waiter 3.
  lm.AcquireEx(1, "x", LockMode::kExclusive, nullptr);
  ASSERT_EQ(wounded.size(), 1u);
  EXPECT_TRUE(t3_granted);
  EXPECT_FALSE(lm.Holds(2, "y", LockMode::kExclusive));
}

// --- randomized cross-check against a reference model (satellite 4) ----------------

struct ModelTxn {
  uint64_t ts = 0;
  std::map<std::string, LockMode> holds;
  std::set<std::string> waiting;
  bool dead = false;
  bool pinned = false;
};

bool EdgesAcyclic(const std::vector<std::pair<TxnId, TxnId>>& edges) {
  std::map<TxnId, std::vector<TxnId>> adj;
  std::set<TxnId> nodes;
  for (const auto& [w, b] : edges) {
    adj[w].push_back(b);
    nodes.insert(w);
    nodes.insert(b);
  }
  std::set<TxnId> done, path;
  std::function<bool(TxnId)> dfs = [&](TxnId n) {
    if (path.count(n)) return false;
    if (done.count(n)) return true;
    path.insert(n);
    for (TxnId next : adj[n]) {
      if (!dfs(next)) return false;
    }
    path.erase(n);
    done.insert(n);
    return true;
  };
  for (TxnId n : nodes) {
    if (!dfs(n)) return false;
  }
  return true;
}

void RunPropertyRound(DeadlockPolicy policy, uint64_t seed) {
  LockManager lm(policy);
  std::map<TxnId, ModelTxn> model;
  lm.SetAbortHandler([&](TxnId t) {
    ModelTxn& m = model.at(t);
    EXPECT_FALSE(m.pinned) << "pinned transaction wounded";
    EXPECT_FALSE(m.dead) << "transaction wounded twice";
    m.dead = true;
    m.holds.clear();
    m.waiting.clear();
  });
  sim::Rng rng(seed);
  const std::vector<std::string> keys = {"a", "b", "c", "d"};
  TxnId next_txn = 1;
  std::vector<TxnId> alive;

  auto check_invariants = [&] {
    // Grant-set correctness: the manager agrees with the model, and no two
    // transactions hold conflicting locks.
    std::map<std::string, std::vector<std::pair<TxnId, LockMode>>> per_key;
    for (const auto& [t, m] : model) {
      if (m.dead) continue;
      for (const auto& [key, mode] : m.holds) {
        EXPECT_TRUE(lm.Holds(t, key, mode)) << "txn " << t << " lost " << key;
        per_key[key].emplace_back(t, mode);
      }
    }
    for (const auto& [key, holders] : per_key) {
      size_t exclusive = 0;
      for (const auto& [t, mode] : holders) {
        if (mode == LockMode::kExclusive) ++exclusive;
      }
      if (exclusive > 0) {
        EXPECT_EQ(holders.size(), 1u) << "conflicting grant on " << key;
      }
    }
    if (policy != DeadlockPolicy::kDetect) {
      EXPECT_TRUE(EdgesAcyclic(lm.WaitForEdges()))
          << "prevention policy allowed a wait-for cycle (seed " << seed << ")";
    }
  };

  for (int op = 0; op < 300; ++op) {
    const uint64_t kind = rng.NextBelow(10);
    if (kind < 3 || alive.empty()) {
      TxnId t = next_txn++;
      model[t].ts = t * 10;
      lm.BeginTxn(t, t * 10);
      alive.push_back(t);
    } else if (kind < 8) {
      TxnId t = alive[rng.NextBelow(alive.size())];
      ModelTxn& m = model[t];
      // Dead transactions are gone; pinned ones have voted and never acquire
      // again (that contract is what keeps wound-wait deadlock-free).
      if (m.dead || m.pinned) continue;
      const std::string& key = keys[rng.NextBelow(keys.size())];
      LockMode mode = rng.NextBool(0.5) ? LockMode::kShared : LockMode::kExclusive;
      if (m.waiting.count(key)) continue;  // one outstanding request per key
      auto held = m.holds.find(key);
      const LockMode granted_mode =
          (held != m.holds.end() && held->second == LockMode::kExclusive)
              ? LockMode::kExclusive
              : mode;
      m.waiting.insert(key);
      AcquireResult result = lm.AcquireEx(t, key, mode, [&model, t, key, granted_mode] {
        ModelTxn& mt = model.at(t);
        EXPECT_TRUE(mt.waiting.count(key)) << "grant callback fired twice";
        mt.waiting.erase(key);
        mt.holds[key] = granted_mode;
      });
      if (result == AcquireResult::kGranted) {
        ModelTxn& mt = model.at(t);  // map may have rehashed via callbacks
        EXPECT_TRUE(mt.waiting.count(key)) << "kGranted after callback already fired";
        mt.waiting.erase(key);
        mt.holds[key] = granted_mode;
      } else if (result == AcquireResult::kAborted) {
        // wait-die: younger than a blocker. wound-wait: conflicting pinned
        // younger holder. Detect never aborts.
        EXPECT_NE(policy, DeadlockPolicy::kDetect);
        ModelTxn& mt = model.at(t);
        mt.waiting.erase(key);
        mt.dead = true;
        mt.holds.clear();
        mt.waiting.clear();
        lm.ReleaseAll(t);
      }
    } else if (kind == 8 && policy == DeadlockPolicy::kStarvationFree) {
      TxnId t = alive[rng.NextBelow(alive.size())];
      if (!model[t].dead && !model[t].holds.empty() && model[t].waiting.empty()) {
        lm.Pin(t);
        model[t].pinned = true;
      }
    } else {
      size_t i = rng.NextBelow(alive.size());
      TxnId t = alive[i];
      alive.erase(alive.begin() + static_cast<long>(i));
      lm.ReleaseAll(t);
      model[t].dead = true;
      model[t].holds.clear();
      model[t].waiting.clear();
    }
    check_invariants();
  }
  // Drain: releasing every live transaction must grant every survivor's
  // pending request and empty the manager.
  while (!alive.empty()) {
    TxnId t = alive.front();
    alive.erase(alive.begin());
    lm.ReleaseAll(t);
    model[t].dead = true;
    model[t].holds.clear();
    model[t].waiting.clear();
    check_invariants();
  }
  EXPECT_EQ(lm.locked_resources(), 0u) << "locks leaked after drain (seed " << seed << ")";
}

TEST(LockPolicyPropertyTest, RandomSchedulesMatchReferenceModel) {
  for (DeadlockPolicy policy : {DeadlockPolicy::kDetect, DeadlockPolicy::kWaitDie,
                                DeadlockPolicy::kStarvationFree}) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      RunPropertyRound(policy, seed);
    }
  }
}

// --- workload generator ------------------------------------------------------------

TEST(WorkloadTest, DeterministicAcrossInstances) {
  WorkloadConfig config;
  config.num_keys = 32;
  config.zipf_theta = 0.8;
  WorkloadGenerator a(config, 42), b(config, 42);
  for (int i = 0; i < 50; ++i) {
    TxnSpec sa = a.NextTxn(), sb = b.NextTxn();
    ASSERT_EQ(sa.ops.size(), sb.ops.size());
    for (size_t j = 0; j < sa.ops.size(); ++j) {
      EXPECT_EQ(sa.ops[j].key, sb.ops[j].key);
      EXPECT_EQ(sa.ops[j].is_write, sb.ops[j].is_write);
    }
  }
}

TEST(WorkloadTest, RespectsSizesAndAlwaysWrites) {
  WorkloadConfig config;
  config.num_keys = 16;
  config.short_ops = 2;
  config.long_ops = 8;
  config.long_txn_fraction = 0.5;
  WorkloadGenerator gen(config, 7);
  bool saw_short = false, saw_long = false;
  for (int i = 0; i < 200; ++i) {
    TxnSpec spec = gen.NextTxn();
    EXPECT_EQ(spec.ops.size(), spec.is_long ? 8u : 2u);
    (spec.is_long ? saw_long : saw_short) = true;
    EXPECT_FALSE(spec.WriteKeys().empty()) << "every txn must reach 2PC";
    std::set<std::string> distinct;
    for (const Op& op : spec.ops) {
      EXPECT_TRUE(distinct.insert(op.key).second) << "duplicate key in one txn";
    }
    EXPECT_TRUE(std::is_sorted(spec.ops.begin(), spec.ops.end(),
                               [](const Op& x, const Op& y) { return x.key < y.key; }));
  }
  EXPECT_TRUE(saw_short);
  EXPECT_TRUE(saw_long);
}

TEST(WorkloadTest, ZipfSkewConcentratesOnHotKeys) {
  WorkloadConfig config;
  config.num_keys = 64;
  config.short_ops = 1;
  config.long_txn_fraction = 0.0;
  config.zipf_theta = 1.2;
  WorkloadGenerator hot(config, 11);
  std::map<std::string, int> counts;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    counts[hot.NextTxn().ops[0].key] += 1;
  }
  int max_count = 0;
  for (const auto& [key, n] : counts) {
    max_count = std::max(max_count, n);
  }
  // Uniform share would be ~31 of 2000; heavy skew concentrates far more.
  EXPECT_GT(max_count, kDraws / 8) << "theta=1.2 should hammer a hot key";

  config.zipf_theta = 0.0;
  WorkloadGenerator uniform(config, 11);
  counts.clear();
  for (int i = 0; i < kDraws; ++i) {
    counts[uniform.NextTxn().ops[0].key] += 1;
  }
  for (const auto& [key, n] : counts) {
    EXPECT_LT(n, kDraws / 8) << "uniform draw unexpectedly skewed at " << key;
  }
}

TEST(PolicyNameTest, RoundTrips) {
  for (DeadlockPolicy policy : {DeadlockPolicy::kDetect, DeadlockPolicy::kWaitDie,
                                DeadlockPolicy::kStarvationFree}) {
    DeadlockPolicy parsed;
    ASSERT_TRUE(ParseDeadlockPolicy(DeadlockPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  DeadlockPolicy unused;
  EXPECT_FALSE(ParseDeadlockPolicy("bogus", &unused));
}

}  // namespace
}  // namespace txn
