file(REMOVE_RECURSE
  "CMakeFiles/statelevel_test.dir/statelevel_test.cc.o"
  "CMakeFiles/statelevel_test.dir/statelevel_test.cc.o.d"
  "statelevel_test"
  "statelevel_test.pdb"
  "statelevel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statelevel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
