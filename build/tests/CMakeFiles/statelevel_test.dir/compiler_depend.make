# Empty compiler generated dependencies file for statelevel_test.
# This may be replaced when dependencies are built.
