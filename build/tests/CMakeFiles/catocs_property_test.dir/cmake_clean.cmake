file(REMOVE_RECURSE
  "CMakeFiles/catocs_property_test.dir/catocs_property_test.cc.o"
  "CMakeFiles/catocs_property_test.dir/catocs_property_test.cc.o.d"
  "catocs_property_test"
  "catocs_property_test.pdb"
  "catocs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catocs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
