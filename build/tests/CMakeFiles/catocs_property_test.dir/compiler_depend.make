# Empty compiler generated dependencies file for catocs_property_test.
# This may be replaced when dependencies are built.
