file(REMOVE_RECURSE
  "CMakeFiles/nameservice_test.dir/nameservice_test.cc.o"
  "CMakeFiles/nameservice_test.dir/nameservice_test.cc.o.d"
  "nameservice_test"
  "nameservice_test.pdb"
  "nameservice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nameservice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
