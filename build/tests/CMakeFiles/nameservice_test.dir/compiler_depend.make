# Empty compiler generated dependencies file for nameservice_test.
# This may be replaced when dependencies are built.
