# Empty compiler generated dependencies file for net_models_test.
# This may be replaced when dependencies are built.
