file(REMOVE_RECURSE
  "CMakeFiles/net_models_test.dir/net_models_test.cc.o"
  "CMakeFiles/net_models_test.dir/net_models_test.cc.o.d"
  "net_models_test"
  "net_models_test.pdb"
  "net_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
