file(REMOVE_RECURSE
  "CMakeFiles/catocs_test.dir/catocs_test.cc.o"
  "CMakeFiles/catocs_test.dir/catocs_test.cc.o.d"
  "catocs_test"
  "catocs_test.pdb"
  "catocs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catocs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
