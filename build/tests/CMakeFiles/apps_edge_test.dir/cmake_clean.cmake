file(REMOVE_RECURSE
  "CMakeFiles/apps_edge_test.dir/apps_edge_test.cc.o"
  "CMakeFiles/apps_edge_test.dir/apps_edge_test.cc.o.d"
  "apps_edge_test"
  "apps_edge_test.pdb"
  "apps_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
