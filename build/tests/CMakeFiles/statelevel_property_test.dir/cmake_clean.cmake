file(REMOVE_RECURSE
  "CMakeFiles/statelevel_property_test.dir/statelevel_property_test.cc.o"
  "CMakeFiles/statelevel_property_test.dir/statelevel_property_test.cc.o.d"
  "statelevel_property_test"
  "statelevel_property_test.pdb"
  "statelevel_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statelevel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
