# Empty dependencies file for statelevel_property_test.
# This may be replaced when dependencies are built.
