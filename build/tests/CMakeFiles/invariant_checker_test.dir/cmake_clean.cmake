file(REMOVE_RECURSE
  "CMakeFiles/invariant_checker_test.dir/invariant_checker_test.cc.o"
  "CMakeFiles/invariant_checker_test.dir/invariant_checker_test.cc.o.d"
  "invariant_checker_test"
  "invariant_checker_test.pdb"
  "invariant_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
