file(REMOVE_RECURSE
  "CMakeFiles/process_trace_test.dir/process_trace_test.cc.o"
  "CMakeFiles/process_trace_test.dir/process_trace_test.cc.o.d"
  "process_trace_test"
  "process_trace_test.pdb"
  "process_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
