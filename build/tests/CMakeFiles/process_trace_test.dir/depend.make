# Empty dependencies file for process_trace_test.
# This may be replaced when dependencies are built.
