# Empty compiler generated dependencies file for replicated_store_test.
# This may be replaced when dependencies are built.
