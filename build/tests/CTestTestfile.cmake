# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/vector_clock_test[1]_include.cmake")
include("/root/repo/build/tests/catocs_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/statelevel_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/replicated_store_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/nameservice_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/catocs_property_test[1]_include.cmake")
include("/root/repo/build/tests/statelevel_property_test[1]_include.cmake")
include("/root/repo/build/tests/txn_property_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/process_trace_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_checker_test[1]_include.cmake")
include("/root/repo/build/tests/apps_edge_test[1]_include.cmake")
include("/root/repo/build/tests/message_test[1]_include.cmake")
include("/root/repo/build/tests/net_models_test[1]_include.cmake")
