# CMake generated Testfile for 
# Source directory: /root/repo/src/statelevel
# Build directory: /root/repo/build/src/statelevel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
