# Empty dependencies file for statelevel.
# This may be replaced when dependencies are built.
