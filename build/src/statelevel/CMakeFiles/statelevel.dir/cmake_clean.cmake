file(REMOVE_RECURSE
  "CMakeFiles/statelevel.dir/ordered_cache.cc.o"
  "CMakeFiles/statelevel.dir/ordered_cache.cc.o.d"
  "CMakeFiles/statelevel.dir/prescriptive.cc.o"
  "CMakeFiles/statelevel.dir/prescriptive.cc.o.d"
  "CMakeFiles/statelevel.dir/snapshot.cc.o"
  "CMakeFiles/statelevel.dir/snapshot.cc.o.d"
  "libstatelevel.a"
  "libstatelevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statelevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
