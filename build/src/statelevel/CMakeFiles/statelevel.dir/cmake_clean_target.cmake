file(REMOVE_RECURSE
  "libstatelevel.a"
)
