# Empty dependencies file for txn.
# This may be replaced when dependencies are built.
