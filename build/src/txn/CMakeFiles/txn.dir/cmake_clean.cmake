file(REMOVE_RECURSE
  "CMakeFiles/txn.dir/deadlock_detector.cc.o"
  "CMakeFiles/txn.dir/deadlock_detector.cc.o.d"
  "CMakeFiles/txn.dir/lock_manager.cc.o"
  "CMakeFiles/txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/txn.dir/occ.cc.o"
  "CMakeFiles/txn.dir/occ.cc.o.d"
  "CMakeFiles/txn.dir/replicated_store.cc.o"
  "CMakeFiles/txn.dir/replicated_store.cc.o.d"
  "CMakeFiles/txn.dir/wait_for_graph.cc.o"
  "CMakeFiles/txn.dir/wait_for_graph.cc.o.d"
  "CMakeFiles/txn.dir/wal.cc.o"
  "CMakeFiles/txn.dir/wal.cc.o.d"
  "libtxn.a"
  "libtxn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
