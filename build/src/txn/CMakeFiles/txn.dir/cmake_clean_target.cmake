file(REMOVE_RECURSE
  "libtxn.a"
)
