
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/deadlock_detector.cc" "src/txn/CMakeFiles/txn.dir/deadlock_detector.cc.o" "gcc" "src/txn/CMakeFiles/txn.dir/deadlock_detector.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/txn/CMakeFiles/txn.dir/lock_manager.cc.o" "gcc" "src/txn/CMakeFiles/txn.dir/lock_manager.cc.o.d"
  "/root/repo/src/txn/occ.cc" "src/txn/CMakeFiles/txn.dir/occ.cc.o" "gcc" "src/txn/CMakeFiles/txn.dir/occ.cc.o.d"
  "/root/repo/src/txn/replicated_store.cc" "src/txn/CMakeFiles/txn.dir/replicated_store.cc.o" "gcc" "src/txn/CMakeFiles/txn.dir/replicated_store.cc.o.d"
  "/root/repo/src/txn/wait_for_graph.cc" "src/txn/CMakeFiles/txn.dir/wait_for_graph.cc.o" "gcc" "src/txn/CMakeFiles/txn.dir/wait_for_graph.cc.o.d"
  "/root/repo/src/txn/wal.cc" "src/txn/CMakeFiles/txn.dir/wal.cc.o" "gcc" "src/txn/CMakeFiles/txn.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catocs/CMakeFiles/catocs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
