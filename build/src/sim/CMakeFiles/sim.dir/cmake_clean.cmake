file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/event_queue.cc.o"
  "CMakeFiles/sim.dir/event_queue.cc.o.d"
  "CMakeFiles/sim.dir/metrics.cc.o"
  "CMakeFiles/sim.dir/metrics.cc.o.d"
  "CMakeFiles/sim.dir/process.cc.o"
  "CMakeFiles/sim.dir/process.cc.o.d"
  "CMakeFiles/sim.dir/rng.cc.o"
  "CMakeFiles/sim.dir/rng.cc.o.d"
  "CMakeFiles/sim.dir/simulator.cc.o"
  "CMakeFiles/sim.dir/simulator.cc.o.d"
  "CMakeFiles/sim.dir/time.cc.o"
  "CMakeFiles/sim.dir/time.cc.o.d"
  "CMakeFiles/sim.dir/trace.cc.o"
  "CMakeFiles/sim.dir/trace.cc.o.d"
  "libsim.a"
  "libsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
