file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/drilling.cc.o"
  "CMakeFiles/apps.dir/drilling.cc.o.d"
  "CMakeFiles/apps.dir/firealarm.cc.o"
  "CMakeFiles/apps.dir/firealarm.cc.o.d"
  "CMakeFiles/apps.dir/nameservice.cc.o"
  "CMakeFiles/apps.dir/nameservice.cc.o.d"
  "CMakeFiles/apps.dir/netnews.cc.o"
  "CMakeFiles/apps.dir/netnews.cc.o.d"
  "CMakeFiles/apps.dir/oven.cc.o"
  "CMakeFiles/apps.dir/oven.cc.o.d"
  "CMakeFiles/apps.dir/rpc_deadlock.cc.o"
  "CMakeFiles/apps.dir/rpc_deadlock.cc.o.d"
  "CMakeFiles/apps.dir/shopfloor.cc.o"
  "CMakeFiles/apps.dir/shopfloor.cc.o.d"
  "CMakeFiles/apps.dir/trading.cc.o"
  "CMakeFiles/apps.dir/trading.cc.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
