
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/drilling.cc" "src/apps/CMakeFiles/apps.dir/drilling.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/drilling.cc.o.d"
  "/root/repo/src/apps/firealarm.cc" "src/apps/CMakeFiles/apps.dir/firealarm.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/firealarm.cc.o.d"
  "/root/repo/src/apps/nameservice.cc" "src/apps/CMakeFiles/apps.dir/nameservice.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/nameservice.cc.o.d"
  "/root/repo/src/apps/netnews.cc" "src/apps/CMakeFiles/apps.dir/netnews.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/netnews.cc.o.d"
  "/root/repo/src/apps/oven.cc" "src/apps/CMakeFiles/apps.dir/oven.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/oven.cc.o.d"
  "/root/repo/src/apps/rpc_deadlock.cc" "src/apps/CMakeFiles/apps.dir/rpc_deadlock.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/rpc_deadlock.cc.o.d"
  "/root/repo/src/apps/shopfloor.cc" "src/apps/CMakeFiles/apps.dir/shopfloor.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/shopfloor.cc.o.d"
  "/root/repo/src/apps/trading.cc" "src/apps/CMakeFiles/apps.dir/trading.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/trading.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catocs/CMakeFiles/catocs.dir/DependInfo.cmake"
  "/root/repo/build/src/statelevel/CMakeFiles/statelevel.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/txn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
