file(REMOVE_RECURSE
  "CMakeFiles/catocs.dir/group.cc.o"
  "CMakeFiles/catocs.dir/group.cc.o.d"
  "CMakeFiles/catocs.dir/group_member.cc.o"
  "CMakeFiles/catocs.dir/group_member.cc.o.d"
  "CMakeFiles/catocs.dir/membership.cc.o"
  "CMakeFiles/catocs.dir/membership.cc.o.d"
  "CMakeFiles/catocs.dir/message.cc.o"
  "CMakeFiles/catocs.dir/message.cc.o.d"
  "CMakeFiles/catocs.dir/stability.cc.o"
  "CMakeFiles/catocs.dir/stability.cc.o.d"
  "CMakeFiles/catocs.dir/vector_clock.cc.o"
  "CMakeFiles/catocs.dir/vector_clock.cc.o.d"
  "libcatocs.a"
  "libcatocs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catocs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
