# Empty dependencies file for catocs.
# This may be replaced when dependencies are built.
