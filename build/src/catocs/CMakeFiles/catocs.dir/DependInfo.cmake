
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catocs/group.cc" "src/catocs/CMakeFiles/catocs.dir/group.cc.o" "gcc" "src/catocs/CMakeFiles/catocs.dir/group.cc.o.d"
  "/root/repo/src/catocs/group_member.cc" "src/catocs/CMakeFiles/catocs.dir/group_member.cc.o" "gcc" "src/catocs/CMakeFiles/catocs.dir/group_member.cc.o.d"
  "/root/repo/src/catocs/membership.cc" "src/catocs/CMakeFiles/catocs.dir/membership.cc.o" "gcc" "src/catocs/CMakeFiles/catocs.dir/membership.cc.o.d"
  "/root/repo/src/catocs/message.cc" "src/catocs/CMakeFiles/catocs.dir/message.cc.o" "gcc" "src/catocs/CMakeFiles/catocs.dir/message.cc.o.d"
  "/root/repo/src/catocs/stability.cc" "src/catocs/CMakeFiles/catocs.dir/stability.cc.o" "gcc" "src/catocs/CMakeFiles/catocs.dir/stability.cc.o.d"
  "/root/repo/src/catocs/vector_clock.cc" "src/catocs/CMakeFiles/catocs.dir/vector_clock.cc.o" "gcc" "src/catocs/CMakeFiles/catocs.dir/vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
