file(REMOVE_RECURSE
  "libcatocs.a"
)
