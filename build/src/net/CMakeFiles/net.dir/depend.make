# Empty dependencies file for net.
# This may be replaced when dependencies are built.
