file(REMOVE_RECURSE
  "CMakeFiles/net.dir/clock.cc.o"
  "CMakeFiles/net.dir/clock.cc.o.d"
  "CMakeFiles/net.dir/network.cc.o"
  "CMakeFiles/net.dir/network.cc.o.d"
  "CMakeFiles/net.dir/transport.cc.o"
  "CMakeFiles/net.dir/transport.cc.o.d"
  "libnet.a"
  "libnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
