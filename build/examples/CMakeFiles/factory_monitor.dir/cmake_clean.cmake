file(REMOVE_RECURSE
  "CMakeFiles/factory_monitor.dir/factory_monitor.cpp.o"
  "CMakeFiles/factory_monitor.dir/factory_monitor.cpp.o.d"
  "factory_monitor"
  "factory_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factory_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
