# Empty compiler generated dependencies file for factory_monitor.
# This may be replaced when dependencies are built.
