# Empty dependencies file for view_change.
# This may be replaced when dependencies are built.
