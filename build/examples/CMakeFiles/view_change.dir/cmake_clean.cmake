file(REMOVE_RECURSE
  "CMakeFiles/view_change.dir/view_change.cpp.o"
  "CMakeFiles/view_change.dir/view_change.cpp.o.d"
  "view_change"
  "view_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
