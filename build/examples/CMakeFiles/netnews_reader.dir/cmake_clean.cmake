file(REMOVE_RECURSE
  "CMakeFiles/netnews_reader.dir/netnews_reader.cpp.o"
  "CMakeFiles/netnews_reader.dir/netnews_reader.cpp.o.d"
  "netnews_reader"
  "netnews_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netnews_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
