# Empty compiler generated dependencies file for netnews_reader.
# This may be replaced when dependencies are built.
