file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_drilling.dir/bench_e11_drilling.cc.o"
  "CMakeFiles/bench_e11_drilling.dir/bench_e11_drilling.cc.o.d"
  "bench_e11_drilling"
  "bench_e11_drilling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_drilling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
