file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_causal_order.dir/bench_e1_causal_order.cc.o"
  "CMakeFiles/bench_e1_causal_order.dir/bench_e1_causal_order.cc.o.d"
  "bench_e1_causal_order"
  "bench_e1_causal_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_causal_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
