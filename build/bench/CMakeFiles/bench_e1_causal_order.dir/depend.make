# Empty dependencies file for bench_e1_causal_order.
# This may be replaced when dependencies are built.
