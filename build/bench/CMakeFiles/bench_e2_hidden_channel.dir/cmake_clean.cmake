file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_hidden_channel.dir/bench_e2_hidden_channel.cc.o"
  "CMakeFiles/bench_e2_hidden_channel.dir/bench_e2_hidden_channel.cc.o.d"
  "bench_e2_hidden_channel"
  "bench_e2_hidden_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_hidden_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
