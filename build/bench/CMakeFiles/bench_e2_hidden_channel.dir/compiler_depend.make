# Empty compiler generated dependencies file for bench_e2_hidden_channel.
# This may be replaced when dependencies are built.
