file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_replication.dir/bench_e8_replication.cc.o"
  "CMakeFiles/bench_e8_replication.dir/bench_e8_replication.cc.o.d"
  "bench_e8_replication"
  "bench_e8_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
