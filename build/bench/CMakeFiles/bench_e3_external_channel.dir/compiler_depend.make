# Empty compiler generated dependencies file for bench_e3_external_channel.
# This may be replaced when dependencies are built.
