file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_external_channel.dir/bench_e3_external_channel.cc.o"
  "CMakeFiles/bench_e3_external_channel.dir/bench_e3_external_channel.cc.o.d"
  "bench_e3_external_channel"
  "bench_e3_external_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_external_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
