file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_buffering_scale.dir/bench_e5_buffering_scale.cc.o"
  "CMakeFiles/bench_e5_buffering_scale.dir/bench_e5_buffering_scale.cc.o.d"
  "bench_e5_buffering_scale"
  "bench_e5_buffering_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_buffering_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
