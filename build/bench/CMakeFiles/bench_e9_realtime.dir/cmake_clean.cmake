file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_realtime.dir/bench_e9_realtime.cc.o"
  "CMakeFiles/bench_e9_realtime.dir/bench_e9_realtime.cc.o.d"
  "bench_e9_realtime"
  "bench_e9_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
