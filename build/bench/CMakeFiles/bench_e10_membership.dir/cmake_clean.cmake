file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_membership.dir/bench_e10_membership.cc.o"
  "CMakeFiles/bench_e10_membership.dir/bench_e10_membership.cc.o.d"
  "bench_e10_membership"
  "bench_e10_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
