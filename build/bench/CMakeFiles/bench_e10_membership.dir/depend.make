# Empty dependencies file for bench_e10_membership.
# This may be replaced when dependencies are built.
