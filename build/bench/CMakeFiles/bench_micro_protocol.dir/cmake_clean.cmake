file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_protocol.dir/bench_micro_protocol.cc.o"
  "CMakeFiles/bench_micro_protocol.dir/bench_micro_protocol.cc.o.d"
  "bench_micro_protocol"
  "bench_micro_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
