# Empty dependencies file for bench_e7_deadlock.
# This may be replaced when dependencies are built.
