file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_deadlock.dir/bench_e7_deadlock.cc.o"
  "CMakeFiles/bench_e7_deadlock.dir/bench_e7_deadlock.cc.o.d"
  "bench_e7_deadlock"
  "bench_e7_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
