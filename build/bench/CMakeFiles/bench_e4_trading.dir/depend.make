# Empty dependencies file for bench_e4_trading.
# This may be replaced when dependencies are built.
