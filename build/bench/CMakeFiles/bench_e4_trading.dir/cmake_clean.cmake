file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_trading.dir/bench_e4_trading.cc.o"
  "CMakeFiles/bench_e4_trading.dir/bench_e4_trading.cc.o.d"
  "bench_e4_trading"
  "bench_e4_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
