file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_false_causality.dir/bench_e6_false_causality.cc.o"
  "CMakeFiles/bench_e6_false_causality.dir/bench_e6_false_causality.cc.o.d"
  "bench_e6_false_causality"
  "bench_e6_false_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_false_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
