# Empty dependencies file for bench_e6_false_causality.
# This may be replaced when dependencies are built.
