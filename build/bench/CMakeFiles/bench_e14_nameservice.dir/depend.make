# Empty dependencies file for bench_e14_nameservice.
# This may be replaced when dependencies are built.
