file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_nameservice.dir/bench_e14_nameservice.cc.o"
  "CMakeFiles/bench_e14_nameservice.dir/bench_e14_nameservice.cc.o.d"
  "bench_e14_nameservice"
  "bench_e14_nameservice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_nameservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
