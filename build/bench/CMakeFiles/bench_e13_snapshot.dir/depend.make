# Empty dependencies file for bench_e13_snapshot.
# This may be replaced when dependencies are built.
