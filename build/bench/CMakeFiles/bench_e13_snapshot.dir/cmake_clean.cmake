file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_snapshot.dir/bench_e13_snapshot.cc.o"
  "CMakeFiles/bench_e13_snapshot.dir/bench_e13_snapshot.cc.o.d"
  "bench_e13_snapshot"
  "bench_e13_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
