// fuzz_chaos — FoundationDB-style deterministic simulation fuzzer for the
// CATOCS stack. Each seed names one complete chaos run: a generated fault
// schedule (crashes with rejoin + state transfer, partitions, drop/duplicate
// bursts, latency spikes) injected into a ChaosRig workload, audited by the
// InvariantOracle afterwards. With --verify-replay each seed is run twice and
// the trace hashes must match bit-for-bit, proving the run is reproducible
// from its seed alone.
//
// Exit status: 0 iff every seed passed (no oracle violation, no replay
// divergence, every crashed slot rejoined).
//
// Usage: fuzz_chaos [--seeds N] [--start S] [--slots K] [--horizon-ms MS]
//                   [--buffer full|hybrid|overlay] [--batch N] [--no-verify-replay]
//                   [--verbose] [--trace] [--probe]
//                   [--overload] [--policy throttle|shed-new|evict-laggard]
//
// --overload runs the group with a bounded resource budget (256KiB) and a
// 64-message send window, and widens the fault schedule with slow receivers,
// overload bursts, and one over-timeout partition per plan — the adversity
// DESIGN.md §10 is about. The oracle's bounded-memory invariant then has
// teeth: budget samples are recorded at every delivery and any cap excess or
// pressure-signal misbehavior fails the seed. --policy picks the overload
// policy (default throttle).
//
// --batch N enables sender-side batching (GroupConfig::batching = N) plus
// delta-encoded timestamps, and has each workload tick issue N back-to-back
// sends so batches actually form — exercising batch framing,
// flush-on-view-change, the batch-aware delivery gate, and delta
// reconstruction under the full fault schedule.
//
// --trace turns on pipeline observability (GroupConfig::observability plus
// the simulator's span recorder): every run reports per-layer hold counts,
// and an oracle violation dumps the retained span timeline of the first
// message named in the violation — where it was stamped, where it waited,
// who delivered it. Observability is record-only (no simulator events), so
// tracing never perturbs the run it is diagnosing.
//
// --probe additionally runs the hidden-channel probe (hidden_probe.h) under
// the fault schedule, with a provenance recorder attached, and cross-checks
// the recorder's hidden-miss count against an independent recount from the
// rig's delivery records — a disagreement fails the seed. Unlike --trace,
// probe tokens are real traffic, so --probe runs have their own trace hashes
// (still replay-verified).

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/catocs/causal_buffer.h"
#include "src/catocs/pipeline_stats.h"
#include "src/fault/chaos_rig.h"
#include "src/fault/fault_plan.h"
#include "src/fault/hidden_probe.h"
#include "src/fault/injector.h"
#include "src/fault/oracle.h"
#include "src/obs/provenance.h"
#include "src/sim/simulator.h"

namespace {

// Keeps the plan-sampling stream independent of the simulation stream.
constexpr uint64_t kPlanStream = 0x9e3779b97f4a7c15ull;

struct RunOptions {
  uint64_t seeds = 50;
  uint64_t start = 1;
  size_t slots = 4;
  int64_t horizon_ms = 4000;
  catocs::CausalBufferKind buffer = catocs::CausalBufferKind::kFullVector;
  uint32_t batch = 1;
  bool verify_replay = true;
  bool verbose = false;
  bool trace = false;
  bool probe = false;
  bool overload = false;
  catocs::OverloadPolicy policy = catocs::OverloadPolicy::kThrottle;
};

struct RunResult {
  uint64_t trace_hash = 0;
  uint64_t events_applied = 0;
  uint64_t deliveries = 0;
  uint64_t views = 0;
  uint64_t rejoins = 0;
  double max_rejoin_ms = 0.0;  // recover start -> view install with new id
  uint64_t delta_mismatches = 0;  // decode != full vt; must stay 0
  fault::OracleReport report;
  // --trace only: span/hold totals and, on violation, the offending
  // message's rendered timeline (built before the simulator is torn down).
  uint64_t spans_recorded = 0;
  uint64_t holds_entered = 0;
  std::string span_dump;
  // --probe only: hidden-channel edge totals and the oracle cross-check.
  uint64_t hidden_edges = 0;
  uint64_t hidden_missed = 0;
  uint64_t hidden_missed_oracle = 0;
  bool probe_crosscheck_ok = true;
  // --overload only: flow-control refusals, laggard evictions, and the
  // budget ledger's high-water mark across every incarnation.
  uint64_t sends_backpressured = 0;
  uint64_t sends_shed = 0;
  uint64_t laggards_reported = 0;
  uint64_t budget_peak_bytes = 0;
  uint64_t budget_samples = 0;
};

// Finds the first "sender#seq" (MessageId::ToString form) in a violation
// message so --trace can dump that message's span timeline.
bool ParseFirstMessageId(const std::string& text, catocs::MessageId* id) {
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '#') {
      continue;
    }
    size_t begin = i;
    while (begin > 0 && std::isdigit(static_cast<unsigned char>(text[begin - 1]))) {
      --begin;
    }
    size_t end = i + 1;
    while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    if (begin == i || end == i + 1) {
      continue;
    }
    id->sender =
        static_cast<catocs::MemberId>(std::strtoull(text.substr(begin, i - begin).c_str(),
                                                    nullptr, 10));
    id->seq = std::strtoull(text.substr(i + 1, end - i - 1).c_str(), nullptr, 10);
    return true;
  }
  return false;
}

fault::FaultPlan PlanForSeed(uint64_t seed, const RunOptions& opt) {
  fault::GeneratorConfig gen_cfg;
  gen_cfg.num_slots = opt.slots;
  gen_cfg.horizon = sim::Duration::Millis(opt.horizon_ms);
  gen_cfg.failure_timeout = sim::Duration::Millis(100);
  if (opt.overload) {
    gen_cfg.max_slow_receivers = 2;
    gen_cfg.max_overload_bursts = 2;
    gen_cfg.max_long_partitions = 1;
  }
  sim::Rng plan_rng(seed ^ kPlanStream);
  return fault::FaultScheduleGenerator(gen_cfg).Generate(plan_rng);
}

RunResult RunOneSeed(uint64_t seed, const RunOptions& opt) {
  sim::Simulator s(seed);
  fault::ChaosRigConfig cfg;
  cfg.num_slots = opt.slots;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(100);
  cfg.group.causal_buffer = opt.buffer;
  if (opt.batch > 1) {
    cfg.group.batching = opt.batch;
    cfg.group.delta_timestamps = true;  // the batched wire path, complete
    cfg.workload_burst = opt.batch;
  }
  if (opt.overload) {
    cfg.group.budget.max_bytes = 256 * 1024;
    cfg.group.send_window = 64;
    cfg.group.overload_policy = opt.policy;
  }
  if (opt.trace) {
    cfg.group.observability = true;
    s.spans().set_enabled(true);
  }
  obs::ProvenanceRecorder recorder;
  if (opt.probe) {
    recorder.set_enabled(true);
    cfg.group.observability = true;
    cfg.group.provenance = &recorder;
  }
  fault::ChaosRig rig(&s, cfg);
  fault::FaultInjector injector(&s, &rig);
  std::unique_ptr<fault::HiddenChannelProbe> probe;
  if (opt.probe) {
    probe = std::make_unique<fault::HiddenChannelProbe>(&rig, &recorder);
  }

  const fault::FaultPlan plan = PlanForSeed(seed, opt);
  injector.Install(plan);

  rig.Start();
  if (probe) {
    probe->Start();
  }
  const sim::Duration horizon = sim::Duration::Millis(opt.horizon_ms);
  s.ScheduleAfter(horizon, [&rig, &probe] {
    rig.StopWorkload();
    if (probe) {
      probe->Stop();
    }
  });
  // Drain: retransmission, redelivery, flushes, and the last rejoin all
  // settle well within two extra simulated seconds.
  s.RunFor(horizon + sim::Duration::Seconds(2));

  RunResult result;
  result.trace_hash = rig.TraceHash();
  result.events_applied = injector.events_applied();
  result.deliveries = rig.deliveries().size();
  result.views = rig.views().size();
  for (const auto& stat : rig.recoveries()) {
    if (stat.rejoined) {
      ++result.rejoins;
      const double ms =
          static_cast<double>((stat.rejoined_at - stat.recover_started).nanos()) / 1e6;
      if (ms > result.max_rejoin_ms) {
        result.max_rejoin_ms = ms;
      }
    }
  }
  for (size_t slot = 0; slot < opt.slots; ++slot) {
    result.delta_mismatches += rig.MemberOfSlot(slot).stats().delta_decode_mismatches;
  }
  result.report = fault::InvariantOracle().Audit(rig);
  if (opt.trace) {
    result.spans_recorded = s.spans().total_recorded();
    result.holds_entered = rig.AggregatePipelineStats().TotalEntered();
    if (!result.report.ok()) {
      catocs::MessageId id{0, 0};
      for (const std::string& violation : result.report.violations) {
        if (ParseFirstMessageId(violation, &id)) {
          const auto timeline = s.spans().ForKey(catocs::SpanKey(id), 32);
          result.span_dump = "trace for " + id.ToString() + " (" +
                             std::to_string(timeline.size()) + " retained events):\n" +
                             sim::SpanRecorder::Render(timeline);
          break;
        }
      }
    }
  }
  if (probe) {
    result.hidden_edges = probe->edges_injected();
    result.hidden_missed = recorder.totals().hidden_missed;
    result.hidden_missed_oracle = fault::CountHiddenMisses(rig.deliveries(), probe->edges());
    result.probe_crosscheck_ok = result.hidden_missed == result.hidden_missed_oracle;
  }
  if (opt.overload) {
    result.sends_backpressured = rig.sends_backpressured();
    result.sends_shed = rig.sends_shed();
    result.budget_samples = rig.budget_samples().size();
    result.budget_peak_bytes = rig.AggregatePipelineStats().budget.peak_bytes;
    for (size_t slot = 0; slot < opt.slots; ++slot) {
      result.laggards_reported += rig.MemberOfSlot(slot).stats().laggards_reported;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  RunOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> int64_t { return i + 1 < argc ? std::atoll(argv[++i]) : 0; };
    if (arg == "--seeds") {
      opt.seeds = static_cast<uint64_t>(next());
    } else if (arg == "--start") {
      opt.start = static_cast<uint64_t>(next());
    } else if (arg == "--slots") {
      opt.slots = static_cast<size_t>(next());
    } else if (arg == "--horizon-ms") {
      opt.horizon_ms = next();
    } else if (arg == "--buffer") {
      const std::string kind = i + 1 < argc ? argv[++i] : "";
      if (kind == "full") {
        opt.buffer = catocs::CausalBufferKind::kFullVector;
      } else if (kind == "hybrid") {
        opt.buffer = catocs::CausalBufferKind::kHybrid;
      } else if (kind == "overlay") {
        opt.buffer = catocs::CausalBufferKind::kOverlay;
      } else {
        std::fprintf(stderr, "unknown --buffer kind: %s (want full|hybrid|overlay)\n",
                     kind.c_str());
        return 2;
      }
    } else if (arg == "--batch") {
      opt.batch = static_cast<uint32_t>(next());
      if (opt.batch < 1) {
        std::fprintf(stderr, "--batch wants a positive batch size\n");
        return 2;
      }
    } else if (arg == "--no-verify-replay") {
      opt.verify_replay = false;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--probe") {
      opt.probe = true;
    } else if (arg == "--overload") {
      opt.overload = true;
    } else if (arg == "--policy") {
      const std::string policy = i + 1 < argc ? argv[++i] : "";
      if (policy == "throttle") {
        opt.policy = catocs::OverloadPolicy::kThrottle;
      } else if (policy == "shed-new") {
        opt.policy = catocs::OverloadPolicy::kShedNew;
      } else if (policy == "evict-laggard") {
        opt.policy = catocs::OverloadPolicy::kEvictLaggard;
      } else {
        std::fprintf(stderr,
                     "unknown --policy: %s (want throttle|shed-new|evict-laggard)\n",
                     policy.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  uint64_t failed_seeds = 0;
  uint64_t replay_mismatches = 0;
  uint64_t total_violations = 0;
  uint64_t total_deliveries = 0;
  uint64_t total_rejoins = 0;
  uint64_t total_spans = 0;
  uint64_t total_holds = 0;
  uint64_t total_hidden_edges = 0;
  uint64_t total_hidden_missed = 0;
  uint64_t probe_mismatches = 0;
  uint64_t total_backpressured = 0;
  uint64_t total_shed = 0;
  uint64_t total_laggards = 0;
  uint64_t total_budget_samples = 0;
  uint64_t worst_budget_peak = 0;
  double worst_rejoin_ms = 0.0;

  std::printf("fuzz_chaos: %" PRIu64 " seeds [%" PRIu64 "..%" PRIu64
              "], %zu slots, %lldms horizon, %s buffer, replay verify %s\n",
              opt.seeds, opt.start, opt.start + opt.seeds - 1, opt.slots,
              static_cast<long long>(opt.horizon_ms), catocs::ToString(opt.buffer),
              opt.verify_replay ? "on" : "off");
  if (opt.batch > 1) {
    // Printed only in batch mode so default-config stdout stays byte-stable.
    std::printf("fuzz_chaos: sender batching x%u (burst workload)\n", opt.batch);
  }
  if (opt.overload) {
    // Same byte-stability discipline: this line exists only under --overload.
    std::printf("fuzz_chaos: overload adversity on, budget=256KiB window=64 policy=%s\n",
                catocs::ToString(opt.policy));
  }

  for (uint64_t seed = opt.start; seed < opt.start + opt.seeds; ++seed) {
    const RunResult result = RunOneSeed(seed, opt);
    bool seed_ok = result.report.ok();
    if (result.delta_mismatches > 0) {
      seed_ok = false;
      std::printf("seed %" PRIu64 ": DELTA DECODE MISMATCH x%" PRIu64
                  " (reconstructed vt != wire vt)\n",
                  seed, result.delta_mismatches);
    }
    total_violations += result.report.violations.size();
    total_deliveries += result.deliveries;
    total_rejoins += result.rejoins;
    if (result.max_rejoin_ms > worst_rejoin_ms) {
      worst_rejoin_ms = result.max_rejoin_ms;
    }
    total_spans += result.spans_recorded;
    total_holds += result.holds_entered;
    total_hidden_edges += result.hidden_edges;
    total_hidden_missed += result.hidden_missed;
    total_backpressured += result.sends_backpressured;
    total_shed += result.sends_shed;
    total_laggards += result.laggards_reported;
    total_budget_samples += result.budget_samples;
    if (result.budget_peak_bytes > worst_budget_peak) {
      worst_budget_peak = result.budget_peak_bytes;
    }
    if (!result.probe_crosscheck_ok) {
      seed_ok = false;
      ++probe_mismatches;
      std::printf("seed %" PRIu64 ": PROBE CROSSCHECK recorder missed %" PRIu64
                  " vs oracle recount %" PRIu64 "\n",
                  seed, result.hidden_missed, result.hidden_missed_oracle);
    }

    if (opt.verify_replay) {
      const RunResult replay = RunOneSeed(seed, opt);
      if (replay.trace_hash != result.trace_hash) {
        seed_ok = false;
        ++replay_mismatches;
        std::printf("seed %" PRIu64 ": REPLAY DIVERGED hash %016" PRIx64 " vs %016" PRIx64 "\n",
                    seed, result.trace_hash, replay.trace_hash);
      }
    }

    if (!result.report.ok()) {
      std::printf("seed %" PRIu64 ": %s\n", seed, result.report.Summary().c_str());
      std::printf("seed %" PRIu64 ": %s\n", seed, PlanForSeed(seed, opt).Describe().c_str());
      // Dump from the first run only; the replay-verify pass would repeat it.
      if (!result.span_dump.empty()) {
        std::printf("seed %" PRIu64 ": %s", seed, result.span_dump.c_str());
      }
    } else if (opt.verbose) {
      std::printf("seed %" PRIu64 ": ok hash=%016" PRIx64 " faults=%" PRIu64
                  " deliveries=%" PRIu64 " views=%" PRIu64 " rejoins=%" PRIu64
                  " max_rejoin=%.1fms\n",
                  seed, result.trace_hash, result.events_applied, result.deliveries,
                  result.views, result.rejoins, result.max_rejoin_ms);
      std::printf("seed %" PRIu64 ": %s\n", seed, PlanForSeed(seed, opt).Describe().c_str());
    }
    if (!seed_ok) {
      ++failed_seeds;
    }
  }

  std::printf("fuzz_chaos: %" PRIu64 "/%" PRIu64 " seeds clean, %" PRIu64
              " violations, %" PRIu64 " replay mismatches, %" PRIu64
              " deliveries audited, %" PRIu64 " rejoins (worst %.1fms)\n",
              opt.seeds - failed_seeds, opt.seeds, total_violations, replay_mismatches,
              total_deliveries, total_rejoins, worst_rejoin_ms);
  if (opt.trace) {
    // Deterministic across same-seed invocations: pure function of the runs.
    std::printf("fuzz_chaos: trace spans=%" PRIu64 " holds=%" PRIu64 "\n", total_spans,
                total_holds);
  }
  if (opt.probe) {
    std::printf("fuzz_chaos: probe hidden_edges=%" PRIu64 " hidden_missed=%" PRIu64
                " crosscheck_mismatches=%" PRIu64 "\n",
                total_hidden_edges, total_hidden_missed, probe_mismatches);
  }
  if (opt.overload) {
    // Deterministic across same-seed invocations: pure function of the runs.
    std::printf("fuzz_chaos: overload backpressured=%" PRIu64 " shed=%" PRIu64
                " laggards=%" PRIu64 " budget_samples=%" PRIu64 " worst_peak_bytes=%" PRIu64
                "\n",
                total_backpressured, total_shed, total_laggards, total_budget_samples,
                worst_budget_peak);
  }
  return failed_seeds == 0 ? 0 : 1;
}
