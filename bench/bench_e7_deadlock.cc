// E7 — Appendix 9.2 / §4.2: cost of RPC deadlock detection. van Renesse's
// design causally multicasts every RPC event to the whole group; the
// state-level alternative multicasts periodic sequence-numbered wait-for
// reports to the monitor. Both detect every injected deadlock with no false
// positives; the difference is the price. Detector cost = run totals minus
// the no-detector baseline.

#include "bench/bench_util.h"
#include "src/apps/rpc_deadlock.h"

int main() {
  benchutil::Header("E7 — RPC deadlock detection cost (Appendix 9.2)",
                    "both detectors find all injected deadlocks; the causal-event design "
                    "costs an order of magnitude more traffic");
  benchutil::Row("%-6s %-22s %-10s %-8s %-10s %-14s %-16s %s", "procs", "detector", "detected",
                 "false+", "lat_ms", "extra_pkts", "extra_KB", "KB_per_1k_calls");
  for (int processes : {4, 6, 8, 12}) {
    apps::RpcDeadlockConfig base;
    base.processes = processes;
    base.background_calls = 400;
    base.injected_deadlocks = 5;
    base.seed = 3;

    apps::RpcDeadlockConfig none = base;
    none.detector = apps::DeadlockDetectorKind::kNone;
    const apps::RpcDeadlockResult baseline = RunRpcDeadlockScenario(none);

    for (auto kind : {apps::DeadlockDetectorKind::kVanRenesseCausal,
                      apps::DeadlockDetectorKind::kWaitForMulticast}) {
      apps::RpcDeadlockConfig config = base;
      config.detector = kind;
      const apps::RpcDeadlockResult result = RunRpcDeadlockScenario(config);
      const uint64_t extra_packets = result.network_packets - baseline.network_packets;
      const uint64_t extra_bytes = result.network_bytes - baseline.network_bytes;
      benchutil::Row("%-6d %-22s %d/%-8d %-8d %-10.1f %-14llu %-16.1f %.1f", processes,
                     kind == apps::DeadlockDetectorKind::kVanRenesseCausal
                         ? "vanrenesse-causal"
                         : "waitfor-multicast",
                     result.detected, result.injected, result.false_positives,
                     result.mean_detection_latency_ms,
                     static_cast<unsigned long long>(extra_packets),
                     static_cast<double>(extra_bytes) / 1024.0,
                     result.app_calls_completed
                         ? 1000.0 * static_cast<double>(extra_bytes) / 1024.0 /
                               static_cast<double>(result.app_calls_completed)
                         : 0.0);
    }
    benchutil::Row("");
  }
  return 0;
}
