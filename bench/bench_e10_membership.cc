// E10 — §5: membership change (flush) cost vs group size. One member
// crashes mid-traffic; survivors run the flush protocol: exchange unstable
// messages, agree a cut, install the view — while application sends stay
// blocked. Control messages, re-forwarded bytes, and blocked time all grow
// with N.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/group.h"

int main() {
  benchutil::Header("E10 — membership change cost vs group size (§5)",
                    "flush control messages, flush payload bytes, and send-blocked time "
                    "grow with N; the whole group pauses for one failure");
  benchutil::Row("%-6s %-14s %-14s %-16s %-18s %s", "N", "flush_msgs", "flush_KB",
                 "mean_blocked_ms", "max_blocked_ms", "view_change_ok");
  for (uint32_t members : {4u, 8u, 16u, 32u}) {
    sim::Simulator s(500 + members);
    catocs::FabricConfig cfg;
    cfg.num_members = members;
    cfg.group.enable_membership = true;
    cfg.group.heartbeat_interval = sim::Duration::Millis(20);
    cfg.group.failure_timeout = sim::Duration::Millis(100);
    catocs::GroupFabric fabric(&s, cfg);
    fabric.StartAll();
    // Background causal traffic so the flush has unstable messages to carry.
    benchutil::StaggeredSenders senders(
        &s, members, sim::Duration::Millis(15),
        [](uint32_t m) { return sim::Duration::Micros(700 * (m + 1)); },
        [&fabric](uint32_t m) {
          fabric.member(m).CausalSend(std::make_shared<net::BlobPayload>("t", 256));
        });
    s.ScheduleAfter(sim::Duration::Millis(500), [&] { fabric.CrashMember(members - 1); });
    s.RunFor(sim::Duration::Seconds(5));
    senders.StopAll();
    s.RunFor(sim::Duration::Seconds(2));

    uint64_t flush_msgs = 0;
    uint64_t flush_bytes = 0;
    double blocked_sum_ms = 0;
    double blocked_max_ms = 0;
    bool all_installed = true;
    for (size_t i = 0; i + 1 < fabric.size(); ++i) {
      const auto& stats = fabric.member(i).stats();
      flush_msgs += stats.flush_control_msgs;
      flush_bytes += stats.flush_payload_bytes;
      const double blocked_ms = static_cast<double>(stats.blocked_time.nanos()) / 1e6;
      blocked_sum_ms += blocked_ms;
      blocked_max_ms = std::max(blocked_max_ms, blocked_ms);
      all_installed &= fabric.member(i).view().members.size() == members - 1;
    }
    benchutil::Row("%-6u %-14llu %-14.1f %-16.2f %-18.2f %s", members,
                   static_cast<unsigned long long>(flush_msgs),
                   static_cast<double>(flush_bytes) / 1024.0,
                   blocked_sum_ms / static_cast<double>(members - 1), blocked_max_ms,
                   all_installed ? "yes" : "NO");
  }
  return 0;
}
