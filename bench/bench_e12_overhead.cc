// E12 — §3.4 / §5: per-message ordering overhead vs group size. Vector
// timestamps plus piggybacked ack vectors grow linearly in N on every copy
// of every message; the state-level alternative (a version number, or a
// version + dependency pair) is a constant 8–24 bytes regardless of scale.
// Also compares the sequencer and token total-order variants' control
// traffic (the ablation DESIGN.md calls out).

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/group.h"
#include "src/statelevel/version.h"

namespace {

struct Overhead {
  double header_bytes_per_copy = 0;
  uint64_t order_msgs = 0;
  uint64_t token_passes = 0;
};

Overhead RunOne(uint32_t members, catocs::OrderingMode mode, catocs::TotalOrderMode total_mode) {
  sim::Simulator s(300 + members);
  catocs::FabricConfig cfg;
  cfg.num_members = members;
  cfg.group.total_order_mode = total_mode;
  catocs::GroupFabric fabric(&s, cfg);
  fabric.StartAll();
  benchutil::StaggeredSenders senders(
      &s, members, sim::Duration::Millis(40),
      [](uint32_t m) { return sim::Duration::Micros(900 * (m + 1)); },
      [&fabric, mode](uint32_t m) {
        fabric.member(m).Send(mode, std::make_shared<net::BlobPayload>("t", 200));
      });
  s.RunFor(sim::Duration::Seconds(10));
  senders.StopAll();

  Overhead result;
  uint64_t header_bytes = 0;
  uint64_t sent = 0;
  for (size_t i = 0; i < fabric.size(); ++i) {
    const auto& stats = fabric.member(i).stats();
    header_bytes += stats.ordering_header_bytes;
    sent += stats.sent;
    result.order_msgs += stats.order_msgs_sent;
    result.token_passes += stats.token_passes;
  }
  const uint64_t copies = sent * (members - 1);
  result.header_bytes_per_copy = copies ? static_cast<double>(header_bytes) / copies : 0;
  return result;
}

}  // namespace

int main() {
  benchutil::Header("E12 — per-message ordering overhead vs group size (§3.4, §5)",
                    "CATOCS header bytes grow linearly with N on every copy; the state-level "
                    "version/dependency fields are constant-size");
  statelv::VersionedUpdate plain;
  plain.object = "x";
  plain.version = 1;
  statelv::VersionedUpdate derived = plain;
  derived.dependency = statelv::Dependency{"y", 1};
  benchutil::Row("state-level ordering fields: version-only = %zu B, version+dependency = %zu B "
                 "(constant in N)\n",
                 plain.OrderingFieldBytes(), derived.OrderingFieldBytes());
  benchutil::Row("%-6s %-22s %-20s %-14s %s", "N", "mode", "hdr_bytes_per_copy", "order_msgs",
                 "token_passes");
  std::vector<double> ns;
  std::vector<double> hdrs;
  for (uint32_t members : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const Overhead causal =
        RunOne(members, catocs::OrderingMode::kCausal, catocs::TotalOrderMode::kSequencer);
    ns.push_back(members);
    hdrs.push_back(causal.header_bytes_per_copy);
    benchutil::Row("%-6u %-22s %-20.1f %-14llu %llu", members, "causal",
                   causal.header_bytes_per_copy,
                   static_cast<unsigned long long>(causal.order_msgs),
                   static_cast<unsigned long long>(causal.token_passes));
    const Overhead sequencer =
        RunOne(members, catocs::OrderingMode::kTotal, catocs::TotalOrderMode::kSequencer);
    benchutil::Row("%-6u %-22s %-20.1f %-14llu %llu", members, "total/sequencer",
                   sequencer.header_bytes_per_copy,
                   static_cast<unsigned long long>(sequencer.order_msgs),
                   static_cast<unsigned long long>(sequencer.token_passes));
    const Overhead token =
        RunOne(members, catocs::OrderingMode::kTotal, catocs::TotalOrderMode::kToken);
    benchutil::Row("%-6u %-22s %-20.1f %-14llu %llu", members, "total/token",
                   token.header_bytes_per_copy,
                   static_cast<unsigned long long>(token.order_msgs),
                   static_cast<unsigned long long>(token.token_passes));
    benchutil::Row("");
  }
  benchutil::Row("fitted exponent: causal header bytes/copy ~ N^%.2f  (paper: ~1; state-level: 0)",
                 benchutil::FitGrowthExponent(ns, hdrs));
  return 0;
}
