// Shared helpers for the experiment benches: fixed-format table printing,
// the staggered per-member send loop every fabric bench repeats, the two-tier
// LAN/WAN topology, and steady-state buffer-occupancy sampling. Each bench
// binary regenerates one figure/claim of the paper as a fixed-format table on
// stdout; EXPERIMENTS.md records the expected shapes.

#ifndef REPRO_BENCH_BENCH_UTIL_H_
#define REPRO_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/catocs/group.h"
#include "src/net/latency.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace benchutil {

inline void Header(const std::string& experiment, const std::string& claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  %s\n", claim.c_str());
  std::printf("==============================================================================\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

// Per-member periodic senders with staggered start offsets — the send-loop
// boilerplate shared by the fabric benches. Construction creates then starts
// one timer per member, in member order; timer creation order is part of the
// deterministic replay, so the helper reproduces exactly the inline
// create-then-Start sequence the benches originally used.
class StaggeredSenders {
 public:
  StaggeredSenders(sim::Simulator* simulator, size_t members, sim::Duration interval,
                   const std::function<sim::Duration(uint32_t)>& offset,
                   std::function<void(uint32_t)> send) {
    for (uint32_t m = 0; m < members; ++m) {
      timers_.push_back(
          std::make_unique<sim::PeriodicTimer>(simulator, interval, [send, m] { send(m); }));
      timers_.back()->Start(offset(m));
    }
  }

  void StopAll() {
    for (auto& timer : timers_) {
      timer->Stop();
    }
  }

 private:
  std::vector<std::unique_ptr<sim::PeriodicTimer>> timers_;
};

// Two-tier topology: clusters of `cluster_size` on a fast LAN, WAN latency
// between clusters — the paper's "diameter grows with scale".
inline std::unique_ptr<net::LatencyModel> LanWanLatency(uint32_t cluster_size,
                                                        sim::Duration lan_lo, sim::Duration lan_hi,
                                                        sim::Duration wan_lo,
                                                        sim::Duration wan_hi) {
  return std::make_unique<net::ClusteredLatency>(
      cluster_size, std::make_unique<net::UniformLatency>(lan_lo, lan_hi),
      std::make_unique<net::UniformLatency>(wan_lo, wan_hi));
}

// Steady-state retention-buffer occupancy over a fabric: per-node message
// counts, the system-wide total, and total buffered bytes, recorded every
// `interval` once Start()ed (benches start it after a warmup period).
//
// Samples land in the simulator's MetricsRegistry under labeled histograms
// ("buffer_occupancy{scope=...}"), so a bench that also calls ReportJson()
// gets occupancy for free; the accessors below keep the old direct-member
// API. A time-anchored gauge tracks the system-wide total between samples —
// Stop() closes its final interval via Gauge::FinalizeAt so the time-weighted
// mean covers the whole sampled window (see the Gauge contract in metrics.h).
class BufferOccupancySampler {
 public:
  BufferOccupancySampler(sim::Simulator* simulator, catocs::GroupFabric* fabric,
                         sim::Duration interval)
      : simulator_(simulator),
        interval_(interval),
        per_node_(simulator->metrics().GetHistogram("buffer_occupancy", {{"scope", "per_node"}})),
        total_(simulator->metrics().GetHistogram("buffer_occupancy", {{"scope", "total"}})),
        total_bytes_(
            simulator->metrics().GetHistogram("buffer_occupancy", {{"scope", "total_bytes"}})),
        total_gauge_(simulator->metrics().GetGauge("buffer_occupancy_now", {{"scope", "total"}})),
        timer_(simulator, interval, [this, fabric] {
          double run_total = 0;
          double run_bytes = 0;
          for (size_t i = 0; i < fabric->size(); ++i) {
            const double count = static_cast<double>(fabric->member(i).buffered_messages());
            per_node_.Record(count);
            run_total += count;
            run_bytes += static_cast<double>(fabric->member(i).buffered_bytes());
          }
          total_.Record(run_total);
          total_bytes_.Record(run_bytes);
          total_gauge_.SetAt(static_cast<int64_t>(run_total), simulator_->now());
        }) {}

  void Start() { timer_.Start(interval_); }
  void Stop() {
    timer_.Stop();
    total_gauge_.FinalizeAt(simulator_->now());
  }

  const sim::Histogram& per_node() const { return per_node_; }
  const sim::Histogram& total() const { return total_; }
  const sim::Histogram& total_bytes() const { return total_bytes_; }
  const sim::Gauge& total_gauge() const { return total_gauge_; }

 private:
  sim::Simulator* simulator_;
  sim::Duration interval_;
  sim::Histogram& per_node_;
  sim::Histogram& total_;
  sim::Histogram& total_bytes_;
  sim::Gauge& total_gauge_;
  sim::PeriodicTimer timer_;
};

// Least-squares slope of log(y) on log(x): the growth exponent of y ~ x^k.
inline double FitGrowthExponent(const std::vector<double>& xs, const std::vector<double>& ys) {
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) {
      continue;
    }
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) {
    return 0.0;
  }
  const double d = static_cast<double>(n) * sxx - sx * sx;
  return d == 0.0 ? 0.0 : (static_cast<double>(n) * sxy - sx * sy) / d;
}

}  // namespace benchutil

#endif  // REPRO_BENCH_BENCH_UTIL_H_
