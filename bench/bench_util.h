// Shared table-printing helpers for the experiment benches. Each bench binary
// regenerates one figure/claim of the paper as a fixed-format table on
// stdout; EXPERIMENTS.md records the expected shapes.

#ifndef REPRO_BENCH_BENCH_UTIL_H_
#define REPRO_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace benchutil {

inline void Header(const std::string& experiment, const std::string& claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  %s\n", claim.c_str());
  std::printf("==============================================================================\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

// Least-squares slope of log(y) on log(x): the growth exponent of y ~ x^k.
inline double FitGrowthExponent(const std::vector<double>& xs, const std::vector<double>& ys) {
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) {
      continue;
    }
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) {
    return 0.0;
  }
  const double d = static_cast<double>(n) * sxx - sx * sx;
  return d == 0.0 ? 0.0 : (static_cast<double>(n) * sxy - sx * sy) / d;
}

}  // namespace benchutil

#endif  // REPRO_BENCH_BENCH_UTIL_H_
