// E19 — causal provenance: how much of the ordering CATOCS enforces did the
// application actually ask for? Three measurements (DESIGN.md §8):
//   1. trading (E4's workload) and a token-passing workload (E13's traffic
//      shape) run with the provenance recorder attached, across
//      {causal+full-vector, total+full-vector, causal+hybrid-buffer} —
//      reporting the spurious-edge ratio (potential edges with no transitive
//      semantic backing) and the false-delay fraction (gating hold time that
//      bought no semantic ordering);
//   2. a hidden-channel probe inside the chaos rig manufactures known
//      out-of-band causality; the recorder's miss count is cross-checked
//      against an independent recount from the rig's delivery records;
//   3. with --trace-out=FILE, the fixed-seed trading run leaves its Chrome
//      trace-event export behind for scripts/trace_analyze.py / check.sh.

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/trading.h"
#include "src/catocs/group.h"
#include "src/catocs/pipeline_stats.h"
#include "src/fault/chaos_rig.h"
#include "src/fault/hidden_probe.h"
#include "src/obs/provenance.h"

namespace {

struct SweepConfig {
  const char* name;
  catocs::OrderingMode mode;
  catocs::CausalBufferKind buffer;
};

constexpr SweepConfig kSweep[] = {
    {"causal+full", catocs::OrderingMode::kCausal, catocs::CausalBufferKind::kFullVector},
    {"total+full", catocs::OrderingMode::kTotal, catocs::CausalBufferKind::kFullVector},
    {"causal+hybrid", catocs::OrderingMode::kCausal, catocs::CausalBufferKind::kHybrid},
};

void ProvenanceRow(const char* config, const obs::ProvenanceRecorder& rec) {
  const auto& t = rec.totals();
  benchutil::Row("%-15s %-11llu %-10llu %-10llu %-10llu %-11.3f %-11.2f %-11.2f %.3f", config,
                 static_cast<unsigned long long>(t.deliveries),
                 static_cast<unsigned long long>(t.potential_edges),
                 static_cast<unsigned long long>(t.matched_edges),
                 static_cast<unsigned long long>(t.spurious_edges), rec.SpuriousEdgeRatio(),
                 static_cast<double>(t.gating_hold_total.nanos()) / 1e6,
                 static_cast<double>(t.false_hold_total.nanos()) / 1e6, rec.FalseDelayFraction());
}

// --- 1a. trading (E4) --------------------------------------------------------

void RunTradingSweep(const std::string& trace_out) {
  benchutil::Row("%-15s %-11s %-10s %-10s %-10s %-11s %-11s %-11s %s", "config", "deliveries",
                 "pot_edges", "matched", "spurious", "spur_ratio", "gate_ms", "false_ms",
                 "false_frac");
  for (const SweepConfig& sweep : kSweep) {
    apps::TradingConfig config;
    config.price_updates = 800;
    config.mode = sweep.mode;
    config.causal_buffer = sweep.buffer;
    config.seed = 7;
    obs::ProvenanceRecorder rec;
    config.provenance = &rec;
    std::string trace;
    const bool want_trace = !trace_out.empty() && sweep.mode == catocs::OrderingMode::kCausal &&
                            sweep.buffer == catocs::CausalBufferKind::kFullVector;
    if (want_trace) {
      config.trace_json = &trace;
    }
    const apps::TradingResult result = RunTradingScenario(config);
    (void)result;
    ProvenanceRow(sweep.name, rec);
    if (want_trace) {
      std::ofstream out(trace_out, std::ios::binary);
      out << trace;
    }
  }
}

// --- 1b. token passing (E13's traffic shape) ---------------------------------

class TokenPass : public net::Payload {
 public:
  TokenPass(int token, int from, int to) : token_(token), from_(from), to_(to) {}
  size_t SizeBytes() const override { return 12; }
  std::string Describe() const override { return "token-pass"; }
  int token() const { return token_; }
  int from() const { return from_; }
  int to() const { return to_; }

 private:
  int token_;
  int from_;
  int to_;
};

void RunTokenSweep() {
  constexpr int kNodes = 6;
  constexpr int kTokens = 3;
  benchutil::Row("%-15s %-11s %-10s %-10s %-10s %-11s %-11s %-11s %s", "config", "deliveries",
                 "pot_edges", "matched", "spurious", "spur_ratio", "gate_ms", "false_ms",
                 "false_frac");
  for (const SweepConfig& sweep : kSweep) {
    sim::Simulator s(19);
    obs::ProvenanceRecorder rec;
    rec.set_enabled(true);
    catocs::FabricConfig cfg;
    cfg.num_members = kNodes;
    cfg.group.observability = true;
    cfg.group.provenance = &rec;
    cfg.group.causal_buffer = sweep.buffer;
    catocs::GroupFabric fabric(&s, cfg);

    // Each token's only semantic order is its own move chain: move n of token
    // t depends on move n-1 of token t (the move that handed the sender the
    // token). Every other ordering the stack enforces is spurious by
    // construction.
    std::vector<int> holder(kTokens);
    std::vector<bool> in_flight(kTokens, false);
    std::vector<catocs::MessageId> last_move(kTokens, catocs::MessageId{0, 0});
    for (int t = 0; t < kTokens; ++t) {
      holder[t] = t % kNodes;
    }
    for (int m = 0; m < kNodes; ++m) {
      fabric.member(static_cast<size_t>(m)).SetDeliveryHandler([&, m](const catocs::Delivery& d) {
        if (const auto* pass = net::PayloadCast<TokenPass>(d.payload())) {
          if (pass->to() == m) {
            holder[pass->token()] = m;
            last_move[pass->token()] = d.id();
            in_flight[pass->token()] = false;
          }
        }
      });
    }
    fabric.StartAll();

    sim::Rng mover_rng = s.rng().Fork();
    std::vector<std::unique_ptr<sim::PeriodicTimer>> movers;
    for (int i = 0; i < kNodes; ++i) {
      movers.push_back(
          std::make_unique<sim::PeriodicTimer>(&s, sim::Duration::Millis(8), [&, i, sweep] {
            for (int t = 0; t < kTokens; ++t) {
              if (holder[t] != i || in_flight[t]) {
                continue;
              }
              int to = static_cast<int>(mover_rng.NextBelow(kNodes));
              if (to == i) {
                to = (to + 1) % kNodes;
              }
              catocs::GroupMember& member = fabric.member(static_cast<size_t>(i));
              member.DeclareDependency(last_move[t]);
              member.Send(sweep.mode, std::make_shared<TokenPass>(t, i, to));
              in_flight[t] = true;
            }
          }));
      movers.back()->Start(sim::Duration::Micros(600 * (i + 1)));
    }
    s.RunFor(sim::Duration::Seconds(8));
    for (auto& mover : movers) {
      mover->Stop();
    }
    s.RunFor(sim::Duration::Seconds(1));
    ProvenanceRow(sweep.name, rec);
  }
}

// --- 2. hidden-channel probe + oracle cross-check ----------------------------

void RunProbeSweep() {
  benchutil::Row("%-10s %-8s %-12s %-10s %-10s %-13s %s", "mode", "rounds", "edges", "checked",
                 "missed", "oracle_missed", "crosscheck");
  for (catocs::OrderingMode mode : {catocs::OrderingMode::kCausal, catocs::OrderingMode::kTotal}) {
    sim::Simulator s(37);
    obs::ProvenanceRecorder rec;
    rec.set_enabled(true);
    fault::ChaosRigConfig cfg;
    cfg.num_slots = 4;
    cfg.group.observability = true;
    cfg.group.provenance = &rec;
    fault::ChaosRig rig(&s, cfg);
    fault::HiddenChannelProbe::Config probe_cfg;
    probe_cfg.mode = mode;
    fault::HiddenChannelProbe probe(&rig, &rec, probe_cfg);
    rig.Start();
    probe.Start();
    s.RunFor(sim::Duration::Seconds(10));
    probe.Stop();
    rig.StopWorkload();
    s.RunFor(sim::Duration::Seconds(1));

    const uint64_t oracle = fault::CountHiddenMisses(rig.deliveries(), probe.edges());
    const auto& t = rec.totals();
    benchutil::Row("%-10s %-8llu %-12llu %-10llu %-10llu %-13llu %s",
                   mode == catocs::OrderingMode::kCausal ? "causal" : "total",
                   static_cast<unsigned long long>(probe.rounds()),
                   static_cast<unsigned long long>(probe.edges_injected()),
                   static_cast<unsigned long long>(t.hidden_checked),
                   static_cast<unsigned long long>(t.hidden_missed),
                   static_cast<unsigned long long>(oracle),
                   oracle == t.hidden_missed ? "MATCH" : "MISMATCH");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    }
  }
  benchutil::Header("E19 — causal provenance: false causality and hidden channels (§2, DESIGN §8)",
                    "most potential edges are semantically spurious; total order pays extra false "
                    "delay; hidden-channel misses match an independent delivery-record recount");
  benchutil::Row("%s", "-- trading (E4 workload): theo depends on its base price, nothing else --");
  RunTradingSweep(trace_out);
  benchutil::Row("%s", "");
  benchutil::Row("%s", "-- token passing (E13 traffic): each move depends on the previous move --");
  RunTokenSweep();
  benchutil::Row("%s", "");
  benchutil::Row("%s", "-- hidden-channel probe (chaos rig): recorder vs delivery-record oracle --");
  RunProbeSweep();
  return 0;
}
