// E21 — constant-metadata causal broadcast at scale (DESIGN.md §11).
//
// The §5-style buffering/overhead sweeps (E5, E10) stop at N=64 because the
// full-vector protocol's per-message control information — the vector
// timestamp plus the piggybacked ack vector — grows linearly in the number
// of senders, and its stability gossip quadratically in N. This bench drives
// the three causal-buffer strategies through a join/leave churn sweep at
// N=64..1024 (plus an N=4096 overlay smoke cell) and measures what each
// actually puts on the wire per transmitted copy:
//
//   metadata_bytes_per_msg = ordering_header_bytes / data_transmissions
//
// full-vector and hybrid stamp the clock (and acks) on every copy, so the
// figure grows with the sender count; the overlay path disseminates over the
// spanning tree with a 9-byte causal section, so it stays constant in N —
// the acceptance target is >= 50x below full-vector at N=1024. Delivery
// delay is reported alongside: the tree's ~log4(N) extra hops are the price
// of the constant header. A linear causal-order audit (watermark form, see
// group.h) runs inline on every delivery; any violation fails the claim.
//
// Churn per cell: one member crashes mid-traffic and is deliberately
// reported (heartbeats are disabled so the detection path costs the same in
// every cell), then a fresh member joins through the flush protocol, and a
// final round of sends crosses the rewired topology.
//
// Usage: bench_e21_scale [--smoke]
//   --smoke: the two overlay-only cells (N=1024 churn, N=4096 quiescent)
//            wired into scripts/scale_smoke.sh as the CI scale gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/group.h"
#include "src/sim/simulator.h"

namespace {

struct CellResult {
  uint64_t sent = 0;
  uint64_t deliveries = 0;
  uint64_t violations = 0;
  double metadata_bytes_per_msg = 0;
  double delay_mean_ms = 0;
  double delay_p99_ms = 0;
  uint64_t ack_msgs = 0;
  uint64_t overlay_forwards = 0;
  uint64_t overlay_prebuffered = 0;
  uint64_t overlay_stale = 0;
};

// Inline linear causal audit (the watermark form of CheckCausalOrderLinear):
// at N=1024 a cell sees ~1M deliveries, so records are audited as they
// happen instead of being retained.
struct CausalAudit {
  std::map<catocs::MemberId, catocs::VectorClock> watermark;
  uint64_t violations = 0;

  void OnDeliver(catocs::MemberId at, const catocs::Delivery& d) {
    if (d.mode() == catocs::OrderingMode::kUnordered) {
      return;
    }
    catocs::VectorClock& h = watermark[at];
    if (h.Get(d.id().sender) >= d.id().seq) {
      ++violations;
    }
    h.Merge(d.vt());
  }
};

CellResult RunCell(catocs::CausalBufferKind kind, uint32_t n, bool churn) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::fprintf(stderr, "[e21] cell %s N=%u churn=%d ...\n", catocs::ToString(kind), n,
               churn ? 1 : 0);
  sim::Simulator s(2100 + n + static_cast<uint32_t>(kind));
  catocs::FabricConfig cfg;
  cfg.num_members = n;
  cfg.group.causal_buffer = kind;
  cfg.group.enable_membership = true;
  // Failure detection is driven by an explicit deliberate report below, so
  // heartbeat/failure-check timers are parked beyond the horizon — otherwise
  // the non-overlay cells pay O(N^2) heartbeat frames per interval and the
  // comparison measures the detector, not the ordering protocol.
  cfg.group.heartbeat_interval = sim::Duration::Seconds(3600);
  cfg.group.failure_timeout = sim::Duration::Seconds(7200);
  // Slow, honest stability cadence: the full-vector strategy's gossip round
  // is N^2 ack frames and its prune walks the whole member matrix, which is
  // exactly the scaling wall being measured — at one round per second the
  // N=1024 cells stay tractable while every strategy still drains.
  cfg.group.ack_gossip_interval = sim::Duration::Millis(1000);
  cfg.group.prune_interval = sim::Duration::Seconds(2);
  catocs::GroupFabric fabric(&s, cfg);

  const catocs::MemberId joiner_id = n + 100;
  std::unique_ptr<net::Transport> joiner_transport;
  std::unique_ptr<catocs::GroupMember> joiner;
  if (churn) {
    joiner_transport = std::make_unique<net::Transport>(&s, &fabric.network(), joiner_id);
    joiner = std::make_unique<catocs::GroupMember>(&s, joiner_transport.get(), cfg.group,
                                                   joiner_id, std::vector<catocs::MemberId>{
                                                       joiner_id});
  }

  CausalAudit audit;
  uint64_t deliveries = 0;
  std::vector<double> delays_ms;
  auto handler = [&audit, &deliveries, &delays_ms](catocs::MemberId at,
                                                   const catocs::Delivery& d) {
    ++deliveries;
    delays_ms.push_back(static_cast<double>((d.delivered_at - d.sent_at()).micros()) / 1000.0);
    audit.OnDeliver(at, d);
  };
  for (size_t i = 0; i < fabric.size(); ++i) {
    const catocs::MemberId id = catocs::GroupFabric::IdOf(i);
    fabric.member(i).SetDeliveryHandler(
        [&handler, id](const catocs::Delivery& d) { handler(id, d); });
  }
  if (joiner) {
    joiner->SetDeliveryHandler(
        [&handler, joiner_id](const catocs::Delivery& d) { handler(joiner_id, d); });
  }

  fabric.StartAll();
  if (joiner) {
    joiner->Start();
  }

  // Sender population is capped so the timestamp *entry count* (every
  // strategy's clocks are sparse) is fixed across the N sweep: what changes
  // with N is the receiver fan-out, which is exactly the axis under test.
  const uint32_t senders = std::min(n, 256u);
  auto payload = [] { return std::make_shared<net::BlobPayload>("t", 256); };
  for (uint32_t m = 0; m < senders; ++m) {
    for (int k = 0; k < 4; ++k) {
      s.ScheduleAfter(sim::Duration::Millis(50 + 75 * k) + sim::Duration::Micros(200 * m),
                      [&fabric, m, payload] { fabric.member(m).CausalSend(payload()); });
    }
  }

  if (churn) {
    // Leave: the member at index n-2 (id n-1) crashes mid-traffic; the
    // coordinator reports it deliberately 20ms later and runs the flush.
    s.ScheduleAfter(sim::Duration::Millis(120), [&fabric, n] { fabric.CrashMember(n - 2); });
    s.ScheduleAfter(sim::Duration::Millis(140), [&fabric, n] {
      // Deliberate: detection timers are parked (see above), so this models
      // an operator eviction rather than a heartbeat timeout.
      fabric.member(0).ReportFailure(n - 1, /*deliberate=*/true);
    });
    // Join: a fresh id enters through the flush; it appends as an overlay
    // leaf, so only its parent's link set changes.
    s.ScheduleAfter(sim::Duration::Millis(700), [&joiner] { joiner->JoinGroup(1); });
    // A final round crosses the twice-rewired topology.
    for (uint32_t m = 0; m < std::min(senders, 8u); ++m) {
      s.ScheduleAfter(sim::Duration::Millis(900 + m),
                      [&fabric, m, payload] { fabric.member(m).CausalSend(payload()); });
    }
  }

  // 2.5s covers the send window (~330ms), both churn flushes, and two
  // stability gossip rounds; each further second costs another N^2 ack round
  // in the full-vector cells without changing any reported figure.
  s.RunFor(sim::Duration::Millis(2500));

  CellResult result;
  uint64_t header_bytes = 0;
  uint64_t transmissions = 0;
  auto fold = [&](const catocs::GroupStats& stats) {
    result.sent += stats.sent;
    header_bytes += stats.ordering_header_bytes;
    transmissions += stats.data_transmissions;
    result.ack_msgs += stats.ack_msgs_sent;
    result.overlay_forwards += stats.overlay_forwards;
    result.overlay_prebuffered += stats.overlay_prebuffered;
    result.overlay_stale += stats.overlay_stale_dropped;
  };
  for (size_t i = 0; i < fabric.size(); ++i) {
    fold(fabric.member(i).stats());
  }
  if (joiner) {
    fold(joiner->stats());
  }
  result.deliveries = deliveries;
  result.violations = audit.violations;
  result.metadata_bytes_per_msg =
      transmissions == 0 ? 0.0
                         : static_cast<double>(header_bytes) / static_cast<double>(transmissions);
  if (!delays_ms.empty()) {
    double sum = 0;
    for (double d : delays_ms) {
      sum += d;
    }
    result.delay_mean_ms = sum / static_cast<double>(delays_ms.size());
    const size_t p99 = delays_ms.size() * 99 / 100;
    std::nth_element(delays_ms.begin(), delays_ms.begin() + p99, delays_ms.end());
    result.delay_p99_ms = delays_ms[p99];
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  uint64_t flushes = 0;
  uint64_t no_quorum = 0;
  uint64_t stopped = 0;
  for (size_t i = 0; i < fabric.size(); ++i) {
    flushes += fabric.member(i).stats().flushes_completed;
    no_quorum += fabric.member(i).stats().flushes_blocked_no_quorum;
    stopped += fabric.member(i).stats().sends_while_stopped;
  }
  std::fprintf(stderr,
               "[e21] cell %s N=%u churn=%d done in %.1fs (%llu deliveries, view0=%llu/%zu "
               "flushes=%llu no_quorum=%llu sends_stopped=%llu)\n",
               catocs::ToString(kind), n, churn ? 1 : 0, wall_s,
               static_cast<unsigned long long>(deliveries),
               static_cast<unsigned long long>(fabric.member(0).view().id),
               fabric.member(0).view().members.size(), static_cast<unsigned long long>(flushes),
               static_cast<unsigned long long>(no_quorum),
               static_cast<unsigned long long>(stopped));
  return result;
}

void PrintRow(const char* buffer, uint32_t n, bool churn, const CellResult& r) {
  benchutil::Row("%-12s %-6u %-6s %-8llu %-11llu %-18.1f %-12.1f %-12.1f %-10llu %llu",
                 buffer, n, churn ? "yes" : "no", static_cast<unsigned long long>(r.sent),
                 static_cast<unsigned long long>(r.deliveries), r.metadata_bytes_per_msg,
                 r.delay_mean_ms, r.delay_p99_ms, static_cast<unsigned long long>(r.ack_msgs),
                 static_cast<unsigned long long>(r.violations));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--cell") == 0 && i + 3 < argc) {
      // Debug escape hatch: run one cell and exit (not part of the sweep).
      const std::string kind_name = argv[i + 1];
      const auto kind = kind_name == "overlay" ? catocs::CausalBufferKind::kOverlay
                        : kind_name == "hybrid" ? catocs::CausalBufferKind::kHybrid
                                                : catocs::CausalBufferKind::kFullVector;
      const uint32_t n = static_cast<uint32_t>(std::atoi(argv[i + 2]));
      const bool churn = std::atoi(argv[i + 3]) != 0;
      const CellResult r = RunCell(kind, n, churn);
      PrintRow(catocs::ToString(kind), n, churn, r);
      return 0;
    }
  }

  benchutil::Header(
      "E21 — constant-metadata causal broadcast at scale (DESIGN.md §11)",
      "overlay dissemination keeps ordering metadata O(1) bytes per transmitted copy "
      "through join/leave churn; full-vector grows with the sender count");
  benchutil::Row("%-12s %-6s %-6s %-8s %-11s %-18s %-12s %-12s %-10s %s", "buffer", "N", "churn",
                 "sent", "deliveries", "metadata_B_per_msg", "delay_ms", "delay_p99", "ack_msgs",
                 "violations");

  if (smoke) {
    // The CI gate: the overlay cells alone, at and beyond the sweep ceiling.
    const CellResult churn_cell = RunCell(catocs::CausalBufferKind::kOverlay, 1024, true);
    PrintRow("overlay", 1024, true, churn_cell);
    const CellResult quiet_cell = RunCell(catocs::CausalBufferKind::kOverlay, 4096, false);
    PrintRow("overlay", 4096, false, quiet_cell);
    benchutil::Row("");
    const bool ok = churn_cell.violations == 0 && quiet_cell.violations == 0 &&
                    churn_cell.metadata_bytes_per_msg <= 32.0 &&
                    quiet_cell.metadata_bytes_per_msg <= 32.0;
    benchutil::Row("smoke: %s (violations=0, metadata <= 32 B/msg at N=1024 and N=4096)",
                   ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  std::map<std::pair<int, uint32_t>, CellResult> cells;
  const catocs::CausalBufferKind kinds[] = {catocs::CausalBufferKind::kFullVector,
                                            catocs::CausalBufferKind::kHybrid,
                                            catocs::CausalBufferKind::kOverlay};
  for (const auto kind : kinds) {
    for (uint32_t n : {64u, 256u, 1024u}) {
      const CellResult r = RunCell(kind, n, /*churn=*/true);
      cells[{static_cast<int>(kind), n}] = r;
      PrintRow(catocs::ToString(kind), n, true, r);
    }
  }

  benchutil::Row("");
  const auto& overlay_64 = cells[{static_cast<int>(catocs::CausalBufferKind::kOverlay), 64}];
  const auto& overlay_1k = cells[{static_cast<int>(catocs::CausalBufferKind::kOverlay), 1024}];
  const auto& full_1k = cells[{static_cast<int>(catocs::CausalBufferKind::kFullVector), 1024}];
  benchutil::Row("overlay metadata N=64 -> N=1024: %.1f -> %.1f B/msg (constant in N)",
                 overlay_64.metadata_bytes_per_msg, overlay_1k.metadata_bytes_per_msg);
  const double ratio = overlay_1k.metadata_bytes_per_msg == 0
                           ? 0
                           : full_1k.metadata_bytes_per_msg / overlay_1k.metadata_bytes_per_msg;
  benchutil::Row("full-vector / overlay metadata at N=1024: %.0fx (target >= 50x)", ratio);
  uint64_t violations = 0;
  for (const auto& [key, cell] : cells) {
    violations += cell.violations;
  }
  benchutil::Row("causal-order violations across all cells: %llu",
                 static_cast<unsigned long long>(violations));
  return (violations == 0 && ratio >= 50.0) ? 0 : 1;
}
