// E22 — concurrency-control policies under contention (DESIGN §12). The
// transactional competitor of §4.4 runs the same DBx1000-style workload
// (Zipfian hot keys, long/short transaction mix) under each deadlock policy:
//   detect          FIFO queues + wait-for monitor breaking cycles after the
//                   fact (the seed's design, Appendix 9.2),
//   wait-die        timestamp-ordered prevention (younger requester dies,
//                   retries with its original timestamp),
//   starvation-free wound-wait prevention (older requester wounds younger
//                   holders; 2PLSF-style restarts inherit priority).
// Reports commit throughput, abort rate, p99 commit latency (retries
// included), and each policy's overhead channel (reporter messages and
// detections vs. prevention aborts). A second leg reruns E8's no-contention
// replication comparison under each policy — without conflicts the three
// are indistinguishable, so modernizing the competitor costs nothing there.
//
// --json FILE   also writes the contention cells as google-benchmark JSON
//               (real_time = mean commit latency us; counters commits_per_s
//               and abort_rate) for scripts/bench_compare.py gating.
// --chaos       replica-crash oracle runs instead of the sweep: a replica
//               dies mid-2PC under high contention; every seed must finish
//               with zero stalls, converged survivors, and no value that
//               does not trace back to a committed transaction. Each seed
//               runs twice and must produce an identical summary.
// --policy P    restrict --chaos to one policy (chaos.sh legs).
// --seeds N / --start K   chaos seed range (default 10 from 1).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/metrics.h"
#include "src/txn/deadlock_detector.h"
#include "src/txn/replicated_store.h"
#include "src/txn/workload.h"

namespace {

using txn::DeadlockPolicy;

constexpr int kReplicas = 3;
constexpr int kClients = 16;
constexpr int kTxnsPerClient = 20;

struct Mix {
  const char* name;
  txn::WorkloadConfig workload;
};

std::vector<Mix> Mixes() {
  txn::WorkloadConfig short_mix;
  short_mix.long_txn_fraction = 0.0;
  short_mix.short_ops = 2;
  txn::WorkloadConfig long_mix;
  long_mix.long_txn_fraction = 0.3;
  long_mix.short_ops = 2;
  long_mix.long_ops = 8;
  return {{"short", short_mix}, {"long-mix", long_mix}};
}

struct CellResult {
  int commits = 0;
  int failed = 0;  // logical txns that exhausted max_attempts (still decided)
  int stalls = 0;  // txns with NO final outcome by the horizon — must be 0
  double commits_per_s = 0;
  double abort_rate = 0;  // aborted attempts / all decided attempts
  double mean_commit_us = 0;
  double p99_commit_us = 0;
  uint64_t detections = 0;
  uint64_t reports = 0;    // wait-for reports multicast to the monitor
  uint64_t deaths = 0;     // wait-die refusals
  uint64_t wounds = 0;     // wound-wait kills
};

// One contention cell: kClients closed-loop coordinators drive the workload
// against kReplicas 2PC replicas, all sharing one key universe. Keys inside
// a transaction are deliberately NOT sorted — reversed acquisition orders
// plus cross-replica prepare races are the deadlock fodder the policies are
// being compared on.
CellResult RunCell(DeadlockPolicy policy, const txn::WorkloadConfig& mix, double theta,
                   uint64_t seed) {
  sim::Simulator s(seed);
  // LAN-class latencies: the 2PC round is then sub-millisecond, so the cost
  // of holding a hot key while DOOMED — a deadlocked transaction waits out
  // the 50ms reporting period before the monitor can kill it — shows up as
  // the many rounds of hot-key service it displaces, exactly the ratio the
  // policies differ on. (E8's rerun below keeps E8's own WAN latencies.)
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Micros(100),
                                                                 sim::Duration::Micros(500)));
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<txn::TxnReplica>> replicas;
  std::vector<net::NodeId> ids;
  for (int i = 0; i < kReplicas; ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
    transports.push_back(std::make_unique<net::Transport>(&s, &network, ids.back()));
    replicas.push_back(std::make_unique<txn::TxnReplica>(&s, transports.back().get(),
                                                         txn::TxnReplicaConfig{policy}));
  }
  std::vector<std::unique_ptr<net::Transport>> client_transports;
  std::vector<std::unique_ptr<txn::TxnCoordinator>> coordinators;
  for (int c = 0; c < kClients; ++c) {
    client_transports.push_back(
        std::make_unique<net::Transport>(&s, &network, static_cast<net::NodeId>(101 + c)));
    txn::CoordinatorConfig config;
    config.id_namespace = static_cast<uint64_t>(c + 1);
    config.prepare_timeout = sim::Duration::Seconds(2);
    config.drop_slow_on_timeout = false;  // a slow vote is a lock wait, not a crash
    config.max_attempts = 200;
    config.retry_backoff = sim::Duration::Micros(250);
    coordinators.push_back(
        std::make_unique<txn::TxnCoordinator>(&s, client_transports.back().get(), ids, config));
  }

  // Detect policy: per-replica wait-for reporters feed a monitor that kills
  // the youngest cycle member at its owning coordinator. The prevention
  // policies need none of this plumbing — that asymmetry IS the overhead
  // comparison.
  net::Transport monitor_transport(&s, &network, 50);
  txn::DeadlockMonitor monitor(&s, &monitor_transport);
  std::vector<std::unique_ptr<txn::WaitForReporter>> reporters;
  if (policy == DeadlockPolicy::kDetect) {
    for (int i = 0; i < kReplicas; ++i) {
      txn::TxnReplica* replica = replicas[static_cast<size_t>(i)].get();
      reporters.push_back(std::make_unique<txn::WaitForReporter>(
          &s, transports[static_cast<size_t>(i)].get(), std::vector<net::NodeId>{50},
          sim::Duration::Millis(50),  // the repo-wide report period (rpc_deadlock.h)
          [replica] { return replica->lock_manager().WaitForEdges(); }));
      reporters.back()->Start();
    }
    monitor.SetDeadlockHandler([&coordinators](const std::vector<uint64_t>& cycle) {
      std::vector<uint64_t> by_age(cycle);
      std::sort(by_age.begin(), by_age.end(), std::greater<uint64_t>());
      for (uint64_t uid : by_age) {
        const size_t owner = static_cast<size_t>(uid >> 40);
        if (owner >= 1 && owner <= coordinators.size() &&
            coordinators[owner - 1]->AbortInFlight(uid)) {
          break;
        }
      }
    });
  }

  txn::WorkloadConfig wl = mix;
  wl.zipf_theta = theta;
  sim::Histogram latency;
  int commits = 0;
  int finished = 0;
  sim::TimePoint first_issue = sim::TimePoint::Max();
  sim::TimePoint last_done;
  std::vector<std::unique_ptr<txn::WorkloadGenerator>> generators;
  for (int c = 0; c < kClients; ++c) {
    generators.push_back(std::make_unique<txn::WorkloadGenerator>(
        wl, seed * 1000 + static_cast<uint64_t>(c), /*sort_keys=*/false));
  }
  // The recursive issue closures are owned here, not by themselves — a
  // lambda capturing its own shared_ptr is a reference cycle (leak).
  std::vector<std::shared_ptr<std::function<void(int)>>> issue_loops;
  for (int c = 0; c < kClients; ++c) {
    issue_loops.push_back(std::make_shared<std::function<void(int)>>());
    std::function<void(int)>* issue = issue_loops.back().get();
    *issue = [&, c, issue](int i) {
      if (i >= kTxnsPerClient) {
        return;
      }
      txn::TxnSpec spec = generators[static_cast<size_t>(c)]->NextTxn();
      std::map<std::string, double> writes;
      const double value = static_cast<double>((c + 1) * 100000 + i);
      for (const std::string& key : spec.WriteKeys()) {
        writes[key] = value;
      }
      const sim::TimePoint started = s.now();
      if (started < first_issue) {
        first_issue = started;
      }
      coordinators[static_cast<size_t>(c)]->WriteMany(
          std::move(writes), [&, issue, i, started](bool ok) {
            if (ok) {
              ++commits;
              latency.Record(static_cast<double>((s.now() - started).nanos()) / 1000.0);
            }
            ++finished;
            last_done = s.now();
            (*issue)(i + 1);
          });
    };
    s.ScheduleAfter(sim::Duration::Micros(100 * static_cast<uint64_t>(c + 1)),
                    [issue] { (*issue)(0); });
  }
  s.RunFor(sim::Duration::Seconds(300));
  for (auto& reporter : reporters) {
    reporter->Stop();
  }

  CellResult out;
  out.commits = commits;
  out.stalls = kClients * kTxnsPerClient - finished;
  uint64_t aborted = 0;
  uint64_t committed = 0;
  for (auto& c : coordinators) {
    aborted += c->stats().aborted;
    committed += c->stats().committed;
    out.failed += static_cast<int>(c->stats().failed);
  }
  out.abort_rate = (aborted + committed) > 0
                       ? static_cast<double>(aborted) / static_cast<double>(aborted + committed)
                       : 0.0;
  const double elapsed_s = (last_done - first_issue).seconds();
  out.commits_per_s = elapsed_s > 0 ? commits / elapsed_s : 0;
  out.mean_commit_us = latency.mean();
  out.p99_commit_us = latency.Quantile(0.99);
  out.detections = monitor.detections();
  for (auto& reporter : reporters) {
    out.reports += reporter->reports_sent();
  }
  for (auto& r : replicas) {
    out.deaths += r->lock_manager().stats().wait_die_aborts;
    out.wounds += r->lock_manager().stats().wounds;
  }
  return out;
}

// E8's no-contention leg (single closed-loop coordinator, round-robin keys,
// seed 77) rerun with the replica lock policy swapped: the policies only
// act under conflict, so these rows should be identical.
struct E8Perf {
  double mean_latency_us = 0;
  double p99_latency_us = 0;
  double throughput_per_s = 0;
};

E8Perf RunE8Style(DeadlockPolicy policy) {
  constexpr int kWrites = 300;
  sim::Simulator s(77);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<txn::TxnReplica>> nodes;
  std::vector<net::NodeId> ids;
  for (int i = 0; i < kReplicas; ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
    transports.push_back(std::make_unique<net::Transport>(&s, &network, ids.back()));
    nodes.push_back(std::make_unique<txn::TxnReplica>(&s, transports.back().get(),
                                                      txn::TxnReplicaConfig{policy}));
  }
  txn::TxnCoordinator coordinator(&s, transports[0].get(), ids);
  sim::Histogram latency;
  int done = 0;
  sim::TimePoint first_issue;
  sim::TimePoint last_done;
  std::function<void(int)> issue = [&](int k) {
    if (k >= kWrites) {
      return;
    }
    const sim::TimePoint started = s.now();
    if (k == 0) {
      first_issue = started;
    }
    coordinator.Write("key" + std::to_string(k % 32), k, [&, started, k](bool ok) {
      if (ok) {
        latency.Record(static_cast<double>((s.now() - started).nanos()) / 1000.0);
      }
      ++done;
      last_done = s.now();
      issue(k + 1);
    });
  };
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { issue(0); });
  s.RunFor(sim::Duration::Seconds(120));
  E8Perf perf;
  perf.mean_latency_us = latency.mean();
  perf.p99_latency_us = latency.Quantile(0.99);
  const double elapsed_s = (last_done - first_issue).seconds();
  perf.throughput_per_s = elapsed_s > 0 ? done / elapsed_s : 0;
  return perf;
}

// --- chaos oracle ------------------------------------------------------------

// One chaos seed: high-contention load with a replica crashing mid-2PC.
// drop_slow_on_timeout is ON (the seed's write-all-available rule) with a
// timeout far above any lock wait, so only the genuinely dead replica gets
// dropped. Returns a deterministic summary string; `ok` reports the oracle.
struct ChaosOutcome {
  bool ok = true;
  std::string why;
  std::string summary;
};

ChaosOutcome RunChaosSeed(DeadlockPolicy policy, uint64_t seed) {
  constexpr int kChaosClients = 4;
  constexpr int kChaosTxns = 25;
  sim::Simulator s(seed);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<txn::TxnReplica>> replicas;
  std::vector<net::NodeId> ids;
  for (int i = 0; i < kReplicas; ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
    transports.push_back(std::make_unique<net::Transport>(&s, &network, ids.back()));
    replicas.push_back(std::make_unique<txn::TxnReplica>(&s, transports.back().get(),
                                                         txn::TxnReplicaConfig{policy}));
  }
  std::vector<std::unique_ptr<net::Transport>> client_transports;
  std::vector<std::unique_ptr<txn::TxnCoordinator>> coordinators;
  for (int c = 0; c < kChaosClients; ++c) {
    client_transports.push_back(
        std::make_unique<net::Transport>(&s, &network, static_cast<net::NodeId>(101 + c)));
    txn::CoordinatorConfig config;
    config.id_namespace = static_cast<uint64_t>(c + 1);
    config.prepare_timeout = sim::Duration::Seconds(2);
    config.drop_slow_on_timeout = true;  // crashed replicas must be droppable
    config.max_attempts = 200;
    config.retry_backoff = sim::Duration::Millis(1);
    coordinators.push_back(
        std::make_unique<txn::TxnCoordinator>(&s, client_transports.back().get(), ids, config));
  }
  net::Transport monitor_transport(&s, &network, 50);
  txn::DeadlockMonitor monitor(&s, &monitor_transport);
  std::vector<std::unique_ptr<txn::WaitForReporter>> reporters;
  if (policy == DeadlockPolicy::kDetect) {
    for (int i = 0; i < kReplicas; ++i) {
      txn::TxnReplica* replica = replicas[static_cast<size_t>(i)].get();
      reporters.push_back(std::make_unique<txn::WaitForReporter>(
          &s, transports[static_cast<size_t>(i)].get(), std::vector<net::NodeId>{50},
          sim::Duration::Millis(50),  // the repo-wide report period (rpc_deadlock.h)
          [replica] { return replica->lock_manager().WaitForEdges(); }));
      reporters.back()->Start();
    }
    monitor.SetDeadlockHandler([&coordinators](const std::vector<uint64_t>& cycle) {
      std::vector<uint64_t> by_age(cycle);
      std::sort(by_age.begin(), by_age.end(), std::greater<uint64_t>());
      for (uint64_t uid : by_age) {
        const size_t owner = static_cast<size_t>(uid >> 40);
        if (owner >= 1 && owner <= coordinators.size() &&
            coordinators[owner - 1]->AbortInFlight(uid)) {
          break;
        }
      }
    });
  }

  txn::WorkloadConfig wl;
  wl.zipf_theta = 1.2;
  wl.long_txn_fraction = 0.3;
  wl.long_ops = 8;
  // Commit log in decision order. 2PL serializes same-key commit decisions
  // (a later writer's prepare is not granted anywhere until the earlier
  // decision arrived there), so replaying this log per replica — applying
  // only the commits whose participant set contains it — yields the EXACT
  // store every live replica must end with. Lost, phantom, and duplicated
  // commits all surface as a mismatch.
  struct CommitRecord {
    std::map<std::string, double> writes;
    std::vector<net::NodeId> participants;
  };
  std::vector<CommitRecord> commit_log;
  int commits = 0;
  int finished = 0;
  std::vector<std::unique_ptr<txn::WorkloadGenerator>> generators;
  for (int c = 0; c < kChaosClients; ++c) {
    generators.push_back(std::make_unique<txn::WorkloadGenerator>(
        wl, seed * 1000 + static_cast<uint64_t>(c), /*sort_keys=*/false));
  }
  // Owned here, not self-captured (see RunCell).
  std::vector<std::shared_ptr<std::function<void(int)>>> issue_loops;
  for (int c = 0; c < kChaosClients; ++c) {
    issue_loops.push_back(std::make_shared<std::function<void(int)>>());
    std::function<void(int)>* issue = issue_loops.back().get();
    *issue = [&, c, issue](int i) {
      if (i >= kChaosTxns) {
        return;
      }
      txn::TxnSpec spec = generators[static_cast<size_t>(c)]->NextTxn();
      std::map<std::string, double> writes;
      const double value = static_cast<double>((c + 1) * 100000 + i);
      for (const std::string& key : spec.WriteKeys()) {
        writes[key] = value;
      }
      coordinators[static_cast<size_t>(c)]->WriteMany(std::move(writes),
                                                      [&, issue, i](bool ok) {
                                                        if (ok) {
                                                          ++commits;
                                                        }
                                                        ++finished;
                                                        (*issue)(i + 1);
                                                      });
    };
    s.ScheduleAfter(sim::Duration::Micros(100 * static_cast<uint64_t>(c + 1)),
                    [issue] { (*issue)(0); });
  }
  for (auto& c : coordinators) {
    c->SetCommitObserver([&commit_log](uint64_t txn, const std::map<std::string, double>& writes,
                                       const std::vector<net::NodeId>& participants) {
      (void)txn;
      commit_log.push_back({writes, participants});
    });
  }

  // The crash: one replica drops off the network mid-run, prepared-but-
  // undecided transactions and all. Crash time and victim vary by seed.
  const net::NodeId victim = static_cast<net::NodeId>(1 + seed % kReplicas);
  const sim::Duration crash_at = sim::Duration::Millis(500 + (seed * 137) % 1500);
  s.ScheduleAfter(crash_at, [&network, victim] { network.SetNodeUp(victim, false); });
  s.RunFor(sim::Duration::Seconds(600));
  for (auto& reporter : reporters) {
    reporter->Stop();
  }

  ChaosOutcome out;
  int failed = 0;
  for (auto& c : coordinators) {
    failed += static_cast<int>(c->stats().failed);
  }
  const int expected = kChaosClients * kChaosTxns;
  if (finished != expected) {
    out.ok = false;
    out.why = "stall: " + std::to_string(expected - finished) + " txns never decided";
  }
  // Exact-store oracle: every live replica must equal the replay of the
  // commit log restricted to the commits it participated in.
  double store_sum = 0;
  size_t store_keys = 0;
  for (size_t i = 0; out.ok && i < replicas.size(); ++i) {
    const net::NodeId id = ids[i];
    if (id == victim) {
      continue;  // crashed: its store may lawfully be behind
    }
    std::map<std::string, double> want;
    for (const CommitRecord& commit : commit_log) {
      if (std::find(commit.participants.begin(), commit.participants.end(), id) !=
          commit.participants.end()) {
        for (const auto& [key, value] : commit.writes) {
          want[key] = value;
        }
      }
    }
    if (replicas[i]->store() != want) {
      out.ok = false;
      out.why = "replica " + std::to_string(id) +
                " store mismatch vs commit-log replay (lost or phantom commit)";
      break;
    }
    if (store_keys == 0) {
      for (const auto& [key, value] : want) {
        (void)key;
        store_sum += value;
        ++store_keys;
      }
    }
  }
  char digest[160];
  std::snprintf(digest, sizeof(digest), "commits=%d failed=%d keys=%zu sum=%.0f", commits,
                failed, store_keys, store_sum);
  out.summary = digest;
  return out;
}

int RunChaos(const std::vector<DeadlockPolicy>& policies, uint64_t seeds, uint64_t start) {
  int failures = 0;
  for (DeadlockPolicy policy : policies) {
    for (uint64_t seed = start; seed < start + seeds; ++seed) {
      ChaosOutcome a = RunChaosSeed(policy, seed);
      ChaosOutcome b = RunChaosSeed(policy, seed);
      const bool deterministic = a.summary == b.summary;
      const bool ok = a.ok && deterministic;
      std::printf("chaos policy=%-15s seed=%-4llu %s  [%s]%s%s\n",
                  txn::DeadlockPolicyName(policy), static_cast<unsigned long long>(seed),
                  ok ? "PASS" : "FAIL", a.summary.c_str(),
                  a.ok ? "" : ("  " + a.why).c_str(),
                  deterministic ? "" : "  NONDETERMINISTIC RERUN");
      if (!ok) {
        ++failures;
      }
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "bench_e22_contention --chaos: %d seed(s) failed\n", failures);
    return 1;
  }
  return 0;
}

// --- JSON (google-benchmark format, for scripts/bench_compare.py) ------------

struct JsonCell {
  std::string name;
  CellResult result;
};

void WriteJson(const char* path, const std::vector<JsonCell>& cells) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_e22_contention: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"context\": {\n");
#ifdef NDEBUG
  std::fprintf(f, "    \"repro_build_type\": \"release\"\n");
#else
  std::fprintf(f, "    \"repro_build_type\": \"debug\"\n");
#endif
  std::fprintf(f, "  },\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i].result;
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"iterations\": 1,\n"
                 "      \"real_time\": %.3f,\n"
                 "      \"cpu_time\": %.3f,\n"
                 "      \"time_unit\": \"us\",\n"
                 "      \"commits_per_s\": %.3f,\n"
                 "      \"abort_rate\": %.6f\n"
                 "    }%s\n",
                 cells[i].name.c_str(), cells[i].name.c_str(), r.mean_commit_us, r.mean_commit_us,
                 r.commits_per_s, r.abort_rate, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool chaos = false;
  uint64_t seeds = 10;
  uint64_t start = 1;
  std::vector<DeadlockPolicy> policies = {DeadlockPolicy::kDetect, DeadlockPolicy::kWaitDie,
                                          DeadlockPolicy::kStarvationFree};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc) {
      start = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      DeadlockPolicy parsed;
      if (!txn::ParseDeadlockPolicy(argv[++i], &parsed)) {
        std::fprintf(stderr, "unknown policy %s (detect|wait-die|starvation-free)\n", argv[i]);
        return 1;
      }
      policies = {parsed};
    } else {
      std::fprintf(stderr,
                   "usage: bench_e22_contention [--json FILE] "
                   "[--chaos [--policy P] [--seeds N] [--start K]]\n");
      return 1;
    }
  }

  if (chaos) {
    return RunChaos(policies, seeds, start);
  }

  benchutil::Header(
      "E22 — concurrency control under contention: detect vs wait-die vs wound-wait (§9.2)",
      "prevention policies resolve conflicts at acquire time; the detect policy pays a "
      "monitor round-trip per deadlock, which serializes the hot keys");
  benchutil::Row("%-16s %-6s %-9s %-9s %-11s %-8s %-11s %-12s %-7s %s", "policy", "theta",
                 "mix", "commits", "commits/s", "abort%", "p99_ms", "detect(ovh)", "deaths",
                 "wounds  [failed/stalls]");
  std::vector<JsonCell> json_cells;
  CellResult hot_detect;
  CellResult hot_wait_die;
  CellResult hot_starvation_free;
  const std::vector<Mix> mixes = Mixes();
  for (DeadlockPolicy policy : policies) {
    for (double theta : {0.0, 0.8, 1.2}) {
      for (const Mix& mix : mixes) {
        const uint64_t seed = 900 + static_cast<uint64_t>(theta * 10);
        CellResult r = RunCell(policy, mix.workload, theta, seed);
        char detect_col[48];
        std::snprintf(detect_col, sizeof(detect_col), "%llu/%llu",
                      static_cast<unsigned long long>(r.detections),
                      static_cast<unsigned long long>(r.reports));
        benchutil::Row("%-16s %-6.1f %-9s %-9d %-11.1f %-8.1f %-11.2f %-12s %-7llu %-7llu [%d/%d]",
                       txn::DeadlockPolicyName(policy), theta, mix.name, r.commits,
                       r.commits_per_s, 100.0 * r.abort_rate, r.p99_commit_us / 1000.0,
                       detect_col, static_cast<unsigned long long>(r.deaths),
                       static_cast<unsigned long long>(r.wounds), r.failed, r.stalls);
        char name[128];
        std::snprintf(name, sizeof(name), "E22_Contention/policy=%s/theta=%.1f/mix=%s",
                      txn::DeadlockPolicyName(policy), theta, mix.name);
        json_cells.push_back({name, r});
        if (theta == 1.2 && std::strcmp(mix.name, "long-mix") == 0) {
          if (policy == DeadlockPolicy::kDetect) {
            hot_detect = r;
          } else if (policy == DeadlockPolicy::kWaitDie) {
            hot_wait_die = r;
          } else {
            hot_starvation_free = r;
          }
        }
      }
    }
    benchutil::Row("");
  }
  if (hot_detect.commits_per_s > 0 && policies.size() == 3) {
    benchutil::Row("hottest cell (theta=1.2, long-mix) speedup over detect: wait-die %.2fx, "
                   "wound-wait %.2fx",
                   hot_wait_die.commits_per_s / hot_detect.commits_per_s,
                   hot_starvation_free.commits_per_s / hot_detect.commits_per_s);
  }

  benchutil::Row("");
  benchutil::Row("E8 rerun (no contention, single coordinator, %d replicas): policy is free "
                 "without conflicts",
                 kReplicas);
  benchutil::Row("%-16s %-14s %-14s %s", "policy", "mean_lat_us", "p99_lat_us", "writes/s");
  for (DeadlockPolicy policy : policies) {
    E8Perf perf = RunE8Style(policy);
    benchutil::Row("%-16s %-14.1f %-14.1f %.1f", txn::DeadlockPolicyName(policy),
                   perf.mean_latency_us, perf.p99_latency_us, perf.throughput_per_s);
  }

  if (json_path != nullptr) {
    WriteJson(json_path, json_cells);
  }
  return 0;
}
