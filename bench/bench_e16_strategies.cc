// E16 — causal-buffer strategy comparison on the E5 workload. The same
// all-to-all causal traffic over the clustered LAN/WAN topology, run once
// per retention strategy: the paper-faithful full-vector tracker (throttled
// matrix-walk pruning) versus the hybrid buffer (incremental per-sender
// stability floors fed by explicit acks plus causal-timestamp evidence,
// releasing messages the moment they become stable instead of at the next
// prune tick). Both see identical traffic — the strategy is local
// bookkeeping — so per-node occupancy is directly comparable. The hybrid
// buffer's zero release lag should show up as strictly lower steady-state
// occupancy once groups are large enough for the prune throttle to matter.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/causal_buffer.h"
#include "src/catocs/group.h"

namespace {

struct Sample {
  double per_node_mean = 0;
  double per_node_peak = 0;
  double total_mean = 0;
};

Sample RunOne(uint32_t members, catocs::CausalBufferKind kind) {
  sim::Simulator s(1000 + members);
  catocs::FabricConfig cfg;
  cfg.num_members = members;
  cfg.group.causal_buffer = kind;
  catocs::GroupFabric fabric(
      &s, cfg,
      benchutil::LanWanLatency(8, sim::Duration::Millis(1), sim::Duration::Millis(5),
                               sim::Duration::Millis(10), sim::Duration::Millis(30)));
  fabric.StartAll();

  // Fixed per-process rate: one causal multicast every 25ms (E5's workload).
  benchutil::StaggeredSenders senders(
      &s, members, sim::Duration::Millis(25),
      [](uint32_t m) { return sim::Duration::Micros(500 + 400 * m); },
      [&fabric](uint32_t m) {
        fabric.member(m).CausalSend(std::make_shared<net::BlobPayload>("t", 256));
      });

  benchutil::BufferOccupancySampler sampler(&s, &fabric, sim::Duration::Millis(10));
  s.RunFor(sim::Duration::Seconds(1));
  sampler.Start();
  s.RunFor(sim::Duration::Seconds(6));
  sampler.Stop();
  senders.StopAll();

  double peak = 0;
  for (size_t i = 0; i < fabric.size(); ++i) {
    peak = std::max(peak, static_cast<double>(fabric.member(i).peak_buffered_messages()));
  }
  return Sample{sampler.per_node().mean(), peak, sampler.total().mean()};
}

}  // namespace

int main() {
  benchutil::Header(
      "E16 — retention-buffer strategies on the E5 workload",
      "full-vector (throttled prune) vs hybrid (incremental floors + implicit acks): "
      "same traffic, per-node steady-state occupancy compared");
  benchutil::Row("%-8s %-16s %-14s %-16s %-14s %s", "N", "full_mean_msgs", "full_peak",
                 "hybrid_mean_msgs", "hybrid_peak", "hybrid/full");
  for (uint32_t members : {4u, 8u, 16u, 32u, 48u, 64u}) {
    const Sample full = RunOne(members, catocs::CausalBufferKind::kFullVector);
    const Sample hybrid = RunOne(members, catocs::CausalBufferKind::kHybrid);
    const double ratio = full.per_node_mean > 0 ? hybrid.per_node_mean / full.per_node_mean : 0;
    benchutil::Row("%-8u %-16.1f %-14.0f %-16.1f %-14.0f %.2f", members, full.per_node_mean,
                   full.per_node_peak, hybrid.per_node_mean, hybrid.per_node_peak, ratio);
  }
  benchutil::Row("");
  benchutil::Row("hybrid < full expected at larger N: the full-vector tracker holds stable");
  benchutil::Row("messages until the next prune tick (up to 25ms); the hybrid buffer releases");
  benchutil::Row("them the moment its per-sender floor advances.");
  return 0;
}
