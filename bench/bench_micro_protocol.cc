// Microbenchmarks (google-benchmark) for the protocol hot paths: the
// per-message costs the paper argues will dominate as networks get faster
// (§3.4): vector clock updates/comparison, the causal deliverability check,
// delay-queue processing, and the state-level alternatives (version compare,
// ordered-cache apply) for contrast.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/catocs/group.h"
#include "src/catocs/stability.h"
#include "src/catocs/vector_clock.h"
#include "src/catocs/wire_codec.h"
#include "src/mem/arena.h"
#include "src/mem/pool.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/statelevel/ordered_cache.h"
#include "src/txn/lock_manager.h"
#include "src/txn/occ.h"

namespace {

catocs::VectorClock FullClock(int members, uint64_t base) {
  catocs::VectorClock vc;
  for (int m = 0; m < members; ++m) {
    vc.Set(static_cast<catocs::MemberId>(m + 1), base + static_cast<uint64_t>(m));
  }
  return vc;
}

void BM_VectorClockIncrement(benchmark::State& state) {
  catocs::VectorClock vc;
  for (int m = 0; m < state.range(0); ++m) {
    vc.Set(static_cast<catocs::MemberId>(m + 1), 1);
  }
  catocs::MemberId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vc.Increment(id));
  }
}
BENCHMARK(BM_VectorClockIncrement)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_VectorClockCompare(benchmark::State& state) {
  catocs::VectorClock a;
  catocs::VectorClock b;
  for (int m = 0; m < state.range(0); ++m) {
    a.Set(static_cast<catocs::MemberId>(m + 1), static_cast<uint64_t>(m));
    b.Set(static_cast<catocs::MemberId>(m + 1), static_cast<uint64_t>(m + (m % 2)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_VectorClockCompare)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_VectorClockMerge(benchmark::State& state) {
  catocs::VectorClock a;
  catocs::VectorClock b;
  for (int m = 0; m < state.range(0); ++m) {
    a.Set(static_cast<catocs::MemberId>(m + 1), static_cast<uint64_t>(m));
    b.Set(static_cast<catocs::MemberId>(m + 1), static_cast<uint64_t>(2 * m));
  }
  for (auto _ : state) {
    catocs::VectorClock c = a;
    c.Merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockDominates(benchmark::State& state) {
  catocs::VectorClock big = FullClock(static_cast<int>(state.range(0)), 2);
  catocs::VectorClock small = FullClock(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(big.Dominates(small));
  }
}
BENCHMARK(BM_VectorClockDominates)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The per-message receive-path gate, as the raw-speed layer runs it for a
// delta-stamped frame: vd[sender]+1 == seq, then only the entries that
// changed since the sender's previous frame. Constant-time for a burst
// sender (one changed entry) regardless of group size; the O(N) full scan it
// replaces is kept below as BM_CausallyDeliverableFull.
void BM_CausallyDeliverable(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  catocs::VectorClock delivered = FullClock(members, 5);
  const uint64_t seq = delivered.Get(1) + 1;
  catocs::WireVt wire;
  wire.keyframe = false;
  wire.entries = {{1, seq}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(catocs::CausallyDeliverableDelta(wire, 1, seq, delivered));
  }
}
BENCHMARK(BM_CausallyDeliverable)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The pre-delta gate: vt[sender] == vd[sender]+1 and vt[m] <= vd[m]
// elsewhere, fused into one scan over the full clock. Still the path taken
// by keyframes and by frames without a wire timestamp.
void BM_CausallyDeliverableFull(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  catocs::VectorClock delivered = FullClock(members, 5);
  catocs::VectorClock vt = delivered;
  vt.Increment(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(catocs::CausallyDeliverable(vt, 1, delivered));
  }
}
BENCHMARK(BM_CausallyDeliverableFull)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Multicast fan-out per app message with sender-side batching: 32 sends
// share one stamped GroupBatch frame, so each app message's share of the
// wire fan-out is 1/32 of a pointer store per recipient. One iteration is
// one app message; every 32nd iteration broadcasts the frame. The unbatched
// O(N)-stores-per-message shape is kept below for contrast.
void BM_MulticastFanout(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  constexpr uint64_t kBatch = 32;
  std::vector<catocs::GroupDataPtr> entries;
  for (uint64_t i = 1; i <= kBatch; ++i) {
    entries.push_back(mem::MakePooled<catocs::GroupData>(
        1, catocs::MessageId{1, i}, catocs::OrderingMode::kCausal, FullClock(members, 3),
        std::make_shared<net::BlobPayload>("b", 256), sim::TimePoint::Zero()));
  }
  auto batch = mem::MakePooled<catocs::GroupBatch>(1, std::move(entries));
  std::vector<net::PayloadPtr> links(static_cast<size_t>(members));
  uint64_t msg = 0;
  for (auto _ : state) {
    if (++msg % kBatch == 0) {
      for (auto& slot : links) {
        slot = batch;
      }
    }
    benchmark::DoNotOptimize(links.data());
    benchmark::ClobberMemory();
  }
  state.counters["per_recipient"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * members, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MulticastFanout)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Unbatched fan-out: one timestamped message handed to N recipients per
// iteration. The shared_ptr-per-delivery design makes this O(N) refcounts
// rather than O(N) header deep-copies.
void BM_MulticastFanoutUnbatched(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  auto data = std::make_shared<catocs::GroupData>(
      1, catocs::MessageId{1, 9}, catocs::OrderingMode::kCausal, FullClock(members, 3),
      std::make_shared<net::BlobPayload>("b", 256), sim::TimePoint::Zero());
  std::vector<catocs::Delivery> inboxes(static_cast<size_t>(members));
  for (auto _ : state) {
    for (auto& slot : inboxes) {
      slot.data = data;
      slot.total_seq = 0;
    }
    benchmark::DoNotOptimize(inboxes.data());
    benchmark::ClobberMemory();
  }
  state.counters["per_recipient"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * members, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MulticastFanoutUnbatched)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Message allocation churn through the size-class pool: steady-state the
// pool serves every allocation from its free lists (one fused control+object
// block, LIFO reuse), versus the general-purpose allocator.
void BM_PooledMessageChurn(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const catocs::VectorClock vt = FullClock(members, 3);
  auto payload = std::make_shared<net::BlobPayload>("b", 64);
  for (auto _ : state) {
    auto data = mem::MakePooled<catocs::GroupData>(1, catocs::MessageId{1, 9},
                                                   catocs::OrderingMode::kCausal, vt, payload,
                                                   sim::TimePoint::Zero());
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_PooledMessageChurn)->Arg(4)->Arg(64);

void BM_HeapMessageChurn(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const catocs::VectorClock vt = FullClock(members, 3);
  auto payload = std::make_shared<net::BlobPayload>("b", 64);
  for (auto _ : state) {
    auto data = std::make_shared<catocs::GroupData>(1, catocs::MessageId{1, 9},
                                                    catocs::OrderingMode::kCausal, vt, payload,
                                                    sim::TimePoint::Zero());
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_HeapMessageChurn)->Arg(4)->Arg(64);

// Arena scratch: the token window's merge staging — allocate a run, fill,
// reset. Steady-state this never touches the heap.
void BM_ArenaScratchCycle(benchmark::State& state) {
  mem::Arena arena;
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto* slots = static_cast<uint64_t*>(arena.Allocate(n * sizeof(uint64_t), alignof(uint64_t)));
    for (size_t i = 0; i < n; ++i) {
      slots[i] = i;
    }
    benchmark::DoNotOptimize(slots);
    arena.Reset();
  }
}
BENCHMARK(BM_ArenaScratchCycle)->Arg(64)->Arg(512);

// Stability advance: every member reports its delivered vector, then the
// tracker computes the stable floor and prunes. This is the ack-gossip path
// that dominates E5's buffering sweep.
void BM_StabilityAdvance(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  std::vector<catocs::MemberId> ids;
  for (int m = 0; m < members; ++m) {
    ids.push_back(static_cast<catocs::MemberId>(m + 1));
  }
  uint64_t round = 1;
  catocs::StabilityTracker tracker;
  tracker.SetMembers(ids);
  for (auto _ : state) {
    catocs::VectorClock report = FullClock(members, round++);
    for (catocs::MemberId m : ids) {
      tracker.UpdateMemberVector(m, report);
    }
    benchmark::DoNotOptimize(tracker.StableVector());
    tracker.Prune();
  }
}
BENCHMARK(BM_StabilityAdvance)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Schedule/cancel churn with most timers cancelled before firing — the
// retransmit-timer pattern that makes heap compaction matter.
void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue queue;
  uint64_t fired = 0;
  sim::TimePoint now = sim::TimePoint::Zero();
  for (auto _ : state) {
    std::vector<sim::EventId> pending;
    pending.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      now = now + sim::Duration::Micros(1);
      pending.push_back(queue.Schedule(now, [&fired] { ++fired; }));
    }
    // Cancel 15 of every 16 (acks beat the retransmit timer).
    for (size_t i = 0; i < pending.size(); ++i) {
      if (i % 16 != 0) {
        queue.Cancel(pending[i]);
      }
    }
    while (!queue.Empty()) {
      queue.PopNext().fn();
    }
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueueChurn)->Unit(benchmark::kMicrosecond);

// Histogram quantile reads over a populated reservoir. Report() asks for
// several quantiles per histogram; the cached sorted view means the burst
// sorts once instead of copying + sorting the whole reservoir per call —
// this case reads four quantiles per iteration over a static histogram,
// which the cache turns from four O(n log n) sorts into four O(1) lookups.
void BM_HistogramQuantileBurst(benchmark::State& state) {
  sim::Histogram h;
  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < state.range(0); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.Record(static_cast<double>(x % 100000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Quantile(0.50));
    benchmark::DoNotOptimize(h.Quantile(0.90));
    benchmark::DoNotOptimize(h.Quantile(0.99));
    benchmark::DoNotOptimize(h.Quantile(1.00));
  }
}
BENCHMARK(BM_HistogramQuantileBurst)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// The mixed pattern: one record between quantile reads, so every read pays
// one sort of the current reservoir — the pre-cache worst case, for contrast.
void BM_HistogramRecordThenQuantile(benchmark::State& state) {
  sim::Histogram h;
  for (int i = 0; i < state.range(0); ++i) {
    h.Record(static_cast<double>(i));
  }
  double v = 0;
  for (auto _ : state) {
    h.Record(v);
    v += 1.0;
    benchmark::DoNotOptimize(h.Quantile(0.99));
  }
}
BENCHMARK(BM_HistogramRecordThenQuantile)->Arg(1 << 10)->Arg(1 << 16);

// Versus: the state-level "ordering check" is one integer compare.
void BM_StateLevelVersionCompare(benchmark::State& state) {
  uint64_t current = 41;
  uint64_t incoming = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(incoming > current);
    benchmark::DoNotOptimize(current);
  }
}
BENCHMARK(BM_StateLevelVersionCompare);

void BM_OrderedCacheApply(benchmark::State& state) {
  statelv::OrderedCache cache;
  uint64_t version = 0;
  statelv::VersionedUpdate update;
  update.object = "obj";
  for (auto _ : state) {
    update.version = ++version;
    benchmark::DoNotOptimize(cache.Apply(update));
  }
}
BENCHMARK(BM_OrderedCacheApply);

// End-to-end simulated group round: N members, one causal multicast each,
// run to quiescence. Measures simulator+protocol cost per delivered message.
void BM_GroupRoundCausal(benchmark::State& state) {
  const uint32_t members = static_cast<uint32_t>(state.range(0));
  uint64_t delivered = 0;
  for (auto _ : state) {
    sim::Simulator s(7);
    catocs::FabricConfig cfg;
    cfg.num_members = members;
    cfg.group.ack_gossip_interval = sim::Duration::Zero();
    catocs::GroupFabric fabric(&s, cfg);
    fabric.StartAll();
    for (uint32_t m = 0; m < members; ++m) {
      s.ScheduleAfter(sim::Duration::Millis(1), [&fabric, m] {
        fabric.member(m).CausalSend(std::make_shared<net::BlobPayload>("b", 64));
      });
    }
    s.RunFor(sim::Duration::Seconds(2));
    for (size_t i = 0; i < fabric.size(); ++i) {
      delivered += fabric.member(i).stats().app_delivered;
    }
  }
  state.counters["deliveries"] =
      benchmark::Counter(static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GroupRoundCausal)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_LockManagerAcquireRelease(benchmark::State& state) {
  txn::LockManager lm;
  txn::TxnId id = 1;
  for (auto _ : state) {
    lm.Acquire(id, "x", txn::LockMode::kExclusive, nullptr);
    lm.ReleaseAll(id);
    ++id;
  }
}
BENCHMARK(BM_LockManagerAcquireRelease);

// ReleaseAll cost against table size: Arg(0) resources are held by a
// bystander transaction while the measured transaction acquires and releases
// two of its own. With the per-transaction resource index this is O(holds);
// the seed scanned the whole table, so the per-op time grew with Arg(0).
void BM_LockManagerReleaseAllManyResources(benchmark::State& state) {
  txn::LockManager lm;
  const int64_t background = state.range(0);
  for (int64_t r = 0; r < background; ++r) {
    lm.Acquire(1, "bg" + std::to_string(r), txn::LockMode::kShared, nullptr);
  }
  txn::TxnId id = 2;
  for (auto _ : state) {
    lm.Acquire(id, "mine_a", txn::LockMode::kExclusive, nullptr);
    lm.Acquire(id, "mine_b", txn::LockMode::kExclusive, nullptr);
    lm.ReleaseAll(id);
    ++id;
  }
}
BENCHMARK(BM_LockManagerReleaseAllManyResources)->Arg(64)->Arg(1024)->Arg(16384);

void BM_OccCommitCycle(benchmark::State& state) {
  txn::OccManager occ;
  for (auto _ : state) {
    txn::TxnId t = occ.Begin();
    occ.Write(t, "x", 1.0);
    benchmark::DoNotOptimize(occ.Commit(t));
  }
}
BENCHMARK(BM_OccCommitCycle);

}  // namespace

int main(int argc, char** argv) {
  // Stamped into the JSON context so scripts/bench.sh can refuse to record
  // BENCH_micro.json from a debug binary.
#ifdef NDEBUG
  benchmark::AddCustomContext("repro_build_type", "release");
#else
  benchmark::AddCustomContext("repro_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
