// Microbenchmarks (google-benchmark) for the protocol hot paths: the
// per-message costs the paper argues will dominate as networks get faster
// (§3.4): vector clock updates/comparison, the causal deliverability check,
// delay-queue processing, and the state-level alternatives (version compare,
// ordered-cache apply) for contrast.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/catocs/group.h"
#include "src/catocs/vector_clock.h"
#include "src/statelevel/ordered_cache.h"
#include "src/txn/lock_manager.h"
#include "src/txn/occ.h"

namespace {

void BM_VectorClockIncrement(benchmark::State& state) {
  catocs::VectorClock vc;
  for (int m = 0; m < state.range(0); ++m) {
    vc.Set(static_cast<catocs::MemberId>(m + 1), 1);
  }
  catocs::MemberId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vc.Increment(id));
  }
}
BENCHMARK(BM_VectorClockIncrement)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_VectorClockCompare(benchmark::State& state) {
  catocs::VectorClock a;
  catocs::VectorClock b;
  for (int m = 0; m < state.range(0); ++m) {
    a.Set(static_cast<catocs::MemberId>(m + 1), static_cast<uint64_t>(m));
    b.Set(static_cast<catocs::MemberId>(m + 1), static_cast<uint64_t>(m + (m % 2)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_VectorClockCompare)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_VectorClockMerge(benchmark::State& state) {
  catocs::VectorClock a;
  catocs::VectorClock b;
  for (int m = 0; m < state.range(0); ++m) {
    a.Set(static_cast<catocs::MemberId>(m + 1), static_cast<uint64_t>(m));
    b.Set(static_cast<catocs::MemberId>(m + 1), static_cast<uint64_t>(2 * m));
  }
  for (auto _ : state) {
    catocs::VectorClock c = a;
    c.Merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockMerge)->Arg(4)->Arg(16)->Arg(64);

// Versus: the state-level "ordering check" is one integer compare.
void BM_StateLevelVersionCompare(benchmark::State& state) {
  uint64_t current = 41;
  uint64_t incoming = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(incoming > current);
    benchmark::DoNotOptimize(current);
  }
}
BENCHMARK(BM_StateLevelVersionCompare);

void BM_OrderedCacheApply(benchmark::State& state) {
  statelv::OrderedCache cache;
  uint64_t version = 0;
  statelv::VersionedUpdate update;
  update.object = "obj";
  for (auto _ : state) {
    update.version = ++version;
    benchmark::DoNotOptimize(cache.Apply(update));
  }
}
BENCHMARK(BM_OrderedCacheApply);

// End-to-end simulated group round: N members, one causal multicast each,
// run to quiescence. Measures simulator+protocol cost per delivered message.
void BM_GroupRoundCausal(benchmark::State& state) {
  const uint32_t members = static_cast<uint32_t>(state.range(0));
  uint64_t delivered = 0;
  for (auto _ : state) {
    sim::Simulator s(7);
    catocs::FabricConfig cfg;
    cfg.num_members = members;
    cfg.group.ack_gossip_interval = sim::Duration::Zero();
    catocs::GroupFabric fabric(&s, cfg);
    fabric.StartAll();
    for (uint32_t m = 0; m < members; ++m) {
      s.ScheduleAfter(sim::Duration::Millis(1), [&fabric, m] {
        fabric.member(m).CausalSend(std::make_shared<net::BlobPayload>("b", 64));
      });
    }
    s.RunFor(sim::Duration::Seconds(2));
    for (size_t i = 0; i < fabric.size(); ++i) {
      delivered += fabric.member(i).stats().app_delivered;
    }
  }
  state.counters["deliveries"] =
      benchmark::Counter(static_cast<double>(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GroupRoundCausal)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_LockManagerAcquireRelease(benchmark::State& state) {
  txn::LockManager lm;
  txn::TxnId id = 1;
  for (auto _ : state) {
    lm.Acquire(id, "x", txn::LockMode::kExclusive, nullptr);
    lm.ReleaseAll(id);
    ++id;
  }
}
BENCHMARK(BM_LockManagerAcquireRelease);

void BM_OccCommitCycle(benchmark::State& state) {
  txn::OccManager occ;
  for (auto _ : state) {
    txn::TxnId t = occ.Begin();
    occ.Write(t, "x", 1.0);
    benchmark::DoNotOptimize(occ.Commit(t));
  }
}
BENCHMARK(BM_OccCommitCycle);

}  // namespace

BENCHMARK_MAIN();
