// E4 — Figure 4 / §4.1 limitation 3: the trading constraint ("a theoretical
// price before all subsequent changes of its base") is stronger than
// happens-before; causal and total multicast both show false crossings.
// The dependency-field display never does. Sweeps the theoretical pricer's
// compute delay (larger delay -> wider anomaly window).

#include "bench/bench_util.h"
#include "src/apps/trading.h"

int main() {
  benchutil::Header("E4 — trading false crossings (Figure 4)",
                    "inconsistent displays and false crossings > 0 under causal/total order; "
                    "0 for the dependency-paired display, which pays with lag instead");
  benchutil::Row("%-10s %-12s %-10s %-14s %-12s %-14s %-12s %s", "mode", "compute_ms", "updates",
                 "raw_incons", "raw_cross", "paired_cross", "paired_lag", "per_1k_updates");
  for (catocs::OrderingMode mode : {catocs::OrderingMode::kCausal, catocs::OrderingMode::kTotal}) {
    for (int64_t compute_ms : {1, 2, 4, 8, 16}) {
      apps::TradingConfig config;
      config.price_updates = 2000;
      config.mode = mode;
      config.compute_delay = sim::Duration::Millis(compute_ms);
      config.seed = 5;
      const apps::TradingResult result = RunTradingScenario(config);
      benchutil::Row("%-10s %-12lld %-10d %-14llu %-12llu %-14llu %-12llu %.1f",
                     mode == catocs::OrderingMode::kCausal ? "causal" : "total",
                     static_cast<long long>(compute_ms), result.price_updates,
                     static_cast<unsigned long long>(result.raw_inconsistent_displays),
                     static_cast<unsigned long long>(result.raw_false_crossings),
                     static_cast<unsigned long long>(result.paired_false_crossings),
                     static_cast<unsigned long long>(result.paired_lagging_displays),
                     1000.0 * static_cast<double>(result.raw_false_crossings) /
                         result.price_updates);
    }
  }
  return 0;
}
