// E3 — Figure 3 / §3.1 limitation 1: the fire is an external channel; both
// causal and total multicast can deliver "fire out" last. Synchronized
// real-time timestamps (the §4.6 alternative) order the reports correctly
// with realistic clock error. Sweeps jitter.

#include "bench/bench_util.h"
#include "src/apps/firealarm.h"

int main() {
  benchutil::Header("E3 — external channel anomaly (Figure 3, fire alarm)",
                    "raw anomaly rate > 0 under causal and total order; ~0 under "
                    "synchronized timestamps (clock error << event gaps)");
  benchutil::Row("%-10s %-10s %-10s %-14s %-16s %s", "mode", "jitter_ms", "rounds",
                 "raw_anomaly%", "timestamp_anom%", "clock_err_us");
  for (catocs::OrderingMode mode : {catocs::OrderingMode::kCausal, catocs::OrderingMode::kTotal}) {
    for (int64_t jitter_ms : {5, 10, 15, 25, 40}) {
      apps::FireAlarmConfig config;
      config.rounds = 400;
      config.mode = mode;
      config.latency_hi = sim::Duration::Millis(jitter_ms);
      config.round_gap = sim::Duration::Millis(150);
      config.seed = 9;
      const apps::FireAlarmResult result = RunFireAlarmScenario(config);
      benchutil::Row("%-10s %-10lld %-10d %-14.1f %-16.1f %.1f",
                     mode == catocs::OrderingMode::kCausal ? "causal" : "total",
                     static_cast<long long>(jitter_ms), result.rounds,
                     100.0 * result.raw_anomalies / result.rounds,
                     100.0 * result.timestamp_anomalies / result.rounds,
                     result.clock_error_bound_us);
    }
  }
  return 0;
}
