// E17 — per-layer hold-time attribution on the E16 workload. The same
// all-to-all causal traffic over the clustered LAN/WAN topology, run with
// GroupConfig::observability on so every pipeline wait point reports into
// PipelineStats. The paper's buffering claims (E5/E16) measure *how much* is
// held; this bench shows *where* and *for how long*: the causal delay queue
// (happens-before gaps), the FIFO app gate, and the retention buffer
// (stability lag), per strategy. Observability is record-only — it schedules
// no simulator events — so the occupancy column reproduces E16's numbers for
// the same seeds exactly.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/causal_buffer.h"
#include "src/catocs/group.h"
#include "src/catocs/pipeline_stats.h"

namespace {

struct Sample {
  double per_node_mean = 0;
  catocs::PipelineStats pipeline;
  std::string metrics_json;
};

Sample RunOne(uint32_t members, catocs::CausalBufferKind kind) {
  sim::Simulator s(1000 + members);
  catocs::FabricConfig cfg;
  cfg.num_members = members;
  cfg.group.causal_buffer = kind;
  cfg.group.observability = true;
  catocs::GroupFabric fabric(
      &s, cfg,
      benchutil::LanWanLatency(8, sim::Duration::Millis(1), sim::Duration::Millis(5),
                               sim::Duration::Millis(10), sim::Duration::Millis(30)));
  fabric.StartAll();

  // E16's workload verbatim: one 256-byte causal multicast per member every
  // 25ms, staggered starts, 1s warmup + 6s sampled at 10ms.
  benchutil::StaggeredSenders senders(
      &s, members, sim::Duration::Millis(25),
      [](uint32_t m) { return sim::Duration::Micros(500 + 400 * m); },
      [&fabric](uint32_t m) {
        fabric.member(m).CausalSend(std::make_shared<net::BlobPayload>("t", 256));
      });

  benchutil::BufferOccupancySampler sampler(&s, &fabric, sim::Duration::Millis(10));
  s.RunFor(sim::Duration::Seconds(1));
  sampler.Start();
  s.RunFor(sim::Duration::Seconds(6));
  sampler.Stop();
  senders.StopAll();

  Sample out;
  out.per_node_mean = sampler.per_node().mean();
  for (size_t i = 0; i < fabric.size(); ++i) {
    out.pipeline.Merge(fabric.member(i).pipeline_stats());
    fabric.member(i).pipeline_stats().ExportTo(s.metrics(), std::to_string(i));
  }
  out.metrics_json = s.metrics().ReportJson();
  return out;
}

void PrintRow(const char* strategy, uint32_t members, const Sample& sample) {
  using catocs::HoldReason;
  const auto& causal = sample.pipeline.reason(HoldReason::kCausalGap);
  const auto& fifo = sample.pipeline.reason(HoldReason::kFifoGap);
  const auto& stab = sample.pipeline.reason(HoldReason::kStability);
  const double total_ms = static_cast<double>(sample.pipeline.TotalHold().nanos()) / 1e6;
  const double stab_ms = static_cast<double>(stab.total_hold.nanos()) / 1e6;
  const double stab_frac = total_ms > 0 ? stab_ms / total_ms : 0;
  benchutil::Row("%-8s %-6u %-10.1f %-11.3f %-11.3f %-11.3f %-10.2f %llu", strategy, members,
                 sample.per_node_mean, causal.mean_hold_ms(), fifo.mean_hold_ms(),
                 stab.mean_hold_ms(), stab_frac,
                 static_cast<unsigned long long>(sample.pipeline.TotalEntered()));
}

}  // namespace

int main() {
  benchutil::Header(
      "E17 — per-layer hold-time attribution (E16 workload, observability on)",
      "where messages wait: causal delay queue vs fifo gate vs retention buffer, "
      "mean hold per message and the stability share of total hold time");
  benchutil::Row("%-8s %-6s %-10s %-11s %-11s %-11s %-10s %s", "strategy", "N", "node_mean",
                 "causal_ms", "fifo_ms", "stab_ms", "stab_frac", "holds");
  for (uint32_t members : {4u, 8u, 16u, 32u, 48u, 64u}) {
    PrintRow("full", members, RunOne(members, catocs::CausalBufferKind::kFullVector));
    PrintRow("hybrid", members, RunOne(members, catocs::CausalBufferKind::kHybrid));
  }
  benchutil::Row("");
  benchutil::Row("node_mean reproduces E16 per-strategy occupancy (observability adds no");
  benchutil::Row("events). stab_frac ~1 at scale: retention dominates total hold time; the");
  benchutil::Row("hybrid buffer's smaller stab_ms is the release-lag gap E16 measures.");

  // Determinism spot check: a same-seed rerun must export byte-identical
  // metrics JSON (counters, hold totals, occupancy quantiles).
  const Sample a = RunOne(8, catocs::CausalBufferKind::kHybrid);
  const Sample b = RunOne(8, catocs::CausalBufferKind::kHybrid);
  benchutil::Row("json_deterministic=%s (N=8 hybrid rerun, %zu bytes)",
                 a.metrics_json == b.metrics_json ? "yes" : "NO", a.metrics_json.size());
  return 0;
}
