// E20 — bounded resources under overload (DESIGN.md §10). One member of the
// group is a slow receiver (its inbound latency is scaled up), so stability
// lags and every other member retains unstable messages for longer. The
// offered load is swept well past the point where retention becomes the
// dominant cost, once per causal-buffer strategy, in two configurations:
//
//   * unbounded (the seed default): no budget, no send window — retention
//     grows with offered load, exactly the §2.3/§5 failure mode the paper
//     predicts;
//   * bounded: a resource budget plus a sender window (throttle policy) —
//     senders are backpressured instead of buffering without bound, goodput
//     degrades smoothly, and peak retention stays under the budget.
//
// Acceptance (printed as PASS/FAIL lines):
//   1. bounded peak retention <= budget at every offered load, both
//      strategies;
//   2. bounded goodput degrades smoothly: at the highest load (16x base,
//      far past saturation) it is still >= 30% of its best — no cliff to
//      zero;
//   3. unbounded peak retention at the highest load >= 10x its peak at the
//      base load — the unbounded baseline really does grow with load.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/causal_buffer.h"
#include "src/catocs/group.h"

namespace {

constexpr uint32_t kMembers = 6;
constexpr size_t kSlowIndex = kMembers - 1;  // member id 6
constexpr double kSlowInboundScale = 20.0;
constexpr size_t kPayloadBytes = 256;
constexpr size_t kBudgetBytes = 128 * 1024;
constexpr uint32_t kSendWindow = 32;
constexpr int64_t kBaseIntervalUs = 24000;  // base load: ~42 msgs/s/member

struct Sample {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t backpressured = 0;
  uint64_t slow_deliveries = 0;
  double goodput_per_s = 0;     // deliveries/s observed at the slow member
  size_t peak_retained_bytes = 0;  // max over members of peak_buffered_bytes
};

Sample RunOne(catocs::CausalBufferKind kind, int load_factor, bool bounded) {
  sim::Simulator s(7000 + load_factor * 10 + (bounded ? 1 : 0));
  catocs::FabricConfig cfg;
  cfg.num_members = kMembers;
  cfg.group.causal_buffer = kind;
  cfg.latency_lo = sim::Duration::Millis(1);
  cfg.latency_hi = sim::Duration::Millis(5);
  // The slow receiver's inbound delay reaches ~100ms; keep the retransmit
  // schedule above it so the bench measures retention, not spurious resends.
  cfg.transport.retransmit_timeout = sim::Duration::Millis(150);
  cfg.transport.max_retries = 500;
  if (bounded) {
    cfg.group.budget.max_bytes = kBudgetBytes;
    cfg.group.send_window = kSendWindow;
    cfg.group.overload_policy = catocs::OverloadPolicy::kThrottle;
  }
  catocs::GroupFabric fabric(&s, cfg);

  Sample sample;
  fabric.member(kSlowIndex).SetDeliveryHandler(
      [&sample](const catocs::Delivery&) { ++sample.slow_deliveries; });
  fabric.StartAll();
  fabric.network().set_node_inbound_scale(catocs::GroupFabric::IdOf(kSlowIndex),
                                          kSlowInboundScale);

  const sim::Duration interval = sim::Duration::Micros(kBaseIntervalUs / load_factor);
  benchutil::StaggeredSenders senders(
      &s, kMembers, interval,
      [](uint32_t m) { return sim::Duration::Micros(500 + 400 * m); },
      [&fabric, &sample](uint32_t m) {
        ++sample.offered;
        const catocs::SendResult result = fabric.member(m).TrySend(
            catocs::OrderingMode::kCausal,
            std::make_shared<net::BlobPayload>("e20", kPayloadBytes));
        if (result.status == catocs::SendStatus::kBackpressured) {
          ++sample.backpressured;
        } else {
          ++sample.accepted;
        }
      });

  const sim::Duration run_for = sim::Duration::Seconds(4);
  s.RunFor(run_for);
  senders.StopAll();
  s.RunFor(sim::Duration::Seconds(1));  // drain

  sample.goodput_per_s =
      static_cast<double>(sample.slow_deliveries) /
      (static_cast<double>(run_for.nanos()) / 1e9);
  for (size_t i = 0; i < fabric.size(); ++i) {
    sample.peak_retained_bytes =
        std::max(sample.peak_retained_bytes, fabric.member(i).peak_buffered_bytes());
  }
  return sample;
}

}  // namespace

int main() {
  std::printf("E20: bounded resources under overload — %u members, slow receiver x%.0f "
              "(member %u), budget=%zuKiB window=%u, throttle policy\n",
              kMembers, kSlowInboundScale, static_cast<unsigned>(kSlowIndex + 1),
              kBudgetBytes / 1024, kSendWindow);

  const int load_factors[] = {1, 2, 4, 8, 16};
  bool pass_budget = true;
  bool pass_no_cliff = true;
  bool pass_unbounded_grows = true;

  for (catocs::CausalBufferKind kind :
       {catocs::CausalBufferKind::kFullVector, catocs::CausalBufferKind::kHybrid}) {
    std::printf("\n[%s buffer]\n", catocs::ToString(kind));
    std::printf("  %-10s %6s %9s %9s %8s %10s %13s\n", "config", "load", "offered",
                "accepted", "backpr", "goodput/s", "peak_retained");
    size_t unbounded_base_peak = 0;
    size_t unbounded_max_peak = 0;
    double bounded_best_goodput = 0;
    double bounded_last_goodput = 0;
    for (const bool bounded : {false, true}) {
      for (const int load : load_factors) {
        const Sample sample = RunOne(kind, load, bounded);
        std::printf("  %-10s %5dx %9llu %9llu %8llu %10.0f %12zuB\n",
                    bounded ? "bounded" : "unbounded", load,
                    static_cast<unsigned long long>(sample.offered),
                    static_cast<unsigned long long>(sample.accepted),
                    static_cast<unsigned long long>(sample.backpressured),
                    sample.goodput_per_s, sample.peak_retained_bytes);
        if (bounded) {
          if (sample.peak_retained_bytes > kBudgetBytes) {
            pass_budget = false;
          }
          bounded_best_goodput = std::max(bounded_best_goodput, sample.goodput_per_s);
          bounded_last_goodput = sample.goodput_per_s;
        } else {
          if (load == load_factors[0]) {
            unbounded_base_peak = sample.peak_retained_bytes;
          }
          unbounded_max_peak = std::max(unbounded_max_peak, sample.peak_retained_bytes);
        }
      }
    }
    if (bounded_last_goodput < 0.3 * bounded_best_goodput) {
      pass_no_cliff = false;
    }
    if (unbounded_max_peak < 10 * unbounded_base_peak) {
      pass_unbounded_grows = false;
    }
    std::printf("  unbounded retention growth: %zuB -> %zuB (%.1fx); bounded goodput at "
                "16x: %.0f/s of best %.0f/s\n",
                unbounded_base_peak, unbounded_max_peak,
                unbounded_base_peak
                    ? static_cast<double>(unbounded_max_peak) /
                          static_cast<double>(unbounded_base_peak)
                    : 0.0,
                bounded_last_goodput, bounded_best_goodput);
  }

  std::printf("\n%s: bounded peak retention <= %zuKiB budget at every load\n",
              pass_budget ? "PASS" : "FAIL", kBudgetBytes / 1024);
  std::printf("%s: bounded goodput degrades smoothly (>= 30%% of best at 16x load)\n",
              pass_no_cliff ? "PASS" : "FAIL");
  std::printf("%s: unbounded peak retention grows >= 10x across the sweep\n",
              pass_unbounded_grows ? "PASS" : "FAIL");
  return pass_budget && pass_no_cliff && pass_unbounded_grows ? 0 : 1;
}
