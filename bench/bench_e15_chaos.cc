// E15 — deterministic chaos: the CATOCS stack under scripted adversity.
//
// Part 1 sweeps generated fault schedules (crash + rejoin with state
// transfer, sub-timeout partitions, drop/duplicate bursts, latency spikes)
// and shows the safety invariants holding while replicas crash and recover —
// with the recovery latency each rejoin paid.
//
// Part 2 scripts what the generator deliberately avoids: a partition *longer*
// than the failure timeout, which forces a membership decision no failure
// detector can get right. The flush quorum rule decides it: the side holding
// a strict majority of the departing view (or exactly half of it plus the
// lowest member id as tie-break) installs the next view and keeps running;
// every other side wedges in its flush rather than seceding. Before the rule
// existed, these scripts produced rival views and divergent replicated state
// (the chaos fuzzer's wider seed range found the same failure arising from
// drop bursts alone); now two of the three scenarios are fully SAFE.
//
// The third is the deliberate punchline: the evicted singleton is the
// *sequencer*, which delivers total-order slots the moment it assigns them.
// By the time it wedges it has already exposed slot assignments that the
// surviving majority — which never saw them — renumbers. The oracle's
// total-order finding there is not a harness bug; it is the paper's point
// made concrete: a totally ordered history does not survive a partition that
// evicts its orderer, because no communication-layer rule can undo
// deliveries already handed to the application.

#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/chaos_rig.h"
#include "src/fault/fault_plan.h"
#include "src/fault/injector.h"
#include "src/fault/oracle.h"
#include "src/sim/simulator.h"

namespace {

constexpr uint64_t kPlanStream = 0x9e3779b97f4a7c15ull;

fault::ChaosRigConfig RigConfig() {
  fault::ChaosRigConfig cfg;
  cfg.group.heartbeat_interval = sim::Duration::Millis(20);
  cfg.group.failure_timeout = sim::Duration::Millis(100);
  return cfg;
}

void SweepGeneratedSchedules() {
  benchutil::Row("%-6s %-8s %-12s %-7s %-9s %-13s %-11s %s", "seed", "faults", "deliveries",
                 "views", "rejoins", "max_rejoin_ms", "violations", "verdict");
  const sim::Duration horizon = sim::Duration::Seconds(4);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Simulator s(seed);
    fault::ChaosRig rig(&s, RigConfig());
    fault::FaultInjector injector(&s, &rig);
    fault::GeneratorConfig gen_cfg;
    gen_cfg.horizon = horizon;
    sim::Rng plan_rng(seed ^ kPlanStream);
    injector.Install(fault::FaultScheduleGenerator(gen_cfg).Generate(plan_rng));
    rig.Start();
    s.ScheduleAfter(horizon, [&rig] { rig.StopWorkload(); });
    s.RunFor(horizon + sim::Duration::Seconds(2));

    uint64_t rejoins = 0;
    double max_rejoin_ms = 0.0;
    for (const auto& stat : rig.recoveries()) {
      if (stat.rejoined) {
        ++rejoins;
        const double ms =
            static_cast<double>((stat.rejoined_at - stat.recover_started).nanos()) / 1e6;
        max_rejoin_ms = ms > max_rejoin_ms ? ms : max_rejoin_ms;
      }
    }
    const fault::OracleReport report = fault::InvariantOracle().Audit(rig);
    benchutil::Row("%-6" PRIu64 " %-8" PRIu64 " %-12zu %-7zu %-9" PRIu64 " %-13.1f %-11zu %s",
                   seed, injector.events_applied(), rig.deliveries().size(), rig.views().size(),
                   rejoins, max_rejoin_ms, report.violations.size(),
                   report.ok() ? "SAFE" : "VIOLATED");
  }
}

void SplitBrainDemo() {
  benchutil::Row("");
  benchutil::Row("--- over-timeout partition (400ms > 100ms): who may install the next view?");
  benchutil::Row("%-14s %-14s %-8s %-15s %-11s %s", "partition", "final_view", "wedged",
                 "blocked_flushes", "violations", "verdict");
  struct Scenario {
    const char* label;
    std::vector<std::vector<size_t>> components;
  };
  const Scenario scenarios[] = {
      {"{0,1,2|3}", {{0, 1, 2}, {3}}},  // strict majority continues
      {"{0,1|2,3}", {{0, 1}, {2, 3}}},  // exact half: lowest-id side wins
      {"{0|1,2,3}", {{0}, {1, 2, 3}}},  // evicts the sequencer mid-stream
  };
  for (const Scenario& scenario : scenarios) {
    sim::Simulator s(99);
    fault::ChaosRig rig(&s, RigConfig());
    fault::FaultInjector injector(&s, &rig);
    fault::FaultPlan plan;
    fault::FaultEvent part;
    part.at = sim::TimePoint::Zero() + sim::Duration::Millis(500);
    part.kind = fault::FaultKind::kPartition;
    part.components = scenario.components;
    plan.events.push_back(part);
    fault::FaultEvent heal;
    heal.at = sim::TimePoint::Zero() + sim::Duration::Millis(900);
    heal.kind = fault::FaultKind::kHeal;
    plan.events.push_back(heal);
    injector.Install(plan);
    rig.Start();
    s.ScheduleAfter(sim::Duration::Seconds(2), [&rig] { rig.StopWorkload(); });
    s.RunFor(sim::Duration::Seconds(4));

    std::string final_view = "{1,2,3,4}";
    uint64_t max_view_id = 0;
    for (const auto& record : rig.views()) {
      if (record.view.id > max_view_id) {
        max_view_id = record.view.id;
        final_view = "{";
        for (size_t i = 0; i < record.view.members.size(); ++i) {
          final_view += (i ? "," : "") + std::to_string(record.view.members[i]);
        }
        final_view += "}";
      }
    }
    size_t wedged = 0;
    uint64_t blocked = 0;
    for (size_t slot = 0; slot < 4; ++slot) {
      const uint64_t b = rig.MemberOfSlot(slot).stats().flushes_blocked_no_quorum;
      wedged += b > 0 ? 1 : 0;
      blocked += b;
    }
    const fault::OracleReport report = fault::InvariantOracle().Audit(rig);
    benchutil::Row("%-14s %-14s %-8zu %-15" PRIu64 " %-11zu %s", scenario.label,
                   final_view.c_str(), wedged, blocked, report.violations.size(),
                   report.ok() ? "SAFE" : report.violations[0].c_str());
  }
}

}  // namespace

int main() {
  benchutil::Header(
      "E15 — deterministic chaos harness: faults, recovery, and the invariant oracle",
      "generated schedules stay safe (crashes rejoin via state transfer); on an "
      "over-timeout partition the quorum rule picks one primary and wedges the "
      "rest — except the slots an evicted sequencer already delivered");
  SweepGeneratedSchedules();
  SplitBrainDemo();
  return 0;
}
