// E5 — §5: CATOCS message buffering for atomic delivery grows roughly
// linearly per node and quadratically system-wide with the number of
// processes. All-to-all causal traffic at a fixed per-process rate over a
// clustered (LAN/WAN) topology; buffer occupancy is sampled in steady state
// and the growth exponent of the system total is fitted.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/group.h"

namespace {

struct Sample {
  double per_node_mean = 0;
  double per_node_peak = 0;
  double total_mean = 0;
  double total_bytes_mean = 0;
};

Sample RunOne(uint32_t members, sim::Duration gossip_interval = sim::Duration::Millis(50),
              uint64_t* ack_msgs = nullptr) {
  sim::Simulator s(1000 + members);
  catocs::FabricConfig cfg;
  cfg.num_members = members;
  cfg.group.ack_gossip_interval = gossip_interval;
  catocs::GroupFabric fabric(
      &s, cfg,
      benchutil::LanWanLatency(8, sim::Duration::Millis(1), sim::Duration::Millis(5),
                               sim::Duration::Millis(10), sim::Duration::Millis(30)));
  fabric.StartAll();

  // Fixed per-process rate: one causal multicast every 25ms.
  benchutil::StaggeredSenders senders(
      &s, members, sim::Duration::Millis(25),
      [](uint32_t m) { return sim::Duration::Micros(500 + 400 * m); },
      [&fabric](uint32_t m) {
        fabric.member(m).CausalSend(std::make_shared<net::BlobPayload>("t", 256));
      });

  // Steady-state sampling (skip warmup).
  benchutil::BufferOccupancySampler sampler(&s, &fabric, sim::Duration::Millis(10));
  s.RunFor(sim::Duration::Seconds(1));
  sampler.Start();
  s.RunFor(sim::Duration::Seconds(6));
  sampler.Stop();
  senders.StopAll();

  double peak = 0;
  for (size_t i = 0; i < fabric.size(); ++i) {
    peak = std::max(peak, static_cast<double>(fabric.member(i).peak_buffered_messages()));
    if (ack_msgs != nullptr) {
      *ack_msgs += fabric.member(i).stats().ack_msgs_sent;
    }
  }
  return Sample{sampler.per_node().mean(), peak, sampler.total().mean(),
                sampler.total_bytes().mean()};
}

}  // namespace

int main() {
  benchutil::Header(
      "E5 — buffering vs group size (§5)",
      "per-node buffered messages grow ~linearly in N, system total ~quadratically "
      "(fixed per-process send rate, atomic delivery retention)");
  benchutil::Row("%-8s %-18s %-16s %-16s %s", "N", "per_node_mean_msgs", "per_node_peak",
                 "total_mean_msgs", "total_mean_KB");
  std::vector<double> ns;
  std::vector<double> totals;
  std::vector<double> per_node_means;
  for (uint32_t members : {4u, 8u, 16u, 32u, 48u, 64u}) {
    const Sample sample = RunOne(members);
    ns.push_back(members);
    totals.push_back(sample.total_mean);
    per_node_means.push_back(sample.per_node_mean);
    benchutil::Row("%-8u %-18.1f %-16.0f %-16.1f %.1f", members, sample.per_node_mean,
                   sample.per_node_peak, sample.total_mean, sample.total_bytes_mean / 1024.0);
  }
  benchutil::Row("");
  benchutil::Row("fitted growth exponent, system-total buffered messages ~ N^%.2f  (paper: ~2)",
                 benchutil::FitGrowthExponent(ns, totals));
  benchutil::Row("fitted growth exponent, per-node buffered messages   ~ N^%.2f  (paper: ~1)",
                 benchutil::FitGrowthExponent(ns, per_node_means));

  // Ablation (DESIGN.md §4): the stability-gossip interval trades buffer
  // occupancy against control traffic. More frequent acks shrink buffers but
  // add messages — and neither end of the knob changes the N^2 system-level
  // growth, which is the paper's point.
  benchutil::Row("");
  benchutil::Row("ablation: ack gossip interval at N=16 (buffering vs control traffic)");
  benchutil::Row("%-14s %-20s %-16s %s", "gossip_ms", "per_node_mean_msgs", "total_mean_msgs",
                 "ack_msgs_sent");
  for (int64_t gossip_ms : {10, 25, 50, 100, 200}) {
    uint64_t ack_msgs = 0;
    const Sample sample = RunOne(16, sim::Duration::Millis(gossip_ms), &ack_msgs);
    benchutil::Row("%-14lld %-20.1f %-16.1f %llu", static_cast<long long>(gossip_ms),
                   sample.per_node_mean, sample.total_mean,
                   static_cast<unsigned long long>(ack_msgs));
  }
  return 0;
}
