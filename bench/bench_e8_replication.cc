// E8 — §4.4: replicated data. Transactional replication (2PC + WAL,
// read-any/write-all-available; HARP-like) vs CATOCS replication (primary
// updater cbcast with write-safety level k; Deceit-like). Reports write
// latency/throughput per design and replication factor, the grouping
// capability, and the durability outcome when the primary/coordinator dies
// immediately after acknowledging a write.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/group.h"
#include "src/sim/metrics.h"
#include "src/txn/replicated_store.h"

namespace {

struct Perf {
  double mean_latency_us = 0;
  double p99_latency_us = 0;
  double throughput_per_s = 0;
  int acked_but_lost = 0;  // crash sub-experiment
};

constexpr int kWrites = 300;

Perf RunTxn(int replicas) {
  sim::Simulator s(77);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<txn::TxnReplica>> nodes;
  std::vector<net::NodeId> ids;
  for (int i = 0; i < replicas; ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
    transports.push_back(std::make_unique<net::Transport>(&s, &network, ids.back()));
    nodes.push_back(std::make_unique<txn::TxnReplica>(&s, transports.back().get()));
  }
  txn::TxnCoordinator coordinator(&s, transports[0].get(), ids);

  sim::Histogram latency;
  int done = 0;
  sim::TimePoint first_issue;
  sim::TimePoint last_done;
  std::function<void(int)> issue = [&](int k) {
    if (k >= kWrites) {
      return;
    }
    const sim::TimePoint started = s.now();
    if (k == 0) {
      first_issue = started;
    }
    coordinator.Write("key" + std::to_string(k % 32), k, [&, started, k](bool ok) {
      if (ok) {
        latency.Record(static_cast<double>((s.now() - started).nanos()) / 1000.0);
      }
      ++done;
      last_done = s.now();
      issue(k + 1);
    });
  };
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { issue(0); });
  s.RunFor(sim::Duration::Seconds(120));

  Perf perf;
  perf.mean_latency_us = latency.mean();
  perf.p99_latency_us = latency.Quantile(0.99);
  const double elapsed_s = (last_done - first_issue).seconds();
  perf.throughput_per_s = elapsed_s > 0 ? done / elapsed_s : 0;
  return perf;
}

Perf RunCatocs(int replicas, int write_safety) {
  sim::Simulator s(77);
  catocs::FabricConfig cfg;
  cfg.num_members = static_cast<uint32_t>(replicas);
  catocs::GroupFabric fabric(&s, cfg);
  std::vector<std::unique_ptr<txn::CatocsReplica>> nodes;
  for (int i = 0; i < replicas; ++i) {
    nodes.push_back(std::make_unique<txn::CatocsReplica>(
        &s, &fabric.transport(static_cast<size_t>(i)), &fabric.member(static_cast<size_t>(i))));
  }
  txn::CatocsPrimary primary(&s, &fabric.transport(0), &fabric.member(0), write_safety);
  fabric.StartAll();

  sim::Histogram latency;
  int done = 0;
  sim::TimePoint first_issue;
  sim::TimePoint last_done;
  std::function<void(int)> issue = [&](int k) {
    if (k >= kWrites) {
      return;
    }
    const sim::TimePoint started = s.now();
    if (k == 0) {
      first_issue = started;
    }
    primary.Write("key" + std::to_string(k % 32), k, [&, started, k] {
      latency.Record(static_cast<double>((s.now() - started).nanos()) / 1000.0);
      ++done;
      last_done = s.now();
      // write-safety 0 acks synchronously: break the recursion.
      s.ScheduleAfter(sim::Duration::Micros(10), [&issue, k] { issue(k + 1); });
    });
  };
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { issue(0); });
  s.RunFor(sim::Duration::Seconds(120));

  Perf perf;
  perf.mean_latency_us = latency.mean();
  perf.p99_latency_us = latency.Quantile(0.99);
  const double elapsed_s = (last_done - first_issue).seconds();
  perf.throughput_per_s = elapsed_s > 0 ? done / elapsed_s : 0;
  return perf;
}

// Crash-after-ack: cut the primary off the network, issue one write, and ask
// whether the client was told "ok" for data no survivor holds.
int CatocsCrashLoss(int replicas, int write_safety) {
  sim::Simulator s(78);
  catocs::FabricConfig cfg;
  cfg.num_members = static_cast<uint32_t>(replicas);
  catocs::GroupFabric fabric(&s, cfg);
  std::vector<std::unique_ptr<txn::CatocsReplica>> nodes;
  for (int i = 0; i < replicas; ++i) {
    nodes.push_back(std::make_unique<txn::CatocsReplica>(
        &s, &fabric.transport(static_cast<size_t>(i)), &fabric.member(static_cast<size_t>(i))));
  }
  txn::CatocsPrimary primary(&s, &fabric.transport(0), &fabric.member(0), write_safety);
  fabric.StartAll();
  bool acked = false;
  s.ScheduleAfter(sim::Duration::Millis(10), [&] {
    fabric.network().SetNodeUp(1, false);
    primary.Write("doomed", 1.0, [&] { acked = true; });
    fabric.CrashMember(0);
  });
  s.RunFor(sim::Duration::Seconds(3));
  bool present_at_survivor = nodes[1]->Read("doomed").has_value();
  return acked && !present_at_survivor ? 1 : 0;
}

int TxnCrashLoss(int replicas) {
  sim::Simulator s(78);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<txn::TxnReplica>> nodes;
  std::vector<net::NodeId> ids;
  for (int i = 0; i < replicas; ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
    transports.push_back(std::make_unique<net::Transport>(&s, &network, ids.back()));
    nodes.push_back(std::make_unique<txn::TxnReplica>(&s, transports.back().get()));
  }
  txn::TxnCoordinator coordinator(&s, transports[0].get(), ids);
  bool acked = false;
  s.ScheduleAfter(sim::Duration::Millis(10), [&] {
    network.SetNodeUp(1, false);  // coordinator node isolated before sending
    coordinator.Write("doomed", 1.0, [&](bool ok) { acked = ok; });
  });
  s.RunFor(sim::Duration::Seconds(3));
  bool present_at_survivor = nodes[1]->Read("doomed").has_value();
  // Lost == client believes the write succeeded while survivors lack it.
  return acked && !present_at_survivor ? 1 : 0;
}

}  // namespace

int main() {
  benchutil::Header(
      "E8 — replicated data: transactional (HARP-like) vs CATOCS (Deceit-like) (§4.4)",
      "txn acks only after prepare/commit (durable); cbcast ws=0 is fast but loses "
      "acked data on primary crash; ws=R-1 is synchronous RPC in disguise");
  benchutil::Row("%-10s %-22s %-14s %-14s %-12s %s", "replicas", "design", "mean_lat_us",
                 "p99_lat_us", "writes/s", "acked_but_lost_on_crash");
  for (int replicas : {2, 3, 5}) {
    Perf txn_perf = RunTxn(replicas);
    benchutil::Row("%-10d %-22s %-14.1f %-14.1f %-12.1f %d", replicas, "txn-2pc",
                   txn_perf.mean_latency_us, txn_perf.p99_latency_us, txn_perf.throughput_per_s,
                   TxnCrashLoss(replicas));
    for (int ws : {0, 1, replicas - 1}) {
      Perf perf = RunCatocs(replicas, ws);
      char name[64];
      std::snprintf(name, sizeof(name), "catocs-cbcast ws=%d", ws);
      benchutil::Row("%-10d %-22s %-14.1f %-14.1f %-12.1f %d", replicas, name,
                     perf.mean_latency_us, perf.p99_latency_us, perf.throughput_per_s,
                     CatocsCrashLoss(replicas, ws));
      if (ws == replicas - 1) {
        break;
      }
    }
    benchutil::Row("");
  }
  benchutil::Row("grouping: txn-2pc WriteMany commits/aborts multi-key groups atomically;");
  benchutil::Row("the cbcast design has no counterpart (limitation 2, \"can't say together\").");
  return 0;
}
