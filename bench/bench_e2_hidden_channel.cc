// E2 — Figure 2 / §3.1 limitation 1: a shared database is a hidden channel;
// CATOCS (causal or total) delivers semantically ordered updates out of
// order, while state-level version numbers repair every case. Sweeps group
// jitter and reports anomaly rates.

#include "bench/bench_util.h"
#include "src/apps/shopfloor.h"

int main() {
  benchutil::Header("E2 — hidden channel anomaly (Figure 2, shop floor control)",
                    "anomaly rate > 0 under causal AND total order, rising with jitter; "
                    "0 under database version numbers");
  benchutil::Row("%-10s %-10s %-10s %-14s %-16s %-12s %s", "mode", "jitter_ms", "rounds",
                 "raw_anomaly%", "filtered_anom%", "stale_drops", "mean_lat_us");
  for (catocs::OrderingMode mode : {catocs::OrderingMode::kCausal, catocs::OrderingMode::kTotal}) {
    for (int64_t jitter_ms : {2, 5, 10, 20, 40}) {
      apps::ShopFloorConfig config;
      config.rounds = 400;
      config.mode = mode;
      config.latency_hi = sim::Duration::Millis(jitter_ms);
      config.seed = 7;
      const apps::ShopFloorResult result = RunShopFloorScenario(config);
      benchutil::Row("%-10s %-10lld %-10d %-14.1f %-16.1f %-12llu %.1f",
                     mode == catocs::OrderingMode::kCausal ? "causal" : "total",
                     static_cast<long long>(jitter_ms), result.rounds,
                     100.0 * result.raw_anomalies / result.rounds,
                     100.0 * result.filtered_anomalies / result.rounds,
                     static_cast<unsigned long long>(result.stale_drops),
                     result.mean_delivery_latency_us);
    }
  }
  return 0;
}
