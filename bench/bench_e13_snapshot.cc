// E13 — §4.2: global predicate evaluation (token conservation / loss
// detection). Three ways to get a consistent global view of a token-passing
// system:
//   baseline          — plain transport, no detection (cost floor);
//   marker-snapshot   — Chandy–Lamport markers at 1 Hz over plain FIFO
//                       transport (the state-level design);
//   catocs-everywhere — every token move becomes a totally ordered group
//                       multicast so a "snapshot now" message yields a
//                       consistent cut; elegant, but CATOCS must carry all
//                       application traffic, detection or not.
// All detecting modes must report token-conserving (consistent) cuts; the
// table shows what each pays for that consistency.

#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/group.h"
#include "src/statelevel/snapshot.h"

namespace {

constexpr int kNodes = 8;
constexpr int kTokens = 3;
constexpr auto kRunTime = sim::Duration::Seconds(20);
constexpr auto kMoveInterval = sim::Duration::Millis(5);

struct Outcome {
  int snapshots = 0;
  int consistent = 0;
  uint64_t network_bytes = 0;
  uint64_t network_packets = 0;
};

// Token move announced to the whole group; state changes on delivery.
class TokenMove : public net::Payload {
 public:
  TokenMove(int from, int to) : from_(from), to_(to) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "token-move"; }
  int from() const { return from_; }
  int to() const { return to_; }

 private:
  int from_;
  int to_;
};

class SnapNow : public net::Payload {
 public:
  explicit SnapNow(uint64_t id) : id_(id) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "snap-now"; }
  uint64_t id() const { return id_; }

 private:
  uint64_t id_;
};

Outcome RunPlain(bool with_markers) {
  sim::Simulator s(91);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<statelv::SnapshotNode>> nodes;
  std::vector<int64_t> tokens(kNodes, 0);
  for (int t = 0; t < kTokens; ++t) {
    tokens[t] = 1;
  }
  std::vector<net::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    ids.push_back(static_cast<net::NodeId>(i + 1));
  }
  for (int i = 0; i < kNodes; ++i) {
    transports.push_back(std::make_unique<net::Transport>(&s, &network, ids[i]));
    nodes.push_back(std::make_unique<statelv::SnapshotNode>(
        &s, transports[i].get(), ids,
        [&tokens, i] { return tokens[i]; },
        [&tokens, i](net::NodeId, const net::PayloadPtr&) { ++tokens[i]; }));
  }

  Outcome outcome;
  statelv::SnapshotCollector collector(
      transports[0].get(), kNodes, [&outcome](const std::vector<statelv::LocalSnapshot>& all) {
        ++outcome.snapshots;
        int64_t sum = 0;
        for (const auto& snap : all) {
          sum += snap.state;
          for (const auto& [channel, msgs] : snap.channel_messages) {
            sum += static_cast<int64_t>(msgs.size());
          }
        }
        if (sum == kTokens) {
          ++outcome.consistent;
        }
      });
  for (int i = 0; i < kNodes; ++i) {
    auto* transport = transports[i].get();
    nodes[i]->SetCompleteHandler([transport](const statelv::LocalSnapshot& snap) {
      statelv::SnapshotCollector::Report(transport, 1, snap);
    });
  }

  // Token movers: each node passes any token it holds to a random peer.
  sim::Rng mover_rng = s.rng().Fork();
  std::vector<std::unique_ptr<sim::PeriodicTimer>> movers;
  for (int i = 0; i < kNodes; ++i) {
    movers.push_back(std::make_unique<sim::PeriodicTimer>(&s, kMoveInterval, [&, i] {
      if (tokens[i] > 0) {
        int to = static_cast<int>(mover_rng.NextBelow(kNodes));
        if (to == i) {
          to = (to + 1) % kNodes;
        }
        --tokens[i];
        nodes[static_cast<size_t>(i)]->SendApp(static_cast<net::NodeId>(to + 1),
                                               std::make_shared<net::BlobPayload>("token", 16));
      }
    }));
    movers.back()->Start(sim::Duration::Micros(600 * (i + 1)));
  }
  std::unique_ptr<sim::PeriodicTimer> snapper;
  if (with_markers) {
    uint64_t next_id = 1;
    snapper = std::make_unique<sim::PeriodicTimer>(&s, sim::Duration::Seconds(1),
                                                   [&nodes, next_id]() mutable {
                                                     nodes[0]->Initiate(next_id++);
                                                   });
    snapper->Start(sim::Duration::Seconds(1));
  }
  s.RunUntil(sim::TimePoint::Zero() + kRunTime);
  for (auto& mover : movers) {
    mover->Stop();
  }
  if (snapper) {
    snapper->Stop();
  }
  s.RunFor(sim::Duration::Seconds(1));
  outcome.network_bytes = network.bytes_sent();
  outcome.network_packets = network.packets_sent();
  return outcome;
}

Outcome RunCatocs() {
  sim::Simulator s(91);
  catocs::FabricConfig cfg;
  cfg.num_members = kNodes;
  catocs::GroupFabric fabric(&s, cfg);

  // Replicated state machine: everyone applies every move on delivery, so a
  // totally ordered "snapshot now" message cuts consistently. Each member
  // tracks every node's token count.
  std::vector<std::vector<int64_t>> counts(kNodes, std::vector<int64_t>(kNodes, 0));
  for (int m = 0; m < kNodes; ++m) {
    for (int t = 0; t < kTokens; ++t) {
      counts[m][t] = 1;
    }
  }

  Outcome outcome;
  // A node must not issue another move for a token whose previous move it
  // has not yet delivered to itself (state changes happen at delivery).
  std::vector<bool> pending_move(kNodes, false);
  std::map<uint64_t, std::pair<int, int64_t>> cut_reports;  // id -> (reports, sum)
  for (int m = 0; m < kNodes; ++m) {
    fabric.member(static_cast<size_t>(m)).SetDeliveryHandler([&, m](const catocs::Delivery& d) {
      if (const auto* move = net::PayloadCast<TokenMove>(d.payload())) {
        --counts[m][move->from()];
        ++counts[m][move->to()];
        if (move->from() == m) {
          pending_move[static_cast<size_t>(m)] = false;
        }
        return;
      }
      if (const auto* snap = net::PayloadCast<SnapNow>(d.payload())) {
        // Report own count at the cut (member m's own slot).
        auto& [reports, sum] = cut_reports[snap->id()];
        ++reports;
        sum += counts[m][m];
        if (reports == kNodes) {
          ++outcome.snapshots;
          if (sum == kTokens) {
            ++outcome.consistent;
          }
        }
      }
    });
  }
  fabric.StartAll();

  sim::Rng mover_rng = s.rng().Fork();
  std::vector<std::unique_ptr<sim::PeriodicTimer>> movers;
  for (int i = 0; i < kNodes; ++i) {
    movers.push_back(std::make_unique<sim::PeriodicTimer>(&s, kMoveInterval, [&, i] {
      if (counts[i][i] > 0 && !pending_move[static_cast<size_t>(i)]) {
        int to = static_cast<int>(mover_rng.NextBelow(kNodes));
        if (to == i) {
          to = (to + 1) % kNodes;
        }
        pending_move[static_cast<size_t>(i)] = true;
        fabric.member(static_cast<size_t>(i)).TotalSend(std::make_shared<TokenMove>(i, to));
      }
    }));
    movers.back()->Start(sim::Duration::Micros(600 * (i + 1)));
  }
  uint64_t next_id = 1;
  sim::PeriodicTimer snapper(&s, sim::Duration::Seconds(1), [&fabric, next_id]() mutable {
    fabric.member(0).TotalSend(std::make_shared<SnapNow>(next_id++));
  });
  snapper.Start(sim::Duration::Seconds(1));
  s.RunUntil(sim::TimePoint::Zero() + kRunTime);
  for (auto& mover : movers) {
    mover->Stop();
  }
  snapper.Stop();
  s.RunFor(sim::Duration::Seconds(1));
  outcome.network_bytes = fabric.network().bytes_sent();
  outcome.network_packets = fabric.network().packets_sent();
  return outcome;
}

}  // namespace

int main() {
  benchutil::Header(
      "E13 — consistent cuts without CATOCS (§4.2)",
      "marker snapshots pay only when detecting; CATOCS-everywhere pays ordering on "
      "every application message, detection or not");
  const Outcome baseline = RunPlain(false);
  const Outcome markers = RunPlain(true);
  const Outcome catocs = RunCatocs();
  benchutil::Row("%-20s %-11s %-12s %-10s %-12s %-18s %s", "mode", "snapshots", "consistent",
                 "net_MB", "net_pkts", "overhead_vs_base", "KB_per_snapshot");
  auto print = [&](const char* name, const Outcome& o) {
    const double mb = static_cast<double>(o.network_bytes) / (1024.0 * 1024.0);
    const double overhead =
        static_cast<double>(o.network_bytes) - static_cast<double>(baseline.network_bytes);
    benchutil::Row("%-20s %-11d %-12d %-10.2f %-12llu %-18.2f %.1f", name, o.snapshots,
                   o.consistent, mb, static_cast<unsigned long long>(o.network_packets),
                   overhead / (1024.0 * 1024.0),
                   o.snapshots ? overhead / 1024.0 / o.snapshots : 0.0);
  };
  print("baseline", baseline);
  print("marker-snapshot", markers);
  print("catocs-everywhere", catocs);
  return 0;
}
