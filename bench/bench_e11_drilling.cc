// E11 — Appendix 9.1: drilling cell control. Message cost of the
// causal/total-order distributed design vs the central-controller design,
// swept over the number of drillers (holes = 10 x drillers). Both are
// correct (every hole drilled exactly once); the distributed design's
// completion multicasts make its traffic grow ~quadratically.

#include <vector>

#include "bench/bench_util.h"
#include "src/apps/drilling.h"

int main() {
  benchutil::Header("E11 — drilling cell traffic (Appendix 9.1)",
                    "app messages: CATOCS design ~ D^2 (completion multicasts), central "
                    "controller ~ D (holes scale with D); both drill each hole once");
  benchutil::Row("%-20s %-10s %-8s %-12s %-14s %-12s %-10s %s", "design", "drillers", "holes",
                 "app_msgs", "net_packets", "net_KB", "makespan_ms", "correct");
  std::vector<double> ds;
  std::vector<double> catocs_msgs;
  std::vector<double> central_msgs;
  for (int drillers : {2, 4, 8, 12, 16}) {
    for (apps::DrillStrategy strategy :
         {apps::DrillStrategy::kCatocsDistributed, apps::DrillStrategy::kCentralController}) {
      apps::DrillingConfig config;
      config.strategy = strategy;
      config.drillers = drillers;
      config.holes = 10 * drillers;
      config.seed = 17;
      const apps::DrillingResult result = RunDrillingScenario(config);
      const bool catocs = strategy == apps::DrillStrategy::kCatocsDistributed;
      if (catocs) {
        ds.push_back(drillers);
        catocs_msgs.push_back(static_cast<double>(result.app_messages));
      } else {
        central_msgs.push_back(static_cast<double>(result.app_messages));
      }
      benchutil::Row("%-20s %-10d %-8d %-12llu %-14llu %-12.1f %-10.0f %s",
                     catocs ? "catocs-distributed" : "central-controller", drillers,
                     result.holes, static_cast<unsigned long long>(result.app_messages),
                     static_cast<unsigned long long>(result.network_packets),
                     static_cast<double>(result.network_bytes) / 1024.0, result.makespan_ms,
                     result.holes_completed == result.holes && result.holes_double_drilled == 0
                         ? "yes"
                         : "NO");
    }
    benchutil::Row("");
  }
  benchutil::Row("fitted exponent: catocs app messages ~ D^%.2f   (paper: ~2)",
                 benchutil::FitGrowthExponent(ds, catocs_msgs));
  benchutil::Row("fitted exponent: central app messages ~ D^%.2f  (paper: ~1)",
                 benchutil::FitGrowthExponent(ds, central_msgs));
  return 0;
}
