// E9 — §4.6: real-time monitoring ("sufficient consistency"). The monitored
// value's tracking error |stored - true| under CATOCS causal delivery vs
// timestamped freshest-value datagrams, swept over packet loss. CATOCS's
// reliability+ordering machinery turns every loss into delay; the state-level
// design just uses the newest reading.

#include "bench/bench_util.h"
#include "src/apps/oven.h"

int main() {
  benchutil::Header("E9 — oven monitoring staleness (§4.6)",
                    "mean and p99 tracking error: CATOCS grows with loss rate; "
                    "timestamp-freshest stays near the sampling floor");
  benchutil::Row("%-24s %-8s %-14s %-14s %-12s %-14s %s", "strategy", "drop%", "mean_err_degC",
                 "p99_err_degC", "max_err", "mean_delay_us", "applied/sent");
  for (double drop : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    for (apps::OvenStrategy strategy :
         {apps::OvenStrategy::kCatocsCausal, apps::OvenStrategy::kTimestampFreshest}) {
      apps::OvenConfig config;
      config.strategy = strategy;
      config.drop_probability = drop;
      config.duration = sim::Duration::Seconds(20);
      config.seed = 13;
      const apps::OvenResult result = RunOvenScenario(config);
      benchutil::Row("%-24s %-8.0f %-14.2f %-14.2f %-12.2f %-14.1f %llu/%llu",
                     strategy == apps::OvenStrategy::kCatocsCausal ? "catocs-causal"
                                                                   : "timestamp-freshest",
                     drop * 100, result.mean_abs_error, result.p99_abs_error,
                     result.max_abs_error, result.mean_delivery_delay_us,
                     static_cast<unsigned long long>(result.readings_applied),
                     static_cast<unsigned long long>(result.readings_sent));
    }
    benchutil::Row("");
  }
  return 0;
}
