// E1 — Figure 1 / §2: causal multicast delivers happens-before order;
// concurrent messages are unordered. Reproduces the Fig. 1 event pattern,
// then sweeps randomized reactive traffic and reports delivery behavior and
// the cost of the causal machinery (delayed deliveries, delay time).

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/catocs/group.h"

namespace {

net::PayloadPtr Blob(const std::string& tag) {
  return std::make_shared<net::BlobPayload>(tag, 64);
}

void Figure1Pattern() {
  sim::Simulator s(1);
  catocs::FabricConfig cfg;
  cfg.num_members = 3;  // 1=P, 2=Q, 3=R
  catocs::GroupFabric fabric(&s, cfg);
  fabric.RecordDeliveries();
  // P reacts to m1 by sending m2 (m1 happens-before m2); R and Q emit the
  // concurrent m3/m4 afterwards.
  fabric.member(0).SetDeliveryHandler([&](const catocs::Delivery& d) {
    if (net::PayloadCast<net::BlobPayload>(d.payload())->tag() == "m1") {
      fabric.member(0).CausalSend(Blob("m2"));
    }
  });
  std::vector<std::pair<uint32_t, std::string>> at_r;
  fabric.member(2).SetDeliveryHandler([&](const catocs::Delivery& d) {
    at_r.emplace_back(3, net::PayloadCast<net::BlobPayload>(d.payload())->tag());
  });
  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(1), [&] { fabric.member(1).CausalSend(Blob("m1")); });
  s.ScheduleAfter(sim::Duration::Millis(30), [&] { fabric.member(2).CausalSend(Blob("m3")); });
  s.ScheduleAfter(sim::Duration::Millis(30), [&] { fabric.member(1).CausalSend(Blob("m4")); });
  s.RunFor(sim::Duration::Seconds(2));

  std::printf("Figure 1 pattern, delivery order at process R: ");
  for (const auto& [member, tag] : at_r) {
    std::printf("%s ", tag.c_str());
  }
  std::printf("\n  m1 before m2 at R: %s (required by happens-before)\n\n",
              at_r.size() >= 2 && at_r[0] == std::make_pair(3u, std::string("m1")) ? "yes"
                                                                                   : "NO");
}

void RandomizedSweep() {
  benchutil::Row("%-8s %-8s %-12s %-12s %-14s %-14s %s", "members", "drop%", "sends",
                 "deliveries", "delayed", "mean_delay_us", "causal_violations");
  for (uint32_t members : {3u, 6u, 12u, 24u}) {
    for (double drop : {0.0, 0.1}) {
      sim::Simulator s(42 + members);
      catocs::FabricConfig cfg;
      cfg.num_members = members;
      cfg.network.drop_probability = drop;
      catocs::GroupFabric fabric(&s, cfg);
      fabric.RecordDeliveries();
      fabric.StartAll();
      const int sends_per_member = 20;
      for (uint32_t m = 0; m < members; ++m) {
        for (int k = 0; k < sends_per_member; ++k) {
          const auto when = sim::Duration::Millis(static_cast<int64_t>(1 + s.rng().NextBelow(500)));
          s.ScheduleAfter(when, [&fabric, m] { fabric.member(m).CausalSend(Blob("t")); });
        }
      }
      s.RunFor(sim::Duration::Seconds(30));

      uint64_t delayed = 0;
      double delay_us = 0;
      uint64_t delivered = 0;
      for (size_t i = 0; i < fabric.size(); ++i) {
        delayed += fabric.member(i).stats().delayed_deliveries;
        delay_us += static_cast<double>(fabric.member(i).stats().total_causal_delay.nanos()) /
                    1000.0;
        delivered += fabric.member(i).stats().app_delivered;
      }
      const std::string violation = catocs::CheckCausalDeliveryInvariant(fabric.records());
      benchutil::Row("%-8u %-8.0f %-12u %-12llu %-14llu %-14.1f %s", members, drop * 100,
                     members * sends_per_member, static_cast<unsigned long long>(delivered),
                     static_cast<unsigned long long>(delayed),
                     delayed ? delay_us / static_cast<double>(delayed) : 0.0,
                     violation.empty() ? "none" : violation.c_str());
    }
  }
}

}  // namespace

int main() {
  benchutil::Header("E1 — causal multicast order (Figure 1, §2)",
                    "happens-before is preserved at every member; concurrent messages cost "
                    "delay-queue time even though nothing semantically orders them");
  Figure1Pattern();
  RandomizedSweep();
  return 0;
}
