// E6 — §3.4 limitation 4: false causality. Eight members each publish an
// independent telemetry stream (no cross-member semantic dependencies at
// all), yet causal multicast entangles them: one lost packet delays
// causally-"later" messages from every other sender until the retransmission
// lands. The unordered mode and the prescriptive view (per-sender FIFO is
// all these streams need) pay no such penalty. Also runs the footnote-4
// piggyback variant, which trades the delay for message-size blowup.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/catocs/group.h"
#include "src/sim/metrics.h"

namespace {

struct RunResult {
  double mean_latency_us = 0;
  double p99_latency_us = 0;
  uint64_t delayed = 0;
  double mean_causal_delay_us = 0;
  uint64_t piggyback_bytes = 0;
  uint64_t network_bytes = 0;
};

RunResult RunOne(catocs::OrderingMode mode, double drop, bool piggyback, uint64_t seed) {
  sim::Simulator s(seed);
  catocs::FabricConfig cfg;
  cfg.num_members = 8;
  cfg.network.drop_probability = drop;
  cfg.group.piggyback_causal = piggyback;
  catocs::GroupFabric fabric(&s, cfg);

  sim::Histogram latency;
  for (size_t i = 0; i < fabric.size(); ++i) {
    fabric.member(i).SetDeliveryHandler([&latency](const catocs::Delivery& d) {
      latency.Record(static_cast<double>((d.delivered_at - d.sent_at()).nanos()) / 1000.0);
    });
  }
  fabric.StartAll();

  benchutil::StaggeredSenders senders(
      &s, fabric.size(), sim::Duration::Millis(20),
      [](uint32_t m) { return sim::Duration::Micros(300 + 2100 * m); },
      [&fabric, mode](uint32_t m) {
        fabric.member(m).Send(mode, std::make_shared<net::BlobPayload>("telemetry", 128));
      });
  s.RunFor(sim::Duration::Seconds(20));
  senders.StopAll();

  RunResult result;
  result.mean_latency_us = latency.mean();
  result.p99_latency_us = latency.Quantile(0.99);
  for (size_t i = 0; i < fabric.size(); ++i) {
    const auto& stats = fabric.member(i).stats();
    result.delayed += stats.delayed_deliveries;
    result.mean_causal_delay_us +=
        static_cast<double>(stats.total_causal_delay.nanos()) / 1000.0;
    result.piggyback_bytes += stats.piggyback_bytes;
  }
  if (result.delayed > 0) {
    result.mean_causal_delay_us /= static_cast<double>(result.delayed);
  }
  result.network_bytes = fabric.network().bytes_sent();
  return result;
}

}  // namespace

int main() {
  benchutil::Header(
      "E6 — false causality delay (§3.4) + footnote-4 piggyback ablation",
      "semantically independent streams: causal mode delays deliveries behind other "
      "senders' losses; unordered doesn't; piggybacking removes delay but inflates bytes");
  benchutil::Row("%-22s %-8s %-14s %-14s %-10s %-16s %-14s %s", "protocol", "drop%",
                 "mean_lat_us", "p99_lat_us", "delayed", "mean_delay_us", "piggyback_KB",
                 "net_MB");
  for (double drop : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const RunResult unordered = RunOne(catocs::OrderingMode::kUnordered, drop, false, 11);
    const RunResult causal = RunOne(catocs::OrderingMode::kCausal, drop, false, 11);
    const RunResult piggy = RunOne(catocs::OrderingMode::kCausal, drop, true, 11);
    auto print = [&](const char* name, const RunResult& r) {
      benchutil::Row("%-22s %-8.0f %-14.1f %-14.1f %-10llu %-16.1f %-14.1f %.2f", name,
                     drop * 100, r.mean_latency_us, r.p99_latency_us,
                     static_cast<unsigned long long>(r.delayed), r.mean_causal_delay_us,
                     static_cast<double>(r.piggyback_bytes) / 1024.0,
                     static_cast<double>(r.network_bytes) / (1024.0 * 1024.0));
    };
    print("unordered-multicast", unordered);
    print("causal-delay", causal);
    print("causal-piggyback(fn4)", piggy);
    benchutil::Row("");
  }
  benchutil::Row("note: unordered latency excludes losses (dropped forever); causal latency");
  benchutil::Row("includes retransmitted+delayed deliveries — the price of ordering traffic");
  benchutil::Row("that carries no semantic dependency.");
  return 0;
}
