// E18 — raw-speed layer: sustained end-to-end throughput of the CATOCS stack
// at N=64 versus sender batch size and payload size. The whole simulation is
// the system under test: every app message at batch=1 costs N-1 reliably
// retransmitted transport segments plus their acks and delivery events, while
// a batch of B messages shares one stamped GroupBatch frame — so wall-clock
// msgs/sec through the simulator rises nearly linearly in B until per-message
// work (clock stamping, delivery-gate checks, app dispatch) dominates.
//
// The batch sweep keeps delta timestamps off in every config so the ratio
// isolates batching alone; a separate batch=32 config turns the delta wire
// form on to price that knob independently (it trades a small decode cost
// per frame for the §3.4 header-byte savings).
//
// google-benchmark binary; results are merged into BENCH_micro.json by
// scripts/bench.sh (Release builds only).

#include <benchmark/benchmark.h>

#include <memory>

#include "src/catocs/group.h"
#include "src/net/payload.h"
#include "src/sim/simulator.h"

namespace {

constexpr uint32_t kMembers = 64;
constexpr uint32_t kSenders = 8;
constexpr uint32_t kBurst = 32;           // sends per tick, same in every config
constexpr int64_t kTickMillis = 20;       // burst cadence per sender
constexpr int64_t kHorizonMillis = 400;   // simulated workload window
// Ack gossip rides alongside the workload identically in every config; the
// long interval keeps stability progress flowing through data-frame acks
// (the same information) rather than through periodic gossip event churn.
constexpr int64_t kGossipMillis = 400;

struct RunTotals {
  uint64_t delivered = 0;       // app messages delivered at member 0
  uint64_t header_bytes = 0;    // ordering headers across all senders
  uint64_t transmissions = 0;   // data-frame copies those headers rode on
};

// One complete simulated run; member 0 is an observer that never sends.
RunTotals RunOne(uint32_t batch, size_t payload_bytes, bool delta) {
  sim::Simulator s(1800 + batch);
  catocs::FabricConfig cfg;
  cfg.num_members = kMembers;
  cfg.group.batching = batch;
  cfg.group.delta_timestamps = delta;
  cfg.group.ack_gossip_interval = sim::Duration::Millis(kGossipMillis);
  catocs::GroupFabric fabric(&s, cfg);
  uint64_t delivered = 0;
  fabric.member(0).SetDeliveryHandler([&delivered](const catocs::Delivery&) { ++delivered; });
  fabric.StartAll();
  for (uint32_t sender = 1; sender <= kSenders; ++sender) {
    for (int64_t tick = 0; tick * kTickMillis < kHorizonMillis; ++tick) {
      s.ScheduleAfter(sim::Duration::Millis(1 + tick * kTickMillis),
                      [&fabric, sender, payload_bytes] {
                        for (uint32_t i = 0; i < kBurst; ++i) {
                          fabric.member(sender).CausalSend(
                              std::make_shared<net::BlobPayload>("e18", payload_bytes));
                        }
                      });
    }
  }
  // Generous drain: every burst delivers well within the extra second.
  s.RunFor(sim::Duration::Millis(kHorizonMillis) + sim::Duration::Seconds(1));
  RunTotals totals;
  totals.delivered = delivered;
  for (size_t i = 0; i < fabric.size(); ++i) {
    totals.header_bytes += fabric.member(i).stats().ordering_header_bytes;
    totals.transmissions += fabric.member(i).stats().data_transmissions;
  }
  return totals;
}

void BM_SustainedThroughput(benchmark::State& state) {
  const uint32_t batch = static_cast<uint32_t>(state.range(0));
  const size_t payload_bytes = static_cast<size_t>(state.range(1));
  const bool delta = state.range(2) != 0;
  RunTotals totals;
  for (auto _ : state) {
    const RunTotals one = RunOne(batch, payload_bytes, delta);
    totals.delivered += one.delivered;
    totals.header_bytes += one.header_bytes;
    totals.transmissions += one.transmissions;
  }
  state.SetItemsProcessed(static_cast<int64_t>(totals.delivered));
  state.counters["batch"] = batch;
  state.counters["payload_bytes"] = static_cast<double>(payload_bytes);
  state.counters["delta"] = delta ? 1 : 0;
  // Ordering metadata per transmitted data copy — the wire-overhead figure
  // E21 sweeps against N; tracked here so bench_compare.py can flag drift.
  state.counters["metadata_bytes_per_msg"] =
      totals.transmissions == 0 ? 0.0
                                : static_cast<double>(totals.header_bytes) /
                                      static_cast<double>(totals.transmissions);
}
BENCHMARK(BM_SustainedThroughput)
    ->ArgNames({"batch", "payload", "delta"})
    ->Args({1, 16, 0})
    ->Args({8, 16, 0})
    ->Args({32, 16, 0})
    ->Args({1, 256, 0})
    ->Args({8, 256, 0})
    ->Args({32, 256, 0})
    ->Args({32, 16, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("repro_build_type", "release");
#else
  benchmark::AddCustomContext("repro_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
