// E14 — §4.5: replication in the large (global name service). The
// optimistic anti-entropy design accepts every binding immediately — through
// a partition — and converges after healing, resolving duplicate bindings by
// deterministic undo; the CATOCS total-order design never needs an undo but
// stalls the cut-off sites for the entire partition. Sweeps the partition
// length.

#include "bench/bench_util.h"
#include "src/apps/nameservice.h"

int main() {
  benchutil::Header(
      "E14 — name service replication in the large (§4.5)",
      "optimistic: always available, occasional undo, converges after heal; "
      "CATOCS: no undos but bindings stall for the whole partition");
  benchutil::Row("%-24s %-14s %-10s %-9s %-13s %-9s %-11s %-10s %s", "design", "partition_ms",
                 "bindings", "instant", "stalled(max)", "undos", "converged", "net_KB",
                 "mean_commit_ms");
  for (int64_t partition_ms : {0, 500, 1000, 2000}) {
    for (apps::NameServiceStrategy strategy :
         {apps::NameServiceStrategy::kOptimisticAntiEntropy,
          apps::NameServiceStrategy::kCatocsTotalOrder}) {
      apps::NameServiceConfig config;
      config.strategy = strategy;
      config.partition_duration = sim::Duration::Millis(partition_ms);
      config.seed = 19;
      const apps::NameServiceResult result = RunNameServiceScenario(config);
      char stalled[32];
      std::snprintf(stalled, sizeof(stalled), "%d(%.0fms)", result.stalled, result.max_stall_ms);
      benchutil::Row("%-24s %-14lld %-10d %-9d %-13s %-9d %-11s %-10.1f %.1f",
                     strategy == apps::NameServiceStrategy::kOptimisticAntiEntropy
                         ? "optimistic-antientropy"
                         : "catocs-totalorder",
                     static_cast<long long>(partition_ms), result.bindings_attempted,
                     result.accepted_immediately, stalled, result.conflicts_undone,
                     result.converged ? "yes" : "NO",
                     static_cast<double>(result.network_bytes) / 1024.0,
                     result.mean_commit_latency_ms);
    }
    benchutil::Row("");
  }
  return 0;
}
