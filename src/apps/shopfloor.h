// Figure 2 scenario: unrecognized causality through a shared database.
//
// Two Shop Floor Control (SFC) instances serve client requests. Each request
// updates a common database (a separate node reached by request/reply over
// the transport — a channel the CATOCS group knows nothing about) and then
// multicasts the result to the group. A "start lot" handled by instance 1
// and a subsequent "stop lot" handled by instance 2 are semantically ordered
// by the database (versions 1 and 2 of the lot record), but the two
// multicasts are *concurrent* at the message level, so causal (or total)
// multicast is free to deliver "stop" before "start" at an observer.
//
// The scenario runs many randomized rounds and counts, at the observer:
//   * raw CATOCS display  — anomaly when a lot's displayed version goes
//     backwards (the paper's anomaly);
//   * version-filtered display (statelv::OrderedCache) — stale updates are
//     dropped, so the displayed state can never regress.

#ifndef REPRO_SRC_APPS_SHOPFLOOR_H_
#define REPRO_SRC_APPS_SHOPFLOOR_H_

#include <cstdint>

#include "src/catocs/message.h"
#include "src/sim/time.h"

namespace obs {
class ProvenanceRecorder;
}  // namespace obs

namespace apps {

struct ShopFloorConfig {
  int rounds = 200;
  // Gap between the "start" and "stop" requests within a round.
  sim::Duration request_gap = sim::Duration::Millis(5);
  sim::Duration round_gap = sim::Duration::Millis(50);
  // Group link jitter; larger jitter -> more reordering of the concurrent
  // multicasts.
  sim::Duration latency_lo = sim::Duration::Millis(1);
  sim::Duration latency_hi = sim::Duration::Millis(10);
  // Database link latency (the hidden channel) — fast, as the paper assumes.
  sim::Duration db_latency = sim::Duration::Micros(300);
  catocs::OrderingMode mode = catocs::OrderingMode::kCausal;
  uint64_t seed = 1;

  // Provenance instrumentation (DESIGN.md §8): each round's stop->start
  // dependency travels through the database — a channel the group transport
  // never sees — so it is injected as a *hidden* edge, never declared by the
  // app (that blindness is the measured point). The recorder's per-member
  // hidden-miss count at the observer then equals raw_anomalies.
  obs::ProvenanceRecorder* provenance = nullptr;
};

struct ShopFloorResult {
  int rounds = 0;
  // Rounds where the observer's raw delivery showed "stop" before "start".
  int raw_anomalies = 0;
  // Rounds where the version-filtered view regressed (must be 0).
  int filtered_anomalies = 0;
  // Updates the filtered view dropped as stale (exactly the repaired cases).
  uint64_t stale_drops = 0;
  // Mean delivery latency of group messages at the observer (microseconds).
  double mean_delivery_latency_us = 0.0;
};

ShopFloorResult RunShopFloorScenario(const ShopFloorConfig& config);

}  // namespace apps

#endif  // REPRO_SRC_APPS_SHOPFLOOR_H_
