#include "src/apps/drilling.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/catocs/group.h"

namespace apps {

namespace {

class ScheduleMsg : public net::Payload {
 public:
  explicit ScheduleMsg(int holes) : holes_(holes) {}
  size_t SizeBytes() const override { return 8 + static_cast<size_t>(holes_) * 4; }
  std::string Describe() const override { return "schedule"; }
  int holes() const { return holes_; }

 private:
  int holes_;
};

class CompleteMsg : public net::Payload {
 public:
  CompleteMsg(int hole, int driller) : hole_(hole), driller_(driller) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "complete"; }
  int hole() const { return hole_; }
  int driller() const { return driller_; }

 private:
  int hole_;
  int driller_;
};

class AssignMsg : public net::Payload {
 public:
  explicit AssignMsg(std::vector<int> holes) : holes_(std::move(holes)) {}
  size_t SizeBytes() const override { return holes_.size() * 4; }
  std::string Describe() const override { return "assign"; }
  const std::vector<int>& holes() const { return holes_; }

 private:
  std::vector<int> holes_;
};

class ProgressPing : public net::Payload {
 public:
  size_t SizeBytes() const override { return 4; }
  std::string Describe() const override { return "ping"; }
};

constexpr uint32_t kAssignPort = 0xD1110001;
constexpr uint32_t kCompletePort = 0xD1110002;
constexpr uint32_t kBackupPort = 0xD1110003;
constexpr uint32_t kPingPort = 0xD1110004;

DrillingResult Summarize(const DrillingConfig& config, const std::map<int, int>& completions,
                         const std::set<int>& checklist, sim::TimePoint last_complete,
                         uint64_t app_messages, uint64_t packets, uint64_t bytes) {
  DrillingResult result;
  result.holes = config.holes;
  result.app_messages = app_messages;
  result.network_packets = packets;
  result.network_bytes = bytes;
  for (const auto& [hole, count] : completions) {
    if (count >= 1) {
      ++result.holes_completed;
    }
    if (count > 1) {
      ++result.holes_double_drilled;
    }
  }
  result.checklist_size = static_cast<int>(checklist.size());
  result.all_accounted = result.holes_completed + result.checklist_size == config.holes;
  result.makespan_ms = static_cast<double>(last_complete.nanos()) / 1e6;
  return result;
}

DrillingResult RunCatocs(const DrillingConfig& config) {
  sim::Simulator s(config.seed);
  const int drillers = config.drillers;
  catocs::FabricConfig fabric_config;
  fabric_config.num_members = static_cast<uint32_t>(drillers + 1);  // + cell controller
  fabric_config.latency_lo = config.latency_lo;
  fabric_config.latency_hi = config.latency_hi;
  fabric_config.group.enable_membership = config.crash_driller_at > sim::Duration::Zero();
  catocs::GroupFabric fabric(&s, fabric_config);
  const size_t controller = static_cast<size_t>(drillers);  // last member

  // Shared bookkeeping (evaluated at the controller's view of the world).
  std::map<int, int> completions;
  std::set<int> checklist;
  sim::TimePoint last_complete = sim::TimePoint::Zero();
  uint64_t app_messages = 0;
  sim::Rng drill_rng = s.rng().Fork();

  // Per-driller work state.
  struct DrillerState {
    std::vector<int> queue;
    bool busy = false;
    bool alive = true;
    std::set<int> done;  // completions this driller has delivered
  };
  std::vector<DrillerState> states(static_cast<size_t>(drillers));

  // Work loop: drill the next queued hole, then multicast completion.
  std::function<void(size_t)> work = [&](size_t d) {
    DrillerState& st = states[d];
    if (!st.alive || st.busy || st.queue.empty()) {
      return;
    }
    st.busy = true;
    const int hole = st.queue.front();
    st.queue.erase(st.queue.begin());
    const sim::Duration drill =
        drill_rng.NextDuration(config.drill_time_lo, config.drill_time_hi);
    s.ScheduleAfter(drill, [&, d, hole] {
      DrillerState& inner = states[d];
      inner.busy = false;
      if (!inner.alive) {
        return;  // crashed mid-drill: the hole stays incomplete
      }
      app_messages += fabric.member(d).view().members.size() - 1;
      fabric.member(d).CausalSend(std::make_shared<CompleteMsg>(hole, static_cast<int>(d)));
      work(d);
    });
  };

  for (size_t member = 0; member < fabric.size(); ++member) {
    fabric.member(member).SetDeliveryHandler([&, member](const catocs::Delivery& del) {
      if (const auto* schedule = net::PayloadCast<ScheduleMsg>(del.payload())) {
        // Every driller derives its assignment from the same ordered
        // schedule: hole h belongs to driller h mod D.
        if (member < static_cast<size_t>(drillers)) {
          for (int h = 0; h < schedule->holes(); ++h) {
            if (h % drillers == static_cast<int>(member)) {
              states[member].queue.push_back(h);
            }
          }
          work(member);
        }
        return;
      }
      if (const auto* complete = net::PayloadCast<CompleteMsg>(del.payload())) {
        if (member < static_cast<size_t>(drillers)) {
          states[member].done.insert(complete->hole());
        }
        if (member == controller) {
          ++completions[complete->hole()];
          last_complete = s.now();
        }
      }
    });
    // On a view change, survivors move the failed driller's unfinished holes
    // to the checklist (they may be partially drilled).
    fabric.member(member).SetViewHandler([&, member](const catocs::View& view) {
      if (member != controller) {
        return;
      }
      for (int d = 0; d < drillers; ++d) {
        const catocs::MemberId id = catocs::GroupFabric::IdOf(static_cast<size_t>(d));
        if (std::find(view.members.begin(), view.members.end(), id) != view.members.end()) {
          continue;
        }
        for (int h = 0; h < config.holes; ++h) {
          if (h % drillers == d && completions[h] == 0) {
            checklist.insert(h);
          }
        }
      }
    });
  }

  fabric.StartAll();
  s.ScheduleAfter(sim::Duration::Millis(1), [&] {
    app_messages += fabric.member(controller).view().members.size() - 1;
    fabric.member(controller).TotalSend(std::make_shared<ScheduleMsg>(config.holes));
  });
  if (config.crash_driller_at > sim::Duration::Zero()) {
    s.ScheduleAfter(config.crash_driller_at, [&] {
      states[0].alive = false;
      fabric.CrashMember(0);
    });
  }
  // End the run (after a settle delay for in-flight traffic) once every hole
  // is completed or checklisted, so idle background timers don't run on.
  sim::PeriodicTimer finish_watch(&s, sim::Duration::Millis(50), [&] {
    int accounted = static_cast<int>(checklist.size());
    for (const auto& [hole, count] : completions) {
      if (count > 0 && !checklist.count(hole)) {
        ++accounted;
      }
    }
    if (accounted >= config.holes) {
      s.ScheduleAfter(sim::Duration::Millis(200), [&] { s.RequestStop(); });
    }
  });
  finish_watch.Start(sim::Duration::Millis(100));
  s.RunFor(sim::Duration::Seconds(60));
  finish_watch.Stop();
  // Clean up uncounted completions map entries with zero count.
  for (auto it = completions.begin(); it != completions.end();) {
    it = it->second == 0 ? completions.erase(it) : std::next(it);
  }
  return Summarize(config, completions, checklist, last_complete, app_messages,
                   fabric.network().packets_sent(), fabric.network().bytes_sent());
}

DrillingResult RunCentral(const DrillingConfig& config) {
  sim::Simulator s(config.seed);
  const int drillers = config.drillers;
  net::Network network(&s, std::make_unique<net::UniformLatency>(config.latency_lo,
                                                                 config.latency_hi));
  // Node ids: 1..D drillers, D+1 controller, D+2 backup.
  const net::NodeId controller_id = static_cast<net::NodeId>(drillers + 1);
  const net::NodeId backup_id = static_cast<net::NodeId>(drillers + 2);
  std::vector<std::unique_ptr<net::Transport>> transports;
  for (int d = 0; d < drillers; ++d) {
    transports.push_back(
        std::make_unique<net::Transport>(&s, &network, static_cast<net::NodeId>(d + 1)));
  }
  net::Transport controller(&s, &network, controller_id);
  net::Transport backup(&s, &network, backup_id);
  backup.RegisterReceiver(kBackupPort, [](net::NodeId, uint32_t, const net::PayloadPtr&) {});

  std::map<int, int> completions;
  std::set<int> checklist;
  sim::TimePoint last_complete = sim::TimePoint::Zero();
  uint64_t app_messages = 0;
  sim::Rng drill_rng = s.rng().Fork();

  struct DrillerState {
    std::vector<int> queue;
    bool busy = false;
    bool alive = true;
  };
  std::vector<DrillerState> states(static_cast<size_t>(drillers));
  std::vector<sim::TimePoint> last_ping(static_cast<size_t>(drillers), sim::TimePoint::Zero());
  std::vector<std::vector<int>> assigned(static_cast<size_t>(drillers));

  std::function<void(size_t)> work = [&](size_t d) {
    DrillerState& st = states[d];
    if (!st.alive || st.busy || st.queue.empty()) {
      return;
    }
    st.busy = true;
    const int hole = st.queue.front();
    st.queue.erase(st.queue.begin());
    const sim::Duration drill =
        drill_rng.NextDuration(config.drill_time_lo, config.drill_time_hi);
    s.ScheduleAfter(drill, [&, d, hole] {
      DrillerState& inner = states[d];
      inner.busy = false;
      if (!inner.alive) {
        return;
      }
      ++app_messages;
      transports[d]->SendReliable(controller_id, kCompletePort,
                                  std::make_shared<CompleteMsg>(hole, static_cast<int>(d)));
      work(d);
    });
  };

  for (int d = 0; d < drillers; ++d) {
    transports[static_cast<size_t>(d)]->RegisterReceiver(
        kAssignPort, [&, d](net::NodeId, uint32_t, const net::PayloadPtr& p) {
          const auto* assign = net::PayloadCast<AssignMsg>(p);
          if (assign == nullptr) {
            return;
          }
          auto& st = states[static_cast<size_t>(d)];
          st.queue.insert(st.queue.end(), assign->holes().begin(), assign->holes().end());
          work(static_cast<size_t>(d));
        });
  }
  controller.RegisterReceiver(kCompletePort,
                              [&](net::NodeId, uint32_t, const net::PayloadPtr& p) {
                                const auto* complete = net::PayloadCast<CompleteMsg>(p);
                                if (complete == nullptr) {
                                  return;
                                }
                                ++completions[complete->hole()];
                                last_complete = s.now();
                                // Mirror to the backup for controller fault
                                // tolerance (one extra linear message).
                                ++app_messages;
                                controller.SendReliable(backup_id, kBackupPort, p);
                              });
  controller.RegisterReceiver(kPingPort, [&](net::NodeId src, uint32_t, const net::PayloadPtr&) {
    if (src >= 1 && src <= static_cast<net::NodeId>(drillers)) {
      last_ping[src - 1] = s.now();
    }
  });

  // Drillers ping the controller so it can detect failures.
  std::vector<std::unique_ptr<sim::PeriodicTimer>> pingers;
  for (int d = 0; d < drillers; ++d) {
    pingers.push_back(std::make_unique<sim::PeriodicTimer>(
        &s, sim::Duration::Millis(100), [&, d] {
          if (states[static_cast<size_t>(d)].alive) {
            ++app_messages;
            transports[static_cast<size_t>(d)]->SendUnreliable(controller_id, kPingPort,
                                                               std::make_shared<ProgressPing>());
          }
        }));
    pingers.back()->Start(sim::Duration::Millis(5));
  }
  // Controller failure check: a silent driller's unfinished holes go to the
  // checklist.
  sim::PeriodicTimer failure_check(&s, sim::Duration::Millis(100), [&] {
    for (int d = 0; d < drillers; ++d) {
      if (last_ping[static_cast<size_t>(d)] != sim::TimePoint::Zero() &&
          s.now() - last_ping[static_cast<size_t>(d)] > sim::Duration::Millis(400)) {
        for (int hole : assigned[static_cast<size_t>(d)]) {
          if (completions[hole] == 0) {
            checklist.insert(hole);
          }
        }
      }
    }
  });
  failure_check.Start(sim::Duration::Millis(500));

  // Assign all holes round-robin, one batch message per driller.
  s.ScheduleAfter(sim::Duration::Millis(1), [&] {
    for (int d = 0; d < drillers; ++d) {
      std::vector<int> holes;
      for (int h = 0; h < config.holes; ++h) {
        if (h % drillers == d) {
          holes.push_back(h);
        }
      }
      assigned[static_cast<size_t>(d)] = holes;
      ++app_messages;
      controller.SendReliable(static_cast<net::NodeId>(d + 1), kAssignPort,
                              std::make_shared<AssignMsg>(std::move(holes)));
    }
  });
  if (config.crash_driller_at > sim::Duration::Zero()) {
    s.ScheduleAfter(config.crash_driller_at, [&] {
      states[0].alive = false;
      pingers[0]->Stop();
      network.SetNodeUp(1, false);
    });
  }
  sim::PeriodicTimer finish_watch(&s, sim::Duration::Millis(50), [&] {
    int accounted = static_cast<int>(checklist.size());
    for (const auto& [hole, count] : completions) {
      if (count > 0 && !checklist.count(hole)) {
        ++accounted;
      }
    }
    if (accounted >= config.holes) {
      s.ScheduleAfter(sim::Duration::Millis(200), [&] { s.RequestStop(); });
    }
  });
  finish_watch.Start(sim::Duration::Millis(100));
  s.RunFor(sim::Duration::Seconds(60));
  finish_watch.Stop();
  for (auto it = completions.begin(); it != completions.end();) {
    it = it->second == 0 ? completions.erase(it) : std::next(it);
  }
  for (auto& pinger : pingers) {
    pinger->Stop();
  }
  failure_check.Stop();
  return Summarize(config, completions, checklist, last_complete, app_messages,
                   network.packets_sent(), network.bytes_sent());
}

}  // namespace

DrillingResult RunDrillingScenario(const DrillingConfig& config) {
  if (config.strategy == DrillStrategy::kCatocsDistributed) {
    return RunCatocs(config);
  }
  return RunCentral(config);
}

}  // namespace apps
