#include "src/apps/shopfloor.h"

#include <map>
#include <memory>
#include <string>

#include "src/catocs/group.h"
#include "src/obs/provenance.h"
#include "src/statelevel/ordered_cache.h"

namespace apps {

namespace {

// A lot-status update disseminated to the group: the lot, the action, and
// the version the database assigned (the state-level logical clock).
class LotUpdate : public net::Payload {
 public:
  LotUpdate(int round, std::string action, uint64_t version)
      : round_(round), action_(std::move(action)), version_(version) {}
  size_t SizeBytes() const override { return 24 + action_.size(); }
  std::string Describe() const override { return action_; }
  int round() const { return round_; }
  const std::string& action() const { return action_; }
  uint64_t version() const { return version_; }

 private:
  int round_;
  std::string action_;
  uint64_t version_;
};

class DbRequest : public net::Payload {
 public:
  DbRequest(int round, std::string action) : round_(round), action_(std::move(action)) {}
  size_t SizeBytes() const override { return 16 + action_.size(); }
  std::string Describe() const override { return "db-req:" + action_; }
  int round() const { return round_; }
  const std::string& action() const { return action_; }

 private:
  int round_;
  std::string action_;
};

class DbReply : public net::Payload {
 public:
  DbReply(int round, std::string action, uint64_t version)
      : round_(round), action_(std::move(action)), version_(version) {}
  size_t SizeBytes() const override { return 24; }
  std::string Describe() const override { return "db-reply"; }
  int round() const { return round_; }
  const std::string& action() const { return action_; }
  uint64_t version() const { return version_; }

 private:
  int round_;
  std::string action_;
  uint64_t version_;
};

constexpr uint32_t kDbPort = 0xDB000001;
constexpr net::NodeId kDbNode = 10;

// Group links jitter; the database link (the hidden channel) is a fast fixed
// connection, per the paper's footnote that computer channels are much
// faster than the external ones.
class ShopFloorLatency : public net::LatencyModel {
 public:
  ShopFloorLatency(sim::Duration lo, sim::Duration hi, sim::Duration db)
      : group_(lo, hi), db_(db) {}
  sim::Duration SampleDelay(net::NodeId src, net::NodeId dst, sim::Rng& rng) override {
    if (src == kDbNode || dst == kDbNode) {
      return db_.SampleDelay(src, dst, rng);
    }
    return group_.SampleDelay(src, dst, rng);
  }

 private:
  net::UniformLatency group_;
  net::FixedLatency db_;
};

}  // namespace

ShopFloorResult RunShopFloorScenario(const ShopFloorConfig& config) {
  sim::Simulator s(config.seed);

  // Group: member 1 = observer (client B's display), members 2 and 3 = the
  // SFC instances. The observer holds the lowest id so that in total-order
  // mode the sequencer role sits with a third party, as it would in a large
  // deployment — neither SFC instance gets to pre-order its own update.
  catocs::FabricConfig fabric_config;
  fabric_config.num_members = 3;
  if (config.provenance != nullptr) {
    fabric_config.group.observability = true;
    fabric_config.group.provenance = config.provenance;
    config.provenance->set_enabled(true);
    s.spans().set_enabled(true);
  }
  catocs::GroupFabric fabric(&s, fabric_config,
                             std::make_unique<ShopFloorLatency>(
                                 config.latency_lo, config.latency_hi, config.db_latency));

  // The shared database lives on its own node, connected by the fast link
  // the group layer never sees.
  net::Transport db_transport(&s, &fabric.network(), kDbNode);
  // Per-round versions: each round uses a fresh lot record; "start" is
  // version 1, "stop" version 2 because the database serializes them.
  std::map<int, uint64_t> lot_versions;
  db_transport.RegisterReceiver(
      kDbPort, [&](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
        const auto* req = net::PayloadCast<DbRequest>(p);
        if (req == nullptr) {
          return;
        }
        const uint64_t version = ++lot_versions[req->round()];
        db_transport.SendReliable(src, kDbPort,
                                  std::make_shared<DbReply>(req->round(), req->action(), version));
      });

  // SFC instances (members at indexes 1 and 2): on DB reply, multicast the
  // versioned result to the group.
  //
  // Provenance: version 1 ("start") and version 2 ("stop") of a round are
  // serialized by the database, but that edge crossed the DB link — the
  // group sees two concurrent multicasts. Record it as a hidden edge.
  std::map<int, catocs::MessageId> start_ids;
  for (size_t instance = 1; instance <= 2; ++instance) {
    fabric.transport(instance).RegisterReceiver(
        kDbPort, [&fabric, &config, &start_ids, instance](net::NodeId, uint32_t,
                                                          const net::PayloadPtr& p) {
          const auto* reply = net::PayloadCast<DbReply>(p);
          if (reply == nullptr) {
            return;
          }
          const catocs::MessageId id = fabric.member(instance).Send(
              config.mode,
              std::make_shared<LotUpdate>(reply->round(), reply->action(), reply->version()));
          if (config.provenance != nullptr && id.seq != 0) {
            if (reply->version() == 1) {
              start_ids[reply->round()] = id;
            } else if (auto it = start_ids.find(reply->round()); it != start_ids.end()) {
              config.provenance->InjectHiddenEdge(catocs::SpanKey(id),
                                                  catocs::SpanKey(it->second));
            }
          }
        });
  }

  // Observer: raw view and version-filtered view, evaluated per round.
  ShopFloorResult result;
  result.rounds = config.rounds;
  std::map<int, uint64_t> raw_last_version;
  std::map<int, bool> raw_anomaly;
  statelv::OrderedCache filtered;
  std::map<int, uint64_t> filtered_last_version;
  std::map<int, bool> filtered_anomaly;
  double latency_sum_us = 0.0;
  uint64_t latency_count = 0;

  fabric.member(0).SetDeliveryHandler([&](const catocs::Delivery& d) {
    const auto* update = net::PayloadCast<LotUpdate>(d.payload());
    if (update == nullptr) {
      return;
    }
    latency_sum_us += static_cast<double>((d.delivered_at - d.sent_at()).nanos()) / 1000.0;
    ++latency_count;
    // Raw CATOCS display: believe deliveries in the order they arrive.
    uint64_t& last = raw_last_version[update->round()];
    if (update->version() < last) {
      raw_anomaly[update->round()] = true;
    }
    last = std::max(last, update->version());
    // State-level display: the ordered cache drops stale versions.
    statelv::VersionedUpdate vu;
    vu.object = "lot-" + std::to_string(update->round());
    vu.version = update->version();
    vu.value = update->action() == "stop" ? 0.0 : 1.0;
    filtered.Apply(vu);
    const statelv::VersionedUpdate* current = filtered.Get(vu.object);
    if (current != nullptr) {
      uint64_t& flast = filtered_last_version[update->round()];
      if (current->version < flast) {
        filtered_anomaly[update->round()] = true;
      }
      flast = current->version;
    }
  });

  fabric.StartAll();

  // Drive the rounds: "start" to instance 1, then "stop" to instance 2.
  for (int round = 0; round < config.rounds; ++round) {
    const sim::Duration at = config.round_gap * round;
    s.ScheduleAt(sim::TimePoint::Zero() + at, [&fabric, round] {
      fabric.transport(1).SendReliable(kDbNode, kDbPort,
                                       std::make_shared<DbRequest>(round, "start"));
    });
    s.ScheduleAt(sim::TimePoint::Zero() + at + config.request_gap, [&fabric, round] {
      fabric.transport(2).SendReliable(kDbNode, kDbPort,
                                       std::make_shared<DbRequest>(round, "stop"));
    });
  }
  s.RunFor(config.round_gap * config.rounds + sim::Duration::Seconds(2));

  for (const auto& [round, bad] : raw_anomaly) {
    if (bad) {
      ++result.raw_anomalies;
    }
  }
  for (const auto& [round, bad] : filtered_anomaly) {
    if (bad) {
      ++result.filtered_anomalies;
    }
  }
  result.stale_drops = filtered.stats().stale_dropped;
  result.mean_delivery_latency_us = latency_count ? latency_sum_us / latency_count : 0.0;
  return result;
}

}  // namespace apps
