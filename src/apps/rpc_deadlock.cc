#include "src/apps/rpc_deadlock.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/catocs/group.h"
#include "src/txn/deadlock_detector.h"
#include "src/txn/wait_for_graph.h"

namespace apps {

namespace {

class CallMsg : public net::Payload {
 public:
  CallMsg(uint64_t id, int caller, int nest_target)
      : id_(id), caller_(caller), nest_target_(nest_target) {}
  size_t SizeBytes() const override { return 64; }
  std::string Describe() const override { return "rpc-call"; }
  uint64_t id() const { return id_; }
  int caller() const { return caller_; }
  // >= 0: the handler must issue a nested (blocking) call into this process
  // — how the scenario scripts deadlock cycles.
  int nest_target() const { return nest_target_; }

 private:
  uint64_t id_;
  int caller_;
  int nest_target_;
};

class ReplyMsg : public net::Payload {
 public:
  explicit ReplyMsg(uint64_t id) : id_(id) {}
  size_t SizeBytes() const override { return 32; }
  std::string Describe() const override { return "rpc-reply"; }
  uint64_t id() const { return id_; }

 private:
  uint64_t id_;
};

// van Renesse event stream payloads.
class InvokeEvent : public net::Payload {
 public:
  InvokeEvent(uint64_t parent, uint64_t child, int target)
      : parent_(parent), child_(child), target_(target) {}
  size_t SizeBytes() const override { return 20; }
  std::string Describe() const override { return "invoke-evt"; }
  uint64_t parent() const { return parent_; }
  uint64_t child() const { return child_; }
  int target() const { return target_; }

 private:
  uint64_t parent_;
  uint64_t child_;
  int target_;
};

class ServeEvent : public net::Payload {
 public:
  ServeEvent(uint64_t call, int at) : call_(call), at_(at) {}
  size_t SizeBytes() const override { return 12; }
  std::string Describe() const override { return "serve-evt"; }
  uint64_t call() const { return call_; }
  int at() const { return at_; }

 private:
  uint64_t call_;
  int at_;
};

class ReturnEvent : public net::Payload {
 public:
  ReturnEvent(uint64_t call, int at) : call_(call), at_(at) {}
  size_t SizeBytes() const override { return 12; }
  std::string Describe() const override { return "return-evt"; }
  uint64_t call() const { return call_; }
  int at() const { return at_; }

 private:
  uint64_t call_;
  int at_;
};

constexpr uint32_t kCallPort = 0xCA110001;
constexpr uint32_t kReplyPort = 0xCA110002;

// The RPC engine: single-threaded servers, FIFO request queues, blocking
// nested calls. Transport-agnostic: the harness supplies send functions.
class RpcEngine {
 public:
  using SendFn = std::function<void(int dst, const net::PayloadPtr&)>;
  // (caller_proc or -1, parent, child, target) on invoke; (call, at) on
  // serve/return.
  using InvokeHook = std::function<void(int, uint64_t, uint64_t, int)>;
  using ServeHook = std::function<void(uint64_t, int)>;
  using ReturnHook = std::function<void(uint64_t, int)>;

  RpcEngine(sim::Simulator* s, int processes, SendFn send_call, SendFn send_reply)
      : s_(s), send_call_(std::move(send_call)), send_reply_(std::move(send_reply)),
        procs_(static_cast<size_t>(processes)) {}

  void SetHooks(InvokeHook on_invoke, ServeHook on_serve, ReturnHook on_return) {
    on_invoke_ = std::move(on_invoke);
    on_serve_ = std::move(on_serve);
    on_return_ = std::move(on_return);
  }

  // A client call arriving at `proc` from outside (parent 0). nest_target
  // >= 0 scripts the handler to issue a blocking nested call into that
  // process.
  uint64_t ClientCall(int proc, int nest_target = -1) {
    return Issue(/*caller_proc=*/-1, /*parent=*/0, proc, nest_target);
  }

  void OnCall(int at, const CallMsg& msg) {
    calls_[msg.id()].nest_target = msg.nest_target();
    calls_[msg.id()].caller_proc = msg.caller();
    procs_[at].queue.push_back(msg.id());
    TryServe(at);
  }

  void OnReply(int at, const ReplyMsg& msg) {
    Proc& p = procs_[at];
    if (p.blocked_on != msg.id()) {
      return;  // stale (aborted) reply
    }
    p.blocked_on = 0;
    // Nested work done: finish the serving call.
    Finish(at);
  }

  // Removes a queued call and completes its caller with an error — the
  // deadlock-resolution victim. Returns false if the call is not queued
  // anywhere yet (still in flight); the caller should retry.
  bool ForceAbort(uint64_t call_id) {
    for (size_t at = 0; at < procs_.size(); ++at) {
      auto& queue = procs_[at].queue;
      auto it = std::find(queue.begin(), queue.end(), call_id);
      if (it != queue.end()) {
        queue.erase(it);
        if (on_return_) {
          on_return_(call_id, static_cast<int>(at));
        }
        CompleteCaller(call_id);
        return true;
      }
    }
    return false;
  }

  // Instance-level wait-for edges local to `proc` (for reporters).
  std::vector<txn::WaitEdge> LocalEdges(int proc) const {
    std::vector<txn::WaitEdge> edges;
    const Proc& p = procs_[static_cast<size_t>(proc)];
    if (p.serving != 0 && p.blocked_on != 0) {
      edges.emplace_back(p.serving, p.blocked_on);
    }
    if (p.serving != 0) {
      for (uint64_t queued : p.queue) {
        edges.emplace_back(queued, p.serving);
      }
    }
    return edges;
  }

  bool Blocked(int proc) const { return procs_[static_cast<size_t>(proc)].blocked_on != 0; }
  uint64_t Serving(int proc) const { return procs_[static_cast<size_t>(proc)].serving; }
  uint64_t BlockedOn(int proc) const { return procs_[static_cast<size_t>(proc)].blocked_on; }
  uint64_t completed() const { return completed_; }
  int ProcOfQueuedCall(uint64_t call_id) const {
    for (size_t at = 0; at < procs_.size(); ++at) {
      const auto& queue = procs_[at].queue;
      if (std::find(queue.begin(), queue.end(), call_id) != queue.end()) {
        return static_cast<int>(at);
      }
    }
    return -1;
  }

 private:
  struct CallInfo {
    int caller_proc = -1;  // -1: external client
    uint64_t parent = 0;
    int nest_target = -1;
  };
  struct Proc {
    std::deque<uint64_t> queue;
    uint64_t serving = 0;
    uint64_t blocked_on = 0;
  };

  uint64_t Issue(int caller_proc, uint64_t parent, int target, int nest_target) {
    const uint64_t id = next_call_++;
    calls_[id] = CallInfo{caller_proc, parent, nest_target};
    if (on_invoke_) {
      on_invoke_(caller_proc, parent, id, target);
    }
    send_call_(target, std::make_shared<CallMsg>(id, caller_proc, nest_target));
    return id;
  }

  void TryServe(int at) {
    Proc& p = procs_[static_cast<size_t>(at)];
    if (p.serving != 0 || p.queue.empty()) {
      return;
    }
    p.serving = p.queue.front();
    p.queue.pop_front();
    if (on_serve_) {
      on_serve_(p.serving, at);
    }
    const CallInfo& info = calls_[p.serving];
    if (info.nest_target >= 0) {
      // Scripted nesting: call into the named process and block on the
      // reply.
      p.blocked_on = Issue(at, p.serving, info.nest_target, /*nest_target=*/-1);
      return;
    }
    // Plain local work, then reply.
    const uint64_t expected = p.serving;
    s_->ScheduleAfter(sim::Duration::Millis(2), [this, at, expected] {
      if (procs_[static_cast<size_t>(at)].serving == expected &&
          procs_[static_cast<size_t>(at)].blocked_on == 0) {
        Finish(at);
      }
    });
  }

  void Finish(int at) {
    Proc& p = procs_[static_cast<size_t>(at)];
    const uint64_t done = p.serving;
    p.serving = 0;
    if (on_return_) {
      on_return_(done, at);
    }
    CompleteCaller(done);
    TryServe(at);
  }

  void CompleteCaller(uint64_t call_id) {
    ++completed_;
    const CallInfo& info = calls_[call_id];
    if (info.caller_proc >= 0) {
      send_reply_(info.caller_proc, std::make_shared<ReplyMsg>(call_id));
    }
  }

  sim::Simulator* s_;
  SendFn send_call_;
  SendFn send_reply_;
  InvokeHook on_invoke_;
  ServeHook on_serve_;
  ReturnHook on_return_;
  std::vector<Proc> procs_;
  std::map<uint64_t, CallInfo> calls_;
  uint64_t next_call_ = 1;
  uint64_t completed_ = 0;
};

// The van Renesse monitor: rebuilds the wait-for graph from the causally
// delivered invoke/serve/return event stream.
class VanRenesseMonitor {
 public:
  using DetectFn = std::function<void(const std::vector<uint64_t>&)>;

  explicit VanRenesseMonitor(DetectFn on_detect) : on_detect_(std::move(on_detect)) {}

  void OnInvoke(uint64_t parent, uint64_t child, int target) {
    outstanding_[child] = Outstanding{parent, target};
    Recompute();
  }

  void OnServe(uint64_t call, int at) {
    serving_[at] = call;
    Recompute();
  }

  void OnReturn(uint64_t call, int at) {
    outstanding_.erase(call);
    if (serving_[at] == call) {
      serving_[at] = 0;
    }
    Recompute();
  }

 private:
  struct Outstanding {
    uint64_t parent = 0;
    int target = 0;
  };

  void Recompute() {
    graph_.Clear();
    for (const auto& [child, info] : outstanding_) {
      // Parent waits for child while the child is outstanding.
      if (info.parent != 0) {
        graph_.AddEdge(info.parent, child);
      }
      // An outstanding call waits for whatever its target is serving.
      auto it = serving_.find(info.target);
      if (it != serving_.end() && it->second != 0 && it->second != child) {
        graph_.AddEdge(child, it->second);
      }
    }
    if (auto cycle = graph_.FindCycle()) {
      on_detect_(*cycle);
    }
  }

  DetectFn on_detect_;
  txn::WaitForGraph graph_;
  std::map<uint64_t, Outstanding> outstanding_;
  std::map<int, uint64_t> serving_;
};

}  // namespace

RpcDeadlockResult RunRpcDeadlockScenario(const RpcDeadlockConfig& config) {
  sim::Simulator s(config.seed);
  const int n = config.processes;
  RpcDeadlockResult result;
  result.injected = config.injected_deadlocks;

  // Injection bookkeeping shared across modes. Detections are attributed to
  // an injection by matching the reported cycle against the injected call
  // ids (the client calls c1/c2 and their nested children).
  struct Injection {
    int a = 0;
    int b = 0;
    uint64_t c1 = 0;
    uint64_t c2 = 0;
    sim::TimePoint born = sim::TimePoint::Zero();
    bool born_known = false;
    bool detected = false;
    bool resolved = false;
  };
  std::vector<Injection> injections(static_cast<size_t>(config.injected_deadlocks));
  sim::TimePoint last_resolved = sim::TimePoint::Zero();
  double detection_latency_sum_ms = 0.0;

  RpcEngine* engine_ptr = nullptr;
  // Resolution: abort the nested call process `a` is blocked on. The abort
  // may race the call still being in flight to the peer's queue; retry until
  // it lands.
  std::function<void(uint64_t)> abort_until_done = [&](uint64_t victim) {
    if (!engine_ptr->ForceAbort(victim)) {
      s.ScheduleAfter(sim::Duration::Millis(2), [&abort_until_done, victim] {
        abort_until_done(victim);
      });
    }
  };
  auto handle_detection = [&](const std::vector<uint64_t>& cycle) {
    for (auto& injection : injections) {
      if (injection.resolved || injection.c1 == 0) {
        continue;
      }
      const bool matches =
          std::find(cycle.begin(), cycle.end(), injection.c1) != cycle.end() ||
          std::find(cycle.begin(), cycle.end(), injection.c2) != cycle.end();
      if (!matches) {
        continue;
      }
      if (!injection.detected) {
        injection.detected = true;
        ++result.detected;
        const sim::TimePoint born = injection.born_known ? injection.born : s.now();
        detection_latency_sum_ms += static_cast<double>((s.now() - born).nanos()) / 1e6;
      }
      injection.resolved = true;
      last_resolved = s.now();
      const uint64_t victim = engine_ptr->BlockedOn(injection.a);
      if (victim != 0) {
        abort_until_done(victim);
      }
      return;
    }
    // A cycle matching no live injection: stale re-detection shortly after a
    // resolution is expected; anything else is a false positive.
    if (s.now() - last_resolved > sim::Duration::Millis(500)) {
      ++result.false_positives;
    }
  };

  // Workload driver, common to all modes.
  auto drive = [&](RpcEngine& engine) {
    engine_ptr = &engine;
    sim::Rng workload = s.rng().Fork();
    for (int i = 0; i < config.background_calls; ++i) {
      const int target = static_cast<int>(workload.NextBelow(static_cast<uint64_t>(n)));
      s.ScheduleAt(sim::TimePoint::Zero() + config.background_spacing * (i + 1),
                   [&engine, target] { engine.ClientCall(target); });
    }
    for (int k = 0; k < config.injected_deadlocks; ++k) {
      const int a = static_cast<int>(workload.NextBelow(static_cast<uint64_t>(n)));
      const int b = static_cast<int>((a + 1 + workload.NextBelow(static_cast<uint64_t>(n - 1))) %
                                     n);
      const sim::TimePoint at = sim::TimePoint::Zero() + config.injection_spacing * (k + 1);
      s.ScheduleAt(at, [&engine, &injections, &s, k, a, b] {
        // Two clients hit A and B "simultaneously"; A's handler nests into
        // B's process and vice versa: a four-call wait cycle
        // (ca -> na -> cb -> nb -> ca).
        auto& injection = injections[static_cast<size_t>(k)];
        injection.a = a;
        injection.b = b;
        injection.c1 = engine.ClientCall(a, /*nest_target=*/b);
        injection.c2 = engine.ClientCall(b, /*nest_target=*/a);
        // The deadlock is born once both processes are blocked on their
        // nested calls; poll for that instant to record ground truth.
        // The scheduled closure owns the poll function; the function itself
        // only holds a weak reference, so the chain frees itself when it
        // terminates instead of leaking a shared_ptr cycle.
        auto poll = std::make_shared<std::function<void()>>();
        *poll = [&engine, &injection, &s, weak = std::weak_ptr<std::function<void()>>(poll), a,
                 b] {
          if (injection.resolved) {
            return;
          }
          if (engine.Blocked(a) && engine.Blocked(b)) {
            injection.born = s.now();
            injection.born_known = true;
            return;
          }
          if (auto self = weak.lock()) {
            s.ScheduleAfter(sim::Duration::Millis(2), [self] { (*self)(); });
          }
        };
        s.ScheduleAfter(sim::Duration::Millis(2), [poll] { (*poll)(); });
      });
      // Rescue: if never detected, clear it by timeout so the run finishes.
      s.ScheduleAt(at + config.rescue_timeout,
                   [&injections, &engine, &last_resolved, &abort_until_done, &s, k] {
                     auto& injection = injections[static_cast<size_t>(k)];
                     if (!injection.resolved) {
                       injection.resolved = true;
                       last_resolved = s.now();
                       const uint64_t victim = engine.BlockedOn(injection.a);
                       if (victim != 0) {
                         abort_until_done(victim);
                       }
                     }
                   });
    }
  };

  const sim::Duration run_time = config.injection_spacing * (config.injected_deadlocks + 1) +
                                 config.rescue_timeout + sim::Duration::Seconds(2);

  if (config.detector == DeadlockDetectorKind::kVanRenesseCausal) {
    catocs::FabricConfig fabric_config;
    fabric_config.num_members = static_cast<uint32_t>(n + 1);  // + monitor
    fabric_config.latency_lo = config.latency_lo;
    fabric_config.latency_hi = config.latency_hi;
    catocs::GroupFabric fabric(&s, fabric_config);
    const size_t monitor_index = static_cast<size_t>(n);

    RpcEngine engine(
        &s, n,
        [&fabric](int dst, const net::PayloadPtr& p) {
          // RPC calls ride the plain transport; route through node dst+1.
          fabric.transport(0).SendReliable(catocs::GroupFabric::IdOf(static_cast<size_t>(dst)),
                                           kCallPort, p);
        },
        [&fabric](int dst, const net::PayloadPtr& p) {
          fabric.transport(0).SendReliable(catocs::GroupFabric::IdOf(static_cast<size_t>(dst)),
                                           kReplyPort, p);
        });
    for (int proc = 0; proc < n; ++proc) {
      fabric.transport(static_cast<size_t>(proc))
          .RegisterReceiver(kCallPort, [&engine, proc](net::NodeId, uint32_t,
                                                       const net::PayloadPtr& p) {
            if (const auto* call = net::PayloadCast<CallMsg>(p)) {
              engine.OnCall(proc, *call);
            }
          });
      fabric.transport(static_cast<size_t>(proc))
          .RegisterReceiver(kReplyPort, [&engine, proc](net::NodeId, uint32_t,
                                                        const net::PayloadPtr& p) {
            if (const auto* reply = net::PayloadCast<ReplyMsg>(p)) {
              engine.OnReply(proc, *reply);
            }
          });
    }
    // Every invoke, serve, and return is causally multicast to the whole
    // group by the acting process (client-issued calls are announced by
    // process 0, the stand-in client gateway). The serve event carries the
    // information the monitor cannot infer from invoke order alone: which
    // call each single-threaded server is actually executing.
    engine.SetHooks(
        [&fabric](int caller, uint64_t parent, uint64_t child, int target) {
          const size_t actor = caller >= 0 ? static_cast<size_t>(caller) : 0;
          fabric.member(actor).CausalSend(std::make_shared<InvokeEvent>(parent, child, target));
        },
        [&fabric](uint64_t call, int at) {
          fabric.member(static_cast<size_t>(at))
              .CausalSend(std::make_shared<ServeEvent>(call, at));
        },
        [&fabric](uint64_t call, int at) {
          fabric.member(static_cast<size_t>(at))
              .CausalSend(std::make_shared<ReturnEvent>(call, at));
        });
    VanRenesseMonitor monitor(handle_detection);
    fabric.member(monitor_index).SetDeliveryHandler([&monitor](const catocs::Delivery& d) {
      if (const auto* invoke = net::PayloadCast<InvokeEvent>(d.payload())) {
        monitor.OnInvoke(invoke->parent(), invoke->child(), invoke->target());
      } else if (const auto* serve = net::PayloadCast<ServeEvent>(d.payload())) {
        monitor.OnServe(serve->call(), serve->at());
      } else if (const auto* ret = net::PayloadCast<ReturnEvent>(d.payload())) {
        monitor.OnReturn(ret->call(), ret->at());
      }
    });
    fabric.StartAll();
    drive(engine);
    s.RunFor(run_time);
    result.app_calls_completed = engine.completed();
    result.network_packets = fabric.network().packets_sent();
    result.network_bytes = fabric.network().bytes_sent();
  } else {
    net::Network network(&s, std::make_unique<net::UniformLatency>(config.latency_lo,
                                                                   config.latency_hi));
    std::vector<std::unique_ptr<net::Transport>> transports;
    for (int proc = 0; proc <= n; ++proc) {  // last = monitor node
      transports.push_back(std::make_unique<net::Transport>(
          &s, &network, static_cast<net::NodeId>(proc + 1)));
    }
    RpcEngine engine(
        &s, n,
        [&transports](int dst, const net::PayloadPtr& p) {
          transports[0]->SendReliable(static_cast<net::NodeId>(dst + 1), kCallPort, p);
        },
        [&transports](int dst, const net::PayloadPtr& p) {
          transports[0]->SendReliable(static_cast<net::NodeId>(dst + 1), kReplyPort, p);
        });
    for (int proc = 0; proc < n; ++proc) {
      transports[static_cast<size_t>(proc)]->RegisterReceiver(
          kCallPort, [&engine, proc](net::NodeId, uint32_t, const net::PayloadPtr& p) {
            if (const auto* call = net::PayloadCast<CallMsg>(p)) {
              engine.OnCall(proc, *call);
            }
          });
      transports[static_cast<size_t>(proc)]->RegisterReceiver(
          kReplyPort, [&engine, proc](net::NodeId, uint32_t, const net::PayloadPtr& p) {
            if (const auto* reply = net::PayloadCast<ReplyMsg>(p)) {
              engine.OnReply(proc, *reply);
            }
          });
    }
    std::vector<std::unique_ptr<txn::WaitForReporter>> reporters;
    std::unique_ptr<txn::DeadlockMonitor> monitor;
    if (config.detector == DeadlockDetectorKind::kWaitForMulticast) {
      monitor = std::make_unique<txn::DeadlockMonitor>(&s, transports.back().get());
      monitor->SetDeadlockHandler(handle_detection);
      for (int proc = 0; proc < n; ++proc) {
        reporters.push_back(std::make_unique<txn::WaitForReporter>(
            &s, transports[static_cast<size_t>(proc)].get(),
            std::vector<net::NodeId>{static_cast<net::NodeId>(n + 1)}, config.report_period,
            [&engine, proc] { return engine.LocalEdges(proc); }));
        reporters.back()->Start();
      }
    }
    drive(engine);
    s.RunFor(run_time);
    for (auto& reporter : reporters) {
      reporter->Stop();
    }
    result.app_calls_completed = engine.completed();
    result.network_packets = network.packets_sent();
    result.network_bytes = network.bytes_sent();
  }

  if (result.detected > 0) {
    result.mean_detection_latency_ms = detection_latency_sum_ms / result.detected;
  }
  return result;
}

}  // namespace apps
