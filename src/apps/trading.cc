#include "src/apps/trading.h"

#include <map>
#include <memory>
#include <optional>

#include "src/catocs/group.h"
#include "src/statelevel/version.h"

namespace apps {

namespace {

class PriceUpdate : public net::Payload {
 public:
  PriceUpdate(std::string object, uint64_t version, double value, uint64_t dep_version)
      : object_(std::move(object)), version_(version), value_(value), dep_version_(dep_version) {}
  size_t SizeBytes() const override { return 24 + object_.size() + (dep_version_ ? 16 : 0); }
  std::string Describe() const override { return object_; }
  const std::string& object() const { return object_; }
  uint64_t version() const { return version_; }
  double value() const { return value_; }
  // 0 = none (an option price); else the base option version.
  uint64_t dep_version() const { return dep_version_; }

 private:
  std::string object_;
  uint64_t version_;
  double value_;
  uint64_t dep_version_;
};

}  // namespace

TradingResult RunTradingScenario(const TradingConfig& config) {
  sim::Simulator s(config.seed);

  // Members: 1 = option pricer, 2 = theoretical pricer, 3 = monitor.
  catocs::FabricConfig fabric_config;
  fabric_config.num_members = 3;
  fabric_config.latency_lo = config.latency_lo;
  fabric_config.latency_hi = config.latency_hi;
  fabric_config.group.causal_buffer = config.causal_buffer;
  if (config.provenance != nullptr) {
    fabric_config.group.observability = true;
    fabric_config.group.provenance = config.provenance;
    config.provenance->set_enabled(true);
    s.spans().set_enabled(true);
  }
  catocs::GroupFabric fabric(&s, fabric_config);

  // The theoretical pricer: derive from each delivered option price after a
  // compute delay, and publish with the dependency field.
  uint64_t theo_version = 0;
  fabric.member(1).SetDeliveryHandler([&](const catocs::Delivery& d) {
    const auto* update = net::PayloadCast<PriceUpdate>(d.payload());
    if (update == nullptr || update->object() != "opt") {
      return;
    }
    const uint64_t base_version = update->version();
    const double theo = update->value() + config.premium;
    const catocs::MessageId base_id = d.id();
    s.ScheduleAfter(config.compute_delay, [&fabric, &config, &theo_version, base_version, theo,
                                           base_id] {
      // The one ordering the app truly needs — theo after its base price —
      // is exactly what it declares; every other enforced edge is spurious.
      fabric.member(1).DeclareDependency(base_id);
      fabric.member(1).Send(config.mode, std::make_shared<PriceUpdate>("theo", ++theo_version,
                                                                       theo, base_version));
    });
  });

  // The monitor: raw display vs dependency-paired display.
  TradingResult result;
  result.price_updates = config.price_updates;
  struct RawDisplay {
    std::optional<double> opt;
    uint64_t opt_version = 0;
    std::optional<double> theo;
    uint64_t theo_dep = 0;
  } raw;
  std::map<uint64_t, double> opt_history;  // version -> price (paired display)
  std::optional<double> paired_theo;
  uint64_t paired_theo_dep = 0;
  uint64_t newest_opt_version = 0;

  auto evaluate = [&] {
    // Raw display: latest delivered of each stream side by side.
    if (raw.opt && raw.theo) {
      if (raw.theo_dep < raw.opt_version) {
        ++result.raw_inconsistent_displays;
        if (*raw.theo <= *raw.opt) {
          ++result.raw_false_crossings;
        }
      }
    }
    // Paired display: theo shown with the base price it was derived from.
    if (paired_theo) {
      auto base = opt_history.find(paired_theo_dep);
      if (base == opt_history.end()) {
        // Base not yet delivered: the display holds the previous pair; a
        // lag, never an inconsistency.
        ++result.paired_lagging_displays;
      } else {
        if (paired_theo_dep < newest_opt_version) {
          ++result.paired_lagging_displays;
        }
        if (*paired_theo <= base->second) {
          ++result.paired_false_crossings;
        }
      }
    }
  };

  fabric.member(2).SetDeliveryHandler([&](const catocs::Delivery& d) {
    const auto* update = net::PayloadCast<PriceUpdate>(d.payload());
    if (update == nullptr) {
      return;
    }
    if (update->object() == "opt") {
      raw.opt = update->value();
      raw.opt_version = std::max(raw.opt_version, update->version());
      opt_history[update->version()] = update->value();
      newest_opt_version = std::max(newest_opt_version, update->version());
    } else {
      raw.theo = update->value();
      raw.theo_dep = update->dep_version();
      paired_theo = update->value();
      paired_theo_dep = update->dep_version();
    }
    evaluate();
  });

  fabric.StartAll();

  // The option price stream: a bounded random walk.
  sim::Rng walk = s.rng().Fork();
  double price = 25.0;
  for (int i = 1; i <= config.price_updates; ++i) {
    s.ScheduleAt(sim::TimePoint::Zero() + config.price_interval * i, [&fabric, &config, &walk,
                                                                      &price, i] {
      price += walk.NextBool(0.5) ? 0.5 : -0.5;
      if (price < 5.0) {
        price = 5.0;
      }
      fabric.member(0).Send(config.mode, std::make_shared<PriceUpdate>(
                                             "opt", static_cast<uint64_t>(i), price, 0));
    });
  }
  s.RunFor(config.price_interval * config.price_updates + sim::Duration::Seconds(2));
  if (config.trace_json != nullptr && config.provenance != nullptr) {
    *config.trace_json = s.ExportTraceEvents(config.provenance->FlowEdges());
  }
  return result;
}

}  // namespace apps
