// §4.1 Netnews scenario: inquiry/response ordering in a flooding network.
//
// Articles propagate between news servers by store-and-forward flooding over
// independent peer links (the real Usenet transport), so a response can
// reach a reader's server before the inquiry it answers. Three designs:
//
//   * kFloodingRaw       — display articles as they arrive; count responses
//     displayed before their inquiry (the cited misordering).
//   * kFloodingReferences — the paper's application-state fix: the local
//     news database holds a response until the article named in its
//     References field has arrived (statelv::PrescriptiveGate). Ordering
//     state is proportional to inquiries of interest, not to all traffic.
//   * kCatocsGroup       — every server joins one causal group and posts by
//     cbcast. Ordering is repaired, but every article pays the causal
//     machinery: on a lossy network unrelated articles queue behind
//     retransmissions of messages they don't semantically depend on.

#ifndef REPRO_SRC_APPS_NETNEWS_H_
#define REPRO_SRC_APPS_NETNEWS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace apps {

enum class NewsStrategy {
  kFloodingRaw,
  kFloodingReferences,
  kCatocsGroup,
};

struct NetnewsConfig {
  NewsStrategy strategy = NewsStrategy::kFloodingRaw;
  int servers = 8;
  int inquiries = 100;
  // An inquiry arriving at a server spawns a response there with this
  // probability (at most one response per inquiry).
  double response_probability = 0.6;
  sim::Duration think_time = sim::Duration::Millis(20);
  sim::Duration post_interval = sim::Duration::Millis(25);
  sim::Duration latency_lo = sim::Duration::Millis(2);
  sim::Duration latency_hi = sim::Duration::Millis(30);
  // Usenet-style batching: a server forwards an article to each peer after a
  // random delay up to this bound (flooding modes only). Batching is what
  // lets a response overtake its inquiry on a different path.
  sim::Duration forward_delay_max = sim::Duration::Millis(150);
  double drop_probability = 0.0;
  uint64_t seed = 1;
};

struct NetnewsResult {
  int inquiries = 0;
  int responses = 0;
  // Responses visible at the reader before their inquiry.
  int out_of_order_displays = 0;
  // Responses the reference gate held back until the inquiry arrived.
  uint64_t gate_holds = 0;
  // Mean post-to-display latency at the reader (milliseconds).
  double mean_display_latency_ms = 0.0;
  // p99 of the same (tail cost of ordering machinery).
  double p99_display_latency_ms = 0.0;
  // Total network bytes moved (all servers).
  uint64_t network_bytes = 0;
};

NetnewsResult RunNetnewsScenario(const NetnewsConfig& config);

}  // namespace apps

#endif  // REPRO_SRC_APPS_NETNEWS_H_
