// §4.5 scenario: replication in the large (Lampson's global name service).
//
// A name service replicated across WAN sites. Two designs:
//
//   * kOptimisticAntiEntropy — the paper's (and Lampson's) design: every
//     replica accepts bindings locally and immediately; replicas exchange
//     state by periodic anti-entropy gossip; concurrent duplicate bindings
//     of the same name are resolved deterministically by "undoing" one
//     (last-writer-wins on a Lamport timestamp with site id as tiebreak).
//     Availability is total — even during a partition — at the price of
//     occasional undos and temporary divergence.
//
//   * kCatocsTotalOrder — bindings are abcast through a group spanning all
//     sites, giving one agreed order (no undos ever). During a partition,
//     sites cut off from the sequencer cannot get bindings ordered: their
//     operations stall until the partition heals.
//
// The scenario drives binding traffic, partitions the network for a window,
// heals it, and reports: operations accepted immediately, operations stalled
// (and for how long), conflicts undone, and whether all replicas converge to
// identical directories.

#ifndef REPRO_SRC_APPS_NAMESERVICE_H_
#define REPRO_SRC_APPS_NAMESERVICE_H_

#include <cstdint>

#include "src/sim/time.h"

namespace obs {
class ProvenanceRecorder;
}  // namespace obs

namespace apps {

enum class NameServiceStrategy {
  kOptimisticAntiEntropy,
  kCatocsTotalOrder,
};

struct NameServiceConfig {
  NameServiceStrategy strategy = NameServiceStrategy::kOptimisticAntiEntropy;
  int sites = 6;
  int bindings = 300;
  // Fraction of bindings that deliberately reuse a recently bound name from
  // another site (creating genuine conflicts for the optimistic design).
  double conflict_fraction = 0.05;
  sim::Duration bind_interval = sim::Duration::Millis(10);
  sim::Duration gossip_interval = sim::Duration::Millis(100);
  // Partition [start, start+duration): sites split into two halves.
  sim::Duration partition_start = sim::Duration::Seconds(1);
  sim::Duration partition_duration = sim::Duration::Seconds(1);
  sim::Duration latency_lo = sim::Duration::Millis(5);
  sim::Duration latency_hi = sim::Duration::Millis(40);
  uint64_t seed = 1;

  // Provenance instrumentation (DESIGN.md §8), CATOCS strategy only: each
  // binding declares a semantic dependency on the issuing site's previously
  // delivered binding of the same name — rebinding means overriding what the
  // site had seen; bindings of unrelated names are semantically concurrent.
  obs::ProvenanceRecorder* provenance = nullptr;
};

struct NameServiceResult {
  int bindings_attempted = 0;
  // Bindings visible to the issuing client within one bind_interval.
  int accepted_immediately = 0;
  // Bindings that stalled (ordered/visible only later), and their worst wait.
  int stalled = 0;
  double max_stall_ms = 0.0;
  double mean_commit_latency_ms = 0.0;
  // Optimistic design only: duplicate bindings resolved by undo.
  int conflicts_undone = 0;
  // After healing + settle time: do all replicas hold identical directories?
  bool converged = false;
  int divergent_names = 0;
  uint64_t network_bytes = 0;
};

NameServiceResult RunNameServiceScenario(const NameServiceConfig& config);

}  // namespace apps

#endif  // REPRO_SRC_APPS_NAMESERVICE_H_
