#include "src/apps/netnews.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/catocs/group.h"
#include "src/sim/metrics.h"
#include "src/statelevel/prescriptive.h"

namespace apps {

namespace {

class Article : public net::Payload {
 public:
  Article(uint64_t id, uint64_t references, int origin, sim::TimePoint posted_at)
      : id_(id), references_(references), origin_(origin), posted_at_(posted_at) {}
  size_t SizeBytes() const override { return 512; }  // a short posting
  std::string Describe() const override { return "article"; }
  uint64_t id() const { return id_; }
  uint64_t references() const { return references_; }  // 0 = inquiry
  int origin() const { return origin_; }               // posting server
  sim::TimePoint posted_at() const { return posted_at_; }

 private:
  uint64_t id_;
  uint64_t references_;
  int origin_;
  sim::TimePoint posted_at_;
};

constexpr uint32_t kFeedPort = 0xA7010001;

}  // namespace

NetnewsResult RunNetnewsScenario(const NetnewsConfig& config) {
  sim::Simulator s(config.seed);
  NetnewsResult result;
  result.inquiries = config.inquiries;

  sim::Histogram display_latency;
  std::set<uint64_t> displayed;          // at the reader
  std::map<uint64_t, uint64_t> refs_of;  // article -> referenced inquiry
  int out_of_order = 0;
  uint64_t next_article_id = 1;
  sim::Rng workload = s.rng().Fork();

  // The reader sits at server 0 in flooding modes, member 0 in group mode.
  auto display = [&](uint64_t id, sim::TimePoint posted_at) {
    if (!displayed.insert(id).second) {
      return;
    }
    const uint64_t ref = refs_of.count(id) ? refs_of[id] : 0;
    if (ref != 0 && !displayed.count(ref)) {
      ++out_of_order;
    }
    display_latency.Record(static_cast<double>((s.now() - posted_at).nanos()) / 1e6);
  };

  // Response generation, shared by both transports: when an inquiry first
  // reaches a server, a local user may post a response there after thinking.
  std::map<uint64_t, bool> response_spawned;
  // Responses come from *other* sites than the inquiry's origin (that is
  // what makes reordering possible in the real Usenet).
  auto maybe_respond = [&](uint64_t inquiry_id, int server, int inquiry_origin,
                           const std::function<void(int, uint64_t, uint64_t)>& post) {
    if (server == inquiry_origin || response_spawned[inquiry_id] ||
        !workload.NextBool(config.response_probability)) {
      return;
    }
    response_spawned[inquiry_id] = true;
    const uint64_t response_id = next_article_id++;
    refs_of[response_id] = inquiry_id;
    ++result.responses;
    s.ScheduleAfter(config.think_time, [post, server, response_id, inquiry_id] {
      post(server, response_id, inquiry_id);
    });
  };

  if (config.strategy == NewsStrategy::kCatocsGroup) {
    catocs::FabricConfig fabric_config;
    fabric_config.num_members = static_cast<uint32_t>(config.servers);
    fabric_config.latency_lo = config.latency_lo;
    fabric_config.latency_hi = config.latency_hi;
    fabric_config.network.drop_probability = config.drop_probability;
    catocs::GroupFabric fabric(&s, fabric_config);

    auto post = [&fabric, &s](int server, uint64_t id, uint64_t ref) {
      fabric.member(static_cast<size_t>(server))
          .CausalSend(std::make_shared<Article>(id, ref, server, s.now()));
    };
    std::function<void(int, uint64_t, uint64_t)> post_fn = post;

    for (size_t member = 0; member < fabric.size(); ++member) {
      fabric.member(member).SetDeliveryHandler([&, member](const catocs::Delivery& d) {
        const auto* article = net::PayloadCast<Article>(d.payload());
        if (article == nullptr) {
          return;
        }
        if (member == 0) {
          display(article->id(), article->posted_at());
        }
        if (article->references() == 0) {
          maybe_respond(article->id(), static_cast<int>(member), article->origin(), post_fn);
        }
      });
    }
    fabric.StartAll();
    for (int i = 0; i < config.inquiries; ++i) {
      const int origin = static_cast<int>(workload.NextBelow(config.servers));
      const uint64_t id = next_article_id++;
      s.ScheduleAt(sim::TimePoint::Zero() + config.post_interval * (i + 1),
                   [&, origin, id] {
                     refs_of[id] = 0;
                     post(origin, id, 0);
                     if (origin == 0) {
                       display(id, s.now());
                     }
                   });
    }
    s.RunFor(config.post_interval * config.inquiries + sim::Duration::Seconds(10));
    result.network_bytes = fabric.network().bytes_sent();
  } else {
    // Flooding over a ring-with-chords peering graph.
    net::NetworkConfig net_config;
    net_config.drop_probability = config.drop_probability;
    net::Network network(&s,
                         std::make_unique<net::UniformLatency>(config.latency_lo,
                                                               config.latency_hi),
                         net_config);
    std::vector<std::unique_ptr<net::Transport>> transports;
    std::vector<std::vector<int>> peers(config.servers);
    for (int server = 0; server < config.servers; ++server) {
      transports.push_back(std::make_unique<net::Transport>(
          &s, &network, static_cast<net::NodeId>(server + 1)));
      peers[server] = {(server + 1) % config.servers,
                       (server + config.servers - 1) % config.servers,
                       (server + config.servers / 2) % config.servers};
    }
    std::vector<std::set<uint64_t>> seen(config.servers);

    // Reference gate at the reader (only consulted in kFloodingReferences).
    statelv::PrescriptiveGate gate([&](const statelv::StreamKey& key, const net::PayloadPtr& p) {
      const auto* article = net::PayloadCast<Article>(p);
      display(key.seq, article != nullptr ? article->posted_at() : s.now());
    });

    std::function<void(int, const net::PayloadPtr&)> ingest =
        [&](int server, const net::PayloadPtr& payload) {
          const auto* article = net::PayloadCast<Article>(payload);
          if (article == nullptr || !seen[server].insert(article->id()).second) {
            return;
          }
          if (server == 0) {
            if (config.strategy == NewsStrategy::kFloodingReferences &&
                article->references() != 0) {
              gate.Submit({1, article->id()}, {{1, article->references()}}, payload);
            } else if (config.strategy == NewsStrategy::kFloodingReferences) {
              gate.Submit({1, article->id()}, {}, payload);
            } else {
              display(article->id(), article->posted_at());
            }
          }
          for (int peer : peers[server]) {
            // Store-and-forward with per-peer batching delay.
            const sim::Duration batch =
                workload.NextDuration(sim::Duration::Zero(), config.forward_delay_max);
            s.ScheduleAfter(batch, [&transports, server, peer, payload] {
              transports[static_cast<size_t>(server)]->SendReliable(
                  static_cast<net::NodeId>(peer + 1), kFeedPort, payload);
            });
          }
          if (article->references() == 0) {
            maybe_respond(article->id(), server, article->origin(),
                          [&](int at, uint64_t id, uint64_t ref) {
                            ingest(at, std::make_shared<Article>(id, ref, at, s.now()));
                          });
          }
        };

    for (int server = 0; server < config.servers; ++server) {
      transports[static_cast<size_t>(server)]->RegisterReceiver(
          kFeedPort, [&, server](net::NodeId, uint32_t, const net::PayloadPtr& p) {
            ingest(server, p);
          });
    }
    for (int i = 0; i < config.inquiries; ++i) {
      const int origin = static_cast<int>(workload.NextBelow(config.servers));
      const uint64_t id = next_article_id++;
      s.ScheduleAt(sim::TimePoint::Zero() + config.post_interval * (i + 1), [&, origin, id] {
        refs_of[id] = 0;
        ingest(origin, std::make_shared<Article>(id, 0, origin, s.now()));
      });
    }
    s.RunFor(config.post_interval * config.inquiries + sim::Duration::Seconds(10));
    result.gate_holds = gate.stats().delayed;
    result.network_bytes = network.bytes_sent();
  }

  result.out_of_order_displays = out_of_order;
  result.mean_display_latency_ms = display_latency.mean();
  result.p99_display_latency_ms = display_latency.Quantile(0.99);
  return result;
}

}  // namespace apps
