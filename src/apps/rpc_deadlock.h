// Appendix 9.2 scenario: RPC deadlock detection.
//
// Single-threaded servers issue nested RPCs; mutual nesting deadlocks. The
// scenario injects deadlock cycles into a stream of ordinary (non-nesting)
// background calls and compares three configurations:
//
//   * kNone            — no detector; deadlocks clear only by timeout.
//     Serves as the traffic baseline: detector cost for the other modes is
//     their network totals minus this run's.
//   * kVanRenesseCausal — van Renesse's design: every RPC invocation and
//     every return is causally multicast to a process group containing all
//     processes plus the monitor; the monitor reconstructs the wait-for
//     graph from the (causally ordered) event stream. Cost: two multicasts
//     to the whole group per RPC, deadlocked or not.
//   * kWaitForMulticast — the paper's alternative: each process periodically
//     multicasts its local instance-level wait-for edges (sequence-numbered)
//     to the monitor; cycles in the assembled graph are real deadlocks
//     because 2PL-style waiting is locally stable.

#ifndef REPRO_SRC_APPS_RPC_DEADLOCK_H_
#define REPRO_SRC_APPS_RPC_DEADLOCK_H_

#include <cstdint>

#include "src/sim/time.h"

namespace apps {

enum class DeadlockDetectorKind {
  kNone,
  kVanRenesseCausal,
  kWaitForMulticast,
};

struct RpcDeadlockConfig {
  DeadlockDetectorKind detector = DeadlockDetectorKind::kWaitForMulticast;
  int processes = 6;
  int background_calls = 300;
  int injected_deadlocks = 5;
  sim::Duration background_spacing = sim::Duration::Millis(10);
  sim::Duration injection_spacing = sim::Duration::Millis(600);
  sim::Duration report_period = sim::Duration::Millis(50);
  sim::Duration latency_lo = sim::Duration::Millis(1);
  sim::Duration latency_hi = sim::Duration::Millis(5);
  // A deadlocked call is force-aborted after this long even undetected.
  sim::Duration rescue_timeout = sim::Duration::Seconds(5);
  uint64_t seed = 1;
};

struct RpcDeadlockResult {
  int injected = 0;
  int detected = 0;
  int false_positives = 0;
  double mean_detection_latency_ms = 0.0;
  uint64_t app_calls_completed = 0;
  // Total network cost of the run; subtract the kNone baseline to get the
  // detector's cost.
  uint64_t network_packets = 0;
  uint64_t network_bytes = 0;
};

RpcDeadlockResult RunRpcDeadlockScenario(const RpcDeadlockConfig& config);

}  // namespace apps

#endif  // REPRO_SRC_APPS_RPC_DEADLOCK_H_
