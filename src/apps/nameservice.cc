#include "src/apps/nameservice.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/catocs/vector_clock.h"
#include "src/obs/provenance.h"
#include "src/sim/metrics.h"

namespace apps {

namespace {

// A name binding as stored and gossiped: last-writer-wins on
// (lamport timestamp, origin site).
struct BindingEntry {
  std::string name;
  std::string value;
  uint64_t ts = 0;
  int origin = 0;

  // Deterministic dominance for conflict resolution.
  bool Beats(const BindingEntry& other) const {
    if (ts != other.ts) {
      return ts > other.ts;
    }
    return origin > other.origin;
  }
};

class GossipDelta : public net::Payload {
 public:
  explicit GossipDelta(std::vector<BindingEntry> entries) : entries_(std::move(entries)) {}
  size_t SizeBytes() const override {
    size_t total = 4;
    for (const auto& e : entries_) {
      total += e.name.size() + e.value.size() + 16;
    }
    return total;
  }
  std::string Describe() const override { return "gossip"; }
  const std::vector<BindingEntry>& entries() const { return entries_; }

 private:
  std::vector<BindingEntry> entries_;
};

class BindMsg : public net::Payload {
 public:
  BindMsg(std::string name, std::string value, int origin, sim::TimePoint issued_at)
      : name_(std::move(name)), value_(std::move(value)), origin_(origin), issued_at_(issued_at) {}
  size_t SizeBytes() const override { return name_.size() + value_.size() + 12; }
  std::string Describe() const override { return "bind:" + name_; }
  const std::string& name() const { return name_; }
  const std::string& value() const { return value_; }
  int origin() const { return origin_; }
  sim::TimePoint issued_at() const { return issued_at_; }

 private:
  std::string name_;
  std::string value_;
  int origin_;
  sim::TimePoint issued_at_;
};

constexpr uint32_t kGossipPort = 0x6A7E0001;

// Generates the binding workload: (site, name, value) triples with a tunable
// fraction of cross-site duplicate names.
struct Workload {
  struct Op {
    int site;
    std::string name;
    std::string value;
  };
  std::vector<Op> ops;

  Workload(const NameServiceConfig& config, sim::Rng& rng) {
    for (int k = 0; k < config.bindings; ++k) {
      Op op;
      op.site = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(config.sites)));
      if (k > 0 && rng.NextBool(config.conflict_fraction)) {
        // Rebind a recent name from (usually) another site: a duplicate.
        op.name = ops[ops.size() - 1 - rng.NextBelow(std::min<uint64_t>(5, ops.size()))].name;
      } else {
        op.name = "name-" + std::to_string(k);
      }
      op.value = "v" + std::to_string(k) + "@s" + std::to_string(op.site);
      ops.push_back(std::move(op));
    }
  }
};

void SplitPartition(int sites, std::vector<std::set<net::NodeId>>* components) {
  std::set<net::NodeId> a;
  std::set<net::NodeId> b;
  for (int i = 0; i < sites; ++i) {
    (i < sites / 2 ? a : b).insert(static_cast<net::NodeId>(i + 1));
  }
  components->push_back(std::move(a));
  components->push_back(std::move(b));
}

int CountDivergent(const std::vector<std::map<std::string, std::string>>& directories) {
  std::set<std::string> all_names;
  for (const auto& dir : directories) {
    for (const auto& [name, value] : dir) {
      all_names.insert(name);
    }
  }
  int divergent = 0;
  for (const std::string& name : all_names) {
    std::set<std::string> values;
    for (const auto& dir : directories) {
      auto it = dir.find(name);
      values.insert(it == dir.end() ? "<absent>" : it->second);
    }
    if (values.size() > 1) {
      ++divergent;
    }
  }
  return divergent;
}

NameServiceResult RunOptimistic(const NameServiceConfig& config) {
  sim::Simulator s(config.seed);
  net::Network network(&s, std::make_unique<net::UniformLatency>(config.latency_lo,
                                                                 config.latency_hi));
  const int sites = config.sites;
  // Anti-entropy keeps retrying across partitions: the delta push marks a
  // peer as up-to-date when it sends, so the channel must not give up.
  net::TransportConfig transport_config;
  transport_config.max_retries = 2000;
  std::vector<std::unique_ptr<net::Transport>> transports;
  for (int i = 0; i < sites; ++i) {
    transports.push_back(std::make_unique<net::Transport>(
        &s, &network, static_cast<net::NodeId>(i + 1), transport_config));
  }

  // Per-site replica state.
  std::vector<std::map<std::string, BindingEntry>> directories(sites);
  std::vector<catocs::LamportClock> clocks(sites);
  std::vector<std::vector<BindingEntry>> logs(sites);  // updates to gossip
  // Per (site, peer): index into the site's log already pushed to that peer.
  std::vector<std::vector<size_t>> pushed(sites, std::vector<size_t>(sites, 0));

  NameServiceResult result;
  result.bindings_attempted = config.bindings;

  // Applying an entry; counts conflicts once (at site 0's replica).
  auto apply = [&](int site, const BindingEntry& entry) {
    auto it = directories[site].find(entry.name);
    clocks[site].Witness(entry.ts);
    if (it == directories[site].end()) {
      directories[site][entry.name] = entry;
      logs[site].push_back(entry);
      return;
    }
    if (entry.Beats(it->second)) {
      if (site == 0 && it->second.origin != entry.origin) {
        ++result.conflicts_undone;  // a concurrent duplicate gets undone
      }
      it->second = entry;
      logs[site].push_back(entry);
    }
  };

  for (int i = 0; i < sites; ++i) {
    transports[static_cast<size_t>(i)]->RegisterReceiver(
        kGossipPort, [&, i](net::NodeId, uint32_t, const net::PayloadPtr& p) {
          const auto* delta = net::PayloadCast<GossipDelta>(p);
          if (delta == nullptr) {
            return;
          }
          for (const auto& entry : delta->entries()) {
            apply(i, entry);
          }
        });
  }

  // Anti-entropy push: each site forwards its new log entries to every peer.
  std::vector<std::unique_ptr<sim::PeriodicTimer>> gossipers;
  for (int i = 0; i < sites; ++i) {
    gossipers.push_back(std::make_unique<sim::PeriodicTimer>(&s, config.gossip_interval, [&, i] {
      for (int peer = 0; peer < sites; ++peer) {
        if (peer == i) {
          continue;
        }
        size_t& mark = pushed[static_cast<size_t>(i)][static_cast<size_t>(peer)];
        if (mark >= logs[static_cast<size_t>(i)].size()) {
          continue;
        }
        std::vector<BindingEntry> delta(logs[static_cast<size_t>(i)].begin() + mark,
                                        logs[static_cast<size_t>(i)].end());
        mark = logs[static_cast<size_t>(i)].size();
        transports[static_cast<size_t>(i)]->SendReliable(
            static_cast<net::NodeId>(peer + 1), kGossipPort,
            std::make_shared<GossipDelta>(std::move(delta)));
      }
    }));
    gossipers.back()->Start(config.gossip_interval + sim::Duration::Micros(700 * i));
  }

  // Workload + partition schedule.
  sim::Rng workload_rng = s.rng().Fork();
  Workload workload(config, workload_rng);
  for (int k = 0; k < config.bindings; ++k) {
    const auto& op = workload.ops[static_cast<size_t>(k)];
    s.ScheduleAt(sim::TimePoint::Zero() + config.bind_interval * (k + 1), [&, op] {
      BindingEntry entry{op.name, op.value, clocks[static_cast<size_t>(op.site)].Tick(), op.site};
      apply(op.site, entry);
      // Locally visible at once: the optimistic design never stalls.
      ++result.accepted_immediately;
    });
  }
  s.ScheduleAt(sim::TimePoint::Zero() + config.partition_start, [&] {
    std::vector<std::set<net::NodeId>> components;
    SplitPartition(sites, &components);
    network.Partition(components);
  });
  s.ScheduleAt(sim::TimePoint::Zero() + config.partition_start + config.partition_duration,
               [&] { network.HealPartition(); });

  s.RunFor(config.bind_interval * config.bindings + config.partition_duration +
           sim::Duration::Seconds(5));
  for (auto& g : gossipers) {
    g->Stop();
  }

  std::vector<std::map<std::string, std::string>> final_dirs(sites);
  for (int i = 0; i < sites; ++i) {
    for (const auto& [name, entry] : directories[static_cast<size_t>(i)]) {
      final_dirs[static_cast<size_t>(i)][name] = entry.value;
    }
  }
  result.divergent_names = CountDivergent(final_dirs);
  result.converged = result.divergent_names == 0;
  result.mean_commit_latency_ms = 0.0;  // bindings commit locally, instantly
  result.network_bytes = network.bytes_sent();
  return result;
}

NameServiceResult RunCatocs(const NameServiceConfig& config) {
  sim::Simulator s(config.seed);
  catocs::FabricConfig fabric_config;
  fabric_config.num_members = static_cast<uint32_t>(config.sites);
  fabric_config.latency_lo = config.latency_lo;
  fabric_config.latency_hi = config.latency_hi;
  // The partition outlives the default retransmission budget; keep trying.
  fabric_config.transport.max_retries = 2000;
  if (config.provenance != nullptr) {
    fabric_config.group.observability = true;
    fabric_config.group.provenance = config.provenance;
    config.provenance->set_enabled(true);
    s.spans().set_enabled(true);
  }
  catocs::GroupFabric fabric(&s, fabric_config);

  NameServiceResult result;
  result.bindings_attempted = config.bindings;
  const int sites = config.sites;
  std::vector<std::map<std::string, std::string>> directories(sites);
  // Per site: id of the last delivered binding of each name, the predecessor
  // a rebind semantically overrides (provenance only).
  std::vector<std::map<std::string, catocs::MessageId>> last_bound(sites);
  sim::Histogram commit_latency_ms;

  for (int i = 0; i < sites; ++i) {
    fabric.member(static_cast<size_t>(i)).SetDeliveryHandler([&, i](const catocs::Delivery& d) {
      const auto* bind = net::PayloadCast<BindMsg>(d.payload());
      if (bind == nullptr) {
        return;
      }
      // Applied in total order: later binding of a name wins; no undo
      // concept is needed (or possible) — the order *is* the resolution.
      directories[static_cast<size_t>(i)][bind->name()] = bind->value();
      if (config.provenance != nullptr) {
        last_bound[static_cast<size_t>(i)][bind->name()] = d.id();
      }
      if (i == bind->origin()) {
        const double latency_ms =
            static_cast<double>((s.now() - bind->issued_at()).nanos()) / 1e6;
        commit_latency_ms.Record(latency_ms);
        // "Stalled" means partition-scale, not the ordinary WAN round trips
        // total ordering always costs (which the mean-commit column shows).
        constexpr double kStallThresholdMs = 250.0;
        if (latency_ms <= kStallThresholdMs) {
          ++result.accepted_immediately;
        } else {
          ++result.stalled;
          result.max_stall_ms = std::max(result.max_stall_ms, latency_ms);
        }
      }
    });
  }
  fabric.StartAll();

  sim::Rng workload_rng = s.rng().Fork();
  Workload workload(config, workload_rng);
  for (int k = 0; k < config.bindings; ++k) {
    const auto& op = workload.ops[static_cast<size_t>(k)];
    s.ScheduleAt(sim::TimePoint::Zero() + config.bind_interval * (k + 1),
                 [&fabric, &config, &last_bound, &s, op] {
      if (config.provenance != nullptr) {
        const auto& seen = last_bound[static_cast<size_t>(op.site)];
        if (auto it = seen.find(op.name); it != seen.end()) {
          fabric.member(static_cast<size_t>(op.site)).DeclareDependency(it->second);
        }
      }
      fabric.member(static_cast<size_t>(op.site))
          .TotalSend(std::make_shared<BindMsg>(op.name, op.value, op.site, s.now()));
    });
  }
  s.ScheduleAt(sim::TimePoint::Zero() + config.partition_start, [&] {
    std::vector<std::set<net::NodeId>> components;
    SplitPartition(sites, &components);
    fabric.network().Partition(components);
  });
  s.ScheduleAt(sim::TimePoint::Zero() + config.partition_start + config.partition_duration,
               [&] { fabric.network().HealPartition(); });

  s.RunFor(config.bind_interval * config.bindings + config.partition_duration +
           sim::Duration::Seconds(20));

  result.mean_commit_latency_ms = commit_latency_ms.mean();
  result.divergent_names = CountDivergent(directories);
  result.converged = result.divergent_names == 0;
  result.network_bytes = fabric.network().bytes_sent();
  return result;
}

}  // namespace

NameServiceResult RunNameServiceScenario(const NameServiceConfig& config) {
  if (config.strategy == NameServiceStrategy::kOptimisticAntiEntropy) {
    return RunOptimistic(config);
  }
  return RunCatocs(config);
}

}  // namespace apps
