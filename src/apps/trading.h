// Figure 4 scenario: semantic ordering constraints stronger than
// happens-before ("can't say the whole story").
//
// An option-pricing server multicasts the option price stream; a
// theoretical-pricing server derives a theoretical price from each option
// price (after a compute delay) and multicasts it with a dependency field
// naming the base version. The required semantic order — a theoretical
// price after its base price and *before all subsequent changes to that
// base* — cannot be expressed in happens-before: the new option price v+1
// and the theoretical price derived from v are concurrent messages, so both
// causal and total multicast may show a monitor the new option price paired
// with the stale theoretical price. With truth theo = option + premium, the
// stale pairing can display theo <= option: the "false crossing" of Fig. 4.
//
// The state-level fix: the monitor keeps option prices by version and
// presents each theoretical price with the base price named in its
// dependency field — a consistent pair by construction.

#ifndef REPRO_SRC_APPS_TRADING_H_
#define REPRO_SRC_APPS_TRADING_H_

#include <cstdint>
#include <string>

#include "src/catocs/message.h"
#include "src/catocs/types.h"
#include "src/sim/time.h"

namespace apps {

struct TradingConfig {
  int price_updates = 500;
  sim::Duration price_interval = sim::Duration::Millis(10);
  // Time the theoretical pricer computes before publishing.
  sim::Duration compute_delay = sim::Duration::Millis(4);
  sim::Duration latency_lo = sim::Duration::Millis(1);
  sim::Duration latency_hi = sim::Duration::Millis(8);
  catocs::OrderingMode mode = catocs::OrderingMode::kCausal;
  double premium = 0.75;  // true theo = option + premium (> 0)
  uint64_t seed = 1;

  // Retention-buffer strategy for the group (E19 sweeps both).
  catocs::CausalBufferKind causal_buffer = catocs::CausalBufferKind::kFullVector;
  // Provenance instrumentation (DESIGN.md §8, E19): with a recorder attached
  // the fabric runs observability-on, the theoretical pricer declares its
  // base-price dependency per derived publish, and — when `trace_json` is
  // also set — the scenario leaves a Chrome trace-event export behind.
  obs::ProvenanceRecorder* provenance = nullptr;
  std::string* trace_json = nullptr;
};

struct TradingResult {
  int price_updates = 0;
  // Delivery events where the raw display paired a theoretical price with a
  // newer option price than it was derived from.
  uint64_t raw_inconsistent_displays = 0;
  // Of those, events where the displayed relation inverted (theo <= option):
  // the false crossing a trader would act on.
  uint64_t raw_false_crossings = 0;
  // Same measures for the dependency-aware display (must be 0).
  uint64_t paired_inconsistent_displays = 0;
  uint64_t paired_false_crossings = 0;
  // How often the dependency display lagged (showed an older base than the
  // newest delivered option price) — the honesty cost of consistency.
  uint64_t paired_lagging_displays = 0;
};

TradingResult RunTradingScenario(const TradingConfig& config);

}  // namespace apps

#endif  // REPRO_SRC_APPS_TRADING_H_
