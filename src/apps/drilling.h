// Appendix 9.1 scenario: drilling cell control.
//
// H holes must each be drilled exactly once by D driller controllers; the
// product is a checklist of holes to re-inspect because a drill may have
// failed partway. Two designs:
//
//   * kCatocsDistributed — Birman's design: the cell controller abcasts the
//     drilling request; every driller derives its own assignment from the
//     totally ordered schedule and causally multicasts each completion to
//     the whole group so all schedules stay consistent. Traffic per
//     completion is proportional to D (quadratic-ish total); a driller crash
//     is handled by the membership flush, after which survivors move the
//     failed driller's unfinished holes to the checklist.
//
//   * kCentralController — the paper's alternative: a central controller
//     assigns holes and receives per-hole completions over plain reliable
//     transport, mirroring state to one backup. Traffic is linear in H; a
//     crashed driller's unfinished holes go to the checklist when its
//     progress times out.
//
// Both must account for every hole (completed + checklist == H) and never
// drill a hole twice.

#ifndef REPRO_SRC_APPS_DRILLING_H_
#define REPRO_SRC_APPS_DRILLING_H_

#include <cstdint>

#include "src/sim/time.h"

namespace apps {

enum class DrillStrategy {
  kCatocsDistributed,
  kCentralController,
};

struct DrillingConfig {
  DrillStrategy strategy = DrillStrategy::kCatocsDistributed;
  int holes = 120;
  int drillers = 6;
  sim::Duration drill_time_lo = sim::Duration::Millis(20);
  sim::Duration drill_time_hi = sim::Duration::Millis(50);
  sim::Duration latency_lo = sim::Duration::Millis(1);
  sim::Duration latency_hi = sim::Duration::Millis(5);
  // Crash one driller at this time; Zero disables the failure.
  sim::Duration crash_driller_at = sim::Duration::Zero();
  uint64_t seed = 1;
};

struct DrillingResult {
  int holes = 0;
  int holes_completed = 0;
  int checklist_size = 0;
  int holes_double_drilled = 0;  // must be 0
  bool all_accounted = false;    // completed + checklist == holes
  // Application-level message transmissions (multicast counted per copy).
  uint64_t app_messages = 0;
  // All packets the network carried (including protocol overhead traffic).
  uint64_t network_packets = 0;
  uint64_t network_bytes = 0;
  double makespan_ms = 0.0;
};

DrillingResult RunDrillingScenario(const DrillingConfig& config);

}  // namespace apps

#endif  // REPRO_SRC_APPS_DRILLING_H_
