#include "src/apps/oven.h"

#include <cmath>
#include <memory>
#include <optional>

#include "src/catocs/group.h"
#include "src/sim/metrics.h"

namespace apps {

namespace {

class SensorReading : public net::Payload {
 public:
  SensorReading(int sensor, double value, sim::TimePoint stamped_at)
      : sensor_(sensor), value_(value), stamped_at_(stamped_at) {}
  size_t SizeBytes() const override { return 20; }
  std::string Describe() const override { return "reading"; }
  int sensor() const { return sensor_; }
  double value() const { return value_; }
  sim::TimePoint stamped_at() const { return stamped_at_; }

 private:
  int sensor_;
  double value_;
  sim::TimePoint stamped_at_;
};

constexpr uint32_t kReadingPort = 0x07E50001;

}  // namespace

OvenResult RunOvenScenario(const OvenConfig& config) {
  sim::Simulator s(config.seed);
  const uint32_t members = static_cast<uint32_t>(2 + config.chatter_sensors);

  catocs::FabricConfig fabric_config;
  fabric_config.num_members = members;  // 1 = oven sensor, last = monitor, rest = chatter
  fabric_config.latency_lo = config.latency_lo;
  fabric_config.latency_hi = config.latency_hi;
  fabric_config.network.drop_probability = config.drop_probability;
  catocs::GroupFabric fabric(&s, fabric_config);
  const size_t monitor_index = members - 1;

  // The physical oven: a bounded random walk stepped every millisecond.
  double true_temp = 250.0;
  sim::Rng env = s.rng().Fork();
  sim::PeriodicTimer oven_walk(&s, sim::Duration::Millis(1), [&] {
    true_temp += env.NextGaussian() * 0.8;
    true_temp = std::min(400.0, std::max(100.0, true_temp));
  });
  oven_walk.Start(sim::Duration::Millis(1));

  // Monitor state.
  std::optional<double> stored;
  sim::TimePoint stored_stamp = sim::TimePoint::Zero();
  OvenResult result;
  sim::Histogram error_hist;
  sim::Histogram delay_hist;

  auto apply_reading = [&](const SensorReading& reading, sim::TimePoint sent_at) {
    if (config.strategy == OvenStrategy::kTimestampFreshest) {
      // Keep only the freshest reading by source timestamp.
      if (stored && reading.stamped_at() <= stored_stamp) {
        return;
      }
      stored_stamp = reading.stamped_at();
    }
    stored = reading.value();
    ++result.readings_applied;
    delay_hist.Record(static_cast<double>((s.now() - sent_at).nanos()) / 1000.0);
  };

  if (config.strategy == OvenStrategy::kCatocsCausal) {
    fabric.member(monitor_index).SetDeliveryHandler([&](const catocs::Delivery& d) {
      const auto* reading = net::PayloadCast<SensorReading>(d.payload());
      if (reading != nullptr && reading->sensor() == 0) {
        apply_reading(*reading, d.sent_at());
      }
    });
  } else {
    fabric.transport(monitor_index)
        .RegisterReceiver(kReadingPort,
                          [&](net::NodeId, uint32_t, const net::PayloadPtr& p) {
                            const auto* reading = net::PayloadCast<SensorReading>(p);
                            if (reading != nullptr && reading->sensor() == 0) {
                              apply_reading(*reading, reading->stamped_at());
                            }
                          });
  }

  fabric.StartAll();

  // Sensors: the oven sensor plus chatter sensors, all sampling on the same
  // period (offset to avoid lockstep).
  std::vector<std::unique_ptr<sim::PeriodicTimer>> sensors;
  for (int sensor = 0; sensor <= config.chatter_sensors; ++sensor) {
    const size_t index = static_cast<size_t>(sensor);
    sensors.push_back(std::make_unique<sim::PeriodicTimer>(
        &s, config.sample_interval, [&, sensor, index] {
          const double value = sensor == 0 ? true_temp : 0.0;
          auto reading = std::make_shared<SensorReading>(sensor, value, s.now());
          if (config.strategy == OvenStrategy::kCatocsCausal) {
            fabric.member(index).CausalSend(reading);
          } else {
            fabric.transport(index).SendUnreliable(
                catocs::GroupFabric::IdOf(monitor_index), kReadingPort, reading);
          }
          if (sensor == 0) {
            ++result.readings_sent;
          }
        }));
    sensors.back()->Start(sim::Duration::Micros(500 + 1700 * sensor));
  }

  // Sample the tracking error every millisecond.
  sim::PeriodicTimer sampler(&s, sim::Duration::Millis(1), [&] {
    if (stored) {
      error_hist.Record(std::fabs(*stored - true_temp));
    }
  });
  sampler.Start(sim::Duration::Millis(2));

  s.RunUntil(sim::TimePoint::Zero() + config.duration);
  oven_walk.Stop();
  sampler.Stop();
  for (auto& sensor : sensors) {
    sensor->Stop();
  }

  result.mean_abs_error = error_hist.mean();
  result.p99_abs_error = error_hist.Quantile(0.99);
  result.max_abs_error = error_hist.max();
  result.mean_delivery_delay_us = delay_hist.mean();
  return result;
}

}  // namespace apps
