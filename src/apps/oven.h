// §4.6 scenario: "sufficient consistency" in real-time monitoring.
//
// An oven's true temperature evolves continuously; sensors multicast
// periodic readings over a lossy network. Correctness of the monitoring
// system is the gap between the stored value and the physical truth. Two
// dissemination strategies are compared under identical conditions:
//
//   * kCatocsCausal — readings flow through the causal group (reliable,
//     ordered). Losses trigger retransmission and causal delay queues hold
//     newer readings back behind older ones (head-of-line blocking): the
//     monitor is consistent with the message history and stale with respect
//     to the oven.
//   * kTimestampFreshest — readings are plain timestamped datagrams; the
//     monitor keeps the freshest timestamp and simply drops stale or lost
//     readings, as the paper prescribes for real-time systems.

#ifndef REPRO_SRC_APPS_OVEN_H_
#define REPRO_SRC_APPS_OVEN_H_

#include <cstdint>

#include "src/sim/time.h"

namespace apps {

enum class OvenStrategy {
  kCatocsCausal,
  kTimestampFreshest,
};

struct OvenConfig {
  OvenStrategy strategy = OvenStrategy::kCatocsCausal;
  sim::Duration duration = sim::Duration::Seconds(30);
  sim::Duration sample_interval = sim::Duration::Millis(10);
  // Additional sensors sharing the group (their traffic is what creates
  // false-causality blocking for the oven readings).
  int chatter_sensors = 4;
  double drop_probability = 0.05;
  sim::Duration latency_lo = sim::Duration::Millis(1);
  sim::Duration latency_hi = sim::Duration::Millis(5);
  uint64_t seed = 1;
};

struct OvenResult {
  // Tracking error |stored - true| sampled every millisecond (degrees).
  double mean_abs_error = 0.0;
  double p99_abs_error = 0.0;
  double max_abs_error = 0.0;
  // Readings applied at the monitor / issued by the oven sensor.
  uint64_t readings_applied = 0;
  uint64_t readings_sent = 0;
  // Mean sensor-to-monitor delivery delay of applied readings (microseconds).
  double mean_delivery_delay_us = 0.0;
};

OvenResult RunOvenScenario(const OvenConfig& config);

}  // namespace apps

#endif  // REPRO_SRC_APPS_OVEN_H_
