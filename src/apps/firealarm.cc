#include "src/apps/firealarm.h"

#include <map>
#include <memory>
#include <string>

#include "src/catocs/group.h"
#include "src/net/clock.h"

namespace apps {

namespace {

class FireReport : public net::Payload {
 public:
  FireReport(int round, bool burning, sim::TimePoint stamped_at)
      : round_(round), burning_(burning), stamped_at_(stamped_at) {}
  size_t SizeBytes() const override { return 17; }
  std::string Describe() const override { return burning_ ? "fire" : "fire-out"; }
  int round() const { return round_; }
  bool burning() const { return burning_; }
  sim::TimePoint stamped_at() const { return stamped_at_; }

 private:
  int round_;
  bool burning_;
  sim::TimePoint stamped_at_;
};

constexpr net::NodeId kTimeServerNode = 20;

}  // namespace

FireAlarmResult RunFireAlarmScenario(const FireAlarmConfig& config) {
  sim::Simulator s(config.seed);

  // Members: 1 = furnace process P, 2 = monitor M, 3 = observer Q.
  catocs::FabricConfig fabric_config;
  fabric_config.num_members = 3;
  fabric_config.latency_lo = config.latency_lo;
  fabric_config.latency_hi = config.latency_hi;
  catocs::GroupFabric fabric(&s, fabric_config);

  // Time service: a reference server plus imperfect-but-synced clocks for
  // the two sensors.
  net::Transport time_server_transport(&s, &fabric.network(), kTimeServerNode);
  net::ClockSyncServer time_server(&s, &time_server_transport);
  net::HardwareClock p_hw(&s, config.clock_offset, config.clock_drift_ppm);
  net::HardwareClock m_hw(&s, -config.clock_offset, -config.clock_drift_ppm);
  net::SyncedClock p_clock(&p_hw);
  net::SyncedClock m_clock(&m_hw);
  net::ClockSyncClient p_sync(&s, &fabric.transport(0), kTimeServerNode, &p_hw, &p_clock,
                              sim::Duration::Millis(200));
  net::ClockSyncClient m_sync(&s, &fabric.transport(1), kTimeServerNode, &m_hw, &m_clock,
                              sim::Duration::Millis(200));
  p_sync.Start();
  m_sync.Start();

  // The external environment: whether the furnace is burning, per round.
  std::map<int, bool> env_burning;

  // Observer Q's two belief strategies.
  struct Belief {
    bool valid = false;
    bool burning = false;
    sim::TimePoint stamp;
  };
  std::map<int, Belief> raw_belief;  // last delivered wins
  std::map<int, Belief> ts_belief;   // greatest timestamp wins

  fabric.member(2).SetDeliveryHandler([&](const catocs::Delivery& d) {
    const auto* report = net::PayloadCast<FireReport>(d.payload());
    if (report == nullptr) {
      return;
    }
    Belief& raw = raw_belief[report->round()];
    raw.valid = true;
    raw.burning = report->burning();
    Belief& ts = ts_belief[report->round()];
    if (!ts.valid || report->stamped_at() > ts.stamp) {
      ts.valid = true;
      ts.burning = report->burning();
      ts.stamp = report->stamped_at();
    }
  });

  fabric.StartAll();

  // Drive the rounds: fire (P), fire out (M), fire again (P).
  sim::Rng gaps = s.rng().Fork();
  for (int round = 0; round < config.rounds; ++round) {
    const sim::TimePoint base = sim::TimePoint::Zero() + config.round_gap * round +
                                sim::Duration::Seconds(2);  // let clock sync settle first
    const sim::Duration g1 = gaps.NextDuration(config.gap_lo, config.gap_hi);
    const sim::Duration g2 = gaps.NextDuration(config.gap_lo, config.gap_hi);
    s.ScheduleAt(base, [&, round] {
      env_burning[round] = true;
      fabric.member(0).Send(config.mode,
                            std::make_shared<FireReport>(round, true, p_clock.Now()));
    });
    s.ScheduleAt(base + g1, [&, round] {
      env_burning[round] = false;
      fabric.member(1).Send(config.mode,
                            std::make_shared<FireReport>(round, false, m_clock.Now()));
    });
    s.ScheduleAt(base + g1 + g2, [&, round] {
      env_burning[round] = true;
      fabric.member(0).Send(config.mode,
                            std::make_shared<FireReport>(round, true, p_clock.Now()));
    });
  }
  s.RunFor(config.round_gap * config.rounds + sim::Duration::Seconds(4));
  p_sync.Stop();
  m_sync.Stop();

  FireAlarmResult result;
  result.rounds = config.rounds;
  for (int round = 0; round < config.rounds; ++round) {
    const bool truth = env_burning[round];  // true: the fire reignited
    const Belief& raw = raw_belief[round];
    const Belief& ts = ts_belief[round];
    if (raw.valid && raw.burning != truth) {
      ++result.raw_anomalies;
    }
    if (ts.valid && ts.burning != truth) {
      ++result.timestamp_anomalies;
    }
  }
  const sim::Duration bound =
      p_sync.error_bound() > m_sync.error_bound() ? p_sync.error_bound() : m_sync.error_bound();
  result.clock_error_bound_us = static_cast<double>(bound.nanos()) / 1000.0;
  return result;
}

}  // namespace apps
