// Figure 3 scenario: unrecognized causality through an external channel.
//
// A furnace process P detects a fire and multicasts "fire"; a monitor M
// detects the fire going out and multicasts "fire out"; the fire reignites
// and P multicasts "fire" again. The fire itself is the communication
// channel relating these events, and the message system cannot see it:
// P's two messages are FIFO-ordered, but M's "fire out" is concurrent with
// both, so causal — and equally total — multicast may deliver "fire out"
// last at observer Q, which then wrongly concludes the fire is out while the
// furnace burns.
//
// The state-level fix (§4.6): each sensor stamps its report with a
// synchronized real-time clock; Q believes the report with the greatest
// timestamp. We model imperfect hardware clocks corrected by Cristian sync,
// so the fix is evaluated with realistic clock error, not oracle time.

#ifndef REPRO_SRC_APPS_FIREALARM_H_
#define REPRO_SRC_APPS_FIREALARM_H_

#include <cstdint>

#include "src/catocs/message.h"
#include "src/sim/time.h"

namespace apps {

struct FireAlarmConfig {
  int rounds = 200;
  // Gaps between fire -> out -> fire, drawn uniformly from [gap_lo, gap_hi].
  sim::Duration gap_lo = sim::Duration::Millis(4);
  sim::Duration gap_hi = sim::Duration::Millis(20);
  sim::Duration round_gap = sim::Duration::Millis(100);
  // Group link jitter.
  sim::Duration latency_lo = sim::Duration::Millis(1);
  sim::Duration latency_hi = sim::Duration::Millis(15);
  catocs::OrderingMode mode = catocs::OrderingMode::kCausal;
  // Sensor hardware clock imperfections, corrected by clock sync.
  double clock_drift_ppm = 50.0;
  sim::Duration clock_offset = sim::Duration::Millis(3);
  uint64_t seed = 1;
};

struct FireAlarmResult {
  int rounds = 0;
  // Rounds where Q's last-delivered belief says "out" while the furnace is
  // burning (the paper's anomaly).
  int raw_anomalies = 0;
  // Rounds where the max-timestamp belief is wrong (should be ~0: only a
  // clock error larger than the event gap could cause it).
  int timestamp_anomalies = 0;
  // Upper bound on clock sync error observed (microseconds).
  double clock_error_bound_us = 0.0;
};

FireAlarmResult RunFireAlarmScenario(const FireAlarmConfig& config);

}  // namespace apps

#endif  // REPRO_SRC_APPS_FIREALARM_H_
