#include "src/statelevel/prescriptive.h"

#include <algorithm>
#include <utility>

namespace statelv {

bool PrescriptiveGate::Submit(StreamKey key, std::vector<StreamKey> prerequisites,
                              net::PayloadPtr payload) {
  if (delivered_.count(key)) {
    ++stats_.duplicates;
    return false;
  }
  // Declare every *stated* prerequisite before stripping: a prerequisite
  // that happens to be satisfied already is still a semantic dependency.
  if (provenance_ != nullptr && key_mapper_) {
    const obs::MsgKey dst = key_mapper_(key);
    for (const StreamKey& p : prerequisites) {
      provenance_->DeclareSemanticDep(dst, key_mapper_(p));
    }
  }
  // Strip already-satisfied prerequisites.
  prerequisites.erase(
      std::remove_if(prerequisites.begin(), prerequisites.end(),
                     [this](const StreamKey& k) { return delivered_.count(k) > 0; }),
      prerequisites.end());
  if (prerequisites.empty()) {
    Deliver(key, payload);
    return true;
  }
  ++stats_.delayed;
  ++stats_.pending_now;
  stats_.pending_peak = std::max(stats_.pending_peak, stats_.pending_now);
  const StreamKey anchor = prerequisites.front();
  waiting_on_.emplace(anchor, Pending{key, std::move(prerequisites), std::move(payload)});
  return false;
}

void PrescriptiveGate::Deliver(const StreamKey& key, const net::PayloadPtr& payload) {
  delivered_.insert(key);
  ++stats_.delivered;
  if (handler_) {
    handler_(key, payload);
  }
  // Wake messages that were anchored on this key; they may re-park on
  // another unmet prerequisite.
  auto [begin, end] = waiting_on_.equal_range(key);
  std::vector<Pending> woken;
  for (auto it = begin; it != end; ++it) {
    woken.push_back(std::move(it->second));
  }
  waiting_on_.erase(begin, end);
  for (auto& pending : woken) {
    --stats_.pending_now;
    pending.remaining.erase(
        std::remove_if(pending.remaining.begin(), pending.remaining.end(),
                       [this](const StreamKey& k) { return delivered_.count(k) > 0; }),
        pending.remaining.end());
    if (pending.remaining.empty()) {
      Deliver(pending.key, pending.payload);
    } else {
      ++stats_.pending_now;
      const StreamKey anchor = pending.remaining.front();
      waiting_on_.emplace(anchor, std::move(pending));
    }
  }
}

}  // namespace statelv
