#include "src/statelevel/snapshot.h"

#include <cassert>
#include <utility>

namespace statelv {

namespace {

class MarkerPayload : public net::Payload {
 public:
  explicit MarkerPayload(uint64_t snapshot_id) : snapshot_id_(snapshot_id) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "marker"; }
  uint64_t snapshot_id() const { return snapshot_id_; }

 private:
  uint64_t snapshot_id_;
};

class ReportPayload : public net::Payload {
 public:
  explicit ReportPayload(LocalSnapshot snapshot) : snapshot_(std::move(snapshot)) {}
  size_t SizeBytes() const override {
    size_t total = 16;
    for (const auto& [channel, msgs] : snapshot_.channel_messages) {
      for (const auto& m : msgs) {
        total += m->SizeBytes();
      }
    }
    return total;
  }
  std::string Describe() const override { return "snapshot-report"; }
  const LocalSnapshot& snapshot() const { return snapshot_; }

 private:
  LocalSnapshot snapshot_;
};

}  // namespace

SnapshotNode::SnapshotNode(sim::Simulator* simulator, net::Transport* transport,
                           std::vector<net::NodeId> peers, StateCapture capture,
                           AppHandler app_handler)
    : simulator_(simulator),
      transport_(transport),
      peers_(std::move(peers)),
      capture_(std::move(capture)),
      app_handler_(std::move(app_handler)) {
  transport_->RegisterReceiver(
      kAppPort, [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) { OnApp(src, p); });
  transport_->RegisterReceiver(kMarkerPort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnMarker(src, p);
                               });
}

void SnapshotNode::SendApp(net::NodeId dst, net::PayloadPtr payload) {
  transport_->SendReliable(dst, kAppPort, std::move(payload));
}

void SnapshotNode::Initiate(uint64_t snapshot_id) { BeginLocal(snapshot_id); }

void SnapshotNode::BeginLocal(uint64_t snapshot_id) {
  if (active_.count(snapshot_id) || finished_.count(snapshot_id)) {
    return;
  }
  InProgress progress;
  progress.snapshot.snapshot_id = snapshot_id;
  progress.snapshot.node = transport_->node();
  progress.snapshot.state = capture_();
  for (net::NodeId peer : peers_) {
    if (peer != transport_->node()) {
      progress.awaiting_marker.insert(peer);
      progress.snapshot.channel_messages[peer];  // start recording (empty)
    }
  }
  active_.emplace(snapshot_id, std::move(progress));
  // Markers go out on every outgoing channel, FIFO with app traffic.
  auto marker = std::make_shared<MarkerPayload>(snapshot_id);
  for (net::NodeId peer : peers_) {
    if (peer != transport_->node()) {
      ++markers_sent_;
      transport_->SendReliable(peer, kMarkerPort, marker);
    }
  }
  MaybeComplete(snapshot_id);
}

void SnapshotNode::OnApp(net::NodeId src, const net::PayloadPtr& payload) {
  // Record the message against every snapshot still recording this channel.
  for (auto& [id, progress] : active_) {
    if (progress.awaiting_marker.count(src)) {
      progress.snapshot.channel_messages[src].push_back(payload);
      ++recorded_messages_;
    }
  }
  if (app_handler_) {
    app_handler_(src, payload);
  }
}

void SnapshotNode::OnMarker(net::NodeId src, const net::PayloadPtr& payload) {
  const auto* marker = net::PayloadCast<MarkerPayload>(payload);
  assert(marker != nullptr);
  const uint64_t id = marker->snapshot_id();
  if (finished_.count(id)) {
    return;
  }
  auto it = active_.find(id);
  if (it == active_.end()) {
    // First marker seen: take the local snapshot now. The channel the marker
    // arrived on records nothing (everything before the marker belongs to
    // the sender's pre-snapshot history).
    BeginLocal(id);
    it = active_.find(id);
  }
  it->second.awaiting_marker.erase(src);
  MaybeComplete(id);
}

void SnapshotNode::MaybeComplete(uint64_t snapshot_id) {
  auto it = active_.find(snapshot_id);
  if (it == active_.end() || !it->second.awaiting_marker.empty()) {
    return;
  }
  LocalSnapshot done = std::move(it->second.snapshot);
  active_.erase(it);
  finished_.insert(snapshot_id);
  if (complete_handler_) {
    complete_handler_(done);
  }
}

SnapshotCollector::SnapshotCollector(net::Transport* transport, size_t expected_nodes,
                                     GlobalHandler handler)
    : expected_nodes_(expected_nodes), handler_(std::move(handler)) {
  transport->RegisterReceiver(SnapshotNode::kReportPort,
                              [this](net::NodeId, uint32_t, const net::PayloadPtr& p) {
                                const auto* report = net::PayloadCast<ReportPayload>(p);
                                if (report == nullptr) {
                                  return;
                                }
                                auto& bucket = partial_[report->snapshot().snapshot_id];
                                bucket.push_back(report->snapshot());
                                if (bucket.size() == expected_nodes_ && handler_) {
                                  handler_(bucket);
                                }
                              });
}

void SnapshotCollector::Report(net::Transport* transport, net::NodeId collector,
                               const LocalSnapshot& snapshot) {
  if (transport->node() == collector) {
    // Local shortcut still goes through the wire for uniform accounting.
  }
  transport->SendReliable(collector, SnapshotNode::kReportPort,
                          std::make_shared<ReportPayload>(snapshot));
}

}  // namespace statelv
