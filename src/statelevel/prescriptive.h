// Prescriptive ordering (§2, §3.1): the sender states the ordering
// constraints that actually matter — "this message follows sequence n of
// stream s" / "this message requires those specific predecessors" — and the
// receiver enforces exactly those, instead of the communication layer
// guessing from incidental happens-before.
//
// PrescriptiveGate is the receiver-side enforcement: submit messages with
// explicit prerequisite keys; each is delivered once all its prerequisites
// have been delivered. Only *stated* dependencies ever delay anything, so
// false causality is impossible by construction.

#ifndef REPRO_SRC_STATELEVEL_PRESCRIPTIVE_H_
#define REPRO_SRC_STATELEVEL_PRESCRIPTIVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/net/payload.h"
#include "src/obs/provenance.h"
#include "src/sim/time.h"

namespace statelv {

// Identifies a message within a named stream (e.g. a per-object or
// per-source sequence).
struct StreamKey {
  uint64_t stream = 0;
  uint64_t seq = 0;

  auto operator<=>(const StreamKey&) const = default;
};

struct GateStats {
  uint64_t delivered = 0;
  uint64_t delayed = 0;  // had unmet prerequisites on arrival
  uint64_t duplicates = 0;
  size_t pending_now = 0;
  size_t pending_peak = 0;
};

class PrescriptiveGate {
 public:
  using Handler = std::function<void(const StreamKey&, const net::PayloadPtr&)>;

  explicit PrescriptiveGate(Handler handler) : handler_(std::move(handler)) {}

  // Submits a message with its prerequisite list. Returns true if it was
  // delivered immediately.
  bool Submit(StreamKey key, std::vector<StreamKey> prerequisites, net::PayloadPtr payload);

  // Provenance tap (DESIGN.md §8): with a recorder attached, every Submit
  // declares its stated prerequisites as semantic edges — prescriptive
  // ordering is the ground truth the potential-causality frontier is scored
  // against. `mapper` translates gate keys into the recorder's message keys
  // (e.g. back to catocs::SpanKey ids). Record-only.
  using KeyMapper = std::function<obs::MsgKey(const StreamKey&)>;
  void SetProvenance(obs::ProvenanceRecorder* recorder, KeyMapper mapper) {
    provenance_ = recorder;
    key_mapper_ = std::move(mapper);
  }

  bool Delivered(const StreamKey& key) const { return delivered_.count(key) > 0; }
  const GateStats& stats() const { return stats_; }

 private:
  struct Pending {
    StreamKey key;
    std::vector<StreamKey> remaining;
    net::PayloadPtr payload;
  };

  void Deliver(const StreamKey& key, const net::PayloadPtr& payload);

  Handler handler_;
  obs::ProvenanceRecorder* provenance_ = nullptr;
  KeyMapper key_mapper_;
  std::set<StreamKey> delivered_;
  // Waiting messages indexed by one unmet prerequisite each.
  std::multimap<StreamKey, Pending> waiting_on_;
  GateStats stats_;
};

}  // namespace statelv

#endif  // REPRO_SRC_STATELEVEL_PRESCRIPTIVE_H_
