// The order-preserving data cache of §4.1.
//
// The cache ingests versioned updates arriving in any order and exposes a
// view that is always semantically consistent:
//   * an update older than the cached version of its object is dropped
//     (reordered arrivals cannot roll state back);
//   * an update whose dependency (base object @ version) has not arrived yet
//     is held, and released automatically once the base catches up —
//     so a reader never observes a derived value without its base.
// This is the paper's state-level fix for both the hidden-channel anomalies
// (Figs. 2 & 3, via version numbers) and the trading anomaly (Fig. 4, via
// dependency fields) — and it needs no ordering from the network at all.

#ifndef REPRO_SRC_STATELEVEL_ORDERED_CACHE_H_
#define REPRO_SRC_STATELEVEL_ORDERED_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/statelevel/version.h"

namespace statelv {

enum class ApplyResult {
  kApplied,  // installed (possibly releasing held dependents)
  kStale,    // older than the cached version; dropped
  kHeld,     // dependency not yet satisfied; parked
};

struct CacheStats {
  uint64_t applied = 0;
  uint64_t stale_dropped = 0;
  uint64_t held = 0;
  uint64_t released = 0;
  size_t held_now = 0;
  size_t held_peak = 0;
};

class OrderedCache {
 public:
  // Invoked whenever an update is installed (including releases of held
  // updates), in installation order.
  using InstallHandler = std::function<void(const VersionedUpdate&)>;

  void SetInstallHandler(InstallHandler handler) { install_handler_ = std::move(handler); }

  // Ingests one update.
  ApplyResult Apply(const VersionedUpdate& update);

  // Current entry for an object; nullptr if none installed yet.
  const VersionedUpdate* Get(const std::string& object) const;

  // True when the installed version of `update.dependency` satisfies it.
  bool DependencySatisfied(const VersionedUpdate& update) const;

  const CacheStats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  void Install(const VersionedUpdate& update);
  void ReleaseDependents(const std::string& object);

  std::map<std::string, VersionedUpdate> entries_;
  // Held updates keyed by the object they are waiting on.
  std::map<std::string, std::vector<VersionedUpdate>> held_;
  InstallHandler install_handler_;
  CacheStats stats_;
};

}  // namespace statelv

#endif  // REPRO_SRC_STATELEVEL_ORDERED_CACHE_H_
