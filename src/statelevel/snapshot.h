// Chandy–Lamport consistent snapshots at the state level (§4.2).
//
// The paper argues global predicate evaluation does not justify CATOCS on
// every message: a marker-based snapshot over plain FIFO channels captures a
// consistent cut with cost proportional to the snapshot, not to the traffic.
// SnapshotNode wraps a node's application messaging so channel contents can
// be recorded, and implements the marker algorithm; SnapshotCollector
// assembles the global cut.
//
// Correctness relies on per-channel FIFO between markers and application
// messages, which net::Transport provides (single sequence space per peer).

#ifndef REPRO_SRC_STATELEVEL_SNAPSHOT_H_
#define REPRO_SRC_STATELEVEL_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/net/transport.h"

namespace statelv {

// One node's contribution to a snapshot: its state at the cut plus the
// messages recorded in flight on each incoming channel.
struct LocalSnapshot {
  uint64_t snapshot_id = 0;
  net::NodeId node = 0;
  int64_t state = 0;
  std::map<net::NodeId, std::vector<net::PayloadPtr>> channel_messages;
};

class SnapshotNode {
 public:
  static constexpr uint32_t kAppPort = 0x51AA0001;
  static constexpr uint32_t kMarkerPort = 0x51AA0002;
  static constexpr uint32_t kReportPort = 0x51AA0003;

  using AppHandler = std::function<void(net::NodeId src, const net::PayloadPtr&)>;
  // Captures this node's local state at the snapshot instant.
  using StateCapture = std::function<int64_t()>;
  using CompleteHandler = std::function<void(const LocalSnapshot&)>;

  SnapshotNode(sim::Simulator* simulator, net::Transport* transport,
               std::vector<net::NodeId> peers, StateCapture capture, AppHandler app_handler);

  // Application traffic must flow through here so in-flight messages can be
  // recorded against the cut.
  void SendApp(net::NodeId dst, net::PayloadPtr payload);

  // Starts a snapshot from this node. Ids must be fresh and increasing.
  void Initiate(uint64_t snapshot_id);

  // Fires when markers have arrived on all incoming channels.
  void SetCompleteHandler(CompleteHandler handler) { complete_handler_ = std::move(handler); }

  uint64_t markers_sent() const { return markers_sent_; }
  uint64_t recorded_messages() const { return recorded_messages_; }

 private:
  struct InProgress {
    LocalSnapshot snapshot;
    std::set<net::NodeId> awaiting_marker;  // channels still being recorded
  };

  void OnApp(net::NodeId src, const net::PayloadPtr& payload);
  void OnMarker(net::NodeId src, const net::PayloadPtr& payload);
  void BeginLocal(uint64_t snapshot_id);
  void MaybeComplete(uint64_t snapshot_id);

  sim::Simulator* simulator_;
  net::Transport* transport_;
  std::vector<net::NodeId> peers_;
  StateCapture capture_;
  AppHandler app_handler_;
  CompleteHandler complete_handler_;
  std::map<uint64_t, InProgress> active_;
  std::set<uint64_t> finished_;
  uint64_t markers_sent_ = 0;
  uint64_t recorded_messages_ = 0;
};

// Gathers local snapshots from all nodes (over the transport) and invokes a
// handler with the assembled global cut.
class SnapshotCollector {
 public:
  using GlobalHandler = std::function<void(const std::vector<LocalSnapshot>&)>;

  SnapshotCollector(net::Transport* transport, size_t expected_nodes, GlobalHandler handler);

  // Nodes call this (any node -> collector's transport node id) by sending
  // their LocalSnapshot; helper to send from a SnapshotNode's completion.
  static void Report(net::Transport* transport, net::NodeId collector,
                     const LocalSnapshot& snapshot);

 private:
  size_t expected_nodes_;
  GlobalHandler handler_;
  std::map<uint64_t, std::vector<LocalSnapshot>> partial_;
};

}  // namespace statelv

#endif  // REPRO_SRC_STATELEVEL_SNAPSHOT_H_
