#include "src/statelevel/ordered_cache.h"

#include <algorithm>

namespace statelv {

ApplyResult OrderedCache::Apply(const VersionedUpdate& update) {
  auto it = entries_.find(update.object);
  if (it != entries_.end() && update.version <= it->second.version) {
    ++stats_.stale_dropped;
    return ApplyResult::kStale;
  }
  if (!DependencySatisfied(update)) {
    held_[update.dependency->object].push_back(update);
    ++stats_.held;
    ++stats_.held_now;
    stats_.held_peak = std::max(stats_.held_peak, stats_.held_now);
    return ApplyResult::kHeld;
  }
  Install(update);
  return ApplyResult::kApplied;
}

bool OrderedCache::DependencySatisfied(const VersionedUpdate& update) const {
  if (!update.dependency) {
    return true;
  }
  auto it = entries_.find(update.dependency->object);
  return it != entries_.end() && it->second.version >= update.dependency->version;
}

const VersionedUpdate* OrderedCache::Get(const std::string& object) const {
  auto it = entries_.find(object);
  return it == entries_.end() ? nullptr : &it->second;
}

void OrderedCache::Install(const VersionedUpdate& update) {
  entries_[update.object] = update;
  ++stats_.applied;
  if (install_handler_) {
    install_handler_(update);
  }
  ReleaseDependents(update.object);
}

void OrderedCache::ReleaseDependents(const std::string& object) {
  auto it = held_.find(object);
  if (it == held_.end()) {
    return;
  }
  // Pull out releasable updates; installing one may in turn release others,
  // so work on a drained local list and re-park what is still blocked.
  std::vector<VersionedUpdate> waiting = std::move(it->second);
  held_.erase(it);
  for (auto& update : waiting) {
    stats_.held_now--;
    auto entry = entries_.find(update.object);
    if (entry != entries_.end() && update.version <= entry->second.version) {
      ++stats_.stale_dropped;
      continue;
    }
    if (DependencySatisfied(update)) {
      ++stats_.released;
      Install(update);
    } else {
      held_[update.dependency->object].push_back(update);
      ++stats_.held_now;
    }
  }
}

}  // namespace statelv
