// State-level logical clocks: object versions and dependency descriptors.
//
// The paper's recurring alternative to CATOCS (§3.1, §4.1): put the ordering
// information in the *state* — a version number per object, and on every
// computed object a designated "dependency" field naming the id and version
// of the base object it was derived from. Recipients order and filter
// updates using these fields alone; no communication-level ordering needed.

#ifndef REPRO_SRC_STATELEVEL_VERSION_H_
#define REPRO_SRC_STATELEVEL_VERSION_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/sim/time.h"

namespace statelv {

// Names the version of a base object a computed value was derived from.
struct Dependency {
  std::string object;
  uint64_t version = 0;

  bool operator==(const Dependency&) const = default;
};

// A versioned update to one object, as disseminated by a pricing service or
// a shop-floor database. `stamped_at` optionally carries a synchronized
// real-time timestamp (the §4.6 alternative).
struct VersionedUpdate {
  std::string object;
  uint64_t version = 0;
  double value = 0.0;
  std::optional<Dependency> dependency;
  sim::TimePoint stamped_at = sim::TimePoint::Zero();

  // Simulated wire footprint of the state-level ordering fields: version (8)
  // plus the dependency field when present (id hash 8 + version 8). This is
  // the number E12 compares against CATOCS's vector-clock headers.
  size_t OrderingFieldBytes() const { return 8 + (dependency ? 16 : 0); }
};

// Per-object version counter, e.g. owned by the authoritative pricing
// service for a security.
class VersionCounter {
 public:
  uint64_t Next() { return ++current_; }
  uint64_t current() const { return current_; }

 private:
  uint64_t current_ = 0;
};

}  // namespace statelv

#endif  // REPRO_SRC_STATELEVEL_VERSION_H_
