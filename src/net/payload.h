// Message payloads.
//
// The simulator carries typed C++ objects instead of serialized bytes, but
// every payload reports a wire size so bandwidth and buffering accounting is
// faithful. Payloads are immutable once sent and shared by pointer, which
// models the fact that a multicast puts the same bits on the wire for every
// destination.

#ifndef REPRO_SRC_NET_PAYLOAD_H_
#define REPRO_SRC_NET_PAYLOAD_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace net {

// One protocol layer's contribution to a message's header, by name. Framing
// stays a flat sum of sections, so a pipeline of ordering layers can each
// own a disjoint slice of the header without knowing about the others.
struct HeaderSection {
  const char* layer;
  size_t bytes;
};

class Payload {
 public:
  virtual ~Payload() = default;

  // Simulated size of the application bytes (excludes protocol headers,
  // which each layer accounts for separately).
  virtual size_t SizeBytes() const = 0;

  // Per-layer header breakdown. Empty for payloads that are pure protocol
  // control traffic (their whole size is one layer's business) or that carry
  // no layered headers.
  virtual std::vector<HeaderSection> HeaderSections() const { return {}; }

  // Short human-readable form for traces.
  virtual std::string Describe() const { return "payload"; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

// Convenience downcast. Returns nullptr when the payload is not a T.
template <typename T>
const T* PayloadCast(const PayloadPtr& p) {
  return dynamic_cast<const T*>(p.get());
}

// A free-form payload for tests and simple apps: a tag string plus a nominal
// size.
class BlobPayload : public Payload {
 public:
  BlobPayload(std::string tag, size_t size_bytes) : tag_(std::move(tag)), size_(size_bytes) {}

  size_t SizeBytes() const override { return size_; }
  std::string Describe() const override { return tag_; }
  const std::string& tag() const { return tag_; }

 private:
  std::string tag_;
  size_t size_;
};

}  // namespace net

#endif  // REPRO_SRC_NET_PAYLOAD_H_
