// Per-node clocks and clock synchronization.
//
// Section 4.6 of the paper argues that synchronized real-time clocks provide
// "temporal precedence" — the ordering relationship real-time systems
// actually need — with mechanism that is small and off the data path. To
// evaluate that claim honestly we model imperfect hardware clocks (offset +
// drift) and implement Cristian-style synchronization against a time server,
// so timestamp ordering has realistic (bounded, non-zero) error.

#ifndef REPRO_SRC_NET_CLOCK_H_
#define REPRO_SRC_NET_CLOCK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>

#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace net {

// A free-running hardware clock: reads true simulated time perturbed by a
// fixed offset and a drift rate (parts per million).
class HardwareClock {
 public:
  HardwareClock(sim::Simulator* simulator, sim::Duration offset, double drift_ppm)
      : simulator_(simulator), offset_(offset), drift_ppm_(drift_ppm) {}

  // The node's uncorrected local time.
  sim::TimePoint Now() const;

 private:
  sim::Simulator* simulator_;
  sim::Duration offset_;
  double drift_ppm_;
};

// A corrected clock: hardware clock plus the correction learned from the
// sync protocol. Timestamps produced by different nodes' SyncedClocks are
// comparable up to the sync error bound.
class SyncedClock {
 public:
  explicit SyncedClock(HardwareClock* hw) : hw_(hw) {}

  sim::TimePoint Now() const { return hw_->Now() + correction_; }
  sim::Duration correction() const { return correction_; }
  void ApplyCorrection(sim::Duration correction) { correction_ = correction; }

 private:
  HardwareClock* hw_;
  sim::Duration correction_ = sim::Duration::Zero();
};

// Cristian's algorithm with NTP-style minimum-RTT filtering: each round
// computes correction = server_time + rtt/2 - local_receive_time, and the
// applied correction comes from the lowest-RTT probe in a sliding window
// (jittery probes have the largest half-RTT error, so the fastest probe of
// the window is the best estimate). The server is assumed to be the
// reference ("true") clock, as an NTP stratum-1 server would be.
class ClockSyncClient {
 public:
  static constexpr uint32_t kPort = 0xC10C;

  ClockSyncClient(sim::Simulator* simulator, Transport* transport, NodeId server,
                  HardwareClock* hw, SyncedClock* synced, sim::Duration period);

  void Start();
  void Stop();

  // Half-RTT of the applied (window-minimum) probe: the sync error bound.
  sim::Duration error_bound() const { return error_bound_; }
  int rounds_completed() const { return rounds_; }

 private:
  static constexpr size_t kWindow = 8;

  void SendProbe();
  void OnReply(NodeId src, const PayloadPtr& payload);

  sim::Simulator* simulator_;
  Transport* transport_;
  NodeId server_;
  HardwareClock* hw_;
  SyncedClock* synced_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
  sim::TimePoint probe_sent_local_ = sim::TimePoint::Zero();
  uint64_t probe_id_ = 0;
  uint64_t awaiting_probe_ = 0;
  // Recent (rtt, correction) samples; the minimum-RTT one is applied.
  std::deque<std::pair<sim::Duration, sim::Duration>> window_;
  sim::Duration error_bound_ = sim::Duration::Zero();
  int rounds_ = 0;
};

// The reference time server: replies to probes with true simulated time.
class ClockSyncServer {
 public:
  ClockSyncServer(sim::Simulator* simulator, Transport* transport);

 private:
  sim::Simulator* simulator_;
  Transport* transport_;
};

}  // namespace net

#endif  // REPRO_SRC_NET_CLOCK_H_
