#include "src/net/network.h"

#include <cassert>
#include <utility>

namespace net {

Network::Network(sim::Simulator* simulator, std::unique_ptr<LatencyModel> latency,
                 NetworkConfig config)
    : simulator_(simulator), latency_(std::move(latency)), config_(config) {
  assert(latency_ != nullptr);
}

void Network::Attach(NodeId node) { endpoints_.try_emplace(node); }

void Network::RegisterHandler(NodeId node, uint32_t port, PacketHandler handler) {
  Attach(node);
  endpoints_[node].handlers[port] = std::move(handler);
}

void Network::SetNodeUp(NodeId node, bool up) {
  Attach(node);
  endpoints_[node].up = up;
}

bool Network::IsNodeUp(NodeId node) const {
  auto it = endpoints_.find(node);
  return it != endpoints_.end() && it->second.up;
}

bool Network::Reachable(NodeId src, NodeId dst) const {
  if (partition_id_.empty()) {
    return true;
  }
  auto a = partition_id_.find(src);
  auto b = partition_id_.find(dst);
  // Nodes not named in the partition spec form an implicit extra component.
  const size_t ca = a == partition_id_.end() ? SIZE_MAX : a->second;
  const size_t cb = b == partition_id_.end() ? SIZE_MAX : b->second;
  return ca == cb;
}

bool Network::Send(NodeId src, NodeId dst, uint32_t port, PayloadPtr payload,
                   size_t header_bytes) {
  assert(payload != nullptr);
  if (!IsNodeUp(src)) {
    return false;
  }
  const size_t total_header = header_bytes + config_.base_header_bytes;
  ++packets_sent_;
  header_bytes_sent_ += total_header;
  payload_bytes_sent_ += payload->SizeBytes();
  bytes_sent_ += total_header + payload->SizeBytes();

  Packet packet{src, dst, port, std::move(payload), header_bytes, next_packet_id_++};

  if (!Reachable(src, dst) || simulator_->rng().NextBool(config_.drop_probability)) {
    ++packets_dropped_;
    return true;
  }
  const sim::Duration delay = SampleScaledDelay(src, dst);
  if (simulator_->rng().NextBool(config_.duplicate_probability)) {
    const sim::Duration dup_delay = SampleScaledDelay(src, dst);
    Deliver(packet, dup_delay);
  }
  Deliver(std::move(packet), delay);
  return true;
}

sim::Duration Network::SampleScaledDelay(NodeId src, NodeId dst) {
  sim::Duration delay = latency_->SampleDelay(src, dst, simulator_->rng());
  double scale = latency_scale_;
  if (!inbound_scale_.empty()) {
    scale *= node_inbound_scale(dst);
  }
  if (scale != 1.0) {
    delay =
        sim::Duration::Nanos(static_cast<int64_t>(static_cast<double>(delay.nanos()) * scale));
  }
  return delay;
}

void Network::Multicast(NodeId src, const std::vector<NodeId>& dsts, uint32_t port,
                        PayloadPtr payload, size_t header_bytes) {
  for (NodeId dst : dsts) {
    if (dst == src) {
      continue;
    }
    Send(src, dst, port, payload, header_bytes);
  }
}

void Network::Partition(const std::vector<std::set<NodeId>>& components) {
  partition_id_.clear();
  for (size_t i = 0; i < components.size(); ++i) {
    for (NodeId node : components[i]) {
      partition_id_[node] = i;
    }
  }
}

void Network::HealPartition() { partition_id_.clear(); }

void Network::Deliver(Packet packet, sim::Duration delay) {
  simulator_->ScheduleAfter(delay, [this, packet = std::move(packet)] {
    auto it = endpoints_.find(packet.dst);
    if (it == endpoints_.end() || !it->second.up) {
      ++packets_dropped_;
      return;
    }
    // Partitions apply at delivery time too: a packet in flight when the
    // partition forms is lost, like a cable cut.
    if (!Reachable(packet.src, packet.dst)) {
      ++packets_dropped_;
      return;
    }
    auto handler = it->second.handlers.find(packet.port);
    if (handler == it->second.handlers.end()) {
      ++packets_dropped_;
      return;
    }
    ++packets_delivered_;
    handler->second(packet);
  });
}

}  // namespace net
