#include "src/net/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace net {

Network::Network(sim::Simulator* simulator, std::unique_ptr<LatencyModel> latency,
                 NetworkConfig config)
    : simulator_(simulator), latency_(std::move(latency)), config_(config) {
  assert(latency_ != nullptr);
}

void Network::Attach(NodeId node) {
  if (node >= endpoints_.size()) {
    endpoints_.resize(node + 1);
  }
  endpoints_[node].attached = true;
}

void Network::RegisterHandler(NodeId node, uint32_t port, PacketHandler handler) {
  Attach(node);
  auto& handlers = endpoints_[node].handlers;
  auto it = std::lower_bound(handlers.begin(), handlers.end(), port,
                             [](const auto& entry, uint32_t p) { return entry.first < p; });
  if (it != handlers.end() && it->first == port) {
    it->second = std::move(handler);
  } else {
    handlers.insert(it, {port, std::move(handler)});
  }
}

void Network::SetNodeUp(NodeId node, bool up) {
  Attach(node);
  endpoints_[node].up = up;
}

const PacketHandler* Network::FindHandler(const Endpoint& endpoint, uint32_t port) const {
  auto it = std::lower_bound(endpoint.handlers.begin(), endpoint.handlers.end(), port,
                             [](const auto& entry, uint32_t p) { return entry.first < p; });
  if (it == endpoint.handlers.end() || it->first != port) {
    return nullptr;
  }
  return &it->second;
}

bool Network::Send(NodeId src, NodeId dst, uint32_t port, PayloadPtr payload,
                   size_t header_bytes) {
  assert(payload != nullptr);
  if (!IsNodeUp(src)) {
    return false;
  }
  const size_t total_header = header_bytes + config_.base_header_bytes;
  ++packets_sent_;
  header_bytes_sent_ += total_header;
  payload_bytes_sent_ += payload->SizeBytes();
  bytes_sent_ += total_header + payload->SizeBytes();

  Packet packet{src, dst, port, std::move(payload), header_bytes, next_packet_id_++};

  if (!Reachable(src, dst) || simulator_->rng().NextBool(config_.drop_probability)) {
    ++packets_dropped_;
    return true;
  }
  const sim::Duration delay = SampleScaledDelay(src, dst);
  if (simulator_->rng().NextBool(config_.duplicate_probability)) {
    const sim::Duration dup_delay = SampleScaledDelay(src, dst);
    Deliver(packet, dup_delay);
  }
  Deliver(std::move(packet), delay);
  return true;
}

sim::Duration Network::SampleScaledDelay(NodeId src, NodeId dst) {
  sim::Duration delay = latency_->SampleDelay(src, dst, simulator_->rng());
  double scale = latency_scale_;
  if (inbound_scaled_count_ > 0) {
    scale *= node_inbound_scale(dst);
  }
  if (scale != 1.0) {
    delay =
        sim::Duration::Nanos(static_cast<int64_t>(static_cast<double>(delay.nanos()) * scale));
  }
  return delay;
}

void Network::Multicast(NodeId src, const std::vector<NodeId>& dsts, uint32_t port,
                        PayloadPtr payload, size_t header_bytes) {
  for (NodeId dst : dsts) {
    if (dst == src) {
      continue;
    }
    Send(src, dst, port, payload, header_bytes);
  }
}

void Network::set_node_inbound_scale(NodeId node, double scale) {
  if (node >= inbound_scale_.size()) {
    if (scale == 1.0) {
      return;
    }
    inbound_scale_.resize(node + 1, 1.0);
  }
  const bool was_scaled = inbound_scale_[node] != 1.0;
  const bool now_scaled = scale != 1.0;
  inbound_scale_[node] = scale;
  if (was_scaled != now_scaled) {
    inbound_scaled_count_ += now_scaled ? 1 : -1;
  }
}

void Network::Partition(const std::vector<std::set<NodeId>>& components) {
  partition_id_.assign(partition_id_.size(), SIZE_MAX);
  for (size_t i = 0; i < components.size(); ++i) {
    for (NodeId node : components[i]) {
      if (node >= partition_id_.size()) {
        partition_id_.resize(node + 1, SIZE_MAX);
      }
      partition_id_[node] = i;
    }
  }
  partition_active_ = !components.empty();
}

void Network::HealPartition() {
  partition_id_.assign(partition_id_.size(), SIZE_MAX);
  partition_active_ = false;
}

void Network::Deliver(Packet packet, sim::Duration delay) {
  simulator_->ScheduleAfter(delay, [this, packet = std::move(packet)] {
    if (!IsNodeUp(packet.dst)) {
      ++packets_dropped_;
      return;
    }
    // Partitions apply at delivery time too: a packet in flight when the
    // partition forms is lost, like a cable cut.
    if (!Reachable(packet.src, packet.dst)) {
      ++packets_dropped_;
      return;
    }
    const PacketHandler* handler = FindHandler(endpoints_[packet.dst], packet.port);
    if (handler == nullptr) {
      ++packets_dropped_;
      return;
    }
    ++packets_delivered_;
    (*handler)(packet);
  });
}

}  // namespace net
