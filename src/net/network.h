// The simulated network: an unreliable, unordered datagram service.
//
// Packets are delayed per the latency model, dropped with a configurable
// probability, optionally duplicated, and blocked across partitions. There is
// no implicit FIFO guarantee between a pair of nodes — exactly the
// environment that makes ordering protocols non-trivial. Reliability and
// ordering are built above this in transport.h.

#ifndef REPRO_SRC_NET_NETWORK_H_
#define REPRO_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/net/latency.h"
#include "src/net/payload.h"
#include "src/sim/simulator.h"

namespace net {

// A packet as seen by a receiving endpoint.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t port = 0;          // demultiplexes protocols within a node
  PayloadPtr payload;
  size_t header_bytes = 0;    // protocol header bytes carried by this packet
  uint64_t packet_id = 0;     // unique per transmission (duplicates share it)
};

using PacketHandler = std::function<void(const Packet&)>;

struct NetworkConfig {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  // Base IP/UDP-style header charged on every packet in addition to protocol
  // headers.
  size_t base_header_bytes = 28;
};

class Network {
 public:
  Network(sim::Simulator* simulator, std::unique_ptr<LatencyModel> latency,
          NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // A node must attach before it can send or receive. One handler per
  // (node, port).
  void Attach(NodeId node);
  void RegisterHandler(NodeId node, uint32_t port, PacketHandler handler);

  // Nodes that are down neither send nor receive; packets in flight to a
  // down node are dropped at delivery time.
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;

  // Sends one datagram. Returns false if it was refused (src down) —
  // dropped-in-flight packets still return true, as the sender cannot tell.
  bool Send(NodeId src, NodeId dst, uint32_t port, PayloadPtr payload, size_t header_bytes = 0);

  // Sends the same payload to every destination; per-destination independent
  // delays (an IP-multicast-like fanout).
  void Multicast(NodeId src, const std::vector<NodeId>& dsts, uint32_t port, PayloadPtr payload,
                 size_t header_bytes = 0);

  // --- Partitions -----------------------------------------------------------
  // Packets between nodes in different components are silently dropped.
  // An empty partition list means fully connected.
  //
  // In-flight semantics: reachability is checked twice, at send time and at
  // delivery time, and a packet must pass both checks *at those instants*.
  //   - Sent before Partition(), delivery falls inside it: DROPPED — forming
  //     a partition cuts the cable under packets already in flight.
  //   - Sent while partitioned: dropped immediately at send time, so a later
  //     HealPartition() never resurrects it, even if the heal lands before
  //     the packet's would-have-been delivery time.
  //   - Sent before Partition(), healed before the delivery instant: the
  //     transient partition is invisible and the packet is DELIVERED (the
  //     model has no memory of reachability between the two checks).
  void Partition(const std::vector<std::set<NodeId>>& components);
  void HealPartition();

  // --- Introspection --------------------------------------------------------
  // True when src can currently reach dst: both attached and up, and in the
  // same partition component (see the in-flight semantics above for how this
  // instant-check composes with packet delays).
  bool Reachable(NodeId src, NodeId dst) const;

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t header_bytes_sent() const { return header_bytes_sent_; }
  uint64_t payload_bytes_sent() const { return payload_bytes_sent_; }

  void set_drop_probability(double p) { config_.drop_probability = p; }
  void set_duplicate_probability(double p) { config_.duplicate_probability = p; }
  double drop_probability() const { return config_.drop_probability; }
  double duplicate_probability() const { return config_.duplicate_probability; }
  // Multiplies every subsequently sampled delay — >1.0 models a congestion /
  // latency spike. Packets already in flight keep their original delay.
  void set_latency_scale(double scale) { latency_scale_ = scale; }
  double latency_scale() const { return latency_scale_; }
  // Per-destination inbound multiplier on top of the global scale — a slow
  // receiver draining its socket late, without slowing anyone else. 1.0
  // (and an absent entry) = normal.
  void set_node_inbound_scale(NodeId node, double scale) {
    if (scale == 1.0) {
      inbound_scale_.erase(node);
    } else {
      inbound_scale_[node] = scale;
    }
  }
  double node_inbound_scale(NodeId node) const {
    auto it = inbound_scale_.find(node);
    return it == inbound_scale_.end() ? 1.0 : it->second;
  }
  sim::Simulator& simulator() { return *simulator_; }

 private:
  struct Endpoint {
    bool up = true;
    std::unordered_map<uint32_t, PacketHandler> handlers;
  };

  void Deliver(Packet packet, sim::Duration delay);
  sim::Duration SampleScaledDelay(NodeId src, NodeId dst);

  sim::Simulator* simulator_;
  std::unique_ptr<LatencyModel> latency_;
  NetworkConfig config_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  // partition_id_[node] -> component index; empty map = fully connected.
  std::unordered_map<NodeId, size_t> partition_id_;
  double latency_scale_ = 1.0;
  // node -> inbound delay multiplier; empty (the default) skips the lookup.
  std::unordered_map<NodeId, double> inbound_scale_;

  uint64_t next_packet_id_ = 1;
  uint64_t packets_sent_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t header_bytes_sent_ = 0;
  uint64_t payload_bytes_sent_ = 0;
};

}  // namespace net

#endif  // REPRO_SRC_NET_NETWORK_H_
