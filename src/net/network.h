// The simulated network: an unreliable, unordered datagram service.
//
// Packets are delayed per the latency model, dropped with a configurable
// probability, optionally duplicated, and blocked across partitions. There is
// no implicit FIFO guarantee between a pair of nodes — exactly the
// environment that makes ordering protocols non-trivial. Reliability and
// ordering are built above this in transport.h.
//
// Node ids are small dense integers (fabrics hand them out sequentially, and
// rejoining incarnations take the next id), so every per-node table here is a
// flat id-indexed vector rather than a hash map: Send and Deliver are on the
// per-packet hot path and at N=10k the map lookups dominated the routing
// cost. Port handlers per node are few (one per protocol layer), so they live
// in a small sorted vector searched by binary search.

#ifndef REPRO_SRC_NET_NETWORK_H_
#define REPRO_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/net/latency.h"
#include "src/net/payload.h"
#include "src/sim/simulator.h"

namespace net {

// A packet as seen by a receiving endpoint.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t port = 0;          // demultiplexes protocols within a node
  PayloadPtr payload;
  size_t header_bytes = 0;    // protocol header bytes carried by this packet
  uint64_t packet_id = 0;     // unique per transmission (duplicates share it)
};

using PacketHandler = std::function<void(const Packet&)>;

struct NetworkConfig {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  // Base IP/UDP-style header charged on every packet in addition to protocol
  // headers.
  size_t base_header_bytes = 28;
};

class Network {
 public:
  Network(sim::Simulator* simulator, std::unique_ptr<LatencyModel> latency,
          NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // A node must attach before it can send or receive. One handler per
  // (node, port).
  void Attach(NodeId node);
  void RegisterHandler(NodeId node, uint32_t port, PacketHandler handler);

  // Nodes that are down neither send nor receive; packets in flight to a
  // down node are dropped at delivery time.
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const {
    return node < endpoints_.size() && endpoints_[node].attached && endpoints_[node].up;
  }

  // Sends one datagram. Returns false if it was refused (src down) —
  // dropped-in-flight packets still return true, as the sender cannot tell.
  bool Send(NodeId src, NodeId dst, uint32_t port, PayloadPtr payload, size_t header_bytes = 0);

  // Sends the same payload to every destination; per-destination independent
  // delays (an IP-multicast-like fanout).
  void Multicast(NodeId src, const std::vector<NodeId>& dsts, uint32_t port, PayloadPtr payload,
                 size_t header_bytes = 0);

  // --- Partitions -----------------------------------------------------------
  // Packets between nodes in different components are silently dropped.
  // An empty partition list means fully connected.
  //
  // In-flight semantics: reachability is checked twice, at send time and at
  // delivery time, and a packet must pass both checks *at those instants*.
  //   - Sent before Partition(), delivery falls inside it: DROPPED — forming
  //     a partition cuts the cable under packets already in flight.
  //   - Sent while partitioned: dropped immediately at send time, so a later
  //     HealPartition() never resurrects it, even if the heal lands before
  //     the packet's would-have-been delivery time.
  //   - Sent before Partition(), healed before the delivery instant: the
  //     transient partition is invisible and the packet is DELIVERED (the
  //     model has no memory of reachability between the two checks).
  void Partition(const std::vector<std::set<NodeId>>& components);
  void HealPartition();

  // --- Introspection --------------------------------------------------------
  // True when src can currently reach dst: both attached and up, and in the
  // same partition component (see the in-flight semantics above for how this
  // instant-check composes with packet delays).
  bool Reachable(NodeId src, NodeId dst) const {
    if (!partition_active_) {
      return true;
    }
    return ComponentOf(src) == ComponentOf(dst);
  }

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t header_bytes_sent() const { return header_bytes_sent_; }
  uint64_t payload_bytes_sent() const { return payload_bytes_sent_; }

  void set_drop_probability(double p) { config_.drop_probability = p; }
  void set_duplicate_probability(double p) { config_.duplicate_probability = p; }
  double drop_probability() const { return config_.drop_probability; }
  double duplicate_probability() const { return config_.duplicate_probability; }
  // Multiplies every subsequently sampled delay — >1.0 models a congestion /
  // latency spike. Packets already in flight keep their original delay.
  void set_latency_scale(double scale) { latency_scale_ = scale; }
  double latency_scale() const { return latency_scale_; }
  // Per-destination inbound multiplier on top of the global scale — a slow
  // receiver draining its socket late, without slowing anyone else. 1.0
  // (and an absent entry) = normal.
  void set_node_inbound_scale(NodeId node, double scale);
  double node_inbound_scale(NodeId node) const {
    return node < inbound_scale_.size() ? inbound_scale_[node] : 1.0;
  }
  sim::Simulator& simulator() { return *simulator_; }

 private:
  struct Endpoint {
    bool attached = false;
    bool up = true;
    // Sorted by port; a node registers one handler per protocol layer, so
    // binary search over a handful of entries beats any hash.
    std::vector<std::pair<uint32_t, PacketHandler>> handlers;
  };

  void Deliver(Packet packet, sim::Duration delay);
  sim::Duration SampleScaledDelay(NodeId src, NodeId dst);
  const PacketHandler* FindHandler(const Endpoint& endpoint, uint32_t port) const;
  // Nodes not named in the partition spec form an implicit extra component.
  size_t ComponentOf(NodeId node) const {
    return node < partition_id_.size() ? partition_id_[node] : SIZE_MAX;
  }

  sim::Simulator* simulator_;
  std::unique_ptr<LatencyModel> latency_;
  NetworkConfig config_;
  std::vector<Endpoint> endpoints_;  // indexed by NodeId, lazily grown
  // partition_id_[node] -> component index; SIZE_MAX = unnamed. Only
  // consulted while partition_active_.
  std::vector<size_t> partition_id_;
  bool partition_active_ = false;
  double latency_scale_ = 1.0;
  // Indexed by NodeId; inbound_scaled_count_ keeps the no-laggards fast path
  // a single integer test.
  std::vector<double> inbound_scale_;
  size_t inbound_scaled_count_ = 0;

  uint64_t next_packet_id_ = 1;
  uint64_t packets_sent_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t header_bytes_sent_ = 0;
  uint64_t payload_bytes_sent_ = 0;
};

}  // namespace net

#endif  // REPRO_SRC_NET_NETWORK_H_
