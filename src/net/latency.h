// Link latency models. The network samples one delay per packet; models are
// free to differentiate by endpoint pair (e.g. to emulate a WAN span inside a
// mostly-LAN system, which is how §5 of the paper argues propagation time T
// grows with scale).

#ifndef REPRO_SRC_NET_LATENCY_H_
#define REPRO_SRC_NET_LATENCY_H_

#include <cstdint>
#include <memory>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace net {

using NodeId = uint32_t;

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual sim::Duration SampleDelay(NodeId src, NodeId dst, sim::Rng& rng) = 0;
};

// Constant delay for every packet.
class FixedLatency : public LatencyModel {
 public:
  explicit FixedLatency(sim::Duration delay) : delay_(delay) {}
  sim::Duration SampleDelay(NodeId, NodeId, sim::Rng&) override { return delay_; }

 private:
  sim::Duration delay_;
};

// Uniform in [lo, hi]; the workhorse jitter model for the anomaly scenarios.
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(sim::Duration lo, sim::Duration hi) : lo_(lo), hi_(hi) {}
  sim::Duration SampleDelay(NodeId, NodeId, sim::Rng& rng) override {
    return rng.NextDuration(lo_, hi_);
  }

 private:
  sim::Duration lo_;
  sim::Duration hi_;
};

// Heavy-tailed delays: base + lognormal(mu, sigma) microseconds. Models
// queueing spikes that reorder packets.
class LogNormalLatency : public LatencyModel {
 public:
  LogNormalLatency(sim::Duration base, double mu_us, double sigma)
      : base_(base), mu_us_(mu_us), sigma_(sigma) {}
  sim::Duration SampleDelay(NodeId, NodeId, sim::Rng& rng) override {
    const double extra_us = rng.NextLogNormal(mu_us_, sigma_);
    return base_ + sim::Duration::Nanos(static_cast<int64_t>(extra_us * 1000.0));
  }

 private:
  sim::Duration base_;
  double mu_us_;
  double sigma_;
};

// Two-tier topology: nodes are assigned to clusters; intra-cluster packets
// use the LAN model, inter-cluster packets the WAN model. Cluster of node n
// is n / cluster_size.
class ClusteredLatency : public LatencyModel {
 public:
  ClusteredLatency(uint32_t cluster_size, std::unique_ptr<LatencyModel> lan,
                   std::unique_ptr<LatencyModel> wan)
      : cluster_size_(cluster_size), lan_(std::move(lan)), wan_(std::move(wan)) {}

  sim::Duration SampleDelay(NodeId src, NodeId dst, sim::Rng& rng) override {
    if (src / cluster_size_ == dst / cluster_size_) {
      return lan_->SampleDelay(src, dst, rng);
    }
    return wan_->SampleDelay(src, dst, rng);
  }

 private:
  uint32_t cluster_size_;
  std::unique_ptr<LatencyModel> lan_;
  std::unique_ptr<LatencyModel> wan_;
};

}  // namespace net

#endif  // REPRO_SRC_NET_LATENCY_H_
