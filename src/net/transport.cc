#include "src/net/transport.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "src/mem/pool.h"

namespace net {

namespace {

// Network-level ports used internally by the transport.
constexpr uint32_t kRawPort = 0xFFFF0001;
constexpr uint32_t kDataPort = 0xFFFF0002;
constexpr uint32_t kAckPort = 0xFFFF0003;

// Wraps an application payload with transport metadata.
class SegmentPayload : public Payload {
 public:
  SegmentPayload(uint64_t seq, uint32_t app_port, PayloadPtr inner)
      : seq_(seq), app_port_(app_port), inner_(std::move(inner)) {}

  size_t SizeBytes() const override { return inner_->SizeBytes(); }
  std::string Describe() const override { return "seg:" + inner_->Describe(); }

  uint64_t seq() const { return seq_; }
  uint32_t app_port() const { return app_port_; }
  const PayloadPtr& inner() const { return inner_; }

 private:
  uint64_t seq_;
  uint32_t app_port_;
  PayloadPtr inner_;
};

// Raw (unreliable) wrapper: just carries the application port.
class RawPayload : public Payload {
 public:
  RawPayload(uint32_t app_port, PayloadPtr inner) : app_port_(app_port), inner_(std::move(inner)) {}

  size_t SizeBytes() const override { return inner_->SizeBytes(); }
  std::string Describe() const override { return inner_->Describe(); }

  uint32_t app_port() const { return app_port_; }
  const PayloadPtr& inner() const { return inner_; }

 private:
  uint32_t app_port_;
  PayloadPtr inner_;
};

class AckPayload : public Payload {
 public:
  explicit AckPayload(uint64_t cumulative) : cumulative_(cumulative) {}

  size_t SizeBytes() const override { return 0; }
  std::string Describe() const override { return "ack"; }

  uint64_t cumulative() const { return cumulative_; }

 private:
  uint64_t cumulative_;
};

// splitmix64 finalizer: a cheap, well-mixed hash for deriving retransmission
// jitter without touching any shared RNG stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Transport::Transport(sim::Simulator* simulator, Network* network, NodeId node,
                     TransportConfig config)
    : simulator_(simulator), network_(network), node_(node), config_(config) {
  network_->Attach(node_);
  network_->RegisterHandler(node_, kRawPort, [this](const Packet& p) {
    const auto* raw = PayloadCast<RawPayload>(p.payload);
    assert(raw != nullptr);
    DeliverUp(p.src, raw->app_port(), raw->inner());
  });
  network_->RegisterHandler(node_, kDataPort, [this](const Packet& p) { OnData(p); });
  network_->RegisterHandler(node_, kAckPort, [this](const Packet& p) { OnAck(p); });
  retransmit_timer_ = std::make_unique<sim::PeriodicTimer>(
      simulator_, config_.retransmit_scan_period, [this] { ScanRetransmits(); });
}

Transport::~Transport() = default;

void Transport::RegisterReceiver(uint32_t app_port, ReceiveFn fn) {
  receivers_[app_port] = std::move(fn);
}

void Transport::SendUnreliable(NodeId dst, uint32_t app_port, PayloadPtr payload) {
  network_->Send(node_, dst, kRawPort, mem::MakePooled<RawPayload>(app_port, std::move(payload)),
                 /*header_bytes=*/4);
}

bool Transport::SendReliable(NodeId dst, uint32_t app_port, PayloadPtr payload) {
  if ((config_.max_queued_segments != 0 && queued_segments_ >= config_.max_queued_segments) ||
      (config_.max_queued_bytes != 0 && queued_bytes_ >= config_.max_queued_bytes)) {
    ++queue_overflow_drops_;
    return false;
  }
  PeerSender& sender = senders_[dst];
  PendingSegment segment{sender.next_seq++, app_port, std::move(payload), simulator_->now(), 0, 0};
  queued_bytes_ += segment.payload->SizeBytes() + config_.data_header_bytes;
  ++queued_segments_;
  peak_queued_bytes_ = std::max(peak_queued_bytes_, queued_bytes_);
  peak_queued_segments_ = std::max(peak_queued_segments_, queued_segments_);
  TransmitSegment(dst, segment);
  sender.unacked.emplace(segment.seq, std::move(segment));
  if (!retransmit_timer_->running()) {
    retransmit_timer_->Start(config_.retransmit_scan_period);
  }
  return true;
}

void Transport::ResetPeerState() {
  senders_.clear();
  peer_receivers_.clear();
  queued_segments_ = 0;
  queued_bytes_ = 0;
  retransmit_timer_->Stop();
}

void Transport::TransmitSegment(NodeId dst, const PendingSegment& segment) {
  ++segments_sent_;
  network_->Send(node_, dst, kDataPort,
                 mem::MakePooled<SegmentPayload>(segment.seq, segment.app_port, segment.payload),
                 config_.data_header_bytes);
}

void Transport::SendAck(NodeId dst, uint64_t cumulative) {
  ++acks_sent_;
  network_->Send(node_, dst, kAckPort, mem::MakePooled<AckPayload>(cumulative),
                 config_.ack_header_bytes);
}

void Transport::OnData(const Packet& packet) {
  const auto* segment = PayloadCast<SegmentPayload>(packet.payload);
  assert(segment != nullptr);
  PeerReceiver& receiver = peer_receivers_[packet.src];
  const uint64_t seq = segment->seq();
  if (seq >= receiver.next_expected) {
    receiver.buffered.emplace(seq, std::make_pair(segment->app_port(), segment->inner()));
    // Drain the contiguous prefix.
    auto it = receiver.buffered.begin();
    while (it != receiver.buffered.end() && it->first == receiver.next_expected) {
      DeliverUp(packet.src, it->second.first, it->second.second);
      ++receiver.next_expected;
      it = receiver.buffered.erase(it);
    }
  }
  // Cumulative ack for everything contiguously received (covers duplicates
  // and out-of-order arrivals alike).
  SendAck(packet.src, receiver.next_expected - 1);
}

void Transport::OnAck(const Packet& packet) {
  const auto* ack = PayloadCast<AckPayload>(packet.payload);
  assert(ack != nullptr);
  auto it = senders_.find(packet.src);
  if (it == senders_.end()) {
    return;
  }
  auto& unacked = it->second.unacked;
  const auto acked_end = unacked.upper_bound(ack->cumulative());
  const bool progressed = acked_end != unacked.begin();
  for (auto seg = unacked.begin(); seg != acked_end; ++seg) {
    Discharge(seg->second);
  }
  unacked.erase(unacked.begin(), acked_end);
  if (progressed) {
    // The peer just proved it is alive and draining: restart the backoff
    // schedule for everything still queued to it. Without this, the backoff
    // level reached during one failure episode (say, while the peer was
    // crashed) leaked into the next, so a fresh loss after recovery started
    // at the slowest retransmit interval instead of the base timeout.
    for (auto& [seq, segment] : unacked) {
      segment.backoff = 0;
    }
  }
}

sim::Duration Transport::RetransmitWait(NodeId dst, const PendingSegment& segment) const {
  double wait_ns = static_cast<double>(config_.retransmit_timeout.nanos());
  // Iterative multiply (not std::pow) so the schedule is bit-identical
  // everywhere; backoff is bounded by max_retries.
  for (int i = 0; i < segment.backoff; ++i) {
    wait_ns *= config_.backoff_factor;
    if (wait_ns >= static_cast<double>(config_.max_retransmit_timeout.nanos())) {
      wait_ns = static_cast<double>(config_.max_retransmit_timeout.nanos());
      break;
    }
  }
  if (config_.jitter > 0.0) {
    const uint64_t h = Mix64(node_ ^ Mix64(dst ^ Mix64(segment.seq ^ Mix64(
                                 static_cast<uint64_t>(segment.retries)))));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    wait_ns *= 1.0 + config_.jitter * unit;
  }
  return sim::Duration::Nanos(static_cast<int64_t>(wait_ns));
}

void Transport::ScanRetransmits() {
  const sim::TimePoint now = simulator_->now();
  std::vector<NodeId> failed;
  for (auto& [dst, sender] : senders_) {
    for (auto it = sender.unacked.begin(); it != sender.unacked.end(); ++it) {
      PendingSegment& segment = it->second;
      if (now - segment.last_sent < RetransmitWait(dst, segment)) {
        continue;
      }
      if (segment.retries >= config_.max_retries) {
        // Give up on the peer. FIFO forbids delivering past the gap this
        // segment would leave, so the entire queue goes with it — upper
        // layers see one ordered failure, not a silent mid-stream hole.
        for (const auto& [seq, queued] : sender.unacked) {
          Discharge(queued);
        }
        sender.unacked.clear();
        failed.push_back(dst);
        break;
      }
      ++segment.retries;
      ++segment.backoff;
      ++retransmissions_;
      segment.last_sent = now;
      TransmitSegment(dst, segment);
    }
  }
  bool any_pending = false;
  for (const auto& [dst, sender] : senders_) {
    any_pending = any_pending || !sender.unacked.empty();
  }
  if (!any_pending) {
    retransmit_timer_->Stop();
  }
  // Notify outside the scan loop: a handler may send (mutating senders_).
  for (NodeId dst : failed) {
    ++peer_failures_;
    if (on_peer_failure_) {
      on_peer_failure_(dst);
    }
  }
}

void Transport::DeliverUp(NodeId src, uint32_t app_port, const PayloadPtr& payload) {
  auto it = receivers_.find(app_port);
  if (it != receivers_.end()) {
    it->second(src, app_port, payload);
  }
}

}  // namespace net
