#include "src/net/transport.h"

#include <cassert>
#include <utility>

namespace net {

namespace {

// Network-level ports used internally by the transport.
constexpr uint32_t kRawPort = 0xFFFF0001;
constexpr uint32_t kDataPort = 0xFFFF0002;
constexpr uint32_t kAckPort = 0xFFFF0003;

// Wraps an application payload with transport metadata.
class SegmentPayload : public Payload {
 public:
  SegmentPayload(uint64_t seq, uint32_t app_port, PayloadPtr inner)
      : seq_(seq), app_port_(app_port), inner_(std::move(inner)) {}

  size_t SizeBytes() const override { return inner_->SizeBytes(); }
  std::string Describe() const override { return "seg:" + inner_->Describe(); }

  uint64_t seq() const { return seq_; }
  uint32_t app_port() const { return app_port_; }
  const PayloadPtr& inner() const { return inner_; }

 private:
  uint64_t seq_;
  uint32_t app_port_;
  PayloadPtr inner_;
};

// Raw (unreliable) wrapper: just carries the application port.
class RawPayload : public Payload {
 public:
  RawPayload(uint32_t app_port, PayloadPtr inner) : app_port_(app_port), inner_(std::move(inner)) {}

  size_t SizeBytes() const override { return inner_->SizeBytes(); }
  std::string Describe() const override { return inner_->Describe(); }

  uint32_t app_port() const { return app_port_; }
  const PayloadPtr& inner() const { return inner_; }

 private:
  uint32_t app_port_;
  PayloadPtr inner_;
};

class AckPayload : public Payload {
 public:
  explicit AckPayload(uint64_t cumulative) : cumulative_(cumulative) {}

  size_t SizeBytes() const override { return 0; }
  std::string Describe() const override { return "ack"; }

  uint64_t cumulative() const { return cumulative_; }

 private:
  uint64_t cumulative_;
};

}  // namespace

Transport::Transport(sim::Simulator* simulator, Network* network, NodeId node,
                     TransportConfig config)
    : simulator_(simulator), network_(network), node_(node), config_(config) {
  network_->Attach(node_);
  network_->RegisterHandler(node_, kRawPort, [this](const Packet& p) {
    const auto* raw = PayloadCast<RawPayload>(p.payload);
    assert(raw != nullptr);
    DeliverUp(p.src, raw->app_port(), raw->inner());
  });
  network_->RegisterHandler(node_, kDataPort, [this](const Packet& p) { OnData(p); });
  network_->RegisterHandler(node_, kAckPort, [this](const Packet& p) { OnAck(p); });
  retransmit_timer_ = std::make_unique<sim::PeriodicTimer>(
      simulator_, config_.retransmit_scan_period, [this] { ScanRetransmits(); });
}

Transport::~Transport() = default;

void Transport::RegisterReceiver(uint32_t app_port, ReceiveFn fn) {
  receivers_[app_port] = std::move(fn);
}

void Transport::SendUnreliable(NodeId dst, uint32_t app_port, PayloadPtr payload) {
  network_->Send(node_, dst, kRawPort, std::make_shared<RawPayload>(app_port, std::move(payload)),
                 /*header_bytes=*/4);
}

void Transport::SendReliable(NodeId dst, uint32_t app_port, PayloadPtr payload) {
  PeerSender& sender = senders_[dst];
  PendingSegment segment{sender.next_seq++, app_port, std::move(payload), simulator_->now(), 0};
  TransmitSegment(dst, segment);
  sender.unacked.emplace(segment.seq, std::move(segment));
  if (!retransmit_timer_->running()) {
    retransmit_timer_->Start(config_.retransmit_scan_period);
  }
}

void Transport::ResetPeerState() {
  senders_.clear();
  peer_receivers_.clear();
  retransmit_timer_->Stop();
}

void Transport::TransmitSegment(NodeId dst, const PendingSegment& segment) {
  ++segments_sent_;
  network_->Send(node_, dst, kDataPort,
                 std::make_shared<SegmentPayload>(segment.seq, segment.app_port, segment.payload),
                 config_.data_header_bytes);
}

void Transport::SendAck(NodeId dst, uint64_t cumulative) {
  ++acks_sent_;
  network_->Send(node_, dst, kAckPort, std::make_shared<AckPayload>(cumulative),
                 config_.ack_header_bytes);
}

void Transport::OnData(const Packet& packet) {
  const auto* segment = PayloadCast<SegmentPayload>(packet.payload);
  assert(segment != nullptr);
  PeerReceiver& receiver = peer_receivers_[packet.src];
  const uint64_t seq = segment->seq();
  if (seq >= receiver.next_expected) {
    receiver.buffered.emplace(seq, std::make_pair(segment->app_port(), segment->inner()));
    // Drain the contiguous prefix.
    auto it = receiver.buffered.begin();
    while (it != receiver.buffered.end() && it->first == receiver.next_expected) {
      DeliverUp(packet.src, it->second.first, it->second.second);
      ++receiver.next_expected;
      it = receiver.buffered.erase(it);
    }
  }
  // Cumulative ack for everything contiguously received (covers duplicates
  // and out-of-order arrivals alike).
  SendAck(packet.src, receiver.next_expected - 1);
}

void Transport::OnAck(const Packet& packet) {
  const auto* ack = PayloadCast<AckPayload>(packet.payload);
  assert(ack != nullptr);
  auto it = senders_.find(packet.src);
  if (it == senders_.end()) {
    return;
  }
  auto& unacked = it->second.unacked;
  unacked.erase(unacked.begin(), unacked.upper_bound(ack->cumulative()));
}

void Transport::ScanRetransmits() {
  bool any_pending = false;
  const sim::TimePoint now = simulator_->now();
  for (auto& [dst, sender] : senders_) {
    for (auto it = sender.unacked.begin(); it != sender.unacked.end();) {
      PendingSegment& segment = it->second;
      if (now - segment.last_sent >= config_.retransmit_timeout) {
        if (segment.retries >= config_.max_retries) {
          // Give up; the peer is presumed failed.
          it = sender.unacked.erase(it);
          continue;
        }
        ++segment.retries;
        ++retransmissions_;
        segment.last_sent = now;
        TransmitSegment(dst, segment);
      }
      any_pending = true;
      ++it;
    }
  }
  if (!any_pending) {
    retransmit_timer_->Stop();
  }
}

void Transport::DeliverUp(NodeId src, uint32_t app_port, const PayloadPtr& payload) {
  auto it = receivers_.find(app_port);
  if (it != receivers_.end()) {
    it->second(src, app_port, payload);
  }
}

}  // namespace net
