// A deterministic spanning overlay over a group's member set.
//
// The constant-metadata causal path (DESIGN.md §11) disseminates messages by
// flooding them over a spanning tree instead of direct N-way multicast, so
// each frame carries O(1) control bytes no matter how large the group is.
// The tree is not negotiated: every member computes the same shape locally
// from the sorted member list, so a view install *is* the rewiring protocol.
//
// Shape: a complete k-ary tree (k = 4) over the member list's sorted index —
// parent(i) = (i-1)/k, root = index 0 (the lowest id, which is also the
// membership layer's flush coordinator). Joins append at the end of the
// sorted order (fresh incarnations take the next id), so a join only adds a
// leaf; a leave compacts the indices, shifting at most the tail's links.
// Degree is bounded by k+1 = 5 and depth by ~log4(N), which keeps both the
// per-member heartbeat load and the delivery depth small at N=10k.

#ifndef REPRO_SRC_NET_OVERLAY_H_
#define REPRO_SRC_NET_OVERLAY_H_

#include <cstddef>
#include <vector>

#include "src/net/latency.h"

namespace net {

class SpanningOverlay {
 public:
  static constexpr size_t kArity = 4;

  // Recomputes this member's links from a member list sorted ascending by
  // id. If self is absent (evicted, or not yet admitted) the overlay is
  // empty: no parent, no children.
  void Rebuild(const std::vector<NodeId>& sorted_members, NodeId self);

  // The root (lowest id) has no parent; 0 means none.
  NodeId parent() const { return parent_; }
  bool is_root() const { return in_overlay_ && parent_ == 0; }
  bool in_overlay() const { return in_overlay_; }
  const std::vector<NodeId>& children() const { return children_; }
  // parent (if any) followed by children, ascending.
  const std::vector<NodeId>& neighbors() const { return neighbors_; }
  bool IsNeighbor(NodeId node) const;

  // Depth of self below the root (root = 0); 0 when not in the overlay.
  size_t depth() const { return depth_; }

 private:
  bool in_overlay_ = false;
  NodeId parent_ = 0;
  size_t depth_ = 0;
  std::vector<NodeId> children_;
  std::vector<NodeId> neighbors_;
};

}  // namespace net

#endif  // REPRO_SRC_NET_OVERLAY_H_
