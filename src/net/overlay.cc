#include "src/net/overlay.h"

#include <algorithm>

namespace net {

void SpanningOverlay::Rebuild(const std::vector<NodeId>& sorted_members, NodeId self) {
  parent_ = 0;
  depth_ = 0;
  children_.clear();
  neighbors_.clear();
  auto it = std::lower_bound(sorted_members.begin(), sorted_members.end(), self);
  if (it == sorted_members.end() || *it != self) {
    in_overlay_ = false;
    return;
  }
  in_overlay_ = true;
  const size_t index = static_cast<size_t>(it - sorted_members.begin());
  if (index > 0) {
    parent_ = sorted_members[(index - 1) / kArity];
    neighbors_.push_back(parent_);
    // depth(i) = 1 + depth(parent(i)); closed form by walking up.
    for (size_t i = index; i > 0; i = (i - 1) / kArity) {
      ++depth_;
    }
  }
  const size_t first_child = index * kArity + 1;
  for (size_t c = first_child; c < first_child + kArity && c < sorted_members.size(); ++c) {
    children_.push_back(sorted_members[c]);
    neighbors_.push_back(sorted_members[c]);
  }
}

bool SpanningOverlay::IsNeighbor(NodeId node) const {
  // Degree is at most kArity + 1; a scan beats any structure.
  for (NodeId neighbor : neighbors_) {
    if (neighbor == node) {
      return true;
    }
  }
  return false;
}

}  // namespace net
