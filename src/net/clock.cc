#include "src/net/clock.h"

#include <cassert>
#include <utility>

namespace net {

namespace {

class ProbePayload : public Payload {
 public:
  explicit ProbePayload(uint64_t id) : id_(id) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "clock-probe"; }
  uint64_t id() const { return id_; }

 private:
  uint64_t id_;
};

class ReplyPayload : public Payload {
 public:
  ReplyPayload(uint64_t id, sim::TimePoint server_time) : id_(id), server_time_(server_time) {}
  size_t SizeBytes() const override { return 16; }
  std::string Describe() const override { return "clock-reply"; }
  uint64_t id() const { return id_; }
  sim::TimePoint server_time() const { return server_time_; }

 private:
  uint64_t id_;
  sim::TimePoint server_time_;
};

}  // namespace

sim::TimePoint HardwareClock::Now() const {
  const int64_t t = simulator_->now().nanos();
  const int64_t drift = static_cast<int64_t>(static_cast<double>(t) * drift_ppm_ * 1e-6);
  return sim::TimePoint(t + offset_.nanos() + drift);
}

ClockSyncClient::ClockSyncClient(sim::Simulator* simulator, Transport* transport, NodeId server,
                                 HardwareClock* hw, SyncedClock* synced, sim::Duration period)
    : simulator_(simulator), transport_(transport), server_(server), hw_(hw), synced_(synced) {
  transport_->RegisterReceiver(
      kPort, [this](NodeId src, uint32_t, const PayloadPtr& p) { OnReply(src, p); });
  timer_ = std::make_unique<sim::PeriodicTimer>(simulator_, period, [this] { SendProbe(); });
}

void ClockSyncClient::Start() {
  timer_->Start(sim::Duration::Zero());
}

void ClockSyncClient::Stop() { timer_->Stop(); }

void ClockSyncClient::SendProbe() {
  awaiting_probe_ = ++probe_id_;
  probe_sent_local_ = hw_->Now();
  transport_->SendUnreliable(server_, kPort, std::make_shared<ProbePayload>(awaiting_probe_));
}

void ClockSyncClient::OnReply(NodeId src, const PayloadPtr& payload) {
  if (src != server_) {
    return;
  }
  const auto* reply = PayloadCast<ReplyPayload>(payload);
  if (reply == nullptr || reply->id() != awaiting_probe_) {
    return;  // stale or lost round; the next probe retries
  }
  awaiting_probe_ = 0;
  const sim::TimePoint local_now = hw_->Now();
  const sim::Duration rtt = local_now - probe_sent_local_;
  const sim::TimePoint estimate = reply->server_time() + rtt / 2;
  window_.emplace_back(rtt, estimate - local_now);
  if (window_.size() > kWindow) {
    window_.pop_front();
  }
  // Apply the correction from the fastest probe in the window: its half-RTT
  // asymmetry error is the smallest.
  auto best = window_.front();
  for (const auto& sample : window_) {
    if (sample.first < best.first) {
      best = sample;
    }
  }
  synced_->ApplyCorrection(best.second);
  error_bound_ = best.first / 2;
  ++rounds_;
}

ClockSyncServer::ClockSyncServer(sim::Simulator* simulator, Transport* transport)
    : simulator_(simulator), transport_(transport) {
  transport_->RegisterReceiver(ClockSyncClient::kPort,
                               [this](NodeId src, uint32_t, const PayloadPtr& p) {
                                 const auto* probe = PayloadCast<ProbePayload>(p);
                                 if (probe == nullptr) {
                                   return;
                                 }
                                 transport_->SendUnreliable(
                                     src, ClockSyncClient::kPort,
                                     std::make_shared<ReplyPayload>(probe->id(),
                                                                    simulator_->now()));
                               });
}

}  // namespace net
