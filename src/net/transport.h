// Reliable FIFO unicast transport built on the unreliable network.
//
// This is the "conventional transport protocol" the paper repeatedly appeals
// to: per-destination sequence numbers, cumulative acknowledgments,
// timeout-driven retransmission and duplicate suppression give reliable,
// sender-ordered delivery between each pair of nodes — and nothing more.
// CATOCS and the state-level alternatives are both layered on top of this.

#ifndef REPRO_SRC_NET_TRANSPORT_H_
#define REPRO_SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace net {

// Application-level receive callback: (source node, application port,
// payload).
using ReceiveFn = std::function<void(NodeId, uint32_t, const PayloadPtr&)>;

struct TransportConfig {
  sim::Duration retransmit_timeout = sim::Duration::Millis(20);
  sim::Duration retransmit_scan_period = sim::Duration::Millis(5);
  // A segment that has been retransmitted k times waits
  // retransmit_timeout * backoff_factor^k (capped at max_retransmit_timeout)
  // before the next attempt. The default factor of 1.0 keeps the classic
  // fixed-interval schedule.
  double backoff_factor = 1.0;
  sim::Duration max_retransmit_timeout = sim::Duration::Millis(500);
  // Stretches each wait by up to this fraction, derived from a hash of
  // (node, peer, seq, retries) — deterministic across runs and drawn from no
  // shared RNG stream, so enabling it cannot perturb unrelated components.
  double jitter = 0.0;
  // After this many retransmissions of one segment the sender gives up on the
  // peer: the whole per-peer queue is dropped (FIFO forbids skipping the gap)
  // and the failure handler, if set, is told the peer is presumed dead.
  int max_retries = 50;
  // Wire overhead charged per data segment / ack.
  size_t data_header_bytes = 16;
  size_t ack_header_bytes = 12;
  // Hard bounds on the total unacked send-queue occupancy across all peers;
  // a reliable send that would exceed either is refused (SendReliable
  // returns false, counted in queue_overflow_drops). 0 = unbounded (the
  // default). Upper layers normally stay below these via flow control; the
  // bound is the last-resort backstop.
  size_t max_queued_segments = 0;
  size_t max_queued_bytes = 0;
};

class Transport {
 public:
  Transport(sim::Simulator* simulator, Network* network, NodeId node,
            TransportConfig config = {});
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  NodeId node() const { return node_; }

  // At most one receiver per application port.
  void RegisterReceiver(uint32_t app_port, ReceiveFn fn);

  // Called when retransmission to a peer is abandoned (a segment exceeded
  // max_retries). Everything still queued for that peer has already been
  // dropped together — an ordered failure, never a silent mid-stream hole.
  using FailureFn = std::function<void(NodeId)>;
  void SetFailureHandler(FailureFn fn) { on_peer_failure_ = std::move(fn); }

  // Fire-and-forget datagram: may be lost, duplicated, or reordered.
  void SendUnreliable(NodeId dst, uint32_t app_port, PayloadPtr payload);

  // Reliable, FIFO-per-destination delivery. False iff the segment was
  // refused because a configured queue bound would be exceeded.
  bool SendReliable(NodeId dst, uint32_t app_port, PayloadPtr payload);

  // Drops all in-flight reliable state (used when a process crashes: an
  // amnesiac restart must not resume old sequence numbers).
  void ResetPeerState();

  uint64_t retransmissions() const { return retransmissions_; }
  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t acks_sent() const { return acks_sent_; }
  uint64_t peer_failures() const { return peer_failures_; }

  // Unacked send-queue occupancy across all peers (payload + data header per
  // segment) — the transport's charge against a group resource budget.
  size_t queued_segments() const { return queued_segments_; }
  size_t queued_bytes() const { return queued_bytes_; }
  size_t peak_queued_segments() const { return peak_queued_segments_; }
  size_t peak_queued_bytes() const { return peak_queued_bytes_; }
  uint64_t queue_overflow_drops() const { return queue_overflow_drops_; }

 private:
  struct PendingSegment {
    uint64_t seq;
    uint32_t app_port;
    PayloadPtr payload;
    sim::TimePoint last_sent;
    int retries = 0;
    // Backoff level for the wait schedule. Tracks retries except that ack
    // progress from the peer resets it (the peer is alive again), while
    // retries keeps counting monotonically for the give-up limit and the
    // jitter hash.
    int backoff = 0;
  };
  struct PeerSender {
    uint64_t next_seq = 1;
    std::map<uint64_t, PendingSegment> unacked;
  };
  struct PeerReceiver {
    uint64_t next_expected = 1;
    // Out-of-order segments waiting for the gap to fill.
    std::map<uint64_t, std::pair<uint32_t, PayloadPtr>> buffered;
  };

  void OnData(const Packet& packet);
  void OnAck(const Packet& packet);
  void TransmitSegment(NodeId dst, const PendingSegment& segment);
  void SendAck(NodeId dst, uint64_t cumulative);
  void ScanRetransmits();
  void DeliverUp(NodeId src, uint32_t app_port, const PayloadPtr& payload);
  // Backed-off, jittered wait before the segment's next retransmission.
  sim::Duration RetransmitWait(NodeId dst, const PendingSegment& segment) const;

  sim::Simulator* simulator_;
  Network* network_;
  NodeId node_;
  TransportConfig config_;
  std::unordered_map<uint32_t, ReceiveFn> receivers_;
  FailureFn on_peer_failure_;
  std::unordered_map<NodeId, PeerSender> senders_;
  std::unordered_map<NodeId, PeerReceiver> peer_receivers_;
  std::unique_ptr<sim::PeriodicTimer> retransmit_timer_;

  // Occupancy bookkeeping shared by SendReliable/OnAck/give-up/reset.
  void Discharge(const PendingSegment& segment) {
    queued_bytes_ -= segment.payload->SizeBytes() + config_.data_header_bytes;
    --queued_segments_;
  }

  uint64_t retransmissions_ = 0;
  uint64_t segments_sent_ = 0;
  uint64_t acks_sent_ = 0;
  uint64_t peer_failures_ = 0;
  size_t queued_segments_ = 0;
  size_t queued_bytes_ = 0;
  size_t peak_queued_segments_ = 0;
  size_t peak_queued_bytes_ = 0;
  uint64_t queue_overflow_drops_ = 0;
};

}  // namespace net

#endif  // REPRO_SRC_NET_TRANSPORT_H_
