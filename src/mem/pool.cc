#include "src/mem/pool.h"

#include <cstdlib>

namespace mem {

namespace {

// ASan's whole point is catching lifetime bugs; recycling blocks would mask
// them, so pooled allocation is compiled out under the sanitizer.
constexpr bool kAsanBuild =
#if defined(__SANITIZE_ADDRESS__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

bool ReadPassthroughEnv() {
  if (kAsanBuild) {
    return true;
  }
  const char* env = std::getenv("REPRO_MEM_PASSTHROUGH");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

bool SizeClassPool::passthrough() {
  static const bool value = ReadPassthroughEnv();
  return value;
}

SizeClassPool& SizeClassPool::Instance() {
  static SizeClassPool* pool = new SizeClassPool();  // never destroyed: blocks
  return *pool;  // may be referenced by statics torn down after main
}

SizeClassPool::~SizeClassPool() { TrimFreeLists(); }

void* SizeClassPool::Allocate(std::size_t bytes) {
  ++stats_.allocations;
  ++stats_.live_blocks;
  if (passthrough() || bytes == 0 || bytes > kMaxPooledBytes) {
    ++stats_.fresh_blocks;
    return ::operator new(bytes);
  }
  const std::size_t cls = ClassFor(bytes);
  std::vector<void*>& list = free_lists_[cls];
  if (!list.empty()) {
    void* block = list.back();
    list.pop_back();
    ++stats_.pool_hits;
    stats_.free_bytes -= ClassBytes(cls);
    return block;
  }
  ++stats_.fresh_blocks;
  return ::operator new(ClassBytes(cls));
}

void SizeClassPool::Deallocate(void* p, std::size_t bytes) noexcept {
  ++stats_.frees;
  --stats_.live_blocks;
  if (passthrough() || bytes == 0 || bytes > kMaxPooledBytes) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = ClassFor(bytes);
  free_lists_[cls].push_back(p);
  stats_.free_bytes += ClassBytes(cls);
}

void SizeClassPool::TrimFreeLists() {
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    for (void* block : free_lists_[cls]) {
      ::operator delete(block);
    }
    stats_.free_bytes -= free_lists_[cls].size() * ClassBytes(cls);
    free_lists_[cls].clear();
  }
}

}  // namespace mem
