// Chunked bump arena for short-lived scratch objects with a common reset
// point. Allocation is a pointer bump; there is no per-object free. The
// owner calls Reset() at a quiescent point (a batch flushed, a token built,
// a bench iteration finished) and every object allocated since is reclaimed
// at once — which is why only trivially destructible types may be placed
// here via New<T>.
//
// Chunks are retained across Reset, so a steady-state workload reaches its
// high-water mark once and never allocates from the system again.

#ifndef REPRO_SRC_MEM_ARENA_H_
#define REPRO_SRC_MEM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace mem {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 16384) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    std::size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (chunk_ == nullptr || offset + bytes > chunk_size_) {
      NextChunk(bytes);
      offset = 0;  // fresh chunks are max-aligned
    }
    void* p = chunk_ + offset;
    cursor_ = offset + bytes;
    bytes_used_ += bytes;
    return p;
  }

  // Placement-constructs a T in the arena. No destructor ever runs: the
  // memory is reclaimed wholesale by Reset().
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are reclaimed without running destructors");
    return ::new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  // Reclaims everything allocated since the last Reset. Chunks are kept.
  void Reset() {
    current_ = 0;
    chunk_ = chunks_.empty() ? nullptr : chunks_.front().get();
    chunk_size_ = chunks_.empty() ? 0 : chunk_sizes_.front();
    cursor_ = 0;
    bytes_used_ = 0;
  }

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (std::size_t size : chunk_sizes_) {
      total += size;
    }
    return total;
  }

 private:
  void NextChunk(std::size_t min_bytes) {
    // Advance through retained chunks until one fits; grow otherwise.
    std::size_t next = chunk_ == nullptr ? current_ : current_ + 1;
    while (next < chunks_.size() && chunk_sizes_[next] < min_bytes) {
      ++next;  // too small for this request; abandoned until Reset
    }
    if (next >= chunks_.size()) {
      const std::size_t size = min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
      chunks_.push_back(std::make_unique<std::byte[]>(size));
      chunk_sizes_.push_back(size);
      next = chunks_.size() - 1;
    }
    current_ = next;
    chunk_ = chunks_[next].get();
    chunk_size_ = chunk_sizes_[next];
    cursor_ = 0;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<std::size_t> chunk_sizes_;
  std::size_t current_ = 0;
  std::byte* chunk_ = nullptr;
  std::size_t chunk_size_ = 0;
  std::size_t cursor_ = 0;
  std::size_t bytes_used_ = 0;
};

}  // namespace mem

#endif  // REPRO_SRC_MEM_ARENA_H_
