// Size-class free-list pool for the simulator's hot-path allocations:
// GroupData frames, ack vectors, order assignments, batch frames, and the
// transport's per-segment wrappers. The discrete-event simulator is
// single-threaded and churns through millions of short-lived protocol
// objects per run; recycling their blocks through per-size free lists turns
// almost every allocation on the steady-state path into a pointer pop.
//
// The pool hands out raw blocks rounded up to 64-byte granules and keeps one
// LIFO free list per granule class (LIFO so a freshly freed — and therefore
// cache-hot — block is the next one reused). Blocks above the largest class
// fall through to operator new. `MakePooled<T>(...)` is the drop-in
// replacement for std::make_shared on the hot paths: it allocate_shared's
// through a PoolAllocator so the control block and the object share one
// pooled allocation, exactly like make_shared shares one heap allocation.
//
// Sanitizer escape hatch: recycling defeats AddressSanitizer's
// use-after-free detection (a freed block is immediately valid again), so
// under ASan — or when REPRO_MEM_PASSTHROUGH=1 is set — every call forwards
// straight to operator new/delete and the pool is a pure pass-through.

#ifndef REPRO_SRC_MEM_POOL_H_
#define REPRO_SRC_MEM_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace mem {

struct PoolStats {
  uint64_t allocations = 0;  // total Allocate calls
  uint64_t pool_hits = 0;    // served by popping a free list
  uint64_t fresh_blocks = 0; // served by operator new (cold or oversized)
  uint64_t frees = 0;        // total Deallocate calls
  uint64_t live_blocks = 0;  // currently allocated, not yet returned
  uint64_t free_bytes = 0;   // bytes parked across all free lists
};

class SizeClassPool {
 public:
  // Process-global instance. The simulator is single-threaded; the pool is
  // deliberately lock-free-by-absence-of-threads.
  static SizeClassPool& Instance();

  SizeClassPool(const SizeClassPool&) = delete;
  SizeClassPool& operator=(const SizeClassPool&) = delete;

  void* Allocate(std::size_t bytes);
  void Deallocate(void* p, std::size_t bytes) noexcept;

  // Drops every parked block back to the system allocator.
  void TrimFreeLists();

  const PoolStats& stats() const { return stats_; }

  // True when pooling is disabled (ASan build or REPRO_MEM_PASSTHROUGH=1)
  // and every call forwards to operator new/delete.
  static bool passthrough();

  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kMaxPooledBytes = 1024;

 private:
  SizeClassPool() = default;
  ~SizeClassPool();

  static constexpr std::size_t kNumClasses = kMaxPooledBytes / kGranule;

  // Class index for a pooled size (bytes must be in (0, kMaxPooledBytes]).
  static std::size_t ClassFor(std::size_t bytes) {
    return (bytes + kGranule - 1) / kGranule - 1;
  }
  static std::size_t ClassBytes(std::size_t cls) { return (cls + 1) * kGranule; }

  std::vector<void*> free_lists_[kNumClasses];
  PoolStats stats_;
};

// std-compatible allocator over the global pool; lets allocate_shared fuse
// the control block and payload into one pooled block.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(SizeClassPool::Instance().Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    SizeClassPool::Instance().Deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

// make_shared, but the single fused allocation comes from (and returns to)
// the size-class pool.
template <typename T, typename... Args>
std::shared_ptr<T> MakePooled(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{}, std::forward<Args>(args)...);
}

}  // namespace mem

#endif  // REPRO_SRC_MEM_POOL_H_
