#include "src/txn/replicated_store.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace txn {

namespace {

class PrepareMsg : public net::Payload {
 public:
  PrepareMsg(uint64_t txn, uint64_t ts, std::map<std::string, double> writes)
      : txn_(txn), ts_(ts), writes_(std::move(writes)) {}
  // Sim-level wire-size approximation; the timestamp rides in the same
  // header word as the txn id (both derive from one 64-bit id in a real
  // encoding), so the formula matches the seed byte for byte.
  size_t SizeBytes() const override { return 8 + writes_.size() * 24; }
  std::string Describe() const override { return "prepare"; }
  uint64_t txn() const { return txn_; }
  uint64_t ts() const { return ts_; }
  const std::map<std::string, double>& writes() const { return writes_; }

 private:
  uint64_t txn_;
  uint64_t ts_;
  std::map<std::string, double> writes_;
};

class VoteMsg : public net::Payload {
 public:
  VoteMsg(uint64_t txn, bool yes) : txn_(txn), yes_(yes) {}
  size_t SizeBytes() const override { return 9; }
  std::string Describe() const override { return yes_ ? "vote-yes" : "vote-no"; }
  uint64_t txn() const { return txn_; }
  bool yes() const { return yes_; }

 private:
  uint64_t txn_;
  bool yes_;
};

class DecisionMsg : public net::Payload {
 public:
  DecisionMsg(uint64_t txn, bool commit) : txn_(txn), commit_(commit) {}
  size_t SizeBytes() const override { return 9; }
  std::string Describe() const override { return commit_ ? "commit" : "abort"; }
  uint64_t txn() const { return txn_; }
  bool commit() const { return commit_; }

 private:
  uint64_t txn_;
  bool commit_;
};

class UpdateMsg : public net::Payload {
 public:
  UpdateMsg(uint64_t update_id, net::NodeId primary, std::string key, double value)
      : update_id_(update_id), primary_(primary), key_(std::move(key)), value_(value) {}
  size_t SizeBytes() const override { return 20 + key_.size(); }
  std::string Describe() const override { return "update:" + key_; }
  uint64_t update_id() const { return update_id_; }
  net::NodeId primary() const { return primary_; }
  const std::string& key() const { return key_; }
  double value() const { return value_; }

 private:
  uint64_t update_id_;
  net::NodeId primary_;
  std::string key_;
  double value_;
};

class UpdateAckMsg : public net::Payload {
 public:
  explicit UpdateAckMsg(uint64_t update_id) : update_id_(update_id) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "update-ack"; }
  uint64_t update_id() const { return update_id_; }

 private:
  uint64_t update_id_;
};

}  // namespace

// --- TxnReplica ----------------------------------------------------------------

TxnReplica::TxnReplica(sim::Simulator* simulator, net::Transport* transport,
                       sim::Duration wal_flush_delay)
    : TxnReplica(simulator, transport,
                 TxnReplicaConfig{DeadlockPolicy::kDetect, wal_flush_delay}) {}

TxnReplica::TxnReplica(sim::Simulator* simulator, net::Transport* transport,
                       const TxnReplicaConfig& config)
    : simulator_(simulator),
      transport_(transport),
      locks_(config.policy),
      wal_(simulator, config.wal_flush_delay) {
  // Wound victims (starvation-free policy): locks are already released when
  // the handler runs; all that is left is the 2PC-level abort.
  locks_.SetAbortHandler([this](TxnId txn) { AbortLocal(txn); });
  transport_->RegisterReceiver(kPreparePort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnPrepare(src, p);
                               });
  transport_->RegisterReceiver(kDecisionPort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnDecision(src, p);
                               });
}

void TxnReplica::OnPrepare(net::NodeId coordinator, const net::PayloadPtr& payload) {
  const auto* prepare = net::PayloadCast<PrepareMsg>(payload);
  assert(prepare != nullptr);
  ++prepares_seen_;
  const uint64_t txn = prepare->txn();

  // State-level veto: the replica may refuse (limitation 2 in action — a
  // receiver can reject an operation regardless of delivery order).
  if (vote_hook_) {
    for (const auto& [key, value] : prepare->writes()) {
      if (!vote_hook_(key)) {
        transport_->SendReliable(coordinator, kVotePort, std::make_shared<VoteMsg>(txn, false));
        return;
      }
    }
  }

  PendingTxn& pending = pending_[txn];
  pending.writes = prepare->writes();
  pending.coordinator = coordinator;
  locks_.BeginTxn(txn, prepare->ts());

  // Acquire exclusive locks on all keys, then force the WAL record, then
  // vote YES (and pin: a YES-voted transaction may no longer abort
  // unilaterally, so it must not be woundable). Contention delays the vote;
  // under a prevention policy it may instead abort the transaction here.
  auto continue_after_locks = [this, txn, coordinator] {
    std::ostringstream record;
    record << "prepare txn=" << txn;
    wal_.Append(record.str(), [this, txn, coordinator] {
      auto it = pending_.find(txn);
      if (it == pending_.end()) {
        return;  // already decided (aborted) before the flush finished
      }
      it->second.voted = true;
      locks_.Pin(txn);
      transport_->SendReliable(coordinator, kVotePort, std::make_shared<VoteMsg>(txn, true));
    });
  };
  // Count locks to acquire; grant callback fires when the last is granted.
  // Iterate a copy of the key list: a wait-die refusal (or a wound during a
  // cascading grant) can erase the pending entry mid-loop.
  std::vector<std::string> keys;
  keys.reserve(pending.writes.size());
  for (const auto& [key, value] : pending.writes) {
    keys.push_back(key);
  }
  auto remaining = std::make_shared<size_t>(keys.size());
  for (const std::string& key : keys) {
    const AcquireResult result =
        locks_.AcquireEx(txn, key, LockMode::kExclusive,
                         [remaining, continue_after_locks]() mutable {
                           if (--*remaining == 0) {
                             continue_after_locks();
                           }
                         });
    if (result == AcquireResult::kAborted) {
      AbortLocal(txn);  // younger than a conflicting holder: die, vote NO
      return;
    }
    if (result == AcquireResult::kGranted) {
      if (--*remaining == 0) {
        continue_after_locks();
      }
    }
    if (!pending_.count(txn)) {
      return;  // wounded while acquiring (a later key's grant cascade)
    }
  }
  if (keys.empty()) {
    continue_after_locks();
  }
}

void TxnReplica::AbortLocal(uint64_t txn) {
  auto it = pending_.find(txn);
  if (it == pending_.end() || it->second.voted) {
    return;  // unknown, or YES already sent — only the coordinator may abort
  }
  const net::NodeId coordinator = it->second.coordinator;
  // Erase before releasing: the WAL-flush callback checks pending_ and must
  // not send a stale YES after this NO.
  pending_.erase(it);
  locks_.ReleaseAll(txn);
  ++local_aborts_;
  transport_->SendReliable(coordinator, kVotePort, std::make_shared<VoteMsg>(txn, false));
}

void TxnReplica::OnDecision(net::NodeId /*coordinator*/, const net::PayloadPtr& payload) {
  const auto* decision = net::PayloadCast<DecisionMsg>(payload);
  assert(decision != nullptr);
  auto it = pending_.find(decision->txn());
  if (it == pending_.end()) {
    return;
  }
  if (decision->commit()) {
    for (const auto& [key, value] : it->second.writes) {
      store_[key] = value;
    }
    std::ostringstream record;
    record << "commit txn=" << decision->txn();
    wal_.Append(record.str(), nullptr);
  }
  locks_.ReleaseAll(decision->txn());
  pending_.erase(it);
}

std::optional<double> TxnReplica::Read(const std::string& key) const {
  auto it = store_.find(key);
  return it == store_.end() ? std::nullopt : std::optional<double>(it->second);
}

// --- TxnCoordinator --------------------------------------------------------------

TxnCoordinator::TxnCoordinator(sim::Simulator* simulator, net::Transport* transport,
                               std::vector<net::NodeId> replicas, sim::Duration prepare_timeout)
    : TxnCoordinator(simulator, transport, std::move(replicas),
                     CoordinatorConfig{prepare_timeout}) {}

TxnCoordinator::TxnCoordinator(sim::Simulator* simulator, net::Transport* transport,
                               std::vector<net::NodeId> replicas,
                               const CoordinatorConfig& config)
    : simulator_(simulator),
      transport_(transport),
      available_(std::move(replicas)),
      config_(config),
      timestamps_(config.id_namespace) {
  transport_->RegisterReceiver(TxnReplica::kVotePort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnVote(src, p);
                               });
}

void TxnCoordinator::WriteMany(std::map<std::string, double> writes, DoneFn done) {
  // One timestamp per LOGICAL transaction, retained across every retry: the
  // prevention policies' no-starvation guarantee is exactly that a restarted
  // transaction keeps its age and so only ever gains priority.
  StartAttempt(std::move(writes), std::move(done), timestamps_.Issue(simulator_->now()), 1);
}

void TxnCoordinator::StartAttempt(std::map<std::string, double> writes, DoneFn done,
                                  uint64_t ts, uint32_t attempt) {
  const uint64_t txn = (config_.id_namespace << 40) | next_txn_++;
  InFlight& flight = in_flight_[txn];
  flight.writes = writes;
  flight.participants = available_;
  flight.done = std::move(done);
  flight.ts = ts;
  flight.attempt = attempt;
  if (flight.participants.empty()) {
    // Every replica has been dropped: there is nobody to prepare at, and
    // retrying cannot repopulate the availability list, so fail the
    // transaction now instead of burning a timeout per attempt.
    flight.attempt = config_.max_attempts;
    simulator_->ScheduleAfter(sim::Duration::Zero(), [this, txn] { Decide(txn, false, {}); });
    return;
  }
  auto prepare = std::make_shared<PrepareMsg>(txn, ts, std::move(writes));
  for (net::NodeId replica : flight.participants) {
    transport_->SendReliable(replica, TxnReplica::kPreparePort, prepare);
  }
  flight.timeout = simulator_->ScheduleAfter(config_.prepare_timeout, [this, txn] {
    auto it = in_flight_.find(txn);
    if (it == in_flight_.end() || it->second.decided) {
      return;
    }
    if (!config_.drop_slow_on_timeout) {
      // A slow vote under contention means lock waits, not a dead replica:
      // abort the attempt (and retry per config) instead of shrinking the
      // availability list.
      Decide(txn, false, {});
      return;
    }
    // Write-all-available: replicas that did not answer in time are dropped
    // from the availability list and the write commits with the rest —
    // unless someone actually voted NO.
    std::vector<net::NodeId> slow;
    bool any_no = false;
    for (net::NodeId replica : it->second.participants) {
      auto vote = it->second.votes.find(replica);
      if (vote == it->second.votes.end()) {
        slow.push_back(replica);
      } else if (!vote->second) {
        any_no = true;
      }
    }
    Decide(txn, !any_no && slow.size() < it->second.participants.size(), slow);
  });
}

bool TxnCoordinator::AbortInFlight(uint64_t txn) {
  auto it = in_flight_.find(txn);
  if (it == in_flight_.end() || it->second.decided) {
    return false;
  }
  Decide(txn, false, {});
  return true;
}

void TxnCoordinator::OnVote(net::NodeId replica, const net::PayloadPtr& payload) {
  const auto* vote = net::PayloadCast<VoteMsg>(payload);
  assert(vote != nullptr);
  auto it = in_flight_.find(vote->txn());
  if (it == in_flight_.end() || it->second.decided) {
    return;
  }
  it->second.votes[replica] = vote->yes();
  if (!vote->yes()) {
    // One NO settles the outcome. Deciding now matters under contention:
    // the replicas that have not voted yet may be queued behind this very
    // transaction's locks, and the abort decision is what frees them.
    Decide(vote->txn(), false, {});
    return;
  }
  MaybeDecide(vote->txn());
}

void TxnCoordinator::MaybeDecide(uint64_t txn) {
  InFlight& flight = in_flight_.at(txn);
  bool all_yes = true;
  for (net::NodeId replica : flight.participants) {
    auto vote = flight.votes.find(replica);
    if (vote == flight.votes.end()) {
      return;  // still waiting (timeout handles stragglers)
    }
    if (!vote->second) {
      all_yes = false;
    }
  }
  Decide(txn, all_yes, {});
}

void TxnCoordinator::Decide(uint64_t txn, bool commit, const std::vector<net::NodeId>& slow) {
  auto it = in_flight_.find(txn);
  if (it == in_flight_.end() || it->second.decided) {
    return;
  }
  InFlight& flight = it->second;
  flight.decided = true;
  simulator_->Cancel(flight.timeout);
  for (net::NodeId dropped : slow) {
    available_.erase(std::remove(available_.begin(), available_.end(), dropped),
                     available_.end());
    ++stats_.replicas_dropped;
  }
  auto decision = std::make_shared<DecisionMsg>(txn, commit);
  for (net::NodeId replica : flight.participants) {
    // Dropped replicas get the decision too (best effort); they are simply
    // no longer counted on.
    transport_->SendReliable(replica, TxnReplica::kDecisionPort, decision);
  }
  if (commit) {
    ++stats_.committed;
    if (commit_observer_) {
      commit_observer_(txn, flight.writes, flight.participants);
    }
  } else {
    ++stats_.aborted;
  }
  DoneFn done = std::move(flight.done);
  std::map<std::string, double> writes = std::move(flight.writes);
  const uint64_t ts = flight.ts;
  const uint32_t attempt = flight.attempt;
  in_flight_.erase(it);
  if (!commit && attempt < config_.max_attempts) {
    ++stats_.retries;
    // Deterministic backoff, linear in the attempt number; the retry keeps
    // the original timestamp but gets a fresh uid (replicas may still hold
    // late state under the old one).
    simulator_->ScheduleAfter(
        config_.retry_backoff * static_cast<int64_t>(attempt),
        [this, writes = std::move(writes), done = std::move(done), ts, attempt]() mutable {
          StartAttempt(std::move(writes), std::move(done), ts, attempt + 1);
        });
    return;
  }
  if (!commit) {
    ++stats_.failed;
  }
  if (done) {
    done(commit);
  }
}

// --- CatocsReplica ---------------------------------------------------------------

CatocsReplica::CatocsReplica(sim::Simulator* simulator, net::Transport* transport,
                             catocs::GroupMember* member)
    : simulator_(simulator), transport_(transport), member_(member) {
  member_->SetDeliveryHandler([this](const catocs::Delivery& d) { OnDeliver(d); });
}

namespace {

// WAL record format for a replicated update: "<key>=<hexfloat value>".
// Hexfloat round-trips doubles exactly, so replay is bit-faithful.
std::string EncodeWalUpdate(const std::string& key, double value) {
  std::ostringstream out;
  out << key << '=' << std::hexfloat << value;
  return out.str();
}

}  // namespace

void CatocsReplica::OnDeliver(const catocs::Delivery& delivery) {
  if (const auto* update = net::PayloadCast<UpdateMsg>(delivery.payload())) {
    store_[update->key()] = update->value();
    ++updates_applied_;
    if (wal_ != nullptr) {
      wal_->Append(EncodeWalUpdate(update->key(), update->value()), nullptr);
    }
    if (update->primary() != transport_->node()) {
      transport_->SendReliable(update->primary(), kAckPort,
                               std::make_shared<UpdateAckMsg>(update->update_id()));
    }
  }
  if (observer_) {
    observer_(delivery);
  }
}

std::optional<double> CatocsReplica::Read(const std::string& key) const {
  auto it = store_.find(key);
  return it == store_.end() ? std::nullopt : std::optional<double>(it->second);
}

uint64_t CatocsReplica::RecoverFromWal(const WriteAheadLog& wal, sim::TimePoint crash_time) {
  store_.clear();
  uint64_t replayed = 0;
  for (const LogRecord& record : wal.DurableRecordsAt(crash_time)) {
    // Keys never contain '='; split on the last one to stay robust anyway.
    const size_t eq = record.payload.rfind('=');
    if (eq == std::string::npos) {
      continue;
    }
    store_[record.payload.substr(0, eq)] = std::strtod(record.payload.c_str() + eq + 1, nullptr);
    ++replayed;
  }
  return replayed;
}

// --- CatocsPrimary ---------------------------------------------------------------

CatocsPrimary::CatocsPrimary(sim::Simulator* simulator, net::Transport* transport,
                             catocs::GroupMember* member, int write_safety_level)
    : simulator_(simulator),
      transport_(transport),
      member_(member),
      write_safety_level_(write_safety_level) {
  transport_->RegisterReceiver(CatocsReplica::kAckPort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnAck(src, p);
                               });
}

void CatocsPrimary::Write(const std::string& key, double value, DoneFn done) {
  const uint64_t update_id = next_update_++;
  ++stats_.writes_issued;
  member_->CausalSend(std::make_shared<UpdateMsg>(update_id, transport_->node(), key, value));
  if (write_safety_level_ <= 0) {
    // Fully asynchronous: report success immediately — durability be damned.
    ++stats_.writes_acked;
    if (done) {
      done();
    }
    return;
  }
  awaiting_[update_id] = AwaitingAcks{write_safety_level_, std::move(done)};
}

void CatocsPrimary::OnAck(net::NodeId /*replica*/, const net::PayloadPtr& payload) {
  const auto* ack = net::PayloadCast<UpdateAckMsg>(payload);
  assert(ack != nullptr);
  auto it = awaiting_.find(ack->update_id());
  if (it == awaiting_.end()) {
    return;
  }
  if (--it->second.remaining <= 0) {
    ++stats_.writes_acked;
    DoneFn done = std::move(it->second.done);
    awaiting_.erase(it);
    if (done) {
      done();
    }
  }
}

std::vector<std::string> DivergentKeys(const std::map<std::string, double>& a,
                                       const std::map<std::string, double>& b) {
  std::vector<std::string> out;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      out.push_back(ia->first);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      out.push_back(ib->first);
      ++ib;
    } else {
      if (ia->second != ib->second) {
        out.push_back(ia->first);
      }
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace txn
