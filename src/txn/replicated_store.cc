#include "src/txn/replicated_store.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace txn {

namespace {

class PrepareMsg : public net::Payload {
 public:
  PrepareMsg(uint64_t txn, std::map<std::string, double> writes)
      : txn_(txn), writes_(std::move(writes)) {}
  size_t SizeBytes() const override { return 8 + writes_.size() * 24; }
  std::string Describe() const override { return "prepare"; }
  uint64_t txn() const { return txn_; }
  const std::map<std::string, double>& writes() const { return writes_; }

 private:
  uint64_t txn_;
  std::map<std::string, double> writes_;
};

class VoteMsg : public net::Payload {
 public:
  VoteMsg(uint64_t txn, bool yes) : txn_(txn), yes_(yes) {}
  size_t SizeBytes() const override { return 9; }
  std::string Describe() const override { return yes_ ? "vote-yes" : "vote-no"; }
  uint64_t txn() const { return txn_; }
  bool yes() const { return yes_; }

 private:
  uint64_t txn_;
  bool yes_;
};

class DecisionMsg : public net::Payload {
 public:
  DecisionMsg(uint64_t txn, bool commit) : txn_(txn), commit_(commit) {}
  size_t SizeBytes() const override { return 9; }
  std::string Describe() const override { return commit_ ? "commit" : "abort"; }
  uint64_t txn() const { return txn_; }
  bool commit() const { return commit_; }

 private:
  uint64_t txn_;
  bool commit_;
};

class UpdateMsg : public net::Payload {
 public:
  UpdateMsg(uint64_t update_id, net::NodeId primary, std::string key, double value)
      : update_id_(update_id), primary_(primary), key_(std::move(key)), value_(value) {}
  size_t SizeBytes() const override { return 20 + key_.size(); }
  std::string Describe() const override { return "update:" + key_; }
  uint64_t update_id() const { return update_id_; }
  net::NodeId primary() const { return primary_; }
  const std::string& key() const { return key_; }
  double value() const { return value_; }

 private:
  uint64_t update_id_;
  net::NodeId primary_;
  std::string key_;
  double value_;
};

class UpdateAckMsg : public net::Payload {
 public:
  explicit UpdateAckMsg(uint64_t update_id) : update_id_(update_id) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "update-ack"; }
  uint64_t update_id() const { return update_id_; }

 private:
  uint64_t update_id_;
};

}  // namespace

// --- TxnReplica ----------------------------------------------------------------

TxnReplica::TxnReplica(sim::Simulator* simulator, net::Transport* transport,
                       sim::Duration wal_flush_delay)
    : simulator_(simulator), transport_(transport), wal_(simulator, wal_flush_delay) {
  transport_->RegisterReceiver(kPreparePort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnPrepare(src, p);
                               });
  transport_->RegisterReceiver(kDecisionPort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnDecision(src, p);
                               });
}

void TxnReplica::OnPrepare(net::NodeId coordinator, const net::PayloadPtr& payload) {
  const auto* prepare = net::PayloadCast<PrepareMsg>(payload);
  assert(prepare != nullptr);
  ++prepares_seen_;
  const uint64_t txn = prepare->txn();

  // State-level veto: the replica may refuse (limitation 2 in action — a
  // receiver can reject an operation regardless of delivery order).
  if (vote_hook_) {
    for (const auto& [key, value] : prepare->writes()) {
      if (!vote_hook_(key)) {
        transport_->SendReliable(coordinator, kVotePort, std::make_shared<VoteMsg>(txn, false));
        return;
      }
    }
  }

  PendingTxn& pending = pending_[txn];
  pending.writes = prepare->writes();

  // Acquire exclusive locks on all keys, then force the WAL record, then
  // vote YES. Locks are normally uncontended (one coordinator); contention
  // simply delays the vote.
  auto continue_after_locks = [this, txn, coordinator] {
    std::ostringstream record;
    record << "prepare txn=" << txn;
    wal_.Append(record.str(), [this, txn, coordinator] {
      if (!pending_.count(txn)) {
        return;  // already decided (aborted) before the flush finished
      }
      transport_->SendReliable(coordinator, kVotePort, std::make_shared<VoteMsg>(txn, true));
    });
  };
  // Count locks to acquire; grant callback fires when the last is granted.
  auto remaining = std::make_shared<size_t>(pending.writes.size());
  bool all_immediate = true;
  for (const auto& [key, value] : pending.writes) {
    const bool granted = locks_.Acquire(txn, key, LockMode::kExclusive,
                                        [remaining, continue_after_locks]() mutable {
                                          if (--*remaining == 0) {
                                            continue_after_locks();
                                          }
                                        });
    if (granted) {
      if (--*remaining == 0 && all_immediate) {
        continue_after_locks();
      }
    } else {
      all_immediate = false;
    }
  }
  if (pending.writes.empty()) {
    continue_after_locks();
  }
}

void TxnReplica::OnDecision(net::NodeId /*coordinator*/, const net::PayloadPtr& payload) {
  const auto* decision = net::PayloadCast<DecisionMsg>(payload);
  assert(decision != nullptr);
  auto it = pending_.find(decision->txn());
  if (it == pending_.end()) {
    return;
  }
  if (decision->commit()) {
    for (const auto& [key, value] : it->second.writes) {
      store_[key] = value;
    }
    std::ostringstream record;
    record << "commit txn=" << decision->txn();
    wal_.Append(record.str(), nullptr);
  }
  locks_.ReleaseAll(decision->txn());
  pending_.erase(it);
}

std::optional<double> TxnReplica::Read(const std::string& key) const {
  auto it = store_.find(key);
  return it == store_.end() ? std::nullopt : std::optional<double>(it->second);
}

// --- TxnCoordinator --------------------------------------------------------------

TxnCoordinator::TxnCoordinator(sim::Simulator* simulator, net::Transport* transport,
                               std::vector<net::NodeId> replicas, sim::Duration prepare_timeout)
    : simulator_(simulator),
      transport_(transport),
      available_(std::move(replicas)),
      prepare_timeout_(prepare_timeout) {
  transport_->RegisterReceiver(TxnReplica::kVotePort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnVote(src, p);
                               });
}

void TxnCoordinator::WriteMany(std::map<std::string, double> writes, DoneFn done) {
  const uint64_t txn = next_txn_++;
  InFlight& flight = in_flight_[txn];
  flight.writes = writes;
  flight.participants = available_;
  flight.done = std::move(done);
  auto prepare = std::make_shared<PrepareMsg>(txn, std::move(writes));
  for (net::NodeId replica : flight.participants) {
    transport_->SendReliable(replica, TxnReplica::kPreparePort, prepare);
  }
  flight.timeout = simulator_->ScheduleAfter(prepare_timeout_, [this, txn] {
    auto it = in_flight_.find(txn);
    if (it == in_flight_.end() || it->second.decided) {
      return;
    }
    // Write-all-available: replicas that did not answer in time are dropped
    // from the availability list and the write commits with the rest —
    // unless someone actually voted NO.
    std::vector<net::NodeId> slow;
    bool any_no = false;
    for (net::NodeId replica : it->second.participants) {
      auto vote = it->second.votes.find(replica);
      if (vote == it->second.votes.end()) {
        slow.push_back(replica);
      } else if (!vote->second) {
        any_no = true;
      }
    }
    Decide(txn, !any_no && slow.size() < it->second.participants.size(), slow);
  });
}

void TxnCoordinator::OnVote(net::NodeId replica, const net::PayloadPtr& payload) {
  const auto* vote = net::PayloadCast<VoteMsg>(payload);
  assert(vote != nullptr);
  auto it = in_flight_.find(vote->txn());
  if (it == in_flight_.end() || it->second.decided) {
    return;
  }
  it->second.votes[replica] = vote->yes();
  MaybeDecide(vote->txn());
}

void TxnCoordinator::MaybeDecide(uint64_t txn) {
  InFlight& flight = in_flight_.at(txn);
  bool all_yes = true;
  for (net::NodeId replica : flight.participants) {
    auto vote = flight.votes.find(replica);
    if (vote == flight.votes.end()) {
      return;  // still waiting (timeout handles stragglers)
    }
    if (!vote->second) {
      all_yes = false;
    }
  }
  Decide(txn, all_yes, {});
}

void TxnCoordinator::Decide(uint64_t txn, bool commit, const std::vector<net::NodeId>& slow) {
  auto it = in_flight_.find(txn);
  if (it == in_flight_.end() || it->second.decided) {
    return;
  }
  InFlight& flight = it->second;
  flight.decided = true;
  simulator_->Cancel(flight.timeout);
  for (net::NodeId dropped : slow) {
    available_.erase(std::remove(available_.begin(), available_.end(), dropped),
                     available_.end());
    ++stats_.replicas_dropped;
  }
  auto decision = std::make_shared<DecisionMsg>(txn, commit);
  for (net::NodeId replica : flight.participants) {
    // Dropped replicas get the decision too (best effort); they are simply
    // no longer counted on.
    transport_->SendReliable(replica, TxnReplica::kDecisionPort, decision);
  }
  if (commit) {
    ++stats_.committed;
  } else {
    ++stats_.aborted;
  }
  DoneFn done = std::move(flight.done);
  in_flight_.erase(it);
  if (done) {
    done(commit);
  }
}

// --- CatocsReplica ---------------------------------------------------------------

CatocsReplica::CatocsReplica(sim::Simulator* simulator, net::Transport* transport,
                             catocs::GroupMember* member)
    : simulator_(simulator), transport_(transport), member_(member) {
  member_->SetDeliveryHandler([this](const catocs::Delivery& d) { OnDeliver(d); });
}

namespace {

// WAL record format for a replicated update: "<key>=<hexfloat value>".
// Hexfloat round-trips doubles exactly, so replay is bit-faithful.
std::string EncodeWalUpdate(const std::string& key, double value) {
  std::ostringstream out;
  out << key << '=' << std::hexfloat << value;
  return out.str();
}

}  // namespace

void CatocsReplica::OnDeliver(const catocs::Delivery& delivery) {
  if (const auto* update = net::PayloadCast<UpdateMsg>(delivery.payload())) {
    store_[update->key()] = update->value();
    ++updates_applied_;
    if (wal_ != nullptr) {
      wal_->Append(EncodeWalUpdate(update->key(), update->value()), nullptr);
    }
    if (update->primary() != transport_->node()) {
      transport_->SendReliable(update->primary(), kAckPort,
                               std::make_shared<UpdateAckMsg>(update->update_id()));
    }
  }
  if (observer_) {
    observer_(delivery);
  }
}

std::optional<double> CatocsReplica::Read(const std::string& key) const {
  auto it = store_.find(key);
  return it == store_.end() ? std::nullopt : std::optional<double>(it->second);
}

uint64_t CatocsReplica::RecoverFromWal(const WriteAheadLog& wal, sim::TimePoint crash_time) {
  store_.clear();
  uint64_t replayed = 0;
  for (const LogRecord& record : wal.DurableRecordsAt(crash_time)) {
    // Keys never contain '='; split on the last one to stay robust anyway.
    const size_t eq = record.payload.rfind('=');
    if (eq == std::string::npos) {
      continue;
    }
    store_[record.payload.substr(0, eq)] = std::strtod(record.payload.c_str() + eq + 1, nullptr);
    ++replayed;
  }
  return replayed;
}

// --- CatocsPrimary ---------------------------------------------------------------

CatocsPrimary::CatocsPrimary(sim::Simulator* simulator, net::Transport* transport,
                             catocs::GroupMember* member, int write_safety_level)
    : simulator_(simulator),
      transport_(transport),
      member_(member),
      write_safety_level_(write_safety_level) {
  transport_->RegisterReceiver(CatocsReplica::kAckPort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnAck(src, p);
                               });
}

void CatocsPrimary::Write(const std::string& key, double value, DoneFn done) {
  const uint64_t update_id = next_update_++;
  ++stats_.writes_issued;
  member_->CausalSend(std::make_shared<UpdateMsg>(update_id, transport_->node(), key, value));
  if (write_safety_level_ <= 0) {
    // Fully asynchronous: report success immediately — durability be damned.
    ++stats_.writes_acked;
    if (done) {
      done();
    }
    return;
  }
  awaiting_[update_id] = AwaitingAcks{write_safety_level_, std::move(done)};
}

void CatocsPrimary::OnAck(net::NodeId /*replica*/, const net::PayloadPtr& payload) {
  const auto* ack = net::PayloadCast<UpdateAckMsg>(payload);
  assert(ack != nullptr);
  auto it = awaiting_.find(ack->update_id());
  if (it == awaiting_.end()) {
    return;
  }
  if (--it->second.remaining <= 0) {
    ++stats_.writes_acked;
    DoneFn done = std::move(it->second.done);
    awaiting_.erase(it);
    if (done) {
      done();
    }
  }
}

std::vector<std::string> DivergentKeys(const std::map<std::string, double>& a,
                                       const std::map<std::string, double>& b) {
  std::vector<std::string> out;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      out.push_back(ia->first);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      out.push_back(ib->first);
      ++ib;
    } else {
      if (ia->second != ib->second) {
        out.push_back(ia->first);
      }
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace txn
