#include "src/txn/wait_for_graph.h"

#include <algorithm>

namespace txn {

void WaitForGraph::AddEdge(uint64_t waiter, uint64_t holder) {
  if (waiter != holder) {
    out_[waiter].insert(holder);
    out_.try_emplace(holder);
  }
}

void WaitForGraph::RemoveEdge(uint64_t waiter, uint64_t holder) {
  auto it = out_.find(waiter);
  if (it != out_.end()) {
    it->second.erase(holder);
  }
}

void WaitForGraph::RemoveNode(uint64_t node) {
  out_.erase(node);
  for (auto& [n, targets] : out_) {
    targets.erase(node);
  }
}

void WaitForGraph::ReplaceOutEdges(uint64_t waiter, const std::vector<uint64_t>& holders) {
  auto& targets = out_[waiter];
  targets.clear();
  for (uint64_t holder : holders) {
    if (holder != waiter) {
      targets.insert(holder);
      out_.try_emplace(holder);
    }
  }
}

void WaitForGraph::Clear() { out_.clear(); }

bool WaitForGraph::HasEdge(uint64_t waiter, uint64_t holder) const {
  auto it = out_.find(waiter);
  return it != out_.end() && it->second.count(holder) > 0;
}

size_t WaitForGraph::edge_count() const {
  size_t count = 0;
  for (const auto& [node, targets] : out_) {
    count += targets.size();
  }
  return count;
}

std::optional<std::vector<uint64_t>> WaitForGraph::FindCycle() const {
  enum class Color { kWhite, kGray, kBlack };
  std::map<uint64_t, Color> color;
  for (const auto& [node, targets] : out_) {
    color[node] = Color::kWhite;
  }
  std::vector<uint64_t> path;

  // Iterative DFS with an explicit stack of (node, next-neighbor iterator).
  for (const auto& [start, unused] : out_) {
    if (color[start] != Color::kWhite) {
      continue;
    }
    std::vector<std::pair<uint64_t, std::set<uint64_t>::const_iterator>> stack;
    color[start] = Color::kGray;
    path.push_back(start);
    stack.emplace_back(start, out_.at(start).begin());
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next == out_.at(node).end()) {
        color[node] = Color::kBlack;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const uint64_t target = *next;
      ++next;
      if (color[target] == Color::kGray) {
        // Found a cycle: extract the path suffix starting at `target`.
        auto cycle_start = std::find(path.begin(), path.end(), target);
        return std::vector<uint64_t>(cycle_start, path.end());
      }
      if (color[target] == Color::kWhite) {
        color[target] = Color::kGray;
        path.push_back(target);
        stack.emplace_back(target, out_.at(target).begin());
      }
    }
  }
  return std::nullopt;
}

}  // namespace txn
