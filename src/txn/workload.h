// DBx1000-style contention workload generator (after SNIPPETS 1, dl_detect.h
// benchmarks): Zipfian hot keys, a long/short transaction mix, and a
// read/write ratio knob. Shared by the CC tests and bench_e22_contention so
// both sides of a policy comparison see byte-identical access sequences.
//
// Determinism: all draws go through sim::Rng, so a (seed, config) pair
// produces the same transaction stream on every platform — policies are
// compared on identical workloads, and chaos runs replay exactly.

#ifndef REPRO_SRC_TXN_WORKLOAD_H_
#define REPRO_SRC_TXN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rng.h"

namespace txn {

struct WorkloadConfig {
  uint64_t num_keys = 64;
  // Zipfian skew: 0 = uniform; 0.8 ≈ moderate; 1.2 = heavy hot-key traffic
  // (a handful of keys absorb most accesses). Standard DBx1000/YCSB theta.
  double zipf_theta = 0.0;
  // Probability that an individual operation is a read (shared lock).
  double read_fraction = 0.5;
  // Fraction of transactions that are "long" (touch long_ops keys); the
  // rest touch short_ops. Long transactions hold locks across more acquires
  // and are the main deadlock/wound fodder.
  double long_txn_fraction = 0.2;
  uint32_t short_ops = 2;
  uint32_t long_ops = 8;
};

struct Op {
  std::string key;
  bool is_write = false;
};

struct TxnSpec {
  std::vector<Op> ops;
  bool is_long = false;

  // Keys this transaction writes (deduplicated, generation order) — the
  // write set handed to TxnCoordinator::WriteMany.
  std::vector<std::string> WriteKeys() const;
};

// Draws Zipf(theta)-distributed keys over [0, num_keys) using the standard
// Gray et al. zeta/eta rejection-free formula (the one DBx1000 uses), then
// assembles per-transaction op lists. Keys within one transaction are
// distinct (duplicates redrawn) and sorted ascending — sorted acquisition is
// the usual benchmark convention and keeps deadlocks coming from the
// S/X-upgrade and cross-coordinator interleavings rather than trivial
// reversed-pair orderings. Set sort_keys=false to allow reversed orders (the
// detect-mode deadlock stressor).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& config, uint64_t seed, bool sort_keys = true);

  TxnSpec NextTxn();

  // The underlying key universe, "k<index>" zero-padded for stable ordering.
  std::string KeyName(uint64_t index) const;

  const WorkloadConfig& config() const { return config_; }

 private:
  uint64_t ZipfDraw();

  WorkloadConfig config_;
  sim::Rng rng_;
  bool sort_keys_;
  // Precomputed constants for the Zipf draw.
  double zeta_n_ = 0.0;    // zeta(num_keys, theta)
  double zeta_2_ = 0.0;    // zeta(2, theta)
  double alpha_ = 0.0;
  double eta_ = 0.0;
  int key_digits_ = 1;
};

}  // namespace txn

#endif  // REPRO_SRC_TXN_WORKLOAD_H_
