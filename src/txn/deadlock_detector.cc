#include "src/txn/deadlock_detector.h"

#include <cassert>
#include <utility>

namespace txn {

namespace {

class ReportMsg : public net::Payload {
 public:
  ReportMsg(uint64_t seq, std::vector<WaitEdge> edges) : seq_(seq), edges_(std::move(edges)) {}
  size_t SizeBytes() const override { return 8 + edges_.size() * 16; }
  std::string Describe() const override { return "waitfor-report"; }
  uint64_t seq() const { return seq_; }
  const std::vector<WaitEdge>& edges() const { return edges_; }

 private:
  uint64_t seq_;
  std::vector<WaitEdge> edges_;
};

}  // namespace

WaitForReporter::WaitForReporter(sim::Simulator* simulator, net::Transport* transport,
                                 std::vector<net::NodeId> monitors, sim::Duration period,
                                 std::function<std::vector<WaitEdge>()> edge_source)
    : simulator_(simulator),
      transport_(transport),
      monitors_(std::move(monitors)),
      edge_source_(std::move(edge_source)) {
  timer_ = std::make_unique<sim::PeriodicTimer>(simulator_, period, [this] { ReportNow(); });
}

void WaitForReporter::Start() { timer_->Start(sim::Duration::Zero()); }

void WaitForReporter::Stop() { timer_->Stop(); }

void WaitForReporter::ReportNow() {
  auto report = std::make_shared<ReportMsg>(next_seq_++, edge_source_());
  for (net::NodeId monitor : monitors_) {
    ++reports_sent_;
    // Unreliable is fine: the per-process sequence number lets monitors drop
    // stale reports, and the next period repairs any loss.
    transport_->SendUnreliable(monitor, kReportPort, report);
  }
}

DeadlockMonitor::DeadlockMonitor(sim::Simulator* simulator, net::Transport* transport)
    : simulator_(simulator), transport_(transport) {
  transport_->RegisterReceiver(WaitForReporter::kReportPort,
                               [this](net::NodeId src, uint32_t, const net::PayloadPtr& p) {
                                 OnReport(src, p);
                               });
}

void DeadlockMonitor::OnReport(net::NodeId reporter, const net::PayloadPtr& payload) {
  const auto* report = net::PayloadCast<ReportMsg>(payload);
  assert(report != nullptr);
  ++reports_received_;
  auto& [seq, edges] = latest_[reporter];
  if (report->seq() <= seq) {
    return;  // stale or duplicate
  }
  seq = report->seq();
  edges = report->edges();
  Rebuild();
  if (auto cycle = graph_.FindCycle()) {
    ++detections_;
    if (handler_) {
      handler_(*cycle);
    }
  }
}

void DeadlockMonitor::Rebuild() {
  graph_.Clear();
  for (const auto& [reporter, state] : latest_) {
    for (const auto& [waiter, holder] : state.second) {
      graph_.AddEdge(waiter, holder);
    }
  }
}

}  // namespace txn
