// Two-phase-locking lock manager (§4.3): shared/exclusive locks with wait
// queues and shared→exclusive upgrade. The paper's point is that once an
// application needs 2PL for serializability, the lock order — not message
// order — dictates correctness, so CATOCS buys nothing. The manager exports
// its wait-for edges so deadlock detection (§4.2, Appendix 9.2) can run on
// top, and — behind the DeadlockPolicy seam (txn_policy.h, DESIGN §12) —
// can instead PREVENT deadlock with wait-die or 2PLSF-style wound-wait.
//
// The API is callback-based to fit the event-driven simulator: AcquireEx
// either grants synchronously (kGranted), queues the request and invokes the
// callback when the lock is granted later (kQueued), or — under a
// prevention policy — refuses it outright (kAborted: the requester must
// ReleaseAll and restart with its retained timestamp).
//
// Upgrade requests take priority over ordinary waiters: a sole-holder
// upgrade is granted immediately in AcquireEx, and a pending upgrade is
// queued at the FRONT of the wait queue and re-checked by GrantFromQueue
// before any front-of-queue grant. (The seed queued upgrades at the back,
// where the front-only grant scan could never reach them past an
// incompatible waiter — T1 wedged forever while holding the lock T3 was
// queued on, invisible to the deadlock monitor.)
//
// Queue discipline per policy:
//  - kDetect: FIFO (seed behavior).
//  - kWaitDie: sorted youngest-first. Every waiter is older than every
//    incompatible holder (requesters younger than a conflicting holder die),
//    and granting the youngest waiter first preserves that invariant — all
//    wait edges point old→young, so no cycle can ever form, and each grant
//    makes the holder set strictly older, so the oldest waiter is reached in
//    finitely many grants.
//  - kStarvationFree: sorted oldest-first (the mirror image): every waiter
//    is younger than every holder (older requesters wound younger holders
//    instead of waiting), so wait edges point young→old at every replica
//    and no union of local graphs can form a cycle. A younger holder that
//    is PINNED (prepared in 2PC, YES vote sent) can be neither wounded nor
//    waited on — waiting on it would add an old→young edge, and two
//    transactions each pinned at one replica while waiting at the other
//    deadlock across replicas with no local graph showing a cycle — so the
//    older requester dies and retries with its retained timestamp, bounded
//    by the pinned holder's imminent decision.

#ifndef REPRO_SRC_TXN_LOCK_MANAGER_H_
#define REPRO_SRC_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/txn/txn_policy.h"

namespace txn {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

enum class AcquireResult { kGranted, kQueued, kAborted };

struct LockStats {
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t upgrades = 0;
  uint64_t releases = 0;
  uint64_t wait_die_aborts = 0;  // requester died (wait-die age rule, or
                                 // wound-wait against a pinned holder)
  uint64_t wounds = 0;           // holder wounded (starvation-free)
};

class LockManager {
 public:
  using GrantFn = std::function<void()>;
  using AbortFn = std::function<void(TxnId)>;

  LockManager() = default;
  explicit LockManager(DeadlockPolicy policy) : policy_(policy) {}

  DeadlockPolicy policy() const { return policy_; }

  // Registers the transaction's timestamp (age) before its first acquire.
  // Required for the prevention policies; a restarted transaction MUST
  // re-register its original timestamp. Without registration the txn id
  // doubles as the timestamp (ids are issue-ordered in every caller).
  void BeginTxn(TxnId txn, uint64_t timestamp);

  // Called when a transaction is wounded (kStarvationFree): its locks are
  // already released when the handler runs; the handler's job is the
  // transaction-level abort (vote NO, schedule the restart). Wait-die deaths
  // are reported synchronously via kAborted instead.
  void SetAbortHandler(AbortFn handler) { abort_handler_ = std::move(handler); }

  // Marks a transaction non-woundable (it voted YES in 2PC and may no longer
  // abort unilaterally). Older requesters then wait for it; since a pinned
  // transaction never waits on locks itself, it cannot extend a cycle.
  void Pin(TxnId txn) { pinned_.insert(txn); }
  bool IsPinned(TxnId txn) const { return pinned_.count(txn) != 0; }

  // Requests a lock. kGranted: the lock is held on return (on_grant is NOT
  // called). kQueued: on_grant fires when granted — possibly synchronously
  // before AcquireEx returns, when a wound frees the resource. kAborted:
  // the requester lost a timestamp fight (wait-die); it still holds whatever
  // it held before and must ReleaseAll + restart. Re-acquiring a mode
  // already held grants immediately; holding shared and requesting exclusive
  // is an upgrade.
  AcquireResult AcquireEx(TxnId txn, const std::string& resource, LockMode mode,
                          GrantFn on_grant);

  // Seed-compatible wrapper: true iff granted immediately. Under kDetect a
  // request never aborts, so the two-way result is faithful.
  bool Acquire(TxnId txn, const std::string& resource, LockMode mode, GrantFn on_grant) {
    return AcquireEx(txn, resource, mode, std::move(on_grant)) == AcquireResult::kGranted;
  }

  // Releases everything the transaction holds or waits for, granting
  // whatever becomes compatible (2PL: called once, at commit/abort). O(locks
  // held or waited on by txn) via the txn→resources index, not O(total
  // resources in the manager).
  void ReleaseAll(TxnId txn);

  bool Holds(TxnId txn, const std::string& resource, LockMode mode) const;

  // Current wait-for edges (waiter → blocker), the input to deadlock
  // detection. Emits waiter→holder edges AND waiter→queued-ahead-
  // incompatible-waiter edges: a waiter is equally blocked by an
  // incompatible waiter it may not overtake, and a (sole-holder) upgrader's
  // only blocker can be such a waiter — the seed emitted holder edges only,
  // so those stalls produced no cycle at the monitor.
  std::vector<std::pair<TxnId, TxnId>> WaitForEdges() const;

  const LockStats& stats() const { return stats_; }
  size_t locked_resources() const { return resources_.size(); }

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool upgrade;
    GrantFn on_grant;
  };
  struct Resource {
    // Empty => free. Mode is exclusive iff exactly one holder in X.
    std::map<TxnId, LockMode> holders;
    std::deque<Waiter> queue;
  };

  bool Compatible(const Resource& r, TxnId txn, LockMode mode) const;
  static bool Conflicts(LockMode a, LockMode b) {
    return a == LockMode::kExclusive || b == LockMode::kExclusive;
  }
  // Timestamp (age) of a transaction; falls back to the id for unregistered
  // transactions so detect-mode callers need no ceremony.
  uint64_t TsOf(TxnId txn) const;
  void Enqueue(Resource& r, Waiter waiter);
  void GrantFromQueue(const std::string& name, Resource& r);
  void Index(TxnId txn, const std::string& resource) { txn_resources_[txn].insert(resource); }
  // Releases a wounded victim's locks and notifies the abort handler.
  void Wound(TxnId victim);
  void ReleaseAllInternal(TxnId txn);

  DeadlockPolicy policy_ = DeadlockPolicy::kDetect;
  std::map<std::string, Resource> resources_;
  // Every resource a transaction holds or waits on — the ReleaseAll index.
  std::map<TxnId, std::set<std::string>> txn_resources_;
  std::map<TxnId, uint64_t> timestamps_;
  std::set<TxnId> pinned_;
  AbortFn abort_handler_;
  LockStats stats_;
};

}  // namespace txn

#endif  // REPRO_SRC_TXN_LOCK_MANAGER_H_
