// Two-phase-locking lock manager (§4.3): shared/exclusive locks with FIFO
// wait queues and shared→exclusive upgrade. The paper's point is that once
// an application needs 2PL for serializability, the lock order — not message
// order — dictates correctness, so CATOCS buys nothing. The manager exports
// its wait-for edges so deadlock detection (§4.2, Appendix 9.2) can run on
// top.
//
// The API is callback-based to fit the event-driven simulator: Acquire
// either grants synchronously (returns true) or queues the request and
// invokes the callback when the lock is granted later.

#ifndef REPRO_SRC_TXN_LOCK_MANAGER_H_
#define REPRO_SRC_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace txn {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

struct LockStats {
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t upgrades = 0;
  uint64_t releases = 0;
};

class LockManager {
 public:
  using GrantFn = std::function<void()>;

  // Requests a lock. Returns true and grants immediately when compatible;
  // otherwise queues (FIFO) and calls on_grant when granted. Re-acquiring a
  // mode already held grants immediately; holding shared and requesting
  // exclusive is an upgrade.
  bool Acquire(TxnId txn, const std::string& resource, LockMode mode, GrantFn on_grant);

  // Releases everything the transaction holds or waits for, granting
  // whatever becomes compatible (2PL: called once, at commit/abort).
  void ReleaseAll(TxnId txn);

  bool Holds(TxnId txn, const std::string& resource, LockMode mode) const;

  // Current wait-for edges (waiter -> holder), the input to deadlock
  // detection.
  std::vector<std::pair<TxnId, TxnId>> WaitForEdges() const;

  const LockStats& stats() const { return stats_; }
  size_t locked_resources() const { return resources_.size(); }

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    GrantFn on_grant;
  };
  struct Resource {
    // Empty => free. Mode is exclusive iff exactly one holder in X.
    std::map<TxnId, LockMode> holders;
    std::deque<Waiter> queue;
  };

  bool Compatible(const Resource& r, TxnId txn, LockMode mode) const;
  void GrantFromQueue(const std::string& name, Resource& r);

  std::map<std::string, Resource> resources_;
  LockStats stats_;
};

}  // namespace txn

#endif  // REPRO_SRC_TXN_LOCK_MANAGER_H_
