// State-level distributed deadlock detection (Appendix 9.2's alternative).
//
// Each process periodically multicasts its *local* augmented wait-for edges
// (instance-id granularity, e.g. A15 -> B37) to a set of monitor processes,
// with a conventional per-process sequence number so a monitor applies each
// process's reports in order and ignores stale ones. Monitors overwrite that
// process's previous edge set and run cycle detection. Because 2PL wait-for
// deadlock is a locally stable property, no consistent cut — and no causal
// multicast of every RPC event — is needed: every cycle found is a real
// deadlock.

#ifndef REPRO_SRC_TXN_DEADLOCK_DETECTOR_H_
#define REPRO_SRC_TXN_DEADLOCK_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/net/transport.h"
#include "src/sim/simulator.h"
#include "src/txn/wait_for_graph.h"

namespace txn {

using WaitEdge = std::pair<uint64_t, uint64_t>;  // waiter instance -> holder instance

class WaitForReporter {
 public:
  static constexpr uint32_t kReportPort = 0x0D10CC01;

  // edge_source returns the process's current local wait-for edges.
  WaitForReporter(sim::Simulator* simulator, net::Transport* transport,
                  std::vector<net::NodeId> monitors, sim::Duration period,
                  std::function<std::vector<WaitEdge>()> edge_source);

  void Start();
  void Stop();
  // Pushes a report immediately (e.g. right after blocking).
  void ReportNow();

  uint64_t reports_sent() const { return reports_sent_; }

 private:
  sim::Simulator* simulator_;
  net::Transport* transport_;
  std::vector<net::NodeId> monitors_;
  std::function<std::vector<WaitEdge>()> edge_source_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
  uint64_t next_seq_ = 1;
  uint64_t reports_sent_ = 0;
};

class DeadlockMonitor {
 public:
  using DeadlockHandler = std::function<void(const std::vector<uint64_t>& cycle)>;

  DeadlockMonitor(sim::Simulator* simulator, net::Transport* transport);

  void SetDeadlockHandler(DeadlockHandler handler) { handler_ = std::move(handler); }

  const WaitForGraph& graph() const { return graph_; }
  uint64_t detections() const { return detections_; }
  uint64_t reports_received() const { return reports_received_; }

 private:
  void OnReport(net::NodeId reporter, const net::PayloadPtr& payload);
  void Rebuild();

  sim::Simulator* simulator_;
  net::Transport* transport_;
  DeadlockHandler handler_;
  WaitForGraph graph_;
  // Last accepted (seq, edges) per reporting process.
  std::map<net::NodeId, std::pair<uint64_t, std::vector<WaitEdge>>> latest_;
  uint64_t detections_ = 0;
  uint64_t reports_received_ = 0;
};

}  // namespace txn

#endif  // REPRO_SRC_TXN_DEADLOCK_DETECTOR_H_
