// Simulated write-ahead log: append costs a flush delay before the record is
// durable. This is what gives the transactional replication design its
// durability edge over CATOCS replication (§4.4): a committed update
// survives any crash, where a cbcast with write-safety level 0 does not.

#ifndef REPRO_SRC_TXN_WAL_H_
#define REPRO_SRC_TXN_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace txn {

struct LogRecord {
  uint64_t lsn = 0;
  std::string payload;
  sim::TimePoint durable_at;
};

class WriteAheadLog {
 public:
  WriteAheadLog(sim::Simulator* simulator, sim::Duration flush_delay)
      : simulator_(simulator), flush_delay_(flush_delay) {}

  // Appends a record; on_durable fires once the (simulated) flush completes.
  // Returns the assigned LSN.
  uint64_t Append(std::string payload, std::function<void()> on_durable);

  // Records that survive a crash at `when` (durable_at <= when).
  std::vector<LogRecord> DurableRecordsAt(sim::TimePoint when) const;

  const std::vector<LogRecord>& records() const { return records_; }
  uint64_t appended() const { return next_lsn_ - 1; }

 private:
  sim::Simulator* simulator_;
  sim::Duration flush_delay_;
  std::vector<LogRecord> records_;
  uint64_t next_lsn_ = 1;
};

}  // namespace txn

#endif  // REPRO_SRC_TXN_WAL_H_
