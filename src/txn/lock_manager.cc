#include "src/txn/lock_manager.h"

#include <cassert>

namespace txn {

void LockManager::BeginTxn(TxnId txn, uint64_t timestamp) { timestamps_[txn] = timestamp; }

uint64_t LockManager::TsOf(TxnId txn) const {
  auto it = timestamps_.find(txn);
  return it != timestamps_.end() ? it->second : txn;
}

bool LockManager::Compatible(const Resource& r, TxnId txn, LockMode mode) const {
  if (r.holders.empty()) {
    return true;
  }
  if (mode == LockMode::kShared) {
    // Compatible unless someone else holds exclusive.
    for (const auto& [holder, held_mode] : r.holders) {
      if (holder != txn && held_mode == LockMode::kExclusive) {
        return false;
      }
    }
    return true;
  }
  // Exclusive: compatible only if we are the sole holder (upgrade) or free.
  return r.holders.size() == 1 && r.holders.begin()->first == txn;
}

AcquireResult LockManager::AcquireEx(TxnId txn, const std::string& resource, LockMode mode,
                                     GrantFn on_grant) {
  Resource& r = resources_[resource];
  auto held = r.holders.find(txn);
  if (held != r.holders.end()) {
    if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
      ++stats_.immediate_grants;
      return AcquireResult::kGranted;  // already sufficient
    }
    // Upgrade request. A sole holder upgrades in place, ahead of any queued
    // waiters: none of them could have been granted while we hold shared, so
    // no grant is being stolen.
    if (Compatible(r, txn, LockMode::kExclusive)) {
      held->second = LockMode::kExclusive;
      ++stats_.upgrades;
      ++stats_.immediate_grants;
      return AcquireResult::kGranted;
    }
    // Other sharers present: the upgrade must wait for them (or, under a
    // prevention policy, settle the conflict by timestamp now).
    std::vector<TxnId> victims;
    const uint64_t ts = TsOf(txn);
    if (policy_ == DeadlockPolicy::kWaitDie) {
      for (const auto& [holder, held_mode] : r.holders) {
        (void)held_mode;
        if (holder != txn && ts > TsOf(holder)) {
          ++stats_.wait_die_aborts;
          return AcquireResult::kAborted;  // younger than a co-sharer: die
        }
      }
    } else if (policy_ == DeadlockPolicy::kStarvationFree) {
      for (const auto& [holder, held_mode] : r.holders) {
        (void)held_mode;
        if (holder == txn || ts >= TsOf(holder)) {
          continue;  // older co-sharer: wait (young→old edge)
        }
        if (IsPinned(holder)) {
          // A younger co-sharer that already voted YES cannot be wounded,
          // and waiting on it would invert the edge direction the global
          // no-deadlock argument rests on — so the upgrader dies instead
          // (see the fresh-request path below for the full argument).
          ++stats_.wait_die_aborts;
          return AcquireResult::kAborted;
        }
        victims.push_back(holder);
      }
    }
    ++stats_.waits;
    Index(txn, resource);
    // Front of the queue, always: every waiter behind is blocked by our
    // shared hold regardless, and GrantFromQueue's upgrade scan must find us.
    r.queue.push_front(Waiter{txn, LockMode::kExclusive, /*upgrade=*/true, std::move(on_grant)});
    // Wounding releases the victims' locks, which re-runs GrantFromQueue on
    // this resource and may complete the upgrade synchronously (the grant
    // callback fires before we return kQueued — documented convention).
    for (TxnId victim : victims) {
      Wound(victim);
    }
    return AcquireResult::kQueued;
  }

  // Fresh request. Decide whether an immediately-compatible request may be
  // granted past the queue; the rule is the policy's fairness contract.
  const bool compatible = Compatible(r, txn, mode);
  bool may_bypass = false;
  if (compatible) {
    switch (policy_) {
      case DeadlockPolicy::kDetect: {
        // Seed rule: FIFO, except shared may join current sharers when no
        // exclusive waiter is queued ahead.
        bool exclusive_waiting = false;
        for (const auto& waiter : r.queue) {
          if (waiter.mode == LockMode::kExclusive) {
            exclusive_waiting = true;
            break;
          }
        }
        may_bypass = r.queue.empty() || (mode == LockMode::kShared && !exclusive_waiting);
        break;
      }
      case DeadlockPolicy::kWaitDie: {
        // Never jump an incompatible waiter: the invariant is that every
        // waiter is older than every conflicting holder, and a joining
        // holder younger than a queued waiter would break it (a later
        // request by that waiter against us could then close a cycle).
        may_bypass = true;
        for (const auto& waiter : r.queue) {
          if (Conflicts(mode, waiter.mode)) {
            may_bypass = false;
            break;
          }
        }
        break;
      }
      case DeadlockPolicy::kStarvationFree: {
        // May jump only YOUNGER incompatible waiters (age outranks queue
        // position; a younger waiter waiting on an older holder is the
        // invariant direction).
        const uint64_t ts = TsOf(txn);
        may_bypass = true;
        for (const auto& waiter : r.queue) {
          if (Conflicts(mode, waiter.mode) && TsOf(waiter.txn) < ts) {
            may_bypass = false;
            break;
          }
        }
        break;
      }
    }
  }
  if (compatible && may_bypass) {
    r.holders[txn] = mode;
    Index(txn, resource);
    ++stats_.immediate_grants;
    return AcquireResult::kGranted;
  }

  std::vector<TxnId> victims;
  const uint64_t ts = TsOf(txn);
  if (policy_ == DeadlockPolicy::kWaitDie) {
    // Die if younger than ANY blocker — conflicting holder or queued
    // incompatible waiter. Every wait edge then points old→young, which is
    // acyclic; and while an old waiter is queued, younger conflicting
    // requesters die instead of crowding ahead of it, so the oldest
    // transaction in the system is never starved.
    for (const auto& [holder, held_mode] : r.holders) {
      if (holder != txn && Conflicts(mode, held_mode) && ts > TsOf(holder)) {
        ++stats_.wait_die_aborts;
        return AcquireResult::kAborted;
      }
    }
    for (const auto& waiter : r.queue) {
      if (Conflicts(mode, waiter.mode) && ts > TsOf(waiter.txn)) {
        ++stats_.wait_die_aborts;
        return AcquireResult::kAborted;
      }
    }
  } else if (policy_ == DeadlockPolicy::kStarvationFree) {
    // Wound every younger conflicting holder that has not voted in 2PC; wait
    // for older ones (a young→old edge, the invariant direction). A younger
    // holder that IS pinned — prepared, YES already sent — can be neither
    // wounded (the replica promised commit) nor waited on: an old→young wait
    // edge here deadlocks ACROSS replicas even though each local graph looks
    // fine (each of two transactions prepared first at one replica, pinned
    // there, and waits at the other — the classic 2PC prepared-state
    // inversion). So the requester dies and retries with its retained
    // timestamp; the pinned holder's decision arrives in bounded time, which
    // bounds the retry. Every wait edge then points young→old at EVERY
    // replica, and no union of such edges can form a cycle.
    for (const auto& [holder, held_mode] : r.holders) {
      if (holder == txn || !Conflicts(mode, held_mode) || ts >= TsOf(holder)) {
        continue;
      }
      if (IsPinned(holder)) {
        ++stats_.wait_die_aborts;
        return AcquireResult::kAborted;
      }
      victims.push_back(holder);
    }
  }
  ++stats_.waits;
  Index(txn, resource);
  Enqueue(r, Waiter{txn, mode, /*upgrade=*/false, std::move(on_grant)});
  // As above: wounds may free the resource and fire our grant callback
  // before AcquireEx returns.
  for (TxnId victim : victims) {
    Wound(victim);
  }
  return AcquireResult::kQueued;
}

void LockManager::Enqueue(Resource& r, Waiter waiter) {
  if (policy_ == DeadlockPolicy::kDetect) {
    r.queue.push_back(std::move(waiter));  // FIFO (seed behavior)
    return;
  }
  // Prevention policies keep the queue timestamp-sorted so front-first
  // granting preserves the waiter/holder age invariant: wait-die grants
  // youngest-first (remaining, older waiters stay older than the new
  // holder), wound-wait oldest-first (remaining, younger waiters stay
  // younger). Upgrade entries stay pinned at the very front either way.
  const uint64_t ts = TsOf(waiter.txn);
  auto it = r.queue.begin();
  if (policy_ == DeadlockPolicy::kWaitDie) {
    while (it != r.queue.end() && (it->upgrade || TsOf(it->txn) >= ts)) {
      ++it;
    }
  } else {
    while (it != r.queue.end() && (it->upgrade || TsOf(it->txn) <= ts)) {
      ++it;
    }
  }
  r.queue.insert(it, std::move(waiter));
}

void LockManager::ReleaseAll(TxnId txn) {
  ++stats_.releases;
  ReleaseAllInternal(txn);
  timestamps_.erase(txn);
  pinned_.erase(txn);
}

void LockManager::ReleaseAllInternal(TxnId txn) {
  auto idx = txn_resources_.find(txn);
  if (idx == txn_resources_.end()) {
    return;
  }
  // Detach the index first: grant callbacks fired below may re-enter the
  // manager (e.g. the granted transaction acquires its next key).
  std::set<std::string> names = std::move(idx->second);
  txn_resources_.erase(idx);
  for (const auto& name : names) {
    auto it = resources_.find(name);
    if (it == resources_.end()) {
      continue;
    }
    Resource& r = it->second;
    r.holders.erase(txn);
    for (auto w = r.queue.begin(); w != r.queue.end();) {
      if (w->txn == txn) {
        w = r.queue.erase(w);
      } else {
        ++w;
      }
    }
    GrantFromQueue(name, r);
    if (r.holders.empty() && r.queue.empty()) {
      resources_.erase(it);
    }
  }
}

void LockManager::Wound(TxnId victim) {
  ++stats_.wounds;
  // Release first, notify second: by the time the abort handler runs (and,
  // say, votes NO / schedules the restart) the victim holds nothing, so a
  // re-entrant ReleaseAll from the handler is a harmless no-op.
  ReleaseAllInternal(victim);
  timestamps_.erase(victim);
  if (abort_handler_) {
    abort_handler_(victim);
  }
}

void LockManager::GrantFromQueue(const std::string& name, Resource& r) {
  (void)name;
  // Pending upgrades first, wherever they sit: an upgrader still holds
  // shared, so nothing incompatible can be granted past it anyway, and a
  // front-only scan would wedge behind an incompatible front waiter (the
  // seed's upgrade-stall bug).
  bool granted_upgrade = true;
  while (granted_upgrade) {
    granted_upgrade = false;
    for (auto it = r.queue.begin(); it != r.queue.end(); ++it) {
      if (!it->upgrade) {
        continue;
      }
      if (!Compatible(r, it->txn, LockMode::kExclusive)) {
        continue;
      }
      r.holders[it->txn] = LockMode::kExclusive;
      ++stats_.upgrades;
      GrantFn grant = std::move(it->on_grant);
      r.queue.erase(it);
      if (grant) {
        grant();
      }
      granted_upgrade = true;
      break;  // iterator invalidated (and state changed): rescan
    }
  }
  // Then grant from the front while compatible (a run of shared requests or
  // one exclusive).
  while (!r.queue.empty()) {
    Waiter& head = r.queue.front();
    auto held = r.holders.find(head.txn);
    const bool is_upgrade = held != r.holders.end() && head.mode == LockMode::kExclusive;
    if (is_upgrade) {
      if (!Compatible(r, head.txn, LockMode::kExclusive)) {
        return;
      }
      held->second = LockMode::kExclusive;
      ++stats_.upgrades;
    } else {
      if (!Compatible(r, head.txn, head.mode)) {
        return;
      }
      r.holders[head.txn] = head.mode;
    }
    GrantFn grant = std::move(head.on_grant);
    r.queue.pop_front();
    if (grant) {
      grant();
    }
  }
}

bool LockManager::Holds(TxnId txn, const std::string& resource, LockMode mode) const {
  auto it = resources_.find(resource);
  if (it == resources_.end()) {
    return false;
  }
  auto held = it->second.holders.find(txn);
  if (held == it->second.holders.end()) {
    return false;
  }
  return mode == LockMode::kShared || held->second == LockMode::kExclusive;
}

std::vector<std::pair<TxnId, TxnId>> LockManager::WaitForEdges() const {
  std::vector<std::pair<TxnId, TxnId>> edges;
  for (const auto& [name, r] : resources_) {
    for (auto w = r.queue.begin(); w != r.queue.end(); ++w) {
      for (const auto& [holder, mode] : r.holders) {
        (void)mode;
        if (holder != w->txn) {
          edges.emplace_back(w->txn, holder);
        }
      }
      // A queued-ahead incompatible waiter blocks us exactly like a holder:
      // we may not overtake it. Without these edges a waiter whose only
      // blocker is another waiter (e.g. an upgrader wedged behind a queued
      // exclusive) produces no cycle at the monitor.
      for (auto ahead = r.queue.begin(); ahead != w; ++ahead) {
        if (ahead->txn != w->txn && Conflicts(w->mode, ahead->mode)) {
          edges.emplace_back(w->txn, ahead->txn);
        }
      }
    }
  }
  return edges;
}

}  // namespace txn
