#include "src/txn/lock_manager.h"

#include <cassert>

namespace txn {

bool LockManager::Compatible(const Resource& r, TxnId txn, LockMode mode) const {
  if (r.holders.empty()) {
    return true;
  }
  if (mode == LockMode::kShared) {
    // Compatible unless someone else holds exclusive.
    for (const auto& [holder, held_mode] : r.holders) {
      if (holder != txn && held_mode == LockMode::kExclusive) {
        return false;
      }
    }
    return true;
  }
  // Exclusive: compatible only if we are the sole holder (upgrade) or free.
  return r.holders.size() == 1 && r.holders.begin()->first == txn;
}

bool LockManager::Acquire(TxnId txn, const std::string& resource, LockMode mode,
                          GrantFn on_grant) {
  Resource& r = resources_[resource];
  auto held = r.holders.find(txn);
  if (held != r.holders.end()) {
    if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
      ++stats_.immediate_grants;
      return true;  // already sufficient
    }
    // Upgrade request.
    if (Compatible(r, txn, LockMode::kExclusive)) {
      held->second = LockMode::kExclusive;
      ++stats_.upgrades;
      ++stats_.immediate_grants;
      return true;
    }
    ++stats_.waits;
    r.queue.push_back(Waiter{txn, mode, std::move(on_grant)});
    return false;
  }
  // FIFO fairness: do not jump over queued waiters even if compatible,
  // except that shared requests may join current shared holders when no
  // exclusive waiter is queued ahead.
  bool exclusive_waiting = false;
  for (const auto& waiter : r.queue) {
    if (waiter.mode == LockMode::kExclusive) {
      exclusive_waiting = true;
      break;
    }
  }
  if (Compatible(r, txn, mode) && (r.queue.empty() || (mode == LockMode::kShared &&
                                                       !exclusive_waiting))) {
    r.holders[txn] = mode;
    ++stats_.immediate_grants;
    return true;
  }
  ++stats_.waits;
  r.queue.push_back(Waiter{txn, mode, std::move(on_grant)});
  return false;
}

void LockManager::ReleaseAll(TxnId txn) {
  ++stats_.releases;
  for (auto it = resources_.begin(); it != resources_.end();) {
    Resource& r = it->second;
    r.holders.erase(txn);
    for (auto w = r.queue.begin(); w != r.queue.end();) {
      if (w->txn == txn) {
        w = r.queue.erase(w);
      } else {
        ++w;
      }
    }
    GrantFromQueue(it->first, r);
    if (r.holders.empty() && r.queue.empty()) {
      it = resources_.erase(it);
    } else {
      ++it;
    }
  }
}

void LockManager::GrantFromQueue(const std::string& name, Resource& r) {
  (void)name;
  // Grant from the front while compatible (a run of shared requests, one
  // exclusive, or an upgrade that is now possible).
  while (!r.queue.empty()) {
    Waiter& head = r.queue.front();
    auto held = r.holders.find(head.txn);
    const bool is_upgrade = held != r.holders.end() && head.mode == LockMode::kExclusive;
    if (is_upgrade) {
      if (!Compatible(r, head.txn, LockMode::kExclusive)) {
        return;
      }
      held->second = LockMode::kExclusive;
      ++stats_.upgrades;
    } else {
      if (!Compatible(r, head.txn, head.mode)) {
        return;
      }
      r.holders[head.txn] = head.mode;
    }
    GrantFn grant = std::move(head.on_grant);
    r.queue.pop_front();
    if (grant) {
      grant();
    }
  }
}

bool LockManager::Holds(TxnId txn, const std::string& resource, LockMode mode) const {
  auto it = resources_.find(resource);
  if (it == resources_.end()) {
    return false;
  }
  auto held = it->second.holders.find(txn);
  if (held == it->second.holders.end()) {
    return false;
  }
  return mode == LockMode::kShared || held->second == LockMode::kExclusive;
}

std::vector<std::pair<TxnId, TxnId>> LockManager::WaitForEdges() const {
  std::vector<std::pair<TxnId, TxnId>> edges;
  for (const auto& [name, r] : resources_) {
    for (const auto& waiter : r.queue) {
      for (const auto& [holder, mode] : r.holders) {
        if (holder != waiter.txn) {
          edges.emplace_back(waiter.txn, holder);
        }
      }
    }
  }
  return edges;
}

}  // namespace txn
