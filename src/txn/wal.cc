#include "src/txn/wal.h"

#include <utility>

namespace txn {

uint64_t WriteAheadLog::Append(std::string payload, std::function<void()> on_durable) {
  const uint64_t lsn = next_lsn_++;
  const sim::TimePoint durable_at = simulator_->now() + flush_delay_;
  records_.push_back(LogRecord{lsn, std::move(payload), durable_at});
  simulator_->ScheduleAfter(flush_delay_, [fn = std::move(on_durable)] {
    if (fn) {
      fn();
    }
  });
  return lsn;
}

std::vector<LogRecord> WriteAheadLog::DurableRecordsAt(sim::TimePoint when) const {
  std::vector<LogRecord> out;
  for (const auto& record : records_) {
    if (record.durable_at <= when) {
      out.push_back(record);
    }
  }
  return out;
}

}  // namespace txn
