#include "src/txn/txn_policy.h"

namespace txn {

const char* DeadlockPolicyName(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
    case DeadlockPolicy::kStarvationFree:
      return "starvation-free";
  }
  return "unknown";
}

bool ParseDeadlockPolicy(const std::string& name, DeadlockPolicy* policy) {
  if (name == "detect") {
    *policy = DeadlockPolicy::kDetect;
  } else if (name == "wait-die") {
    *policy = DeadlockPolicy::kWaitDie;
  } else if (name == "starvation-free") {
    *policy = DeadlockPolicy::kStarvationFree;
  } else {
    return false;
  }
  return true;
}

}  // namespace txn
