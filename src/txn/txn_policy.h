// Concurrency-control policy seam for the transactional competitor (§4.4).
//
// The lock manager resolves lock conflicts under one of three deadlock
// policies:
//
//  - kDetect: conflicts wait in FIFO order; deadlocks are left standing and
//    found by the distributed wait-for monitor (Appendix 9.2), which then
//    kills a victim. This is the seed behavior, with the upgrade-stall and
//    missing-edge bugs fixed.
//  - kWaitDie: timestamp-ordered prevention (Rosenkrantz et al., after
//    starpos/oltp-cc-bench wait_die.hpp). A requester older than every
//    conflicting holder waits; a younger requester dies immediately and
//    restarts with its ORIGINAL timestamp, so it ages relative to fresh
//    transactions and eventually becomes the oldest — old transactions are
//    never starved, and no wait-for cycle can form (every wait edge points
//    from an older to a younger transaction).
//  - kStarvationFree: 2PLSF-style wound-wait with priority inheritance. A
//    requester older than a conflicting holder wounds (aborts) the younger
//    holder unless that holder is pinned (already voted in 2PC); a younger
//    requester waits. Restarted transactions inherit their original
//    timestamp, so every transaction's relative priority rises monotonically
//    and every transaction eventually commits.
//
// Timestamps are assigned once per logical transaction by a
// TimestampAuthority and RETAINED across abort/restart; smaller timestamp ==
// older == higher priority. Uniqueness across coordinators comes from a
// namespace tag in the low bits.

#ifndef REPRO_SRC_TXN_TXN_POLICY_H_
#define REPRO_SRC_TXN_TXN_POLICY_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace txn {

enum class DeadlockPolicy { kDetect, kWaitDie, kStarvationFree };

// Canonical names used by bench/fuzz command lines and config dumps.
const char* DeadlockPolicyName(DeadlockPolicy policy);

// Parses "detect", "wait-die", "starvation-free". Returns false on unknown
// names and leaves *policy untouched.
bool ParseDeadlockPolicy(const std::string& name, DeadlockPolicy* policy);

// Issues globally unique, time-ordered transaction timestamps. The high bits
// follow the simulator clock at issue time (so concurrently active
// coordinators get interleaved, arrival-ordered ages — not one coordinator
// persistently older than another); the low byte is the coordinator's
// namespace, which breaks same-instant ties across coordinators. Issue() is
// strictly monotone per authority, so a restarted transaction that retains
// its original timestamp is always older than any transaction issued later
// — the wait-die/wound-wait no-starvation argument rests on exactly this.
class TimestampAuthority {
 public:
  explicit TimestampAuthority(uint64_t name_space) : namespace_(name_space & 0xFF) {}

  uint64_t Issue(sim::TimePoint now) {
    uint64_t ts = (static_cast<uint64_t>(now.nanos()) << 8) | namespace_;
    if (ts <= last_issued_) {
      ts = last_issued_ + 256;  // keep the namespace byte intact
    }
    last_issued_ = ts;
    return ts;
  }

  uint64_t last_issued() const { return last_issued_; }

 private:
  uint64_t namespace_;
  uint64_t last_issued_ = 0;
};

}  // namespace txn

#endif  // REPRO_SRC_TXN_TXN_POLICY_H_
