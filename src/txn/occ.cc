#include "src/txn/occ.h"

#include <algorithm>

namespace txn {

TxnId OccManager::Begin() {
  const TxnId id = next_txn_++;
  active_[id].start_seq = commit_seq_;
  ++stats_.begun;
  return id;
}

std::optional<double> OccManager::Read(TxnId txn, const std::string& key) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return std::nullopt;
  }
  // Read-your-writes within the transaction.
  auto w = it->second.write_set.find(key);
  if (w != it->second.write_set.end()) {
    return w->second;
  }
  it->second.read_set.insert(key);
  auto s = store_.find(key);
  return s == store_.end() ? std::nullopt : std::optional<double>(s->second);
}

void OccManager::Write(TxnId txn, const std::string& key, double value) {
  auto it = active_.find(txn);
  if (it != active_.end()) {
    it->second.write_set[key] = value;
  }
}

bool OccManager::Commit(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return false;
  }
  const Active& a = it->second;
  // Backward validation: any transaction that committed after we began and
  // wrote something we read invalidates us. history_ is sorted by
  // commit_seq, so start at the first record past our start.
  auto first = std::partition_point(history_.begin(), history_.end(),
                                    [&a](const Committed& c) {
                                      return c.commit_seq <= a.start_seq;
                                    });
  for (auto c = first; c != history_.end(); ++c) {
    for (const std::string& key : a.read_set) {
      if (c->write_set.count(key)) {
        ++stats_.validation_failures;
        active_.erase(it);
        ++stats_.aborted;
        return false;
      }
    }
  }
  // Commit point: global order position assigned here.
  Committed record;
  record.commit_seq = ++commit_seq_;
  for (const auto& [key, value] : a.write_set) {
    store_[key] = value;
    record.write_set.insert(key);
  }
  if (!record.write_set.empty()) {
    history_.push_back(std::move(record));
  }
  active_.erase(it);
  ++stats_.committed;
  TrimHistory();
  return true;
}

void OccManager::TrimHistory() {
  // Records no active transaction could conflict with are dead weight.
  uint64_t oldest_start = commit_seq_;
  for (const auto& [id, active] : active_) {
    oldest_start = std::min(oldest_start, active.start_seq);
  }
  auto keep_from = std::partition_point(history_.begin(), history_.end(),
                                        [oldest_start](const Committed& c) {
                                          return c.commit_seq <= oldest_start;
                                        });
  history_.erase(history_.begin(), keep_from);
}

void OccManager::Abort(TxnId txn) {
  if (active_.erase(txn) > 0) {
    ++stats_.aborted;
    TrimHistory();
  }
}

std::optional<double> OccManager::CommittedValue(const std::string& key) const {
  auto it = store_.find(key);
  return it == store_.end() ? std::nullopt : std::optional<double>(it->second);
}

}  // namespace txn
