// Wait-for graph with cycle detection — the core of the paper's preferred
// deadlock detectors (§4.2, Appendix 9.2). Nodes are transaction/RPC
// instance ids; an edge a→b means "a waits for b". Detection is a DFS; the
// paper's key observation is that for 2PL the wait-for property is *locally
// stable*, so edges may be collected in any order, over any channels, with
// no consistent cut and no CATOCS — cycles found are real deadlocks.

#ifndef REPRO_SRC_TXN_WAIT_FOR_GRAPH_H_
#define REPRO_SRC_TXN_WAIT_FOR_GRAPH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace txn {

class WaitForGraph {
 public:
  void AddEdge(uint64_t waiter, uint64_t holder);
  void RemoveEdge(uint64_t waiter, uint64_t holder);
  // Removes a node and all its edges (transaction finished/aborted).
  void RemoveNode(uint64_t node);
  // Replaces every outgoing edge of `waiter` (used when a process re-reports
  // its current local waits).
  void ReplaceOutEdges(uint64_t waiter, const std::vector<uint64_t>& holders);
  void Clear();

  bool HasEdge(uint64_t waiter, uint64_t holder) const;
  size_t edge_count() const;
  size_t node_count() const { return out_.size(); }

  // Any cycle, as the ordered node list [a, b, ..., a-waits-for-first];
  // nullopt when acyclic.
  std::optional<std::vector<uint64_t>> FindCycle() const;

 private:
  std::map<uint64_t, std::set<uint64_t>> out_;
};

}  // namespace txn

#endif  // REPRO_SRC_TXN_WAIT_FOR_GRAPH_H_
