// Replicated key-value stores, both sides of the §4.4 comparison.
//
// TxnCoordinator/TxnReplica — the transactional design (HARP-like):
// two-phase commit over reliable transport with a read-any /
// write-all-available policy. Every write (or write *group* — "say
// together") is prepared at all replicas on the availability list; replicas
// force a WAL record before voting, so a committed write is durable.
// Replicas may vote NO for state-level reasons (storage, protection — the
// paper's limitation 2), aborting the group atomically. Replicas that time
// out during prepare are dropped from the availability list and the write
// commits with the survivors — matching CATOCS's failure behavior without
// giving up grouping or durability.
//
// CatocsPrimary/CatocsReplica — the CATOCS design (Deceit-like): a single
// primary updater causally multicasts updates to the replica group and
// acknowledges the client after `write_safety_level` replica acks. Level 0
// is fully asynchronous — and loses the update if the primary dies first
// (non-durability, §2); level >= replicas-1 is effectively synchronous RPC,
// which is the paper's point about the "asynchrony" claim.

#ifndef REPRO_SRC_TXN_REPLICATED_STORE_H_
#define REPRO_SRC_TXN_REPLICATED_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/catocs/group_member.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"
#include "src/txn/lock_manager.h"
#include "src/txn/wal.h"

namespace txn {

// --- transactional design ----------------------------------------------------

struct TxnReplicaConfig {
  // How lock conflicts are resolved (DESIGN §12): detect leaves deadlocks to
  // the wait-for monitor, the other two prevent them by timestamp order.
  DeadlockPolicy policy = DeadlockPolicy::kDetect;
  sim::Duration wal_flush_delay = sim::Duration::Micros(500);
};

class TxnReplica {
 public:
  static constexpr uint32_t kPreparePort = 0x79000001;
  static constexpr uint32_t kVotePort = 0x79000002;
  static constexpr uint32_t kDecisionPort = 0x79000003;

  TxnReplica(sim::Simulator* simulator, net::Transport* transport,
             sim::Duration wal_flush_delay = sim::Duration::Micros(500));
  TxnReplica(sim::Simulator* simulator, net::Transport* transport,
             const TxnReplicaConfig& config);

  // State-level veto (limitation 2): return false to reject a write, e.g.
  // out of storage or protection failure. Default accepts everything.
  void SetVoteHook(std::function<bool(const std::string& key)> hook) {
    vote_hook_ = std::move(hook);
  }

  std::optional<double> Read(const std::string& key) const;
  const std::map<std::string, double>& store() const { return store_; }
  const WriteAheadLog& wal() const { return wal_; }
  uint64_t prepares_seen() const { return prepares_seen_; }

  // Prepared-but-undecided transactions this replica aborted on its own
  // (wait-die refusal or wound) — each one went back to its coordinator as a
  // NO vote.
  uint64_t local_aborts() const { return local_aborts_; }

  // The replica's lock manager, exposed so a WaitForReporter can feed its
  // WaitForEdges to the deadlock monitor (detect policy) and so benches can
  // read prevention-side counters.
  LockManager& lock_manager() { return locks_; }

 private:
  struct PendingTxn {
    std::map<std::string, double> writes;
    net::NodeId coordinator = 0;
    bool voted = false;  // YES sent — abort only via coordinator decision
  };

  void OnPrepare(net::NodeId coordinator, const net::PayloadPtr& payload);
  void OnDecision(net::NodeId coordinator, const net::PayloadPtr& payload);
  // Unilateral local abort before voting: release locks, vote NO. No-op for
  // unknown or already-voted transactions.
  void AbortLocal(uint64_t txn);

  sim::Simulator* simulator_;
  net::Transport* transport_;
  LockManager locks_;
  WriteAheadLog wal_;
  std::function<bool(const std::string&)> vote_hook_;
  std::map<std::string, double> store_;
  std::map<uint64_t, PendingTxn> pending_;
  uint64_t prepares_seen_ = 0;
  uint64_t local_aborts_ = 0;
};

struct CoordinatorStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;  // abort decisions, counting every attempt
  uint64_t replicas_dropped = 0;
  uint64_t retries = 0;  // aborted attempts re-issued with retained timestamp
  uint64_t failed = 0;   // logical transactions given up (attempts exhausted)
};

struct CoordinatorConfig {
  sim::Duration prepare_timeout = sim::Duration::Millis(100);
  // Tags transaction ids (uid = namespace<<40 | seq) and timestamp low bits
  // so concurrent coordinators never collide. 0 reproduces the seed's ids.
  uint64_t id_namespace = 0;
  // Write-all-available (seed behavior): replicas that miss the prepare
  // timeout are dropped and the write commits with the survivors. When
  // false, a timeout aborts the attempt instead (contention benches: a slow
  // vote means lock waits, not a dead replica).
  bool drop_slow_on_timeout = true;
  // Aborted attempts (NO vote, wait-die death, wound, deadlock victim) are
  // retried up to this many attempts total, after a deterministic linear
  // backoff, with the ORIGINAL timestamp and a fresh uid — retained age is
  // what makes the prevention policies starvation-free.
  uint32_t max_attempts = 1;
  sim::Duration retry_backoff = sim::Duration::Millis(5);
};

class TxnCoordinator {
 public:
  using DoneFn = std::function<void(bool committed)>;

  TxnCoordinator(sim::Simulator* simulator, net::Transport* transport,
                 std::vector<net::NodeId> replicas,
                 sim::Duration prepare_timeout = sim::Duration::Millis(100));
  TxnCoordinator(sim::Simulator* simulator, net::Transport* transport,
                 std::vector<net::NodeId> replicas, const CoordinatorConfig& config);

  // Atomically writes a *group* of keys at all available replicas. done
  // fires once per logical transaction, after the final attempt.
  void WriteMany(std::map<std::string, double> writes, DoneFn done);
  void Write(const std::string& key, double value, DoneFn done) {
    WriteMany({{key, value}}, std::move(done));
  }

  // Aborts a live attempt by uid (the deadlock monitor's victim kill). The
  // abort decision releases the victim's locks at every participant; the
  // attempt then retries per config. False if the uid is not in flight.
  bool AbortInFlight(uint64_t txn);

  // Observation hook, fired once per COMMIT decision with the write set and
  // the participant set the transaction committed with. Commit decisions for
  // the same key are serialized by 2PL (a later writer's prepare cannot be
  // granted anywhere until the earlier decision arrived there), so the call
  // order is the per-key serialization order — what a chaos oracle needs to
  // compute the exact expected store of every surviving replica.
  using CommitObserver = std::function<void(uint64_t txn, const std::map<std::string, double>& writes,
                                            const std::vector<net::NodeId>& participants)>;
  void SetCommitObserver(CommitObserver observer) { commit_observer_ = std::move(observer); }

  const std::vector<net::NodeId>& availability_list() const { return available_; }
  const CoordinatorStats& stats() const { return stats_; }

 private:
  struct InFlight {
    std::map<std::string, double> writes;
    std::map<net::NodeId, bool> votes;  // replica -> voted (value = yes)
    std::vector<net::NodeId> participants;
    DoneFn done;
    sim::EventId timeout{};
    bool decided = false;
    uint64_t ts = 0;       // retained across attempts
    uint32_t attempt = 1;  // 1-based
  };

  void StartAttempt(std::map<std::string, double> writes, DoneFn done, uint64_t ts,
                    uint32_t attempt);
  void OnVote(net::NodeId replica, const net::PayloadPtr& payload);
  void MaybeDecide(uint64_t txn);
  void Decide(uint64_t txn, bool commit, const std::vector<net::NodeId>& slow);

  sim::Simulator* simulator_;
  net::Transport* transport_;
  std::vector<net::NodeId> available_;
  CoordinatorConfig config_;
  TimestampAuthority timestamps_;
  std::map<uint64_t, InFlight> in_flight_;
  uint64_t next_txn_ = 1;
  CoordinatorStats stats_;
  CommitObserver commit_observer_;
};

// --- CATOCS design -------------------------------------------------------------

class CatocsReplica {
 public:
  static constexpr uint32_t kAckPort = 0x79000010;

  // Attaches to a group member: every delivered update is applied in the
  // delivery order, and acked back to the update's primary.
  CatocsReplica(sim::Simulator* simulator, net::Transport* transport,
                catocs::GroupMember* member);

  std::optional<double> Read(const std::string& key) const;
  const std::map<std::string, double>& store() const { return store_; }
  uint64_t updates_applied() const { return updates_applied_; }

  // Optional durability: with a WAL attached, every applied update is
  // appended (asynchronously flushed) before the ack goes back to the
  // primary's port handler. RecoverFromWal rebuilds the store from the
  // records durable at a crash instant — the replay a restarted replica runs
  // before rejoining the group and requesting a delta via state transfer.
  // Returns the number of records replayed.
  void AttachWal(WriteAheadLog* wal) { wal_ = wal; }
  uint64_t RecoverFromWal(const WriteAheadLog& wal, sim::TimePoint crash_time);

  // Chains another handler to observe deliveries (the replica consumes the
  // member's delivery handler slot).
  void SetObserver(catocs::DeliveryHandler observer) { observer_ = std::move(observer); }

 private:
  void OnDeliver(const catocs::Delivery& delivery);

  sim::Simulator* simulator_;
  net::Transport* transport_;
  catocs::GroupMember* member_;
  WriteAheadLog* wal_ = nullptr;
  std::map<std::string, double> store_;
  catocs::DeliveryHandler observer_;
  uint64_t updates_applied_ = 0;
};

struct CatocsPrimaryStats {
  uint64_t writes_issued = 0;
  uint64_t writes_acked = 0;
};

class CatocsPrimary {
 public:
  using DoneFn = std::function<void()>;

  // write_safety_level = number of *remote* replica acknowledgments to wait
  // for before reporting the write complete (Deceit's "k").
  CatocsPrimary(sim::Simulator* simulator, net::Transport* transport,
                catocs::GroupMember* member, int write_safety_level);

  void Write(const std::string& key, double value, DoneFn done);

  const CatocsPrimaryStats& stats() const { return stats_; }

 private:
  struct AwaitingAcks {
    int remaining;
    DoneFn done;
  };

  void OnAck(net::NodeId replica, const net::PayloadPtr& payload);

  sim::Simulator* simulator_;
  net::Transport* transport_;
  catocs::GroupMember* member_;
  int write_safety_level_;
  std::map<uint64_t, AwaitingAcks> awaiting_;
  uint64_t next_update_ = 1;
  CatocsPrimaryStats stats_;
};

// Keys whose values differ (or exist on one side only) between two replica
// stores — the §4.4 consistency check after failures.
std::vector<std::string> DivergentKeys(const std::map<std::string, double>& a,
                                       const std::map<std::string, double>& b);

}  // namespace txn

#endif  // REPRO_SRC_TXN_REPLICATED_STORE_H_
