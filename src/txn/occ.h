// Optimistic concurrency control (§4.3): transactions execute without locks
// against a local snapshot, buffering writes; at commit they are ordered by
// a simple global ordering point (here a commit counter, standing in for the
// paper's "local timestamp of the coordinator plus node id to break ties")
// and validated backward against transactions that committed since they
// began. Conflicts abort — no inter-transaction message ordering, hence no
// CATOCS, is ever needed.

#ifndef REPRO_SRC_TXN_OCC_H_
#define REPRO_SRC_TXN_OCC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/txn/lock_manager.h"

namespace txn {

struct OccStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t validation_failures = 0;
};

class OccManager {
 public:
  TxnId Begin();

  // Reads the committed value (and records the read for validation).
  std::optional<double> Read(TxnId txn, const std::string& key);

  // Buffers the write in the transaction's write set.
  void Write(TxnId txn, const std::string& key, double value);

  // Validates and atomically applies; false => aborted (conflict).
  bool Commit(TxnId txn);
  void Abort(TxnId txn);

  std::optional<double> CommittedValue(const std::string& key) const;
  const OccStats& stats() const { return stats_; }
  size_t history_size() const { return history_.size(); }

 private:
  // Discards committed write-set records that no active transaction can
  // conflict with, keeping validation O(overlapping transactions).
  void TrimHistory();

  struct Active {
    uint64_t start_seq = 0;
    std::set<std::string> read_set;
    std::map<std::string, double> write_set;
  };
  struct Committed {
    uint64_t commit_seq = 0;
    std::set<std::string> write_set;
  };

  TxnId next_txn_ = 1;
  uint64_t commit_seq_ = 0;
  std::map<std::string, double> store_;
  std::map<TxnId, Active> active_;
  std::vector<Committed> history_;
  OccStats stats_;
};

}  // namespace txn

#endif  // REPRO_SRC_TXN_OCC_H_
