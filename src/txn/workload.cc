#include "src/txn/workload.h"

#include <algorithm>
#include <cmath>

namespace txn {
namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

std::vector<std::string> TxnSpec::WriteKeys() const {
  std::vector<std::string> keys;
  for (const Op& op : ops) {
    if (op.is_write && std::find(keys.begin(), keys.end(), op.key) == keys.end()) {
      keys.push_back(op.key);
    }
  }
  return keys;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config, uint64_t seed, bool sort_keys)
    : config_(config), rng_(seed), sort_keys_(sort_keys) {
  if (config_.num_keys == 0) {
    config_.num_keys = 1;
  }
  if (config_.zipf_theta > 0.0) {
    zeta_n_ = Zeta(config_.num_keys, config_.zipf_theta);
    zeta_2_ = Zeta(2, config_.zipf_theta);
    alpha_ = 1.0 / (1.0 - config_.zipf_theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(config_.num_keys),
                           1.0 - config_.zipf_theta)) /
           (1.0 - zeta_2_ / zeta_n_);
  }
  uint64_t n = config_.num_keys - 1;
  while (n >= 10) {
    ++key_digits_;
    n /= 10;
  }
}

uint64_t WorkloadGenerator::ZipfDraw() {
  if (config_.zipf_theta <= 0.0) {
    return rng_.NextBelow(config_.num_keys);
  }
  // Gray et al. "Quickly generating billion-record synthetic databases";
  // identical draw to DBx1000's zipf().
  const double u = rng_.NextDouble();
  const double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, config_.zipf_theta)) {
    return 1;
  }
  const double raw = static_cast<double>(config_.num_keys) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t key = static_cast<uint64_t>(raw);
  if (key >= config_.num_keys) {
    key = config_.num_keys - 1;
  }
  return key;
}

std::string WorkloadGenerator::KeyName(uint64_t index) const {
  std::string digits = std::to_string(index);
  std::string name = "k";
  name.append(static_cast<size_t>(key_digits_) - std::min<size_t>(digits.size(), key_digits_),
              '0');
  name += digits;
  return name;
}

TxnSpec WorkloadGenerator::NextTxn() {
  TxnSpec spec;
  spec.is_long = rng_.NextBool(config_.long_txn_fraction);
  uint32_t want = spec.is_long ? config_.long_ops : config_.short_ops;
  if (want > config_.num_keys) {
    want = static_cast<uint32_t>(config_.num_keys);
  }
  if (want == 0) {
    want = 1;
  }
  std::vector<uint64_t> indices;
  while (indices.size() < want) {
    uint64_t k = ZipfDraw();
    if (std::find(indices.begin(), indices.end(), k) == indices.end()) {
      indices.push_back(k);
    }
  }
  if (sort_keys_) {
    std::sort(indices.begin(), indices.end());
  }
  // Every transaction writes at least one key (a pure-read txn never reaches
  // 2PC in our store and would dilute the abort/commit accounting).
  size_t forced_write = rng_.NextBelow(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    Op op;
    op.key = KeyName(indices[i]);
    op.is_write = i == forced_write || !rng_.NextBool(config_.read_fraction);
    spec.ops.push_back(std::move(op));
  }
  return spec;
}

}  // namespace txn
