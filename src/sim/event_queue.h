// Pending-event set for the discrete-event simulator.
//
// Events are closures keyed by (fire time, insertion sequence). The sequence
// tiebreak makes execution order fully deterministic when many events share a
// timestamp. Cancellation is lazy: cancelled entries stay in the heap and are
// skipped when popped, which keeps Schedule/Cancel O(log n) without a
// decrease-key structure.

#ifndef REPRO_SRC_SIM_EVENT_QUEUE_H_
#define REPRO_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace sim {

using EventFn = std::function<void()>;

// Opaque handle for cancelling a scheduled event.
struct EventId {
  uint64_t seq = 0;

  bool valid() const { return seq != 0; }
};

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn to run at `when`. Events scheduled for the same instant run
  // in schedule order.
  EventId Schedule(TimePoint when, EventFn fn);

  // Cancels a pending event. Returns false if it already ran or was already
  // cancelled.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty() const { return live_count_ == 0; }

  size_t size() const { return live_count_; }

  // Fire time of the next live event. Must not be called when Empty().
  TimePoint NextTime();

  // Removes and returns the next live event. Must not be called when Empty().
  struct Fired {
    TimePoint when;
    EventFn fn;
  };
  Fired PopNext();

 private:
  struct Entry {
    TimePoint when;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries from the top of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<uint64_t> cancelled_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_EVENT_QUEUE_H_
