// Pending-event set for the discrete-event simulator.
//
// Events are closures keyed by (fire time, insertion sequence). The sequence
// tiebreak makes (when, seq) a strict total order, so execution order is
// fully deterministic when many events share a timestamp — and independent
// of the heap's internal shape.
//
// The structure is a pairing heap over pool-allocated nodes. An EventId
// carries a direct node pointer, so Cancel is O(1): mark the node dead and
// free its closure immediately — no hash lookup, no decrease-key. Dead nodes
// stay linked until they surface at the root or a compaction pass rebuilds
// the heap; the compaction threshold is adaptive to the live-set size
// (churn-heavy runs at N=10k cancel far more events than they fire, and a
// fixed threshold either thrashes small queues or lets huge ones bloat).
// Nodes are recycled through a free list and never returned to the
// allocator, which makes the stale-pointer check in Cancel safe: a node
// reached through an old EventId is always readable, and its (never reused)
// sequence number proves whether the event is still the one the id named.

#ifndef REPRO_SRC_SIM_EVENT_QUEUE_H_
#define REPRO_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/inline_fn.h"
#include "src/sim/time.h"

namespace sim {

// Move-only, inline-storage closure: scheduling an event no longer
// heap-allocates for typical captures (see inline_fn.h).
using EventFn = InlineFn;

// Opaque handle for cancelling a scheduled event. The sequence number is the
// identity (never reused); the node pointer is a location hint that lets
// Cancel skip any lookup. A handle with a stale or null pointer simply fails
// to cancel, it can never cancel the wrong event.
struct EventId {
  uint64_t seq = 0;
  void* node = nullptr;

  bool valid() const { return seq != 0; }
};

class EventQueue {
 public:
  EventQueue() = default;
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn to run at `when`. Events scheduled for the same instant run
  // in schedule order.
  EventId Schedule(TimePoint when, EventFn fn);

  // Cancels a pending event. Returns false if it already ran or was already
  // cancelled — in particular, an event cancelling itself from inside its own
  // closure (a timeout that fires and then "cancels" its handle) is a no-op.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty() const { return live_ == 0; }

  size_t size() const { return live_; }
  // Total nodes physically in the heap, including lazily cancelled ones
  // (exposed so tests can observe compaction).
  size_t heap_size() const { return live_ + dead_; }

  // Fire time of the next live event. Must not be called when Empty().
  TimePoint NextTime();

  // Removes and returns the next live event. Must not be called when Empty().
  struct Fired {
    TimePoint when;
    EventFn fn;
  };
  Fired PopNext();

 private:
  struct Node {
    TimePoint when;
    uint64_t seq = 0;  // 0 = free or cancelled; live seqs are never reused
    bool dead = false;
    Node* child = nullptr;    // leftmost child
    Node* sibling = nullptr;  // next sibling (free-list link when pooled)
    EventFn fn;
  };

  // (when, seq) strict weak — in fact total — order: the root of a melded
  // heap is always the unique minimum, so pop order equals sorted order
  // regardless of tree shape. Compaction therefore never perturbs replay.
  static bool Before(const Node* a, const Node* b) {
    if (a->when != b->when) {
      return a->when < b->when;
    }
    return a->seq < b->seq;
  }

  static constexpr size_t kNodesPerBlock = 256;
  // Never compact below this many dead nodes: small queues shouldn't pay for
  // rebuild passes. Above it, compact once the dead outnumber the live —
  // the threshold scales with the live set, so a 10k-process run tolerates
  // proportionally more lazy garbage before sweeping.
  static constexpr size_t kCompactMinDead = 128;

  static Node* Meld(Node* a, Node* b);
  // Detaches the root's children and melds them pairwise (two-pass).
  Node* MeldChildren(Node* root);

  Node* AllocNode();
  void FreeNode(Node* node);
  // Pops dead roots until the root is live (or the heap is empty).
  void SkipDead();
  // Rebuilds the heap from its live nodes only, freeing every dead node.
  void Compact();

  Node* root_ = nullptr;
  Node* free_list_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> blocks_;
  size_t live_ = 0;
  size_t dead_ = 0;
  uint64_t next_seq_ = 1;
  // Scratch for the pairwise meld and compaction walks; member so repeated
  // pops reuse its capacity.
  std::vector<Node*> scratch_;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_EVENT_QUEUE_H_
