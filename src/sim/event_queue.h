// Pending-event set for the discrete-event simulator.
//
// Events are closures keyed by (fire time, insertion sequence). The sequence
// tiebreak makes execution order fully deterministic when many events share a
// timestamp. Cancellation is lazy: cancelled entries stay in the heap and are
// skipped when popped, which keeps Schedule/Cancel O(log n) without a
// decrease-key structure. A compaction pass sweeps the heap whenever lazily
// cancelled entries outnumber live ones, so long-running simulations (the
// E5/E6 sweeps schedule and cancel millions of timers) cannot grow the heap
// unboundedly. Pop order depends only on the (when, seq) comparator, so
// compaction never perturbs execution order.

#ifndef REPRO_SRC_SIM_EVENT_QUEUE_H_
#define REPRO_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/sim/inline_fn.h"
#include "src/sim/time.h"

namespace sim {

// Move-only, inline-storage closure: scheduling an event no longer
// heap-allocates for typical captures (see inline_fn.h).
using EventFn = InlineFn;

// Opaque handle for cancelling a scheduled event.
struct EventId {
  uint64_t seq = 0;

  bool valid() const { return seq != 0; }
};

class EventQueue {
 public:
  EventQueue() { heap_.reserve(kInitialReserve); }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules fn to run at `when`. Events scheduled for the same instant run
  // in schedule order.
  EventId Schedule(TimePoint when, EventFn fn);

  // Cancels a pending event. Returns false if it already ran or was already
  // cancelled — in particular, an event cancelling itself from inside its own
  // closure (a timeout that fires and then "cancels" its handle) is a no-op.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty() const { return live_.empty(); }

  size_t size() const { return live_.size(); }
  // Total entries physically in the heap, including lazily cancelled ones
  // (exposed so tests can observe compaction).
  size_t heap_size() const { return heap_.size(); }

  // Fire time of the next live event. Must not be called when Empty().
  TimePoint NextTime();

  // Removes and returns the next live event. Must not be called when Empty().
  struct Fired {
    TimePoint when;
    EventFn fn;
  };
  Fired PopNext();

 private:
  struct Entry {
    TimePoint when;
    uint64_t seq;
    EventFn fn;
  };
  // Max-heap comparator inverted for earliest-first order.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  static constexpr size_t kInitialReserve = 1024;
  // Compact only past this size so small queues never pay for a sweep.
  static constexpr size_t kCompactMinEntries = 256;

  // Drops cancelled entries from the top of the heap.
  void SkipCancelled();
  // Sweeps all cancelled entries out of the heap and re-heapifies.
  void Compact();

  std::vector<Entry> heap_;  // std::*_heap ordered by Later
  // Seqs currently in the heap and not cancelled. This is what makes Cancel
  // exact: a seq that already fired (or was already cancelled) is absent, so
  // it can never be marked cancelled "in absentia" and corrupt the live
  // count — the heap and the count can't drift apart.
  std::unordered_set<uint64_t> live_;
  std::unordered_set<uint64_t> cancelled_;
  uint64_t next_seq_ = 1;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_EVENT_QUEUE_H_
