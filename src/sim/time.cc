#include "src/sim/time.h"

#include <cstdio>

namespace sim {

namespace {

std::string FormatNanos(int64_t nanos) {
  char buf[64];
  if (nanos % (1000 * 1000 * 1000) == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(nanos / (1000 * 1000 * 1000)));
  } else if (nanos % (1000 * 1000) == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(nanos / (1000 * 1000)));
  } else if (nanos % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(nanos / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(nanos));
  }
  return buf;
}

}  // namespace

std::string Duration::ToString() const { return FormatNanos(nanos_); }

std::string TimePoint::ToString() const { return FormatNanos(nanos_); }

}  // namespace sim
