// Deterministic random number generation.
//
// Standard-library distributions are implementation defined, so a simulation
// seeded the same way could diverge across standard libraries. Everything
// here is implemented from scratch (xoshiro256** core, hand-rolled
// distributions) so a given seed produces the same event sequence everywhere.

#ifndef REPRO_SRC_SIM_RNG_H_
#define REPRO_SRC_SIM_RNG_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace sim {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
// seeded through splitmix64 so that low-entropy seeds still produce good
// state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Standard normal via Box-Muller (deterministic; caches the spare value).
  double NextGaussian();

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Log-normal parameterized by the *underlying* normal's mu and sigma.
  double NextLogNormal(double mu, double sigma);

  // Uniform duration in [lo, hi].
  Duration NextDuration(Duration lo, Duration hi);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; used to give each process its own
  // stream so adding a process does not perturb others' draws.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_RNG_H_
