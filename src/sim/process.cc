#include "src/sim/process.h"

#include <utility>

namespace sim {

Process::Process(Simulator* simulator, ProcessId id, std::string name)
    : simulator_(simulator), id_(id), name_(std::move(name)) {}

void Process::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  ++incarnation_;
  TraceEvent("crash", name_);
  OnCrash();
}

void Process::Recover() {
  if (!crashed_) {
    return;
  }
  crashed_ = false;
  ++incarnation_;
  TraceEvent("recover", name_);
  OnRecover();
}

EventId Process::ScheduleIfAlive(Duration delay, EventFn fn) {
  const uint64_t scheduled_incarnation = incarnation_;
  // mutable: the captured closure is invoked through InlineFn's non-const
  // call operator.
  return simulator_->ScheduleAfter(delay, [this, scheduled_incarnation, fn = std::move(fn)]() mutable {
    if (crashed_ || incarnation_ != scheduled_incarnation) {
      return;
    }
    fn();
  });
}

void Process::TraceEvent(const std::string& category, const std::string& detail) {
  simulator_->trace().Record(simulator_->now(), id_, category, detail);
}

}  // namespace sim
