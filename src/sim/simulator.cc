#include "src/sim/simulator.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::ScheduleAt(TimePoint when, EventFn fn) {
  assert(when >= now_ && "cannot schedule in the past");
  return queue_.Schedule(when, std::move(fn));
}

EventId Simulator::ScheduleAfter(Duration delay, EventFn fn) {
  assert(delay >= Duration::Zero());
  return queue_.Schedule(now_ + delay, std::move(fn));
}

bool Simulator::Step() {
  if (queue_.Empty()) {
    return false;
  }
  EventQueue::Fired fired = queue_.PopNext();
  assert(fired.when >= now_);
  now_ = fired.when;
  ++events_executed_;
  fired.fn();
  return true;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

// Trace-event timestamps are microseconds; render the nanosecond clock as
// micros with three exact decimal digits (integer arithmetic, no doubles).
void AppendMicros(std::string& out, int64_t nanos) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", nanos / 1000,
                static_cast<int>(nanos % 1000));
  out += buf;
}

std::string DefaultName(uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "m%016" PRIx64, key);
  return buf;
}

}  // namespace

std::string Simulator::ExportTraceEvents(const std::vector<FlowEdge>& flows,
                                         const std::function<std::string(uint64_t)>& namer) const {
  auto name_of = [&namer](uint64_t key) { return namer ? namer(key) : DefaultName(key); };

  // Stable small thread ids per layer, in order of first appearance.
  std::map<std::string, int> layer_tid;
  auto tid_of = [&layer_tid](const char* layer) {
    auto [it, inserted] = layer_tid.emplace(layer, 0);
    if (inserted) {
      it->second = static_cast<int>(layer_tid.size());
    }
    return it->second;
  };

  // Flow arrows anchor at each endpoint's first retained record.
  struct Anchor {
    int64_t nanos = 0;
    uint32_t actor = 0;
    int tid = 0;
  };
  std::map<uint64_t, Anchor> anchors;
  std::set<uint64_t> flow_keys;
  for (const FlowEdge& edge : flows) {
    flow_keys.insert(edge.src_key);
    flow_keys.insert(edge.dst_key);
  }

  std::string out;
  out.reserve(spans_.records().size() * 160 + flows.size() * 220 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_event = true;
  auto begin_event = [&out, &first_event] {
    if (!first_event) {
      out += ',';
    }
    first_event = false;
    out += '{';
  };
  auto emit_common = [&](const SpanRecord& r, int tid) {
    out += "\"name\":\"";
    AppendEscaped(out, name_of(r.key));
    out += "\",\"cat\":\"";
    AppendEscaped(out, r.layer);
    out += "\",\"pid\":" + std::to_string(r.actor) + ",\"tid\":" + std::to_string(tid);
  };
  auto emit_args = [&out](const SpanRecord& r, const std::string& extra_note) {
    char key_hex[24];
    std::snprintf(key_hex, sizeof(key_hex), "%016" PRIx64, r.key);
    out += ",\"args\":{\"key\":\"";
    out += key_hex;
    out += "\",\"event\":\"";
    out += sim::ToString(r.event);
    out += '"';
    const std::string& note = extra_note.empty() ? r.note : extra_note;
    if (!note.empty()) {
      out += ",\"note\":\"";
      AppendEscaped(out, note);
      out += '"';
    }
    out += '}';
  };

  // Enter->close pairing per (key, actor, layer); closers are the events
  // that take a message out of a wait (deliver/stable/drop).
  struct OpenSlice {
    int64_t nanos = 0;
    std::string note;
  };
  std::map<std::tuple<uint64_t, uint32_t, std::string>, OpenSlice> open;

  for (const SpanRecord& r : spans_.records()) {
    const int tid = tid_of(r.layer);
    if (flow_keys.count(r.key) && !anchors.count(r.key)) {
      anchors.emplace(r.key, Anchor{r.when.nanos(), r.actor, tid});
    }
    const auto slice_key = std::make_tuple(r.key, r.actor, std::string(r.layer));
    if (r.event == SpanEvent::kEnter) {
      open[slice_key] = OpenSlice{r.when.nanos(), r.note};
      continue;
    }
    const bool closer = r.event == SpanEvent::kDeliver || r.event == SpanEvent::kStable ||
                        r.event == SpanEvent::kDrop;
    if (closer) {
      auto it = open.find(slice_key);
      if (it != open.end()) {
        begin_event();
        emit_common(r, tid);
        out += ",\"ph\":\"X\",\"ts\":";
        AppendMicros(out, it->second.nanos);
        out += ",\"dur\":";
        AppendMicros(out, r.when.nanos() - it->second.nanos);
        emit_args(r, it->second.note);
        out += '}';
        open.erase(it);
        continue;
      }
    }
    begin_event();
    emit_common(r, tid);
    out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    AppendMicros(out, r.when.nanos());
    emit_args(r, {});
    out += '}';
  }
  // Waits still open when recording stopped: shown as instants at entry.
  for (const auto& [slice_key, slice] : open) {
    begin_event();
    out += "\"name\":\"";
    AppendEscaped(out, name_of(std::get<0>(slice_key)));
    out += "\",\"cat\":\"";
    AppendEscaped(out, std::get<2>(slice_key));
    out += "\",\"pid\":" + std::to_string(std::get<1>(slice_key)) +
           ",\"tid\":" + std::to_string(tid_of(std::get<2>(slice_key).c_str()));
    out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    AppendMicros(out, slice.nanos);
    out += ",\"args\":{\"open\":true}}";
  }

  // Provenance arrows: one s/f pair per edge, anchored at the endpoints'
  // first records. Edges whose endpoints left no span record are skipped.
  uint64_t flow_id = 0;
  for (const FlowEdge& edge : flows) {
    auto src = anchors.find(edge.src_key);
    auto dst = anchors.find(edge.dst_key);
    if (src == anchors.end() || dst == anchors.end()) {
      continue;
    }
    ++flow_id;
    char key_hex[24];
    for (int half = 0; half < 2; ++half) {
      const Anchor& a = half == 0 ? src->second : dst->second;
      begin_event();
      out += "\"name\":\"";
      AppendEscaped(out, edge.kind);
      out += "\",\"cat\":\"";
      AppendEscaped(out, edge.kind);
      out += "\",\"pid\":" + std::to_string(a.actor) + ",\"tid\":" + std::to_string(a.tid);
      out += ",\"ph\":\"";
      out += half == 0 ? 's' : 'f';
      out += "\",\"id\":" + std::to_string(flow_id);
      if (half == 1) {
        out += ",\"bp\":\"e\"";
      }
      out += ",\"ts\":";
      AppendMicros(out, a.nanos);
      std::snprintf(key_hex, sizeof(key_hex), "%016" PRIx64,
                    half == 0 ? edge.src_key : edge.dst_key);
      out += ",\"args\":{\"key\":\"";
      out += key_hex;
      out += "\",\"src_key\":\"";
      std::snprintf(key_hex, sizeof(key_hex), "%016" PRIx64, edge.src_key);
      out += key_hex;
      out += "\",\"dst_key\":\"";
      std::snprintf(key_hex, sizeof(key_hex), "%016" PRIx64, edge.dst_key);
      out += key_hex;
      out += "\"}}";
    }
  }

  // Thread-name metadata so Perfetto shows layer names per lane.
  for (const auto& [layer, tid] : layer_tid) {
    begin_event();
    out += "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    AppendEscaped(out, layer);
    out += "\"}}";
  }
  out += "]}";
  return out;
}

uint64_t Simulator::Run() { return RunUntil(TimePoint::Max()); }

uint64_t Simulator::RunUntil(TimePoint deadline) {
  stop_requested_ = false;
  uint64_t executed = 0;
  while (!stop_requested_ && !queue_.Empty()) {
    if (queue_.NextTime() > deadline) {
      break;
    }
    if (event_limit_ != 0 && events_executed_ >= event_limit_) {
      break;
    }
    Step();
    ++executed;
  }
  // Advance the clock to the deadline even if the queue drained earlier, so
  // RunFor(d) always moves time forward by d (bounded deadlines only).
  if (deadline != TimePoint::Max() && now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

PeriodicTimer::PeriodicTimer(Simulator* simulator, Duration period, EventFn fn)
    : simulator_(simulator), period_(period), fn_(std::move(fn)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start(Duration first_delay) {
  Stop();
  running_ = true;
  Arm(first_delay);
}

void PeriodicTimer::Stop() {
  if (pending_.valid()) {
    simulator_->Cancel(pending_);
    pending_ = EventId{};
  }
  running_ = false;
}

void PeriodicTimer::Arm(Duration delay) {
  pending_ = simulator_->ScheduleAfter(delay, [this] {
    pending_ = EventId{};
    // Re-arm before running the callback so the callback may Stop() us.
    Arm(period_);
    fn_();
  });
}

}  // namespace sim
