#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::ScheduleAt(TimePoint when, EventFn fn) {
  assert(when >= now_ && "cannot schedule in the past");
  return queue_.Schedule(when, std::move(fn));
}

EventId Simulator::ScheduleAfter(Duration delay, EventFn fn) {
  assert(delay >= Duration::Zero());
  return queue_.Schedule(now_ + delay, std::move(fn));
}

bool Simulator::Step() {
  if (queue_.Empty()) {
    return false;
  }
  EventQueue::Fired fired = queue_.PopNext();
  assert(fired.when >= now_);
  now_ = fired.when;
  ++events_executed_;
  fired.fn();
  return true;
}

uint64_t Simulator::Run() { return RunUntil(TimePoint::Max()); }

uint64_t Simulator::RunUntil(TimePoint deadline) {
  stop_requested_ = false;
  uint64_t executed = 0;
  while (!stop_requested_ && !queue_.Empty()) {
    if (queue_.NextTime() > deadline) {
      break;
    }
    if (event_limit_ != 0 && events_executed_ >= event_limit_) {
      break;
    }
    Step();
    ++executed;
  }
  // Advance the clock to the deadline even if the queue drained earlier, so
  // RunFor(d) always moves time forward by d (bounded deadlines only).
  if (deadline != TimePoint::Max() && now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

PeriodicTimer::PeriodicTimer(Simulator* simulator, Duration period, EventFn fn)
    : simulator_(simulator), period_(period), fn_(std::move(fn)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start(Duration first_delay) {
  Stop();
  running_ = true;
  Arm(first_delay);
}

void PeriodicTimer::Stop() {
  if (pending_.valid()) {
    simulator_->Cancel(pending_);
    pending_ = EventId{};
  }
  running_ = false;
}

void PeriodicTimer::Arm(Duration delay) {
  pending_ = simulator_->ScheduleAfter(delay, [this] {
    pending_ = EventId{};
    // Re-arm before running the callback so the callback may Stop() us.
    Arm(period_);
    fn_();
  });
}

}  // namespace sim
