// The discrete-event simulation engine.
//
// A Simulator owns the virtual clock, the pending-event set, a deterministic
// RNG, a metrics registry, and a trace recorder. Protocol and application
// code never sleeps or reads wall-clock time; it schedules closures and reacts
// when they fire. Runs are exactly reproducible for a given seed and schedule
// order.

#ifndef REPRO_SRC_SIM_SIMULATOR_H_
#define REPRO_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"
#include "src/sim/span.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Trace& trace() { return trace_; }
  SpanRecorder& spans() { return spans_; }
  const SpanRecorder& spans() const { return spans_; }

  EventId ScheduleAt(TimePoint when, EventFn fn);
  EventId ScheduleAfter(Duration delay, EventFn fn);
  void Cancel(EventId id) { queue_.Cancel(id); }

  // Runs until no events remain. Returns the number of events executed.
  uint64_t Run();
  // Runs until the clock would pass `deadline` (events at exactly `deadline`
  // run) or no events remain.
  uint64_t RunUntil(TimePoint deadline);
  uint64_t RunFor(Duration d) { return RunUntil(now_ + d); }
  // Executes exactly one event if any remain. Returns false when idle.
  bool Step();

  // Request that the current Run()/RunUntil() return after the in-flight
  // event completes.
  void RequestStop() { stop_requested_ = true; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  // Guard against runaway simulations (e.g. a retransmit loop that never
  // quiesces). 0 disables the limit.
  void set_event_limit(uint64_t limit) { event_limit_ = limit; }

  // Renders the retained span records (plus optional provenance flow edges)
  // as a complete Chrome trace-event JSON document, loadable in Perfetto.
  // Enter->deliver/stable/drop pairs on the same (key, actor, layer) become
  // duration slices; unmatched events become instants; flow edges become
  // s/f arrow pairs anchored at the two messages' first retained records.
  // `namer` labels events from a span key (hex key when omitted). Purely a
  // function of the retained records, so a deterministic run exports a
  // byte-identical document.
  std::string ExportTraceEvents(const std::vector<FlowEdge>& flows = {},
                                const std::function<std::string(uint64_t)>& namer = {}) const;

 private:
  TimePoint now_ = TimePoint::Zero();
  EventQueue queue_;
  Rng rng_;
  MetricsRegistry metrics_;
  Trace trace_;
  SpanRecorder spans_;
  uint64_t events_executed_ = 0;
  uint64_t event_limit_ = 0;
  bool stop_requested_ = false;
};

// Repeating timer helper built on the simulator. Cancellation-safe: the
// object may be destroyed from within its own callback.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator* simulator, Duration period, EventFn fn);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void Start(Duration first_delay);
  void Stop();
  bool running() const { return running_; }

 private:
  void Arm(Duration delay);

  Simulator* simulator_;
  Duration period_;
  EventFn fn_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_SIMULATOR_H_
