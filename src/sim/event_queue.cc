#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sim {

EventId EventQueue::Schedule(TimePoint when, EventFn fn) {
  const uint64_t seq = next_seq_++;
  heap_.push_back(Entry{when, seq, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(seq);
  return EventId{seq};
}

bool EventQueue::Cancel(EventId id) {
  // The live set is authoritative: a seq that already fired or was already
  // cancelled is absent, and cancelling it must be a no-op. (An event that
  // cancels its own handle from inside its closure hits this path.)
  if (!id.valid() || live_.erase(id.seq) == 0) {
    return false;
  }
  cancelled_.insert(id.seq);
  // Once dead entries dominate, sweep them in one linear pass: their
  // closures free immediately and the heap stops growing without bound.
  if (heap_.size() >= kCompactMinEntries && cancelled_.size() > heap_.size() / 2) {
    Compact();
  }
  return true;
}

void EventQueue::Compact() {
  auto keep = heap_.begin();
  for (auto it = heap_.begin(); it != heap_.end(); ++it) {
    auto dead = cancelled_.find(it->seq);
    if (dead != cancelled_.end()) {
      cancelled_.erase(dead);
      continue;
    }
    if (keep != it) {
      *keep = std::move(*it);
    }
    ++keep;
  }
  heap_.erase(keep, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  assert(heap_.size() == live_.size());
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

TimePoint EventQueue::NextTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.front().when;
}

EventQueue::Fired EventQueue::PopNext() {
  SkipCancelled();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Fired fired{heap_.back().when, std::move(heap_.back().fn)};
  live_.erase(heap_.back().seq);
  heap_.pop_back();
  return fired;
}

}  // namespace sim
