#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace sim {

EventQueue::~EventQueue() = default;

EventQueue::Node* EventQueue::AllocNode() {
  if (free_list_ == nullptr) {
    blocks_.push_back(std::make_unique<Node[]>(kNodesPerBlock));
    Node* block = blocks_.back().get();
    for (size_t i = kNodesPerBlock; i-- > 0;) {
      block[i].sibling = free_list_;
      free_list_ = &block[i];
    }
  }
  Node* node = free_list_;
  free_list_ = node->sibling;
  node->child = nullptr;
  node->sibling = nullptr;
  node->dead = false;
  return node;
}

void EventQueue::FreeNode(Node* node) {
  node->seq = 0;
  node->fn = EventFn{};
  node->child = nullptr;
  node->sibling = free_list_;
  free_list_ = node;
}

EventQueue::Node* EventQueue::Meld(Node* a, Node* b) {
  if (a == nullptr) {
    return b;
  }
  if (b == nullptr) {
    return a;
  }
  if (Before(b, a)) {
    std::swap(a, b);
  }
  b->sibling = a->child;
  a->child = b;
  return a;
}

EventQueue::Node* EventQueue::MeldChildren(Node* root) {
  // Standard two-pass pairing: meld children pairwise left to right, then
  // fold the pairs right to left. Iterative (explicit scratch list) so a
  // degenerate child chain cannot overflow the stack.
  scratch_.clear();
  Node* child = root->child;
  root->child = nullptr;
  while (child != nullptr) {
    Node* a = child;
    Node* b = a->sibling;
    child = (b != nullptr) ? b->sibling : nullptr;
    a->sibling = nullptr;
    if (b != nullptr) {
      b->sibling = nullptr;
    }
    scratch_.push_back(Meld(a, b));
  }
  Node* merged = nullptr;
  for (size_t i = scratch_.size(); i-- > 0;) {
    merged = Meld(scratch_[i], merged);
  }
  scratch_.clear();
  return merged;
}

EventId EventQueue::Schedule(TimePoint when, EventFn fn) {
  Node* node = AllocNode();
  node->when = when;
  node->seq = next_seq_++;
  node->fn = std::move(fn);
  root_ = Meld(root_, node);
  ++live_;
  return EventId{node->seq, node};
}

bool EventQueue::Cancel(EventId id) {
  // The node's sequence number is authoritative: an event that already fired
  // or was already cancelled has seq 0 (or a newer seq after pool reuse), so
  // a stale handle — including an event cancelling itself from inside its
  // own closure — is always a no-op. Sequence numbers are never reused, so
  // the check can't be fooled.
  if (!id.valid() || id.node == nullptr) {
    return false;
  }
  Node* node = static_cast<Node*>(id.node);
  if (node->seq != id.seq) {
    return false;
  }
  node->seq = 0;
  node->dead = true;
  node->fn = EventFn{};  // free the closure now, not at pop time
  --live_;
  ++dead_;
  // Adaptive compaction: sweep once the dead outnumber the live (never below
  // the small-queue floor). Churn-heavy large runs amortize the rebuild over
  // at least live_ cancellations; small queues never pay at all.
  if (dead_ > kCompactMinDead && dead_ > live_) {
    Compact();
  }
  return true;
}

void EventQueue::Compact() {
  // Walk the whole tree iteratively, unlink live nodes, free dead ones, then
  // remeld the live nodes. Pop order depends only on (when, seq), so the
  // rebuilt shape is irrelevant to replay.
  std::vector<Node*> stack;
  std::vector<Node*> survivors;
  survivors.reserve(live_);
  if (root_ != nullptr) {
    stack.push_back(root_);
  }
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    if (node->child != nullptr) {
      stack.push_back(node->child);
    }
    if (node->sibling != nullptr) {
      stack.push_back(node->sibling);
    }
    node->child = nullptr;
    node->sibling = nullptr;
    if (node->dead) {
      FreeNode(node);
    } else {
      survivors.push_back(node);
    }
  }
  root_ = nullptr;
  for (Node* node : survivors) {
    root_ = Meld(root_, node);
  }
  dead_ = 0;
  assert(survivors.size() == live_);
}

void EventQueue::SkipDead() {
  while (root_ != nullptr && root_->dead) {
    Node* dead_root = root_;
    root_ = MeldChildren(dead_root);
    FreeNode(dead_root);
    --dead_;
  }
}

TimePoint EventQueue::NextTime() {
  SkipDead();
  assert(root_ != nullptr);
  return root_->when;
}

EventQueue::Fired EventQueue::PopNext() {
  SkipDead();
  assert(root_ != nullptr);
  Node* top = root_;
  Fired fired{top->when, std::move(top->fn)};
  root_ = MeldChildren(top);
  FreeNode(top);
  --live_;
  return fired;
}

}  // namespace sim
