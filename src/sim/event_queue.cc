#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace sim {

EventId EventQueue::Schedule(TimePoint when, EventFn fn) {
  const uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(fn)});
  ++live_count_;
  return EventId{seq};
}

bool EventQueue::Cancel(EventId id) {
  if (!id.valid() || id.seq >= next_seq_) {
    return false;
  }
  // We cannot tell from the id alone whether the event already fired, so the
  // cancelled set is authoritative: insertion succeeds only once, and PopNext
  // erases entries as it skips them.
  auto [it, inserted] = cancelled_.insert(id.seq);
  (void)it;
  if (inserted && live_count_ > 0) {
    --live_count_;
    return true;
  }
  return false;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

TimePoint EventQueue::NextTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().when;
}

EventQueue::Fired EventQueue::PopNext() {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() returns const&; the entry is about to be popped so
  // moving the closure out is safe.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.when, std::move(top.fn)};
  heap_.pop();
  --live_count_;
  return fired;
}

}  // namespace sim
