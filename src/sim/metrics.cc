#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace sim {

void Gauge::Set(int64_t v) {
  value_ = v;
  if (v > peak_) {
    peak_ = v;
  }
}

void Gauge::Observe(double weight) {
  weighted_sum_ += static_cast<double>(value_) * weight;
  total_weight_ += weight;
}

void Gauge::SetAt(int64_t v, TimePoint now) {
  FinalizeAt(now);
  timed_ = true;
  last_at_ = now;
  Set(v);
}

void Gauge::FinalizeAt(TimePoint now) {
  if (timed_ && now > last_at_) {
    Observe((now - last_at_).seconds());
    last_at_ = now;
  }
}

double Gauge::weighted_mean() const {
  return total_weight_ > 0.0 ? weighted_sum_ / total_weight_ : 0.0;
}

void Gauge::Reset() {
  value_ = 0;
  peak_ = 0;
  weighted_sum_ = 0.0;
  total_weight_ = 0.0;
  last_at_ = TimePoint();
  timed_ = false;
}

void Histogram::Record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  // Welford's online recurrence: numerically stable for any mean/variance
  // ratio, unlike sum_sq - sum^2/n.
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
  sorted_valid_ = false;
  if (samples_.size() < kMaxSamples) {
    samples_.push_back(v);
  } else {
    // Reservoir sampling (algorithm R) with a private splitmix64 stream so
    // histogram recording never perturbs simulation randomness.
    reservoir_state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = reservoir_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    uint64_t slot = z % static_cast<uint64_t>(count_);
    if (slot < kMaxSamples) {
      samples_[slot] = v;
    }
  }
}

double Histogram::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Histogram::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0.0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

std::string MetricsRegistry::LabeledName(const std::string& name, const Labels& labels) {
  if (labels.empty()) {
    return name;
  }
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = name;
  out += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::Report() const {
  // Stream formatting: names longer than the 48-column pad (labeled names
  // routinely are) print in full instead of being truncated by a fixed
  // buffer; short names keep the historical aligned layout.
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  for (const auto& [name, c] : counters_) {
    out << "counter " << std::left << std::setw(48) << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge   " << std::left << std::setw(48) << name << " value=" << g->value()
        << " peak=" << g->peak() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << "hist    " << std::left << std::setw(48) << name << " n=" << h->count()
        << " mean=" << h->mean() << " p50=" << h->Quantile(0.5) << " p99=" << h->Quantile(0.99)
        << " max=" << h->max() << '\n';
  }
  return out.str();
}

namespace {

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Control characters are never legal raw in a JSON string; the common
      // ones get their short escapes, the rest the \u00XX form.
      switch (c) {
        case '\b':
          out << "\\b";
          break;
        case '\f':
          out << "\\f";
          break;
        case '\n':
          out << "\\n";
          break;
        case '\r':
          out << "\\r";
          break;
        case '\t':
          out << "\\t";
          break;
        default: {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out << buf;
          break;
        }
      }
    } else {
      out << c;
    }
  }
  out << '"';
}

void AppendJsonDouble(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  std::ostringstream num;
  num << std::setprecision(12) << v;
  out << num.str();
}

}  // namespace

std::string MetricsRegistry::ReportJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) {
      out << ',';
    }
    first = false;
    AppendJsonString(out, name);
    out << ':' << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) {
      out << ',';
    }
    first = false;
    AppendJsonString(out, name);
    out << ":{\"value\":" << g->value() << ",\"peak\":" << g->peak() << ",\"weighted_mean\":";
    AppendJsonDouble(out, g->weighted_mean());
    out << '}';
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out << ',';
    }
    first = false;
    AppendJsonString(out, name);
    out << ":{\"count\":" << h->count() << ",\"mean\":";
    AppendJsonDouble(out, h->mean());
    out << ",\"stddev\":";
    AppendJsonDouble(out, h->stddev());
    out << ",\"min\":";
    AppendJsonDouble(out, h->min());
    out << ",\"p50\":";
    AppendJsonDouble(out, h->Quantile(0.5));
    out << ",\"p90\":";
    AppendJsonDouble(out, h->Quantile(0.9));
    out << ",\"p99\":";
    AppendJsonDouble(out, h->Quantile(0.99));
    out << ",\"max\":";
    AppendJsonDouble(out, h->max());
    out << '}';
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace sim
