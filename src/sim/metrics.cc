#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sim {

void Gauge::Set(int64_t v) {
  value_ = v;
  if (v > peak_) {
    peak_ = v;
  }
}

void Gauge::Observe(double weight) {
  weighted_sum_ += static_cast<double>(value_) * weight;
  total_weight_ += weight;
}

double Gauge::weighted_mean() const {
  return total_weight_ > 0.0 ? weighted_sum_ / total_weight_ : 0.0;
}

void Gauge::Reset() {
  value_ = 0;
  peak_ = 0;
  weighted_sum_ = 0.0;
  total_weight_ = 0.0;
}

void Histogram::Record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
  if (samples_.size() < kMaxSamples) {
    samples_.push_back(v);
  } else {
    // Reservoir sampling (algorithm R) with a private splitmix64 stream so
    // histogram recording never perturbs simulation randomness.
    reservoir_state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = reservoir_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    uint64_t slot = z % static_cast<uint64_t>(count_);
    if (slot < kMaxSamples) {
      samples_[slot] = v;
    }
  }
}

double Histogram::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Histogram::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  samples_.clear();
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::Report() const {
  std::ostringstream out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter %-48s %lld\n", name.c_str(),
                  static_cast<long long>(c->value()));
    out << buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge   %-48s value=%lld peak=%lld\n", name.c_str(),
                  static_cast<long long>(g->value()), static_cast<long long>(g->peak()));
    out << buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "hist    %-48s n=%lld mean=%.3f p50=%.3f p99=%.3f max=%.3f\n", name.c_str(),
                  static_cast<long long>(h->count()), h->mean(), h->Quantile(0.5),
                  h->Quantile(0.99), h->max());
    out << buf;
  }
  return out.str();
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace sim
