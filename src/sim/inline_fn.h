// Move-only callable with inline storage, replacing std::function<void()>
// as the simulator's event closure type. Every Schedule used to pay one
// heap allocation just to type-erase its lambda; almost all event closures
// (timer re-arms, transport retransmits, network delivery thunks) fit in a
// few pointers, so InlineFn keeps them in the event-queue entry itself and
// falls back to the heap only for outsized captures.
//
// Move-only is deliberate: no event closure in the tree is ever copied
// (verified at the call sites), and copyability is what forces
// std::function to heap-allocate shared state for non-trivial captures.

#ifndef REPRO_SRC_SIM_INLINE_FN_H_
#define REPRO_SRC_SIM_INLINE_FN_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sim {

class InlineFn {
 public:
  // Sized for the fattest hot-path closure: the network's delivery thunk
  // captures a Packet (two node ids, port, shared_ptr payload, header size,
  // packet id) plus the network pointer.
  static constexpr std::size_t kInlineBytes = 64;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineBytes && alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (storage_) Decayed(std::forward<F>(f));
      vtable_ = &InlineVTable<Decayed>::table;
    } else {
      ::new (storage_) Decayed*(new Decayed(std::forward<F>(f)));
      vtable_ = &HeapVTable<Decayed>::table;
    }
  }

  InlineFn(InlineFn&& other) noexcept { MoveFrom(std::move(other)); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Destroy(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const { return vtable_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src's value.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  struct InlineVTable {
    static void Invoke(void* p) { (*static_cast<F*>(p))(); }
    static void Relocate(void* dst, void* src) {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr VTable table{&Invoke, &Relocate, &Destroy};
  };

  template <typename F>
  struct HeapVTable {
    static F* Ptr(void* p) { return *static_cast<F**>(p); }
    static void Invoke(void* p) { (*Ptr(p))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) F*(Ptr(src));  // steal the heap object; src forgets it
    }
    static void Destroy(void* p) { delete Ptr(p); }
    static constexpr VTable table{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(InlineFn&& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  void Destroy() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_INLINE_FN_H_
