// Per-message lifecycle spans, in the style of Dapper-like request tracing:
// each record marks one event in a message's life (send, header stamping,
// entering a layer's wait queue, delivery, stability) together with the
// observing node, the owning layer, and an optional hold reason. Records are
// kept in a bounded ring so long chaos runs retain the most recent history;
// ForKey() reconstructs one message's timeline for post-mortem dumps (e.g.
// `fuzz_chaos --trace` printing the span history of a violating message).
//
// Like Trace, the recorder is disabled by default and Record() is a cheap
// early-out, so instrumented protocol code costs nothing in ordinary runs.

#ifndef REPRO_SRC_SIM_SPAN_H_
#define REPRO_SRC_SIM_SPAN_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace sim {

enum class SpanEvent : uint8_t {
  kSend,     // message handed to the protocol for multicast
  kStamp,    // a layer stamped its header section onto the message
  kEnter,    // message entered a layer's wait queue / retention buffer
  kDeliver,  // message left a layer toward the application
  kStable,   // retention copy released: message known delivered everywhere
  kDrop,     // message abandoned (e.g. failed-sender backlog at a view change)
};

const char* ToString(SpanEvent event);

struct SpanRecord {
  uint64_t key = 0;    // caller-encoded message identity (see catocs::SpanKey)
  uint32_t actor = 0;  // node/member observing the event
  TimePoint when;
  SpanEvent event = SpanEvent::kSend;
  const char* layer = "";  // static string (layers hand in their name())
  std::string note;        // hold reason or extra detail; often empty

  std::string ToString() const;
};

// A directed provenance edge between two span keys, rendered as a flow
// arrow (predecessor -> dependent) in the Chrome trace-event export. The
// kind is a static string naming the edge's origin (e.g. "semantic",
// "hidden", "spurious" — see obs::ProvenanceRecorder::FlowEdges()).
struct FlowEdge {
  uint64_t src_key = 0;  // arrow tail: the predecessor message
  uint64_t dst_key = 0;  // arrow head: the dependent message
  const char* kind = "";
};

class SpanRecorder {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Ring bound: once full, the oldest record is evicted per new record.
  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  void Record(uint64_t key, uint32_t actor, TimePoint when, SpanEvent event, const char* layer,
              std::string note = {});

  const std::deque<SpanRecord>& records() const { return records_; }
  // Every record ever accepted, including those the ring has since evicted.
  uint64_t total_recorded() const { return total_recorded_; }
  uint64_t evicted() const { return total_recorded_ - records_.size(); }

  // One message's retained timeline, oldest first; at most `max_events` of
  // the most recent events when the timeline is longer.
  std::vector<SpanRecord> ForKey(uint64_t key, size_t max_events = SIZE_MAX) const;

  // Multi-line rendering of a timeline (or of everything retained).
  static std::string Render(const std::vector<SpanRecord>& records);
  std::string ToString() const;

  void Clear();

 private:
  bool enabled_ = false;
  size_t capacity_ = 1 << 16;
  std::deque<SpanRecord> records_;
  uint64_t total_recorded_ = 0;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_SPAN_H_
