// Process abstraction: a named participant in a simulated distributed
// system. Concrete protocol roles (group members, servers, clients, sensors)
// derive from Process and react to scheduled events and delivered messages.
// Processes can crash and recover; the network refuses traffic to and from
// crashed processes.

#ifndef REPRO_SRC_SIM_PROCESS_H_
#define REPRO_SRC_SIM_PROCESS_H_

#include <cstdint>
#include <string>

#include "src/sim/simulator.h"

namespace sim {

using ProcessId = uint32_t;

class Process {
 public:
  Process(Simulator* simulator, ProcessId id, std::string name);
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& simulator() { return *simulator_; }
  TimePoint now() const { return simulator_->now(); }
  bool crashed() const { return crashed_; }

  // Called once when the scenario starts the process.
  virtual void OnStart() {}

  // Crash-stop failure: the process executes nothing until Recover(). Pending
  // scheduled closures must check crashed() themselves (ScheduleIfAlive does).
  void Crash();
  void Recover();

 protected:
  // Schedules fn, skipped automatically if the process is crashed when it
  // fires. This is the scheduling call protocol code should use.
  EventId ScheduleIfAlive(Duration delay, EventFn fn);

  // Hooks for subclasses to release or rebuild state around failures.
  virtual void OnCrash() {}
  virtual void OnRecover() {}

  void TraceEvent(const std::string& category, const std::string& detail);

 private:
  Simulator* simulator_;
  ProcessId id_;
  std::string name_;
  bool crashed_ = false;
  // Incremented on each crash; closures scheduled before a crash and firing
  // after a recovery are stale and must not run.
  uint64_t incarnation_ = 0;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_PROCESS_H_
