// Lightweight metrics for simulations: counters, gauges (with peak
// tracking), and value histograms with exact quantiles. A Registry owns
// metrics by name so benches and tests can look results up after a run;
// labeled lookups ("name{k=v,...}") give one logical metric per label
// combination, and ReportJson() exports everything deterministically.

#ifndef REPRO_SRC_SIM_METRICS_H_
#define REPRO_SRC_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace sim {

class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

// A level that moves up and down (e.g. buffer occupancy); remembers its peak.
//
// Time-weighted mean contract: weighted_mean() averages the gauge's value
// over the observation weights fed to it. With the raw Observe(weight) API
// the caller must close each interval itself — including the final one —
// before reading the mean. The timed API does this bookkeeping: call
// SetAt(v, now) for every level change and FinalizeAt(now) once after the
// last change; forgetting FinalizeAt silently drops the entire tail interval
// (everything after the last change), which under-reports whenever the gauge
// ends on a long-lived level.
class Gauge {
 public:
  void Set(int64_t v);
  void Add(int64_t delta) { Set(value_ + delta); }
  int64_t value() const { return value_; }
  int64_t peak() const { return peak_; }

  // Raw observation points: accumulates value*weight. The caller owns all
  // interval bookkeeping (see the class comment).
  void Observe(double weight);

  // Timed observation: closes the interval since the previous SetAt (or
  // FinalizeAt) at the old value, then sets the new one. Weights are
  // simulated seconds.
  void SetAt(int64_t v, TimePoint now);
  // Closes the trailing interval up to `now`. Required before reading
  // weighted_mean() when using SetAt; safe to call repeatedly (subsequent
  // calls extend the tail at the current value).
  void FinalizeAt(TimePoint now);

  double weighted_mean() const;
  void Reset();

 private:
  int64_t value_ = 0;
  int64_t peak_ = 0;
  double weighted_sum_ = 0.0;
  double total_weight_ = 0.0;
  TimePoint last_at_;
  bool timed_ = false;  // SetAt/FinalizeAt seen; last_at_ is valid
};

// Stores samples exactly (doubles). Quantiles are exact; memory is bounded by
// reservoir sampling past `kMaxSamples`, while count/sum/min/max stay exact.
// Variance uses Welford's online recurrence, which stays accurate even for
// large-mean/low-variance series (e.g. nanosecond timestamps) where the
// textbook sum-of-squares formula catastrophically cancels.
class Histogram {
 public:
  void Record(double v);
  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  // q in [0, 1]. Exact over retained samples. The sorted view is cached and
  // invalidated by Record, so bursts of quantile reads (each Report() line
  // asks for several) sort at most once.
  double Quantile(double q) const;
  double stddev() const;
  void Reset();

 private:
  static constexpr size_t kMaxSamples = 1 << 20;

  int64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;  // Welford running mean
  double m2_ = 0.0;    // Welford sum of squared deviations
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
  uint64_t reservoir_state_ = 0x9e3779b97f4a7c15ULL;
  mutable std::vector<double> sorted_;  // cached sorted view of samples_
  mutable bool sorted_valid_ = false;
};

class MetricsRegistry {
 public:
  // Label set for one metric instance, e.g. {{"layer","causal"}}.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  // Canonical labeled name: "name{k1=v1,k2=v2}" with keys sorted, so the
  // same label set always resolves to the same metric.
  static std::string LabeledName(const std::string& name, const Labels& labels);

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);
  Counter& GetCounter(const std::string& name, const Labels& labels) {
    return GetCounter(LabeledName(name, labels));
  }
  Gauge& GetGauge(const std::string& name, const Labels& labels) {
    return GetGauge(LabeledName(name, labels));
  }
  Histogram& GetHistogram(const std::string& name, const Labels& labels) {
    return GetHistogram(LabeledName(name, labels));
  }

  // Lookup without creating; nullptr if absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Multi-line human-readable dump, sorted by name. Names of any length are
  // rendered in full (short ones padded to a fixed column).
  std::string Report() const;

  // Deterministic JSON export: objects keyed by metric name, keys in sorted
  // order, fixed float formatting — two identical runs produce identical
  // strings.
  std::string ReportJson() const;

  void Reset();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_METRICS_H_
