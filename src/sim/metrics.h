// Lightweight metrics for simulations: counters, gauges (with peak
// tracking), and value histograms with exact quantiles. A Registry owns
// metrics by name so benches and tests can look results up after a run.

#ifndef REPRO_SRC_SIM_METRICS_H_
#define REPRO_SRC_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sim {

class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

// A level that moves up and down (e.g. buffer occupancy); remembers its peak.
class Gauge {
 public:
  void Set(int64_t v);
  void Add(int64_t delta) { Set(value_ + delta); }
  int64_t value() const { return value_; }
  int64_t peak() const { return peak_; }
  // Time-weighted mean requires the caller to feed observation points.
  void Observe(double weight);
  double weighted_mean() const;
  void Reset();

 private:
  int64_t value_ = 0;
  int64_t peak_ = 0;
  double weighted_sum_ = 0.0;
  double total_weight_ = 0.0;
};

// Stores samples exactly (doubles). Quantiles are exact; memory is bounded by
// reservoir sampling past `kMaxSamples`, while count/sum/min/max stay exact.
class Histogram {
 public:
  void Record(double v);
  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  // q in [0, 1]. Exact over retained samples.
  double Quantile(double q) const;
  double stddev() const;
  void Reset();

 private:
  static constexpr size_t kMaxSamples = 1 << 20;

  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
  uint64_t reservoir_state_ = 0x9e3779b97f4a7c15ULL;
};

class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Lookup without creating; nullptr if absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Multi-line human-readable dump, sorted by name.
  std::string Report() const;

  void Reset();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_METRICS_H_
