#include "src/sim/trace.h"

#include <sstream>
#include <utility>

namespace sim {

void Trace::Record(TimePoint when, uint32_t actor, std::string category, std::string detail) {
  if (!enabled_) {
    return;
  }
  entries_.push_back(TraceEntry{when, actor, std::move(category), std::move(detail)});
}

std::vector<TraceEntry> Trace::Filter(const std::string& category, int64_t actor) const {
  std::vector<TraceEntry> out;
  for (const auto& e : entries_) {
    if (e.category == category && (actor < 0 || e.actor == static_cast<uint32_t>(actor))) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Trace::ToString() const {
  std::ostringstream out;
  for (const auto& e : entries_) {
    out << e.when.ToString() << " [" << e.actor << "] " << e.category << ": " << e.detail << "\n";
  }
  return out.str();
}

}  // namespace sim
