#include "src/sim/rng.h"

#include <cmath>

namespace sim {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling: discard draws in the biased tail.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

Duration Rng::NextDuration(Duration lo, Duration hi) {
  return Duration(NextInRange(lo.nanos(), hi.nanos()));
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace sim
