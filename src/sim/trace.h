// Event trace recorder. Scenario tests assert against recorded entries to
// check delivery orders (e.g. "at process Q the last delivery was 'fire
// out'"); benches leave it disabled for speed.

#ifndef REPRO_SRC_SIM_TRACE_H_
#define REPRO_SRC_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace sim {

struct TraceEntry {
  TimePoint when;
  uint32_t actor;        // process/node id the entry is about
  std::string category;  // e.g. "deliver", "send", "anomaly"
  std::string detail;
};

class Trace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void Record(TimePoint when, uint32_t actor, std::string category, std::string detail);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  // All entries matching a category (and optionally an actor), in time order.
  std::vector<TraceEntry> Filter(const std::string& category, int64_t actor = -1) const;

  // Multi-line rendering, one entry per line.
  std::string ToString() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEntry> entries_;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_TRACE_H_
