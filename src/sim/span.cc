#include "src/sim/span.h"

#include <sstream>
#include <utility>

namespace sim {

const char* ToString(SpanEvent event) {
  switch (event) {
    case SpanEvent::kSend:
      return "send";
    case SpanEvent::kStamp:
      return "stamp";
    case SpanEvent::kEnter:
      return "enter";
    case SpanEvent::kDeliver:
      return "deliver";
    case SpanEvent::kStable:
      return "stable";
    case SpanEvent::kDrop:
      return "drop";
  }
  return "?";
}

std::string SpanRecord::ToString() const {
  std::ostringstream out;
  out << when.ToString() << " [" << actor << "] " << sim::ToString(event) << " layer=" << layer;
  if (!note.empty()) {
    out << " (" << note << ")";
  }
  return out.str();
}

void SpanRecorder::set_capacity(size_t capacity) {
  capacity_ = capacity > 0 ? capacity : 1;
  while (records_.size() > capacity_) {
    records_.pop_front();
  }
}

void SpanRecorder::Record(uint64_t key, uint32_t actor, TimePoint when, SpanEvent event,
                          const char* layer, std::string note) {
  if (!enabled_) {
    return;
  }
  if (records_.size() == capacity_) {
    records_.pop_front();
  }
  records_.push_back(SpanRecord{key, actor, when, event, layer, std::move(note)});
  ++total_recorded_;
}

std::vector<SpanRecord> SpanRecorder::ForKey(uint64_t key, size_t max_events) const {
  std::vector<SpanRecord> out;
  for (const auto& record : records_) {
    if (record.key == key) {
      out.push_back(record);
    }
  }
  if (out.size() > max_events) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max_events));
  }
  return out;
}

std::string SpanRecorder::Render(const std::vector<SpanRecord>& records) {
  std::ostringstream out;
  for (const auto& record : records) {
    out << record.ToString() << "\n";
  }
  return out.str();
}

std::string SpanRecorder::ToString() const {
  return Render(std::vector<SpanRecord>(records_.begin(), records_.end()));
}

void SpanRecorder::Clear() {
  records_.clear();
  total_recorded_ = 0;
}

}  // namespace sim
