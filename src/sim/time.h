// Simulated-time primitives.
//
// All simulated time in this project is kept in integral nanoseconds so that
// event ordering is exact and platform independent. TimePoint is a point on
// the simulation clock; Duration is a signed span between points. Both are
// thin strong types over int64_t: cheap to copy, totally ordered, and
// impossible to mix up with wall-clock types.

#ifndef REPRO_SRC_SIM_TIME_H_
#define REPRO_SRC_SIM_TIME_H_

#include <cstdint>
#include <compare>
#include <string>

namespace sim {

class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(int64_t nanos) : nanos_(nanos) {}

  static constexpr Duration Nanos(int64_t n) { return Duration(n); }
  static constexpr Duration Micros(int64_t n) { return Duration(n * 1000); }
  static constexpr Duration Millis(int64_t n) { return Duration(n * 1000 * 1000); }
  static constexpr Duration Seconds(int64_t n) { return Duration(n * 1000 * 1000 * 1000); }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t nanos() const { return nanos_; }
  constexpr int64_t micros() const { return nanos_ / 1000; }
  constexpr int64_t millis() const { return nanos_ / (1000 * 1000); }
  constexpr double seconds() const { return static_cast<double>(nanos_) * 1e-9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const { return Duration(nanos_ + other.nanos_); }
  constexpr Duration operator-(Duration other) const { return Duration(nanos_ - other.nanos_); }
  constexpr Duration operator-() const { return Duration(-nanos_); }
  constexpr Duration operator*(int64_t k) const { return Duration(nanos_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(nanos_ / k); }
  constexpr Duration& operator+=(Duration other) {
    nanos_ += other.nanos_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    nanos_ -= other.nanos_;
    return *this;
  }

  std::string ToString() const;

 private:
  int64_t nanos_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(int64_t nanos) : nanos_(nanos) {}

  static constexpr TimePoint Zero() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t nanos() const { return nanos_; }
  constexpr double seconds() const { return static_cast<double>(nanos_) * 1e-9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint(nanos_ + d.nanos()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(nanos_ - d.nanos()); }
  constexpr Duration operator-(TimePoint other) const { return Duration(nanos_ - other.nanos_); }
  constexpr TimePoint& operator+=(Duration d) {
    nanos_ += d.nanos();
    return *this;
  }

  std::string ToString() const;

 private:
  int64_t nanos_ = 0;
};

}  // namespace sim

#endif  // REPRO_SRC_SIM_TIME_H_
