#include "src/fault/hidden_probe.h"

#include <memory>

namespace fault {

namespace {

// Outside the group's 0x0C000000 port block: the ordering layers never see
// token traffic, which is the whole point.
constexpr uint32_t kProbePort = 0x0B0BE001;

}  // namespace

HiddenChannelProbe::HiddenChannelProbe(ChaosRig* rig, obs::ProvenanceRecorder* recorder)
    : HiddenChannelProbe(rig, recorder, Config()) {}

HiddenChannelProbe::HiddenChannelProbe(ChaosRig* rig, obs::ProvenanceRecorder* recorder,
                                       Config config)
    : rig_(rig), recorder_(recorder), config_(config) {
  for (size_t slot = 0; slot < rig_->num_slots(); ++slot) {
    RegisterReceiver(slot, rig_->TransportOfSlot(slot));
  }
  rig_->SetIncarnationHook(
      [this](size_t slot, net::Transport& transport, catocs::GroupMember& /*member*/) {
        RegisterReceiver(slot, transport);
      });
}

HiddenChannelProbe::~HiddenChannelProbe() {
  Stop();
  rig_->SetIncarnationHook({});
}

void HiddenChannelProbe::Start() {
  timer_ = std::make_unique<sim::PeriodicTimer>(&rig_->simulator(), config_.interval,
                                                [this] { Tick(); });
  // Phase-shifted off the workload ticks so probe sends interleave with (and
  // never shadow) ordinary traffic.
  timer_->Start(config_.interval + sim::Duration::Micros(1337));
}

void HiddenChannelProbe::Stop() {
  if (timer_) {
    timer_->Stop();
  }
}

void HiddenChannelProbe::RegisterReceiver(size_t slot, net::Transport& transport) {
  transport.RegisterReceiver(
      kProbePort, [this, slot](net::NodeId /*src*/, uint32_t /*port*/, const net::PayloadPtr& p) {
        if (const auto* token = net::PayloadCast<ProbeToken>(p)) {
          OnToken(slot, token->src_key());
        }
      });
}

void HiddenChannelProbe::Tick() {
  const size_t n = rig_->num_slots();
  const uint64_t round = rounds_++;
  // Deterministic round-robin over live slots: src rotates with the round,
  // dst is the next live slot after it.
  size_t src = static_cast<size_t>(round % n);
  size_t tried = 0;
  while (tried < n && !rig_->SlotAlive(src)) {
    src = (src + 1) % n;
    ++tried;
  }
  if (tried == n) {
    return;  // nobody alive this round
  }
  size_t dst = (src + 1) % n;
  tried = 0;
  while (tried < n && (dst == src || !rig_->SlotAlive(dst))) {
    dst = (dst + 1) % n;
    ++tried;
  }
  if (tried == n || dst == src) {
    return;  // src is the only live slot
  }
  const catocs::MessageId m1 = rig_->ProbeSend(src, config_.mode);
  if (m1.seq == 0) {
    return;  // dropped or flush-queued: nothing identifiable to token
  }
  ++tokens_sent_;
  // Unreliable datagram, deliberately: the reliable path is FIFO per
  // destination, so a token behind m1's own multicast segment could never
  // overtake it and the "hidden" channel would leak no reordering at all.
  // An unreliable token races m1 on an independent latency sample — the
  // word-of-mouth channel of §2. A dropped token is a lost probe round.
  rig_->TransportOfSlot(src).SendUnreliable(rig_->NodeOf(dst), kProbePort,
                                            std::make_shared<ProbeToken>(catocs::SpanKey(m1)));
}

void HiddenChannelProbe::OnToken(size_t slot, uint64_t src_key) {
  ++tokens_received_;
  if (!rig_->SlotAlive(slot)) {
    return;  // token outlived the incarnation it was addressed to
  }
  const catocs::MessageId m2 = rig_->ProbeSend(slot, config_.mode);
  if (m2.seq == 0) {
    // Queued behind a flush: the send happens later under an id we never
    // learn. Skipping keeps ground truth and the recorder in exact agreement
    // — neither sees this edge.
    return;
  }
  ++edges_injected_;
  edges_.push_back(Edge{catocs::SpanKey(m2), src_key});
  if (recorder_ != nullptr) {
    recorder_->InjectHiddenEdge(catocs::SpanKey(m2), src_key);
  }
}

uint64_t CountHiddenMisses(const std::vector<ChaosRig::DeliveryRecord>& deliveries,
                           const std::vector<HiddenChannelProbe::Edge>& edges) {
  // Per member: message key -> position in that member's delivery sequence.
  std::map<catocs::MemberId, std::map<obs::MsgKey, size_t>> order;
  for (size_t i = 0; i < deliveries.size(); ++i) {
    order[deliveries[i].at].emplace(catocs::SpanKey(deliveries[i].delivery.id()), i);
  }
  uint64_t misses = 0;
  for (const auto& edge : edges) {
    for (const auto& [member, index_of] : order) {
      auto dep = index_of.find(edge.dependent);
      if (dep == index_of.end()) {
        continue;  // this member never delivered the dependent: no check
      }
      auto pred = index_of.find(edge.predecessor);
      if (pred == index_of.end() || pred->second > dep->second) {
        ++misses;
      }
    }
  }
  return misses;
}

}  // namespace fault
