// InvariantOracle: audits a ChaosRig run for the safety properties the
// CATOCS stack promises even under adversity —
//   * causal delivery order at every observer (reusing the group.cc checker);
//   * FIFO per sender;
//   * agreement on the total order (same sequence number, same message,
//     everywhere; strictly increasing per observer);
//   * no duplicate delivery at any single incarnation;
//   * no lost delivery: members that were never crashed agree exactly on the
//     set of delivered messages (atomicity among survivors);
//   * view synchrony: a view id names one member set, installed consistently,
//     with ids strictly increasing at each incarnation;
//   * stability monotonicity: the stability floor observed at a member never
//     retreats within a view (it legitimately resets across views — a joiner
//     that has not reported yet empties the floor);
//   * replicated-state agreement at quiescence: every live incarnation's
//     application store is identical — including rejoiners built from a
//     state-transfer snapshot plus redelivery;
//   * recovery completion: every recover event ends in an installed view
//     containing the new incarnation (a wedged rejoin is a finding, not a
//     timeout to shrug at);
//   * bounded memory (only meaningful for runs with a bounded budget): no
//     sampled ledger ever exceeds the configured byte/message caps, pressure
//     epochs never regress, and the pressure level is monotone
//     non-decreasing within one epoch (hysteresis means de-escalation always
//     starts a new epoch — see resource_budget.h).
//
// A violation is a human-readable string naming the observer, the messages,
// and the instant — enough to replay the seed and break at the moment it
// happens.

#ifndef REPRO_SRC_FAULT_ORACLE_H_
#define REPRO_SRC_FAULT_ORACLE_H_

#include <map>
#include <string>
#include <vector>

#include "src/fault/chaos_rig.h"

namespace fault {

struct OracleConfig {
  // Quiescence-only checks; disable when auditing mid-run.
  bool check_completeness = true;
  bool check_state_agreement = true;
  bool check_recovery_completed = true;
  // Vacuous when the run recorded no budget samples (unbounded budget).
  bool check_bounded_memory = true;
  size_t max_violations = 16;  // stop collecting after this many
};

struct OracleReport {
  std::vector<std::string> violations;
  uint64_t deliveries_audited = 0;
  uint64_t views_audited = 0;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// The raw evidence the oracle judges. Audit(const ChaosRig&) packs this from
// a rig; tests hand-build it to prove the oracle *detects* each violation
// class (an oracle that never fires is worse than none).
struct TraceObservations {
  std::vector<ChaosRig::DeliveryRecord> deliveries;
  std::vector<ChaosRig::ViewRecord> views;
  std::vector<ChaosRig::StabilitySample> stability_samples;
  std::vector<ChaosRig::RecoveryStat> recoveries;
  std::vector<ChaosRig::BudgetSample> budget_samples;
  std::vector<catocs::MemberId> always_live;
  std::map<catocs::MemberId, std::map<uint64_t, uint64_t>> live_stores;
};

class InvariantOracle {
 public:
  explicit InvariantOracle(OracleConfig config = {}) : config_(config) {}

  OracleReport Audit(const ChaosRig& rig) const;
  OracleReport Audit(const TraceObservations& trace) const;

 private:
  OracleConfig config_;
};

}  // namespace fault

#endif  // REPRO_SRC_FAULT_ORACLE_H_
