#include "src/fault/chaos_rig.h"

#include <cassert>
#include <sstream>
#include <utility>

namespace fault {

ChaosRig::ChaosRig(sim::Simulator* simulator, ChaosRigConfig config)
    : simulator_(simulator), config_(std::move(config)) {
  assert(config_.num_slots >= 2);
  config_.group.enable_membership = true;
  if (config_.group.causal_buffer == catocs::CausalBufferKind::kOverlay) {
    config_.causal_only = true;
  }
  network_ = std::make_unique<net::Network>(
      simulator_, std::make_unique<net::UniformLatency>(config_.latency_lo, config_.latency_hi),
      config_.network);
  std::vector<catocs::MemberId> founding;
  for (size_t slot = 0; slot < config_.num_slots; ++slot) {
    founding.push_back(static_cast<catocs::MemberId>(slot + 1));
  }
  next_id_ = static_cast<catocs::MemberId>(config_.num_slots + 1);
  slots_.resize(config_.num_slots);
  for (size_t slot = 0; slot < config_.num_slots; ++slot) {
    auto inc = std::make_unique<Incarnation>();
    inc->id = founding[slot];
    inc->transport = std::make_unique<net::Transport>(simulator_, network_.get(), inc->id,
                                                      config_.transport);
    inc->member = std::make_unique<catocs::GroupMember>(simulator_, inc->transport.get(),
                                                        config_.group, inc->id, founding);
    WireIncarnation(slot, *inc);
    slots_[slot].incarnations.push_back(std::move(inc));
  }
}

ChaosRig::~ChaosRig() = default;

void ChaosRig::WireIncarnation(size_t slot, Incarnation& inc) {
  catocs::GroupMember* member = inc.member.get();
  Incarnation* raw = &inc;
  member->SetDeliveryHandler([this, slot, raw](const catocs::Delivery& delivery) {
    if (const auto* update = net::PayloadCast<ChaosUpdate>(delivery.payload())) {
      raw->store[update->key()] = update->value();
    }
    deliveries_.push_back(DeliveryRecord{raw->id, slot, delivery});
    stability_samples_.push_back(StabilitySample{raw->id, raw->member->view().id,
                                                 raw->member->stability().StableVector()});
    if (config_.group.budget.bounded()) {
      const catocs::ResourceBudget& budget = raw->member->budget();
      budget_samples_.push_back(BudgetSample{
          raw->id, simulator_->now(), budget.pressure_epoch(), budget.pressure(),
          budget.used_bytes(), budget.used_messages(), config_.group.budget.max_bytes,
          config_.group.budget.max_messages});
    }
  });
  member->SetViewHandler([this, raw](const catocs::View& view) {
    views_.push_back(ViewRecord{raw->id, simulator_->now(), view});
    if (raw->rejoiner) {
      for (auto& stat : recoveries_) {
        if (stat.new_id == raw->id && !stat.rejoined) {
          stat.rejoined = true;
          stat.rejoined_at = simulator_->now();
        }
      }
    }
  });
  member->SetStateProvider(
      [raw]() -> net::PayloadPtr { return std::make_shared<ChaosSnapshot>(raw->store); });
  member->SetStateApplier([raw](const net::PayloadPtr& payload) {
    if (const auto* snapshot = net::PayloadCast<ChaosSnapshot>(payload)) {
      raw->store = snapshot->store();
    }
  });
  // A transport give-up is an externally detected failure: feed it to the
  // membership layer so an evicted-but-undetected peer still gets flushed out.
  inc.transport->SetFailureHandler([member](net::NodeId peer) {
    member->ReportFailure(static_cast<catocs::MemberId>(peer));
  });
}

void ChaosRig::Start() {
  for (auto& slot : slots_) {
    slot.incarnations.back()->member->Start();
  }
  workload_running_ = true;
  for (size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].workload = std::make_unique<sim::PeriodicTimer>(
        simulator_, config_.workload_interval, [this, i] { WorkloadTick(i); });
    // Staggered starts so slots never tick at the same instant.
    slots_[i].workload->Start(sim::Duration::Micros(700 * static_cast<int64_t>(i + 1)));
  }
}

void ChaosRig::StopWorkload() {
  workload_running_ = false;
  for (auto& slot : slots_) {
    if (slot.workload) {
      slot.workload->Stop();
    }
  }
}

void ChaosRig::WorkloadTick(size_t slot) {
  if (!workload_running_ || !slots_[slot].alive) {
    return;
  }
  Incarnation& inc = current(slot);
  const size_t burst = overload_factor_ == 1.0
                           ? config_.workload_burst
                           : static_cast<size_t>(
                                 static_cast<double>(config_.workload_burst) * overload_factor_ +
                                 0.5);
  for (size_t i = 0; i < burst; ++i) {
    const uint64_t counter = ++inc.send_counter;
    const uint64_t key = (static_cast<uint64_t>(inc.id) << 32) | counter;
    const auto mode = (!config_.causal_only && counter % 3 == 0) ? catocs::OrderingMode::kTotal
                                                                 : catocs::OrderingMode::kCausal;
    ++sends_issued_;
    const catocs::SendResult result = inc.member->TrySend(
        mode, std::make_shared<ChaosUpdate>(key, counter, config_.payload_bytes));
    if (result.status == catocs::SendStatus::kBackpressured) {
      ++sends_backpressured_;
    } else if (result.status == catocs::SendStatus::kShed) {
      ++sends_shed_;
    }
  }
}

catocs::MessageId ChaosRig::ProbeSend(size_t slot, catocs::OrderingMode mode) {
  if (!slots_[slot].alive) {
    return catocs::MessageId{0, 0};
  }
  Incarnation& inc = current(slot);
  const uint64_t counter = ++probe_counter_;
  const uint64_t key = (1ull << 63) | counter;
  ++probe_sends_issued_;
  return inc.member->Send(mode,
                          std::make_shared<ChaosUpdate>(key, counter, config_.payload_bytes));
}

void ChaosRig::CrashSlot(size_t slot) {
  if (!slots_[slot].alive) {
    return;
  }
  slots_[slot].alive = false;
  slots_[slot].ever_crashed = true;
  Incarnation& inc = current(slot);
  inc.member->Stop();
  network_->SetNodeUp(inc.id, false);
  inc.transport->ResetPeerState();
  RecoveryStat stat;
  stat.slot = slot;
  stat.old_id = inc.id;
  stat.crashed_at = simulator_->now();
  recoveries_.push_back(stat);
}

void ChaosRig::RecoverSlot(size_t slot) {
  if (slots_[slot].alive) {
    return;
  }
  auto inc = std::make_unique<Incarnation>();
  inc->id = next_id_++;
  inc->rejoiner = true;
  inc->transport = std::make_unique<net::Transport>(simulator_, network_.get(), inc->id,
                                                    config_.transport);
  inc->member = std::make_unique<catocs::GroupMember>(
      simulator_, inc->transport.get(), config_.group, inc->id,
      std::vector<catocs::MemberId>{inc->id});
  WireIncarnation(slot, *inc);
  if (incarnation_hook_) {
    incarnation_hook_(slot, *inc->transport, *inc->member);
  }
  inc->member->Start();
  // Slot 0 never crashes (the generator guarantees it), so its founding
  // member is always a valid contact — and, as the lowest id, the flush
  // coordinator that serves the state snapshot.
  const catocs::MemberId contact = current(0).id;
  for (auto& stat : recoveries_) {
    if (stat.slot == slot && !stat.rejoined && stat.new_id == 0) {
      stat.new_id = inc->id;
      stat.recover_started = simulator_->now();
    }
  }
  inc->member->JoinGroup(contact);
  slots_[slot].incarnations.push_back(std::move(inc));
  slots_[slot].alive = true;
}

net::NodeId ChaosRig::NodeOf(size_t slot) const { return current(slot).id; }

const catocs::GroupMember& ChaosRig::MemberOfSlot(size_t slot) const {
  return *current(slot).member;
}

std::vector<catocs::MemberId> ChaosRig::AlwaysLiveMembers() const {
  std::vector<catocs::MemberId> out;
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    if (!slots_[slot].ever_crashed) {
      out.push_back(current(slot).id);
    }
  }
  return out;
}

std::map<catocs::MemberId, std::map<uint64_t, uint64_t>> ChaosRig::LiveStores() const {
  std::map<catocs::MemberId, std::map<uint64_t, uint64_t>> out;
  for (const auto& slot : slots_) {
    if (slot.alive) {
      const Incarnation& inc = *slot.incarnations.back();
      out.emplace(inc.id, inc.store);
    }
  }
  return out;
}

namespace {

uint64_t Fnv1a(uint64_t hash, const std::string& s) {
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

uint64_t ChaosRig::TraceHash() const {
  uint64_t hash = 14695981039346656037ull;
  std::ostringstream line;
  for (const auto& record : deliveries_) {
    line.str("");
    line << "d " << record.delivery.delivered_at.nanos() << " at=" << record.at
         << " id=" << record.delivery.id().ToString()
         << " mode=" << catocs::ToString(record.delivery.mode())
         << " ts=" << record.delivery.total_seq;
    hash = Fnv1a(hash, line.str());
  }
  for (const auto& record : views_) {
    line.str("");
    line << "v " << record.when.nanos() << " at=" << record.at << " view=" << record.view.id
         << " n=" << record.view.members.size();
    for (catocs::MemberId member : record.view.members) {
      line << " " << member;
    }
    hash = Fnv1a(hash, line.str());
  }
  for (const auto& stat : recoveries_) {
    line.str("");
    line << "r slot=" << stat.slot << " old=" << stat.old_id << " new=" << stat.new_id
         << " crashed=" << stat.crashed_at.nanos()
         << " rejoined=" << (stat.rejoined ? stat.rejoined_at.nanos() : -1);
    hash = Fnv1a(hash, line.str());
  }
  return hash;
}

catocs::PipelineStats ChaosRig::AggregatePipelineStats() const {
  catocs::PipelineStats merged;
  for (const Slot& slot : slots_) {
    for (const auto& inc : slot.incarnations) {
      merged.Merge(inc->member->pipeline_stats());
    }
  }
  return merged;
}

}  // namespace fault
