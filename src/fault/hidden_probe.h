// HiddenChannelProbe: manufactures *known* out-of-band causality inside a
// ChaosRig run, so the provenance recorder's hidden-miss accounting can be
// validated against ground truth instead of taken on faith.
//
// Each probe round, on a deterministic timer:
//   1. pick src = round mod slots (advancing past dead slots) and dst = the
//      next live slot after src;
//   2. m1 = rig.ProbeSend(src): an ordinary ordered multicast;
//   3. src passes a token naming m1 straight to dst over a dedicated port,
//      as an unreliable datagram — out-of-band in ordering (it races m1's
//      own multicast instead of queueing behind it) and in reliability (a
//      dropped token is a lost probe round);
//   4. on token receipt, dst issues m2 = rig.ProbeSend(dst) and injects the
//      hidden edge m2 -> m1 into the recorder.
//
// m2 is a real causal consequence of m1 (it exists only because the token
// arrived), yet m2's vector timestamp reflects m1 only if dst happened to
// causally deliver m1 first — exactly the unrecognized-causality hole of §2.
// Every member that delivers m2 before m1 is a hidden-channel miss.
//
// The probe re-registers its token receiver on recovery rejoins through the
// rig's incarnation hook; a token addressed to a crashed incarnation is
// simply lost, like any other traffic to it.

#ifndef REPRO_SRC_FAULT_HIDDEN_PROBE_H_
#define REPRO_SRC_FAULT_HIDDEN_PROBE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/chaos_rig.h"
#include "src/obs/provenance.h"

namespace fault {

// The out-of-band token: names the probe message the receiver's next send
// will causally depend on. Travels on kProbePort, outside the group's block.
class ProbeToken : public net::Payload {
 public:
  explicit ProbeToken(uint64_t src_key) : src_key_(src_key) {}
  size_t SizeBytes() const override { return 16; }
  std::string Describe() const override { return "probe-token"; }
  uint64_t src_key() const { return src_key_; }

 private:
  uint64_t src_key_;
};

class HiddenChannelProbe {
 public:
  struct Config {
    sim::Duration interval = sim::Duration::Millis(40);
    catocs::OrderingMode mode = catocs::OrderingMode::kCausal;
  };

  // One ground-truth hidden edge: `dependent` was sent because `predecessor`
  // arrived over the token channel.
  struct Edge {
    obs::MsgKey dependent = 0;
    obs::MsgKey predecessor = 0;
  };

  // Registers the token receiver on every current incarnation and installs
  // the rig's incarnation hook for future rejoins. The recorder may be null
  // (edges are then only collected locally — useful for rig-level tests).
  HiddenChannelProbe(ChaosRig* rig, obs::ProvenanceRecorder* recorder);
  HiddenChannelProbe(ChaosRig* rig, obs::ProvenanceRecorder* recorder, Config config);
  ~HiddenChannelProbe();

  HiddenChannelProbe(const HiddenChannelProbe&) = delete;
  HiddenChannelProbe& operator=(const HiddenChannelProbe&) = delete;

  void Start();
  void Stop();

  const std::vector<Edge>& edges() const { return edges_; }
  uint64_t rounds() const { return rounds_; }
  uint64_t tokens_sent() const { return tokens_sent_; }
  uint64_t tokens_received() const { return tokens_received_; }
  uint64_t edges_injected() const { return edges_injected_; }

 private:
  void Tick();
  void OnToken(size_t slot, uint64_t src_key);
  void RegisterReceiver(size_t slot, net::Transport& transport);

  ChaosRig* rig_;
  obs::ProvenanceRecorder* recorder_;
  Config config_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
  std::vector<Edge> edges_;
  uint64_t rounds_ = 0;
  uint64_t tokens_sent_ = 0;
  uint64_t tokens_received_ = 0;
  uint64_t edges_injected_ = 0;
};

// Independent ground-truth recount of hidden-channel misses from the rig's
// delivery records: for each edge and each member that delivered the
// dependent, a miss iff the predecessor was not delivered there first. Must
// equal the recorder's totals().hidden_missed when the recorder's hidden
// edges are exactly `edges` — the oracle cross-check bench_e19 and
// fuzz_chaos --trace run.
uint64_t CountHiddenMisses(const std::vector<ChaosRig::DeliveryRecord>& deliveries,
                           const std::vector<HiddenChannelProbe::Edge>& edges);

}  // namespace fault

#endif  // REPRO_SRC_FAULT_HIDDEN_PROBE_H_
