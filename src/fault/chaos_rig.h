// ChaosRig: a CATOCS group built for adversity.
//
// Where GroupFabric stands up a static group, the rig manages *slots* —
// logical replicas whose current incarnation can crash and later rejoin
// under a fresh member id through the membership layer, receiving an
// application-state snapshot from a live member (state transfer). Each
// incarnation runs a tiny replicated key-value application over the group's
// causal/total multicast, and the rig records every delivery, view install,
// and stability sample so an InvariantOracle can audit the run afterwards.
// All activity is driven off the owning Simulator: one seed reproduces the
// whole chaotic run bit-for-bit, summarized by TraceHash().

#ifndef REPRO_SRC_FAULT_CHAOS_RIG_H_
#define REPRO_SRC_FAULT_CHAOS_RIG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group_member.h"
#include "src/catocs/pipeline_stats.h"
#include "src/net/network.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace fault {

struct ChaosRigConfig {
  size_t num_slots = 4;
  catocs::GroupConfig group;  // membership is force-enabled by the rig
  net::NetworkConfig network;
  net::TransportConfig transport;
  sim::Duration latency_lo = sim::Duration::Millis(1);
  sim::Duration latency_hi = sim::Duration::Millis(5);

  // Workload: every live slot multicasts a unique-key update each interval;
  // every third send per slot is totally ordered, the rest causal. With
  // workload_burst > 1 each tick issues that many back-to-back sends — the
  // traffic shape that actually exercises sender-side batching.
  sim::Duration workload_interval = sim::Duration::Millis(15);
  size_t payload_bytes = 64;
  size_t workload_burst = 1;
  // Keep every send causal (no total-order thirds). Forced on for the
  // overlay buffer, whose dissemination path orders causally only.
  bool causal_only = false;
};

class ChaosRig {
 public:
  ChaosRig(sim::Simulator* simulator, ChaosRigConfig config);
  ~ChaosRig();

  ChaosRig(const ChaosRig&) = delete;
  ChaosRig& operator=(const ChaosRig&) = delete;

  // Starts members and the per-slot workload timers.
  void Start();
  // Stops new sends; protocol machinery keeps running so in-flight traffic
  // drains and redelivery completes.
  void StopWorkload();

  // --- fault surface (driven by FaultInjector) ------------------------------
  void CrashSlot(size_t slot);
  // Fresh member id, JoinGroup through slot 0's member, state transfer.
  void RecoverSlot(size_t slot);
  bool SlotAlive(size_t slot) const { return slots_[slot].alive; }
  // Current node id of the slot's incarnation (valid even while down).
  net::NodeId NodeOf(size_t slot) const;
  // Workload multiplier driven by FaultKind::kOverloadBurst: each tick issues
  // round(workload_burst * factor) sends while the burst window is open.
  void SetOverloadFactor(double factor) { overload_factor_ = factor; }
  double overload_factor() const { return overload_factor_; }
  net::Network& network() { return *network_; }
  sim::Simulator& simulator() { return *simulator_; }
  size_t num_slots() const { return config_.num_slots; }

  // --- hidden-channel probe surface (see hidden_probe.h) --------------------
  // Issues one ordered workload-style send from `slot`'s current incarnation
  // in the probe key space (top bit set, so probe updates never collide with
  // workload keys and replica stores still converge). Returns the id the
  // message was sent under — {0, 0} if it was dropped or queued behind a
  // flush. No-op ({0, 0}) on a dead slot.
  catocs::MessageId ProbeSend(size_t slot, catocs::OrderingMode mode);
  // Hook invoked for every incarnation wired *after* installation — i.e.
  // recovery rejoins — so a probe can re-register its out-of-band token
  // receiver on the fresh transport. One consumer at a time.
  using IncarnationHook = std::function<void(size_t, net::Transport&, catocs::GroupMember&)>;
  void SetIncarnationHook(IncarnationHook hook) { incarnation_hook_ = std::move(hook); }
  net::Transport& TransportOfSlot(size_t slot) { return *current(slot).transport; }
  uint64_t probe_sends_issued() const { return probe_sends_issued_; }

  // --- observations (consumed by InvariantOracle) ---------------------------
  struct DeliveryRecord {
    catocs::MemberId at;
    size_t slot;
    catocs::Delivery delivery;
  };
  struct ViewRecord {
    catocs::MemberId at;
    sim::TimePoint when;
    catocs::View view;
  };
  // Stability floor observed at `at` right after a delivery there; the
  // baseline resets per view (a joiner that has not reported yet legitimately
  // empties the floor).
  struct StabilitySample {
    catocs::MemberId at;
    uint64_t view_id;
    catocs::VectorClock stable;
  };
  struct RecoveryStat {
    size_t slot = 0;
    catocs::MemberId old_id = 0;
    catocs::MemberId new_id = 0;
    sim::TimePoint crashed_at;
    sim::TimePoint recover_started;
    sim::TimePoint rejoined_at;  // first view install containing the new id
    bool rejoined = false;
  };
  // Budget ledger observed at `at` right after a delivery there (recorded
  // only when the group runs with a bounded budget). The oracle checks that
  // usage never exceeds the configured caps and that the pressure level is
  // monotone within a pressure epoch.
  struct BudgetSample {
    catocs::MemberId at = 0;
    sim::TimePoint when;
    uint64_t epoch = 0;
    catocs::MemoryPressure level = catocs::MemoryPressure::kNone;
    size_t used_bytes = 0;
    size_t used_messages = 0;
    size_t max_bytes = 0;
    size_t max_messages = 0;
  };

  const std::vector<DeliveryRecord>& deliveries() const { return deliveries_; }
  const std::vector<ViewRecord>& views() const { return views_; }
  const std::vector<StabilitySample>& stability_samples() const { return stability_samples_; }
  const std::vector<RecoveryStat>& recoveries() const { return recoveries_; }
  const std::vector<BudgetSample>& budget_samples() const { return budget_samples_; }
  uint64_t sends_issued() const { return sends_issued_; }
  // Flow-control refusals seen by the workload (zero without flow control).
  uint64_t sends_backpressured() const { return sends_backpressured_; }
  uint64_t sends_shed() const { return sends_shed_; }

  // Member ids of founding slots that never crashed: the observers for which
  // delivery atomicity must hold unconditionally.
  std::vector<catocs::MemberId> AlwaysLiveMembers() const;
  // member id -> application store, for every currently live incarnation.
  std::map<catocs::MemberId, std::map<uint64_t, uint64_t>> LiveStores() const;
  const catocs::GroupMember& MemberOfSlot(size_t slot) const;

  // FNV-1a fingerprint over every delivery, view install, and recovery, in
  // observation order — byte-identical across replays of the same seed.
  uint64_t TraceHash() const;

  // Per-layer hold attribution merged across every incarnation that ever ran
  // (crashed members keep their stats). All-zero unless the rig was built
  // with config.group.observability set.
  catocs::PipelineStats AggregatePipelineStats() const;

 private:
  struct Incarnation {
    catocs::MemberId id = 0;
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<catocs::GroupMember> member;
    std::map<uint64_t, uint64_t> store;  // the replicated application state
    uint64_t send_counter = 0;
    bool rejoiner = false;
  };
  struct Slot {
    std::vector<std::unique_ptr<Incarnation>> incarnations;  // last = current
    bool alive = true;
    bool ever_crashed = false;
    std::unique_ptr<sim::PeriodicTimer> workload;
  };

  Incarnation& current(size_t slot) { return *slots_[slot].incarnations.back(); }
  const Incarnation& current(size_t slot) const { return *slots_[slot].incarnations.back(); }
  void WireIncarnation(size_t slot, Incarnation& inc);
  void WorkloadTick(size_t slot);

  sim::Simulator* simulator_;
  ChaosRigConfig config_;
  std::unique_ptr<net::Network> network_;
  std::vector<Slot> slots_;
  catocs::MemberId next_id_;
  bool workload_running_ = false;
  IncarnationHook incarnation_hook_;
  uint64_t probe_counter_ = 0;
  uint64_t probe_sends_issued_ = 0;

  std::vector<DeliveryRecord> deliveries_;
  std::vector<ViewRecord> views_;
  std::vector<StabilitySample> stability_samples_;
  std::vector<RecoveryStat> recoveries_;
  std::vector<BudgetSample> budget_samples_;
  uint64_t sends_issued_ = 0;
  uint64_t sends_backpressured_ = 0;
  uint64_t sends_shed_ = 0;
  double overload_factor_ = 1.0;
};

// The workload's update payload: a unique key per (member, per-slot counter)
// mapping to the counter value, so replica stores are order-insensitive and
// comparable with plain equality.
class ChaosUpdate : public net::Payload {
 public:
  ChaosUpdate(uint64_t key, uint64_t value, size_t size_bytes)
      : key_(key), value_(value), size_(size_bytes) {}
  size_t SizeBytes() const override { return size_; }
  std::string Describe() const override { return "chaos-update"; }
  uint64_t key() const { return key_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t key_;
  uint64_t value_;
  size_t size_;
};

// Application snapshot carried on a joiner's ViewInstall during state
// transfer.
class ChaosSnapshot : public net::Payload {
 public:
  explicit ChaosSnapshot(std::map<uint64_t, uint64_t> store) : store_(std::move(store)) {}
  size_t SizeBytes() const override { return 16 * store_.size(); }
  std::string Describe() const override { return "chaos-snapshot"; }
  const std::map<uint64_t, uint64_t>& store() const { return store_; }

 private:
  std::map<uint64_t, uint64_t> store_;
};

}  // namespace fault

#endif  // REPRO_SRC_FAULT_CHAOS_RIG_H_
