// FaultInjector: turns a FaultPlan into scheduled simulator events against a
// ChaosRig. Slot-indexed events resolve to concrete node ids at the instant
// they fire (a recovered slot has a fresh id by then); burst events capture
// the pre-burst baseline when applied and schedule their own revert. The
// injector draws nothing from any RNG, so installing a plan perturbs no
// random stream — determinism is preserved under fault injection.

#ifndef REPRO_SRC_FAULT_INJECTOR_H_
#define REPRO_SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/chaos_rig.h"
#include "src/fault/fault_plan.h"

namespace fault {

class FaultInjector {
 public:
  FaultInjector(sim::Simulator* simulator, ChaosRig* rig)
      : simulator_(simulator), rig_(rig) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every event of the plan (plus burst reverts) relative to the
  // current simulated time. The injector must outlive the run.
  void Install(const FaultPlan& plan);

  uint64_t events_applied() const { return events_applied_; }
  // One line per applied event ("<ms> <kind> ..."), for tests and reports.
  const std::vector<std::string>& applied_log() const { return applied_log_; }

 private:
  void Apply(const FaultEvent& event);

  sim::Simulator* simulator_;
  ChaosRig* rig_;
  uint64_t events_applied_ = 0;
  std::vector<std::string> applied_log_;
};

}  // namespace fault

#endif  // REPRO_SRC_FAULT_INJECTOR_H_
