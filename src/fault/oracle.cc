#include "src/fault/oracle.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/catocs/group.h"

namespace fault {

namespace {

using catocs::MemberId;
using catocs::MessageId;

class Collector {
 public:
  explicit Collector(size_t cap) : cap_(cap) {}

  void Add(std::string violation) {
    if (violations_.size() < cap_) {
      violations_.push_back(std::move(violation));
    }
    ++total_;
  }
  bool full() const { return total_ >= cap_; }
  std::vector<std::string> Take() { return std::move(violations_); }

 private:
  size_t cap_;
  size_t total_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace

std::string OracleReport::Summary() const {
  std::ostringstream out;
  out << (ok() ? "OK" : "VIOLATIONS") << " (" << deliveries_audited << " deliveries, "
      << views_audited << " view installs audited)";
  for (const auto& violation : violations) {
    out << "\n  ! " << violation;
  }
  return out.str();
}

OracleReport InvariantOracle::Audit(const ChaosRig& rig) const {
  TraceObservations trace;
  trace.deliveries = rig.deliveries();
  trace.views = rig.views();
  trace.stability_samples = rig.stability_samples();
  trace.recoveries = rig.recoveries();
  trace.budget_samples = rig.budget_samples();
  trace.always_live = rig.AlwaysLiveMembers();
  trace.live_stores = rig.LiveStores();
  return Audit(trace);
}

OracleReport InvariantOracle::Audit(const TraceObservations& trace) const {
  OracleReport report;
  Collector collect(config_.max_violations);

  // Reuse the ordering checkers from group.cc: causal order, FIFO, and
  // total-order agreement are the same properties whether the group is
  // static or chaotic.
  std::vector<catocs::GroupFabric::Record> records;
  records.reserve(trace.deliveries.size());
  for (const auto& record : trace.deliveries) {
    records.push_back(catocs::GroupFabric::Record{record.at, record.delivery});
  }
  report.deliveries_audited = records.size();
  if (std::string err = catocs::CheckCausalDeliveryInvariant(records); !err.empty()) {
    collect.Add("causal-order: " + err);
  }
  if (std::string err = catocs::CheckFifoInvariant(records); !err.empty()) {
    collect.Add("fifo: " + err);
  }
  if (std::string err = catocs::CheckTotalOrderInvariant(records); !err.empty()) {
    collect.Add("total-order: " + err);
  }

  // No duplicate delivery at a single incarnation.
  {
    std::set<std::pair<MemberId, MessageId>> seen;
    for (const auto& record : trace.deliveries) {
      if (!seen.insert({record.at, record.delivery.id()}).second) {
        std::ostringstream out;
        out << "duplicate-delivery: member " << record.at << " delivered "
            << record.delivery.id().ToString() << " twice (second at "
            << record.delivery.delivered_at.nanos() << "ns)";
        collect.Add(out.str());
      }
    }
  }

  // The final agreed view: the highest view id anyone installed. A member
  // evicted from it while still alive (false suspicion under lossy links)
  // wedges under the primary-partition rule instead of seceding, so it
  // legitimately stops delivering; completeness and state agreement apply
  // only to always-live members still inside the final view. With no view
  // change ever recorded, every founding member qualifies.
  std::set<MemberId> final_members;
  bool have_final_view = false;
  uint64_t final_view_id = 0;
  for (const auto& record : trace.views) {
    if (!have_final_view || record.view.id > final_view_id) {
      final_view_id = record.view.id;
      final_members = std::set<MemberId>(record.view.members.begin(), record.view.members.end());
      have_final_view = true;
    }
  }
  const auto in_final_view = [&](MemberId member) {
    return !have_final_view || final_members.count(member) > 0;
  };

  // No lost delivery: never-crashed members of the final view agree exactly
  // on the delivered set (view-synchronous atomicity among survivors).
  if (config_.check_completeness) {
    const std::vector<MemberId> always = trace.always_live;
    std::map<MemberId, std::set<MessageId>> delivered_at;
    for (MemberId member : always) {
      if (in_final_view(member)) {
        delivered_at[member];  // ensure present even if it delivered nothing
      }
    }
    for (const auto& record : trace.deliveries) {
      auto it = delivered_at.find(record.at);
      if (it != delivered_at.end()) {
        it->second.insert(record.delivery.id());
      }
    }
    std::set<MessageId> union_set;
    for (const auto& [member, set] : delivered_at) {
      union_set.insert(set.begin(), set.end());
    }
    for (const auto& [member, set] : delivered_at) {
      if (collect.full()) {
        break;
      }
      for (const MessageId& id : union_set) {
        if (!set.count(id)) {
          std::ostringstream out;
          out << "lost-delivery: member " << member << " (never crashed) missed "
              << id.ToString() << " which another live member delivered";
          collect.Add(out.str());
          if (collect.full()) {
            break;
          }
        }
      }
    }
  }

  // View synchrony: one member set per view id, ids strictly increasing per
  // incarnation.
  {
    report.views_audited = trace.views.size();
    std::map<uint64_t, std::vector<MemberId>> members_of_view;
    std::map<MemberId, uint64_t> last_view_at;
    for (const auto& record : trace.views) {
      auto [it, inserted] = members_of_view.emplace(record.view.id, record.view.members);
      if (!inserted && it->second != record.view.members) {
        std::ostringstream out;
        out << "view-synchrony: view " << record.view.id << " installed at member " << record.at
            << " with a different member set than elsewhere (split brain)";
        collect.Add(out.str());
      }
      auto [last, first_install] = last_view_at.emplace(record.at, record.view.id);
      if (!first_install) {
        if (record.view.id <= last->second) {
          std::ostringstream out;
          out << "view-synchrony: member " << record.at << " installed view " << record.view.id
              << " after view " << last->second;
          collect.Add(out.str());
        }
        last->second = record.view.id;
      }
    }
  }

  // Stability monotonicity within a view: the floor a member observes never
  // retreats until the member set changes.
  {
    struct Last {
      uint64_t view_id = 0;
      catocs::VectorClock stable;
      bool valid = false;
    };
    std::map<MemberId, Last> last_sample;
    for (const auto& sample : trace.stability_samples) {
      Last& last = last_sample[sample.at];
      if (last.valid && last.view_id == sample.view_id) {
        for (const auto& [sender, value] : last.stable.entries()) {
          if (sample.stable.Get(sender) < value) {
            std::ostringstream out;
            out << "stability-regression: member " << sample.at << " in view " << sample.view_id
                << " saw the stable floor for sender " << sender << " fall from " << value
                << " to " << sample.stable.Get(sender);
            collect.Add(out.str());
            break;
          }
        }
      }
      last.view_id = sample.view_id;
      last.stable = sample.stable;
      last.valid = true;
    }
  }

  // Replicated-state agreement at quiescence: every live incarnation —
  // including rejoiners rebuilt from snapshot + redelivery — holds the same
  // application store.
  if (config_.check_state_agreement) {
    auto stores = trace.live_stores;
    for (auto it = stores.begin(); it != stores.end();) {
      it = in_final_view(it->first) ? std::next(it) : stores.erase(it);
    }
    if (!stores.empty()) {
      const auto& [ref_member, ref_store] = *stores.begin();
      for (const auto& [member, store] : stores) {
        if (store != ref_store) {
          std::ostringstream out;
          size_t missing = 0;
          size_t extra = 0;
          for (const auto& [key, value] : ref_store) {
            auto it = store.find(key);
            if (it == store.end() || it->second != value) {
              ++missing;
            }
          }
          for (const auto& [key, value] : store) {
            if (!ref_store.count(key)) {
              ++extra;
            }
          }
          out << "state-divergence: member " << member << " store differs from member "
              << ref_member << " (" << missing << " missing/changed, " << extra
              << " extra of " << ref_store.size() << " keys)";
          collect.Add(out.str());
        }
      }
    }
  }

  // Bounded memory: no sampled ledger exceeds its configured caps, and the
  // pressure signal behaves as documented — epochs never regress at a
  // member, and within one epoch the level is monotone non-decreasing
  // (escalation is immediate; de-escalation always opens a new epoch).
  if (config_.check_bounded_memory) {
    struct LastPressure {
      uint64_t epoch = 0;
      int level = 0;
      bool valid = false;
    };
    std::map<MemberId, LastPressure> last_pressure;
    for (const auto& sample : trace.budget_samples) {
      if (collect.full()) {
        break;
      }
      if (sample.max_bytes != 0 && sample.used_bytes > sample.max_bytes) {
        std::ostringstream out;
        out << "budget-exceeded: member " << sample.at << " at " << sample.when.nanos()
            << "ns held " << sample.used_bytes << " bytes against a cap of "
            << sample.max_bytes;
        collect.Add(out.str());
      }
      if (sample.max_messages != 0 && sample.used_messages > sample.max_messages) {
        std::ostringstream out;
        out << "budget-exceeded: member " << sample.at << " at " << sample.when.nanos()
            << "ns held " << sample.used_messages << " messages against a cap of "
            << sample.max_messages;
        collect.Add(out.str());
      }
      LastPressure& last = last_pressure[sample.at];
      const int level = static_cast<int>(sample.level);
      if (last.valid) {
        if (sample.epoch < last.epoch) {
          std::ostringstream out;
          out << "pressure-epoch-regression: member " << sample.at << " at "
              << sample.when.nanos() << "ns went from epoch " << last.epoch << " back to "
              << sample.epoch;
          collect.Add(out.str());
        } else if (sample.epoch == last.epoch && level < last.level) {
          std::ostringstream out;
          out << "pressure-regression: member " << sample.at << " at " << sample.when.nanos()
              << "ns de-escalated from " << catocs::ToString(
                     static_cast<catocs::MemoryPressure>(last.level))
              << " to " << catocs::ToString(sample.level) << " without a new epoch";
          collect.Add(out.str());
        }
      }
      last.epoch = sample.epoch;
      last.level = level;
      last.valid = true;
    }
  }

  // Every recovery completed: the fresh incarnation installed a view
  // containing itself.
  if (config_.check_recovery_completed) {
    for (const auto& stat : trace.recoveries) {
      if (stat.new_id != 0 && !stat.rejoined) {
        std::ostringstream out;
        out << "wedged-rejoin: slot " << stat.slot << " (old id " << stat.old_id
            << ", new id " << stat.new_id << ") started rejoining at "
            << stat.recover_started.nanos() << "ns but never installed a view with itself";
        collect.Add(out.str());
      }
    }
  }

  report.violations = collect.Take();
  return report;
}

}  // namespace fault
