#include "src/fault/injector.h"

#include <set>

namespace fault {

void FaultInjector::Install(const FaultPlan& plan) {
  const sim::TimePoint base = simulator_->now();
  for (const FaultEvent& event : plan.events) {
    simulator_->ScheduleAt(base + (event.at - sim::TimePoint::Zero()),
                           [this, event] { Apply(event); });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  ++events_applied_;
  applied_log_.push_back(event.Describe());
  net::Network& network = rig_->network();
  switch (event.kind) {
    case FaultKind::kCrash:
      rig_->CrashSlot(event.slot);
      break;
    case FaultKind::kRecover:
      rig_->RecoverSlot(event.slot);
      break;
    case FaultKind::kPartition:
    case FaultKind::kLongPartition: {
      // Resolve slots to their node ids as of now. Down slots are omitted;
      // a slot that recovers mid-partition gets an id unknown to the spec
      // and lands in the implicit extra component (see network.h).
      std::vector<std::set<net::NodeId>> components;
      for (const auto& slots : event.components) {
        std::set<net::NodeId> ids;
        for (size_t slot : slots) {
          if (slot < rig_->num_slots() && rig_->SlotAlive(slot)) {
            ids.insert(rig_->NodeOf(slot));
          }
        }
        if (!ids.empty()) {
          components.push_back(std::move(ids));
        }
      }
      if (components.size() >= 2) {
        network.Partition(components);
        if (event.kind == FaultKind::kLongPartition) {
          // Over-timeout split: the plan carries the heal inside the event
          // (the paired crash/recover of the evicted minority is scheduled
          // by the generator, after this heal).
          simulator_->ScheduleAfter(event.duration,
                                    [&network] { network.HealPartition(); });
        }
      }
      break;
    }
    case FaultKind::kHeal:
      network.HealPartition();
      break;
    case FaultKind::kDropBurst: {
      const double baseline = network.drop_probability();
      network.set_drop_probability(event.value);
      simulator_->ScheduleAfter(event.duration, [&network, baseline] {
        network.set_drop_probability(baseline);
      });
      break;
    }
    case FaultKind::kDuplicateBurst: {
      const double baseline = network.duplicate_probability();
      network.set_duplicate_probability(event.value);
      simulator_->ScheduleAfter(event.duration, [&network, baseline] {
        network.set_duplicate_probability(baseline);
      });
      break;
    }
    case FaultKind::kLatencySpike: {
      const double baseline = network.latency_scale();
      network.set_latency_scale(event.value);
      simulator_->ScheduleAfter(event.duration, [&network, baseline] {
        network.set_latency_scale(baseline);
      });
      break;
    }
    case FaultKind::kSlowReceiver: {
      // Scales the *current incarnation's* inbound latency. If the slot
      // crashes and rejoins mid-window the fresh id is unaffected — the
      // laggard died, which is one legitimate way to stop lagging.
      const net::NodeId node = rig_->NodeOf(event.slot);
      const double baseline = network.node_inbound_scale(node);
      network.set_node_inbound_scale(node, event.value);
      simulator_->ScheduleAfter(event.duration, [&network, node, baseline] {
        network.set_node_inbound_scale(node, baseline);
      });
      break;
    }
    case FaultKind::kOverloadBurst: {
      const double baseline = rig_->overload_factor();
      rig_->SetOverloadFactor(event.value);
      simulator_->ScheduleAfter(event.duration, [this, baseline] {
        rig_->SetOverloadFactor(baseline);
      });
      break;
    }
  }
}

}  // namespace fault
