#include "src/fault/injector.h"

#include <set>

namespace fault {

void FaultInjector::Install(const FaultPlan& plan) {
  const sim::TimePoint base = simulator_->now();
  for (const FaultEvent& event : plan.events) {
    simulator_->ScheduleAt(base + (event.at - sim::TimePoint::Zero()),
                           [this, event] { Apply(event); });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  ++events_applied_;
  applied_log_.push_back(event.Describe());
  net::Network& network = rig_->network();
  switch (event.kind) {
    case FaultKind::kCrash:
      rig_->CrashSlot(event.slot);
      break;
    case FaultKind::kRecover:
      rig_->RecoverSlot(event.slot);
      break;
    case FaultKind::kPartition: {
      // Resolve slots to their node ids as of now. Down slots are omitted;
      // a slot that recovers mid-partition gets an id unknown to the spec
      // and lands in the implicit extra component (see network.h).
      std::vector<std::set<net::NodeId>> components;
      for (const auto& slots : event.components) {
        std::set<net::NodeId> ids;
        for (size_t slot : slots) {
          if (slot < rig_->num_slots() && rig_->SlotAlive(slot)) {
            ids.insert(rig_->NodeOf(slot));
          }
        }
        if (!ids.empty()) {
          components.push_back(std::move(ids));
        }
      }
      if (components.size() >= 2) {
        network.Partition(components);
      }
      break;
    }
    case FaultKind::kHeal:
      network.HealPartition();
      break;
    case FaultKind::kDropBurst: {
      const double baseline = network.drop_probability();
      network.set_drop_probability(event.value);
      simulator_->ScheduleAfter(event.duration, [&network, baseline] {
        network.set_drop_probability(baseline);
      });
      break;
    }
    case FaultKind::kDuplicateBurst: {
      const double baseline = network.duplicate_probability();
      network.set_duplicate_probability(event.value);
      simulator_->ScheduleAfter(event.duration, [&network, baseline] {
        network.set_duplicate_probability(baseline);
      });
      break;
    }
    case FaultKind::kLatencySpike: {
      const double baseline = network.latency_scale();
      network.set_latency_scale(event.value);
      simulator_->ScheduleAfter(event.duration, [&network, baseline] {
        network.set_latency_scale(baseline);
      });
      break;
    }
  }
}

}  // namespace fault
