// Scripted fault schedules for deterministic chaos runs.
//
// A FaultPlan is a timeline of adversity — crash/recover, partition/heal,
// drop/duplicate bursts, latency spikes — expressed against *slots* (logical
// replicas) rather than node ids, because a recovered replica rejoins under a
// fresh member id. FaultScheduleGenerator samples random plans from a
// dedicated deterministic RNG, so a single seed names an entire chaos run:
// the same seed always yields the same plan, applied at the same simulated
// instants, over the same workload — a FoundationDB-style simulation fuzzer
// where every anomaly is reproducible from its seed.

#ifndef REPRO_SRC_FAULT_FAULT_PLAN_H_
#define REPRO_SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace fault {

enum class FaultKind {
  kCrash,           // crash-stop a slot's current incarnation
  kRecover,         // bring the slot back: fresh member id, rejoin, state transfer
  kPartition,       // split slots into disconnected components
  kHeal,            // remove any partition
  kDropBurst,       // raise the network drop probability for a window
  kDuplicateBurst,  // raise the duplicate probability for a window
  kLatencySpike,    // scale sampled latencies for a window
  kSlowReceiver,    // scale one slot's *inbound* latency for a window (laggard)
  kOverloadBurst,   // multiply the rig's workload burst size for a window
  kLongPartition,   // over-timeout partition: the majority side evicts the rest
};

const char* ToString(FaultKind kind);

struct FaultEvent {
  sim::TimePoint at;
  FaultKind kind = FaultKind::kCrash;
  size_t slot = 0;  // kCrash / kRecover
  // kPartition: slot-index components; slots are resolved to the live node
  // ids at application time (a slot down at that instant is simply absent).
  std::vector<std::vector<size_t>> components;
  double value = 0.0;       // burst probability / latency scale factor
  sim::Duration duration;   // burst window; the injector schedules the revert

  std::string Describe() const;
};

struct FaultPlan {
  sim::Duration horizon;            // the run length the plan was sized for
  std::vector<FaultEvent> events;   // sorted by `at`

  std::string Describe() const;
};

// Knobs for random plan sampling. Defaults give an eventful but survivable
// schedule: the group always keeps a live majority anchored at slot 0, crash
// windows are long enough for the failure detector to evict the victim, and
// partitions stay shorter than the failure timeout so they stress
// retransmission without triggering eviction — over-timeout partitions force
// a membership decision (the flush quorum rule wedges every non-primary
// side; see bench_e15_chaos for scripted versions of exactly that).
struct GeneratorConfig {
  size_t num_slots = 4;
  sim::Duration horizon = sim::Duration::Seconds(4);
  // Membership failure timeout of the group under test; recover delays and
  // partition caps are derived from it.
  sim::Duration failure_timeout = sim::Duration::Millis(100);

  // Per-eligible-slot probability of one crash/recover cycle (slot 0 never
  // crashes: it is the rejoin contact and the oracle's reference observer).
  double crash_probability = 0.7;
  size_t max_concurrent_crashes = 1;

  double partition_probability = 0.6;  // chance of each potential partition
  size_t max_partitions = 2;

  size_t max_drop_bursts = 2;
  size_t max_duplicate_bursts = 2;
  size_t max_latency_spikes = 2;
  double max_burst_probability = 0.25;
  double max_latency_scale = 8.0;

  // Overload adversity (DESIGN.md §10). All default to zero so existing
  // seeds keep producing byte-identical plans; the extra draws happen after
  // every pre-existing draw for the same reason.
  size_t max_slow_receivers = 0;    // windows where one slot's inbound slows
  double max_slow_receiver_scale = 6.0;
  size_t max_overload_bursts = 0;   // windows of workload-burst multiplication
  double max_overload_factor = 4.0;
  // Over-timeout partitions: the primary side (always containing slot 0)
  // evicts the minority; after the heal the generator crash/recovers the
  // minority slots so they rejoin fresh instead of wedging forever.
  size_t max_long_partitions = 0;
};

class FaultScheduleGenerator {
 public:
  explicit FaultScheduleGenerator(GeneratorConfig config) : config_(config) {}

  // Samples a plan using only `rng` — feed it a generator-private RNG (e.g.
  // sim::Rng(seed ^ kPlanStream)) so planning draws never perturb the
  // simulation's own stream.
  FaultPlan Generate(sim::Rng& rng) const;

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

}  // namespace fault

#endif  // REPRO_SRC_FAULT_FAULT_PLAN_H_
