#include "src/fault/fault_plan.h"

#include <algorithm>
#include <sstream>

namespace fault {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kDropBurst:
      return "drop-burst";
    case FaultKind::kDuplicateBurst:
      return "dup-burst";
    case FaultKind::kLatencySpike:
      return "latency-spike";
    case FaultKind::kSlowReceiver:
      return "slow-receiver";
    case FaultKind::kOverloadBurst:
      return "overload-burst";
    case FaultKind::kLongPartition:
      return "long-partition";
  }
  return "?";
}

std::string FaultEvent::Describe() const {
  std::ostringstream out;
  out << at.nanos() / 1000000 << "ms " << ToString(kind);
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover:
      out << " slot=" << slot;
      break;
    case FaultKind::kPartition:
    case FaultKind::kLongPartition:
      out << " {";
      for (size_t c = 0; c < components.size(); ++c) {
        out << (c ? "|" : "");
        for (size_t i = 0; i < components[c].size(); ++i) {
          out << (i ? "," : "") << components[c][i];
        }
      }
      out << "}";
      if (kind == FaultKind::kLongPartition) {
        out << " for=" << duration.nanos() / 1000000 << "ms";
      }
      break;
    case FaultKind::kHeal:
      break;
    case FaultKind::kDropBurst:
    case FaultKind::kDuplicateBurst:
      out << " p=" << value << " for=" << duration.nanos() / 1000000 << "ms";
      break;
    case FaultKind::kLatencySpike:
    case FaultKind::kOverloadBurst:
      out << " x" << value << " for=" << duration.nanos() / 1000000 << "ms";
      break;
    case FaultKind::kSlowReceiver:
      out << " slot=" << slot << " x" << value << " for=" << duration.nanos() / 1000000 << "ms";
      break;
  }
  return out.str();
}

std::string FaultPlan::Describe() const {
  std::ostringstream out;
  out << "plan horizon=" << horizon.nanos() / 1000000 << "ms events=" << events.size();
  for (const auto& event : events) {
    out << "\n  " << event.Describe();
  }
  return out.str();
}

namespace {

// Sort key making the plan order fully deterministic even for events sampled
// at the same instant.
bool EventBefore(const FaultEvent& a, const FaultEvent& b) {
  if (a.at != b.at) {
    return a.at < b.at;
  }
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
  return a.slot < b.slot;
}

}  // namespace

FaultPlan FaultScheduleGenerator::Generate(sim::Rng& rng) const {
  FaultPlan plan;
  plan.horizon = config_.horizon;
  const int64_t horizon_ns = config_.horizon.nanos();
  // Faults land in the middle 10%..60% of the run, leaving the head for the
  // group to form and the tail for recovery, redelivery, and quiescence.
  const int64_t fault_lo = horizon_ns / 10;
  const int64_t fault_hi = (horizon_ns * 6) / 10;

  // --- crash / recover cycles ------------------------------------------------
  // Slot 0 never crashes. Crash windows are serialized (bounded concurrency
  // via non-overlapping windows when max_concurrent_crashes == 1): the victim
  // stays down long enough to be detected and evicted, then rejoins.
  std::vector<std::pair<int64_t, int64_t>> crash_windows;
  size_t cycles = 0;
  for (size_t slot = 1; slot < config_.num_slots; ++slot) {
    if (!rng.NextBool(config_.crash_probability)) {
      continue;
    }
    const int64_t down_for =
        config_.failure_timeout.nanos() * 3 +
        rng.NextInRange(0, config_.failure_timeout.nanos() * 4);
    bool placed = false;
    for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
      const int64_t start = rng.NextInRange(fault_lo, fault_hi);
      const int64_t end = start + down_for;
      size_t overlapping = 0;
      for (const auto& [ws, we] : crash_windows) {
        if (start < we && ws < end) {
          ++overlapping;
        }
      }
      if (overlapping >= config_.max_concurrent_crashes) {
        continue;
      }
      crash_windows.emplace_back(start, end);
      FaultEvent crash;
      crash.at = sim::TimePoint::Zero() + sim::Duration::Nanos(start);
      crash.kind = FaultKind::kCrash;
      crash.slot = slot;
      plan.events.push_back(crash);
      FaultEvent recover = crash;
      recover.at = sim::TimePoint::Zero() + sim::Duration::Nanos(end);
      recover.kind = FaultKind::kRecover;
      plan.events.push_back(recover);
      ++cycles;
      placed = true;
    }
  }
  (void)cycles;

  // --- transient partitions --------------------------------------------------
  // Strictly shorter than the failure timeout: they strand heartbeats and
  // in-flight data (retransmission recovers) but never trigger eviction, so
  // the brain cannot split. Longer partitions are expressible by scripting a
  // plan by hand — bench_e15_chaos does, to show the oracle catching the
  // resulting divergence.
  int64_t last_partition_end = 0;
  for (size_t i = 0; i < config_.max_partitions; ++i) {
    if (!rng.NextBool(config_.partition_probability)) {
      continue;
    }
    const int64_t cap = config_.failure_timeout.nanos() / 2;
    const int64_t duration = rng.NextInRange(cap / 10 + 1, cap);
    const int64_t start =
        std::max(rng.NextInRange(fault_lo, fault_hi), last_partition_end + cap);
    if (start + duration > fault_hi + cap) {
      continue;
    }
    last_partition_end = start + duration;
    // Random two-way split with both sides non-empty.
    std::vector<size_t> slots(config_.num_slots);
    for (size_t s = 0; s < config_.num_slots; ++s) {
      slots[s] = s;
    }
    rng.Shuffle(slots);
    const size_t left = 1 + static_cast<size_t>(
                                rng.NextBelow(static_cast<uint64_t>(config_.num_slots - 1)));
    FaultEvent part;
    part.at = sim::TimePoint::Zero() + sim::Duration::Nanos(start);
    part.kind = FaultKind::kPartition;
    part.components.assign(2, {});
    part.components[0].assign(slots.begin(), slots.begin() + left);
    part.components[1].assign(slots.begin() + left, slots.end());
    std::sort(part.components[0].begin(), part.components[0].end());
    std::sort(part.components[1].begin(), part.components[1].end());
    plan.events.push_back(part);
    FaultEvent heal;
    heal.at = sim::TimePoint::Zero() + sim::Duration::Nanos(start + duration);
    heal.kind = FaultKind::kHeal;
    plan.events.push_back(heal);
  }

  // --- drop / duplicate bursts and latency spikes ----------------------------
  // Windows of one kind never overlap (the revert restores the pre-burst
  // baseline, so overlap would make the restore order-dependent).
  auto sample_bursts = [&](size_t max_count, FaultKind kind) {
    int64_t last_end = 0;
    for (size_t i = 0; i < max_count; ++i) {
      if (!rng.NextBool(0.5)) {
        continue;
      }
      const int64_t duration = rng.NextInRange(50000000, 300000000);  // 50..300ms
      const int64_t start = std::max(rng.NextInRange(fault_lo, fault_hi),
                                     last_end + 10000000);
      last_end = start + duration;
      FaultEvent burst;
      burst.at = sim::TimePoint::Zero() + sim::Duration::Nanos(start);
      burst.kind = kind;
      burst.duration = sim::Duration::Nanos(duration);
      if (kind == FaultKind::kLatencySpike) {
        burst.value = 2.0 + rng.NextDouble() * (config_.max_latency_scale - 2.0);
      } else {
        burst.value = 0.05 + rng.NextDouble() * (config_.max_burst_probability - 0.05);
      }
      plan.events.push_back(burst);
    }
  };
  sample_bursts(config_.max_drop_bursts, FaultKind::kDropBurst);
  sample_bursts(config_.max_duplicate_bursts, FaultKind::kDuplicateBurst);
  sample_bursts(config_.max_latency_spikes, FaultKind::kLatencySpike);

  // --- overload adversity (DESIGN.md §10) ------------------------------------
  // Every draw below is new; all knobs default to zero, so plans for
  // pre-existing configs replay byte-identically.

  // Slow receivers: one slot's inbound latency scales up for a window, making
  // it the stability laggard everyone else retains for. Slot 0 is exempt
  // (reference observer and rejoin contact).
  {
    int64_t last_end = 0;
    for (size_t i = 0; i < config_.max_slow_receivers; ++i) {
      if (!rng.NextBool(0.5)) {
        continue;
      }
      const size_t slot =
          1 + static_cast<size_t>(rng.NextBelow(static_cast<uint64_t>(config_.num_slots - 1)));
      const int64_t duration = rng.NextInRange(100000000, 500000000);  // 100..500ms
      const int64_t start =
          std::max(rng.NextInRange(fault_lo, fault_hi), last_end + 10000000);
      last_end = start + duration;
      FaultEvent slow;
      slow.at = sim::TimePoint::Zero() + sim::Duration::Nanos(start);
      slow.kind = FaultKind::kSlowReceiver;
      slow.slot = slot;
      slow.value = 2.0 + rng.NextDouble() * (config_.max_slow_receiver_scale - 2.0);
      slow.duration = sim::Duration::Nanos(duration);
      plan.events.push_back(slow);
    }
  }

  // Overload bursts: the rig multiplies its workload burst size for a
  // window, driving offered load past what the group absorbs smoothly.
  {
    int64_t last_end = 0;
    for (size_t i = 0; i < config_.max_overload_bursts; ++i) {
      if (!rng.NextBool(0.5)) {
        continue;
      }
      const int64_t duration = rng.NextInRange(100000000, 400000000);  // 100..400ms
      const int64_t start =
          std::max(rng.NextInRange(fault_lo, fault_hi), last_end + 10000000);
      last_end = start + duration;
      FaultEvent burst;
      burst.at = sim::TimePoint::Zero() + sim::Duration::Nanos(start);
      burst.kind = FaultKind::kOverloadBurst;
      burst.value = 2.0 + rng.NextDouble() * (config_.max_overload_factor - 2.0);
      burst.duration = sim::Duration::Nanos(duration);
      plan.events.push_back(burst);
    }
  }

  // Long partitions: strictly over the failure timeout, so the primary side
  // (slot 0's, always a strict majority) detects and evicts the minority.
  // The injector schedules the heal itself; the generator then crash-cycles
  // each minority slot after the heal so it rejoins under a fresh id instead
  // of staying wedged under the primary-partition rule for the rest of the
  // run.
  for (size_t i = 0; i < config_.max_long_partitions; ++i) {
    if (!rng.NextBool(0.5)) {
      continue;
    }
    const int64_t timeout_ns = config_.failure_timeout.nanos();
    const int64_t duration = timeout_ns * 2 + rng.NextInRange(0, timeout_ns * 2);
    const int64_t start = rng.NextInRange(fault_lo, (fault_lo + fault_hi) / 2);
    // Minority = one non-zero slot (keeps the primary side a strict majority
    // for any num_slots >= 3; with 2 slots there is no safe minority).
    if (config_.num_slots < 3) {
      break;
    }
    const size_t minority_slot =
        1 + static_cast<size_t>(rng.NextBelow(static_cast<uint64_t>(config_.num_slots - 1)));
    FaultEvent part;
    part.at = sim::TimePoint::Zero() + sim::Duration::Nanos(start);
    part.kind = FaultKind::kLongPartition;
    part.components.assign(2, {});
    for (size_t s = 0; s < config_.num_slots; ++s) {
      part.components[s == minority_slot ? 1 : 0].push_back(s);
    }
    part.duration = sim::Duration::Nanos(duration);
    plan.events.push_back(part);
    // Crash the stranded minority shortly after the heal, then recover it so
    // the slot rejoins fresh through the primary side.
    FaultEvent crash;
    crash.at = sim::TimePoint::Zero() + sim::Duration::Nanos(start + duration + timeout_ns / 2);
    crash.kind = FaultKind::kCrash;
    crash.slot = minority_slot;
    plan.events.push_back(crash);
    FaultEvent recover = crash;
    recover.at = crash.at + sim::Duration::Nanos(timeout_ns * 3);
    recover.kind = FaultKind::kRecover;
    plan.events.push_back(recover);
    break;  // at most one long partition per plan: the recovery tail is long
  }

  std::sort(plan.events.begin(), plan.events.end(), EventBefore);
  return plan;
}

}  // namespace fault
