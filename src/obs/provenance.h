// Causal provenance recording: the measured gap between the causality CATOCS
// *enforces* and the causality the application *means* (DESIGN.md §8).
//
// Three edge populations are recorded per message, keyed by the same 64-bit
// span key the SpanRecorder uses (catocs::SpanKey), so this subsystem depends
// only on sim:
//   * potential edges — the predecessor set implied by a delivered message's
//     vector timestamp: one edge per clock entry, exactly what the causal
//     gate waits for. Reported by the delivery path (RecordDelivery).
//   * semantic edges — dependencies the application declared
//     (GroupMember::DeclareDependency, PrescriptiveGate provenance hook).
//     These are the orderings that actually matter.
//   * hidden edges — real causal connections that travelled outside the
//     group transport (fault::HiddenChannelProbe), which no vector timestamp
//     can see. A hidden edge is real causality, so it also joins the
//     semantic graph.
//
// From these the recorder derives the paper's §2 quantities:
//   * spurious-edge ratio — potential edges backed by no (transitive)
//     semantic requirement: ordering enforced for no reason;
//   * false-causality delay — hold time at a delivery-gating wait point
//     during which no semantic predecessor arrived: the latency cost of
//     those spurious edges;
//   * hidden-channel misses — per (member, hidden edge): the dependent
//     message was delivered before its out-of-band predecessor, the anomaly
//     unrecognized causality permits.
//
// Record-only, like SpanRecorder: recording schedules no simulator events
// and perturbs no protocol state, so instrumented runs replay bit-identically
// to uninstrumented ones. All containers iterate deterministically.

#ifndef REPRO_SRC_OBS_PROVENANCE_H_
#define REPRO_SRC_OBS_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/span.h"
#include "src/sim/time.h"

namespace obs {

// Caller-encoded message identity; catocs passes SpanKey(id).
using MsgKey = uint64_t;

class ProvenanceRecorder {
 public:
  // Per-layer hold accounting. False/necessary splits are only meaningful
  // for delivery-gating layers (gates_delivery in RecordHold); retention
  // holds (stability) are tallied but never classified as false causality —
  // they cost memory, not delivery latency.
  struct LayerTally {
    uint64_t holds = 0;  // strictly positive waits released
    uint64_t false_holds = 0;
    uint64_t necessary_holds = 0;
    sim::Duration hold_total = sim::Duration::Zero();
    sim::Duration false_hold_total = sim::Duration::Zero();
  };

  struct Totals {
    uint64_t deliveries = 0;       // RecordDelivery calls accepted
    uint64_t potential_edges = 0;  // counted once per message, not per member
    uint64_t matched_edges = 0;    // potential edges semantically required
    uint64_t spurious_edges = 0;   // potential edges nothing required
    uint64_t semantic_edges = 0;   // declared (includes hidden re-declares)
    uint64_t hidden_edges = 0;     // injected out-of-band edges
    uint64_t hidden_checked = 0;   // per (delivery, hidden in-edge) checks
    uint64_t hidden_missed = 0;    // ... where the predecessor was not yet there
    uint64_t gating_holds = 0;     // positive waits at delivery-gating layers
    uint64_t false_holds = 0;
    sim::Duration gating_hold_total = sim::Duration::Zero();
    sim::Duration false_hold_total = sim::Duration::Zero();
  };

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // --- sender-side declarations ---------------------------------------------
  // The application states that `msg` semantically depends on `dep`.
  void DeclareSemanticDep(MsgKey msg, MsgKey dep);
  // An out-of-band (hidden-channel) causal edge: `msg` really does depend on
  // `dep`, but the connection never crossed the group transport. Joins both
  // the hidden and the semantic graphs.
  void InjectHiddenEdge(MsgKey msg, MsgKey dep);

  // --- receiver-side observations -------------------------------------------
  // Application-level delivery of `msg` at `actor`. `potential_frontier`
  // holds one key per vector-timestamp entry (the newest predecessor per
  // sender) — the potential-causality frontier the causal gate enforced.
  // Edge classification runs once per message (the frontier is a property of
  // the message); hidden-miss checks run per (msg, actor).
  void RecordDelivery(MsgKey msg, uint32_t actor, sim::TimePoint when,
                      const std::vector<MsgKey>& potential_frontier);
  // Stage-1 (causal) delivery of `msg` at `actor`. Feeds only hold
  // classification: a causal-gate wait that ends when a semantic predecessor
  // causally arrives is necessary even if that predecessor is still gated
  // downstream (e.g. a kTotal message awaiting its sequence turn).
  void RecordCausalDelivery(MsgKey msg, uint32_t actor, sim::TimePoint when);
  // A strictly positive wait of `msg` at `actor` in `layer` released.
  // `gates_delivery` says the wait delayed delivery (causal gap, FIFO gap,
  // total-order turn, flush block) rather than retention (stability). A
  // gating hold is *necessary* iff some transitive semantic dependency of
  // `msg` was delivered at `actor` inside (entered, released] — the wait
  // bought an ordering the application asked for; otherwise it is false
  // causality, the paper's spurious delay.
  void RecordHold(MsgKey msg, uint32_t actor, const char* layer, sim::TimePoint entered,
                  sim::TimePoint released, bool gates_delivery = true);

  // --- queries ---------------------------------------------------------------
  // Transitive reachability of `pred` from `msg` over the semantic graph.
  bool SemanticallyRequires(MsgKey msg, MsgKey pred) const;

  const Totals& totals() const { return totals_; }
  const std::map<std::string, LayerTally>& layers() const { return layers_; }
  // Hidden-channel misses observed at one actor — e.g. to cross-check the
  // recorder against an app's own anomaly count at its observer member.
  uint64_t HiddenMissesAt(uint32_t actor) const {
    auto it = hidden_missed_by_.find(actor);
    return it == hidden_missed_by_.end() ? 0 : it->second;
  }
  double SpuriousEdgeRatio() const {
    return totals_.potential_edges == 0 ? 0.0
                                        : static_cast<double>(totals_.spurious_edges) /
                                              static_cast<double>(totals_.potential_edges);
  }
  // Fraction of delivery-gating hold time that bought no semantic ordering.
  double FalseDelayFraction() const {
    return totals_.gating_hold_total == sim::Duration::Zero()
               ? 0.0
               : static_cast<double>(totals_.false_hold_total.nanos()) /
                     static_cast<double>(totals_.gating_hold_total.nanos());
  }

  // Provenance arrows for Simulator::ExportTraceEvents: semantic edges,
  // hidden edges, and the spurious potential edges, in deterministic order.
  std::vector<sim::FlowEdge> FlowEdges() const;

  // Labeled counters/gauges into a registry (explicit — never automatic, so
  // existing benches' metric output is untouched).
  void ExportTo(sim::MetricsRegistry& registry) const;

  std::string Summary() const;

  void Clear();

 private:
  bool DepDeliveredWithin(MsgKey msg, uint32_t actor, sim::TimePoint entered,
                          sim::TimePoint released) const;

  bool enabled_ = false;
  // Adjacency lists; std::map keeps FlowEdges() and exports deterministic.
  std::map<MsgKey, std::vector<MsgKey>> semantic_deps_;
  std::map<MsgKey, std::vector<MsgKey>> hidden_deps_;
  // Per actor: app-delivery time of each message delivered there, and the
  // (earlier) stage-1 causal-delivery time.
  std::map<uint32_t, std::map<MsgKey, sim::TimePoint>> delivered_;
  std::map<uint32_t, std::map<MsgKey, sim::TimePoint>> causal_delivered_;
  // Messages whose potential frontier has been classified already.
  std::map<MsgKey, bool> frontier_classified_;
  std::map<uint32_t, uint64_t> hidden_missed_by_;
  std::vector<sim::FlowEdge> spurious_edges_;
  std::map<std::string, LayerTally> layers_;
  Totals totals_;
};

}  // namespace obs

#endif  // REPRO_SRC_OBS_PROVENANCE_H_
