#include "src/obs/provenance.h"

#include <algorithm>
#include <sstream>

namespace obs {

namespace {

// Iterative DFS over an adjacency map. Visits every key reachable from
// `start` (excluding `start` itself unless a cycle returns to it) and calls
// `visit(key)`; stops early when visit returns true.
template <typename Visit>
bool WalkDeps(const std::map<MsgKey, std::vector<MsgKey>>& deps, MsgKey start, Visit visit) {
  std::vector<MsgKey> stack;
  std::vector<MsgKey> seen;  // sorted; dependency fans are small
  auto mark = [&seen](MsgKey k) {
    auto it = std::lower_bound(seen.begin(), seen.end(), k);
    if (it != seen.end() && *it == k) {
      return false;
    }
    seen.insert(it, k);
    return true;
  };
  stack.push_back(start);
  mark(start);
  while (!stack.empty()) {
    const MsgKey cur = stack.back();
    stack.pop_back();
    auto it = deps.find(cur);
    if (it == deps.end()) {
      continue;
    }
    for (MsgKey next : it->second) {
      if (!mark(next)) {
        continue;
      }
      if (visit(next)) {
        return true;
      }
      stack.push_back(next);
    }
  }
  return false;
}

// Returns true when the edge was new (duplicates leave the graph unchanged).
bool AddEdge(std::map<MsgKey, std::vector<MsgKey>>& deps, MsgKey msg, MsgKey dep) {
  std::vector<MsgKey>& list = deps[msg];
  if (std::find(list.begin(), list.end(), dep) != list.end()) {
    return false;
  }
  list.push_back(dep);
  return true;
}

}  // namespace

void ProvenanceRecorder::DeclareSemanticDep(MsgKey msg, MsgKey dep) {
  if (!enabled_ || msg == 0 || dep == 0 || msg == dep) {
    return;
  }
  if (AddEdge(semantic_deps_, msg, dep)) {
    ++totals_.semantic_edges;
  }
}

void ProvenanceRecorder::InjectHiddenEdge(MsgKey msg, MsgKey dep) {
  if (!enabled_ || msg == 0 || dep == 0 || msg == dep) {
    return;
  }
  if (!AddEdge(hidden_deps_, msg, dep)) {
    return;  // duplicate injection
  }
  ++totals_.hidden_edges;
  // A hidden edge is real causality the application would have declared had
  // it known a channel existed; the semantic graph gets it too.
  if (AddEdge(semantic_deps_, msg, dep)) {
    ++totals_.semantic_edges;
  }
  // Retroactive miss check: the dependent's sender self-delivers *inside*
  // Send, before its caller can learn the allocated id and inject this edge
  // — so actors that already delivered `msg` get their per-(msg, actor)
  // check now, against recorded delivery times. Future deliveries are
  // checked by RecordDelivery; the two populations are disjoint.
  for (const auto& [actor, at] : delivered_) {
    auto mit = at.find(msg);
    if (mit == at.end()) {
      continue;
    }
    ++totals_.hidden_checked;
    auto pit = at.find(dep);
    if (pit == at.end() || pit->second > mit->second) {
      ++totals_.hidden_missed;
      ++hidden_missed_by_[actor];
    }
  }
}

bool ProvenanceRecorder::SemanticallyRequires(MsgKey msg, MsgKey pred) const {
  return WalkDeps(semantic_deps_, msg, [pred](MsgKey k) { return k == pred; });
}

void ProvenanceRecorder::RecordDelivery(MsgKey msg, uint32_t actor, sim::TimePoint when,
                                        const std::vector<MsgKey>& potential_frontier) {
  if (!enabled_ || msg == 0) {
    return;
  }
  auto& at = delivered_[actor];
  if (!at.emplace(msg, when).second) {
    return;  // duplicate delivery (should not happen; first observation wins)
  }
  ++totals_.deliveries;

  // Hidden-channel check, per (msg, actor): was each out-of-band predecessor
  // already delivered here? A miss is the ordering anomaly the group's
  // timestamps cannot prevent.
  if (auto hit = hidden_deps_.find(msg); hit != hidden_deps_.end()) {
    for (MsgKey dep : hit->second) {
      ++totals_.hidden_checked;
      if (at.find(dep) == at.end()) {
        ++totals_.hidden_missed;
        ++hidden_missed_by_[actor];
      }
    }
  }

  // The frontier is a property of the message (its timestamp), identical at
  // every member: classify its edges once.
  if (!frontier_classified_.emplace(msg, true).second) {
    return;
  }
  for (MsgKey pred : potential_frontier) {
    if (pred == 0 || pred == msg) {
      continue;
    }
    ++totals_.potential_edges;
    if (SemanticallyRequires(msg, pred)) {
      ++totals_.matched_edges;
    } else {
      ++totals_.spurious_edges;
      spurious_edges_.push_back(sim::FlowEdge{pred, msg, "spurious"});
    }
  }
}

void ProvenanceRecorder::RecordCausalDelivery(MsgKey msg, uint32_t actor, sim::TimePoint when) {
  if (!enabled_ || msg == 0) {
    return;
  }
  causal_delivered_[actor].emplace(msg, when);  // first observation wins
}

bool ProvenanceRecorder::DepDeliveredWithin(MsgKey msg, uint32_t actor, sim::TimePoint entered,
                                            sim::TimePoint released) const {
  // A hold is necessary if a transitive semantic predecessor *arrived* at
  // this actor during the wait — at either delivery stage. Causal-gate waits
  // end on stage-1 arrival; FIFO/total waits end on app delivery; checking
  // both maps covers both without the recorder knowing which layer asked.
  auto dit = delivered_.find(actor);
  const std::map<MsgKey, sim::TimePoint>* app = dit == delivered_.end() ? nullptr : &dit->second;
  auto cit = causal_delivered_.find(actor);
  const std::map<MsgKey, sim::TimePoint>* causal =
      cit == causal_delivered_.end() ? nullptr : &cit->second;
  if (app == nullptr && causal == nullptr) {
    return false;
  }
  auto within = [entered, released](const std::map<MsgKey, sim::TimePoint>* at, MsgKey dep) {
    if (at == nullptr) {
      return false;
    }
    auto it = at->find(dep);
    return it != at->end() && it->second > entered && it->second <= released;
  };
  return WalkDeps(semantic_deps_, msg, [&](MsgKey dep) {
    return within(app, dep) || within(causal, dep);
  });
}

void ProvenanceRecorder::RecordHold(MsgKey msg, uint32_t actor, const char* layer,
                                    sim::TimePoint entered, sim::TimePoint released,
                                    bool gates_delivery) {
  if (!enabled_ || released <= entered) {
    return;
  }
  const sim::Duration hold = released - entered;
  LayerTally& tally = layers_[layer];
  ++tally.holds;
  tally.hold_total += hold;
  if (!gates_delivery) {
    return;  // retention (stability) holds cost memory, not delivery latency
  }
  ++totals_.gating_holds;
  totals_.gating_hold_total += hold;
  if (DepDeliveredWithin(msg, actor, entered, released)) {
    ++tally.necessary_holds;
  } else {
    ++tally.false_holds;
    tally.false_hold_total += hold;
    ++totals_.false_holds;
    totals_.false_hold_total += hold;
  }
}

std::vector<sim::FlowEdge> ProvenanceRecorder::FlowEdges() const {
  std::vector<sim::FlowEdge> edges;
  for (const auto& [msg, deps] : semantic_deps_) {
    auto hit = hidden_deps_.find(msg);
    for (MsgKey dep : deps) {
      const bool hidden = hit != hidden_deps_.end() &&
                          std::find(hit->second.begin(), hit->second.end(), dep) !=
                              hit->second.end();
      if (!hidden) {
        edges.push_back(sim::FlowEdge{dep, msg, "semantic"});
      }
    }
  }
  for (const auto& [msg, deps] : hidden_deps_) {
    for (MsgKey dep : deps) {
      edges.push_back(sim::FlowEdge{dep, msg, "hidden"});
    }
  }
  edges.insert(edges.end(), spurious_edges_.begin(), spurious_edges_.end());
  return edges;
}

void ProvenanceRecorder::ExportTo(sim::MetricsRegistry& registry) const {
  using Labels = sim::MetricsRegistry::Labels;
  registry.GetCounter("provenance_deliveries").Add(static_cast<int64_t>(totals_.deliveries));
  auto edge_counter = [&registry](const char* kind, uint64_t n) {
    registry.GetCounter("provenance_edges", Labels{{"kind", kind}})
        .Add(static_cast<int64_t>(n));
  };
  edge_counter("potential", totals_.potential_edges);
  edge_counter("matched", totals_.matched_edges);
  edge_counter("spurious", totals_.spurious_edges);
  edge_counter("semantic", totals_.semantic_edges);
  edge_counter("hidden", totals_.hidden_edges);
  registry.GetCounter("provenance_hidden_checked")
      .Add(static_cast<int64_t>(totals_.hidden_checked));
  registry.GetCounter("provenance_hidden_missed")
      .Add(static_cast<int64_t>(totals_.hidden_missed));
  for (const auto& [layer, tally] : layers_) {
    const Labels labels{{"layer", layer}};
    registry.GetCounter("provenance_holds", labels).Add(static_cast<int64_t>(tally.holds));
    registry.GetCounter("provenance_false_holds", labels)
        .Add(static_cast<int64_t>(tally.false_holds));
    registry.GetGauge("provenance_hold_us", labels).Set(tally.hold_total.nanos() / 1000);
    registry.GetGauge("provenance_false_hold_us", labels)
        .Set(tally.false_hold_total.nanos() / 1000);
  }
}

std::string ProvenanceRecorder::Summary() const {
  std::ostringstream out;
  out << "deliveries=" << totals_.deliveries << " potential=" << totals_.potential_edges
      << " matched=" << totals_.matched_edges << " spurious=" << totals_.spurious_edges
      << " semantic=" << totals_.semantic_edges << " hidden=" << totals_.hidden_edges
      << " hidden_missed=" << totals_.hidden_missed << "/" << totals_.hidden_checked << "\n";
  for (const auto& [layer, tally] : layers_) {
    out << "  " << layer << ": holds=" << tally.holds << " false=" << tally.false_holds
        << " necessary=" << tally.necessary_holds
        << " hold_ms=" << static_cast<double>(tally.hold_total.nanos()) / 1e6
        << " false_ms=" << static_cast<double>(tally.false_hold_total.nanos()) / 1e6 << "\n";
  }
  return out.str();
}

void ProvenanceRecorder::Clear() {
  semantic_deps_.clear();
  hidden_deps_.clear();
  delivered_.clear();
  causal_delivered_.clear();
  frontier_classified_.clear();
  hidden_missed_by_.clear();
  spurious_edges_.clear();
  layers_.clear();
  totals_ = Totals{};
}

}  // namespace obs
