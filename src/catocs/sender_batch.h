// Sender-side batching (GroupConfig::batching > 1): consecutive ordered
// sends coalesce into one GroupBatch frame instead of one network frame
// each. Constituents are stamped and self-delivered individually by the
// normal send path before they reach the batcher — only the *broadcast* is
// deferred — so batching changes when bytes hit the wire, never what the
// protocol delivers.
//
// Flush triggers, in priority order:
//   * the batch reaches config.batching constituents (size flush);
//   * config.batch_flush_delay elapses after the first pending constituent
//     (timer flush, so a quiet sender never strands a partial batch);
//   * the membership layer is about to block the group for a flush
//     (FlushNow, called at every flushing_ transition) — a batch is
//     broadcast whole before the view change, so it never spans one.
//
// The batcher owns the ordering_header_bytes charge for batched sends: one
// base frame plus delta-encoded per-entry metadata (GroupBatch::HeaderBytes)
// per destination, instead of a full header per constituent.

#ifndef REPRO_SRC_CATOCS_SENDER_BATCH_H_
#define REPRO_SRC_CATOCS_SENDER_BATCH_H_

#include <vector>

#include "src/catocs/layer.h"

namespace catocs {

class SenderBatcher {
 public:
  explicit SenderBatcher(GroupCore* core) : core_(core) { core->batcher = this; }
  ~SenderBatcher();

  SenderBatcher(const SenderBatcher&) = delete;
  SenderBatcher& operator=(const SenderBatcher&) = delete;

  // Defers the broadcast of an already-stamped, already-self-delivered
  // ordered message. Flushes when the batch is full.
  void Append(const GroupDataPtr& data);

  // Broadcasts the pending batch immediately (membership flush about to
  // block the group, or the member stopping). No-op when empty.
  void FlushNow();

  // A crashed member abandons its pending batch: the constituents were
  // never broadcast, exactly like in-flight unbatched frames lost with the
  // transport. (Atomic-but-not-durable, as ever.)
  void DropPending();

  size_t pending_count() const { return pending_.size(); }

 private:
  void ArmTimer();
  // Reports pending-constituent occupancy to the group budget (no-op when
  // unbounded).
  void ChargeBudget() {
    if (core_->budget.bounded()) {
      core_->budget.Set(ResourceBudget::kBatcher, pending_bytes_, pending_.size());
    }
  }

  GroupCore* core_;
  std::vector<GroupDataPtr> pending_;
  size_t pending_bytes_ = 0;
  sim::EventId flush_timer_{};
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_SENDER_BATCH_H_
